# Convenience targets; everything is plain dune underneath.

.PHONY: all build test check bench examples clean fmt

all: build

build:
	dune build @all

test:
	dune runtest

# Build everything, then run the full test suite — the pre-push gate.
check: build test

fmt:
	dune fmt

# Regenerate every evaluation table and figure (EXPERIMENTS.md's data).
bench:
	dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/pointer_chasing.exe
	dune exec examples/multi_thread_pipeline.exe
	dune exec examples/tlb_tuning.exe
	dune exec examples/pipelined_stream.exe
	dune exec examples/isolation.exe

clean:
	dune clean
