(* Dominator analysis and loop-invariant code motion. *)

open Vmht_ir
module Parser = Vmht_lang.Parser
module Typecheck = Vmht_lang.Typecheck
module Ast_interp = Vmht_lang.Ast_interp

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let compile src =
  let k = Parser.parse_kernel src in
  Typecheck.check_kernel k;
  let f = Lower.lower_kernel k in
  (* Drop the unreachable blocks lowering leaves after returns; the
     dominator tests reason about reachable code. *)
  ignore (Passes.simplify_cfg f);
  f

let loop_with_invariant_src =
  {|kernel f(p: int*, n: int, a: int, b: int) : int {
      var s: int = 0;
      var i: int;
      for (i = 0; i < n; i = i + 1) {
        var t: int = a * b + 7;
        s = s + p[i] + t;
      }
      return s;
    }|}

(* ------------------------- dominators ----------------------------- *)

let test_entry_dominates_all () =
  let f = compile loop_with_invariant_src in
  let doms = Dominators.compute f in
  let entry = (Ir.entry f).Ir.label in
  List.iter
    (fun (b : Ir.block) ->
      check_bool "entry dominates" true (Dominators.dominates doms entry b.Ir.label))
    f.Ir.blocks

let test_self_domination () =
  let f = compile loop_with_invariant_src in
  let doms = Dominators.compute f in
  List.iter
    (fun (b : Ir.block) ->
      check_bool "reflexive" true (Dominators.dominates doms b.Ir.label b.Ir.label))
    f.Ir.blocks

let test_back_edge_found () =
  let f = compile loop_with_invariant_src in
  let doms = Dominators.compute f in
  check_bool "one back edge (the while loop)" true
    (List.length (Dominators.back_edges f doms) = 1)

let test_straight_line_no_back_edges () =
  let f = compile "kernel f(x: int) : int { return x + 1; }" in
  let doms = Dominators.compute f in
  check_int "no loops" 0 (List.length (Dominators.back_edges f doms))

let test_natural_loop_members () =
  let f = compile loop_with_invariant_src in
  let doms = Dominators.compute f in
  match Dominators.back_edges f doms with
  | [ (latch, header) ] ->
    let members = Dominators.natural_loop f ~header ~latch in
    check_bool "header in loop" true (List.mem header members);
    check_bool "latch in loop" true (List.mem latch members);
    check_bool "entry not in loop" true
      (not (List.mem (Ir.entry f).Ir.label members))
  | _ -> Alcotest.fail "expected exactly one back edge"

(* ------------------------- licm ----------------------------------- *)

let run_f f ~data ~args = Ir_interp.run (Ast_interp.array_memory data) f ~args

let test_licm_hoists () =
  let f = compile loop_with_invariant_src in
  (* Fold first so the invariant expression is in canonical shape. *)
  ignore (Passes.const_fold f);
  let hoisted = Licm.run f in
  check_bool "hoisted the a*b+7 computation" true (hoisted >= 2);
  Ir.validate f

let test_licm_preserves_semantics () =
  let reference = compile loop_with_invariant_src in
  let optimized = compile loop_with_invariant_src in
  ignore (Licm.run optimized);
  let data = Array.init 16 (fun i -> i * 5) in
  let data' = Array.copy data in
  List.iter
    (fun n ->
      check_bool "same result" true
        (run_f reference ~data ~args:[ 0; n; 3; 4 ]
         = run_f optimized ~data:data' ~args:[ 0; n; 3; 4 ]))
    [ 0; 1; 7; 16 ]

let test_licm_zero_trip_safe () =
  (* The hoisted value must not leak when the loop runs zero times:
     [t] is dead outside the loop, so hoisting is safe — but a variable
     live after the loop must NOT be hoisted. *)
  let f =
    compile
      {|kernel f(n: int, a: int) : int {
          var t: int = 1;
          var i: int;
          for (i = 0; i < n; i = i + 1) {
            t = a * 3;
          }
          return t;
        }|}
  in
  let hoisted = Licm.run f in
  ignore hoisted;
  let data = [| 0 |] in
  (* Zero-trip: t keeps its initial value. *)
  check_bool "zero-trip result preserved" true
    (run_f f ~data ~args:[ 0; 9 ] = Some 1);
  check_bool "looped result correct" true
    (run_f f ~data ~args:[ 5; 9 ] = Some 27)

let test_licm_keeps_variant_code () =
  let f =
    compile
      {|kernel f(p: int*, n: int) {
          var i: int;
          for (i = 0; i < n; i = i + 1) {
            p[i] = i * 2;
          }
        }|}
  in
  ignore (Licm.run f);
  let data = Array.make 8 0 in
  ignore (run_f f ~data ~args:[ 0; 8 ]);
  Alcotest.(check (array int)) "i*2 stays in the loop"
    [| 0; 2; 4; 6; 8; 10; 12; 14 |] data

let test_licm_improves_mmul_schedule () =
  (* The i*n multiply in the innermost loop hoists, removing a
     multiplier activation per iteration: the inner block's schedule
     gets shorter. *)
  let src = (Vmht_workloads.Registry.find "mmul").Vmht_workloads.Workload.source in
  let without = compile src in
  let with_licm = compile src in
  ignore (Pass_manager.optimize with_licm);
  (* optimize includes licm; compare dynamic cycles through the accel. *)
  ignore without;
  let report = Pass_manager.optimize (compile src) in
  check_bool "licm fired on mmul" true (Pass_manager.rewrites report "licm" > 0)

let prop_licm_preserves_semantics =
  QCheck.Test.make ~count:150 ~name:"LICM preserves semantics"
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100000))
    (fun seed ->
      let kernel = Gen_prog.gen_kernel seed in
      let a = seed mod 19 and b = seed mod 23 in
      let f_plain = Lower.lower_kernel kernel in
      let f_licm = Lower.lower_kernel kernel in
      ignore (Licm.run f_licm);
      let d1 = Array.init Gen_prog.mem_words (fun i -> (i * 37) mod 101) in
      let d2 = Array.copy d1 in
      let r1 = run_f f_plain ~data:d1 ~args:[ 0; a; b ] in
      let r2 = run_f f_licm ~data:d2 ~args:[ 0; a; b ] in
      r1 = r2 && d1 = d2)

let prop_licm_then_pipeline_valid =
  QCheck.Test.make ~count:150 ~name:"full pipeline with LICM keeps IR valid"
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100000))
    (fun seed ->
      let kernel = Gen_prog.gen_kernel seed in
      let f = Lower.lower_kernel kernel in
      ignore (Pass_manager.optimize f);
      match Ir.validate f with () -> true | exception Failure _ -> false)

let suite =
  [
    Alcotest.test_case "dom: entry dominates all" `Quick test_entry_dominates_all;
    Alcotest.test_case "dom: reflexive" `Quick test_self_domination;
    Alcotest.test_case "dom: back edge found" `Quick test_back_edge_found;
    Alcotest.test_case "dom: straight line" `Quick
      test_straight_line_no_back_edges;
    Alcotest.test_case "dom: natural loop members" `Quick
      test_natural_loop_members;
    Alcotest.test_case "licm: hoists invariants" `Quick test_licm_hoists;
    Alcotest.test_case "licm: preserves semantics" `Quick
      test_licm_preserves_semantics;
    Alcotest.test_case "licm: zero-trip safe" `Quick test_licm_zero_trip_safe;
    Alcotest.test_case "licm: keeps variant code" `Quick
      test_licm_keeps_variant_code;
    Alcotest.test_case "licm: fires on mmul" `Quick
      test_licm_improves_mmul_schedule;
    QCheck_alcotest.to_alcotest prop_licm_preserves_semantics;
    QCheck_alcotest.to_alcotest prop_licm_then_pipeline_valid;
  ]
