(* The loop pipeliner: plan quality and, above all, that pipelined
   execution never changes results. *)

open Vmht_hls
module Parser = Vmht_lang.Parser
module Ast_interp = Vmht_lang.Ast_interp
module Engine = Vmht_sim.Engine

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let accel_run ?(pipeline = false) kernel ~data ~args =
  let hw = Fsm.synthesize ~pipeline kernel in
  let eng = Engine.create () in
  let result = ref None in
  Engine.spawn eng ~name:"accel" (fun () ->
      let port = Accel.untimed_port (Ast_interp.array_memory data) in
      let value = Accel.run hw ~port ~args in
      result := Some (value, Engine.now_p ()));
  Engine.run eng;
  (Option.get !result, hw)

let vecadd =
  Parser.parse_kernel
    {|kernel vecadd(a: int*, b: int*, c: int*, n: int) {
        var i: int;
        for (i = 0; i < n; i = i + 1) { c[i] = a[i] + b[i]; }
      }|}

let dotprod =
  Parser.parse_kernel
    {|kernel dotprod(a: int*, b: int*, n: int) : int {
        var s: int = 0;
        var i: int;
        for (i = 0; i < n; i = i + 1) { s = s + a[i] * b[i]; }
        return s;
      }|}

let histogram =
  Parser.parse_kernel
    {|kernel histogram(a: int*, h: int*, n: int) {
        var i: int;
        for (i = 0; i < n; i = i + 1) {
          var v: int = a[i] & 7;
          h[v] = h[v] + 1;
        }
      }|}

let plans_of kernel =
  let hw = Fsm.synthesize ~pipeline:true kernel in
  hw.Fsm.plans

let test_plan_found_for_streaming () =
  match plans_of vecadd with
  | [ p ] ->
    check_bool "II below FSM iteration" true
      (p.Pipeliner.ii < p.Pipeliner.unpipelined_cycles);
    check_bool "depth >= II" true (p.Pipeliner.depth >= p.Pipeliner.ii)
  | plans -> Alcotest.fail (Printf.sprintf "expected 1 plan, got %d" (List.length plans))

let test_no_plans_without_flag () =
  let hw = Fsm.synthesize vecadd in
  check_int "no plans by default" 0 (List.length hw.Fsm.plans)

let test_reduction_recurrence_respected () =
  match plans_of dotprod with
  | [ p ] ->
    (* The s += chain is a distance-1 recurrence of latency >= 1. *)
    check_bool "II at least 1" true (p.Pipeliner.ii >= 1)
  | _ -> Alcotest.fail "expected one plan"

let test_memory_recurrence_raises_ii () =
  (* histogram's h[v] read-modify-write recurs through memory, so its
     II must exceed a pure streaming kernel's. *)
  match (plans_of histogram, plans_of vecadd) with
  | [ hist ], [ va ] ->
    check_bool "RMW loop has the larger II" true
      (hist.Pipeliner.ii > va.Pipeliner.ii)
  | _ -> Alcotest.fail "expected plans for both"

(* A hand-built loop-carried load/store chain with a known recurrence:
   each iteration loads the previous iteration's store.  The cycle is
   store -> (next iteration) load -> add -> store, so any schedule
   must satisfy II >= inter-edge delay (1) + load latency (1) + add
   latency (1) = 3. *)
let chain =
  Parser.parse_kernel
    {|kernel chain(m: int*, n: int) {
        var i: int;
        for (i = 1; i < n; i = i + 1) { m[i] = m[i - 1] + 1; }
      }|}

let test_recurrence_ii_oracle () =
  let f = Vmht_ir.Lower.lower_kernel chain in
  ignore (Vmht_ir.Pass_manager.optimize f);
  match Pipeliner.plan_loops f ~resources:Schedule.default_resources with
  | [ p ] ->
    check_int "rec_mii equals the hand-computed chain" 3 p.Pipeliner.rec_mii;
    check_bool "achieved II honors the recurrence" true
      (p.Pipeliner.ii >= p.Pipeliner.rec_mii);
    (* vecadd carries nothing through memory; its recurrence bound must
       sit strictly below the chained loop's. *)
    (match Pipeliner.plan_loops
             (let g = Vmht_ir.Lower.lower_kernel vecadd in
              ignore (Vmht_ir.Pass_manager.optimize g);
              g)
             ~resources:Schedule.default_resources
     with
     | [ v ] ->
       check_bool "streaming loop recurs less" true
         (v.Pipeliner.rec_mii < p.Pipeliner.rec_mii)
     | _ -> Alcotest.fail "expected one vecadd plan")
  | plans ->
    Alcotest.fail (Printf.sprintf "expected 1 plan, got %d" (List.length plans))

let test_pipelined_results_exact () =
  let data = Array.make 48 0 in
  for i = 0 to 15 do
    data.(i) <- i * 3;
    data.(16 + i) <- i + 100
  done;
  let reference = Array.copy data in
  let (_, _), _ = accel_run ~pipeline:false vecadd ~data:reference ~args:[ 0; 128; 256; 16 ] in
  let (_, _), _ = accel_run ~pipeline:true vecadd ~data ~args:[ 0; 128; 256; 16 ] in
  Alcotest.(check (array int)) "identical memory" reference data

let test_pipelined_faster () =
  let time pipeline =
    let data = Array.make 3072 1 in
    let (_, finished), _ =
      accel_run ~pipeline vecadd ~data ~args:[ 0; 8192; 16384; 1024 ]
    in
    finished
  in
  check_bool "pipelined run takes fewer cycles" true (time true < time false)

let test_histogram_pipelined_correct () =
  (* The riskiest case: loop-carried memory dependence. *)
  let data = Array.make 72 0 in
  for i = 0 to 63 do
    data.(i) <- i * 13
  done;
  let reference = Array.copy data in
  let (_, _), _ =
    accel_run ~pipeline:false histogram ~data:reference ~args:[ 0; 512; 64 ]
  in
  let (_, _), _ = accel_run ~pipeline:true histogram ~data ~args:[ 0; 512; 64 ] in
  Alcotest.(check (array int)) "bins identical" reference data

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100000)

let prop_pipelined_equivalence =
  QCheck.Test.make ~count:120
    ~name:"pipelined accelerator matches plain accelerator" seed_arb
    (fun seed ->
      let kernel = Gen_prog.gen_kernel seed in
      let a = seed mod 13 and b = seed mod 11 in
      let d1 = Array.init Gen_prog.mem_words (fun i -> (i * 37) mod 101) in
      let d2 = Array.copy d1 in
      let (r1, _), _ = accel_run ~pipeline:false kernel ~data:d1 ~args:[ 0; a; b ] in
      let (r2, _), _ = accel_run ~pipeline:true kernel ~data:d2 ~args:[ 0; a; b ] in
      r1 = r2 && d1 = d2)

let suite =
  [
    Alcotest.test_case "plan for streaming loop" `Quick
      test_plan_found_for_streaming;
    Alcotest.test_case "off by default" `Quick test_no_plans_without_flag;
    Alcotest.test_case "reduction recurrence" `Quick
      test_reduction_recurrence_respected;
    Alcotest.test_case "memory recurrence raises II" `Quick
      test_memory_recurrence_raises_ii;
    Alcotest.test_case "recurrence II oracle" `Quick test_recurrence_ii_oracle;
    Alcotest.test_case "results exact" `Quick test_pipelined_results_exact;
    Alcotest.test_case "pipelined faster" `Quick test_pipelined_faster;
    Alcotest.test_case "histogram RMW correct" `Quick
      test_histogram_pipelined_correct;
    QCheck_alcotest.to_alcotest prop_pipelined_equivalence;
  ]
