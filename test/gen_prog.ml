(* Random well-typed HTL kernel generator for differential testing.

   Generated kernels have the signature

     kernel fuzz(m: int*, a: int, b: int)         (or ": int")

   and only access memory through [m] with indices masked to the first
   [mem_words] words, so running them against [Ast_interp.array_memory]
   never faults.  Loops are bounded by construction (a fresh counter
   counts down), and divisions force a non-zero divisor with [| 1],
   so every generated kernel terminates without trapping. *)

module Ast = Vmht_lang.Ast

let mem_words = 64

type ctx = {
  rng : Vmht_util.Rng.t;
  mutable int_vars : string list;
  mutable fresh : int;
}

let safe_binops =
  [|
    Ast.Add; Ast.Sub; Ast.Mul; Ast.And; Ast.Or; Ast.Xor; Ast.Lt; Ast.Le;
    Ast.Gt; Ast.Ge; Ast.Eq; Ast.Ne; Ast.Land; Ast.Lor;
  |]

let rec gen_int_expr ctx depth : Ast.expr =
  let open Vmht_util in
  if depth <= 0 || Rng.int ctx.rng 100 < 30 then
    if ctx.int_vars <> [] && Rng.bool ctx.rng then
      Ast.Var (Rng.pick ctx.rng (Array.of_list ctx.int_vars))
    else Ast.Int (Rng.int_range ctx.rng (-100) 100)
  else
    match Rng.int ctx.rng 10 with
    | 0 | 1 | 2 | 3 ->
      Ast.Bin
        ( Rng.pick ctx.rng safe_binops,
          gen_int_expr ctx (depth - 1),
          gen_int_expr ctx (depth - 1) )
    | 4 ->
      (* Division with a divisor forced non-zero. *)
      let divisor =
        Ast.Bin (Ast.Or, gen_int_expr ctx (depth - 1), Ast.Int 1)
      in
      let op = if Rng.bool ctx.rng then Ast.Div else Ast.Rem in
      Ast.Bin (op, gen_int_expr ctx (depth - 1), divisor)
    | 5 ->
      (* Shift with a masked count. *)
      let count = Ast.Bin (Ast.And, gen_int_expr ctx (depth - 1), Ast.Int 7) in
      let op = if Rng.bool ctx.rng then Ast.Shl else Ast.Shr in
      Ast.Bin (op, gen_int_expr ctx (depth - 1), count)
    | 6 ->
      Ast.Un
        ( Rng.pick ctx.rng [| Ast.Neg; Ast.Not; Ast.Bnot |],
          gen_int_expr ctx (depth - 1) )
    | 7 | 8 -> Ast.Load (Ast.Var "m", gen_index ctx depth)
    | _ -> Ast.Int (Rng.int_range ctx.rng 0 255)

(* An always-in-bounds index into m: (e & (mem_words-1)). *)
and gen_index ctx depth =
  Ast.Bin (Ast.And, gen_int_expr ctx (depth - 1), Ast.Int (mem_words - 1))

let fresh_var ctx =
  let name = Printf.sprintf "v%d" ctx.fresh in
  ctx.fresh <- ctx.fresh + 1;
  name

let rec gen_stmts ctx depth budget : Ast.stmt list =
  if budget <= 0 then []
  else begin
    let stmt, cost = gen_stmt ctx depth budget in
    stmt @ gen_stmts ctx depth (budget - cost)
  end

and gen_stmt ctx depth budget : Ast.stmt list * int =
  let open Vmht_util in
  match Rng.int ctx.rng 12 with
  | 0 | 1 ->
    let name = fresh_var ctx in
    let init =
      if Rng.bool ctx.rng then Some (gen_int_expr ctx 3) else None
    in
    ctx.int_vars <- name :: ctx.int_vars;
    ([ Ast.Decl (name, Ast.Tint, init) ], 1)
  | 2 | 3 | 4 ->
    if ctx.int_vars = [] then ([], 1)
    else
      let name = Rng.pick ctx.rng (Array.of_list ctx.int_vars) in
      ([ Ast.Assign (name, gen_int_expr ctx 3) ], 1)
  | 5 | 6 | 7 ->
    ([ Ast.Store (Ast.Var "m", gen_index ctx 3, gen_int_expr ctx 3) ], 1)
  | 8 | 9 when depth > 0 ->
    let cond = gen_int_expr ctx 2 in
    let saved = ctx.int_vars in
    let then_b = gen_stmts ctx (depth - 1) (budget / 2) in
    ctx.int_vars <- saved;
    let else_b =
      if Rng.bool ctx.rng then gen_stmts ctx (depth - 1) (budget / 2) else []
    in
    ctx.int_vars <- saved;
    ([ Ast.If (cond, then_b, else_b) ], 2)
  | 10 when depth > 0 ->
    (* Bounded loop: a fresh counter counts down to zero.  The counter
       is deliberately NOT visible inside the body — a random
       assignment to it could make the trip count astronomically
       large. *)
    let counter = fresh_var ctx in
    let trip = Rng.int_range ctx.rng 0 8 in
    let saved = ctx.int_vars in
    let body = gen_stmts ctx (depth - 1) (budget / 2) in
    ctx.int_vars <- saved;
    ( [
        Ast.Decl (counter, Ast.Tint, Some (Ast.Int trip));
        Ast.While
          ( Ast.Bin (Ast.Gt, Ast.Var counter, Ast.Int 0),
            body
            @ [
                Ast.Assign
                  (counter, Ast.Bin (Ast.Sub, Ast.Var counter, Ast.Int 1));
              ] );
      ],
      3 )
  | _ ->
    (* Counted for-style loop matching the unroller's pattern. *)
    let i = fresh_var ctx in
    let trip = Rng.int_range ctx.rng 0 12 in
    let saved = ctx.int_vars in
    ctx.int_vars <- i :: ctx.int_vars;
    let body =
      [
        Ast.Store
          ( Ast.Var "m",
            Ast.Bin (Ast.And, Ast.Var i, Ast.Int (mem_words - 1)),
            gen_int_expr ctx 2 );
      ]
    in
    ctx.int_vars <- saved;
    ( [
        Ast.Decl (i, Ast.Tint, Some (Ast.Int 0));
        Ast.While
          ( Ast.Bin (Ast.Lt, Ast.Var i, Ast.Int trip),
            body @ [ Ast.Assign (i, Ast.Bin (Ast.Add, Ast.Var i, Ast.Int 1)) ]
          );
      ],
      3 )

let gen_kernel ?(returns = true) seed : Ast.kernel =
  let ctx =
    { rng = Vmht_util.Rng.create seed; int_vars = [ "a"; "b" ]; fresh = 0 }
  in
  let body = gen_stmts ctx 2 8 in
  let body =
    if returns then body @ [ Ast.Return (Some (gen_int_expr ctx 3)) ]
    else body
  in
  {
    Ast.kname = "fuzz";
    params =
      [
        { Ast.pname = "m"; ptyp = Ast.Tptr Ast.Tint };
        { Ast.pname = "a"; ptyp = Ast.Tint };
        { Ast.pname = "b"; ptyp = Ast.Tint };
      ];
    ret = (if returns then Some Ast.Tint else None);
    body;
  }

(* Run a kernel against the AST reference semantics; returns the final
   memory and the returned value. *)
let reference_run kernel ~a ~b =
  let data = Array.init mem_words (fun i -> (i * 37) mod 101) in
  let mem = Vmht_lang.Ast_interp.array_memory data in
  let ret = Vmht_lang.Ast_interp.run_kernel mem kernel ~args:[ 0; a; b ] in
  (data, ret)
