(* The parallel-evaluation contract: experiment output, report JSON and
   the mismatch log must be byte-identical whatever the domain-pool
   width, and the synthesis cache must hand back results
   indistinguishable from a fresh flow. *)

module Common = Vmht_eval.Common
module Parmap = Vmht_par.Parmap
module Flow = Vmht.Flow
module Fsm = Vmht_hls.Fsm

let check_string = Alcotest.(check string)

let at_width jobs f =
  Parmap.set_jobs jobs;
  Fun.protect ~finally:Parmap.shutdown f

(* A cheap, representative slice of the 16 experiments: end-to-end
   cycles (table3), synthesis statistics including the wall-clock
   column that only the memo cache keeps stable (table4), the
   synthesis-time figure (fig5), and a config-sweep ablation (abl2). *)
let subset = [ "table3"; "table4"; "fig5"; "abl2" ]

let test_experiments_width_independent () =
  let render () =
    String.concat "\n\012\n" (List.map Vmht_eval.All_experiments.run subset)
  in
  let sequential = at_width 1 render in
  let parallel = at_width 4 render in
  List.iteri
    (fun i name ->
      let nth s = List.nth (String.split_on_char '\012' s) i in
      check_string (name ^ " byte-identical at -j 4") (nth sequential)
        (nth parallel))
    subset;
  check_string "whole subset byte-identical" sequential parallel

let test_abl6_width_independent () =
  (* abl6 is the one experiment whose measurements flow through the
     shared L2 TLB and the walk caches — per-SoC state, so parallel
     evaluation must not bleed between subjects. *)
  let render () = Vmht_eval.All_experiments.run "abl6" in
  let sequential = at_width 1 render in
  let parallel = at_width 4 render in
  check_string "abl6 byte-identical at -j 4" sequential parallel

let report_json ~seed () =
  let o =
    Common.run ~seed ~observe:true Common.Vm
      (Vmht_workloads.Registry.find "vecadd")
      ~size:256
  in
  assert o.Common.correct;
  let report =
    Vmht.Report.gather o.Common.soc ~workload:"vecadd" ~mode:"vm" ~size:256
      o.Common.result
  in
  Vmht_obs.Json.to_string (Vmht.Report.to_json report)

let test_report_json_width_independent () =
  let seeds = [ 1; 2; 3; 4; 5; 6 ] in
  let sequential =
    at_width 1 (fun () -> List.map (fun seed -> report_json ~seed ()) seeds)
  in
  let parallel =
    at_width 4 (fun () ->
        Common.par_map (fun seed -> report_json ~seed ()) seeds)
  in
  List.iteri
    (fun i (s, p) ->
      check_string (Printf.sprintf "report.to_json for seed %d" (i + 1)) s p)
    (List.combine sequential parallel)

let test_par_map_ordered () =
  at_width 4 (fun () ->
      Alcotest.(check (list int))
        "par_map returns submission order"
        (List.init 200 (fun i -> i * i))
        (Common.par_map (fun i -> i * i) (List.init 200 Fun.id)))

(* --- synthesis cache ---------------------------------------------- *)

let workload_names = [ "vecadd"; "saxpy"; "dotprod"; "list_sum"; "spmv" ]

let arb_synthesis_case =
  QCheck.make
    ~print:(fun (w, style, unroll, entries) ->
      Printf.sprintf "(%s, %s, unroll=%d, tlb=%d)"
        (List.nth workload_names w)
        (if style = 0 then "vm" else "dma")
        unroll entries)
    QCheck.Gen.(
      quad
        (int_bound (List.length workload_names - 1))
        (int_bound 1)
        (oneofl [ 1; 2; 4 ])
        (oneofl [ 8; 16; 32 ]))

let prop_cached_equals_fresh =
  QCheck.Test.make ~count:40
    ~name:"cached synthesize = fresh synthesize (fsm, area, verilog)"
    arb_synthesis_case
    (fun (wi, si, unroll, entries) ->
      let w = Vmht_workloads.Registry.find (List.nth workload_names wi) in
      let style =
        if si = 0 then Vmht.Wrapper.Vm_iface else Vmht.Wrapper.Dma_iface
      in
      let config =
        Vmht.Config.with_tlb_entries
          (Vmht.Config.with_unroll Vmht.Config.default unroll)
          entries
      in
      let cached = Common.synthesize ~config style w in
      let fresh = Common.synthesize ~config ~cache:false style w in
      cached.Flow.fsm.Fsm.stats = fresh.Flow.fsm.Fsm.stats
      && cached.Flow.total_area = fresh.Flow.total_area
      && cached.Flow.datapath_area = fresh.Flow.datapath_area
      && cached.Flow.verilog = fresh.Flow.verilog)

let test_cache_counters () =
  Flow.reset_cache ();
  let w = Vmht_workloads.Registry.find "vecadd" in
  let config = Vmht.Config.default in
  let a = Common.synthesize ~config Vmht.Wrapper.Vm_iface w in
  let b = Common.synthesize ~config Vmht.Wrapper.Vm_iface w in
  Alcotest.(check bool) "repeat call returns the cached value" true (a == b);
  let stats = Flow.cache_stats () in
  Alcotest.(check int) "one miss" 1 stats.Flow.cache_misses;
  Alcotest.(check int) "one hit" 1 stats.Flow.cache_hits;
  Alcotest.(check int) "one entry" 1 stats.Flow.cache_entries;
  (* A config that fingerprints differently is a distinct key... *)
  let config' = Vmht.Config.with_unroll config 2 in
  ignore (Common.synthesize ~config:config' Vmht.Wrapper.Vm_iface w);
  Alcotest.(check int) "second entry" 2 (Flow.cache_stats ()).Flow.cache_entries;
  (* ...an uncached call touches neither counters nor table... *)
  ignore (Common.synthesize ~config ~cache:false Vmht.Wrapper.Vm_iface w);
  Alcotest.(check int) "cache:false bypasses the table" 2
    (Flow.cache_stats ()).Flow.cache_entries;
  (* ...and a sweep over one kernel synthesizes exactly once per config. *)
  Flow.reset_cache ();
  List.iter
    (fun _ -> ignore (Common.synthesize ~config Vmht.Wrapper.Vm_iface w))
    [ 1; 2; 3; 4; 5 ];
  let stats = Flow.cache_stats () in
  Alcotest.(check int) "sweep: one synthesis" 1 stats.Flow.cache_misses;
  Alcotest.(check int) "sweep: four table hits" 4 stats.Flow.cache_hits;
  let m = Vmht_obs.Metrics.create () in
  Flow.sync_cache_metrics m;
  let snap = Vmht_obs.Metrics.snapshot m in
  Alcotest.(check (list (pair string int)))
    "counters surface through vmht_obs"
    [
      ("flow.synth_cache_entries", 1);
      ("flow.synth_cache_hits", 4);
      ("flow.synth_cache_misses", 1);
    ]
    snap.Vmht_obs.Metrics.counters

let test_cache_concurrent_single_flight () =
  Flow.reset_cache ();
  let w = Vmht_workloads.Registry.find "mmul" in
  let config = Vmht.Config.default in
  let results =
    at_width 4 (fun () ->
        Common.par_map
          (fun _ -> Common.synthesize ~config Vmht.Wrapper.Vm_iface w)
          (List.init 8 Fun.id))
  in
  (match results with
   | first :: rest ->
     List.iter
       (fun hw ->
         Alcotest.(check bool)
           "every concurrent caller gets the same hw_thread" true
           (hw == first))
       rest
   | [] -> Alcotest.fail "no results");
  Alcotest.(check int) "single flight: one synthesis for 8 callers" 1
    (Flow.cache_stats ()).Flow.cache_misses

(* --- simulator fast path ------------------------------------------ *)

(* The fast path (engine wait batching, trace-compiled accelerator
   blocks, translation memo) is a host-time optimization only: a run
   must be observably identical with it on and off — same final
   cycles, same return value, same memory image — for any kernel,
   configuration, data seed and fault rate.  Nonzero fault rates are
   the de-optimization witness: every injector draw happens in an
   unfused memory cycle, so injected faults land at the same cycle
   either way. *)

let fuzz_vm_observe ~fastpath ~tlb_entries ~rate ~seed kernel =
  let config =
    Vmht.Config.with_tlb_entries Vmht.Config.default tlb_entries
  in
  let config = Vmht.Config.with_seed config seed in
  let config =
    if rate > 0. then
      Vmht.Config.with_fault config (Vmht_fault.Plan.uniform ~rate)
    else config
  in
  let config = Vmht.Config.with_fastpath config fastpath in
  let soc = Vmht.Soc.create config in
  let aspace = Vmht.Soc.aspace soc in
  let base =
    Vmht_vm.Addr_space.alloc aspace ~bytes:(Gen_prog.mem_words * 8)
  in
  for i = 0 to Gen_prog.mem_words - 1 do
    Vmht_vm.Addr_space.store_word aspace (base + (i * 8)) ((i * 37) mod 101)
  done;
  let hw = Flow.run_exn
    (Flow.Request.of_kernel ~config ~style:Vmht.Wrapper.Vm_iface kernel) in
  let result =
    Vmht.Launch.run_to_completion soc (fun () ->
        Vmht.Launch.run_hw soc hw
          {
            Vmht.Launch.args = [ base; seed mod 11; seed mod 7 ];
            buffers = [];
          })
  in
  let mem =
    List.init Gen_prog.mem_words (fun i ->
        Vmht_vm.Addr_space.load_word aspace (base + (i * 8)))
  in
  (result.Vmht.Launch.total_cycles, result.Vmht.Launch.ret, mem)

let arb_fastpath_case =
  QCheck.make
    ~print:(fun (seed, tlb_entries, rate, cfg_seed) ->
      Printf.sprintf "(kernel seed %d, tlb=%d, fault rate %.3f, seed %d)"
        seed tlb_entries rate cfg_seed)
    QCheck.Gen.(
      quad (0 -- 20000)
        (oneofl [ 4; 8; 16 ])
        (oneofl [ 0.; 0.005; 0.02 ])
        (oneofl [ 1; 7; 42 ]))

let prop_fastpath_differential =
  QCheck.Test.make ~count:30
    ~name:"fastpath on = fastpath off (cycles, ret, memory; incl. faults)"
    arb_fastpath_case
    (fun (seed, tlb_entries, rate, cfg_seed) ->
      let kernel = Gen_prog.gen_kernel seed in
      let on =
        fuzz_vm_observe ~fastpath:true ~tlb_entries ~rate ~seed:cfg_seed
          kernel
      in
      let off =
        fuzz_vm_observe ~fastpath:false ~tlb_entries ~rate ~seed:cfg_seed
          kernel
      in
      on = off)

let suite =
  [
    Alcotest.test_case "experiments: -j 1 = -j 4 (byte-identical)" `Slow
      test_experiments_width_independent;
    Alcotest.test_case "abl6: -j 1 = -j 4 (byte-identical)" `Slow
      test_abl6_width_independent;
    Alcotest.test_case "report JSON: width-independent" `Quick
      test_report_json_width_independent;
    Alcotest.test_case "par_map: submission order" `Quick test_par_map_ordered;
    Alcotest.test_case "cache: counters, reuse, bypass" `Quick
      test_cache_counters;
    Alcotest.test_case "cache: concurrent single flight" `Quick
      test_cache_concurrent_single_flight;
    QCheck_alcotest.to_alcotest prop_cached_equals_fresh;
    QCheck_alcotest.to_alcotest prop_fastpath_differential;
  ]
