Synthesis-as-a-service: the batch server, the persistent store and the
load generator, through the CLI.

A cold loadgen run fills the store and prints a deterministic report
(the timing-bearing line goes to stderr, the manifest to a file):

  $ vmht loadgen --requests 12 --store-dir store --metrics-json cold.json 2>/dev/null
  Loadgen: request mix and (deterministic) outcomes
  +-------------+------------+---------------+---------------+----------+------------+--------+
  | kernel      | synth reqs | distinct cfgs | verilog bytes | run reqs | run cycles | failed |
  +-------------+------------+---------------+---------------+----------+------------+--------+
  | vecadd      |          3 |             3 |        20,700 |        0 |          0 |      0 |
  | mmul        |          0 |             0 |             0 |        0 |          0 |      0 |
  | spmv        |          1 |             1 |         5,833 |        2 |     50,160 |      0 |
  | list_sum    |          1 |             1 |         2,484 |        0 |          0 |      0 |
  | tree_search |          2 |             1 |        11,252 |        0 |          0 |      0 |
  | bfs         |          3 |             3 |        23,324 |        0 |          0 |      0 |
  +-------------+------------+---------------+---------------+----------+------------+--------+
  total: 12 requests = 10 synthesis (9 distinct configs) + 2 runs, 0 failed

A warm run over the same store answers every synthesis key from disk --
the --require-hit-rate gate would exit 1 otherwise -- and its stdout is
byte-identical to the cold run:

  $ vmht loadgen --requests 12 --store-dir store --require-hit-rate 0.9 --metrics-json warm.json > warm.out 2>/dev/null
  $ vmht loadgen --requests 12 --store-dir store --metrics-json cold2.out 2>/dev/null | diff warm.out -

So is a sharded run (two forked worker processes instead of the
in-process pool):

  $ vmht loadgen --requests 12 --shards 2 --store-dir store 2>/dev/null | diff warm.out -

The manifest carries the timing and hit-rate fields stdout must not:

  $ grep -c 'throughput_rps\|latency_us\|hit_rate' warm.json
  3

An unwritable store directory is a typed error with the write-failure
exit code:

  $ vmht loadgen --requests 1 --store-dir /proc/vmht-nope/store
  error: /proc/vmht-nope/store: store unwritable: mkdir(/proc/vmht-nope): No such file or directory
  [3]

The server reads JSON-line requests (a blank line flushes a batch) and
answers in request order, deduplicating against the same store:

  $ printf '%s\n' \
  >   '{"op":"synth","workload":"vecadd","style":"vm","unroll":2}' \
  >   '{"op":"synth","source":"kernel double(x: int): int { return x + x; }"}' \
  >   '' \
  >   '{"op":"run","workload":"list_sum","mode":"vm","size":64}' \
  >   '{"op":"synth","workload":"nosuch"}' \
  >   '{"op":"bogus"}' \
  >   | vmht serve --store-dir store
  {"rid":0,"status":"ok","result":"synthesized vecadd: 18 states, 2448 LUT 2987 FF 0 DSP 2 BRAM, 6181 bytes of Verilog"}
  {"rid":1,"status":"ok","result":"synthesized double: 1 states, 1589 LUT 2235 FF 0 DSP 2 BRAM, 1641 bytes of Verilog"}
  {"rid":2,"status":"ok","result":"executed: 229 cycles, ret 2790, correct"}
  {"rid":3,"status":"failed","result":"unknown workload \"nosuch\""}
  {"rid":4,"status":"failed","result":"unknown op \"bogus\""}
  [1]
