open Vmht_util

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* ------------------------- Bits ---------------------------------- *)

let test_is_pow2 () =
  check_bool "1 is pow2" true (Bits.is_pow2 1);
  check_bool "2 is pow2" true (Bits.is_pow2 2);
  check_bool "4096 is pow2" true (Bits.is_pow2 4096);
  check_bool "3 is not" false (Bits.is_pow2 3);
  check_bool "0 is not" false (Bits.is_pow2 0);
  check_bool "-4 is not" false (Bits.is_pow2 (-4))

let test_log2 () =
  check_int "log2 1" 0 (Bits.log2 1);
  check_int "log2 2" 1 (Bits.log2 2);
  check_int "log2 4096" 12 (Bits.log2 4096);
  check_int "log2 5 floors" 2 (Bits.log2 5)

let test_ceil_log2 () =
  check_int "ceil_log2 1" 0 (Bits.ceil_log2 1);
  check_int "ceil_log2 5" 3 (Bits.ceil_log2 5);
  check_int "ceil_log2 8" 3 (Bits.ceil_log2 8)

let test_align () =
  check_int "align_up exact" 4096 (Bits.align_up 4096 4096);
  check_int "align_up" 8192 (Bits.align_up 4097 4096);
  check_int "align_down" 4096 (Bits.align_down 8191 4096);
  check_int "align_up zero" 0 (Bits.align_up 0 64)

let test_extract () =
  check_int "extract low nibble" 0x5 (Bits.extract 0xA5 ~lo:0 ~width:4);
  check_int "extract high nibble" 0xA (Bits.extract 0xA5 ~lo:4 ~width:4)

let test_ceil_div () =
  check_int "exact" 4 (Bits.ceil_div 16 4);
  check_int "round up" 5 (Bits.ceil_div 17 4)

(* ------------------------- Rng ----------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 in
  let b = Rng.create 42 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let child = Rng.split a in
  let x = Rng.next child in
  let y = Rng.next a in
  check_bool "split streams differ" true (x <> y)

let test_rng_bounds () =
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    check_bool "in range" true (v >= 0 && v < 10)
  done;
  for _ = 1 to 1000 do
    let v = Rng.int_range r (-5) 5 in
    check_bool "in signed range" true (v >= -5 && v <= 5)
  done

let test_rng_shuffle_permutes () =
  let r = Rng.create 3 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

(* ------------------------- Stats --------------------------------- *)

let check_float = Alcotest.(check (float 1e-9))

let test_stats_mean () =
  check_float "mean" 2.5 (Stats.mean [ 1.; 2.; 3.; 4. ]);
  check_float "mean empty" 0. (Stats.mean [])

let test_stats_geomean () =
  check_float "geomean" 2. (Stats.geomean [ 1.; 4. ]);
  check_float "geomean single" 3. (Stats.geomean [ 3. ])

let test_stats_median () =
  check_float "odd" 2. (Stats.median [ 3.; 1.; 2. ]);
  check_float "even" 2.5 (Stats.median [ 4.; 1.; 2.; 3. ])

let test_stats_stddev () =
  check_float "constant" 0. (Stats.stddev [ 5.; 5.; 5. ]);
  check_float "simple" 2. (Stats.stddev [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ])

(* ------------------------- Table --------------------------------- *)

let test_table_render () =
  let t = Table.create ~title:"T" ~headers:[ "name"; "value" ] in
  Table.add_row t [ "a"; "1" ];
  Table.add_row t [ "bb" ];
  let s = Table.render t in
  check_bool "contains title" true (String.length s > 0);
  check_bool "mentions a" true
    (String.split_on_char '\n' s |> List.exists (fun l ->
         String.length l > 0 && String.index_opt l 'a' <> None))

let test_fmt_int () =
  Alcotest.(check string) "small" "999" (Table.fmt_int 999);
  Alcotest.(check string) "thousands" "12,345" (Table.fmt_int 12345);
  Alcotest.(check string) "millions" "1,234,567" (Table.fmt_int 1234567);
  Alcotest.(check string) "negative" "-1,000" (Table.fmt_int (-1000))

(* ------------------------- Ascii_plot ---------------------------- *)

let test_plot_renders () =
  let s =
    Ascii_plot.render ~title:"fig" ~xlabel:"x" ~ylabel:"y"
      [ { Ascii_plot.label = "s1"; points = [ (1., 1.); (2., 4.); (3., 9.) ] } ]
  in
  check_bool "non-empty" true (String.length s > 100)

let test_plot_empty () =
  let s =
    Ascii_plot.render ~title:"fig" ~xlabel:"x" ~ylabel:"y"
      [ { Ascii_plot.label = "s1"; points = [] } ]
  in
  check_bool "handles empty" true (String.length s > 0)

(* ------------------------- qcheck properties --------------------- *)

let prop_align_up_ge =
  QCheck.Test.make ~name:"align_up result >= input and aligned"
    QCheck.(pair (int_bound 1_000_000) (int_bound 10))
    (fun (v, k) ->
      let a = 1 lsl k in
      let r = Vmht_util.Bits.align_up v a in
      r >= v && r mod a = 0 && r - v < a)

let prop_geomean_le_mean =
  QCheck.Test.make ~name:"geomean <= mean for positive lists"
    QCheck.(list_of_size Gen.(1 -- 20) (float_bound_exclusive 100.))
    (fun xs ->
      let xs = List.map (fun x -> x +. 0.001) xs in
      Stats.geomean xs <= Stats.mean xs +. 1e-9)

let suite =
  [
    Alcotest.test_case "bits: is_pow2" `Quick test_is_pow2;
    Alcotest.test_case "bits: log2" `Quick test_log2;
    Alcotest.test_case "bits: ceil_log2" `Quick test_ceil_log2;
    Alcotest.test_case "bits: align" `Quick test_align;
    Alcotest.test_case "bits: extract" `Quick test_extract;
    Alcotest.test_case "bits: ceil_div" `Quick test_ceil_div;
    Alcotest.test_case "rng: deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng: split independent" `Quick test_rng_split_independent;
    Alcotest.test_case "rng: bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng: shuffle permutes" `Quick test_rng_shuffle_permutes;
    Alcotest.test_case "stats: mean" `Quick test_stats_mean;
    Alcotest.test_case "stats: geomean" `Quick test_stats_geomean;
    Alcotest.test_case "stats: median" `Quick test_stats_median;
    Alcotest.test_case "stats: stddev" `Quick test_stats_stddev;
    Alcotest.test_case "table: render" `Quick test_table_render;
    Alcotest.test_case "table: fmt_int" `Quick test_fmt_int;
    Alcotest.test_case "plot: renders" `Quick test_plot_renders;
    Alcotest.test_case "plot: empty" `Quick test_plot_empty;
    QCheck_alcotest.to_alcotest prop_align_up_ge;
    QCheck_alcotest.to_alcotest prop_geomean_le_mean;
  ]
