The CLI end to end: listing, compiling, synthesizing, and the error
paths a user hits first.

  $ vmht list
  workloads:
    vecadd       element-wise vector addition c[i] = a[i] + b[i]
    saxpy        scaled vector update y[i] = a*x[i] + y[i]
    dotprod      dot-product reduction returning a scalar
    stencil3     3-point 1-D stencil smoothing
    mmul         dense n x n matrix multiply
    histogram    256-bin histogram of an input stream
    spmv         CSR sparse matrix-vector product
    bfs          breadth-first search over a CSR graph with an in-memory frontier
    list_sum     sum of a sparse linked list scattered through a fragmented heap
    tree_search  sparse lookups in a large scattered binary search tree
  experiments:
    table1   table     kernel suite: cycles and speedups, sw vs dma vs vm
    table2   table     capacity cliff: copy-based fails where VM threads keep going
    table3   table     cycle attribution: where the time goes in each style
    table4   table     synthesized wrapper area: dma vs vm interface logic
    table5   table     design productivity: source lines vs handled VM machinery
    table6   table     sharing & protection: two processes, one accelerator
    fig1     figure    speedup vs data size: the copy-based capacity cliff
    fig2     figure    runtime and hit rate vs TLB entries
    fig3     figure    runtime vs page size
    fig4     figure    miss handling: hardware walker vs software refill
    fig5     figure    synthesis time and FSM size vs unroll factor
    fig6     figure    multi-thread scaling on the shared bus
    abl1     ablation  wrapper stream-buffer size sweep
    abl2     ablation  TLB organization: associativity and replacement
    abl3     ablation  datapath parallelism: unroll x memory ports
    abl4     ablation  loop pipelining on vs off, achieved II
    abl5     ablation  optimization level: -O0/-O1/-O2 pass schedules
    abl6     ablation  translation hierarchy: shared L2 TLB and page-walk cache
    abl7     ablation  simulator fast path on vs off: identical cycles, faster host
    robust   sweep     fault injection: recovery overhead, vm vs copy-based
    rtl1     sweep     RTL loop closed: emitted Verilog vs model executor, cycle-exact
    dse1     sweep     design-space exploration: unroll x banks x opt x TLB Pareto front

Compile a kernel and show the optimized IR:

  $ cat > vecadd.htl <<'EOF'
  > kernel vecadd(a: int*, b: int*, c: int*, n: int) {
  >   var i: int;
  >   for (i = 0; i < n; i = i + 1) {
  >     c[i] = a[i] + b[i];
  >   }
  > }
  > EOF
  $ vmht compile vecadd.htl
  ; opt[O2]: 3 iter(s), const_fold=0 copy_prop=2 cse=2 store_forward=0 strength_reduce=0 licm=0 dce=3 coalesce=1 simplify_cfg=0, instrs 15 -> 11
  func vecadd(r0, r1, r2, r3)
  L0:
    r4 = 0
    jmp L1
  L1:
    r5 = r4 < r3
    br r5 ? L2 : L3
  L2:
    r6 = r4 << 3
    r7 = r2 + r6
    r9 = r0 + r6
    r10 = mem[r9]
    r12 = r1 + r6
    r13 = mem[r12]
    r14 = r10 + r13
    mem[r7] = r14
    r4 = r4 + 1
    jmp L1
  L3:
    ret
  

The pass registry is user-visible: every optimization is listed with
its kind and documentation, plus the -O presets:

  $ vmht passes
  passes:
    const_fold       scalar   fold constant operations, algebraic identities, and constant branches
    copy_prop        scalar   propagate Mov sources into later uses (block-local)
    cse              scalar   share repeated pure computations and repeated loads (block-local value numbering)
    store_forward    memory   forward stored values to later loads from the same address, skipping the memory port
    strength_reduce  memory   collapse add-immediate address chains; multiply by 2^k+-1 via shift and add/sub
    licm             loop     hoist loop-invariant computations into a preheader
    coalesce         cleanup  fold [t = op; d = t] pairs so the operation writes its destination directly
    dce              cleanup  delete pure instructions whose results are never used
    simplify_cfg     cfg      thread trivial jumps, drop unreachable blocks, merge single-predecessor chains
  presets:
    -O0   (none)
    -O1   const_fold, copy_prop, dce, simplify_cfg
    -O2   const_fold, copy_prop, cse, store_forward, strength_reduce, licm, dce, coalesce, simplify_cfg

-O0 skips the optimizer entirely (note the duplicated init the
frontend emits):

  $ vmht compile vecadd.htl --opt-level 0 | head -6
  ; opt[O0]: 0 iter(s), no passes, instrs 15 -> 15
  func vecadd(r0, r1, r2, r3)
  L0:
    r4 = 0
    r4 = 0
    jmp L1

A custom schedule runs exactly the passes named, in order:

  $ vmht compile vecadd.htl --passes const_fold,dce | head -1
  ; opt[custom:const_fold,dce]: 2 iter(s), const_fold=0 dce=1, instrs 15 -> 14

Unknown pass names are rejected up front:

  $ vmht compile vecadd.htl --passes nope
  error: Config.schedule: unknown pass "nope" (known: const_fold, copy_prop, cse, store_forward, strength_reduce, licm, coalesce, dce, simplify_cfg)
  [1]

Syntax errors carry positions and exit with the front-end code (2):

  $ cat > bad.htl <<'EOF'
  > kernel broken(x: int) {
  >   var y: int = ;
  > }
  > EOF
  $ vmht compile bad.htl
  error: line 2, col 16: expected expression but found ';'
  [2]

Type errors too:

  $ cat > illtyped.htl <<'EOF'
  > kernel illtyped(p: int*) {
  >   var q: int* = p + 1;
  > }
  > EOF
  $ vmht compile illtyped.htl
  error: line 0, col 0: arithmetic '+' between int* and int (cast pointers explicitly)
  [2]

Unknown workloads are reported:

  $ vmht run nonsuch
  unknown workload 'nonsuch' (try: vmht list)
  [1]

Unknown experiments too:

  $ vmht bench nonsuch
  unknown experiment 'nonsuch'
  [1]

System composition against a device budget:

  $ cat > pair.htl <<'KERNELS'
  > kernel square(x: int) : int { return x * x; }
  > kernel sumsq(a: int*, n: int) : int {
  >   var s: int = 0;
  >   var i: int;
  >   for (i = 0; i < n; i = i + 1) {
  >     var q: int = square(a[i]);
  >     s = s + q;
  >   }
  >   return s;
  > }
  > KERNELS
  $ vmht system pair.htl --copies 2
  system design on zynq-7020: FITS
    2x square         [vm]  LUT=1691 FF=2332 DSP=16 BRAM=2 each, MMIO from 0x40000000
    2x sumsq          [vm]  LUT=2376 FF=2740 DSP=16 BRAM=2 each, MMIO from 0x40002000
    static infrastructure: LUT=2100 FF=2600 DSP=0 BRAM=4
    total: LUT=10234 FF=12744 DSP=64 BRAM=12
    LUT    19.2%
    FF     12.0%
    DSP    29.1%
    BRAM    4.3%

Observability: a run can write a Chrome-trace JSON alongside the
summary, and emit the whole report as machine-readable JSON:

  $ vmht run vecadd --mode vm --size 64 --trace-out trace.json
  vecadd / vm / size 64: 1,875 cycles (correct)
    phases: stage=0 compute=1507 drain=368
    mmu: 192 accesses, 189 hits, 3 misses, 0 faults, hit rate 0.984
    trace written to trace.json
  $ grep -c '"ph": "M"' trace.json > /dev/null && echo has-metadata
  has-metadata
  $ grep -q '"traceEvents"' trace.json && grep -q '"ts"' trace.json && echo chrome-shape
  chrome-shape

  $ vmht run vecadd --mode vm --size 64 --metrics-json | head -6
  {
    "workload": "vecadd",
    "mode": "vm",
    "size": 64,
    "ret": null,
    "total_cycles": 1875,
  $ vmht run vecadd --mode vm --size 64 --metrics-json | grep -c '"tlb.lookups"\|"bus.reads"\|"dram.accesses"'
  3

The translation hierarchy is opt-in from the command line: --tlb2
adds a shared second-level TLB, --walk-cache gives the walker a
level-1 memo, and together they shave the walk traffic of a
pointer-chasing kernel (same answer, fewer cycles):

  $ vmht run list_sum --mode vm --size 4096
  list_sum / vm / size 4096: 6,159 cycles (correct)
    phases: stage=0 compute=6095 drain=64
    mmu: 256 accesses, 240 hits, 16 misses, 0 faults, hit rate 0.938
  $ vmht run list_sum --mode vm --size 4096 --tlb2 128 --walk-cache 8
  list_sum / vm / size 4096: 5,893 cycles (correct)
    phases: stage=0 compute=5829 drain=64
    mmu: 256 accesses, 240 hits, 16 misses, 0 faults, hit rate 0.938
  $ vmht run list_sum --mode vm --size 4096 --tlb2 128 --walk-cache 8 --metrics-json | grep -c '"tlb2.lookups"\|"tlb2.hits"\|"walk_cache.hits"'
  3

The simulator fast path is on by default and is purely a host-time
optimization: --no-fastpath runs the same simulation unfused and must
land on exactly the same cycle count and answer:

  $ vmht run list_sum --mode vm --size 4096 --no-fastpath
  list_sum / vm / size 4096: 6,159 cycles (correct)
    phases: stage=0 compute=6095 drain=64
    mmu: 256 accesses, 240 hits, 16 misses, 0 faults, hit rate 0.938

The RTL loop is closed: --backend rtl parses the emitted Verilog back
and executes the emitted bytes on the same memory/VM stack, and must
land on exactly the same cycle count and answer as the model executor:

  $ vmht run list_sum --mode vm --size 4096 --backend rtl
  list_sum / vm / size 4096: 6,159 cycles (correct)
    phases: stage=0 compute=6095 drain=64
    mmu: 256 accesses, 240 hits, 16 misses, 0 faults, hit rate 0.938

The emitted FSM is unpipelined, so the rtl backend rejects --pipeline
up front:

  $ vmht run vecadd --backend rtl --pipeline
  --backend rtl does not support --pipeline (the emitted FSM is unpipelined)
  [1]

The abl7 experiment asserts that equivalence across kernels, modes and
a fault-injected subject (the de-optimization witness), and reports
how much wait/translation work the fast path absorbed:

  $ vmht bench abl7
  Ablation 7: simulator fast path on vs off — identical cycles
  +-------------+------+------------+-------------+--------------+---------------+---------------+
  | kernel      | mode | fault rate | cycles (on) | cycles (off) | fast-forwards | TLB memo hits |
  +-------------+------+------------+-------------+--------------+---------------+---------------+
  | vecadd      | vm   |      0.000 |     187,095 |      187,095 |        21,604 |        12,264 |
  | spmv        | vm   |      0.000 |     417,829 |      417,829 |        68,438 |        37,787 |
  | list_sum    | sw   |      0.000 |      13,069 |       13,069 |         2,053 |             0 |
  | bfs         | dma  |      0.000 |      74,187 |       74,187 |        46,854 |             0 |
  | tree_search | vm   |      0.005 |      12,231 |       12,231 |         1,871 |           294 |
  +-------------+------+------------+-------------+--------------+---------------+---------------+
  

With an argument, the report goes to a file alongside the summary;
an unwritable destination is its own failure, exit code 3:

  $ vmht run vecadd --mode vm --size 64 --metrics-json=report.json
  vecadd / vm / size 64: 1,875 cycles (correct)
    phases: stage=0 compute=1507 drain=368
    mmu: 192 accesses, 189 hits, 3 misses, 0 faults, hit rate 0.984
    metrics written to report.json
  $ grep -c '"workload"' report.json
  1
  $ vmht run vecadd --mode vm --size 64 --trace-out missing/trace.json
  vecadd / vm / size 64: 1,875 cycles (correct)
    phases: stage=0 compute=1507 drain=368
    mmu: 192 accesses, 189 hits, 3 misses, 0 faults, hit rate 0.984
  cannot write trace: missing/trace.json: No such file or directory
  [3]

The trace subcommand replays a workload with tracing on and filters
the typed event stream:

  $ vmht trace vecadd --mode dma --size 64 --component dma
  [      40] dma          dma_read x64 (+213)
  [     293] dma          dma_read x64 (+213)
  [     973] dma          dma_write x64 (+213)

  $ vmht trace vecadd --mode vm --size 64 --out t2.json
  671 events written to t2.json

The phase profiler attributes every simulated cycle to a phase; the
attribution must sum exactly to the engine total (the command itself
asserts it and exits nonzero on a mismatch).  Cycle counts are
deterministic; host milliseconds are not, so mask them:

  $ vmht profile no_such_experiment
  unknown experiment 'no_such_experiment'
  [1]
  $ vmht profile fig1 --json prof.json | grep -E "^profile:|cycle attribution"
  profile: fig1 (fastpath on)
    cycle attribution sums exactly to the engine total (phases 13777538, engines 13777538)
  $ grep -c '"schema": "vmht-profile/1"' prof.json
  1

The perf gate compares two bench manifests and fails the build when a
metric regressed past the threshold:

  $ cat > old.json <<'JSON'
  > {"schema": "vmht-bench-eval/2",
  >  "experiments": [{"name": "fig1", "seconds": 1.0,
  >                   "cycles": {"p50": 100, "p99": 120, "max": 200}}],
  >  "total_seconds": 1.0}
  > JSON
  $ cat > new.json <<'JSON'
  > {"schema": "vmht-bench-eval/2",
  >  "experiments": [{"name": "fig1", "seconds": 1.3,
  >                   "cycles": {"p50": 100, "p99": 150, "max": 200}}],
  >  "total_seconds": 1.3}
  > JSON
  $ vmht perf diff old.json old.json
  metric                                              old            new     delta
  fig1.seconds                                          1              1     +0.0%
  fig1.cycles.p50                                     100            100     +0.0%
  fig1.cycles.p99                                     120            120     +0.0%
  fig1.cycles.max                                     200            200     +0.0%
  total_seconds                                         1              1     +0.0%
  fig1.ns_per_run                          (no per-run timing recorded and not marked "synthesis")
  ok: 5 metric(s) within +10.0%
  $ vmht perf diff old.json new.json | tail -1
  regression: 3 metric(s) slower by >= 10.0%
  $ vmht perf diff old.json new.json > /dev/null
  [1]
  $ vmht perf diff old.json new.json --threshold 50 > /dev/null
  $ vmht perf diff old.json new.json --warn-only > /dev/null
  $ vmht perf diff old.json broken.json
  vmht: NEW.json argument: no 'broken.json' file or directory
  Usage: vmht perf diff [--threshold=PCT] [--warn-only] [OPTION]… OLD.json NEW.json
  Try 'vmht perf diff --help' or 'vmht --help' for more information.
  [124]
  $ echo '{oops' > bad.json
  $ vmht perf diff old.json bad.json > /dev/null
  error: bad.json: expected '"' at offset 1
  [2]

Design-space exploration sweeps unroll x banks x opt x TLB per kernel
and reports the Pareto front over cycles vs LUT area; the output is
deterministic at any -j width, and --json writes every grid point as a
vmht-dse/1 manifest:

  $ vmht dse --size 64 --kernels vecadd --unrolls 1,2 --bank-counts 1,2 --opts 2 --tlbs 16 -j 2 --json pareto.json
  DSE: vecadd (vm, size 64) — Pareto front over cycles vs LUT (3 of 4 points; 1 dominated)
  +--------+-------+-----+-----+--------+-------+-------+
  | unroll | banks | opt | tlb | cycles | LUT   | FF    |
  +--------+-------+-----+-----+--------+-------+-------+
  |      2 |     2 | -O2 |  16 |  1,749 | 2,526 | 3,034 |
  |      2 |     1 | -O2 |  16 |  1,813 | 2,448 | 2,987 |
  |      1 |     1 | -O2 |  16 |  1,875 | 2,358 | 2,985 |
  +--------+-------+-----+-----+--------+-------+-------+
  

  $ grep -c '"schema": "vmht-dse/1"' pareto.json
  1
  $ vmht dse --kernels nonsuch
  unknown kernel(s): nonsuch
  [1]

The scratchpad banking axis is a first-class run/synth knob: provably
bank-distinct accesses co-issue, so a banked memory-bound kernel takes
strictly fewer cycles than the flat single-bank default, with the same
answer:

  $ vmht run saxpy --mode vm --size 256 --unroll 4
  saxpy / vm / size 256: 5,765 cycles (correct)
    phases: stage=0 compute=4485 drain=1280
    mmu: 768 accesses, 766 hits, 2 misses, 0 faults, hit rate 0.997
  $ vmht run saxpy --mode vm --size 256 --unroll 4 --banks 4
  saxpy / vm / size 256: 4,741 cycles (correct)
    phases: stage=0 compute=3461 drain=1280
    mmu: 768 accesses, 766 hits, 2 misses, 0 faults, hit rate 0.997

The pre-Request synthesis wrappers are gone; the old `synthesize`
surface now fails up front with the list of real commands:

  $ vmht synthesize vecadd.htl
  vmht: unknown command 'synthesize', must be one of 'bench', 'compile', 'dse', 'list', 'loadgen', 'passes', 'perf', 'profile', 'run', 'serve', 'synth', 'system' or 'trace'.
  Usage: vmht COMMAND …
  Try 'vmht --help' for more information.
  [124]

An experiment with no per-run timing is flagged (the fig1.ns_per_run
line above) unless the manifest marks it as a synthesis-only study:

  $ cat > synth.json <<'JSON'
  > {"schema": "vmht-bench-eval/2",
  >  "experiments": [{"name": "table2", "kind": "synthesis", "seconds": 2.0}],
  >  "total_seconds": 2.0}
  > JSON
  $ vmht perf diff synth.json synth.json
  metric                                              old            new     delta
  table2.seconds                                        2              2     +0.0%
  total_seconds                                         2              2     +0.0%
  ok: 2 metric(s) within +10.0%
