open Vmht_hls
module Parser = Vmht_lang.Parser
module Ast_interp = Vmht_lang.Ast_interp
module Engine = Vmht_sim.Engine

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* Run a synthesized accelerator functionally (untimed memory) inside a
   private engine and return (result, final data, fsm cycles). *)
let accel_run ?resources ?(unroll = 1) ?(ports = 1) kernel ~data ~args =
  let hw = Fsm.synthesize ?resources ~unroll kernel in
  let eng = Engine.create () in
  let result = ref None in
  let stats = Accel.fresh_stats () in
  Engine.spawn eng ~name:"accel" (fun () ->
      let port = Accel.untimed_port (Ast_interp.array_memory data) in
      result := Some (Accel.run ~stats ~ports hw ~port ~args));
  Engine.run eng;
  (Option.get !result, stats)

let vecadd_kernel =
  Parser.parse_kernel
    {|kernel vecadd(a: int*, b: int*, c: int*, n: int) {
        var i: int;
        for (i = 0; i < n; i = i + 1) { c[i] = a[i] + b[i]; }
      }|}

(* ----------------------- scheduling ------------------------------- *)

let schedule_of ?resources kernel =
  let f = Vmht_ir.Lower.lower_kernel kernel in
  ignore (Vmht_ir.Pass_manager.optimize f);
  Schedule.schedule_func ?resources f

let test_schedule_valid () =
  let s = schedule_of vecadd_kernel in
  Schedule.validate s;
  check_bool "has states" true (Schedule.total_states s > 0)

let test_schedule_respects_mem_port () =
  let s = schedule_of vecadd_kernel in
  check_bool "at most 1 mem op per cycle" true
    (Schedule.max_concurrency s Optypes.Mem <= 1)

let test_unlimited_not_slower () =
  let constrained = schedule_of vecadd_kernel in
  let unlimited =
    schedule_of ~resources:Schedule.unlimited_resources vecadd_kernel
  in
  check_bool "unlimited resources never lengthen the schedule" true
    (Schedule.total_states unlimited <= Schedule.total_states constrained)

let test_div_latency_in_makespan () =
  let k = Parser.parse_kernel "kernel f(x: int) : int { return x / 3; }" in
  let s = schedule_of k in
  check_bool "division latency covered" true
    (Schedule.total_states s >= Optypes.latency Optypes.Div)

(* ----------------------- binding ---------------------------------- *)

let test_bind_counts () =
  let s = schedule_of vecadd_kernel in
  let b = Bind.bind s in
  check_bool "has at least one ALU or mem unit" true (Bind.total_fus b >= 1);
  check_bool "registers sized" true (b.Bind.reg_count >= 1)

let test_bind_respects_schedule () =
  let s = schedule_of vecadd_kernel in
  let b = Bind.bind s in
  List.iter
    (fun (cls, n) ->
      check_bool
        (Printf.sprintf "units for %s cover peak" (Optypes.class_name cls))
        true
        (n >= Schedule.max_concurrency s cls))
    b.Bind.fu_counts

(* ----------------------- area ------------------------------------- *)

let test_area_positive () =
  let hw = Fsm.synthesize vecadd_kernel in
  check_bool "lut > 0" true (hw.Fsm.area.Optypes.lut > 0);
  check_bool "ff > 0" true (hw.Fsm.area.Optypes.ff > 0)

let test_area_grows_with_unroll () =
  let a1 = (Fsm.synthesize ~unroll:1 vecadd_kernel).Fsm.area in
  let a8 = (Fsm.synthesize ~unroll:8 vecadd_kernel).Fsm.area in
  check_bool "unrolled datapath is bigger" true
    (a8.Optypes.lut > a1.Optypes.lut)

(* ----------------------- accelerator simulation ------------------- *)

let test_accel_vecadd () =
  let data = Array.make 24 0 in
  for i = 0 to 7 do
    data.(i) <- i + 1;
    data.(8 + i) <- 2 * (i + 1)
  done;
  let ret, stats = accel_run vecadd_kernel ~data ~args:[ 0; 64; 128; 8 ] in
  check_bool "void" true (ret = None);
  for i = 0 to 7 do
    check_int "c[i]" (3 * (i + 1)) data.(16 + i)
  done;
  check_int "16 loads" 16 stats.Accel.loads;
  check_int "8 stores" 8 stats.Accel.stores;
  check_bool "cycles counted" true (stats.Accel.fsm_cycles > 0)

let test_accel_matches_interp_unrolled () =
  List.iter
    (fun unroll ->
      let data = Array.init 40 (fun i -> i * 3) in
      let reference = Array.copy data in
      ignore
        (Ast_interp.run_kernel
           (Ast_interp.array_memory reference)
           vecadd_kernel ~args:[ 0; 80; 160; 10 ]);
      let _, _ = accel_run ~unroll vecadd_kernel ~data ~args:[ 0; 80; 160; 10 ] in
      check_bool
        (Printf.sprintf "unroll=%d matches" unroll)
        true (data = reference))
    [ 1; 2; 4; 8 ]

let test_accel_timed_port_stalls () =
  (* A port with latency 5 per access: total time must include the
     stalls. *)
  let k =
    Parser.parse_kernel
      "kernel f(p: int*) : int { return p[0] + p[1] + p[2]; }"
  in
  let hw = Fsm.synthesize k in
  let eng = Engine.create () in
  let finished = ref 0 in
  Engine.spawn eng ~name:"accel" (fun () ->
      let data = [| 10; 20; 30 |] in
      let mem = Ast_interp.array_memory data in
      let port =
        {
          Accel.load =
            (fun a ->
              Engine.wait 5;
              mem.Ast_interp.load a);
          Accel.store =
            (fun a v ->
              Engine.wait 5;
              mem.Ast_interp.store a v);
        }
      in
      let ret = Accel.run hw ~port ~args:[ 0 ] in
      check_bool "sum" true (ret = Some 60);
      finished := Engine.now_p ());
  Engine.run eng;
  check_bool "3 loads stall >= 15 cycles" true (!finished >= 15)

let test_dual_port_overlaps () =
  (* Two loads whose addresses are both argument registers are ready in
     cycle 0; with 2 ports they issue together and their 10-cycle
     accesses overlap. *)
  let k =
    Parser.parse_kernel
      "kernel f(p: int*, q: int*) : int { return p[0] + q[0]; }"
  in
  let resources =
    { Schedule.default_resources with Schedule.mem = Schedule.flat_mem 2 }
  in
  let hw = Fsm.synthesize ~resources k in
  let run_with ports =
    let eng = Engine.create () in
    let span = ref 0 in
    Engine.spawn eng ~name:"accel" (fun () ->
        let data = [| 1; 2 |] in
        let mem = Ast_interp.array_memory data in
        let port =
          {
            Accel.load =
              (fun a ->
                Engine.wait 10;
                mem.Ast_interp.load a);
            Accel.store = (fun _ _ -> ());
          }
        in
        ignore (Accel.run ~ports hw ~port ~args:[ 0; 8 ]);
        span := Engine.now_p ());
    Engine.run eng;
    !span
  in
  check_bool "dual port faster than single" true (run_with 2 < run_with 1)

(* ----------------------- verilog ---------------------------------- *)

let test_verilog_emission () =
  let hw = Fsm.synthesize vecadd_kernel in
  let rtl = Verilog.emit hw in
  check_bool "module header" true
    (String.length rtl > 200
     && String.index_opt rtl 'm' <> None
     &&
     let has s sub =
       let n = String.length sub in
       let rec go i =
         i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
       in
       go 0
     in
     has rtl "module ht_vecadd" && has rtl "endmodule" && has rtl "case (state)")

(* ----------------------- qcheck ----------------------------------- *)

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100000)

let prop_accel_matches_reference =
  QCheck.Test.make ~count:120 ~name:"accelerator simulation matches AST semantics"
    seed_arb (fun seed ->
      let kernel = Gen_prog.gen_kernel seed in
      let a = seed mod 11 and b = seed mod 7 in
      let reference, ret_ref = Gen_prog.reference_run kernel ~a ~b in
      let data = Array.init Gen_prog.mem_words (fun i -> (i * 37) mod 101) in
      let ret, _ = accel_run kernel ~data ~args:[ 0; a; b ] in
      ret = ret_ref && data = reference)

let prop_schedule_always_valid =
  QCheck.Test.make ~count:120 ~name:"schedules satisfy dependences and resources"
    seed_arb (fun seed ->
      let kernel = Gen_prog.gen_kernel seed in
      let f = Vmht_ir.Lower.lower_kernel kernel in
      ignore (Vmht_ir.Pass_manager.optimize f);
      let s = Schedule.schedule_func f in
      match Schedule.validate s with () -> true | exception Failure _ -> false)

let prop_dual_port_equivalence =
  QCheck.Test.make ~count:60
    ~name:"dual-ported accelerator matches single-ported" seed_arb
    (fun seed ->
      let kernel = Gen_prog.gen_kernel seed in
      let a = seed mod 9 and b = seed mod 5 in
      let resources =
        { Schedule.default_resources with Schedule.mem = Schedule.flat_mem 2 }
      in
      let d1 = Array.init Gen_prog.mem_words (fun i -> (i * 37) mod 101) in
      let d2 = Array.copy d1 in
      let hw = Fsm.synthesize ~resources kernel in
      let run ports data =
        let eng = Engine.create () in
        let result = ref None in
        Engine.spawn eng ~name:"accel" (fun () ->
            let port = Accel.untimed_port (Ast_interp.array_memory data) in
            result := Some (Accel.run ~ports hw ~port ~args:[ 0; a; b ]));
        Engine.run eng;
        Option.get !result
      in
      let r1 = run 1 d1 in
      let r2 = run 2 d2 in
      r1 = r2 && d1 = d2)

let prop_unroll_accel_equivalence =
  QCheck.Test.make ~count:60 ~name:"unrolled accelerator matches rolled"
    seed_arb (fun seed ->
      let kernel = Gen_prog.gen_kernel seed in
      let a = seed mod 13 and b = seed mod 17 in
      let d1 = Array.init Gen_prog.mem_words (fun i -> (i * 37) mod 101) in
      let d2 = Array.copy d1 in
      let r1, _ = accel_run ~unroll:1 kernel ~data:d1 ~args:[ 0; a; b ] in
      let r2, _ = accel_run ~unroll:4 kernel ~data:d2 ~args:[ 0; a; b ] in
      r1 = r2 && d1 = d2)

(* ----------------------- memory model ----------------------------- *)

(* Bank arbitration in isolation: every non-memory resource is
   plentiful, so co-issue is decided by the bank model alone. *)
let ample_mem mem = { Schedule.unlimited_resources with Schedule.mem = mem }

let mem_peak mem src =
  let s = schedule_of ~resources:(ample_mem mem) (Parser.parse_kernel src) in
  Schedule.validate s;
  Schedule.max_concurrency s Optypes.Mem

let test_bank_arbitration () =
  (* Indices 1/2/3 keep every address chain one add deep, so both
     loads become ready in the same cycle and the bank model alone
     decides co-issue. *)
  let adjacent = "kernel f(m: int*) : int { return m[1] + m[2]; }" in
  let stride2 = "kernel f(m: int*) : int { return m[1] + m[3]; }" in
  let unknown = "kernel f(m: int*, i: int, j: int) : int { return m[i] + m[j]; }" in
  check_int "flat single port serializes" 1
    (mem_peak (Schedule.flat_mem 1) adjacent);
  check_int "adjacent words co-issue on 2 banks" 2
    (mem_peak (Schedule.banked_mem 2) adjacent);
  check_int "stride 2 collides on 2 banks" 1
    (mem_peak (Schedule.banked_mem 2) stride2);
  check_int "stride 2 co-issues on 4 banks" 2
    (mem_peak (Schedule.banked_mem 4) stride2);
  check_int "statically-unknown pair serializes" 1
    (mem_peak (Schedule.banked_mem 4) unknown)

let prop_banked_accel_matches_reference =
  QCheck.Test.make ~count:120
    ~name:"banked accelerator matches AST semantics (banks x unroll)"
    seed_arb (fun seed ->
      let kernel = Gen_prog.gen_kernel seed in
      let banks = [| 1; 2; 4 |].(seed mod 3) in
      let unroll = [| 1; 2; 4 |].(seed / 3 mod 3) in
      let resources =
        {
          Schedule.default_resources with
          Schedule.mem = Schedule.banked_mem ~ports_per_bank:2 banks;
        }
      in
      let f = Vmht_ir.Lower.lower_kernel kernel in
      ignore (Vmht_ir.Pass_manager.optimize f);
      (match Schedule.validate (Schedule.schedule_func ~resources f) with
       | () -> ()
       | exception Failure msg -> QCheck.Test.fail_report msg);
      let a = seed mod 11 and b = seed mod 7 in
      let reference, ret_ref = Gen_prog.reference_run kernel ~a ~b in
      let data = Array.init Gen_prog.mem_words (fun i -> (i * 37) mod 101) in
      let ret, _ =
        accel_run ~resources ~unroll
          ~ports:(Schedule.mem_total_ports resources.Schedule.mem)
          kernel ~data ~args:[ 0; a; b ]
      in
      ret = ret_ref && data = reference)

let test_multibank_strictly_faster () =
  List.iter
    (fun name ->
      let w = Vmht_workloads.Registry.find name in
      let cycles banks =
        let config =
          Vmht.Config.with_banks
            (Vmht.Config.with_unroll Vmht.Config.default 4)
            banks
        in
        let o = Vmht_eval.Common.run ~config Vmht_eval.Common.Vm w ~size:256 in
        check_bool (name ^ " correct") true o.Vmht_eval.Common.correct;
        Vmht_eval.Common.cycles o
      in
      check_bool
        (Printf.sprintf "%s: 4 banks strictly faster than 1" name)
        true
        (cycles 4 < cycles 1))
    [ "saxpy"; "stencil3" ]

let suite =
  [
    Alcotest.test_case "schedule: valid" `Quick test_schedule_valid;
    Alcotest.test_case "schedule: mem port limit" `Quick
      test_schedule_respects_mem_port;
    Alcotest.test_case "schedule: unlimited not slower" `Quick
      test_unlimited_not_slower;
    Alcotest.test_case "schedule: div latency" `Quick
      test_div_latency_in_makespan;
    Alcotest.test_case "bind: counts" `Quick test_bind_counts;
    Alcotest.test_case "bind: covers peaks" `Quick test_bind_respects_schedule;
    Alcotest.test_case "area: positive" `Quick test_area_positive;
    Alcotest.test_case "area: grows with unroll" `Quick
      test_area_grows_with_unroll;
    Alcotest.test_case "accel: vecadd" `Quick test_accel_vecadd;
    Alcotest.test_case "accel: unrolled matches interp" `Quick
      test_accel_matches_interp_unrolled;
    Alcotest.test_case "accel: timed port stalls" `Quick
      test_accel_timed_port_stalls;
    Alcotest.test_case "accel: dual port overlaps" `Quick
      test_dual_port_overlaps;
    Alcotest.test_case "verilog: emission" `Quick test_verilog_emission;
    Alcotest.test_case "mem model: bank arbitration" `Quick
      test_bank_arbitration;
    Alcotest.test_case "mem model: multi-bank strictly faster" `Quick
      test_multibank_strictly_faster;
    QCheck_alcotest.to_alcotest prop_accel_matches_reference;
    QCheck_alcotest.to_alcotest prop_banked_accel_matches_reference;
    QCheck_alcotest.to_alcotest prop_schedule_always_valid;
    QCheck_alcotest.to_alcotest prop_dual_port_equivalence;
    QCheck_alcotest.to_alcotest prop_unroll_accel_equivalence;
  ]
