(* Full-system integration: every workload runs in all three execution
   styles on a fresh SoC; results must match the expected values and
   the per-style invariants (staging only for DMA, TLB activity only
   for VM, ...) must hold. *)

open Vmht
module Workload = Vmht_workloads.Workload
module Registry = Vmht_workloads.Registry
module Addr_space = Vmht_vm.Addr_space

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* Small sizes keep `dune runtest` quick; these exercise multiple pages
   nonetheless (4 KiB pages, 8-byte words). *)
let test_size (w : Workload.t) =
  match w.Workload.name with
  | "mmul" -> 8
  | "spmv" -> 128
  | "tree_search" -> 256
  | _ -> 1024

type mode = Sw | Vm | Dma

let mode_name = function Sw -> "sw" | Vm -> "vm" | Dma -> "dma"

let run_workload ?(config = Config.default) mode (w : Workload.t) ~size =
  let soc = Soc.create config in
  let instance = w.Workload.setup (Soc.aspace soc) ~size ~seed:42 in
  let request =
    { Launch.args = instance.Workload.args; buffers = instance.Workload.buffers }
  in
  let result =
    Launch.run_to_completion soc (fun () ->
        match mode with
        | Sw ->
          let func = Flow.compile_sw config (Workload.kernel w) in
          Launch.run_sw soc func request
        | Vm ->
          let hw = Flow.run_exn
              (Flow.Request.of_kernel ~config ~style:Wrapper.Vm_iface
                 (Workload.kernel w)) in
          Launch.run_hw soc hw request
        | Dma ->
          let hw = Flow.run_exn
              (Flow.Request.of_kernel ~config ~style:Wrapper.Dma_iface
                 (Workload.kernel w)) in
          Launch.run_hw soc hw request)
  in
  (soc, instance, result)

let check_result (w : Workload.t) mode instance (result : Launch.result) =
  let label what = Printf.sprintf "%s/%s: %s" w.Workload.name (mode_name mode) what in
  check_bool (label "return value") true
    (result.Launch.ret = instance.Workload.expected_ret);
  check_bool (label "cycles positive") true (result.Launch.total_cycles > 0)

let check_outputs soc (w : Workload.t) mode instance =
  let load = Addr_space.load_word (Soc.aspace soc) in
  check_bool
    (Printf.sprintf "%s/%s: outputs" w.Workload.name (mode_name mode))
    true
    (instance.Workload.check load)

let test_all_workloads_all_modes () =
  List.iter
    (fun w ->
      let size = test_size w in
      List.iter
        (fun mode ->
          let soc, instance, result = run_workload mode w ~size in
          check_result w mode instance result;
          check_outputs soc w mode instance)
        [ Sw; Vm; Dma ])
    Registry.all

let test_vm_reports_tlb_activity () =
  let _, _, result = run_workload Vm (Registry.find "list_sum") ~size:512 in
  match result.Launch.mmu_stats with
  | Some s ->
    check_bool "accesses recorded" true (s.Vmht_vm.Mmu.accesses > 0);
    check_bool "some misses (scattered list)" true (s.Vmht_vm.Mmu.tlb_misses > 0)
  | None -> Alcotest.fail "VM run must report MMU stats"

let test_dma_has_staging_phase () =
  let _, _, result = run_workload Dma (Registry.find "vecadd") ~size:1024 in
  check_bool "staging cycles" true (result.Launch.phases.Launch.stage_cycles > 0);
  check_bool "drain cycles" true (result.Launch.phases.Launch.drain_cycles > 0)

let test_sw_has_no_accel_stats () =
  let _, _, result = run_workload Sw (Registry.find "vecadd") ~size:256 in
  check_bool "no accel stats" true (result.Launch.accel_stats = None);
  check_bool "no mmu stats" true (result.Launch.mmu_stats = None)

let test_hw_faster_than_sw_on_streaming () =
  let _, _, sw = run_workload Sw (Registry.find "vecadd") ~size:2048 in
  let _, _, vm = run_workload Vm (Registry.find "vecadd") ~size:2048 in
  check_bool "hardware thread outruns software" true
    (vm.Launch.total_cycles < sw.Launch.total_cycles)

let test_vm_beats_dma_on_pointer_chase () =
  let w = Registry.find "list_sum" in
  let _, _, vm = run_workload Vm w ~size:2048 in
  let _, _, dma = run_workload Dma w ~size:2048 in
  check_bool "VM wins the pointer chase" true
    (vm.Launch.total_cycles < dma.Launch.total_cycles)

let test_window_overflow_detected () =
  let config = { Config.default with Config.scratchpad_words = 64 } in
  let w = Registry.find "vecadd" in
  let soc = Soc.create config in
  let instance = w.Workload.setup (Soc.aspace soc) ~size:1024 ~seed:1 in
  let request =
    { Launch.args = instance.Workload.args; buffers = instance.Workload.buffers }
  in
  check_bool "raises Window_overflow" true
    (match
       Launch.run_to_completion soc (fun () ->
           let hw =
             Flow.run_exn
              (Flow.Request.of_kernel ~config ~style:Wrapper.Dma_iface
                 (Workload.kernel w))
           in
           Launch.run_hw soc hw request)
     with
     | _ -> false
     | exception Launch.Window_overflow _ -> true)

let test_demand_paging_in_vm_mode () =
  (* A kernel writing a lazily-allocated output region must fault its
     pages in through the MMU. *)
  let config = Config.default in
  let soc = Soc.create config in
  let aspace = Soc.aspace soc in
  let n = 2048 in
  let src =
    Vmht_workloads.Workload.alloc_array aspace ~words:n ~init:(fun i -> i)
  in
  let dst = Addr_space.alloc ~lazy_:true aspace ~bytes:(n * 8) in
  let kernel =
    Vmht_lang.Parser.parse_kernel
      {|kernel copy(a: int*, b: int*, n: int) {
          var i: int;
          for (i = 0; i < n; i = i + 1) { b[i] = a[i]; }
        }|}
  in
  let result =
    Launch.run_to_completion soc (fun () ->
        let hw = Flow.run_exn
          (Flow.Request.of_kernel ~config ~style:Wrapper.Vm_iface kernel) in
        Launch.run_hw soc hw
          { Launch.args = [ src; dst; n ]; buffers = [] })
  in
  check_bool "page faults occurred" true (result.Launch.page_faults > 0);
  check_int "all pages materialized" (n * 8 / 4096)
    (Addr_space.touched_lazy_pages aspace);
  check_int "data copied" 1234 (Addr_space.load_word aspace (dst + (1234 * 8)))

let test_multi_thread_concurrent () =
  (* Two VM-enabled hardware threads run concurrently; both results
     must be correct and the span shorter than the sum of solo runs. *)
  let config = Config.default in
  let soc = Soc.create config in
  let w = Registry.find "dotprod" in
  let i1 = w.Workload.setup (Soc.aspace soc) ~size:1024 ~seed:1 in
  let i2 = w.Workload.setup (Soc.aspace soc) ~size:1024 ~seed:2 in
  let hw = Flow.run_exn
              (Flow.Request.of_kernel ~config ~style:Wrapper.Vm_iface
                 (Workload.kernel w)) in
  let r1, r2 =
    Launch.run_to_completion soc (fun () ->
        let t1 =
          Vmht_rt.Hthreads.spawn ~name:"ht1" (fun () ->
              Launch.run_hw soc hw
                { Launch.args = i1.Workload.args; buffers = [] })
        in
        let t2 =
          Vmht_rt.Hthreads.spawn ~name:"ht2" (fun () ->
              Launch.run_hw soc hw
                { Launch.args = i2.Workload.args; buffers = [] })
        in
        (Vmht_rt.Hthreads.join t1, Vmht_rt.Hthreads.join t2))
  in
  check_bool "thread 1 result" true (r1.Launch.ret = i1.Workload.expected_ret);
  check_bool "thread 2 result" true (r2.Launch.ret = i2.Workload.expected_ret)

let test_dma_phases_sum_to_total () =
  let _, _, r = run_workload Dma (Registry.find "saxpy") ~size:1024 in
  let p = r.Launch.phases in
  check_int "phases partition the run" r.Launch.total_cycles
    (p.Launch.stage_cycles + p.Launch.compute_cycles + p.Launch.drain_cycles)

let test_deterministic_cycles () =
  let run () =
    let _, _, r = run_workload Vm (Registry.find "spmv") ~size:128 in
    r.Launch.total_cycles
  in
  check_int "same cycle count across runs" (run ()) (run ())

let suite =
  [
    Alcotest.test_case "all workloads x all modes" `Slow
      test_all_workloads_all_modes;
    Alcotest.test_case "vm: tlb activity" `Quick test_vm_reports_tlb_activity;
    Alcotest.test_case "dma: staging phases" `Quick test_dma_has_staging_phase;
    Alcotest.test_case "sw: no accel stats" `Quick test_sw_has_no_accel_stats;
    Alcotest.test_case "hw beats sw (streaming)" `Quick
      test_hw_faster_than_sw_on_streaming;
    Alcotest.test_case "vm beats dma (pointer chase)" `Quick
      test_vm_beats_dma_on_pointer_chase;
    Alcotest.test_case "dma: window overflow" `Quick
      test_window_overflow_detected;
    Alcotest.test_case "vm: demand paging" `Quick test_demand_paging_in_vm_mode;
    Alcotest.test_case "multi-thread concurrency" `Quick
      test_multi_thread_concurrent;
    Alcotest.test_case "dma: phases sum to total" `Quick
      test_dma_phases_sum_to_total;
    Alcotest.test_case "deterministic cycle counts" `Quick
      test_deterministic_cycles;
  ]
