open Vmht_mem
module Engine = Vmht_sim.Engine

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* Run a simulated process to completion and return its value. *)
let in_sim f =
  let eng = Engine.create () in
  let result = ref None in
  Engine.spawn eng ~name:"test" (fun () -> result := Some (f ()));
  Engine.run eng;
  Option.get !result

let in_sim_timed f =
  let eng = Engine.create () in
  let result = ref None in
  Engine.spawn eng ~name:"test" (fun () ->
      let v = f () in
      result := Some (v, Engine.now_p ()));
  Engine.run eng;
  Option.get !result

let make_bus () =
  let phys = Phys_mem.create ~bytes:(1 lsl 20) in
  let dram = Dram.create () in
  (phys, Bus.create phys dram)

(* ------------------------- Phys_mem ------------------------------- *)

let test_phys_rw () =
  let m = Phys_mem.create ~bytes:1024 in
  Phys_mem.write m 0 42;
  Phys_mem.write m 1016 7;
  check_int "read back" 42 (Phys_mem.read m 0);
  check_int "read back high" 7 (Phys_mem.read m 1016)

let test_phys_bad_address () =
  let m = Phys_mem.create ~bytes:1024 in
  let rejects addr =
    match Phys_mem.read m addr with
    | _ -> false
    | exception Phys_mem.Bad_address _ -> true
  in
  check_bool "unaligned" true (rejects 4);
  check_bool "negative" true (rejects (-8));
  check_bool "out of range" true (rejects 1024)

(* ------------------------- Dram ----------------------------------- *)

let test_dram_row_hit_cheaper () =
  let d = Dram.create () in
  let miss = Dram.access_latency d ~addr:0 in
  let hit = Dram.access_latency d ~addr:8 in
  check_bool "hit cheaper than miss" true (hit < miss);
  let conflict = Dram.access_latency d ~addr:(16 * 2048 * 8) in
  check_bool "row conflict costs precharge" true (conflict > hit)

let test_dram_burst_amortizes () =
  let d = Dram.create () in
  let burst = Dram.burst_latency d ~addr:0 ~words:16 in
  let d2 = Dram.create () in
  let singles =
    List.init 16 (fun i -> Dram.access_latency d2 ~addr:(i * 8))
    |> List.fold_left ( + ) 0
  in
  check_bool "burst beats singles" true (burst < singles)

let test_dram_stats () =
  let d = Dram.create () in
  ignore (Dram.access_latency d ~addr:0);
  ignore (Dram.access_latency d ~addr:8);
  let s = Dram.stats d in
  check_int "2 accesses" 2 s.Dram.accesses;
  check_int "1 hit" 1 s.Dram.row_hits

(* ------------------------- Bus ------------------------------------ *)

let test_bus_moves_data () =
  let phys, bus = make_bus () in
  Phys_mem.write phys 64 123;
  let v = in_sim (fun () -> Bus.read_word bus 64) in
  check_int "read over bus" 123 v;
  ignore (in_sim (fun () -> Bus.write_word bus 72 9));
  check_int "write over bus" 9 (Phys_mem.read phys 72)

let test_bus_burst_roundtrip () =
  let phys, bus = make_bus () in
  let data = Array.init 32 (fun i -> i * i) in
  ignore (in_sim (fun () -> Bus.write_burst bus ~addr:256 data));
  let back = in_sim (fun () -> Bus.read_burst bus ~addr:256 ~words:32) in
  Alcotest.(check (array int)) "burst roundtrip" data back;
  ignore phys

let test_bus_serializes_masters () =
  let _, bus = make_bus () in
  let eng = Engine.create () in
  let finish_times = ref [] in
  for i = 0 to 2 do
    Engine.spawn eng ~name:(Printf.sprintf "m%d" i) (fun () ->
        ignore (Bus.read_word bus (i * 8));
        finish_times := Engine.now_p () :: !finish_times)
  done;
  Engine.run eng;
  let sorted = List.sort_uniq compare !finish_times in
  check_int "three distinct completion times" 3 (List.length sorted)

let test_bus_takes_time () =
  let _, bus = make_bus () in
  let _, elapsed = in_sim_timed (fun () -> Bus.read_word bus 0) in
  check_bool "nonzero latency" true (elapsed > 0)

(* ------------------------- Cache ---------------------------------- *)

let test_cache_hits_after_miss () =
  let phys, bus = make_bus () in
  Phys_mem.write phys 128 5;
  let cache = Cache.create bus in
  let v1, v2 =
    in_sim (fun () ->
        let v1 = Cache.read cache ~addr:128 ~phys:128 in
        let v2 = Cache.read cache ~addr:128 ~phys:128 in
        (v1, v2))
  in
  check_int "value" 5 v1;
  check_int "same" 5 v2;
  let s = Cache.stats cache in
  check_int "one miss" 1 s.Cache.read_misses;
  check_int "one hit" 1 s.Cache.read_hits

let test_cache_line_granularity () =
  let phys, bus = make_bus () in
  for i = 0 to 3 do
    Phys_mem.write phys (i * 8) (100 + i)
  done;
  let cache = Cache.create bus in
  ignore (in_sim (fun () -> Cache.read cache ~addr:0 ~phys:0));
  let v = in_sim (fun () -> Cache.read cache ~addr:8 ~phys:8) in
  check_int "neighbor fetched with line" 101 v;
  check_int "only one miss" 1 (Cache.stats cache).Cache.read_misses

let test_cache_write_back () =
  let phys, bus = make_bus () in
  let cache = Cache.create bus in
  ignore (in_sim (fun () -> Cache.write cache ~addr:64 ~phys:64 77));
  check_bool "not in DRAM before flush" true (Phys_mem.read phys 64 <> 77);
  check_int "one dirty line" 1 (Cache.dirty_lines cache);
  ignore (in_sim (fun () -> Cache.flush cache));
  check_int "visible after flush" 77 (Phys_mem.read phys 64);
  check_int "clean after flush" 0 (Cache.dirty_lines cache)

let test_cache_eviction_writes_back () =
  let phys, bus = make_bus () in
  let config =
    { Cache.size_bytes = 64; line_bytes = 32; ways = 1; hit_latency = 1 }
  in
  let cache = Cache.create ~config bus in
  in_sim (fun () ->
      Cache.write cache ~addr:0 ~phys:0 11;
      (* Touch conflicting lines until line 0 is evicted. *)
      for i = 1 to 7 do
        ignore (Cache.read cache ~addr:(i * 64) ~phys:(i * 64))
      done);
  check_int "dirty victim written back" 11 (Phys_mem.read phys 0);
  check_bool "writeback counted" true ((Cache.stats cache).Cache.writebacks >= 1)

let test_cache_invalidate () =
  let phys, bus = make_bus () in
  Phys_mem.write phys 0 1;
  let cache = Cache.create bus in
  ignore (in_sim (fun () -> Cache.read cache ~addr:0 ~phys:0));
  (* An accelerator writes DRAM behind the cache's back. *)
  Phys_mem.write phys 0 2;
  let stale = in_sim (fun () -> Cache.read cache ~addr:0 ~phys:0) in
  check_int "stale before maintenance" 1 stale;
  Cache.invalidate_all cache;
  let fresh = in_sim (fun () -> Cache.read cache ~addr:0 ~phys:0) in
  check_int "fresh after invalidate" 2 fresh

let test_cache_invalidate_preserves_dirty () =
  (* Regression: invalidate_all used to drop dirty lines on the floor,
     losing the last stores a wrapper's stream buffer had absorbed
     before cache maintenance ran.  An invalidate must behave like
     flush-then-drop. *)
  let phys, bus = make_bus () in
  let cache = Cache.create bus in
  ignore (in_sim (fun () -> Cache.write cache ~addr:96 ~phys:96 41));
  check_int "line is dirty" 1 (Cache.dirty_lines cache);
  in_sim (fun () -> Cache.invalidate_all cache);
  check_int "store reached DRAM" 41 (Phys_mem.read phys 96);
  check_int "no dirty lines left" 0 (Cache.dirty_lines cache);
  check_bool "write-back counted" true
    ((Cache.stats cache).Cache.writebacks >= 1);
  (* And the line really was dropped: the next read misses and refetches. *)
  let misses_before = (Cache.stats cache).Cache.read_misses in
  let v = in_sim (fun () -> Cache.read cache ~addr:96 ~phys:96) in
  check_int "refetched value" 41 v;
  check_int "read missed after invalidate" (misses_before + 1)
    (Cache.stats cache).Cache.read_misses

let test_cache_eviction () =
  let phys, bus = make_bus () in
  let config =
    { Cache.size_bytes = 256; line_bytes = 32; ways = 2; hit_latency = 1 }
  in
  let cache = Cache.create ~config bus in
  ignore phys;
  in_sim (fun () ->
      (* Touch many distinct lines mapping to few sets. *)
      for i = 0 to 63 do
        ignore (Cache.read cache ~addr:(i * 32) ~phys:(i * 32))
      done);
  check_int "all misses" 64 (Cache.stats cache).Cache.read_misses

(* ------------------------- Scratchpad ----------------------------- *)

let test_scratchpad_windows () =
  let pad = Scratchpad.create ~words:64 ~access_latency:1 in
  Scratchpad.map_window pad ~base:0x10000 ~words:16;
  Scratchpad.map_window pad ~base:0x40000 ~words:16;
  check_int "first window at 0" 0 (Scratchpad.local_of_vaddr pad 0x10000);
  check_int "second window after first" 16
    (Scratchpad.local_of_vaddr pad 0x40000);
  check_int "offset inside window" 17
    (Scratchpad.local_of_vaddr pad (0x40000 + 8));
  check_bool "outside raises" true
    (match Scratchpad.local_of_vaddr pad 0x99999 with
     | _ -> false
     | exception Scratchpad.Out_of_window _ -> true)

let test_scratchpad_overlap_rejected () =
  let pad = Scratchpad.create ~words:64 ~access_latency:1 in
  Scratchpad.map_window pad ~base:0x1000 ~words:16;
  check_bool "overlap rejected" true
    (match Scratchpad.map_window pad ~base:0x1000 ~words:4 with
     | () -> false
     | exception Invalid_argument _ -> true)

let test_scratchpad_capacity () =
  let pad = Scratchpad.create ~words:8 ~access_latency:1 in
  check_bool "over capacity rejected" true
    (match Scratchpad.map_window pad ~base:0 ~words:9 with
     | () -> false
     | exception Invalid_argument _ -> true)

let test_scratchpad_rw () =
  let pad = Scratchpad.create ~words:8 ~access_latency:2 in
  Scratchpad.map_window pad ~base:0x2000 ~words:8;
  let v, elapsed =
    in_sim_timed (fun () ->
        Scratchpad.store pad 0x2008 55;
        Scratchpad.load pad 0x2008)
  in
  check_int "value" 55 v;
  check_int "2 accesses x 2 cycles" 4 elapsed

(* ------------------------- Dma ------------------------------------ *)

let test_dma_copy_roundtrip () =
  let phys, bus = make_bus () in
  for i = 0 to 99 do
    Phys_mem.write phys (i * 8) (i + 1)
  done;
  let pad = Scratchpad.create ~words:128 ~access_latency:1 in
  let dma = Dma.create bus in
  in_sim (fun () ->
      Dma.copy_in dma pad ~src_phys:0 ~dst_word:0 ~words:100;
      (* mirror back to a different DRAM region *)
      Dma.copy_out dma pad ~src_word:0 ~dst_phys:4096 ~words:100);
  for i = 0 to 99 do
    check_int "copied" (i + 1) (Phys_mem.read phys (4096 + (i * 8)))
  done;
  let s = Dma.stats dma in
  check_int "words in" 100 s.Dma.words_in;
  check_int "words out" 100 s.Dma.words_out

let test_dma_scattered () =
  let phys, bus = make_bus () in
  for i = 0 to 31 do
    Phys_mem.write phys (8192 + (i * 8)) (500 + i);
    Phys_mem.write phys (32768 + (i * 8)) (900 + i)
  done;
  let pad = Scratchpad.create ~words:64 ~access_latency:1 in
  let dma = Dma.create bus in
  in_sim (fun () ->
      Dma.copy_in_scattered dma pad
        ~chunks:[ (8192, 32); (32768, 32) ]
        ~dst_word:0);
  check_int "first chunk" 500 (Scratchpad.read_local pad 0);
  check_int "second chunk" 900 (Scratchpad.read_local pad 32)

let test_dma_burst_cheaper_than_words () =
  let _, bus = make_bus () in
  let pad = Scratchpad.create ~words:256 ~access_latency:1 in
  let dma = Dma.create ~setup_cycles:0 bus in
  let _, burst_time =
    in_sim_timed (fun () ->
        Dma.copy_in dma pad ~src_phys:0 ~dst_word:0 ~words:256)
  in
  let _, bus2 = make_bus () in
  let _, word_time =
    in_sim_timed (fun () ->
        for i = 0 to 255 do
          ignore (Bus.read_word bus2 (i * 8))
        done)
  in
  check_bool "DMA bursts beat word-at-a-time" true (burst_time < word_time / 2)

(* ------------------------- qcheck models -------------------------- *)

(* The cache, driven with random reads/writes, must behave exactly like
   flat memory once flushed. *)
let prop_cache_matches_flat_memory =
  QCheck.Test.make ~count:100 ~name:"cache: random ops match flat memory"
    QCheck.(list (pair (int_bound 255) (option (int_bound 10_000))))
    (fun ops ->
      let phys, bus = make_bus () in
      let shadow = Array.init 256 (fun i -> Phys_mem.read phys (i * 8)) in
      let config =
        { Cache.size_bytes = 256; line_bytes = 32; ways = 2; hit_latency = 1 }
      in
      let cache = Cache.create ~config bus in
      in_sim (fun () ->
          List.iter
            (fun (word, write) ->
              let addr = word * 8 in
              match write with
              | Some v ->
                shadow.(word) <- v;
                Cache.write cache ~addr ~phys:addr v
              | None ->
                let got = Cache.read cache ~addr ~phys:addr in
                if got <> shadow.(word) then failwith "stale read")
            ops;
          Cache.flush cache);
      Array.for_all Fun.id
        (Array.init 256 (fun i -> Phys_mem.read phys (i * 8) = shadow.(i))))

let prop_dram_burst_no_worse_than_singles =
  QCheck.Test.make ~count:100 ~name:"dram: bursts never cost more than singles"
    QCheck.(pair (int_bound 4000) (int_range 1 64))
    (fun (start_word, words) ->
      let addr = start_word * 8 in
      let d1 = Dram.create () in
      let burst = Dram.burst_latency d1 ~addr ~words in
      let d2 = Dram.create () in
      let singles = ref 0 in
      for i = 0 to words - 1 do
        singles := !singles + Dram.access_latency d2 ~addr:(addr + (i * 8))
      done;
      burst <= !singles)

let prop_scratchpad_window_translation =
  QCheck.Test.make ~count:100 ~name:"scratchpad: window translation is affine"
    QCheck.(pair (int_range 1 64) (int_bound 63))
    (fun (words, probe) ->
      let pad = Scratchpad.create ~words:128 ~access_latency:1 in
      let base = 0x4000 in
      Scratchpad.map_window pad ~base ~words;
      let probe = probe mod words in
      Scratchpad.local_of_vaddr pad (base + (probe * 8)) = probe)

let suite =
  [
    Alcotest.test_case "phys: read/write" `Quick test_phys_rw;
    Alcotest.test_case "phys: bad address" `Quick test_phys_bad_address;
    Alcotest.test_case "dram: row hit cheaper" `Quick test_dram_row_hit_cheaper;
    Alcotest.test_case "dram: burst amortizes" `Quick test_dram_burst_amortizes;
    Alcotest.test_case "dram: stats" `Quick test_dram_stats;
    Alcotest.test_case "bus: moves data" `Quick test_bus_moves_data;
    Alcotest.test_case "bus: burst roundtrip" `Quick test_bus_burst_roundtrip;
    Alcotest.test_case "bus: serializes masters" `Quick
      test_bus_serializes_masters;
    Alcotest.test_case "bus: takes time" `Quick test_bus_takes_time;
    Alcotest.test_case "cache: hit after miss" `Quick test_cache_hits_after_miss;
    Alcotest.test_case "cache: line granularity" `Quick
      test_cache_line_granularity;
    Alcotest.test_case "cache: write-back + flush" `Quick test_cache_write_back;
    Alcotest.test_case "cache: eviction writes back" `Quick
      test_cache_eviction_writes_back;
    Alcotest.test_case "cache: invalidate" `Quick test_cache_invalidate;
    Alcotest.test_case "cache: invalidate preserves dirty" `Quick
      test_cache_invalidate_preserves_dirty;
    Alcotest.test_case "cache: eviction" `Quick test_cache_eviction;
    Alcotest.test_case "scratchpad: windows" `Quick test_scratchpad_windows;
    Alcotest.test_case "scratchpad: overlap rejected" `Quick
      test_scratchpad_overlap_rejected;
    Alcotest.test_case "scratchpad: capacity" `Quick test_scratchpad_capacity;
    Alcotest.test_case "scratchpad: timed rw" `Quick test_scratchpad_rw;
    Alcotest.test_case "dma: copy roundtrip" `Quick test_dma_copy_roundtrip;
    Alcotest.test_case "dma: scattered" `Quick test_dma_scattered;
    Alcotest.test_case "dma: bursts amortize" `Quick
      test_dma_burst_cheaper_than_words;
    QCheck_alcotest.to_alcotest prop_cache_matches_flat_memory;
    QCheck_alcotest.to_alcotest prop_dram_burst_no_worse_than_singles;
    QCheck_alcotest.to_alcotest prop_scratchpad_window_translation;
  ]
