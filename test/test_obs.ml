(* Observability layer: JSON round-trips, metrics histograms, the
   trace ring's retention properties, Chrome-trace export shape, and —
   the load-bearing invariant — per-phase cycle attribution summing
   exactly to every run's total cycles, for every workload in every
   interface style. *)

open Vmht_obs
module Workload = Vmht_workloads.Workload
module Registry = Vmht_workloads.Registry

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_str = Alcotest.(check string)

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

(* ------------------------- Json ----------------------------------- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("null", Json.Null);
        ("flag", Json.Bool true);
        ("int", Json.Int (-42));
        ("float", Json.Float 1.5);
        ("str", Json.String "hi \"there\"\n\ttab");
        ("list", Json.List [ Json.Int 1; Json.Int 2; Json.Int 3 ]);
        ("nested", Json.Obj [ ("k", Json.String "v") ]);
      ]
  in
  let parsed = Json.of_string (Json.to_string doc) in
  check_bool "compact round-trips" true (parsed = doc);
  let parsed = Json.of_string (Json.to_string_pretty doc) in
  check_bool "pretty round-trips" true (parsed = doc)

let test_json_escapes () =
  let s = Json.to_string (Json.String "a\"b\\c\nd") in
  check_str "escaped" {|"a\"b\\c\nd"|} s;
  (match Json.of_string {|"Aé"|} with
   | Json.String v -> check_str "unicode escapes decode" "A\xc3\xa9" v
   | _ -> Alcotest.fail "expected a string");
  match Json.of_string {|"😀"|} with
  | Json.String v ->
    check_str "surrogate pair decodes" "\xf0\x9f\x98\x80" v
  | _ -> Alcotest.fail "expected a string"

let test_json_parse_errors () =
  let fails s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> true
    | _ -> false
  in
  check_bool "truncated object" true (fails {|{"a": 1|});
  check_bool "trailing garbage" true (fails "[1, 2] x");
  check_bool "bare word" true (fails "frue")

(* ------------------------- Metrics -------------------------------- *)

let test_histogram_buckets () =
  (* HDR geometry: 16 sub-buckets per power of two, so values below 32
     are recorded exactly and every bucket above keeps relative width
     <= 1/16. *)
  for v = 0 to 31 do
    check_int "small values are exact" v (Metrics.bucket_index v);
    check_int "small uppers are the value" v (Metrics.bucket_upper v)
  done;
  check_int "32 opens the first lossy bucket" 32 (Metrics.bucket_index 32);
  check_int "33 shares it" 32 (Metrics.bucket_index 33);
  check_int "34 is the next" 33 (Metrics.bucket_index 34);
  (* Every bucket's upper bound must land in that bucket, the next
     value in the next one, and the bucket width must respect the
     1/16 relative-error contract. *)
  for k = 1 to 400 do
    let lower = Histogram.bucket_lower k in
    let upper = Metrics.bucket_upper k in
    check_int "lower in bucket" k (Metrics.bucket_index lower);
    check_int "upper in bucket" k (Metrics.bucket_index upper);
    check_int "upper+1 in next" (k + 1) (Metrics.bucket_index (upper + 1));
    check_bool "relative width <= 1/16" true
      (16 * (upper - lower) <= max 16 lower)
  done

let test_histogram_snapshot () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "t.lat" in
  List.iter (Metrics.observe h) [ 1; 1; 2; 3; 100 ];
  let s = Metrics.histogram_snapshot h in
  check_int "count" 5 s.Metrics.count;
  check_int "sum" 107 s.Metrics.sum;
  check_int "min" 1 s.Metrics.min;
  check_int "max" 100 s.Metrics.max;
  (* Rank ceil(0.5 * 5) = 3 -> the third smallest sample, exactly. *)
  check_int "p50" 2 s.Metrics.p50;
  (* p95 hits the top bucket; quantiles clamp to the observed max. *)
  check_int "p95 clamped to max" 100 s.Metrics.p95;
  check_int "p99 clamped to max" 100 s.Metrics.p99

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.observe a) [ 1; 5; 1000 ];
  List.iter (Histogram.observe b) [ 2; 700000 ];
  Histogram.merge_into ~src:b ~dst:a;
  check_int "merged count" 5 (Histogram.count a);
  check_int "merged sum" (1 + 5 + 1000 + 2 + 700000) (Histogram.sum a);
  check_int "merged min" 1 (Histogram.min_value a);
  check_int "merged max" 700000 (Histogram.max_value a);
  check_int "src untouched" 2 (Histogram.count b)

(* Quantiles against the naive sorted-array oracle: the histogram must
   return exactly the upper bound of the bucket holding the oracle's
   rank-ceil(q*n) element, clamped to the observed max. *)
let quantile_oracle_property =
  QCheck.Test.make ~count:300 ~name:"histogram quantile = bucketed oracle"
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 200) (int_range 0 2_000_000))
        (int_range 1 99))
    (fun (samples, pct) ->
      QCheck.assume (samples <> []);
      let q = float_of_int pct /. 100. in
      let h = Histogram.create () in
      List.iter (Histogram.observe h) samples;
      let sorted = List.sort compare samples in
      let n = List.length sorted in
      let rank =
        (* First 1-based rank r with r >= q*n — the element the
           cumulative bucket scan stops at. *)
        let r = int_of_float (ceil (q *. float_of_int n)) in
        max 1 (min n r)
      in
      let oracle = List.nth sorted (rank - 1) in
      let expected =
        min (Histogram.max_value h)
          (Histogram.bucket_upper (Histogram.bucket_index oracle))
      in
      Histogram.quantile h q = expected
      (* And the bucketed answer is within 1/16 of the true value. *)
      && Histogram.quantile h q >= oracle
      && 16 * (Histogram.quantile h q - oracle) <= max 16 oracle)

let test_metrics_snapshot_sorted () =
  let m = Metrics.create () in
  Metrics.incr (Metrics.counter m "b.two");
  Metrics.incr ~by:5 (Metrics.counter m "a.one");
  Metrics.set_gauge (Metrics.gauge m "g.rate") 0.5;
  let s = Metrics.snapshot m in
  check_bool "counters sorted" true
    (List.map fst s.Metrics.counters = [ "a.one"; "b.two" ]);
  check_int "incr by" 5 (List.assoc "a.one" s.Metrics.counters);
  (* The JSON rendering parses back. *)
  let json = Json.of_string (Json.to_string (Metrics.snapshot_to_json s)) in
  match Json.member "counters" json with
  | Some (Json.Obj _) -> ()
  | _ -> Alcotest.fail "counters object expected"

(* ------------------------- Trace ring (qcheck) -------------------- *)

let ring_property =
  QCheck.Test.make ~count:200
    ~name:"trace ring keeps the newest [capacity] events"
    QCheck.(pair (int_range 1 40) (int_range 0 120))
    (fun (capacity, n) ->
      let tr = Vmht_sim.Trace.create ~capacity () in
      Vmht_sim.Trace.enable tr true;
      for i = 0 to n - 1 do
        Vmht_sim.Trace.record tr ~at:i ~component:"c"
          (Event.Note (string_of_int i))
      done;
      let events = Vmht_sim.Trace.events tr in
      Vmht_sim.Trace.count tr = min n capacity
      && Vmht_sim.Trace.dropped tr = max 0 (n - capacity)
      && List.length events = min n capacity
      && List.for_all2
           (fun (e : Event.t) expected -> e.Event.at = expected)
           events
           (List.init (min n capacity) (fun i -> max 0 (n - capacity) + i)))

(* ------------------------- Chrome trace --------------------------- *)

let sample_events =
  [
    {
      Event.at = 10;
      duration = 5;
      component = "bus";
      kind = Event.Bus_txn { op = Event.Read; addr = 0x40; words = 4 };
    };
    {
      Event.at = 12;
      duration = 0;
      component = "mmu";
      kind = Event.Tlb_miss { vaddr = 0x1000; asid = 0 };
    };
    {
      Event.at = 13;
      duration = 30;
      component = "mmu";
      kind = Event.Ptw_walk { vaddr = 0x1000; levels = 2 };
    };
  ]

let test_chrome_trace_shape () =
  let doc = Json.of_string (Chrome_trace.to_string sample_events) in
  (match Json.member "displayTimeUnit" doc with
   | Some (Json.String _) -> ()
   | _ -> Alcotest.fail "displayTimeUnit missing");
  let entries =
    match Json.member "traceEvents" doc with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "traceEvents array missing"
  in
  (* process_name + 2 thread_name metadata events + 3 payload events. *)
  check_int "entry count" 6 (List.length entries);
  List.iter
    (fun e ->
      check_bool "ph present" true
        (match Json.member "ph" e with
         | Some (Json.String _) -> true
         | _ -> false);
      check_bool "pid present" true (Json.member "pid" e <> None);
      check_bool "tid present" true (Json.member "tid" e <> None))
    entries;
  let payload =
    List.filter
      (fun e -> Json.member "ph" e <> Some (Json.String "M"))
      entries
  in
  check_int "payload count" 3 (List.length payload);
  List.iter
    (fun e ->
      check_bool "ts present" true
        (match Json.member "ts" e with Some (Json.Int _) -> true | _ -> false))
    payload;
  (* The bus span comes out as a complete event with its duration. *)
  let bus =
    List.find
      (fun e -> Json.member "cat" e = Some (Json.String "bus"))
      payload
  in
  check_bool "span is ph=X" true (Json.member "ph" bus = Some (Json.String "X"));
  check_bool "dur carried" true (Json.member "dur" bus = Some (Json.Int 5));
  check_bool "ts is start" true (Json.member "ts" bus = Some (Json.Int 10));
  (* Instants are thread-scoped. *)
  let miss =
    List.find
      (fun e -> Json.member "name" e = Some (Json.String "tlb_miss"))
      payload
  in
  check_bool "instant is ph=i" true
    (Json.member "ph" miss = Some (Json.String "i"))

(* ------------------------- Attribution ---------------------------- *)

let test_waterfall_renders () =
  let a =
    {
      Attribution.translate = 100;
      walk = 200;
      fault = 0;
      bus_wait = 50;
      dram = 400;
      compute = 1000;
      dma_stage = 0;
      drain = 250;
    }
  in
  check_int "total" 2000 (Attribution.total a);
  let s = Attribution.waterfall a in
  check_bool "compute row" true (contains s "compute");
  check_bool "zero rows dropped" true (not (contains s "fault"))

(* Small sizes (mirroring test_system) keep the full sweep quick while
   still crossing several pages. *)
let attr_size (w : Workload.t) =
  match w.Workload.name with
  | "mmul" -> 8
  | "spmv" -> 128
  | "tree_search" -> 256
  | _ -> 1024

let test_attribution_sums_to_total () =
  List.iter
    (fun (w : Workload.t) ->
      List.iter
        (fun mode ->
          let o =
            Vmht_eval.Common.run mode w ~size:(attr_size w)
          in
          let r = o.Vmht_eval.Common.result in
          let a = r.Vmht.Launch.attribution in
          let label what =
            Printf.sprintf "%s/%s: %s" w.Workload.name
              (Vmht_eval.Common.mode_name mode)
              what
          in
          List.iter
            (fun (seg, v) ->
              check_bool (label (seg ^ " non-negative")) true (v >= 0))
            (Attribution.to_list a);
          check_int
            (label "attribution sums to total_cycles")
            r.Vmht.Launch.total_cycles (Attribution.total a))
        [ Vmht_eval.Common.Sw; Vmht_eval.Common.Vm; Vmht_eval.Common.Dma ])
    Registry.all

let test_metrics_cover_components () =
  let o =
    Vmht_eval.Common.run ~observe:true Vmht_eval.Common.Vm
      (Registry.find "vecadd") ~size:512
  in
  let soc = o.Vmht_eval.Common.soc in
  let report =
    Vmht.Report.gather soc ~workload:"vecadd" ~mode:"vm" ~size:512
      o.Vmht_eval.Common.result
  in
  let counters = report.Vmht.Report.metrics.Metrics.counters in
  let positive name =
    match List.assoc_opt name counters with
    | Some v -> v > 0
    | None -> false
  in
  List.iter
    (fun name -> check_bool (name ^ " > 0") true (positive name))
    [
      "tlb.lookups";
      "ptw.walks";
      "mmu.accesses";
      "bus.reads";
      "bus.words_moved";
      "dram.accesses";
      "stream_buffer.read_misses";
    ];
  check_bool "counter exists even when zero" true
    (List.mem_assoc "dma.transfers" counters);
  (* Observers fed the duration histograms while the run was traced. *)
  let hist name =
    List.assoc_opt name report.Vmht.Report.metrics.Metrics.histograms
  in
  (match hist "bus.txn_cycles" with
   | Some h -> check_bool "bus latency samples" true (h.Metrics.count > 0)
   | None -> Alcotest.fail "bus.txn_cycles histogram missing");
  (* And the machine-readable report parses back as JSON. *)
  let json =
    Json.of_string (Json.to_string (Vmht.Report.to_json report))
  in
  check_bool "attribution in report json" true
    (Json.member "attribution" json <> None)

let test_dma_burst_events () =
  let o =
    Vmht_eval.Common.run ~observe:true Vmht_eval.Common.Dma
      (Registry.find "vecadd") ~size:256
  in
  let events =
    Vmht_sim.Trace.events (Vmht.Soc.trace o.Vmht_eval.Common.soc)
  in
  check_bool "dma bursts observed" true
    (List.exists
       (fun (e : Event.t) ->
         match e.Event.kind with Event.Dma_burst _ -> true | _ -> false)
       events);
  check_bool "phase markers observed" true
    (List.exists
       (fun (e : Event.t) ->
         match e.Event.kind with
         | Event.Phase_begin { phase = "stage" } -> true
         | _ -> false)
       events)

(* ------------------------- Spans ---------------------------------- *)

let test_span_nesting_parallel () =
  Vmht_obs.Span.enable true;
  Vmht_par.Parmap.set_jobs 4;
  Fun.protect
    ~finally:(fun () ->
      Vmht_par.Parmap.shutdown ();
      Vmht_obs.Span.enable false)
    (fun () ->
      let sum =
        Span.with_span ~cat:"test" "sweep" (fun () ->
            List.fold_left ( + ) 0
              (Vmht_par.Parmap.map
                 (fun x ->
                   Span.with_span ~cat:"test" "inner" (fun () -> x * 2))
                 (List.init 16 Fun.id)))
      in
      check_int "pool still computes" (16 * 15) sum;
      let spans = Span.spans () in
      check_int "sweep + 16 tasks + 16 inners" 33 (List.length spans);
      let by_id =
        List.fold_left
          (fun acc (s : Span.t) -> (s.Span.id, s) :: acc)
          [] spans
      in
      check_int "ids unique" (List.length spans) (List.length by_id);
      let sweep =
        List.find (fun (s : Span.t) -> s.Span.name = "sweep") spans
      in
      List.iter
        (fun (s : Span.t) ->
          check_bool (s.Span.name ^ ": begin before end (seq)") true
            (s.Span.seq0 < s.Span.seq1);
          check_bool (s.Span.name ^ ": non-negative duration") true
            (s.Span.t1_ns >= s.Span.t0_ns);
          (match s.Span.parent with
           | None -> ()
           | Some pid -> (
             match List.assoc_opt pid by_id with
             | None -> Alcotest.fail (s.Span.name ^ ": dangling parent")
             | Some p ->
               (* Same track, and strictly nested in global begin/end
                  order — true whatever the scheduler did. *)
               check_int (s.Span.name ^ ": parent on same tid") p.Span.tid
                 s.Span.tid;
               check_bool (s.Span.name ^ ": nested inside parent") true
                 (p.Span.seq0 < s.Span.seq0 && s.Span.seq1 < p.Span.seq1)));
          if String.length s.Span.name >= 5 && String.sub s.Span.name 0 5 = "task:"
          then
            check_bool "task flows from the submitting sweep" true
              (s.Span.flow_from = Some sweep.Span.id))
        spans;
      (* The Chrome export stays structurally sound: every X event
         carries pid/tid/ts/dur and flow pairs come s-then-f. *)
      let doc = Span.to_chrome_json spans in
      match Json.member "traceEvents" doc with
      | Some (Json.List evs) ->
        check_bool "export non-empty" true (List.length evs > List.length spans)
      | _ -> Alcotest.fail "traceEvents missing")

(* ------------------------- Phase profiler ------------------------- *)

let test_profile_exact_attribution_engine () =
  Profile.enable true;
  Fun.protect
    ~finally:(fun () -> Profile.enable false)
    (fun () ->
      let eng = Vmht_sim.Engine.create () in
      Vmht_sim.Engine.spawn eng ~name:"t" (fun () ->
          Vmht_sim.Engine.with_phase Profile.Actor (fun () ->
              Vmht_sim.Engine.wait 10);
          Vmht_sim.Engine.with_phase Profile.Memory (fun () ->
              Vmht_sim.Engine.wait 5;
              Vmht_sim.Engine.with_phase Profile.Translate (fun () ->
                  Vmht_sim.Engine.wait 7));
          Vmht_sim.Engine.wait 3);
      Vmht_sim.Engine.run eng;
      let t = Profile.totals () in
      check_int "one engine" 1 t.Profile.engines;
      check_int "engine total" 25 t.Profile.engine_cycles;
      let ph p = t.Profile.cycles.(Profile.phase_index p) in
      check_int "actor cycles" 10 (ph Profile.Actor);
      check_int "memory cycles" 5 (ph Profile.Memory);
      check_int "translate cycles" 7 (ph Profile.Translate);
      check_int "dispatch gets the rest" 3 (ph Profile.Dispatch);
      check_int "attribution sums exactly" t.Profile.engine_cycles
        (Profile.cycle_sum t);
      check_bool "dispatch batches observed" true
        (Histogram.count t.Profile.batch > 0))

let test_profile_exact_attribution_end_to_end () =
  Profile.enable true;
  Fun.protect
    ~finally:(fun () -> Profile.enable false)
    (fun () ->
      List.iter
        (fun mode ->
          ignore
            (Vmht_eval.Common.run mode (Registry.find "vecadd") ~size:512))
        [ Vmht_eval.Common.Sw; Vmht_eval.Common.Vm; Vmht_eval.Common.Dma ];
      let t = Profile.totals () in
      check_bool "engines ran" true (t.Profile.engines >= 3);
      check_bool "cycles simulated" true (t.Profile.engine_cycles > 0);
      check_int "attribution sums exactly across every run"
        t.Profile.engine_cycles (Profile.cycle_sum t);
      (* The VM style must show translation work; every style touches
         memory. *)
      check_bool "translate attributed" true
        (t.Profile.cycles.(Profile.phase_index Profile.Translate) > 0);
      check_bool "memory attributed" true
        (t.Profile.cycles.(Profile.phase_index Profile.Memory) > 0);
      (* JSON export parses back and carries all four phases. *)
      let json = Json.of_string (Json.to_string (Profile.to_json t)) in
      match Json.member "phases" json with
      | Some (Json.Obj phases) -> check_int "four phases" 4 (List.length phases)
      | _ -> Alcotest.fail "phases object missing")

(* ------------------------- Perf diff ------------------------------ *)

let manifest names_seconds =
  Json.Obj
    [
      ("schema", Json.String "vmht-bench-eval/2");
      ( "experiments",
        Json.List
          (List.map
             (fun (name, seconds, p99) ->
               Json.Obj
                 [
                   ("name", Json.String name);
                   ("seconds", Json.Float seconds);
                   ("ns_per_run", Json.Float (seconds *. 1e6));
                   ( "cycles",
                     Json.Obj
                       [
                         ("p50", Json.Int 100);
                         ("p99", Json.Int p99);
                         ("max", Json.Int (2 * p99));
                       ] );
                 ])
             names_seconds) );
      ("total_seconds", Json.Float 1.0);
    ]

let test_perf_diff_identical () =
  let m = manifest [ ("fig1", 0.5, 120); ("table2", 1.25, 90) ] in
  let r = Perf_diff.diff ~old_manifest:m ~new_manifest:m () in
  check_bool "no regressions" true (r.Perf_diff.regressions = []);
  check_bool "no missing" true (r.Perf_diff.missing = []);
  check_bool "rows compared" true (List.length r.Perf_diff.rows >= 8);
  check_bool "verdict ok" true
    (contains (Perf_diff.render ~threshold:10. r) "ok:")

let test_perf_diff_regression () =
  let old_m = manifest [ ("fig1", 0.5, 120) ] in
  let new_m = manifest [ ("fig1", 0.5 *. 1.25, 120) ] in
  let r = Perf_diff.diff ~threshold:10. ~old_manifest:old_m ~new_manifest:new_m () in
  check_bool "seconds + ns_per_run regressed" true
    (List.length r.Perf_diff.regressions = 2);
  check_bool "flagged in render" true
    (contains (Perf_diff.render ~threshold:10. r) "REGRESSED");
  (* Below threshold passes, *)
  let r =
    Perf_diff.diff ~threshold:30. ~old_manifest:old_m ~new_manifest:new_m ()
  in
  check_bool "under threshold is clean" true (r.Perf_diff.regressions = []);
  (* and improvements never trip the gate. *)
  let r =
    Perf_diff.diff ~threshold:10. ~old_manifest:new_m ~new_manifest:old_m ()
  in
  check_bool "speedup is not a regression" true (r.Perf_diff.regressions = [])

let test_perf_diff_missing_metric () =
  let old_m = manifest [ ("fig1", 0.5, 120); ("fig9", 0.5, 120) ] in
  let new_m = manifest [ ("fig1", 0.5, 120) ] in
  let r = Perf_diff.diff ~old_manifest:old_m ~new_manifest:new_m () in
  check_bool "renamed metrics are reported, not dropped" true
    (r.Perf_diff.missing <> []);
  check_bool "mentioned in render" true
    (contains (Perf_diff.render ~threshold:10. r) "only in one manifest")

let suite =
  [
    Alcotest.test_case "json: round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json: escapes" `Quick test_json_escapes;
    Alcotest.test_case "json: parse errors" `Quick test_json_parse_errors;
    Alcotest.test_case "metrics: bucket boundaries" `Quick
      test_histogram_buckets;
    Alcotest.test_case "metrics: histogram snapshot" `Quick
      test_histogram_snapshot;
    Alcotest.test_case "histogram: merge" `Quick test_histogram_merge;
    QCheck_alcotest.to_alcotest quantile_oracle_property;
    Alcotest.test_case "metrics: snapshot sorted" `Quick
      test_metrics_snapshot_sorted;
    QCheck_alcotest.to_alcotest ring_property;
    Alcotest.test_case "spans: nesting well-formed under -j 4" `Quick
      test_span_nesting_parallel;
    Alcotest.test_case "profile: exact attribution (engine)" `Quick
      test_profile_exact_attribution_engine;
    Alcotest.test_case "profile: exact attribution (end to end)" `Quick
      test_profile_exact_attribution_end_to_end;
    Alcotest.test_case "perf diff: identical manifests" `Quick
      test_perf_diff_identical;
    Alcotest.test_case "perf diff: regression + improvement" `Quick
      test_perf_diff_regression;
    Alcotest.test_case "perf diff: missing metric" `Quick
      test_perf_diff_missing_metric;
    Alcotest.test_case "chrome: export shape" `Quick test_chrome_trace_shape;
    Alcotest.test_case "attribution: waterfall" `Quick test_waterfall_renders;
    Alcotest.test_case "attribution: sums to total (all workloads x styles)"
      `Quick test_attribution_sums_to_total;
    Alcotest.test_case "metrics: cover components" `Quick
      test_metrics_cover_components;
    Alcotest.test_case "events: dma bursts + phases" `Quick
      test_dma_burst_events;
  ]
