(* Observability layer: JSON round-trips, metrics histograms, the
   trace ring's retention properties, Chrome-trace export shape, and —
   the load-bearing invariant — per-phase cycle attribution summing
   exactly to every run's total cycles, for every workload in every
   interface style. *)

open Vmht_obs
module Workload = Vmht_workloads.Workload
module Registry = Vmht_workloads.Registry

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_str = Alcotest.(check string)

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

(* ------------------------- Json ----------------------------------- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("null", Json.Null);
        ("flag", Json.Bool true);
        ("int", Json.Int (-42));
        ("float", Json.Float 1.5);
        ("str", Json.String "hi \"there\"\n\ttab");
        ("list", Json.List [ Json.Int 1; Json.Int 2; Json.Int 3 ]);
        ("nested", Json.Obj [ ("k", Json.String "v") ]);
      ]
  in
  let parsed = Json.of_string (Json.to_string doc) in
  check_bool "compact round-trips" true (parsed = doc);
  let parsed = Json.of_string (Json.to_string_pretty doc) in
  check_bool "pretty round-trips" true (parsed = doc)

let test_json_escapes () =
  let s = Json.to_string (Json.String "a\"b\\c\nd") in
  check_str "escaped" {|"a\"b\\c\nd"|} s;
  (match Json.of_string {|"Aé"|} with
   | Json.String v -> check_str "unicode escapes decode" "A\xc3\xa9" v
   | _ -> Alcotest.fail "expected a string");
  match Json.of_string {|"😀"|} with
  | Json.String v ->
    check_str "surrogate pair decodes" "\xf0\x9f\x98\x80" v
  | _ -> Alcotest.fail "expected a string"

let test_json_parse_errors () =
  let fails s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> true
    | _ -> false
  in
  check_bool "truncated object" true (fails {|{"a": 1|});
  check_bool "trailing garbage" true (fails "[1, 2] x");
  check_bool "bare word" true (fails "frue")

(* ------------------------- Metrics -------------------------------- *)

let test_histogram_buckets () =
  check_int "0 lands in bucket 0" 0 (Metrics.bucket_index 0);
  check_int "1 lands in bucket 1" 1 (Metrics.bucket_index 1);
  check_int "2 lands in bucket 2" 2 (Metrics.bucket_index 2);
  check_int "3 lands in bucket 2" 2 (Metrics.bucket_index 3);
  check_int "4 lands in bucket 3" 3 (Metrics.bucket_index 4);
  check_int "7 lands in bucket 3" 3 (Metrics.bucket_index 7);
  check_int "8 lands in bucket 4" 4 (Metrics.bucket_index 8);
  check_int "bucket 0 upper" 0 (Metrics.bucket_upper 0);
  check_int "bucket 3 upper" 7 (Metrics.bucket_upper 3);
  check_int "bucket 10 upper" 1023 (Metrics.bucket_upper 10);
  (* Every bucket's upper bound must land in that bucket, and the next
     value in the next one. *)
  for k = 1 to 20 do
    let upper = Metrics.bucket_upper k in
    check_int "upper in bucket" k (Metrics.bucket_index upper);
    check_int "upper+1 in next" (k + 1) (Metrics.bucket_index (upper + 1))
  done

let test_histogram_snapshot () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "t.lat" in
  List.iter (Metrics.observe h) [ 1; 1; 2; 3; 100 ];
  let s = Metrics.histogram_snapshot h in
  check_int "count" 5 s.Metrics.count;
  check_int "sum" 107 s.Metrics.sum;
  check_int "min" 1 s.Metrics.min;
  check_int "max" 100 s.Metrics.max;
  (* Median bucket is bucket 2 (values 2..3) -> upper bound 3. *)
  check_int "p50" 3 s.Metrics.p50;
  (* p95 hits the top bucket; quantiles clamp to the observed max. *)
  check_int "p95 clamped to max" 100 s.Metrics.p95

let test_metrics_snapshot_sorted () =
  let m = Metrics.create () in
  Metrics.incr (Metrics.counter m "b.two");
  Metrics.incr ~by:5 (Metrics.counter m "a.one");
  Metrics.set_gauge (Metrics.gauge m "g.rate") 0.5;
  let s = Metrics.snapshot m in
  check_bool "counters sorted" true
    (List.map fst s.Metrics.counters = [ "a.one"; "b.two" ]);
  check_int "incr by" 5 (List.assoc "a.one" s.Metrics.counters);
  (* The JSON rendering parses back. *)
  let json = Json.of_string (Json.to_string (Metrics.snapshot_to_json s)) in
  match Json.member "counters" json with
  | Some (Json.Obj _) -> ()
  | _ -> Alcotest.fail "counters object expected"

(* ------------------------- Trace ring (qcheck) -------------------- *)

let ring_property =
  QCheck.Test.make ~count:200
    ~name:"trace ring keeps the newest [capacity] events"
    QCheck.(pair (int_range 1 40) (int_range 0 120))
    (fun (capacity, n) ->
      let tr = Vmht_sim.Trace.create ~capacity () in
      Vmht_sim.Trace.enable tr true;
      for i = 0 to n - 1 do
        Vmht_sim.Trace.record tr ~at:i ~component:"c"
          (Event.Note (string_of_int i))
      done;
      let events = Vmht_sim.Trace.events tr in
      Vmht_sim.Trace.count tr = min n capacity
      && Vmht_sim.Trace.dropped tr = max 0 (n - capacity)
      && List.length events = min n capacity
      && List.for_all2
           (fun (e : Event.t) expected -> e.Event.at = expected)
           events
           (List.init (min n capacity) (fun i -> max 0 (n - capacity) + i)))

(* ------------------------- Chrome trace --------------------------- *)

let sample_events =
  [
    {
      Event.at = 10;
      duration = 5;
      component = "bus";
      kind = Event.Bus_txn { op = Event.Read; addr = 0x40; words = 4 };
    };
    {
      Event.at = 12;
      duration = 0;
      component = "mmu";
      kind = Event.Tlb_miss { vaddr = 0x1000; asid = 0 };
    };
    {
      Event.at = 13;
      duration = 30;
      component = "mmu";
      kind = Event.Ptw_walk { vaddr = 0x1000; levels = 2 };
    };
  ]

let test_chrome_trace_shape () =
  let doc = Json.of_string (Chrome_trace.to_string sample_events) in
  (match Json.member "displayTimeUnit" doc with
   | Some (Json.String _) -> ()
   | _ -> Alcotest.fail "displayTimeUnit missing");
  let entries =
    match Json.member "traceEvents" doc with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "traceEvents array missing"
  in
  (* process_name + 2 thread_name metadata events + 3 payload events. *)
  check_int "entry count" 6 (List.length entries);
  List.iter
    (fun e ->
      check_bool "ph present" true
        (match Json.member "ph" e with
         | Some (Json.String _) -> true
         | _ -> false);
      check_bool "pid present" true (Json.member "pid" e <> None);
      check_bool "tid present" true (Json.member "tid" e <> None))
    entries;
  let payload =
    List.filter
      (fun e -> Json.member "ph" e <> Some (Json.String "M"))
      entries
  in
  check_int "payload count" 3 (List.length payload);
  List.iter
    (fun e ->
      check_bool "ts present" true
        (match Json.member "ts" e with Some (Json.Int _) -> true | _ -> false))
    payload;
  (* The bus span comes out as a complete event with its duration. *)
  let bus =
    List.find
      (fun e -> Json.member "cat" e = Some (Json.String "bus"))
      payload
  in
  check_bool "span is ph=X" true (Json.member "ph" bus = Some (Json.String "X"));
  check_bool "dur carried" true (Json.member "dur" bus = Some (Json.Int 5));
  check_bool "ts is start" true (Json.member "ts" bus = Some (Json.Int 10));
  (* Instants are thread-scoped. *)
  let miss =
    List.find
      (fun e -> Json.member "name" e = Some (Json.String "tlb_miss"))
      payload
  in
  check_bool "instant is ph=i" true
    (Json.member "ph" miss = Some (Json.String "i"))

(* ------------------------- Attribution ---------------------------- *)

let test_waterfall_renders () =
  let a =
    {
      Attribution.translate = 100;
      walk = 200;
      fault = 0;
      bus_wait = 50;
      dram = 400;
      compute = 1000;
      dma_stage = 0;
      drain = 250;
    }
  in
  check_int "total" 2000 (Attribution.total a);
  let s = Attribution.waterfall a in
  check_bool "compute row" true (contains s "compute");
  check_bool "zero rows dropped" true (not (contains s "fault"))

(* Small sizes (mirroring test_system) keep the full sweep quick while
   still crossing several pages. *)
let attr_size (w : Workload.t) =
  match w.Workload.name with
  | "mmul" -> 8
  | "spmv" -> 128
  | "tree_search" -> 256
  | _ -> 1024

let test_attribution_sums_to_total () =
  List.iter
    (fun (w : Workload.t) ->
      List.iter
        (fun mode ->
          let o =
            Vmht_eval.Common.run mode w ~size:(attr_size w)
          in
          let r = o.Vmht_eval.Common.result in
          let a = r.Vmht.Launch.attribution in
          let label what =
            Printf.sprintf "%s/%s: %s" w.Workload.name
              (Vmht_eval.Common.mode_name mode)
              what
          in
          List.iter
            (fun (seg, v) ->
              check_bool (label (seg ^ " non-negative")) true (v >= 0))
            (Attribution.to_list a);
          check_int
            (label "attribution sums to total_cycles")
            r.Vmht.Launch.total_cycles (Attribution.total a))
        [ Vmht_eval.Common.Sw; Vmht_eval.Common.Vm; Vmht_eval.Common.Dma ])
    Registry.all

let test_metrics_cover_components () =
  let o =
    Vmht_eval.Common.run ~observe:true Vmht_eval.Common.Vm
      (Registry.find "vecadd") ~size:512
  in
  let soc = o.Vmht_eval.Common.soc in
  let report =
    Vmht.Report.gather soc ~workload:"vecadd" ~mode:"vm" ~size:512
      o.Vmht_eval.Common.result
  in
  let counters = report.Vmht.Report.metrics.Metrics.counters in
  let positive name =
    match List.assoc_opt name counters with
    | Some v -> v > 0
    | None -> false
  in
  List.iter
    (fun name -> check_bool (name ^ " > 0") true (positive name))
    [
      "tlb.lookups";
      "ptw.walks";
      "mmu.accesses";
      "bus.reads";
      "bus.words_moved";
      "dram.accesses";
      "stream_buffer.read_misses";
    ];
  check_bool "counter exists even when zero" true
    (List.mem_assoc "dma.transfers" counters);
  (* Observers fed the duration histograms while the run was traced. *)
  let hist name =
    List.assoc_opt name report.Vmht.Report.metrics.Metrics.histograms
  in
  (match hist "bus.txn_cycles" with
   | Some h -> check_bool "bus latency samples" true (h.Metrics.count > 0)
   | None -> Alcotest.fail "bus.txn_cycles histogram missing");
  (* And the machine-readable report parses back as JSON. *)
  let json =
    Json.of_string (Json.to_string (Vmht.Report.to_json report))
  in
  check_bool "attribution in report json" true
    (Json.member "attribution" json <> None)

let test_dma_burst_events () =
  let o =
    Vmht_eval.Common.run ~observe:true Vmht_eval.Common.Dma
      (Registry.find "vecadd") ~size:256
  in
  let events =
    Vmht_sim.Trace.events (Vmht.Soc.trace o.Vmht_eval.Common.soc)
  in
  check_bool "dma bursts observed" true
    (List.exists
       (fun (e : Event.t) ->
         match e.Event.kind with Event.Dma_burst _ -> true | _ -> false)
       events);
  check_bool "phase markers observed" true
    (List.exists
       (fun (e : Event.t) ->
         match e.Event.kind with
         | Event.Phase_begin { phase = "stage" } -> true
         | _ -> false)
       events)

let suite =
  [
    Alcotest.test_case "json: round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json: escapes" `Quick test_json_escapes;
    Alcotest.test_case "json: parse errors" `Quick test_json_parse_errors;
    Alcotest.test_case "metrics: bucket boundaries" `Quick
      test_histogram_buckets;
    Alcotest.test_case "metrics: histogram snapshot" `Quick
      test_histogram_snapshot;
    Alcotest.test_case "metrics: snapshot sorted" `Quick
      test_metrics_snapshot_sorted;
    QCheck_alcotest.to_alcotest ring_property;
    Alcotest.test_case "chrome: export shape" `Quick test_chrome_trace_shape;
    Alcotest.test_case "attribution: waterfall" `Quick test_waterfall_renders;
    Alcotest.test_case "attribution: sums to total (all workloads x styles)"
      `Quick test_attribution_sums_to_total;
    Alcotest.test_case "metrics: cover components" `Quick
      test_metrics_cover_components;
    Alcotest.test_case "events: dma bursts + phases" `Quick
      test_dma_burst_events;
  ]
