let () =
  Alcotest.run "vmht"
    [
      ("util", Test_util.suite);
      ("sim", Test_sim.suite);
      ("par", Test_par.suite);
      ("obs", Test_obs.suite);
      ("lang", Test_lang.suite);
      ("inline", Test_inline.suite);
      ("ir", Test_ir.suite);
      ("passes", Test_passes.suite);
      ("licm", Test_licm.suite);
      ("hls", Test_hls.suite);
      ("rtl", Test_rtl.suite);
      ("pipeliner", Test_pipeliner.suite);
      ("mem", Test_mem.suite);
      ("vm", Test_vm.suite);
      ("runtime", Test_runtime.suite);
      ("core", Test_core.suite);
      ("isolation", Test_isolation.suite);
      ("system", Test_system.suite);
      ("determinism", Test_determinism.suite);
      ("fault", Test_fault.suite);
    ]
