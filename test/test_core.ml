(* Unit tests for the core (Vmht) library: configuration helpers,
   wrapper area models, the synthesis flow, and SoC construction. *)

open Vmht
module Optypes = Vmht_hls.Optypes
module Workload = Vmht_workloads.Workload

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let vecadd = Vmht_workloads.Registry.find "vecadd"

(* ------------------------- Config --------------------------------- *)

let test_config_with_tlb () =
  let c = Config.with_tlb_entries Config.default 64 in
  check_int "entries set" 64 c.Config.mmu.Vmht_vm.Mmu.tlb.Vmht_vm.Tlb.entries;
  (* The base config is unchanged (records are immutable). *)
  check_int "default untouched" 16
    Config.default.Config.mmu.Vmht_vm.Mmu.tlb.Vmht_vm.Tlb.entries

let test_config_with_page_shift () =
  let c = Config.with_page_shift Config.default 14 in
  check_int "shift" 14 c.Config.page_shift

let test_config_to_string () =
  check_bool "renders" true (String.length (Config.to_string Config.default) > 10)

(* ------------------------- Wrapper -------------------------------- *)

let test_vm_area_grows_with_tlb () =
  let area entries =
    (Wrapper.vm_area
       (Config.with_tlb_entries Config.default entries).Config.mmu)
      .Optypes.lut
  in
  check_bool "64 entries cost more than 8" true (area 64 > area 8)

let test_vm_area_walker_costs () =
  let with_walker = Wrapper.vm_area Config.default.Config.mmu in
  let without =
    Wrapper.vm_area { Config.default.Config.mmu with Vmht_vm.Mmu.hw_walk = false }
  in
  check_bool "walker adds LUTs" true
    (with_walker.Optypes.lut > without.Optypes.lut)

let test_dma_area_has_bram () =
  let a = Wrapper.dma_area ~scratchpad_words:16384 ~windows:3 in
  check_bool "scratchpad BRAM counted" true (a.Optypes.bram > 0);
  let bigger = Wrapper.dma_area ~scratchpad_words:65536 ~windows:3 in
  check_bool "more scratchpad, more BRAM" true
    (bigger.Optypes.bram > a.Optypes.bram)

let test_wrapper_ports_differ () =
  check_bool "vm and dma expose different ports" true
    (Wrapper.ports Wrapper.Vm_iface <> Wrapper.ports Wrapper.Dma_iface)

(* ------------------------- Flow ----------------------------------- *)

let test_flow_total_is_sum () =
  let hw = Flow.run_exn
      (Flow.Request.of_kernel ~style:Wrapper.Vm_iface (Workload.kernel vecadd)) in
  let sum = Optypes.add_area hw.Flow.datapath_area hw.Flow.wrapper_area in
  check_bool "total = datapath + wrapper" true (hw.Flow.total_area = sum)

let test_flow_verilog_has_wrapper_ports () =
  let hw = Flow.run_exn
      (Flow.Request.of_kernel ~style:Wrapper.Vm_iface (Workload.kernel vecadd)) in
  let contains s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  check_bool "ptw port present" true (contains hw.Flow.verilog "ptw_addr")

let test_flow_rejects_ill_typed () =
  check_bool "typed frontend error" true
    (match
       Flow.run
         (Flow.Request.of_source ~style:Wrapper.Vm_iface
            "kernel bad(x: int) { y = 1; }")
     with
     | Error (Flow.Frontend _) -> true
     | _ -> false)

let test_flow_synthesis_time_recorded () =
  let hw = Flow.run_exn
      (Flow.Request.of_kernel ~style:Wrapper.Vm_iface (Workload.kernel vecadd)) in
  check_bool "non-negative" true (hw.Flow.synthesis_seconds >= 0.)

let test_compile_sw_runs () =
  let func = Flow.compile_sw Config.default (Workload.kernel vecadd) in
  check_bool "has blocks" true (Vmht_ir.Ir.block_count func > 0)

(* ------------------------- Soc ------------------------------------ *)

let test_soc_fresh_mmus () =
  let soc = Soc.create Config.default in
  let m1 = Soc.make_mmu soc in
  let m2 = Soc.make_mmu soc in
  check_bool "distinct MMU instances" true (m1 != m2);
  check_int "both registered" 2 (List.length (Soc.mmus soc))

let test_soc_run_executes () =
  let soc = Soc.create Config.default in
  let ran = ref false in
  Soc.run soc (fun () ->
      Vmht_sim.Engine.wait 5;
      ran := true);
  check_bool "main ran" true !ran;
  check_int "time advanced" 5 (Soc.now soc)

let test_report_gathers_and_renders () =
  let w = Vmht_workloads.Registry.find "vecadd" in
  let soc = Soc.create Config.default in
  let instance =
    w.Vmht_workloads.Workload.setup (Soc.aspace soc) ~size:128 ~seed:1
  in
  let result =
    Launch.run_to_completion soc (fun () ->
        let hw =
          Flow.run_exn
            (Flow.Request.of_kernel ~style:Wrapper.Vm_iface
               (Vmht_workloads.Workload.kernel w))
        in
        Launch.run_hw soc hw
          {
            Launch.args = instance.Vmht_workloads.Workload.args;
            buffers = [];
          })
  in
  let report =
    Report.gather soc ~workload:"vecadd" ~mode:"vm" ~size:128 result
  in
  let rendered = Report.to_string report in
  check_bool "mentions mmu" true
    (String.length rendered > 100
     &&
     let has sub =
       let n = String.length sub in
       let rec go i =
         i + n <= String.length rendered
         && (String.sub rendered i n = sub || go (i + 1))
       in
       go 0
     in
     has "mmu:" && has "bus:" && has "dram:")

let test_soc_trace_records () =
  let soc = Soc.create Config.default in
  Soc.enable_tracing soc;
  let base = Vmht_vm.Addr_space.alloc (Soc.aspace soc) ~bytes:4096 in
  let mmu = Soc.make_mmu soc in
  ignore
    (Launch.run_to_completion soc (fun () -> Vmht_vm.Mmu.load mmu base));
  let events = Vmht_sim.Trace.events (Soc.trace soc) in
  check_bool "events recorded" true (List.length events > 0);
  check_bool "mmu miss present" true
    (List.exists
       (fun e ->
         e.Vmht_obs.Event.component = "mmu"
         &&
         match e.Vmht_obs.Event.kind with
         | Vmht_obs.Event.Tlb_miss _ -> true
         | _ -> false)
       events);
  check_bool "bus traffic present" true
    (List.exists
       (fun e ->
         e.Vmht_obs.Event.component = "bus"
         &&
         match e.Vmht_obs.Event.kind with
         | Vmht_obs.Event.Bus_txn _ -> true
         | _ -> false)
       events)

let test_trace_off_by_default () =
  let soc = Soc.create Config.default in
  let base = Vmht_vm.Addr_space.alloc (Soc.aspace soc) ~bytes:4096 in
  let mmu = Soc.make_mmu soc in
  ignore (Launch.run_to_completion soc (fun () -> Vmht_vm.Mmu.load mmu base));
  check_int "nothing recorded" 0
    (Vmht_sim.Trace.count (Soc.trace soc))

(* ------------------------- Sysgen --------------------------------- *)

let test_sysgen_compose_fits () =
  let hw = Flow.run_exn
      (Flow.Request.of_kernel ~style:Wrapper.Vm_iface (Workload.kernel vecadd)) in
  let design = Sysgen.compose [ (hw, 2) ] in
  check_bool "two copies fit a 7020" true design.Sysgen.fits;
  check_bool "utilization reported" true
    (List.length design.Sysgen.utilization = 4);
  (* total = static + 2x thread *)
  let expected =
    Vmht_hls.Optypes.add_area Sysgen.static_overhead
      (Vmht_hls.Optypes.scale_area 2 hw.Flow.total_area)
  in
  check_bool "area accounting" true (design.Sysgen.total_area = expected)

let test_sysgen_overbudget_reported () =
  let hw = Flow.run_exn
      (Flow.Request.of_kernel ~style:Wrapper.Vm_iface (Workload.kernel vecadd)) in
  let design = Sysgen.compose [ (hw, 1000) ] in
  check_bool "does not fit" true (not design.Sysgen.fits);
  check_bool "utilization exceeds 1" true
    (List.exists (fun (_, f) -> f > 1.) design.Sysgen.utilization)

let test_sysgen_mmio_disjoint () =
  let hw = Flow.run_exn
      (Flow.Request.of_kernel ~style:Wrapper.Vm_iface (Workload.kernel vecadd)) in
  let design = Sysgen.compose [ (hw, 3); (hw, 2) ] in
  match design.Sysgen.placements with
  | [ a; b ] ->
    check_bool "second group above first" true
      (b.Sysgen.mmio_base >= a.Sysgen.mmio_base + (3 * 0x1000))
  | _ -> Alcotest.fail "expected two placements"

let test_sysgen_max_instances_monotone () =
  let hw = Flow.run_exn
      (Flow.Request.of_kernel ~style:Wrapper.Vm_iface (Workload.kernel vecadd)) in
  let small = Sysgen.max_instances ~device:Sysgen.zynq_7020 hw in
  let large = Sysgen.max_instances ~device:Sysgen.zynq_7045 hw in
  check_bool "some fit" true (small >= 1);
  check_bool "bigger device hosts more" true (large > small)

let test_sysgen_top_mentions_instances () =
  let hw = Flow.run_exn
      (Flow.Request.of_kernel ~style:Wrapper.Vm_iface (Workload.kernel vecadd)) in
  let design = Sysgen.compose [ (hw, 2) ] in
  let has sub =
    let s = design.Sysgen.top_verilog in
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  check_bool "instance 0" true (has "u_vecadd_0");
  check_bool "instance 1" true (has "u_vecadd_1");
  check_bool "top module" true (has "module system_top")

let test_run_to_completion_propagates () =
  let soc = Soc.create Config.default in
  check_bool "exception propagates" true
    (match Launch.run_to_completion soc (fun () -> failwith "inner") with
     | _ -> false
     | exception Failure _ -> true)

let suite =
  [
    Alcotest.test_case "config: with_tlb_entries" `Quick test_config_with_tlb;
    Alcotest.test_case "config: with_page_shift" `Quick
      test_config_with_page_shift;
    Alcotest.test_case "config: to_string" `Quick test_config_to_string;
    Alcotest.test_case "wrapper: vm area grows with tlb" `Quick
      test_vm_area_grows_with_tlb;
    Alcotest.test_case "wrapper: walker costs" `Quick test_vm_area_walker_costs;
    Alcotest.test_case "wrapper: dma bram" `Quick test_dma_area_has_bram;
    Alcotest.test_case "wrapper: ports differ" `Quick test_wrapper_ports_differ;
    Alcotest.test_case "flow: total area" `Quick test_flow_total_is_sum;
    Alcotest.test_case "flow: wrapper ports in RTL" `Quick
      test_flow_verilog_has_wrapper_ports;
    Alcotest.test_case "flow: rejects ill-typed" `Quick
      test_flow_rejects_ill_typed;
    Alcotest.test_case "flow: synth time" `Quick
      test_flow_synthesis_time_recorded;
    Alcotest.test_case "flow: compile_sw" `Quick test_compile_sw_runs;
    Alcotest.test_case "soc: fresh mmus" `Quick test_soc_fresh_mmus;
    Alcotest.test_case "soc: run executes" `Quick test_soc_run_executes;
    Alcotest.test_case "launch: exception propagation" `Quick
      test_run_to_completion_propagates;
    Alcotest.test_case "report: gathers and renders" `Quick
      test_report_gathers_and_renders;
    Alcotest.test_case "trace: records when enabled" `Quick
      test_soc_trace_records;
    Alcotest.test_case "trace: off by default" `Quick test_trace_off_by_default;
    Alcotest.test_case "sysgen: compose fits" `Quick test_sysgen_compose_fits;
    Alcotest.test_case "sysgen: over budget" `Quick
      test_sysgen_overbudget_reported;
    Alcotest.test_case "sysgen: mmio disjoint" `Quick test_sysgen_mmio_disjoint;
    Alcotest.test_case "sysgen: max instances" `Quick
      test_sysgen_max_instances_monotone;
    Alcotest.test_case "sysgen: top RTL" `Quick
      test_sysgen_top_mentions_instances;
  ]
