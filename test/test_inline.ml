(* Kernel calls and the inliner. *)

open Vmht_lang

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let program_src =
  {|
kernel clamp(x: int, lo: int, hi: int) : int {
  var r: int = x;
  if (x < lo) { r = lo; }
  if (x > hi) { r = hi; }
  return r;
}

kernel scale(x: int, k: int) : int {
  var t: int = clamp(x, 0, 100);
  return t * k;
}

kernel apply(src: int*, dst: int*, n: int, k: int) {
  var i: int;
  for (i = 0; i < n; i = i + 1) {
    var v: int = scale(src[i], k);
    dst[i] = v;
  }
}
|}

let parse_and_check src =
  let p = Parser.parse_program src in
  Typecheck.check_program p;
  p

(* ------------------------- parsing / typing ------------------------ *)

let test_parse_call () =
  let e = Parser.parse_expr "f(1, x + 2)" in
  check_bool "call node" true
    (e = Ast.Call ("f", [ Ast.Int 1; Ast.Bin (Ast.Add, Ast.Var "x", Ast.Int 2) ]))

let test_typecheck_accepts_calls () = ignore (parse_and_check program_src)

let rejects src =
  match parse_and_check src with
  | _ -> false
  | exception Loc.Error _ -> true

let test_rejects_unknown_callee () =
  check_bool "unknown kernel" true
    (rejects "kernel k() : int { var x: int = nope(1); return x; }")

let test_rejects_call_in_expression () =
  check_bool "call must be whole RHS" true
    (rejects
       {|kernel f(x: int) : int { return x; }
         kernel k() : int { var y: int = 1 + f(2); return y; }|})

let test_rejects_recursion () =
  check_bool "self recursion" true
    (rejects "kernel f(x: int) : int { var y: int = f(x); return y; }");
  check_bool "mutual recursion" true
    (rejects
       {|kernel a(x: int) : int { var y: int = b(x); return y; }
         kernel b(x: int) : int { var y: int = a(x); return y; }|})

let test_rejects_arity_and_void () =
  check_bool "arity" true
    (rejects
       {|kernel f(x: int) : int { return x; }
         kernel k() : int { var y: int = f(1, 2); return y; }|});
  check_bool "void callee" true
    (rejects
       {|kernel f(p: int*) { p[0] = 1; }
         kernel k(p: int*) : int { var y: int = f(p); return y; }|})

(* ------------------------- inlining -------------------------------- *)

let test_inline_removes_calls () =
  let p = Inline.program (parse_and_check program_src) in
  List.iter
    (fun (k : Ast.kernel) ->
      check_bool
        (k.Ast.kname ^ " is call-free")
        true
        (Typecheck.called_names [] k.Ast.body = []))
    p;
  (* The inlined program still typechecks as plain kernels. *)
  List.iter Typecheck.check_kernel p

let test_inline_preserves_semantics () =
  let p = parse_and_check program_src in
  let inlined = Inline.program p in
  let apply_inlined =
    match Ast.find_kernel inlined "apply" with
    | Some k -> k
    | None -> Alcotest.fail "apply missing"
  in
  let data = Array.init 16 (fun i -> (i * 17) - 40) in
  (* Reference: clamp+scale computed in OCaml. *)
  let expected =
    Array.map (fun v -> (max 0 (min 100 v)) * 3) (Array.sub data 0 8)
  in
  let mem = Ast_interp.array_memory data in
  ignore (Ast_interp.run_kernel mem apply_inlined ~args:[ 0; 64; 8; 3 ]);
  for i = 0 to 7 do
    check_int (Printf.sprintf "dst[%d]" i) expected.(i) data.(8 + i)
  done

let test_inline_rejects_multi_return_callee () =
  let p =
    parse_and_check
      {|kernel f(x: int) : int {
          if (x > 0) { return 1; } else { return 0; }
        }
        kernel k(x: int) : int { var y: int = f(x); return y; }|}
  in
  check_bool "multi-return callee rejected" true
    (match Inline.program p with
     | _ -> false
     | exception Inline.Inline_error _ -> true)

let test_inline_end_to_end_synthesis () =
  let hw =
    Vmht.Flow.run_exn
      (Vmht.Flow.Request.of_program ~style:Vmht.Wrapper.Vm_iface ~name:"apply"
         program_src)
  in
  (* Run the synthesized (inlined) accelerator and compare. *)
  let data = Array.init 16 (fun i -> (i * 29) - 60) in
  let expected =
    Array.map (fun v -> (max 0 (min 100 v)) * 5) (Array.sub data 0 8)
  in
  let eng = Vmht_sim.Engine.create () in
  Vmht_sim.Engine.spawn eng ~name:"accel" (fun () ->
      let port = Vmht_hls.Accel.untimed_port (Ast_interp.array_memory data) in
      ignore
        (Vmht_hls.Accel.run hw.Vmht.Flow.fsm ~port ~args:[ 0; 64; 8; 5 ]));
  Vmht_sim.Engine.run eng;
  for i = 0 to 7 do
    check_int (Printf.sprintf "dst[%d]" i) expected.(i) data.(8 + i)
  done

let suite =
  [
    Alcotest.test_case "parse: call expression" `Quick test_parse_call;
    Alcotest.test_case "typecheck: accepts calls" `Quick
      test_typecheck_accepts_calls;
    Alcotest.test_case "typecheck: unknown callee" `Quick
      test_rejects_unknown_callee;
    Alcotest.test_case "typecheck: call in expression" `Quick
      test_rejects_call_in_expression;
    Alcotest.test_case "typecheck: recursion" `Quick test_rejects_recursion;
    Alcotest.test_case "typecheck: arity and void" `Quick
      test_rejects_arity_and_void;
    Alcotest.test_case "inline: removes calls" `Quick test_inline_removes_calls;
    Alcotest.test_case "inline: preserves semantics" `Quick
      test_inline_preserves_semantics;
    Alcotest.test_case "inline: multi-return rejected" `Quick
      test_inline_rejects_multi_return_callee;
    Alcotest.test_case "inline: end-to-end synthesis" `Quick
      test_inline_end_to_end_synthesis;
  ]
