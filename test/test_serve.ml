(* Synthesis-as-a-service tests: the persistent content-addressed
   store (codec round-trips, corruption and version-skew fallback,
   promotion into the flow memo), the sharded batch server (substrate
   determinism, dedup, retry-on-worker-death, deadlines) and the
   consolidated Flow request API.

   This suite lives in its own executable on purpose: the sharded
   server forks worker processes, which must happen while the process
   is still single-domain — so nothing here ever widens the
   [Vmht_par.Parmap] pool. *)

module Flow = Vmht.Flow
module Store = Vmht_serve.Store
module Proto = Vmht_serve.Proto
module Server = Vmht_serve.Server
module Loadgen = Vmht_eval.Loadgen
open Vmht

let temp_counter = ref 0

let fresh_dir () =
  incr temp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "vmht-serve-test-%d-%d" (Unix.getpid ()) !temp_counter)
  in
  (* [Store.open_] creates it. *)
  d

let open_store () =
  match Store.open_ ~dir:(fresh_dir ()) () with
  | Ok s -> s
  | Error e -> Alcotest.failf "store open failed: %s" (Flow.error_to_string e)

let kernel_of w = Vmht_workloads.Workload.kernel (Vmht_workloads.Registry.find w)

let synth ?(unroll = 1) ?(style = Wrapper.Vm_iface) wname =
  let config = Config.with_unroll Config.default unroll in
  let kernel = kernel_of wname in
  let hw = Flow.run_exn (Flow.Request.of_kernel ~config ~style kernel) in
  (config, style, kernel, hw)

(* --- entry codec --------------------------------------------------- *)

let subjects = [ "vecadd"; "mmul"; "spmv"; "list_sum"; "tree_search"; "bfs" ]

let arb_entry_case =
  QCheck.make
    ~print:(fun (w, si, unroll, opt) ->
      Printf.sprintf "(%s, %s, unroll=%d, opt=%d)" (List.nth subjects w)
        (if si = 0 then "vm" else "dma")
        unroll opt)
    QCheck.Gen.(
      quad
        (int_bound (List.length subjects - 1))
        (int_bound 1)
        (oneofl [ 1; 2; 4 ])
        (oneofl [ 0; 1; 2 ]))

let prop_entry_roundtrip =
  QCheck.Test.make ~count:30 ~name:"store entry decode (encode e) = Ok e"
    arb_entry_case
    (fun (wi, si, unroll, opt) ->
      let style = if si = 0 then Wrapper.Vm_iface else Wrapper.Dma_iface in
      let config =
        Config.with_opt_level (Config.with_unroll Config.default unroll) opt
      in
      let kernel = kernel_of (List.nth subjects wi) in
      let hw = Flow.run_exn (Flow.Request.of_kernel ~config ~style kernel) in
      match Store.decode_entry (Store.encode_entry kernel hw) with
      | Error _ -> false
      | Ok (k, hw') ->
        k = kernel
        && hw'.Flow.verilog = hw.Flow.verilog
        && hw'.Flow.total_area = hw.Flow.total_area
        && hw'.Flow.style = hw.Flow.style
        && hw'.Flow.synthesis_seconds = hw.Flow.synthesis_seconds)

let test_decode_total () =
  (* Every malformed byte string is a typed fault, never an exception. *)
  let fault s =
    match Store.decode_entry s with
    | Ok _ -> Alcotest.failf "decoded %S" (String.sub s 0 (min 20 (String.length s)))
    | Error f -> f
  in
  (match fault "" with
  | Flow.Store_corrupt _ -> ()
  | _ -> Alcotest.fail "empty: expected corrupt");
  (match fault "vmht-store/0\nabc\npayload" with
  | Flow.Store_version_mismatch v ->
    Alcotest.(check string) "carried version" "vmht-store/0" v
  | _ -> Alcotest.fail "expected version mismatch");
  let _, _, kernel, hw = synth "vecadd" in
  let good = Store.encode_entry kernel hw in
  (* Truncation at any of a few depths is corrupt, not a crash. *)
  List.iter
    (fun keep ->
      match fault (String.sub good 0 (keep * String.length good / 4)) with
      | Flow.Store_corrupt _ | Flow.Store_version_mismatch _ -> ()
      | Flow.Store_unwritable _ -> Alcotest.fail "unexpected unwritable")
    [ 1; 2; 3 ];
  (* A flipped payload byte fails the checksum before unmarshalling. *)
  let b = Bytes.of_string good in
  let off = String.length good - 7 in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 1));
  match fault (Bytes.to_string b) with
  | Flow.Store_corrupt msg ->
    Alcotest.(check bool) "checksum named" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "expected corrupt"

(* --- store --------------------------------------------------------- *)

let test_store_save_load () =
  let s = open_store () in
  let config, style, kernel, hw = synth "vecadd" in
  let key = Flow.cache_key config style kernel in
  Alcotest.(check bool) "absent before save" false (Store.contains s ~key);
  (match Store.save s ~key kernel hw with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save: %s" (Flow.error_to_string e));
  Alcotest.(check bool) "present after save" true (Store.contains s ~key);
  (match Store.load s ~key kernel with
  | Some hw' ->
    Alcotest.(check string) "verilog survives" hw.Flow.verilog hw'.Flow.verilog
  | None -> Alcotest.fail "load missed after save");
  let st = Store.stats s in
  Alcotest.(check int) "one save" 1 st.Store.saves;
  Alcotest.(check int) "one hit" 1 st.Store.hits

let test_store_corrupt_fallback () =
  let s = open_store () in
  let config, style, kernel, hw = synth "list_sum" in
  let key = Flow.cache_key config style kernel in
  (match Store.save s ~key kernel hw with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save: %s" (Flow.error_to_string e));
  (* Truncate the entry on disk; the load must fall back to a miss and
     clear the bad file so the next save repairs the store. *)
  let path = Store.path s ~key in
  let oc = open_out_gen [ Open_wronly; Open_trunc ] 0o644 path in
  output_string oc "vmht-store/1\ndead";
  close_out oc;
  (match Store.load s ~key kernel with
  | None -> ()
  | Some _ -> Alcotest.fail "corrupt entry served");
  Alcotest.(check int) "counted corrupt" 1 (Store.stats s).Store.corrupt;
  Alcotest.(check bool) "bad entry dropped" false (Store.contains s ~key);
  (* Version skew: a valid-shape entry from another format version. *)
  let oc = open_out_bin path in
  output_string oc "vmht-store/999\nx\ny";
  close_out oc;
  (match Store.load s ~key kernel with
  | None -> ()
  | Some _ -> Alcotest.fail "foreign version served");
  Alcotest.(check int) "counted skew" 1 (Store.stats s).Store.version_skew;
  (match Store.save s ~key kernel hw with
  | Ok () -> ()
  | Error e -> Alcotest.failf "re-save: %s" (Flow.error_to_string e));
  match Store.load s ~key kernel with
  | Some _ -> ()
  | None -> Alcotest.fail "store did not recover"

let test_store_unwritable () =
  match Store.open_ ~dir:"/proc/vmht-no-such-dir/store" () with
  | Ok _ -> Alcotest.fail "opened an unwritable store"
  | Error (Flow.Store_error { fault = Flow.Store_unwritable _; _ }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Flow.error_to_string e)

let test_flow_promotion () =
  (* A disk hit is promoted into the memo: second process-lifetime
     (simulated by reset_cache) answers from the store, not a fresh
     synthesis. *)
  let s = open_store () in
  Store.install s;
  Fun.protect
    ~finally:(fun () ->
      Flow.set_store None;
      Flow.reset_cache ())
    (fun () ->
      Flow.reset_cache ();
      let config = Config.with_unroll Config.default 2 in
      let kernel = kernel_of "spmv" in
      let req = Flow.Request.of_kernel ~config ~style:Wrapper.Vm_iface kernel in
      let hw1 = Flow.run_exn req in
      Alcotest.(check int) "written through" 1 (Store.stats s).Store.saves;
      Flow.reset_cache ();
      let hw2 = Flow.run_exn req in
      Alcotest.(check int) "served from disk" 1 (Store.stats s).Store.hits;
      Alcotest.(check string) "same hardware" hw1.Flow.verilog hw2.Flow.verilog;
      (* Promotion: now memoized, a third run touches neither. *)
      let before = (Store.stats s).Store.hits in
      let _ = Flow.run_exn req in
      Alcotest.(check int) "memo answered" before (Store.stats s).Store.hits)

(* --- server -------------------------------------------------------- *)

let small_mix requests =
  Loadgen.mix ~config:Config.default ~requests ~seed:7

let reply_sig (r : Proto.reply) =
  (r.Proto.rid, Proto.outcome_to_string r.Proto.outcome)

let test_substrate_determinism () =
  Flow.set_store None;
  let reqs = small_mix 10 in
  let run shards =
    let server = Server.create ~shards ~handle:Loadgen.handle () in
    let replies = Server.run_batch server reqs in
    Server.shutdown server;
    List.map reply_sig replies
  in
  (* Fork the widest fleet first; every substrate must agree, and the
     replies arrive in rid order. *)
  let sharded2 = run 2 in
  let sharded1 = run 1 in
  let inproc = run 0 in
  Alcotest.(check (list (pair int string)))
    "1 shard = 2 shards" sharded2 sharded1;
  Alcotest.(check (list (pair int string)))
    "in-process = sharded" sharded2 inproc;
  Alcotest.(check (list int))
    "rid order" (List.init 10 Fun.id)
    (List.map fst inproc)

let test_server_store_warm () =
  let dir = fresh_dir () in
  let s1 = match Store.open_ ~dir () with
    | Ok s -> s
    | Error e -> Alcotest.failf "open: %s" (Flow.error_to_string e)
  in
  Store.install s1;
  Fun.protect
    ~finally:(fun () ->
      Flow.set_store None;
      Flow.reset_cache ())
    (fun () ->
      Flow.reset_cache ();
      let reqs =
        List.filter
          (fun (r : Proto.request) ->
            Option.is_some (Proto.synthesis_key r.Proto.job))
          (small_mix 16)
      in
      let cold = Server.create ~store:s1 ~handle:Loadgen.handle () in
      let cold_replies = Server.run_batch cold reqs in
      Server.shutdown cold;
      (* A second server over the same directory sees every key. *)
      let s2 = match Store.open_ ~dir () with
        | Ok s -> s
        | Error e -> Alcotest.failf "reopen: %s" (Flow.error_to_string e)
      in
      let warm = Server.create ~store:s2 ~handle:Loadgen.handle () in
      let warm_replies = Server.run_batch warm reqs in
      Server.shutdown warm;
      Alcotest.(check (float 0.0001)) "warm hit rate" 1.0 (Server.hit_rate warm);
      Alcotest.(check bool) "cold hit rate below 1" true
        (Server.hit_rate cold < 1.0);
      Alcotest.(check (list (pair int string)))
        "cold and warm replies identical"
        (List.map reply_sig cold_replies)
        (List.map reply_sig warm_replies))

let crash_request rid attempts_to_survive =
  {
    Proto.rid;
    attempt = 1;
    deadline_ms = None;
    job =
      Proto.Execute
        {
          workload = "__crash__";
          mode = Proto.Sw;
          size = attempts_to_survive;
          config = Config.default;
        };
  }

(* Kills the whole worker process below the crash threshold; the
   server must respawn and retry. *)
let crashy_handle (req : Proto.request) =
  match req.Proto.job with
  | Proto.Execute { workload = "__crash__"; size; _ } ->
    if req.Proto.attempt < size then Unix._exit 13
    else
      Proto.Executed
        { cycles = req.Proto.attempt; correct = true; ret = None }
  | _ -> Proto.Failed "unexpected job"

let test_retry_on_worker_death () =
  let server = Server.create ~shards:1 ~max_attempts:3 ~handle:crashy_handle () in
  let replies = Server.run_batch server [ crash_request 0 2 ] in
  Server.shutdown server;
  (match replies with
  | [ { Proto.rid = 0; outcome = Proto.Executed { cycles; _ } } ] ->
    Alcotest.(check int) "succeeded on attempt 2" 2 cycles
  | [ { Proto.outcome; _ } ] ->
    Alcotest.failf "unexpected outcome: %s" (Proto.outcome_to_string outcome)
  | _ -> Alcotest.fail "expected one reply");
  let st = Server.stats server in
  Alcotest.(check bool) "retry recorded" true (st.Server.retried >= 1)

let test_gives_up_after_max_attempts () =
  let server = Server.create ~shards:1 ~max_attempts:2 ~handle:crashy_handle () in
  let replies =
    Server.run_batch server [ crash_request 0 99; crash_request 1 1 ]
  in
  Server.shutdown server;
  match List.map reply_sig replies with
  | [ (0, msg); (1, ok) ] ->
    Alcotest.(check string) "gave up" "failed: worker died (2 attempts)" msg;
    Alcotest.(check bool) "innocent bystander answered" true
      (String.length ok > 0 && String.sub ok 0 8 = "executed")
  | _ -> Alcotest.fail "expected two replies"

let test_deadline_expiry () =
  let server = Server.create ~shards:1 ~handle:crashy_handle () in
  let req =
    {
      (crash_request 0 1) with
      Proto.deadline_ms = Some 0 (* expired on arrival *);
    }
  in
  let replies = Server.run_batch server [ req ] in
  Server.shutdown server;
  (match List.map reply_sig replies with
  | [ (0, msg) ] ->
    Alcotest.(check string) "expired without dispatch"
      "failed: deadline of 0 ms exceeded before dispatch" msg
  | _ -> Alcotest.fail "expected one reply");
  Alcotest.(check int) "counted expired" 1 (Server.stats server).Server.expired

let test_batch_dedup () =
  Flow.set_store None;
  let kernel = kernel_of "vecadd" in
  let job =
    Proto.Synthesize
      { kernel; style = Wrapper.Vm_iface; config = Config.default }
  in
  let reqs =
    List.init 6 (fun rid ->
        { Proto.rid; attempt = 1; deadline_ms = None; job })
  in
  let server = Server.create ~shards:1 ~handle:Loadgen.handle () in
  let replies = Server.run_batch server reqs in
  Server.shutdown server;
  let st = Server.stats server in
  Alcotest.(check int) "five replies deduped" 5 st.Server.deduped;
  Alcotest.(check int) "five key hits (in-batch)" 5 st.Server.key_hits;
  match List.map reply_sig replies with
  | (_, first) :: rest ->
    List.iter
      (fun (_, o) -> Alcotest.(check string) "cloned outcome" first o)
      rest
  | [] -> Alcotest.fail "no replies"

(* --- request-key config folding ------------------------------------ *)

let test_request_config_folding () =
  let kernel = kernel_of "vecadd" in
  let config = Config.default in
  let base =
    Flow.run_exn
      (Flow.Request.of_kernel ~config ~style:Wrapper.Dma_iface kernel)
  in
  let again =
    Flow.run_exn
      (Flow.Request.of_kernel ~config ~style:Wrapper.Dma_iface kernel)
  in
  Alcotest.(check bool) "same memoized hardware" true (base == again);
  (* Window count lives in the config (and so in the cache key). *)
  let windowed =
    Flow.run_exn
      (Flow.Request.of_kernel
         ~config:(Config.with_windows config 5)
         ~style:Wrapper.Dma_iface kernel)
  in
  Alcotest.(check bool) "windows changes the hardware" true
    (windowed.Flow.wrapper_area <> base.Flow.wrapper_area)

let () =
  Alcotest.run "vmht-serve"
    [
      ( "store",
        [
          QCheck_alcotest.to_alcotest prop_entry_roundtrip;
          Alcotest.test_case "decode is total on junk" `Quick test_decode_total;
          Alcotest.test_case "save/load round-trip" `Quick test_store_save_load;
          Alcotest.test_case "corrupt + version-skew fallback" `Quick
            test_store_corrupt_fallback;
          Alcotest.test_case "unwritable dir is typed" `Quick
            test_store_unwritable;
          Alcotest.test_case "flow promotes disk hits" `Quick
            test_flow_promotion;
        ] );
      ( "server",
        [
          Alcotest.test_case "substrates agree byte-for-byte" `Quick
            test_substrate_determinism;
          Alcotest.test_case "warm store answers everything" `Quick
            test_server_store_warm;
          Alcotest.test_case "retries across worker death" `Quick
            test_retry_on_worker_death;
          Alcotest.test_case "bounded retry gives up" `Quick
            test_gives_up_after_max_attempts;
          Alcotest.test_case "deadlines expire undispatched" `Quick
            test_deadline_expiry;
          Alcotest.test_case "in-batch dedup fans out" `Quick test_batch_dedup;
        ] );
      ( "flow-api",
        [
          Alcotest.test_case "request key folds the config" `Quick
            test_request_config_folding;
        ] );
    ]
