(* Multi-process isolation (ASIDs, shootdowns) and failure injection:
   the ways a hardware thread can go wrong, and the system must fail
   loudly rather than corrupt. *)

open Vmht
module Addr_space = Vmht_vm.Addr_space
module Mmu = Vmht_vm.Mmu
module Tlb = Vmht_vm.Tlb
module Engine = Vmht_sim.Engine

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let in_soc soc f = Launch.run_to_completion soc f

(* ---------------------- ASID isolation ---------------------------- *)

let test_tlb_asid_isolation () =
  let tlb = Tlb.create Tlb.default_config in
  Tlb.insert ~asid:1 tlb ~vpn:5 { Tlb.frame = 0x1000; writable = true };
  Tlb.insert ~asid:2 tlb ~vpn:5 { Tlb.frame = 0x2000; writable = true };
  (match (Tlb.lookup ~asid:1 tlb ~vpn:5, Tlb.lookup ~asid:2 tlb ~vpn:5) with
   | Some a, Some b ->
     check_int "asid 1 frame" 0x1000 a.Tlb.frame;
     check_int "asid 2 frame" 0x2000 b.Tlb.frame
   | _ -> Alcotest.fail "both translations should hit");
  check_bool "asid 3 misses" true (Tlb.lookup ~asid:3 tlb ~vpn:5 = None);
  Tlb.invalidate_asid tlb ~asid:1;
  check_bool "asid 1 dropped" true (Tlb.lookup ~asid:1 tlb ~vpn:5 = None);
  check_bool "asid 2 kept" true (Tlb.lookup ~asid:2 tlb ~vpn:5 <> None)

let test_processes_same_vaddr_different_data () =
  let soc = Soc.create Config.default in
  let space1 = Soc.aspace soc in
  let space2, asid2 = Soc.create_process soc in
  check_bool "distinct asid" true (asid2 > 0);
  (* Same allocation sequence -> same virtual addresses in both. *)
  let v1 = Addr_space.alloc space1 ~bytes:4096 in
  let v2 = Addr_space.alloc space2 ~bytes:4096 in
  check_int "same virtual address" v1 v2;
  Addr_space.store_word space1 v1 111;
  Addr_space.store_word space2 v2 222;
  let mmu1 = Soc.make_mmu soc in
  let mmu2 = Soc.make_mmu ~aspace:(space2, asid2) soc in
  let a, b =
    in_soc soc (fun () -> (Mmu.load mmu1 v1, Mmu.load mmu2 v2))
  in
  check_int "process 1 sees its data" 111 a;
  check_int "process 2 sees its data" 222 b

(* ---------------------- TLB shootdown ----------------------------- *)

let test_shootdown_removes_stale_translation () =
  let soc = Soc.create Config.default in
  let space = Soc.aspace soc in
  let base = Addr_space.alloc space ~bytes:4096 in
  let mmu = Soc.make_mmu soc in
  (* Warm the TLB. *)
  let v = in_soc soc (fun () -> Mmu.load mmu base) in
  check_int "initial read" 0 v;
  (* Unmap WITHOUT shootdown: the stale entry still translates — the
     hazard shootdowns exist to close. *)
  Vmht_vm.Page_table.unmap (Addr_space.page_table space) ~vaddr:base;
  let stale = in_soc soc (fun () -> Mmu.load mmu base) in
  check_int "stale TLB entry still serves" 0 stale;
  (* Now the proper kernel path. *)
  (match Addr_space.translate space base with
   | None -> ()
   | Some _ -> Alcotest.fail "page table should be unmapped");
  List.iter (fun m -> Mmu.invalidate_page m ~vaddr:base) [ mmu ];
  check_bool "faults after shootdown" true
    (in_soc soc (fun () ->
         match Mmu.load mmu base with
         | _ -> false
         | exception Mmu.Mmu_fault _ -> true))

let test_soc_unmap_page_shoots_all_mmus () =
  let soc = Soc.create Config.default in
  let space = Soc.aspace soc in
  let base = Addr_space.alloc space ~bytes:4096 in
  let mmu1 = Soc.make_mmu soc in
  let mmu2 = Soc.make_mmu soc in
  ignore (in_soc soc (fun () -> Mmu.load mmu1 base + Mmu.load mmu2 base));
  Soc.unmap_page soc space ~vaddr:base;
  List.iter
    (fun mmu ->
      check_bool "every MMU faults" true
        (in_soc soc (fun () ->
             match Mmu.load mmu base with
             | _ -> false
             | exception Mmu.Mmu_fault _ -> true)))
    [ mmu1; mmu2 ]

let test_soc_shootdown_reaches_all_levels () =
  (* With the full translation hierarchy on, [Soc.unmap_page] must
     reach every level: both L1 TLBs, the shared L2, and each walker's
     page-walk cache.  Freed frames are first in line for reuse, so any
     surviving stale state would serve another page's data instead of
     faulting. *)
  let config =
    Config.with_walk_cache
      (Config.with_tlb2 Config.default
         { Vmht_vm.Tlb2.default_config with Vmht_vm.Tlb2.enabled = true })
      8
  in
  let soc = Soc.create config in
  let l2 =
    match Soc.tlb2 soc with
    | Some l2 -> l2
    | None -> Alcotest.fail "enabled config should build a shared L2"
  in
  let space = Soc.aspace soc in
  let base = Addr_space.alloc space ~bytes:4096 in
  Addr_space.store_word space base 111;
  let mmu1 = Soc.make_mmu soc in
  let mmu2 = Soc.make_mmu soc in
  let a, b = in_soc soc (fun () -> (Mmu.load mmu1 base, Mmu.load mmu2 base)) in
  check_int "mmu1 warm read" 111 a;
  check_int "mmu2 warm read" 111 b;
  check_bool "L2 warmed" true (Vmht_vm.Tlb2.occupancy l2 > 0);
  Soc.unmap_page soc space ~vaddr:base;
  check_int "L2 shot down" 0 (Vmht_vm.Tlb2.occupancy l2);
  (* The frames [base] just returned back the new page. *)
  let fresh = Addr_space.alloc space ~bytes:4096 in
  Addr_space.store_word space fresh 999;
  List.iter
    (fun mmu ->
      check_bool "unmapped page faults (no level leaks the reused frame)"
        true
        (in_soc soc (fun () ->
             match Mmu.load mmu base with
             | _ -> false
             | exception Mmu.Mmu_fault _ -> true)))
    [ mmu1; mmu2 ];
  check_int "fresh page reads through the hierarchy" 999
    (in_soc soc (fun () -> Mmu.load mmu1 fresh))

(* ---------------------- failure injection ------------------------- *)

let synthesize_source src =
  Flow.run_exn (Flow.Request.of_source ~style:Wrapper.Vm_iface src)

let test_hw_thread_divide_by_zero () =
  let soc = Soc.create Config.default in
  let hw = synthesize_source "kernel f(x: int) : int { return 10 / x; }" in
  check_bool "trap surfaces" true
    (match
       in_soc soc (fun () -> Launch.run_hw soc hw { Launch.args = [ 0 ]; buffers = [] })
     with
     | _ -> false
     | exception Vmht_lang.Ast_interp.Eval_error _ -> true)

let test_hw_thread_wild_pointer () =
  let soc = Soc.create Config.default in
  let hw = synthesize_source "kernel f(p: int*) : int { return p[0]; }" in
  check_bool "Mmu_fault surfaces" true
    (match
       in_soc soc (fun () ->
           Launch.run_hw soc hw { Launch.args = [ 0x300000 ]; buffers = [] })
     with
     | _ -> false
     | exception Mmu.Mmu_fault _ -> true)

let test_fault_through_thread_join () =
  let soc = Soc.create Config.default in
  let hw = synthesize_source "kernel f(p: int*) : int { return p[0]; }" in
  check_bool "fault re-raised at join" true
    (in_soc soc (fun () ->
         let t =
           Vmht_rt.Hthreads.spawn ~name:"wild" (fun () ->
               Launch.run_hw soc hw
                 { Launch.args = [ 0x300000 ]; buffers = [] })
         in
         match Vmht_rt.Hthreads.join t with
         | _ -> false
         | exception Mmu.Mmu_fault _ -> true))

let test_dma_kernel_escaping_windows () =
  (* A copy-based thread touching memory outside its declared buffers
     hits the window checker — the bug the VM interface turns into a
     working program. *)
  let soc = Soc.create Config.default in
  let space = Soc.aspace soc in
  let inside = Addr_space.alloc space ~bytes:4096 in
  let outside = Addr_space.alloc space ~bytes:4096 in
  let hw =
    Flow.run_exn
      (Flow.Request.of_kernel ~style:Wrapper.Dma_iface
         (Vmht_lang.Parser.parse_kernel
            "kernel f(p: int*, q: int*) : int { return p[0] + q[0]; }"))
  in
  check_bool "escapes are detected" true
    (match
       in_soc soc (fun () ->
           Launch.run_hw soc hw
             {
               Launch.args = [ inside; outside ];
               buffers =
                 [ { Launch.base = inside; words = 8; dir = Launch.In } ];
             })
     with
     | _ -> false
     | exception Vmht_mem.Scratchpad.Out_of_window _ -> true)

let test_physical_memory_exhaustion () =
  let config =
    { Config.default with Config.phys_bytes = 64 * 1024 (* 16 frames *) }
  in
  let soc = Soc.create config in
  check_bool "Out_of_frames surfaces" true
    (match Addr_space.alloc (Soc.aspace soc) ~bytes:(1024 * 1024) with
     | _ -> false
     | exception Vmht_vm.Frame_alloc.Out_of_frames -> true)

let suite =
  [
    Alcotest.test_case "tlb: ASID isolation" `Quick test_tlb_asid_isolation;
    Alcotest.test_case "processes: same vaddr, different data" `Quick
      test_processes_same_vaddr_different_data;
    Alcotest.test_case "shootdown: stale entry closed" `Quick
      test_shootdown_removes_stale_translation;
    Alcotest.test_case "shootdown: all MMUs" `Quick
      test_soc_unmap_page_shoots_all_mmus;
    Alcotest.test_case "shootdown: all hierarchy levels" `Quick
      test_soc_shootdown_reaches_all_levels;
    Alcotest.test_case "inject: divide by zero" `Quick
      test_hw_thread_divide_by_zero;
    Alcotest.test_case "inject: wild pointer" `Quick test_hw_thread_wild_pointer;
    Alcotest.test_case "inject: fault at join" `Quick
      test_fault_through_thread_join;
    Alcotest.test_case "inject: DMA window escape" `Quick
      test_dma_kernel_escaping_windows;
    Alcotest.test_case "inject: frame exhaustion" `Quick
      test_physical_memory_exhaustion;
  ]
