open Vmht_ir
module Ast_interp = Vmht_lang.Ast_interp

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let ir_run f ~data ~args = Ir_interp.run (Ast_interp.array_memory data) f ~args

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  at 0

(* ---------------------- registry ----------------------------------- *)

let test_registry_populated () =
  let names = Pass.names () in
  List.iter
    (fun n ->
      check_bool (n ^ " registered") true (List.mem n names);
      match Pass.find n with
      | Some p -> check_bool (n ^ " documented") true (p.Pass.doc <> "")
      | None -> Alcotest.fail (n ^ " not found"))
    [
      "const_fold"; "copy_prop"; "cse"; "store_forward"; "strength_reduce";
      "licm"; "dce"; "coalesce"; "simplify_cfg";
    ]

let test_register_rejects_duplicates () =
  match
    Pass.register
      { Pass.name = "dce"; doc = "dup"; kind = Pass.Cleanup; run = (fun _ -> 0) }
  with
  | () -> Alcotest.fail "duplicate registration accepted"
  | exception Invalid_argument _ -> ()

let test_of_names_round_trip () =
  match Pass_manager.of_names [ "dce"; "const_fold" ] with
  | Ok sched ->
    check_bool "order kept" true
      (List.map (fun (p : Pass.t) -> p.Pass.name) sched.Pass_manager.passes
      = [ "dce"; "const_fold" ]);
    check_bool "named" true
      (sched.Pass_manager.sname = "custom:dce,const_fold")
  | Error msg -> Alcotest.fail msg

let test_of_names_unknown () =
  match Pass_manager.of_names [ "const_fold"; "nope" ] with
  | Ok _ -> Alcotest.fail "unknown pass accepted"
  | Error msg ->
    check_bool "names the culprit" true (contains ~sub:"nope" msg)

let test_fingerprint_tracks_schedule () =
  let base = Vmht.Config.default in
  let fp c = Vmht.Config.fingerprint c in
  check_bool "opt level changes fingerprint" true
    (fp (Vmht.Config.with_opt_level base 0) <> fp base);
  check_bool "custom passes change fingerprint" true
    (fp (Vmht.Config.with_passes base (Some [ "dce" ])) <> fp base);
  check_bool "pass order changes fingerprint" true
    (fp (Vmht.Config.with_passes base (Some [ "dce"; "cse" ]))
    <> fp (Vmht.Config.with_passes base (Some [ "cse"; "dce" ])))

(* ---------------------- verifier ----------------------------------- *)

let block_with f label instrs term =
  let b = Ir.add_block f label in
  b.Ir.instrs <- instrs;
  b.Ir.term <- term;
  b

let test_verify_accepts_lowered () =
  let f =
    Lower.lower_kernel
      (Vmht_lang.Parser.parse_kernel
         "kernel f(x: int) : int { return x + 1; }")
  in
  Verify.run f

let test_verify_rejects_undefined_reg () =
  let f = Ir.create_func ~name:"f" ~arg_count:1 ~returns_value:true in
  let r = Ir.fresh_reg f in
  (* r2 is never defined anywhere. *)
  ignore
    (block_with f (Ir.fresh_label f)
       [ Ir.Mov (r, Ir.Reg 2) ]
       (Ir.Ret (Some (Ir.Reg r))));
  f.Ir.next_reg <- 3;
  match Verify.check f with
  | Ok () -> Alcotest.fail "use of undefined register accepted"
  | Error _ -> ()

let test_verify_rejects_dangling_target () =
  let f = Ir.create_func ~name:"f" ~arg_count:0 ~returns_value:false in
  ignore (block_with f (Ir.fresh_label f) [] (Ir.Jmp 99));
  match Verify.check f with
  | Ok () -> Alcotest.fail "jump to missing block accepted"
  | Error _ -> ()

let test_verify_rejects_ret_arity () =
  let f = Ir.create_func ~name:"f" ~arg_count:0 ~returns_value:true in
  ignore (block_with f (Ir.fresh_label f) [] (Ir.Ret None));
  match Verify.check f with
  | Ok () -> Alcotest.fail "bare ret from value-returning function accepted"
  | Error _ -> ()

(* ---------------------- simplify_cfg edge cases -------------------- *)

let test_cfg_unreachable_self_loop () =
  let f = Ir.create_func ~name:"f" ~arg_count:0 ~returns_value:false in
  let l0 = Ir.fresh_label f in
  let l1 = Ir.fresh_label f in
  ignore (block_with f l0 [] (Ir.Ret None));
  (* Unreachable block that is its own predecessor: the "has a unique
     predecessor" and "no predecessors" heuristics both miss it; only
     reachability can delete it. *)
  ignore (block_with f l1 [] (Ir.Jmp l1));
  let n = Passes.simplify_cfg f in
  check_bool "rewrote" true (n > 0);
  check_int "self-loop removed" 1 (Ir.block_count f);
  Verify.run f

let test_cfg_thread_into_merged () =
  let f = Ir.create_func ~name:"f" ~arg_count:1 ~returns_value:true in
  let r1 = Ir.fresh_reg f in
  let r2 = Ir.fresh_reg f in
  let l0 = Ir.fresh_label f in
  let l1 = Ir.fresh_label f in
  let l2 = Ir.fresh_label f in
  (* l0 -> l1 (empty forwarder) -> l2: threading the jump gives l2 a
     unique predecessor, which lets the chain merge into one block. *)
  ignore (block_with f l0 [ Ir.Mov (r1, Ir.Imm 5) ] (Ir.Jmp l1));
  ignore (block_with f l1 [] (Ir.Jmp l2));
  ignore
    (block_with f l2
       [ Ir.Bin (Vmht_lang.Ast.Add, r2, Ir.Reg r1, Ir.Reg 0) ]
       (Ir.Ret (Some (Ir.Reg r2))));
  let rec fix () = if Passes.simplify_cfg f > 0 then fix () in
  fix ();
  Verify.run f;
  check_int "merged to one block" 1 (Ir.block_count f);
  check_bool "semantics kept" true
    (ir_run f ~data:[| 0 |] ~args:[ 37 ] = Some 42)

(* ---------------------- dce on loads ------------------------------- *)

let test_dce_deletes_dead_load () =
  let f = Ir.create_func ~name:"f" ~arg_count:0 ~returns_value:false in
  let r = Ir.fresh_reg f in
  ignore
    (block_with f (Ir.fresh_label f) [ Ir.Load (r, Ir.Imm 0) ] (Ir.Ret None));
  check_bool "rewrote" true (Passes.dce f > 0);
  check_int "dead load removed" 0 (Ir.instr_count f);
  Verify.run f

let test_dce_keeps_load_feeding_store () =
  let f = Ir.create_func ~name:"f" ~arg_count:0 ~returns_value:false in
  let r = Ir.fresh_reg f in
  ignore
    (block_with f (Ir.fresh_label f)
       [ Ir.Load (r, Ir.Imm 0); Ir.Store (Ir.Imm 8, Ir.Reg r) ]
       (Ir.Ret None));
  check_int "nothing removed" 0 (Passes.dce f);
  check_int "both instrs kept" 2 (Ir.instr_count f)

(* ---------------------- memory / scalar pass units ----------------- *)

let test_store_forward_hit () =
  let f = Ir.create_func ~name:"f" ~arg_count:1 ~returns_value:true in
  let r1 = Ir.fresh_reg f in
  ignore
    (block_with f (Ir.fresh_label f)
       [ Ir.Store (Ir.Reg 0, Ir.Imm 42); Ir.Load (r1, Ir.Reg 0) ]
       (Ir.Ret (Some (Ir.Reg r1))));
  check_int "one forward" 1 (Passes.store_forward f);
  (match (Ir.entry f).Ir.instrs with
  | [ Ir.Store _; Ir.Mov (d, Ir.Imm 42) ] -> check_int "dest" r1 d
  | _ -> Alcotest.fail "load not rewritten to mov");
  Verify.run f;
  check_bool "still stores and returns 42" true
    (let data = [| 0 |] in
     ir_run f ~data ~args:[ 0 ] = Some 42 && data.(0) = 42)

let test_store_forward_blocked_by_store () =
  let f = Ir.create_func ~name:"f" ~arg_count:2 ~returns_value:true in
  let r2 = Ir.fresh_reg f in
  (* The second store may alias the first address, so the load must
     stay a load. *)
  ignore
    (block_with f (Ir.fresh_label f)
       [
         Ir.Store (Ir.Reg 0, Ir.Imm 1);
         Ir.Store (Ir.Reg 1, Ir.Imm 2);
         Ir.Load (r2, Ir.Reg 0);
       ]
       (Ir.Ret (Some (Ir.Reg r2))));
  check_int "no forward" 0 (Passes.store_forward f);
  check_bool "aliasing store wins" true
    (ir_run f ~data:[| 0; 0 |] ~args:[ 0; 0 ] = Some 2)

let test_strength_reduce_mul () =
  let f = Ir.create_func ~name:"f" ~arg_count:1 ~returns_value:true in
  let r1 = Ir.fresh_reg f in
  ignore
    (block_with f (Ir.fresh_label f)
       [ Ir.Bin (Vmht_lang.Ast.Mul, r1, Ir.Reg 0, Ir.Imm 5) ]
       (Ir.Ret (Some (Ir.Reg r1))));
  check_bool "rewrote" true (Passes.strength_reduce f > 0);
  Verify.run f;
  check_bool "no multiply left" true
    (List.for_all
       (function Ir.Bin (Vmht_lang.Ast.Mul, _, _, _) -> false | _ -> true)
       (Ir.entry f).Ir.instrs);
  check_bool "x*5 = 35" true (ir_run f ~data:[| 0 |] ~args:[ 7 ] = Some 35)

let test_strength_reduce_offset_chain () =
  let f = Ir.create_func ~name:"f" ~arg_count:1 ~returns_value:true in
  let r1 = Ir.fresh_reg f in
  let r2 = Ir.fresh_reg f in
  let r3 = Ir.fresh_reg f in
  ignore
    (block_with f (Ir.fresh_label f)
       [
         Ir.Bin (Vmht_lang.Ast.Add, r1, Ir.Reg 0, Ir.Imm 8);
         Ir.Bin (Vmht_lang.Ast.Add, r2, Ir.Reg r1, Ir.Imm 8);
         Ir.Load (r3, Ir.Reg r2);
       ]
       (Ir.Ret (Some (Ir.Reg r3))));
  check_bool "rewrote" true (Passes.strength_reduce f > 0);
  Verify.run f;
  check_bool "chain folded to base+16" true
    (List.exists
       (function
         | Ir.Bin (Vmht_lang.Ast.Add, d, Ir.Reg 0, Ir.Imm 16) -> d = r2
         | _ -> false)
       (Ir.entry f).Ir.instrs);
  check_bool "loads m[2]" true
    (ir_run f ~data:[| 0; 0; 99 |] ~args:[ 0 ] = Some 99)

let test_coalesce_folds_pair () =
  let f = Ir.create_func ~name:"f" ~arg_count:1 ~returns_value:true in
  let r1 = Ir.fresh_reg f in
  let r2 = Ir.fresh_reg f in
  ignore
    (block_with f (Ir.fresh_label f)
       [
         Ir.Bin (Vmht_lang.Ast.Add, r1, Ir.Reg 0, Ir.Imm 1);
         Ir.Mov (r2, Ir.Reg r1);
       ]
       (Ir.Ret (Some (Ir.Reg r2))));
  check_int "one fold" 1 (Passes.coalesce f);
  Verify.run f;
  (match (Ir.entry f).Ir.instrs with
  | [ Ir.Bin (Vmht_lang.Ast.Add, d, Ir.Reg 0, Ir.Imm 1) ] ->
    check_int "op writes mov dest" r2 d
  | _ -> Alcotest.fail "pair not folded");
  check_bool "x+1" true (ir_run f ~data:[| 0 |] ~args:[ 6 ] = Some 7)

let test_coalesce_keeps_live_temp () =
  let f = Ir.create_func ~name:"f" ~arg_count:1 ~returns_value:true in
  let r1 = Ir.fresh_reg f in
  let r2 = Ir.fresh_reg f in
  let r3 = Ir.fresh_reg f in
  (* r1 is read again after the mov, so the pair must survive. *)
  ignore
    (block_with f (Ir.fresh_label f)
       [
         Ir.Bin (Vmht_lang.Ast.Add, r1, Ir.Reg 0, Ir.Imm 1);
         Ir.Mov (r2, Ir.Reg r1);
         Ir.Bin (Vmht_lang.Ast.Add, r3, Ir.Reg r1, Ir.Reg r2);
       ]
       (Ir.Ret (Some (Ir.Reg r3))));
  check_int "no fold" 0 (Passes.coalesce f);
  check_bool "2*(x+1)" true (ir_run f ~data:[| 0 |] ~args:[ 4 ] = Some 10)

(* ---------------------- qcheck: differential ----------------------- *)

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100000)

let fresh_data () = Array.init Gen_prog.mem_words (fun i -> (i * 37) mod 101)

let differential kernel ~args transform =
  let f_plain = Lower.lower_kernel kernel in
  let f_opt = Lower.lower_kernel kernel in
  transform f_opt;
  Verify.run f_opt;
  let d1 = fresh_data () and d2 = fresh_data () in
  let r1 = ir_run f_plain ~data:d1 ~args in
  let r2 = ir_run f_opt ~data:d2 ~args in
  r1 = r2 && d1 = d2

let prop_each_pass_preserves_semantics =
  QCheck.Test.make ~count:150
    ~name:"every registered pass preserves interpreter results" seed_arb
    (fun seed ->
      let kernel = Gen_prog.gen_kernel seed in
      let args = [ 0; seed mod 23; seed mod 19 ] in
      List.for_all
        (fun (p : Pass.t) ->
          differential kernel ~args (fun f -> ignore (p.Pass.run f)))
        (Pass.all ()))

let prop_each_preset_preserves_semantics =
  QCheck.Test.make ~count:150
    ~name:"-O0/-O1/-O2 schedules preserve interpreter results" seed_arb
    (fun seed ->
      let kernel = Gen_prog.gen_kernel seed in
      let args = [ 0; seed mod 29; seed mod 31 ] in
      List.for_all
        (fun level ->
          differential kernel ~args (fun f ->
              ignore
                (Pass_manager.optimize
                   ~schedule:(Pass_manager.of_opt_level level)
                   f)))
        [ 0; 1; 2 ])

let prop_verifier_accepts_all_pass_output =
  (* [Pass_manager.run] re-verifies after every single pass application
     (and raises on failure), so one full -O2 run checks the verifier
     against each intermediate IR, not just the final one. *)
  QCheck.Test.make ~count:1000
    ~name:"verifier accepts IR after every pass (1000 programs)" seed_arb
    (fun seed ->
      let kernel = Gen_prog.gen_kernel seed in
      let f = Lower.lower_kernel kernel in
      Verify.run f;
      match Pass_manager.optimize f with
      | (_ : Pass_manager.report) -> true
      | exception Failure _ -> false)

let suite =
  [
    Alcotest.test_case "registry: builtins present" `Quick
      test_registry_populated;
    Alcotest.test_case "registry: duplicate rejected" `Quick
      test_register_rejects_duplicates;
    Alcotest.test_case "schedule: of_names round trip" `Quick
      test_of_names_round_trip;
    Alcotest.test_case "schedule: unknown pass error" `Quick
      test_of_names_unknown;
    Alcotest.test_case "schedule: in config fingerprint" `Quick
      test_fingerprint_tracks_schedule;
    Alcotest.test_case "verify: accepts lowered IR" `Quick
      test_verify_accepts_lowered;
    Alcotest.test_case "verify: undefined register" `Quick
      test_verify_rejects_undefined_reg;
    Alcotest.test_case "verify: dangling branch target" `Quick
      test_verify_rejects_dangling_target;
    Alcotest.test_case "verify: ret arity" `Quick test_verify_rejects_ret_arity;
    Alcotest.test_case "cfg: unreachable self-loop" `Quick
      test_cfg_unreachable_self_loop;
    Alcotest.test_case "cfg: thread into merged block" `Quick
      test_cfg_thread_into_merged;
    Alcotest.test_case "dce: deletes dead load" `Quick
      test_dce_deletes_dead_load;
    Alcotest.test_case "dce: keeps load feeding store" `Quick
      test_dce_keeps_load_feeding_store;
    Alcotest.test_case "store_forward: forwards" `Quick test_store_forward_hit;
    Alcotest.test_case "store_forward: aliasing store blocks" `Quick
      test_store_forward_blocked_by_store;
    Alcotest.test_case "strength_reduce: mul by 5" `Quick
      test_strength_reduce_mul;
    Alcotest.test_case "strength_reduce: offset chain" `Quick
      test_strength_reduce_offset_chain;
    Alcotest.test_case "coalesce: folds pair" `Quick test_coalesce_folds_pair;
    Alcotest.test_case "coalesce: keeps live temp" `Quick
      test_coalesce_keeps_live_temp;
    QCheck_alcotest.to_alcotest prop_each_pass_preserves_semantics;
    QCheck_alcotest.to_alcotest prop_each_preset_preserves_semantics;
    QCheck_alcotest.to_alcotest prop_verifier_accepts_all_pass_output;
  ]
