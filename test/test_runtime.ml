open Vmht_rt
module Engine = Vmht_sim.Engine

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let run_sim f =
  let eng = Engine.create () in
  Engine.spawn eng ~name:"main" f;
  Engine.run eng;
  eng

(* ------------------------- Mutex ---------------------------------- *)

let test_mutex_exclusion () =
  let m = Sync.Mutex.create () in
  let inside = ref 0 in
  let max_inside = ref 0 in
  let worker () =
    Sync.Mutex.lock m;
    incr inside;
    max_inside := max !max_inside !inside;
    Engine.wait 5;
    decr inside;
    Sync.Mutex.unlock m
  in
  let eng = Engine.create () in
  for i = 1 to 4 do
    Engine.spawn eng ~name:(Printf.sprintf "w%d" i) worker
  done;
  Engine.run eng;
  check_int "never two holders" 1 !max_inside

let test_mutex_with_lock_releases_on_exn () =
  let m = Sync.Mutex.create () in
  ignore
    (run_sim (fun () ->
         (try Sync.Mutex.with_lock m (fun () -> failwith "boom")
          with Failure _ -> ());
         (* If the lock leaked, this second lock would deadlock and the
            engine would report a suspended process. *)
         Sync.Mutex.with_lock m (fun () -> ())))

let test_mutex_unlock_unheld () =
  ignore
    (run_sim (fun () ->
         let m = Sync.Mutex.create () in
         check_bool "raises" true
           (match Sync.Mutex.unlock m with
            | () -> false
            | exception Invalid_argument _ -> true)))

(* ------------------------- Condvar -------------------------------- *)

let test_condvar_signal () =
  let m = Sync.Mutex.create () in
  let cv = Sync.Condvar.create () in
  let ready = ref false in
  let observed_at = ref (-1) in
  let eng = Engine.create () in
  Engine.spawn eng ~name:"waiter" (fun () ->
      Sync.Mutex.lock m;
      while not !ready do
        Sync.Condvar.wait cv m
      done;
      observed_at := Engine.now_p ();
      Sync.Mutex.unlock m);
  Engine.spawn eng ~name:"producer" (fun () ->
      Engine.wait 50;
      Sync.Mutex.lock m;
      ready := true;
      Sync.Condvar.signal cv;
      Sync.Mutex.unlock m);
  Engine.run eng;
  check_int "woke after signal" 50 !observed_at

let test_condvar_broadcast () =
  let m = Sync.Mutex.create () in
  let cv = Sync.Condvar.create () in
  let released = ref 0 in
  let go = ref false in
  let eng = Engine.create () in
  for i = 1 to 3 do
    Engine.spawn eng ~name:(Printf.sprintf "w%d" i) (fun () ->
        Sync.Mutex.lock m;
        while not !go do
          Sync.Condvar.wait cv m
        done;
        incr released;
        Sync.Mutex.unlock m)
  done;
  Engine.spawn eng ~name:"waker" (fun () ->
      Engine.wait 10;
      Sync.Mutex.lock m;
      go := true;
      Sync.Condvar.broadcast cv;
      Sync.Mutex.unlock m);
  Engine.run eng;
  check_int "all released" 3 !released

(* ------------------------- Barrier -------------------------------- *)

let test_barrier_releases_together () =
  let b = Sync.Barrier.create ~parties:3 in
  let times = ref [] in
  let eng = Engine.create () in
  List.iteri
    (fun i delay ->
      Engine.spawn eng ~name:(Printf.sprintf "p%d" i) (fun () ->
          Engine.wait delay;
          Sync.Barrier.await b;
          times := Engine.now_p () :: !times))
    [ 5; 20; 35 ];
  Engine.run eng;
  Alcotest.(check (list int)) "all release at the last arrival" [ 35; 35; 35 ]
    !times

(* ------------------------- Completion / Hthreads ------------------ *)

let test_completion_before_and_after () =
  ignore
    (run_sim (fun () ->
         let c = Sync.Completion.create () in
         Engine.fork ~name:"producer" (fun () ->
             Engine.wait 7;
             Sync.Completion.complete c 42);
         check_int "await" 42 (Sync.Completion.await c);
         (* Await after completion returns immediately. *)
         check_int "await again" 42 (Sync.Completion.await c)))

let test_hthreads_join () =
  let joined = ref 0 in
  ignore
    (run_sim (fun () ->
         let t =
           Hthreads.spawn ~name:"child" (fun () ->
               Engine.wait 11;
               123)
         in
         joined := Hthreads.join t));
  check_int "joined value" 123 !joined

let test_hthreads_exception_propagates () =
  let caught = ref false in
  ignore
    (run_sim (fun () ->
         let t = Hthreads.spawn ~name:"bad" (fun () -> failwith "kaput") in
         match Hthreads.join t with
         | _ -> ()
         | exception Failure _ -> caught := true));
  check_bool "exception re-raised at join" true !caught

let test_hthreads_parallel_joins () =
  let total = ref 0 in
  ignore
    (run_sim (fun () ->
         let threads =
           List.init 5 (fun i ->
               Hthreads.spawn ~name:(Printf.sprintf "t%d" i) (fun () ->
                   Engine.wait (i * 3);
                   i * 10))
         in
         total := List.fold_left (fun acc t -> acc + Hthreads.join t) 0 threads));
  check_int "sum of results" 100 !total

let suite =
  [
    Alcotest.test_case "mutex: exclusion" `Quick test_mutex_exclusion;
    Alcotest.test_case "mutex: with_lock releases on exn" `Quick
      test_mutex_with_lock_releases_on_exn;
    Alcotest.test_case "mutex: unlock unheld" `Quick test_mutex_unlock_unheld;
    Alcotest.test_case "condvar: signal" `Quick test_condvar_signal;
    Alcotest.test_case "condvar: broadcast" `Quick test_condvar_broadcast;
    Alcotest.test_case "barrier: releases together" `Quick
      test_barrier_releases_together;
    Alcotest.test_case "completion: before and after" `Quick
      test_completion_before_and_after;
    Alcotest.test_case "hthreads: join" `Quick test_hthreads_join;
    Alcotest.test_case "hthreads: exception" `Quick
      test_hthreads_exception_propagates;
    Alcotest.test_case "hthreads: parallel joins" `Quick
      test_hthreads_parallel_joins;
  ]
