open Vmht_sim

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* --------------------- Event_queue -------------------------------- *)

let test_queue_order () =
  let q = Event_queue.create () in
  Event_queue.push q ~at:5 "c";
  Event_queue.push q ~at:1 "a";
  Event_queue.push q ~at:3 "b";
  let pop () =
    match Event_queue.pop q with Some (_, v) -> v | None -> "?"
  in
  (* Bind each pop explicitly: list literals evaluate right-to-left. *)
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ]
    [ first; second; third ]

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  List.iter (fun v -> Event_queue.push q ~at:7 v) [ 1; 2; 3; 4; 5 ];
  let rec drain acc =
    match Event_queue.pop q with
    | Some (_, v) -> drain (v :: acc)
    | None -> List.rev acc
  in
  Alcotest.(check (list int)) "ties pop FIFO" [ 1; 2; 3; 4; 5 ] (drain [])

let test_queue_interleaved () =
  let q = Event_queue.create () in
  for i = 0 to 99 do
    Event_queue.push q ~at:(i * 17 mod 31) i
  done;
  let last = ref (-1) in
  let count = ref 0 in
  let rec drain () =
    match Event_queue.pop q with
    | Some (at, _) ->
      check_bool "non-decreasing" true (at >= !last);
      last := at;
      incr count;
      drain ()
    | None -> ()
  in
  drain ();
  check_int "all popped" 100 !count

(* --------------------- Engine ------------------------------------- *)

let test_wait_advances_time () =
  let eng = Engine.create () in
  let finished_at = ref (-1) in
  Engine.spawn eng ~name:"p" (fun () ->
      Engine.wait 10;
      Engine.wait 5;
      finished_at := Engine.now_p ());
  Engine.run eng;
  check_int "time advanced" 15 !finished_at

let test_parallel_processes () =
  let eng = Engine.create () in
  let order = ref [] in
  let proc name delay () =
    Engine.wait delay;
    order := name :: !order
  in
  Engine.spawn eng ~name:"slow" (proc "slow" 20);
  Engine.spawn eng ~name:"fast" (proc "fast" 5);
  Engine.spawn eng ~name:"mid" (proc "mid" 10);
  Engine.run eng;
  Alcotest.(check (list string)) "completion order" [ "fast"; "mid"; "slow" ]
    (List.rev !order)

let test_fork () =
  let eng = Engine.create () in
  let results = ref [] in
  Engine.spawn eng ~name:"parent" (fun () ->
      Engine.fork ~name:"child" (fun () ->
          Engine.wait 3;
          results := ("child", Engine.now_p ()) :: !results);
      Engine.wait 1;
      results := ("parent", Engine.now_p ()) :: !results);
  Engine.run eng;
  Alcotest.(check (list (pair string int)))
    "parent then child" [ ("parent", 1); ("child", 3) ]
    (List.rev !results)

let test_suspend_resume () =
  let eng = Engine.create () in
  let resumer = ref None in
  let woke_at = ref (-1) in
  Engine.spawn eng ~name:"sleeper" (fun () ->
      Engine.suspend (fun resume -> resumer := Some resume);
      woke_at := Engine.now_p ());
  Engine.spawn eng ~name:"waker" (fun () ->
      Engine.wait 42;
      match !resumer with Some r -> r () | None -> Alcotest.fail "no resumer");
  Engine.run eng;
  check_int "woke at waker's time" 42 !woke_at

let test_double_resume_rejected () =
  let eng = Engine.create () in
  let resumer = ref None in
  Engine.spawn eng ~name:"sleeper" (fun () ->
      Engine.suspend (fun resume -> resumer := Some resume));
  Engine.spawn eng ~name:"waker" (fun () ->
      Engine.wait 1;
      match !resumer with
      | Some r ->
        r ();
        Alcotest.check_raises "second resume raises"
          (Invalid_argument "Engine.suspend: process resumed twice") r
      | None -> Alcotest.fail "no resumer");
  Engine.run eng

let test_run_until () =
  let eng = Engine.create () in
  let progress = ref 0 in
  Engine.spawn eng ~name:"ticker" (fun () ->
      let rec loop () =
        Engine.wait 10;
        incr progress;
        if !progress < 100 then loop ()
      in
      loop ());
  Engine.run ~until:35 eng;
  check_int "three ticks fit in 35 cycles" 3 !progress;
  Engine.run eng;
  check_int "finishes when resumed" 100 !progress

let test_stuck_detection () =
  let eng = Engine.create () in
  Engine.spawn eng ~name:"forever" (fun () ->
      Engine.suspend (fun _resume -> ()));
  check_bool "raises Stuck" true
    (match Engine.run ~check_quiescent:true eng with
     | () -> false
     | exception Engine.Stuck _ -> true)

let test_not_in_process () =
  check_bool "wait outside process raises" true
    (match Engine.wait 1 with
     | () -> false
     | exception Engine.Not_in_process -> true)

let test_determinism () =
  let run_once () =
    let eng = Engine.create () in
    let log = Buffer.create 64 in
    for i = 0 to 9 do
      Engine.spawn eng ~name:(string_of_int i) (fun () ->
          Engine.wait (i * 3 mod 7);
          Buffer.add_string log (Printf.sprintf "%d@%d;" i (Engine.now_p ())))
    done;
    Engine.run eng;
    Buffer.contents log
  in
  Alcotest.(check string) "identical runs" (run_once ()) (run_once ())

(* --------------------- Resource ----------------------------------- *)

let test_resource_serializes () =
  let eng = Engine.create () in
  let bus = Resource.create ~name:"bus" in
  let finish = ref [] in
  for i = 1 to 3 do
    Engine.spawn eng ~name:(Printf.sprintf "p%d" i) (fun () ->
        Resource.use bus ~cycles:10;
        finish := (i, Engine.now_p ()) :: !finish)
  done;
  Engine.run eng;
  Alcotest.(check (list (pair int int)))
    "FIFO, 10 cycles apart"
    [ (1, 10); (2, 20); (3, 30) ]
    (List.rev !finish)

let test_resource_stats () =
  let eng = Engine.create () in
  let r = Resource.create ~name:"r" in
  for _ = 1 to 4 do
    Engine.spawn eng ~name:"u" (fun () -> Resource.use r ~cycles:5)
  done;
  Engine.run eng;
  let s = Resource.stats r in
  check_int "transactions" 4 s.Resource.transactions;
  check_int "busy cycles" 20 s.Resource.busy_cycles;
  (* waiters queue for 5, 10, 15 cycles respectively *)
  check_int "wait cycles" 30 s.Resource.wait_cycles;
  check_int "max queue" 3 s.Resource.max_queue

let test_resource_utilization () =
  let eng = Engine.create () in
  let r = Resource.create ~name:"r" in
  Engine.spawn eng ~name:"u" (fun () ->
      Engine.wait 10;
      Resource.use r ~cycles:10);
  Engine.run eng;
  Alcotest.(check (float 1e-9)) "50%" 0.5 (Resource.utilization r ~total_cycles:20)

(* --------------------- Trace -------------------------------------- *)

let test_trace_disabled_by_default () =
  let tr = Trace.create () in
  Trace.record tr ~at:0 ~component:"x" (Vmht_obs.Event.Note "y");
  check_int "nothing recorded" 0 (Trace.count tr)

let test_trace_bounded () =
  let tr = Trace.create ~capacity:3 () in
  Trace.enable tr true;
  for i = 1 to 5 do
    Trace.record tr ~at:i ~component:"c"
      (Vmht_obs.Event.Note (string_of_int i))
  done;
  check_int "capacity respected" 3 (Trace.count tr);
  check_int "dropped counted" 2 (Trace.dropped tr);
  match Trace.events tr with
  | { Vmht_obs.Event.at = 3; _ } :: _ -> ()
  | _ -> Alcotest.fail "oldest retained event should be at=3"

let test_trace_dropped_header () =
  let tr = Trace.create ~capacity:2 () in
  Trace.enable tr true;
  for i = 1 to 5 do
    Trace.record tr ~at:i ~component:"c"
      (Vmht_obs.Event.Note (string_of_int i))
  done;
  let rendered = Trace.to_string tr in
  let first_line =
    match String.split_on_char '\n' rendered with l :: _ -> l | [] -> ""
  in
  Alcotest.(check string)
    "header present" "... 3 earlier events dropped ..." first_line

let test_trace_clear () =
  let tr = Trace.create ~capacity:2 () in
  Trace.enable tr true;
  for i = 1 to 5 do
    Trace.record tr ~at:i ~component:"c"
      (Vmht_obs.Event.Note (string_of_int i))
  done;
  Trace.clear tr;
  check_int "events gone" 0 (Trace.count tr);
  check_int "dropped reset" 0 (Trace.dropped tr);
  check_bool "still enabled" true (Trace.enabled tr);
  Trace.record tr ~at:9 ~component:"c" (Vmht_obs.Event.Note "again");
  check_int "usable after clear" 1 (Trace.count tr)

let suite =
  [
    Alcotest.test_case "queue: ordering" `Quick test_queue_order;
    Alcotest.test_case "queue: FIFO ties" `Quick test_queue_fifo_ties;
    Alcotest.test_case "queue: interleaved" `Quick test_queue_interleaved;
    Alcotest.test_case "engine: wait advances time" `Quick test_wait_advances_time;
    Alcotest.test_case "engine: parallel processes" `Quick test_parallel_processes;
    Alcotest.test_case "engine: fork" `Quick test_fork;
    Alcotest.test_case "engine: suspend/resume" `Quick test_suspend_resume;
    Alcotest.test_case "engine: double resume rejected" `Quick
      test_double_resume_rejected;
    Alcotest.test_case "engine: run until" `Quick test_run_until;
    Alcotest.test_case "engine: stuck detection" `Quick test_stuck_detection;
    Alcotest.test_case "engine: not in process" `Quick test_not_in_process;
    Alcotest.test_case "engine: deterministic" `Quick test_determinism;
    Alcotest.test_case "resource: serializes FIFO" `Quick test_resource_serializes;
    Alcotest.test_case "resource: stats" `Quick test_resource_stats;
    Alcotest.test_case "resource: utilization" `Quick test_resource_utilization;
    Alcotest.test_case "trace: disabled by default" `Quick
      test_trace_disabled_by_default;
    Alcotest.test_case "trace: bounded" `Quick test_trace_bounded;
    Alcotest.test_case "trace: dropped header" `Quick test_trace_dropped_header;
    Alcotest.test_case "trace: clear" `Quick test_trace_clear;
  ]
