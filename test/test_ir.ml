open Vmht_ir
module Ast = Vmht_lang.Ast
module Parser = Vmht_lang.Parser
module Typecheck = Vmht_lang.Typecheck
module Ast_interp = Vmht_lang.Ast_interp

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let compile src =
  let k = Parser.parse_kernel src in
  Typecheck.check_kernel k;
  Lower.lower_kernel k

(* Run a lowered function against the same flat memory as the AST
   reference interpreter and compare results + final memory. *)
let ir_run f ~data ~args = Ir_interp.run (Ast_interp.array_memory data) f ~args

let agree_on kernel ~args ~words =
  let data1 = Array.init words (fun i -> (i * 37) mod 101) in
  let data2 = Array.copy data1 in
  let r1 =
    Ast_interp.run_kernel (Ast_interp.array_memory data1) kernel ~args
  in
  let f = Lower.lower_kernel kernel in
  let r2 = ir_run f ~data:data2 ~args in
  r1 = r2 && data1 = data2

(* ---------------------- lowering ---------------------------------- *)

let test_lower_vecadd_semantics () =
  let src =
    {|kernel vecadd(a: int*, b: int*, c: int*, n: int) {
        var i: int;
        for (i = 0; i < n; i = i + 1) { c[i] = a[i] + b[i]; }
      }|}
  in
  let f = compile src in
  Ir.validate f;
  let data = Array.make 24 0 in
  for i = 0 to 7 do
    data.(i) <- i;
    data.(8 + i) <- 100 + i
  done;
  ignore (ir_run f ~data ~args:[ 0; 64; 128; 8 ]);
  for i = 0 to 7 do
    check_int "c[i]" (100 + (2 * i)) data.(16 + i)
  done

let test_lower_return_value () =
  let f = compile "kernel f(x: int) : int { return x * 3 + 1; }" in
  let data = [| 0 |] in
  check_bool "returns 22" true (ir_run f ~data ~args:[ 7 ] = Some 22)

let test_lower_if_else () =
  let f =
    compile
      "kernel f(x: int) : int { if (x > 10) { return 1; } else { return 2; } }"
  in
  let data = [| 0 |] in
  check_bool "then" true (ir_run f ~data ~args:[ 11 ] = Some 1);
  check_bool "else" true (ir_run f ~data ~args:[ 10 ] = Some 2)

let test_lower_strict_logic () =
  let f =
    compile "kernel f(x: int, y: int) : int { return x > 0 && y > 0; }"
  in
  let data = [| 0 |] in
  check_bool "both" true (ir_run f ~data ~args:[ 1; 1 ] = Some 1);
  check_bool "one" true (ir_run f ~data ~args:[ 1; 0 ] = Some 0)

let test_runaway_detection () =
  let f = compile "kernel f() { while (1) { } }" in
  let data = [| 0 |] in
  check_bool "raises Runaway" true
    (match Ir_interp.run ~max_steps:1000 (Ast_interp.array_memory data) f ~args:[] with
     | _ -> false
     | exception Ir_interp.Runaway _ -> true)

(* A while(1){} loop lowers to a block with no instructions; the
   interpreter executes only terminators, so bound block entries too. *)

(* ---------------------- passes: unit ------------------------------ *)

let test_const_fold_binops () =
  let f = compile "kernel f() : int { return 2 + 3 * 4; }" in
  let n = Passes.const_fold f in
  check_bool "folded something" true (n > 0);
  let data = [| 0 |] in
  check_bool "still 14" true (ir_run f ~data ~args:[] = Some 14)

let test_const_fold_keeps_div_by_zero () =
  let f = compile "kernel f() : int { return 1 / 0; }" in
  ignore (Passes.const_fold f);
  let data = [| 0 |] in
  check_bool "trap preserved" true
    (match ir_run f ~data ~args:[] with
     | _ -> false
     | exception Ast_interp.Eval_error _ -> true)

let test_const_fold_branch () =
  let f = compile "kernel f() : int { if (1 < 2) { return 5; } return 6; }" in
  let r = Pass_manager.optimize f in
  check_bool "branch folded away" true (Pass_manager.rewrites r "const_fold" > 0);
  let data = [| 0 |] in
  check_bool "returns 5" true (ir_run f ~data ~args:[] = Some 5)

let test_cse_shares_loads () =
  let f =
    compile "kernel f(p: int*) : int { return p[3] + p[3]; }"
  in
  let before = Ir.instr_count f in
  ignore (Pass_manager.optimize f);
  let after = Ir.instr_count f in
  check_bool "fewer instructions" true (after < before);
  let data = Array.init 8 (fun i -> 10 * i) in
  check_bool "value" true (ir_run f ~data ~args:[ 0 ] = Some 60)

let test_cse_respects_stores () =
  let f =
    compile
      "kernel f(p: int*) : int { var x: int = p[0]; p[0] = x + 1; return x + p[0]; }"
  in
  ignore (Pass_manager.optimize f);
  let data = [| 5 |] in
  check_bool "load not shared across store" true
    (ir_run f ~data ~args:[ 0 ] = Some 11)

let test_dce_removes_dead () =
  let f =
    compile "kernel f(x: int) : int { var dead: int = x * 99; return x; }"
  in
  let n = Passes.dce f in
  check_bool "removed" true (n > 0)

let test_dce_keeps_stores () =
  let f = compile "kernel f(p: int*) { p[0] = 42; }" in
  ignore (Passes.dce f);
  let data = [| 0 |] in
  ignore (ir_run f ~data ~args:[ 0 ]);
  check_int "store kept" 42 data.(0)

let test_simplify_cfg_unreachable () =
  let f =
    compile "kernel f() : int { return 1; }"
  in
  (* Lowering creates an unreachable trailing block after the return. *)
  let before = Ir.block_count f in
  ignore (Passes.simplify_cfg f);
  check_bool "blocks removed" true (Ir.block_count f < before);
  Ir.validate f

let test_optimize_pipeline_report () =
  let f =
    compile
      {|kernel f(p: int*, n: int) : int {
          var s: int = 0;
          var i: int;
          for (i = 0; i < n; i = i + 1) { s = s + p[i] * 8 / 8 + 0; }
          return s;
        }|}
  in
  let r = Pass_manager.optimize f in
  check_bool "some folds" true (Pass_manager.rewrites r "const_fold" > 0);
  check_bool "instrs reduced" true
    (r.Pass_manager.instrs_after < r.Pass_manager.instrs_before);
  let data = Array.init 8 (fun i -> i + 1) in
  check_bool "sum preserved" true (ir_run f ~data ~args:[ 0; 8 ] = Some 36)

(* ---------------------- liveness ----------------------------------- *)

let test_liveness_args_live () =
  let f = compile "kernel f(x: int) : int { var y: int = x + 1; return y; }" in
  let info = Liveness.compute f in
  let entry = Ir.entry f in
  check_bool "x live into entry" true
    (Liveness.Regset.mem 0 (Liveness.live_in info entry.Ir.label))

let test_max_live_positive () =
  let f =
    compile
      "kernel f(a: int, b: int, c: int) : int { return a * b + b * c + a * c; }"
  in
  let info = Liveness.compute f in
  check_bool "pressure >= 3" true (Liveness.max_live f info >= 3)

(* ---------------------- unrolling ---------------------------------- *)

let unrollable_src =
  {|kernel sumsq(p: int*, n: int) : int {
      var s: int = 0;
      var i: int;
      for (i = 0; i < n; i = i + 1) {
        var t: int = p[i];
        s = s + t * t;
      }
      return s;
    }|}

let test_unroll_applies () =
  let k = Parser.parse_kernel unrollable_src in
  Typecheck.check_kernel k;
  let _k4, count = Ast_unroll.unroll_kernel ~factor:4 k in
  check_int "one loop unrolled" 1 count

let test_unroll_preserves_semantics () =
  let k = Parser.parse_kernel unrollable_src in
  Typecheck.check_kernel k;
  List.iter
    (fun factor ->
      let k', _ = Ast_unroll.unroll_kernel ~factor k in
      List.iter
        (fun n ->
          let data = Array.init 32 (fun i -> i - 7) in
          let data' = Array.copy data in
          let r =
            Ast_interp.run_kernel (Ast_interp.array_memory data) k
              ~args:[ 0; n ]
          in
          let r' =
            Ast_interp.run_kernel (Ast_interp.array_memory data') k'
              ~args:[ 0; n ]
          in
          check_bool
            (Printf.sprintf "factor %d, n=%d" factor n)
            true
            (r = r' && data = data'))
        [ 0; 1; 3; 4; 5; 8; 17; 32 ])
    [ 2; 3; 4; 8 ]

let test_unroll_skips_pointer_chase () =
  let k =
    Parser.parse_kernel
      {|kernel walk(h: int*) : int {
          var s: int = 0;
          var p: int* = h;
          while (p != null) { s = s + p[0]; p = (int*) p[1]; }
          return s;
        }|}
  in
  let _, count = Ast_unroll.unroll_kernel ~factor:4 k in
  check_int "nothing unrolled" 0 count

(* ---------------------- qcheck: differential ----------------------- *)

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100000)

let prop_lowering_matches_reference =
  QCheck.Test.make ~count:200 ~name:"lowered IR matches AST semantics" seed_arb
    (fun seed ->
      let kernel = Gen_prog.gen_kernel seed in
      Typecheck.check_kernel kernel;
      agree_on kernel ~args:[ 0; seed mod 17; seed mod 13 ]
        ~words:Gen_prog.mem_words)

let prop_optimization_preserves_semantics =
  QCheck.Test.make ~count:200 ~name:"optimized IR matches unoptimized IR"
    seed_arb (fun seed ->
      let kernel = Gen_prog.gen_kernel seed in
      let a = seed mod 23 and b = seed mod 19 in
      let f_plain = Lower.lower_kernel kernel in
      let f_opt = Lower.lower_kernel kernel in
      ignore (Pass_manager.optimize f_opt);
      let data1 = Array.init Gen_prog.mem_words (fun i -> (i * 37) mod 101) in
      let data2 = Array.copy data1 in
      let r1 = ir_run f_plain ~data:data1 ~args:[ 0; a; b ] in
      let r2 = ir_run f_opt ~data:data2 ~args:[ 0; a; b ] in
      r1 = r2 && data1 = data2)

let prop_unroll_preserves_semantics =
  QCheck.Test.make ~count:200 ~name:"unrolling preserves semantics" seed_arb
    (fun seed ->
      let kernel = Gen_prog.gen_kernel seed in
      let k2, _ = Ast_unroll.unroll_kernel ~factor:4 kernel in
      let a = seed mod 29 and b = seed mod 31 in
      let d1, r1 = Gen_prog.reference_run kernel ~a ~b in
      let d2, r2 = Gen_prog.reference_run k2 ~a ~b in
      r1 = r2 && d1 = d2)

let prop_validate_after_optimize =
  QCheck.Test.make ~count:200 ~name:"IR remains valid through the pipeline"
    seed_arb (fun seed ->
      let kernel = Gen_prog.gen_kernel seed in
      let f = Lower.lower_kernel kernel in
      ignore (Pass_manager.optimize f);
      match Ir.validate f with () -> true | exception Failure _ -> false)

let suite =
  [
    Alcotest.test_case "lower: vecadd semantics" `Quick
      test_lower_vecadd_semantics;
    Alcotest.test_case "lower: return value" `Quick test_lower_return_value;
    Alcotest.test_case "lower: if/else" `Quick test_lower_if_else;
    Alcotest.test_case "lower: strict logic" `Quick test_lower_strict_logic;
    Alcotest.test_case "interp: runaway detection" `Quick test_runaway_detection;
    Alcotest.test_case "fold: binops" `Quick test_const_fold_binops;
    Alcotest.test_case "fold: keeps div by zero" `Quick
      test_const_fold_keeps_div_by_zero;
    Alcotest.test_case "fold: branch" `Quick test_const_fold_branch;
    Alcotest.test_case "cse: shares loads" `Quick test_cse_shares_loads;
    Alcotest.test_case "cse: respects stores" `Quick test_cse_respects_stores;
    Alcotest.test_case "dce: removes dead" `Quick test_dce_removes_dead;
    Alcotest.test_case "dce: keeps stores" `Quick test_dce_keeps_stores;
    Alcotest.test_case "cfg: unreachable" `Quick test_simplify_cfg_unreachable;
    Alcotest.test_case "pipeline: report" `Quick test_optimize_pipeline_report;
    Alcotest.test_case "liveness: args live" `Quick test_liveness_args_live;
    Alcotest.test_case "liveness: pressure" `Quick test_max_live_positive;
    Alcotest.test_case "unroll: applies" `Quick test_unroll_applies;
    Alcotest.test_case "unroll: preserves semantics" `Quick
      test_unroll_preserves_semantics;
    Alcotest.test_case "unroll: skips pointer chase" `Quick
      test_unroll_skips_pointer_chase;
    QCheck_alcotest.to_alcotest prop_lowering_matches_reference;
    QCheck_alcotest.to_alcotest prop_optimization_preserves_semantics;
    QCheck_alcotest.to_alcotest prop_unroll_preserves_semantics;
    QCheck_alcotest.to_alcotest prop_validate_after_optimize;
  ]
