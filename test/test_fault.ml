(* Fault injection and recovery: deterministic schedules, zero cost
   when disabled, value-preserving recovery in every style, and the
   recovery-cost asymmetry (local VM recovery vs whole-thread
   copy-based re-runs) that the robust experiment reports. *)

module Common = Vmht_eval.Common
module Parmap = Vmht_par.Parmap
module Plan = Vmht_fault.Plan
module Injector = Vmht_fault.Injector

let find = Vmht_workloads.Registry.find

let at_width jobs f =
  Parmap.set_jobs jobs;
  Fun.protect ~finally:Parmap.shutdown f

let faulty_config ?(seed = Vmht.Config.default.Vmht.Config.seed) rate =
  Vmht.Config.with_seed
    (Vmht.Config.with_fault Vmht.Config.default (Plan.uniform ~rate))
    seed

(* --- injector streams --------------------------------------------- *)

let drain inj n =
  List.init n (fun _ ->
      (Injector.fires inj ~rate:0.5, Injector.coin inj, Injector.draw inj 1000))

let test_injector_deterministic () =
  let plan = Plan.uniform ~rate:0.5 in
  let make component = Injector.create ~plan ~seed:42 ~component in
  Alcotest.(check bool)
    "same (plan, seed, component): identical decision stream" true
    (drain (make "bus") 200 = drain (make "bus") 200);
  Alcotest.(check bool)
    "different components: independent streams" false
    (drain (make "bus") 200 = drain (make "dram") 200)

let test_disabled_draws_nothing () =
  let inj = Injector.create ~plan:Plan.none ~seed:42 ~component:"bus" in
  for _ = 1 to 100 do
    Alcotest.(check bool) "disabled plan never fires" false
      (Injector.fires inj ~rate:1.0)
  done;
  Alcotest.(check bool) "no stats accumulated" true
    (Injector.stats inj = Injector.zero_stats)

(* --- zero perturbation when nothing fires ------------------------- *)

(* All the injector plumbing wired up (enabled plan) but every rate
   zero: byte-for-byte the cycles of a run with no fault support at
   all, and not a single stat counted. *)
let test_zero_rates_zero_perturbation () =
  let w = find "list_sum" in
  let size = 256 in
  let clean = Common.run Common.Vm w ~size in
  let armed_config =
    Vmht.Config.with_fault Vmht.Config.default
      { Plan.none with Plan.enabled = true }
  in
  let armed = Common.run ~config:armed_config Common.Vm w ~size in
  assert (clean.Common.correct && armed.Common.correct);
  Alcotest.(check int) "identical cycles" (Common.cycles clean)
    (Common.cycles armed);
  Alcotest.(check bool) "injectors exist but did nothing" true
    (Vmht.Soc.fault_stats armed.Common.soc = Injector.zero_stats)

(* --- faults land, are observable, and preserve values ------------- *)

let test_vm_faults_observable () =
  let w = find "list_sum" in
  let o =
    Common.run
      ~config:(faulty_config 0.02)
      ~observe:true Common.Vm w ~size:w.Vmht_workloads.Workload.default_size
  in
  Alcotest.(check bool) "faulty VM run still correct" true o.Common.correct;
  let stats = Vmht.Soc.fault_stats o.Common.soc in
  Alcotest.(check bool) "faults were injected" true
    (stats.Injector.injected > 0);
  let labels =
    List.map
      (fun (e : Vmht_obs.Event.t) -> Vmht_obs.Event.label e.Vmht_obs.Event.kind)
      (Vmht_sim.Trace.events (Vmht.Soc.trace o.Common.soc))
  in
  Alcotest.(check bool) "Fault_inject events in the trace" true
    (List.mem "fault_inject" labels);
  Vmht.Soc.sync_metrics o.Common.soc;
  let counters =
    (Vmht_obs.Metrics.snapshot (Vmht.Soc.metrics o.Common.soc))
      .Vmht_obs.Metrics.counters
  in
  Alcotest.(check bool) "fault.injected counter surfaced" true
    (List.mem_assoc "fault.injected" counters)

let test_dma_abort_rerun () =
  let w = find "tree_search" in
  let o =
    Common.run
      ~config:(faulty_config 0.02)
      ~observe:true Common.Dma w ~size:w.Vmht_workloads.Workload.default_size
  in
  Alcotest.(check bool) "aborted copy-based run recovers" true o.Common.correct;
  let stats = Vmht.Soc.fault_stats o.Common.soc in
  Alcotest.(check bool) "DMA aborts were raised" true
    (stats.Injector.aborts > 0);
  Alcotest.(check bool)
    "lost attempts attributed to fault time" true
    (o.Common.result.Vmht.Launch.attribution.Vmht_obs.Attribution.fault > 0);
  let labels =
    List.map
      (fun (e : Vmht_obs.Event.t) -> Vmht_obs.Event.label e.Vmht_obs.Event.kind)
      (Vmht_sim.Trace.events (Vmht.Soc.trace o.Common.soc))
  in
  Alcotest.(check bool) "abort and recovery both in the trace" true
    (List.mem "fault_abort" labels && List.mem "fault_recover" labels)

(* --- recovery preserves values: the property ---------------------- *)

let kernels = [ "vecadd"; "list_sum"; "tree_search"; "bfs" ]

let arb_recovery_case =
  QCheck.make
    ~print:(fun (k, s, rate, seed) ->
      Printf.sprintf "(%s, %s, rate=%g, seed=%d)" (List.nth kernels k)
        (Common.mode_name (List.nth [ Common.Sw; Common.Dma; Common.Vm ] s))
        rate seed)
    QCheck.Gen.(
      quad
        (int_bound (List.length kernels - 1))
        (int_bound 2)
        (oneofl [ 0.002; 0.01; 0.05; 1.0 ])
        (int_bound 1000))

(* Injected faults may cost cycles but never values: a run under any
   fault plan computes exactly what the fault-free reference does.
   rate 1.0 doubles as the termination test — the injection budget
   bounds every retry loop, including DMA abort storms. *)
let prop_recovery_preserves_values =
  QCheck.Test.make ~count:25 ~name:"recovery = fault-free values (any rate)"
    arb_recovery_case
    (fun (k, s, rate, seed) ->
      let w = find (List.nth kernels k) in
      let style = List.nth [ Common.Sw; Common.Dma; Common.Vm ] s in
      let o =
        Common.run ~config:(faulty_config ~seed rate) ~seed style w ~size:64
      in
      o.Common.correct)

(* --- the robust experiment ---------------------------------------- *)

let test_robust_width_independent () =
  let render () = Vmht_eval.All_experiments.run "robust" in
  let sequential = at_width 1 render in
  let parallel = at_width 4 render in
  Alcotest.(check string) "robust byte-identical at -j 4" sequential parallel

let overhead style (w : Vmht_workloads.Workload.t) =
  let size = w.Vmht_workloads.Workload.default_size in
  let clean = Common.run style w ~size in
  let faulty = Common.run ~config:(faulty_config 0.005) style w ~size in
  assert (clean.Common.correct && faulty.Common.correct);
  float_of_int (Common.cycles faulty - Common.cycles clean)
  /. float_of_int (Common.cycles clean)

(* The paper-level claim the subsystem exists to demonstrate: on the
   pointer kernels, VM threads recover locally while the copy-based
   style re-runs its whole copy-in/compute/copy-out. *)
let test_vm_recovery_cheaper_than_dma () =
  List.iter
    (fun name ->
      let w = find name in
      let vm = overhead Common.Vm w in
      let dma = overhead Common.Dma w in
      Alcotest.(check bool)
        (Printf.sprintf "%s: vm overhead %.3f < dma overhead %.3f" name vm dma)
        true (vm < dma))
    [ "list_sum"; "tree_search"; "bfs" ]

let suite =
  [
    Alcotest.test_case "injector: deterministic streams" `Quick
      test_injector_deterministic;
    Alcotest.test_case "injector: disabled draws nothing" `Quick
      test_disabled_draws_nothing;
    Alcotest.test_case "zero rates: zero perturbation" `Quick
      test_zero_rates_zero_perturbation;
    Alcotest.test_case "vm: faults observable, values intact" `Quick
      test_vm_faults_observable;
    Alcotest.test_case "dma: abort, re-run, recover" `Quick
      test_dma_abort_rerun;
    QCheck_alcotest.to_alcotest prop_recovery_preserves_values;
    Alcotest.test_case "robust: -j 1 = -j 4 (byte-identical)" `Slow
      test_robust_width_independent;
    Alcotest.test_case "pointer kernels: vm recovery < dma re-run" `Slow
      test_vm_recovery_cheaper_than_dma;
  ]
