open Vmht_lang

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* ------------------------- sources -------------------------------- *)

let vecadd_src =
  {|
kernel vecadd(a: int*, b: int*, c: int*, n: int) {
  var i: int;
  for (i = 0; i < n; i = i + 1) {
    c[i] = a[i] + b[i];
  }
}
|}

let list_sum_src =
  {|
kernel list_sum(head: int*) : int {
  var sum: int = 0;
  var p: int* = head;
  while (p != null) {
    sum = sum + p[0];
    p = (int*) p[1];
  }
  return sum;
}
|}

let collatz_src =
  {|
kernel collatz(n0: int) : int {
  var n: int = n0;
  var steps: int = 0;
  while (n != 1) {
    if (n % 2 == 0) {
      n = n / 2;
    } else {
      n = 3 * n + 1;
    }
    steps = steps + 1;
  }
  return steps;
}
|}

(* ------------------------- lexer ---------------------------------- *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize "x <= 10 << 2 // comment\n/* block */ 0x1F" in
  let kinds = List.map (fun t -> t.Token.kind) toks in
  check_bool "structure" true
    (kinds
     = [
         Token.IDENT "x"; Token.LE; Token.INT 10; Token.SHL; Token.INT 2;
         Token.INT 31; Token.EOF;
       ])

let test_lexer_locations () =
  let toks = Lexer.tokenize "a\n  b" in
  match toks with
  | [ a; b; _eof ] ->
    check_int "a line" 1 a.Token.loc.Loc.line;
    check_int "b line" 2 b.Token.loc.Loc.line;
    check_int "b col" 3 b.Token.loc.Loc.col
  | _ -> Alcotest.fail "expected three tokens"

let test_lexer_rejects () =
  check_bool "bad char raises" true
    (match Lexer.tokenize "a $ b" with
     | _ -> false
     | exception Loc.Error _ -> true);
  check_bool "unterminated comment raises" true
    (match Lexer.tokenize "/* never closed" with
     | _ -> false
     | exception Loc.Error _ -> true)

(* ------------------------- parser --------------------------------- *)

let test_parse_vecadd () =
  let k = Parser.parse_kernel vecadd_src in
  check_int "4 params" 4 (List.length k.Ast.params);
  check_bool "void" true (k.Ast.ret = None);
  (* decl + for-loop desugared to init + while *)
  check_int "three statements" 3 (List.length k.Ast.body)

let test_parse_precedence () =
  let e = Parser.parse_expr "1 + 2 * 3" in
  check_bool "mul binds tighter" true
    (e = Ast.Bin (Ast.Add, Ast.Int 1, Ast.Bin (Ast.Mul, Ast.Int 2, Ast.Int 3)));
  let e = Parser.parse_expr "1 < 2 && 3 < 4" in
  (match e with
   | Ast.Bin (Ast.Land, Ast.Bin (Ast.Lt, _, _), Ast.Bin (Ast.Lt, _, _)) -> ()
   | _ -> Alcotest.fail "&& should bind loosest");
  let e = Parser.parse_expr "10 - 3 - 2" in
  check_bool "left assoc" true
    (e = Ast.Bin (Ast.Sub, Ast.Bin (Ast.Sub, Ast.Int 10, Ast.Int 3), Ast.Int 2))

let test_parse_cast_vs_paren () =
  check_bool "cast" true
    (Parser.parse_expr "(int*) 0" = Ast.Cast (Ast.Tptr Ast.Tint, Ast.Int 0));
  check_bool "paren" true (Parser.parse_expr "(42)" = Ast.Int 42);
  check_bool "null sugar" true (Parser.parse_expr "null" = Ast.null_expr)

let test_parse_deref_sugar () =
  check_bool "*p is p[0]" true
    (Parser.parse_expr "*p" = Ast.Load (Ast.Var "p", Ast.Int 0))

let test_parse_rejects () =
  let rejects src =
    match Parser.parse_program src with
    | _ -> false
    | exception Loc.Error _ -> true
  in
  check_bool "missing semicolon" true
    (rejects "kernel k(x: int) { var y: int = 1 }");
  check_bool "assignment to literal" true (rejects "kernel k() { 1 = 2; }");
  check_bool "unclosed brace" true (rejects "kernel k() { ")

(* ------------------------- pretty round trip ---------------------- *)

let test_pretty_round_trip_fixed () =
  List.iter
    (fun src ->
      let p1 = Parser.parse_program src in
      let printed = Pretty.program_to_string p1 in
      let p2 = Parser.parse_program printed in
      check_bool "round trip" true (p1 = p2))
    [ vecadd_src; list_sum_src; collatz_src ]

(* ------------------------- typechecker ---------------------------- *)

let test_typecheck_accepts () =
  List.iter
    (fun src -> Typecheck.check_program (Parser.parse_program src))
    [ vecadd_src; list_sum_src; collatz_src ]

let test_typecheck_rejects () =
  let rejects src =
    match Typecheck.check_program (Parser.parse_program src) with
    | () -> false
    | exception Loc.Error _ -> true
  in
  check_bool "undeclared var" true (rejects "kernel k() { x = 1; }");
  check_bool "pointer arithmetic" true
    (rejects "kernel k(p: int*) { var q: int* = p + 1; }");
  check_bool "indexing an int" true
    (rejects "kernel k(x: int) { var y: int = x[0]; }");
  check_bool "pointer condition" true
    (rejects "kernel k(p: int*) { if (p) { } }");
  check_bool "missing return" true
    (rejects "kernel k(x: int) : int { if (x > 0) { return 1; } }");
  check_bool "return from void" true (rejects "kernel k() { return 3; }");
  check_bool "type mismatch in assign" true
    (rejects "kernel k(p: int*) { var x: int = 0; x = p; }");
  check_bool "duplicate declaration" true
    (rejects "kernel k() { var x: int; var x: int; }");
  check_bool "duplicate kernel" true
    (rejects "kernel k() { } kernel k() { }");
  check_bool "duplicate param" true (rejects "kernel k(a: int, a: int) { }")

let test_typecheck_branch_returns () =
  (* Both branches return: accepted. *)
  Typecheck.check_program
    (Parser.parse_program
       "kernel k(x: int) : int { if (x > 0) { return 1; } else { return 0; } }")

(* ------------------------- interpreter ---------------------------- *)

let test_interp_vecadd () =
  let k = Parser.parse_kernel vecadd_src in
  let data = Array.make 32 0 in
  for i = 0 to 7 do
    data.(i) <- i + 1;
    data.(8 + i) <- 10 * (i + 1)
  done;
  let mem = Ast_interp.array_memory data in
  let ret =
    Ast_interp.run_kernel mem k ~args:[ 0; 8 * 8; 16 * 8; 8 ]
  in
  check_bool "void return" true (ret = None);
  for i = 0 to 7 do
    check_int "sum" (11 * (i + 1)) data.(16 + i)
  done

let test_interp_list_sum () =
  let k = Parser.parse_kernel list_sum_src in
  (* Nodes [payload; next] at words 1, 3, 5 (word 0 stays free so that
     address 0 can serve as null): 5 -> 7 -> 11 -> null *)
  let data = [| 999; 5; 24; 7; 40; 11; 0 |] in
  let mem = Ast_interp.array_memory data in
  check_bool "sum is 23" true
    (Ast_interp.run_kernel mem k ~args:[ 8 ] = Some 23)

let test_interp_empty_list () =
  let k = Parser.parse_kernel list_sum_src in
  let mem = Ast_interp.array_memory [| 0 |] in
  (* A null head (address 0): the loop never runs. *)
  check_bool "empty sum" true (Ast_interp.run_kernel mem k ~args:[ 0 ] = Some 0)

let test_interp_collatz () =
  let k = Parser.parse_kernel collatz_src in
  let mem = Ast_interp.array_memory [| 0 |] in
  check_bool "collatz 6 = 8 steps" true
    (Ast_interp.run_kernel mem k ~args:[ 6 ] = Some 8);
  check_bool "collatz 27 = 111 steps" true
    (Ast_interp.run_kernel mem k ~args:[ 27 ] = Some 111)

let test_interp_division_by_zero () =
  let k = Parser.parse_kernel "kernel k(x: int) : int { return 1 / x; }" in
  let mem = Ast_interp.array_memory [| 0 |] in
  check_bool "raises" true
    (match Ast_interp.run_kernel mem k ~args:[ 0 ] with
     | _ -> false
     | exception Ast_interp.Eval_error _ -> true)

let test_interp_out_of_bounds () =
  let k = Parser.parse_kernel "kernel k(p: int*) : int { return p[99]; }" in
  let mem = Ast_interp.array_memory [| 0; 1 |] in
  check_bool "raises" true
    (match Ast_interp.run_kernel mem k ~args:[ 0 ] with
     | _ -> false
     | exception Ast_interp.Eval_error _ -> true)

let test_strict_logical_ops () =
  check_int "and" 1 (Ast_interp.eval_binop Ast.Land 2 3);
  check_int "and zero" 0 (Ast_interp.eval_binop Ast.Land 2 0);
  check_int "or" 1 (Ast_interp.eval_binop Ast.Lor 0 7);
  check_int "not" 1 (Ast_interp.eval_unop Ast.Not 0);
  check_int "shift masks count" 2 (Ast_interp.eval_binop Ast.Shl 1 65)

(* ------------------------- qcheck: expr round trip ---------------- *)

let gen_expr : Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let int_ops =
    [| Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Rem; Ast.And; Ast.Or;
       Ast.Xor; Ast.Shl; Ast.Shr; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.Eq;
       Ast.Ne; Ast.Land; Ast.Lor
    |]
  in
  let leaf =
    oneof
      [
        map (fun n -> Ast.Int n) (int_bound 1000);
        oneofl [ Ast.Var "x"; Ast.Var "y"; Ast.Var "p" ];
      ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        frequency
          [
            (2, leaf);
            ( 4,
              map3
                (fun op a b -> Ast.Bin (op, a, b))
                (oneofl (Array.to_list int_ops))
                (self (depth - 1))
                (self (depth - 1)) );
            ( 1,
              map2
                (fun op e -> Ast.Un (op, e))
                (oneofl [ Ast.Neg; Ast.Not; Ast.Bnot ])
                (self (depth - 1)) );
            (1, map2 (fun b i -> Ast.Load (b, i)) (self (depth - 1)) (self (depth - 1)));
            ( 1,
              map
                (fun e -> Ast.Cast (Ast.Tptr Ast.Tint, e))
                (self (depth - 1)) );
          ])
    4

(* [parse (pretty e)] may canonicalize (e.g. fold [-5] into a literal);
   the round-trip property is that a second trip is the identity. *)
let prop_expr_round_trip =
  QCheck.Test.make ~count:500 ~name:"pretty |> parse round-trips expressions"
    (QCheck.make gen_expr ~print:Pretty.expr_to_string)
    (fun e ->
      match Parser.parse_expr (Pretty.expr_to_string e) with
      | e1 -> (
        match Parser.parse_expr (Pretty.expr_to_string e1) with
        | e2 -> e2 = e1
        | exception Loc.Error _ -> false)
      | exception Loc.Error _ -> false)

let prop_kernel_round_trip =
  QCheck.Test.make ~count:200 ~name:"pretty |> parse round-trips whole kernels"
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100000))
    (fun seed ->
      let k = Gen_prog.gen_kernel seed in
      match Parser.parse_program (Pretty.program_to_string [ k ]) with
      | [ k1 ] -> (
        match Parser.parse_program (Pretty.program_to_string [ k1 ]) with
        | [ k2 ] -> k2 = k1
        | _ -> false
        | exception Loc.Error _ -> false)
      | _ -> false
      | exception Loc.Error _ -> false)

(* Whole multi-kernel programs survive the trip too: kernel order and
   name resolution, not just per-kernel syntax. *)
let prop_program_round_trip =
  QCheck.Test.make ~count:100
    ~name:"pretty |> parse round-trips multi-kernel programs"
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100000))
    (fun seed ->
      let p =
        [ Gen_prog.gen_kernel seed; Gen_prog.gen_kernel (seed + 50000) ]
      in
      match Parser.parse_program (Pretty.program_to_string p) with
      | p1 when List.length p1 = 2 -> (
        match Parser.parse_program (Pretty.program_to_string p1) with
        | p2 -> p2 = p1
        | exception Loc.Error _ -> false)
      | _ -> false
      | exception Loc.Error _ -> false)

(* The generator only emits well-typed kernels, and pretty-printing
   must not break that: the reparsed kernel still typechecks. *)
let prop_pretty_preserves_typing =
  QCheck.Test.make ~count:100 ~name:"pretty |> parse preserves well-typedness"
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100000))
    (fun seed ->
      let k = Gen_prog.gen_kernel seed in
      match Parser.parse_program (Pretty.program_to_string [ k ]) with
      | [ k1 ] -> (
        match Typecheck.check_kernel k1 with
        | () -> true
        | exception Loc.Error _ -> false)
      | _ -> false
      | exception Loc.Error _ -> false)

let suite =
  [
    Alcotest.test_case "lexer: tokens" `Quick test_lexer_tokens;
    Alcotest.test_case "lexer: locations" `Quick test_lexer_locations;
    Alcotest.test_case "lexer: rejects" `Quick test_lexer_rejects;
    Alcotest.test_case "parser: vecadd" `Quick test_parse_vecadd;
    Alcotest.test_case "parser: precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parser: cast vs paren" `Quick test_parse_cast_vs_paren;
    Alcotest.test_case "parser: deref sugar" `Quick test_parse_deref_sugar;
    Alcotest.test_case "parser: rejects" `Quick test_parse_rejects;
    Alcotest.test_case "pretty: round trip (fixed)" `Quick
      test_pretty_round_trip_fixed;
    Alcotest.test_case "typecheck: accepts" `Quick test_typecheck_accepts;
    Alcotest.test_case "typecheck: rejects" `Quick test_typecheck_rejects;
    Alcotest.test_case "typecheck: branch returns" `Quick
      test_typecheck_branch_returns;
    Alcotest.test_case "interp: vecadd" `Quick test_interp_vecadd;
    Alcotest.test_case "interp: list_sum" `Quick test_interp_list_sum;
    Alcotest.test_case "interp: empty list" `Quick test_interp_empty_list;
    Alcotest.test_case "interp: collatz" `Quick test_interp_collatz;
    Alcotest.test_case "interp: division by zero" `Quick
      test_interp_division_by_zero;
    Alcotest.test_case "interp: out of bounds" `Quick test_interp_out_of_bounds;
    Alcotest.test_case "interp: strict logical ops" `Quick
      test_strict_logical_ops;
    QCheck_alcotest.to_alcotest prop_expr_round_trip;
    QCheck_alcotest.to_alcotest prop_kernel_round_trip;
    QCheck_alcotest.to_alcotest prop_program_round_trip;
    QCheck_alcotest.to_alcotest prop_pretty_preserves_typing;
  ]
