open Vmht_vm
module Phys_mem = Vmht_mem.Phys_mem
module Bus = Vmht_mem.Bus
module Dram = Vmht_mem.Dram
module Engine = Vmht_sim.Engine

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let make_world ?(page_shift = 12) () =
  let bytes = 1 lsl 22 in
  let phys = Phys_mem.create ~bytes in
  let dram = Dram.create () in
  let bus = Bus.create phys dram in
  let frames =
    Frame_alloc.create ~base:0 ~bytes ~page_bytes:(1 lsl page_shift)
  in
  let aspace = Addr_space.create phys frames ~page_shift ~va_bits:24 in
  (phys, bus, frames, aspace)

let in_sim f =
  let eng = Engine.create () in
  let result = ref None in
  Engine.spawn eng ~name:"test" (fun () -> result := Some (f ()));
  Engine.run eng;
  Option.get !result

let in_sim_timed f =
  let eng = Engine.create () in
  let result = ref None in
  Engine.spawn eng ~name:"test" (fun () ->
      let v = f () in
      result := Some (v, Engine.now_p ()));
  Engine.run eng;
  Option.get !result

(* ------------------------- Frame_alloc ---------------------------- *)

let test_frames_distinct () =
  let fa = Frame_alloc.create ~base:0 ~bytes:65536 ~page_bytes:4096 in
  let frames = List.init 16 (fun _ -> Frame_alloc.alloc fa) in
  check_int "all distinct" 16 (List.length (List.sort_uniq compare frames))

let test_frames_exhaustion_and_reuse () =
  let fa = Frame_alloc.create ~base:0 ~bytes:8192 ~page_bytes:4096 in
  let f1 = Frame_alloc.alloc fa in
  let _f2 = Frame_alloc.alloc fa in
  check_bool "exhausted" true
    (match Frame_alloc.alloc fa with
     | _ -> false
     | exception Frame_alloc.Out_of_frames -> true);
  Frame_alloc.free fa f1;
  check_int "recycled" f1 (Frame_alloc.alloc fa)

(* ------------------------- Page_table ----------------------------- *)

let test_pt_map_lookup () =
  let _, _, frames, aspace = make_world () in
  let pt = Addr_space.page_table aspace in
  let frame = Frame_alloc.alloc frames in
  Page_table.map pt ~vaddr:0x5000 ~frame ~writable:true;
  (match Page_table.lookup pt ~vaddr:0x5123 with
   | Some e ->
     check_int "frame" frame e.Page_table.frame;
     check_bool "writable" true e.Page_table.writable
   | None -> Alcotest.fail "expected mapping");
  check_bool "other page unmapped" true
    (Page_table.lookup pt ~vaddr:0x9000 = None)

let test_pt_translate_offset () =
  let _, _, frames, aspace = make_world () in
  let pt = Addr_space.page_table aspace in
  let frame = Frame_alloc.alloc frames in
  Page_table.map pt ~vaddr:0x7000 ~frame ~writable:false;
  check_bool "offset preserved" true
    (Page_table.translate pt ~vaddr:0x74F8 = Some (frame + 0x4F8))

let test_pt_double_map_rejected () =
  let _, _, frames, aspace = make_world () in
  let pt = Addr_space.page_table aspace in
  Page_table.map pt ~vaddr:0x3000 ~frame:(Frame_alloc.alloc frames)
    ~writable:true;
  check_bool "remap raises" true
    (match
       Page_table.map pt ~vaddr:0x3000 ~frame:(Frame_alloc.alloc frames)
         ~writable:true
     with
     | () -> false
     | exception Page_table.Already_mapped _ -> true)

let test_pt_unmap () =
  let _, _, frames, aspace = make_world () in
  let pt = Addr_space.page_table aspace in
  Page_table.map pt ~vaddr:0x3000 ~frame:(Frame_alloc.alloc frames)
    ~writable:true;
  Page_table.unmap pt ~vaddr:0x3000;
  check_bool "gone" true (Page_table.lookup pt ~vaddr:0x3000 = None)

let test_pt_unmap_returns_frames () =
  let _, _, frames, aspace = make_world () in
  let pt = Addr_space.page_table aspace in
  let before = Frame_alloc.allocated_count frames in
  let frame = Frame_alloc.alloc frames in
  Page_table.map pt ~vaddr:0x5000 ~frame ~writable:true;
  (* Data frame + on-demand level-2 table. *)
  check_int "map costs two frames" (before + 2)
    (Frame_alloc.allocated_count frames);
  Page_table.unmap pt ~vaddr:0x5000;
  check_int "unmap returns both" before (Frame_alloc.allocated_count frames);
  (* map → unmap → map recycles the freed frames. *)
  let frame2 = Frame_alloc.alloc frames in
  Page_table.map pt ~vaddr:0x5000 ~frame:frame2 ~writable:true;
  check_int "remap reuses freed frames" (before + 2)
    (Frame_alloc.allocated_count frames);
  check_bool "remap live" true (Page_table.lookup pt ~vaddr:0x5000 <> None)

let test_pt_shared_table_survives_partial_unmap () =
  let _, _, frames, aspace = make_world () in
  let pt = Addr_space.page_table aspace in
  (* 0x5000 and 0x6000 share one level-2 table: unmapping one page must
     not free the table out from under the other. *)
  Page_table.map pt ~vaddr:0x5000 ~frame:(Frame_alloc.alloc frames)
    ~writable:true;
  Page_table.map pt ~vaddr:0x6000 ~frame:(Frame_alloc.alloc frames)
    ~writable:true;
  Page_table.unmap pt ~vaddr:0x5000;
  check_bool "sibling mapping intact" true
    (Page_table.lookup pt ~vaddr:0x6000 <> None);
  check_int "walk still two levels" 2
    (List.length (Page_table.walk_addrs pt ~vaddr:0x6000))

let test_pt_map_unmap_churn_no_leak () =
  let _, _, frames, aspace = make_world () in
  let pt = Addr_space.page_table aspace in
  let before = Frame_alloc.allocated_count frames in
  (* Twice the physical capacity: only possible if unmap really frees
     (the regression this guards: Out_of_frames after ~capacity/2). *)
  for _ = 1 to 2 * Frame_alloc.capacity frames do
    let frame = Frame_alloc.alloc frames in
    Page_table.map pt ~vaddr:0x5000 ~frame ~writable:true;
    Page_table.unmap pt ~vaddr:0x5000
  done;
  check_int "no frames leaked" before (Frame_alloc.allocated_count frames)

let test_pt_walk_addrs () =
  let _, _, frames, aspace = make_world () in
  let pt = Addr_space.page_table aspace in
  check_int "unmapped walk stops at L1" 1
    (List.length (Page_table.walk_addrs pt ~vaddr:0xA000));
  Page_table.map pt ~vaddr:0xA000 ~frame:(Frame_alloc.alloc frames)
    ~writable:true;
  check_int "mapped walk reads two levels" 2
    (List.length (Page_table.walk_addrs pt ~vaddr:0xA000))

let prop_pt_roundtrip =
  QCheck.Test.make ~count:100 ~name:"page table: map/lookup round-trips"
    QCheck.(small_nat)
    (fun n ->
      let _, _, frames, aspace = make_world () in
      let pt = Addr_space.page_table aspace in
      let pages = List.init (1 + (n mod 30)) (fun i -> (i * 3) + 1) in
      let mapping =
        List.map
          (fun vpn ->
            let frame = Frame_alloc.alloc frames in
            Page_table.map pt ~vaddr:(vpn * 4096) ~frame ~writable:(vpn mod 2 = 0);
            (vpn, frame))
          pages
      in
      List.for_all
        (fun (vpn, frame) ->
          match Page_table.lookup pt ~vaddr:(vpn * 4096) with
          | Some e -> e.Page_table.frame = frame
          | None -> false)
        mapping)

(* ------------------------- Addr_space ----------------------------- *)

let test_aspace_alloc_rw () =
  let _, _, _, aspace = make_world () in
  let base = Addr_space.alloc aspace ~bytes:65536 in
  check_bool "non-null base" true (base > 0);
  Addr_space.store_word aspace base 11;
  Addr_space.store_word aspace (base + 65528) 22;
  check_int "low" 11 (Addr_space.load_word aspace base);
  check_int "high" 22 (Addr_space.load_word aspace (base + 65528))

let test_aspace_null_unmapped () =
  let _, _, _, aspace = make_world () in
  check_bool "address 0 unmapped" true (Addr_space.translate aspace 0 = None)

let test_aspace_regions_disjoint () =
  let _, _, _, aspace = make_world () in
  let a = Addr_space.alloc aspace ~bytes:5000 in
  let b = Addr_space.alloc aspace ~bytes:5000 in
  check_bool "no overlap" true (b >= a + 5000 || a >= b + 5000)

let test_aspace_lazy_faults () =
  let _, _, _, aspace = make_world () in
  let base = Addr_space.alloc ~lazy_:true aspace ~bytes:16384 in
  check_bool "initially unmapped" true
    (Addr_space.translate aspace base = None);
  check_bool "fault repairs" true (Addr_space.handle_fault aspace ~vaddr:base);
  check_bool "mapped after fault" true
    (Addr_space.translate aspace base <> None);
  check_int "one lazy page touched" 1 (Addr_space.touched_lazy_pages aspace)

let test_aspace_segfault () =
  let _, _, _, aspace = make_world () in
  check_bool "wild access raises" true
    (match Addr_space.load_word aspace 0x100000 with
     | _ -> false
     | exception Addr_space.Segfault _ -> true)

(* ------------------------- Tlb ------------------------------------ *)

let test_tlb_hit_after_insert () =
  let tlb = Tlb.create Tlb.default_config in
  check_bool "cold miss" true (Tlb.lookup tlb ~vpn:5 = None);
  Tlb.insert tlb ~vpn:5 { Tlb.frame = 0x4000; writable = true };
  (match Tlb.lookup tlb ~vpn:5 with
   | Some e -> check_int "frame" 0x4000 e.Tlb.frame
   | None -> Alcotest.fail "expected hit");
  let s = Tlb.stats tlb in
  check_int "1 hit" 1 s.Tlb.hits;
  check_int "2 lookups" 2 s.Tlb.lookups

let test_tlb_lru_eviction () =
  let tlb = Tlb.create { Tlb.entries = 4; assoc = 0; policy = Tlb.Lru } in
  for vpn = 0 to 3 do
    Tlb.insert tlb ~vpn { Tlb.frame = vpn * 4096; writable = true }
  done;
  (* Touch 0..2 so 3 is LRU; insert 4 -> 3 evicted. *)
  for vpn = 0 to 2 do
    ignore (Tlb.lookup tlb ~vpn)
  done;
  Tlb.insert tlb ~vpn:4 { Tlb.frame = 0; writable = true };
  check_bool "vpn 3 evicted" true (Tlb.lookup tlb ~vpn:3 = None);
  check_bool "vpn 0 retained" true (Tlb.lookup tlb ~vpn:0 <> None)

let test_tlb_fifo_eviction () =
  let tlb = Tlb.create { Tlb.entries = 4; assoc = 0; policy = Tlb.Fifo } in
  for vpn = 0 to 3 do
    Tlb.insert tlb ~vpn { Tlb.frame = 0; writable = true }
  done;
  (* Touching does not matter for FIFO: 0 is still the first in. *)
  ignore (Tlb.lookup tlb ~vpn:0);
  Tlb.insert tlb ~vpn:9 { Tlb.frame = 0; writable = true };
  check_bool "vpn 0 evicted (FIFO)" true (Tlb.lookup tlb ~vpn:0 = None)

let test_tlb_set_associative_conflicts () =
  (* 4 entries, 2 ways -> 2 sets: vpns 0,2,4 share set 0. *)
  let tlb = Tlb.create { Tlb.entries = 4; assoc = 2; policy = Tlb.Lru } in
  List.iter
    (fun vpn -> Tlb.insert tlb ~vpn { Tlb.frame = 0; writable = true })
    [ 0; 2; 4 ];
  check_bool "conflict evicted vpn 0" true (Tlb.lookup tlb ~vpn:0 = None);
  check_bool "other set unaffected" true (Tlb.occupancy tlb <= 4)

let test_tlb_invalidate () =
  let tlb = Tlb.create Tlb.default_config in
  Tlb.insert tlb ~vpn:1 { Tlb.frame = 0; writable = true };
  Tlb.invalidate tlb ~vpn:1;
  check_bool "gone" true (Tlb.lookup tlb ~vpn:1 = None);
  Tlb.insert tlb ~vpn:2 { Tlb.frame = 0; writable = true };
  Tlb.invalidate_all tlb;
  check_int "empty" 0 (Tlb.occupancy tlb)

let test_tlb_geometry_validated () =
  let rejects cfg =
    match Tlb.create cfg with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  check_bool "16 entries / 3 ways rejected" true
    (rejects { Tlb.entries = 16; assoc = 3; policy = Tlb.Lru });
  check_bool "16 entries / 5 ways rejected" true
    (rejects { Tlb.entries = 16; assoc = 5; policy = Tlb.Lru });
  check_bool "4 ways of a 2-entry TLB rejected" true
    (rejects { Tlb.entries = 2; assoc = 4; policy = Tlb.Lru });
  check_bool "no entries rejected" true
    (rejects { Tlb.entries = 0; assoc = 0; policy = Tlb.Lru });
  let tlb = Tlb.create { Tlb.entries = 16; assoc = 4; policy = Tlb.Lru } in
  check_int "divisible geometry builds every slot" 16 (Tlb.slot_count tlb)

let test_tlb_fifo_reinsert_keeps_order () =
  let tlb = Tlb.create { Tlb.entries = 4; assoc = 0; policy = Tlb.Fifo } in
  for vpn = 0 to 3 do
    Tlb.insert tlb ~vpn { Tlb.frame = vpn * 4096; writable = true }
  done;
  (* Re-inserting resident vpn 0 refreshes its payload but must not
     move it to the back of the FIFO order. *)
  Tlb.insert tlb ~vpn:0 { Tlb.frame = 0x8000; writable = true };
  (match Tlb.lookup tlb ~vpn:0 with
   | Some e -> check_int "payload refreshed" 0x8000 e.Tlb.frame
   | None -> Alcotest.fail "expected hit");
  Tlb.insert tlb ~vpn:9 { Tlb.frame = 0; writable = true };
  check_bool "vpn 0 still first out" true (Tlb.lookup tlb ~vpn:0 = None);
  check_bool "vpn 1 retained" true (Tlb.lookup tlb ~vpn:1 <> None)

let test_tlb_invalidate_vpn_all_asids () =
  let tlb = Tlb.create Tlb.default_config in
  Tlb.insert ~asid:1 tlb ~vpn:7 { Tlb.frame = 0x1000; writable = true };
  Tlb.insert ~asid:2 tlb ~vpn:7 { Tlb.frame = 0x2000; writable = true };
  Tlb.insert ~asid:1 tlb ~vpn:8 { Tlb.frame = 0x3000; writable = true };
  Tlb.invalidate_vpn tlb ~vpn:7;
  check_bool "asid 1 copy gone" true (Tlb.lookup ~asid:1 tlb ~vpn:7 = None);
  check_bool "asid 2 copy gone" true (Tlb.lookup ~asid:2 tlb ~vpn:7 = None);
  check_bool "other vpn retained" true (Tlb.lookup ~asid:1 tlb ~vpn:8 <> None)

let prop_tlb_never_stale =
  QCheck.Test.make ~count:200 ~name:"tlb: lookups never return stale frames"
    QCheck.(list (pair (int_bound 20) (int_bound 1000)))
    (fun ops ->
      let tlb = Tlb.create { Tlb.entries = 4; assoc = 0; policy = Tlb.Lru } in
      let shadow = Hashtbl.create 16 in
      List.for_all
        (fun (vpn, frame_raw) ->
          let frame = frame_raw * 4096 in
          Tlb.insert tlb ~vpn { Tlb.frame; writable = true };
          Hashtbl.replace shadow vpn frame;
          match Tlb.lookup tlb ~vpn with
          | Some e -> e.Tlb.frame = Hashtbl.find shadow vpn
          | None -> false)
        ops)

(* ------------------------- Ptw / Mmu ------------------------------ *)

let test_ptw_walk_times_and_translates () =
  let _, bus, _, aspace = make_world () in
  let base = Addr_space.alloc aspace ~bytes:4096 in
  let ptw = Ptw.create bus (Addr_space.page_table aspace) in
  let entry, elapsed = in_sim_timed (fun () -> Ptw.walk ptw ~vaddr:base) in
  check_bool "found" true (entry <> None);
  check_bool "walk takes bus time" true (elapsed > 0);
  check_int "two level reads" 2 (Ptw.stats ptw).Ptw.level_reads

let test_mmu_translate_hit_vs_miss () =
  let _, bus, _, aspace = make_world () in
  let base = Addr_space.alloc aspace ~bytes:8192 in
  let mmu = Mmu.create Mmu.default_config bus aspace in
  let (p1, p2), _ =
    in_sim_timed (fun () ->
        let p1 = Mmu.translate mmu ~vaddr:base in
        let p2 = Mmu.translate mmu ~vaddr:(base + 8) in
        (p1, p2))
  in
  check_bool "translations agree with page table" true
    (Some p1 = Addr_space.translate aspace base
     && Some p2 = Addr_space.translate aspace (base + 8));
  let s = Mmu.stats mmu in
  check_int "one miss" 1 s.Mmu.tlb_misses;
  check_int "one hit" 1 s.Mmu.tlb_hits

let test_mmu_miss_slower_than_hit () =
  let _, bus, _, aspace = make_world () in
  let base = Addr_space.alloc aspace ~bytes:4096 in
  let mmu = Mmu.create Mmu.default_config bus aspace in
  let _, miss_time = in_sim_timed (fun () -> Mmu.translate mmu ~vaddr:base) in
  let _, hit_time = in_sim_timed (fun () -> Mmu.translate mmu ~vaddr:base) in
  check_bool "miss slower" true (miss_time > hit_time)

let test_mmu_demand_paging () =
  let _, bus, _, aspace = make_world () in
  let base = Addr_space.alloc ~lazy_:true aspace ~bytes:4096 in
  let mmu = Mmu.create Mmu.default_config bus aspace in
  let v = in_sim (fun () ->
      Mmu.store mmu base 99;
      Mmu.load mmu base)
  in
  check_int "value through demand-paged memory" 99 v;
  check_int "one fault" 1 (Mmu.stats mmu).Mmu.page_faults

let test_mmu_fault_on_wild_access () =
  let _, bus, _, aspace = make_world () in
  let mmu = Mmu.create Mmu.default_config bus aspace in
  check_bool "raises Mmu_fault" true
    (in_sim (fun () ->
         match Mmu.load mmu 0x200000 with
         | _ -> false
         | exception Mmu.Mmu_fault _ -> true))

let test_mmu_sw_refill_slower () =
  let run hw_walk =
    let _, bus, _, aspace = make_world () in
    let base = Addr_space.alloc aspace ~bytes:4096 in
    let mmu = Mmu.create { Mmu.default_config with Mmu.hw_walk } bus aspace in
    snd (in_sim_timed (fun () -> Mmu.translate mmu ~vaddr:base))
  in
  check_bool "software refill costs more" true (run false > run true)

let test_mmu_loads_data () =
  let phys, bus, _, aspace = make_world () in
  let base = Addr_space.alloc aspace ~bytes:4096 in
  Addr_space.store_word aspace base 1234;
  let mmu = Mmu.create Mmu.default_config bus aspace in
  check_int "load via mmu" 1234 (in_sim (fun () -> Mmu.load mmu base));
  ignore phys

(* ------------------------- Tlb2 / walk cache ---------------------- *)

let enabled_l2 = { Tlb2.default_config with Tlb2.enabled = true }

let test_tlb2_shared_between_mmus () =
  let _, bus, _, aspace = make_world () in
  let base = Addr_space.alloc aspace ~bytes:4096 in
  let l2 = Tlb2.create enabled_l2 in
  let mmu1 = Mmu.create ~tlb2:l2 Mmu.default_config bus aspace in
  let mmu2 = Mmu.create ~tlb2:l2 Mmu.default_config bus aspace in
  let _, cold = in_sim_timed (fun () -> Mmu.translate mmu1 ~vaddr:base) in
  let _, warm = in_sim_timed (fun () -> Mmu.translate mmu2 ~vaddr:base) in
  (* mmu1's walk filled the shared L2, so mmu2's L1 miss never walks. *)
  check_int "first mmu walked" 1 (Mmu.ptw_stats mmu1).Ptw.walks;
  check_int "second mmu never walks" 0 (Mmu.ptw_stats mmu2).Ptw.walks;
  let s = Tlb2.stats l2 in
  check_int "two L2 probes" 2 s.Tlb.lookups;
  check_int "one L2 hit" 1 s.Tlb.hits;
  check_bool "L2 refill cheaper than a walk" true (warm < cold)

let test_tlb2_miss_accounting () =
  let _, bus, _, aspace = make_world () in
  let base = Addr_space.alloc aspace ~bytes:8192 in
  let l2 = Tlb2.create enabled_l2 in
  let mmu = Mmu.create ~tlb2:l2 Mmu.default_config bus aspace in
  in_sim (fun () ->
      ignore (Mmu.translate mmu ~vaddr:base);
      ignore (Mmu.translate mmu ~vaddr:(base + 4096));
      (* L1 hit: the L2 must not even be probed. *)
      ignore (Mmu.translate mmu ~vaddr:base));
  let s = Tlb2.stats l2 in
  check_int "only L1 misses probe the L2" 2 s.Tlb.lookups;
  check_int "both cold probes missed" 0 s.Tlb.hits

let test_tlb2_shootdown_via_invalidate_vpn () =
  let l2 = Tlb2.create enabled_l2 in
  Tlb2.insert ~asid:1 l2 ~vpn:3 { Tlb.frame = 0x3000; writable = true };
  Tlb2.insert ~asid:2 l2 ~vpn:3 { Tlb.frame = 0x3000; writable = true };
  Tlb2.invalidate_vpn l2 ~vpn:3;
  check_bool "all asids shot down" true
    (Tlb2.lookup ~asid:1 l2 ~vpn:3 = None
    && Tlb2.lookup ~asid:2 l2 ~vpn:3 = None);
  check_int "nothing resident" 0 (Tlb2.occupancy l2)

let prop_tlb2_asid_isolation =
  QCheck.Test.make ~count:200 ~name:"tlb2: hits respect asid tags"
    QCheck.(list (triple (int_bound 3) (int_bound 10) (int_bound 500)))
    (fun ops ->
      let l2 =
        Tlb2.create { enabled_l2 with Tlb2.entries = 8; Tlb2.assoc = 0 }
      in
      let shadow = Hashtbl.create 16 in
      List.for_all
        (fun (asid, vpn, fr) ->
          let frame = fr * 4096 in
          Tlb2.insert ~asid l2 ~vpn { Tlb.frame; writable = true };
          Hashtbl.replace shadow (asid, vpn) frame;
          match Tlb2.lookup ~asid l2 ~vpn with
          | Some e -> e.Tlb.frame = Hashtbl.find shadow (asid, vpn)
          | None -> false)
        ops)

let test_walk_cache_warm_walk_single_read () =
  let _, bus, frames, aspace = make_world () in
  let pt = Addr_space.page_table aspace in
  (* Two pages under the same level-1 entry. *)
  Page_table.map pt ~vaddr:0x5000 ~frame:(Frame_alloc.alloc frames)
    ~writable:true;
  Page_table.map pt ~vaddr:0x6000 ~frame:(Frame_alloc.alloc frames)
    ~writable:true;
  let ptw = Ptw.create ~walk_cache_entries:4 bus pt in
  in_sim (fun () ->
      ignore (Ptw.walk ptw ~vaddr:0x5000);
      ignore (Ptw.walk ptw ~vaddr:0x6000));
  let s = Ptw.stats ptw in
  check_int "cold walk reads 2 levels, warm walk 1" 3 s.Ptw.level_reads;
  check_int "one walk-cache hit" 1 s.Ptw.walk_cache_hits;
  check_int "one walk-cache miss" 1 s.Ptw.walk_cache_misses

let test_walk_cache_warm_walk_faster () =
  let run walk_cache_entries =
    let _, bus, frames, aspace = make_world () in
    let pt = Addr_space.page_table aspace in
    Page_table.map pt ~vaddr:0x5000 ~frame:(Frame_alloc.alloc frames)
      ~writable:true;
    Page_table.map pt ~vaddr:0x6000 ~frame:(Frame_alloc.alloc frames)
      ~writable:true;
    let ptw = Ptw.create ~walk_cache_entries bus pt in
    snd
      (in_sim_timed (fun () ->
           ignore (Ptw.walk ptw ~vaddr:0x5000);
           ignore (Ptw.walk ptw ~vaddr:0x6000)))
  in
  check_bool "memoized level-1 frame saves bus time" true (run 4 < run 0)

let test_walk_cache_invalidation () =
  let _, bus, frames, aspace = make_world () in
  let pt = Addr_space.page_table aspace in
  Page_table.map pt ~vaddr:0x5000 ~frame:(Frame_alloc.alloc frames)
    ~writable:true;
  let ptw = Ptw.create ~walk_cache_entries:4 bus pt in
  in_sim (fun () -> ignore (Ptw.walk ptw ~vaddr:0x5000));
  Ptw.invalidate_walk_cache_entry ptw ~vaddr:0x5000;
  in_sim (fun () -> ignore (Ptw.walk ptw ~vaddr:0x5000));
  check_int "memo was dropped, walk missed again" 2
    (Ptw.stats ptw).Ptw.walk_cache_misses;
  Ptw.invalidate_walk_cache ptw;
  in_sim (fun () -> ignore (Ptw.walk ptw ~vaddr:0x5000));
  check_int "full shootdown drops everything" 3
    (Ptw.stats ptw).Ptw.walk_cache_misses

let prop_walk_cache_matches_functional =
  QCheck.Test.make ~count:50
    ~name:"ptw: walk cache never changes walk results"
    QCheck.(list (pair bool (int_bound 40)))
    (fun ops ->
      let _, bus, frames, aspace = make_world () in
      let pt = Addr_space.page_table aspace in
      (* Tiny cache so unrelated level-1 entries collide constantly. *)
      let ptw = Ptw.create ~walk_cache_entries:2 bus pt in
      List.for_all
        (fun (toggle, vpn) ->
          let vaddr = (vpn + 1) * 4096 in
          (if toggle then
             match Page_table.lookup pt ~vaddr with
             | Some _ ->
               (* Mirror the SoC's shootdown ordering: memo first,
                  then the unmap that may free the table frame. *)
               Ptw.invalidate_walk_cache_entry ptw ~vaddr;
               Page_table.unmap pt ~vaddr
             | None ->
               Page_table.map pt ~vaddr ~frame:(Frame_alloc.alloc frames)
                 ~writable:true);
          let walked = in_sim (fun () -> Ptw.walk ptw ~vaddr) in
          match (walked, Page_table.lookup pt ~vaddr) with
          | Some a, Some b -> a.Page_table.frame = b.Page_table.frame
          | None, None -> true
          | _ -> false)
        ops)

let suite =
  [
    Alcotest.test_case "frames: distinct" `Quick test_frames_distinct;
    Alcotest.test_case "frames: exhaustion + reuse" `Quick
      test_frames_exhaustion_and_reuse;
    Alcotest.test_case "pt: map/lookup" `Quick test_pt_map_lookup;
    Alcotest.test_case "pt: translate offset" `Quick test_pt_translate_offset;
    Alcotest.test_case "pt: double map rejected" `Quick
      test_pt_double_map_rejected;
    Alcotest.test_case "pt: unmap" `Quick test_pt_unmap;
    Alcotest.test_case "pt: unmap returns frames" `Quick
      test_pt_unmap_returns_frames;
    Alcotest.test_case "pt: shared table survives partial unmap" `Quick
      test_pt_shared_table_survives_partial_unmap;
    Alcotest.test_case "pt: 2x-capacity map/unmap churn" `Quick
      test_pt_map_unmap_churn_no_leak;
    Alcotest.test_case "pt: walk addrs" `Quick test_pt_walk_addrs;
    QCheck_alcotest.to_alcotest prop_pt_roundtrip;
    Alcotest.test_case "aspace: alloc + rw" `Quick test_aspace_alloc_rw;
    Alcotest.test_case "aspace: null unmapped" `Quick test_aspace_null_unmapped;
    Alcotest.test_case "aspace: regions disjoint" `Quick
      test_aspace_regions_disjoint;
    Alcotest.test_case "aspace: lazy faults" `Quick test_aspace_lazy_faults;
    Alcotest.test_case "aspace: segfault" `Quick test_aspace_segfault;
    Alcotest.test_case "tlb: hit after insert" `Quick test_tlb_hit_after_insert;
    Alcotest.test_case "tlb: LRU eviction" `Quick test_tlb_lru_eviction;
    Alcotest.test_case "tlb: FIFO eviction" `Quick test_tlb_fifo_eviction;
    Alcotest.test_case "tlb: set-assoc conflicts" `Quick
      test_tlb_set_associative_conflicts;
    Alcotest.test_case "tlb: invalidate" `Quick test_tlb_invalidate;
    Alcotest.test_case "tlb: geometry validated" `Quick
      test_tlb_geometry_validated;
    Alcotest.test_case "tlb: FIFO re-insert keeps order" `Quick
      test_tlb_fifo_reinsert_keeps_order;
    Alcotest.test_case "tlb: invalidate vpn across asids" `Quick
      test_tlb_invalidate_vpn_all_asids;
    QCheck_alcotest.to_alcotest prop_tlb_never_stale;
    Alcotest.test_case "ptw: timed walk" `Quick test_ptw_walk_times_and_translates;
    Alcotest.test_case "mmu: hit vs miss" `Quick test_mmu_translate_hit_vs_miss;
    Alcotest.test_case "mmu: miss slower" `Quick test_mmu_miss_slower_than_hit;
    Alcotest.test_case "mmu: demand paging" `Quick test_mmu_demand_paging;
    Alcotest.test_case "mmu: wild access faults" `Quick
      test_mmu_fault_on_wild_access;
    Alcotest.test_case "mmu: SW refill slower" `Quick test_mmu_sw_refill_slower;
    Alcotest.test_case "mmu: loads data" `Quick test_mmu_loads_data;
    Alcotest.test_case "tlb2: shared between mmus" `Quick
      test_tlb2_shared_between_mmus;
    Alcotest.test_case "tlb2: miss accounting" `Quick test_tlb2_miss_accounting;
    Alcotest.test_case "tlb2: vpn shootdown across asids" `Quick
      test_tlb2_shootdown_via_invalidate_vpn;
    QCheck_alcotest.to_alcotest prop_tlb2_asid_isolation;
    Alcotest.test_case "walk cache: warm walk reads one level" `Quick
      test_walk_cache_warm_walk_single_read;
    Alcotest.test_case "walk cache: warm walk faster" `Quick
      test_walk_cache_warm_walk_faster;
    Alcotest.test_case "walk cache: invalidation" `Quick
      test_walk_cache_invalidation;
    QCheck_alcotest.to_alcotest prop_walk_cache_matches_functional;
  ]
