(* The domain pool and the shared-parmap knob: ordering, exception
   selection, nesting (work-helping), and the degenerate widths. *)

open Vmht_par

let check_int = Alcotest.(check int)

let check_ints = Alcotest.(check (list int))

let check_strings = Alcotest.(check (list string))

let with_pool ~domains f =
  let pool = Pool.create ~domains in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_map_preserves_order () =
  with_pool ~domains:4 (fun pool ->
      let xs = List.init 100 Fun.id in
      check_ints "squares in order"
        (List.map (fun x -> x * x) xs)
        (Pool.map pool (fun x -> x * x) xs))

let test_width_one_is_sequential () =
  with_pool ~domains:1 (fun pool ->
      check_int "no workers at width 1" 1 (Pool.size pool);
      let order = ref [] in
      let ys =
        Pool.map pool
          (fun x ->
            order := x :: !order;
            x + 1)
          [ 1; 2; 3; 4 ]
      in
      check_ints "results" [ 2; 3; 4; 5 ] ys;
      (* Width 1 runs on the caller, strictly left to right. *)
      check_ints "execution order" [ 1; 2; 3; 4 ] (List.rev !order))

let test_empty_and_singleton () =
  with_pool ~domains:3 (fun pool ->
      check_ints "empty" [] (Pool.map pool (fun x -> x) []);
      check_ints "singleton" [ 7 ] (Pool.map pool (fun x -> x) [ 7 ]))

let test_earliest_exception_wins () =
  with_pool ~domains:4 (fun pool ->
      match
        Pool.map pool
          (fun x -> if x mod 3 = 2 then failwith (string_of_int x) else x)
          (List.init 10 Fun.id)
      with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
        (* 2, 5 and 8 all fail; the earliest submitted must surface. *)
        Alcotest.(check string) "earliest failing element" "2" msg)

let test_nested_map_no_deadlock () =
  (* More outer tasks than lanes, each fanning out again on the same
     pool: only work-helping keeps this from deadlocking. *)
  with_pool ~domains:2 (fun pool ->
      let grid =
        Pool.map pool
          (fun i -> Pool.map pool (fun j -> (10 * i) + j) [ 1; 2; 3 ])
          (List.init 6 Fun.id)
      in
      Alcotest.(check (list (list int)))
        "nested results in order"
        (List.init 6 (fun i -> List.map (fun j -> (10 * i) + j) [ 1; 2; 3 ]))
        grid)

let test_run_heterogeneous () =
  with_pool ~domains:3 (fun pool ->
      check_strings "thunks in order" [ "a"; "b"; "c" ]
        (Pool.run pool [ (fun () -> "a"); (fun () -> "b"); (fun () -> "c") ]))

let test_shutdown () =
  let pool = Pool.create ~domains:3 in
  check_ints "works before shutdown" [ 2 ] (Pool.map pool (fun x -> x + 1) [ 1 ]);
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Pool.map: pool is shut down") (fun () ->
      ignore (Pool.map pool Fun.id [ 1 ]))

let test_parmap_knob () =
  Parmap.set_jobs 0;
  check_int "clamped below at 1" 1 (Parmap.jobs ());
  Parmap.set_jobs 4;
  check_int "width taken" 4 (Parmap.jobs ());
  Fun.protect ~finally:Parmap.shutdown (fun () ->
      let xs = List.init 64 Fun.id in
      check_ints "parmap matches List.map"
        (List.map (fun x -> (3 * x) + 1) xs)
        (Parmap.map (fun x -> (3 * x) + 1) xs));
  check_int "shutdown resets width" 1 (Parmap.jobs ())

let prop_map_matches_list_map =
  QCheck.Test.make ~count:50 ~name:"pool map = List.map for any f-shape"
    QCheck.(pair (int_range 1 6) (small_list small_int))
    (fun (domains, xs) ->
      let pool = Pool.create ~domains in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          Pool.map pool (fun x -> (x * 7) - 1) xs
          = List.map (fun x -> (x * 7) - 1) xs))

let suite =
  [
    Alcotest.test_case "pool: ordered map" `Quick test_map_preserves_order;
    Alcotest.test_case "pool: width 1 is sequential" `Quick
      test_width_one_is_sequential;
    Alcotest.test_case "pool: empty/singleton" `Quick test_empty_and_singleton;
    Alcotest.test_case "pool: earliest exception wins" `Quick
      test_earliest_exception_wins;
    Alcotest.test_case "pool: nested map (work helping)" `Quick
      test_nested_map_no_deadlock;
    Alcotest.test_case "pool: run thunks" `Quick test_run_heterogeneous;
    Alcotest.test_case "pool: shutdown semantics" `Quick test_shutdown;
    Alcotest.test_case "parmap: knob + shared pool" `Quick test_parmap_knob;
    QCheck_alcotest.to_alcotest prop_map_matches_list_map;
  ]
