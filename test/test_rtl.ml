(* The RTL loop, closed: the emitted Verilog text is parsed back and
   executed, and the emitted bytes must agree with the model-level
   executor — results, cycle counts, and memory traffic.  Each emitter
   bug this library was built to catch has a directed regression here
   that fails against the pre-fix emitter: the request-hold bug, the
   missing resets, the mis-signed [>>>], the [-64'sd5] negative
   immediates, the undersized state register, and stale terminator
   operands. *)

module Parse = Vmht_rtl.Parse
module Eval = Vmht_rtl.Eval
module Engine = Vmht_sim.Engine
module Accel = Vmht_hls.Accel
module Fsm = Vmht_hls.Fsm
module Parser = Vmht_lang.Parser
module Ast_interp = Vmht_lang.Ast_interp
module Common = Vmht_eval.Common
module Flow = Vmht.Flow

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Replace the first occurrence of [sub] in [text] with [by]. *)
let replace ~sub ~by text =
  let nt = String.length text and ns = String.length sub in
  let rec find i =
    if i + ns > nt then None
    else if String.sub text i ns = sub then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> invalid_arg "replace: substring absent"
  | Some i ->
    String.sub text 0 i ^ by ^ String.sub text (i + ns) (nt - i - ns)

(* Run parsed RTL inside a private engine, like the model-executor
   tests do for [Accel.run]. *)
let eval_run ?(ports = 1) text ~port ~args =
  let m = Parse.parse_module text in
  let eng = Engine.create () in
  let out = ref None in
  let stats = Accel.fresh_stats () in
  Engine.spawn eng ~name:"rtl" (fun () ->
      out := Some (Eval.run ~stats ~ports m ~port ~args));
  Engine.run eng;
  (Option.get !out, stats)

(* The same kernel through both executors, untimed memory: returns
   ((ret, data, fsm_cycles) per backend). *)
let both_backends ?(ports = 1) ?(unroll = 1) kernel ~data ~args =
  let hw = Fsm.synthesize ~unroll kernel in
  let model_data = Array.copy data in
  let model_ret = ref None in
  let model_stats = Accel.fresh_stats () in
  let eng = Engine.create () in
  Engine.spawn eng ~name:"accel" (fun () ->
      let port = Accel.untimed_port (Ast_interp.array_memory model_data) in
      model_ret := Some (Accel.run ~stats:model_stats ~ports hw ~port ~args));
  Engine.run eng;
  let text = Vmht_hls.Verilog.emit hw in
  let rtl_data = Array.copy data in
  let out, rtl_stats =
    eval_run ~ports text
      ~port:(Accel.untimed_port (Ast_interp.array_memory rtl_data))
      ~args
  in
  ( (!model_ret, model_data, model_stats),
    (out, rtl_data, rtl_stats) )

(* ------------------- emitted text round-trips ---------------------- *)

(* Every workload's emitted module, both wrapper styles, must parse —
   including kernels with enough states that the pre-fix emitter's
   undersized state register made S_IDLE overflow its literal width
   (a hard Parse_error here, not silent truncation). *)
let test_parse_all_workloads () =
  List.iter
    (fun (w : Vmht_workloads.Workload.t) ->
      List.iter
        (fun style ->
          let hw = Common.synthesize style w in
          let m = Parse.parse_module hw.Flow.verilog in
          check_bool
            (w.Vmht_workloads.Workload.name ^ ": has idle/done params")
            true
            (List.mem_assoc "S_IDLE" m.Vmht_rtl.Ast.params
            && List.mem_assoc "S_DONE" m.Vmht_rtl.Ast.params);
          (* The memo must hand back the same parse. *)
          check_bool "memoized parse" true
            (Parse.parse_memo hw.Flow.verilog
            == Parse.parse_memo hw.Flow.verilog))
        [ Vmht.Wrapper.Vm_iface; Vmht.Wrapper.Dma_iface ])
    Vmht_workloads.Registry.all

let vecadd_kernel =
  Parser.parse_kernel
    {|kernel vecadd(a: int*, b: int*, c: int*, n: int) {
        var i: int;
        for (i = 0; i < n; i = i + 1) { c[i] = a[i] + b[i]; }
      }|}

(* Reset clause regression: the pre-fix emitter reset only state/done,
   leaving result and every channel output X after reset. *)
let test_emitted_reset_clause () =
  let hw = Fsm.synthesize vecadd_kernel in
  let text = Vmht_hls.Verilog.emit hw in
  List.iter
    (fun line ->
      check_bool ("reset clause has " ^ line) true (contains text line))
    [
      "result <= 64'd0;";
      "mem_req <= 1'b0;";
      "mem_we <= 1'b0;";
      "mem_addr <= 64'd0;";
      "mem_wdata <= 64'd0;";
    ]

(* Negative immediates must be sized two's-complement literals: the old
   [-64'sd5] spelling is self-determined inside concatenations and
   mis-parses there, so the strict parser rejects the form outright. *)
let test_negative_immediates () =
  let k =
    Parser.parse_kernel
      {|kernel negk(a: int*, n: int) {
          var i: int;
          for (i = 0; i < n; i = i + 1) { a[i] = a[i] * (-3) + (-7); }
        }|}
  in
  let hw = Fsm.synthesize k in
  let text = Vmht_hls.Verilog.emit hw in
  check_bool "no -64'sd spelling" false (contains text "-64'sd");
  check_bool "two's-complement hex immediates present" true
    (contains text "64'hf");
  (* And the emitted bytes still compute the right thing. *)
  let data = Array.init 8 (fun i -> i - 3) in
  let (mret, mdata, _), (out, rdata, _) =
    both_backends k ~data ~args:[ 0; 8 ]
  in
  check_bool "model ran" true (mret <> None);
  ignore out;
  Array.iteri
    (fun i v ->
      check_int (Printf.sprintf "negk data[%d]" i) v rdata.(i);
      check_int (Printf.sprintf "negk expected[%d]" i)
        (((i - 3) * -3) - 7)
        mdata.(i))
    mdata

(* --------------------- handwritten harness ------------------------ *)

(* A two-load adder in exactly the emitted module shape.  [deassert]
   selects whether the FSM drops [mem_req] on the acked advance — the
   emitter's request-hold bug, isolated. *)
let two_loads ~deassert =
  let d = if deassert then "mem_req <= 1'b0;\n            " else "" in
  Printf.sprintf
    {|module ht_two_loads(
  input wire clk,
  input wire rst,
  input wire start,
  input wire [63:0] arg0,
  output reg done,
  output reg [63:0] result,
  output reg mem_req,
  output reg mem_we,
  output reg [63:0] mem_addr,
  output reg [63:0] mem_wdata,
  input wire [63:0] mem_rdata,
  input wire mem_ack
);
  localparam S_IDLE = 3'd3;
  localparam S_DONE = 3'd4;
  reg [2:0] state;
  reg [63:0] r1;
  reg [63:0] r2;
  always @(posedge clk) begin
    if (rst) begin
      state <= S_IDLE;
      done <= 1'b0;
      result <= 64'd0;
      mem_req <= 1'b0;
      mem_we <= 1'b0;
      mem_addr <= 64'd0;
      mem_wdata <= 64'd0;
    end else begin
      case (state)
        S_IDLE: begin
          if (start) begin
            done <= 1'b0;
            state <= 3'd0;
          end
        end
        3'd0: begin
          mem_req <= 1'b1;
          mem_we <= 1'b0;
          mem_addr <= arg0;
          if (mem_ack) begin
            r1 <= mem_rdata;
            %sstate <= 3'd1;
          end
        end
        3'd1: begin
          mem_req <= 1'b1;
          mem_we <= 1'b0;
          mem_addr <= arg0 + 64'd8;
          if (mem_ack) begin
            r2 <= mem_rdata;
            %sstate <= 3'd2;
          end
        end
        3'd2: begin
          result <= r1 + r2;
          done <= 1'b1;
          state <= S_DONE;
        end
        S_DONE: begin
          done <= 1'b1;
        end
      endcase
    end
  end
endmodule
|}
    d d

(* A pure single-state module computing [result <= <expr of arg0>]. *)
let pure_module expr =
  Printf.sprintf
    {|module ht_mini(
  input wire clk,
  input wire rst,
  input wire start,
  input wire [63:0] arg0,
  output reg done,
  output reg [63:0] result
);
  localparam S_IDLE = 2'd1;
  localparam S_DONE = 2'd2;
  reg [1:0] state;
  always @(posedge clk) begin
    if (rst) begin
      state <= S_IDLE;
      done <= 1'b0;
      result <= 64'd0;
    end else begin
      case (state)
        S_IDLE: begin
          if (start) begin
            done <= 1'b0;
            state <= 2'd0;
          end
        end
        2'd0: begin
          result <= %s;
          done <= 1'b1;
          state <= S_DONE;
        end
        S_DONE: begin
          done <= 1'b1;
        end
      endcase
    end
  end
endmodule
|}
    expr

let untimed_of data = Accel.untimed_port (Ast_interp.array_memory data)

(* The request-hold regression: without the deassert, the adapter's
   held ack satisfies the next state's gate instantly, so the second
   load never goes out — one request, stale data.  With it, two
   requests and the right sum.  Counting accepted requests is what
   makes the bug observable rather than just "wrong answer". *)
let test_request_hold_bug () =
  let data = [| 5; 9 |] in
  let fixed, fstats =
    eval_run (two_loads ~deassert:true) ~port:(untimed_of data) ~args:[ 0 ]
  in
  check_int "fixed: result" 14 (Option.get fixed.Eval.result);
  check_int "fixed: requests" 2 fixed.Eval.requests;
  check_int "fixed: loads" 2 fstats.Accel.loads;
  let buggy, bstats =
    eval_run (two_loads ~deassert:false) ~port:(untimed_of data) ~args:[ 0 ]
  in
  check_int "hold bug: only one request ever issues" 1 buggy.Eval.requests;
  check_int "hold bug: one load" 1 bstats.Accel.loads;
  check_int "hold bug: stale data doubles the first word" 10
    (Option.get buggy.Eval.result)

(* The missing-reset regression: with the reset clause gutted, the
   first sampled request line is X — a hard error, not a quiet zero. *)
let test_missing_reset_is_x () =
  let gutted =
    (* Strip every reset assignment except state's, mimicking the
       pre-fix emitter (which reset only state and done). *)
    let lines = String.split_on_char '\n' (two_loads ~deassert:true) in
    let in_reset = ref false in
    let keep line =
      if contains line "if (rst) begin" then begin
        in_reset := true;
        true
      end
      else if !in_reset && contains line "end else begin" then begin
        in_reset := false;
        true
      end
      else not (!in_reset && (contains line "mem_" || contains line "result"))
    in
    String.concat "\n" (List.filter keep lines)
  in
  let data = [| 5; 9 |] in
  match eval_run gutted ~port:(untimed_of data) ~args:[ 0 ] with
  | exception Eval.Rtl_error msg ->
    check_bool "error names the X'd request" true (contains msg "X")
  | _ -> Alcotest.fail "unreset request line executed without an error"

(* The [>>>] signedness bug, pinned semantically: on an unsigned reg,
   [>>>] is a *logical* shift, so the pre-fix emitter's spelling
   diverges from the interpreter's arithmetic [asr] on any negative
   value.  The fixed emitter casts with [$signed]. *)
let test_shr_signedness () =
  let run expr =
    let out, _ =
      eval_run (pure_module expr) ~port:(untimed_of [||]) ~args:[ -8 ]
    in
    Option.get out.Eval.result
  in
  check_int "$signed(x) >>> 1 is an arithmetic shift" (-4)
    (run "$signed(arg0) >>> 1");
  check_int "bare x >>> 1 is a logical shift (the bug)"
    (Int64.to_int (Int64.shift_right_logical (Int64.of_int (-8)) 1))
    (run "arg0 >>> 1");
  (* And the emitter now always writes the signed form. *)
  let k =
    Parser.parse_kernel
      {|kernel shrk(a: int*, n: int) {
          var i: int;
          for (i = 0; i < n; i = i + 1) { a[i] = a[i] >> 1; }
        }|}
  in
  let text = Vmht_hls.Verilog.emit (Fsm.synthesize k) in
  let rec scan from =
    match String.index_from_opt text from '>' with
    | Some i
      when i + 2 < String.length text
           && text.[i + 1] = '>' && text.[i + 2] = '>' ->
      (* Every [>>>] must shift a [$signed(...)] operand. *)
      check_bool ">>> operand is $signed" true
        (i >= 2 && String.sub text (i - 2) 2 = ") ");
      scan (i + 3)
    | Some i -> scan (i + 1)
    | None -> ()
  in
  scan 0;
  check_bool "shift kernel uses >>>" true (contains text ">>>");
  (* Behavioral: negative values survive the round trip. *)
  let data = [| -8; -3; 17; min_int / 2 |] in
  let (_, mdata, mstats), (_, rdata, rstats) =
    both_backends k ~data ~args:[ 0; 4 ]
  in
  Array.iteri
    (fun i v ->
      check_int (Printf.sprintf "shrk data[%d]" i) v rdata.(i);
      check_int (Printf.sprintf "shrk expected[%d]" i) (data.(i) asr 1)
        mdata.(i))
    mdata;
  check_int "shrk fsm cycles" mstats.Accel.fsm_cycles rstats.Accel.fsm_cycles

(* Terminator forwarding: a loop branch whose condition is computed in
   the block's final cycle must read the *forwarded* value, not the
   stale register — the emitter inlines the defining expression into
   the state-select ternary. *)
let test_terminator_forwarding () =
  let hw = Fsm.synthesize vecadd_kernel in
  let text = Vmht_hls.Verilog.emit hw in
  check_bool "branch condition is forwarded inline" true
    (contains text "state <= ((");
  let data = Array.init 24 (fun i -> i) in
  let (_, mdata, mstats), (_, rdata, rstats) =
    both_backends vecadd_kernel ~data ~args:[ 0; 8 * 8; 16 * 8; 8 ]
  in
  check_bool "vecadd data matches model" true (mdata = rdata);
  check_int "vecadd fsm cycles" mstats.Accel.fsm_cycles
    rstats.Accel.fsm_cycles

(* ---------------------- parser strictness ------------------------- *)

let expect_parse_error name text =
  match Parse.parse_module text with
  | exception Parse.Parse_error _ -> ()
  | _ -> Alcotest.fail (name ^ ": accepted by the strict parser")

let test_parser_strictness () =
  (* The pre-fix spelling of negative immediates. *)
  expect_parse_error "unary minus on a sized literal"
    (pure_module "arg0 + -64'sd7");
  (* The undersized state register: 3'd8 does not fit. *)
  expect_parse_error "overflowing literal" (pure_module "arg0 + 3'd8");
  expect_parse_error "x digits" (pure_module "arg0 + 4'dx");
  expect_parse_error "underscore digits" (pure_module "arg0 + 16'd1_0");
  (* No else branches in the emitted subset. *)
  expect_parse_error "else branch"
    (replace (pure_module "arg0")
       ~sub:"result <= arg0;"
       ~by:"if (start) result <= arg0; else result <= 64'd1;")

(* ---------------- randomized backend differential ------------------ *)

(* The full-stack differential, modeled on the fastpath one: any
   generated kernel, TLB geometry, data seed and fault rate must give
   identical cycles, return value and final memory on the model
   executor and on the emitted bytes.  Fault injection is the sharp
   edge: both backends draw from the same injector stream through the
   same port, so a fault lands in the same access either way. *)
let fuzz_vm_observe ~backend ~banks ~tlb_entries ~rate ~seed kernel =
  let config =
    Vmht.Config.with_tlb_entries Vmht.Config.default tlb_entries
  in
  let config = Vmht.Config.with_banks config banks in
  let config = Vmht.Config.with_seed config seed in
  let config =
    if rate > 0. then
      Vmht.Config.with_fault config (Vmht_fault.Plan.uniform ~rate)
    else config
  in
  let config = Vmht.Config.with_backend config backend in
  let soc = Vmht.Soc.create config in
  let aspace = Vmht.Soc.aspace soc in
  let base =
    Vmht_vm.Addr_space.alloc aspace ~bytes:(Gen_prog.mem_words * 8)
  in
  for i = 0 to Gen_prog.mem_words - 1 do
    Vmht_vm.Addr_space.store_word aspace (base + (i * 8)) ((i * 37) mod 101)
  done;
  let hw =
    Flow.run_exn
      (Flow.Request.of_kernel ~config ~style:Vmht.Wrapper.Vm_iface kernel)
  in
  let result =
    Vmht.Launch.run_to_completion soc (fun () ->
        Vmht.Launch.run_hw soc hw
          {
            Vmht.Launch.args = [ base; seed mod 11; seed mod 7 ];
            buffers = [];
          })
  in
  let mem =
    List.init Gen_prog.mem_words (fun i ->
        Vmht_vm.Addr_space.load_word aspace (base + (i * 8)))
  in
  (result.Vmht.Launch.total_cycles, result.Vmht.Launch.ret, mem)

let arb_rtl_case =
  QCheck.make
    ~print:(fun (seed, tlb_entries, rate, banks) ->
      Printf.sprintf "(kernel seed %d, tlb=%d, fault rate %.3f, banks=%d)"
        seed tlb_entries rate banks)
    QCheck.Gen.(
      quad (0 -- 20000)
        (oneofl [ 4; 8; 16 ])
        (oneofl [ 0.; 0.005; 0.02 ])
        (oneofl [ 1; 2; 4 ]))

let prop_rtl_differential =
  QCheck.Test.make ~count:25
    ~name:"emitted RTL = model executor (cycles, ret, memory; incl. faults)"
    arb_rtl_case
    (fun (seed, tlb_entries, rate, banks) ->
      let kernel = Gen_prog.gen_kernel seed in
      let model =
        fuzz_vm_observe ~backend:Vmht.Config.Model ~banks ~tlb_entries ~rate
          ~seed:1 kernel
      in
      let rtl =
        fuzz_vm_observe ~backend:Vmht.Config.Rtl ~banks ~tlb_entries ~rate
          ~seed:1 kernel
      in
      model = rtl)

let suite =
  [
    Alcotest.test_case "parse: every workload, both styles" `Quick
      test_parse_all_workloads;
    Alcotest.test_case "emitter: reset clause covers all outputs" `Quick
      test_emitted_reset_clause;
    Alcotest.test_case "emitter: negative immediates are sized hex" `Quick
      test_negative_immediates;
    Alcotest.test_case "adapter: request-hold bug counted" `Quick
      test_request_hold_bug;
    Alcotest.test_case "eval: missing reset is a hard X error" `Quick
      test_missing_reset_is_x;
    Alcotest.test_case "emitter: >>> is signed" `Quick test_shr_signedness;
    Alcotest.test_case "emitter: terminator operands forwarded" `Quick
      test_terminator_forwarding;
    Alcotest.test_case "parser: strictness" `Quick test_parser_strictness;
    QCheck_alcotest.to_alcotest prop_rtl_differential;
  ]
