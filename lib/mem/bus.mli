(** Shared AXI-like interconnect in front of DRAM.

    One transaction holds the bus for arbitration + DRAM latency (+ one
    cycle per extra burst beat); concurrent masters serialize in FIFO
    order, which is how multi-accelerator contention arises in the
    scaling experiment.  All calls must run in simulation-process
    context. *)

type t

type stats = {
  reads : int;
  writes : int;
  words_moved : int;
  bus : Vmht_sim.Resource.stats;
}

val create : ?arbitration_cycles:int -> Phys_mem.t -> Dram.t -> t
(** Default arbitration latency: 2 cycles per transaction. *)

val phys : t -> Phys_mem.t

val read_word : t -> int -> int
(** Timed single-word read. *)

val write_word : t -> int -> int -> unit
(** Timed single-word write. *)

val read_burst : t -> addr:int -> words:int -> int array
(** Timed sequential burst read (one bus transaction). *)

val write_burst : t -> addr:int -> int array -> unit
(** Timed sequential burst write (one bus transaction). *)

val set_observer : t -> Vmht_obs.Event.emitter -> unit
(** Install an observer invoked (in process context) once per
    transaction with a typed {!Vmht_obs.Event.kind.Bus_txn} event
    carrying the transaction's latency — the hook the SoC's
    observability layer uses. *)

val set_fault : t -> Vmht_fault.Injector.t -> unit
(** Attach a fault injector: a transaction may suffer a slave error
    ([bus_error]; error turnaround plus a full re-issue) or an extra
    contention window ([bus_contention]).  Both stretch the
    transaction in place — masters never observe a failure. *)

val stats : t -> stats

val utilization : t -> total_cycles:int -> float
