module Fi = Vmht_fault.Injector
module Fp = Vmht_fault.Plan

type stats = { transfers : int; words_in : int; words_out : int }

type t = {
  bus : Bus.t;
  setup_cycles : int;
  burst_words : int;
  mutable transfers : int;
  mutable words_in : int;
  mutable words_out : int;
  mutable observer : Vmht_obs.Event.emitter option;
  mutable fault : Fi.t option;
}

let create ?(setup_cycles = 120) ?(burst_words = 64) bus =
  {
    bus;
    setup_cycles;
    burst_words;
    transfers = 0;
    words_in = 0;
    words_out = 0;
    observer = None;
    fault = None;
  }

let set_observer t f = t.observer <- Some f

let set_fault t inj = t.fault <- Some inj

(* Run [body], then emit a [Dma_burst] spanning its measured duration.
   [op] is the direction seen from DRAM: [Read] stages in, [Write]
   drains out. *)
let observed t ~op ~words body =
  match t.observer with
  | None -> body ()
  | Some f ->
    let t0 = Vmht_sim.Engine.now_p () in
    body ();
    let duration = Vmht_sim.Engine.now_p () - t0 in
    f ~duration (Vmht_obs.Event.Dma_burst { op; words })

(* Transfer aborts are injected on staging (copy-in) bursts only: a
   re-run after an abort re-stages everything from DRAM, which is only
   idempotent if the abort never happened mid-drain with outputs half
   written back over live inputs. *)
let maybe_abort t =
  match t.fault with
  | Some inj when Fi.fires inj ~rate:(Fi.plan inj).Fp.dma_abort_rate ->
    Vmht_sim.Engine.wait (Fi.plan inj).Fp.dma_abort_cycles;
    Fi.abort inj ~fault:"dma_abort"
  | _ -> ()

(* Move [words] from DRAM at [src_phys] into the scratchpad, in bus
   bursts of at most [burst_words].  No setup cost: callers charge it. *)
let burst_in_raw t pad ~src_phys ~dst_word ~words =
  let rec go offset =
    if offset < words then begin
      maybe_abort t;
      let chunk = min t.burst_words (words - offset) in
      let data =
        Bus.read_burst t.bus
          ~addr:(src_phys + (offset * Phys_mem.word_bytes))
          ~words:chunk
      in
      Array.iteri
        (fun i v -> Scratchpad.write_local pad (dst_word + offset + i) v)
        data;
      go (offset + chunk)
    end
  in
  go 0

let burst_out_raw t pad ~src_word ~dst_phys ~words =
  let rec go offset =
    if offset < words then begin
      let chunk = min t.burst_words (words - offset) in
      let data =
        Array.init chunk (fun i ->
            Scratchpad.read_local pad (src_word + offset + i))
      in
      Bus.write_burst t.bus
        ~addr:(dst_phys + (offset * Phys_mem.word_bytes))
        data;
      go (offset + chunk)
    end
  in
  go 0

let copy_in t pad ~src_phys ~dst_word ~words =
  t.transfers <- t.transfers + 1;
  t.words_in <- t.words_in + words;
  observed t ~op:Vmht_obs.Event.Read ~words (fun () ->
      Vmht_sim.Engine.wait t.setup_cycles;
      burst_in_raw t pad ~src_phys ~dst_word ~words)

let copy_out t pad ~src_word ~dst_phys ~words =
  t.transfers <- t.transfers + 1;
  t.words_out <- t.words_out + words;
  observed t ~op:Vmht_obs.Event.Write ~words (fun () ->
      Vmht_sim.Engine.wait t.setup_cycles;
      burst_out_raw t pad ~src_word ~dst_phys ~words)

let copy_in_scattered t pad ~chunks ~dst_word =
  t.transfers <- t.transfers + 1;
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 chunks in
  observed t ~op:Vmht_obs.Event.Read ~words:total (fun () ->
      Vmht_sim.Engine.wait t.setup_cycles;
      let _ =
        List.fold_left
          (fun dst (src_phys, words) ->
            t.words_in <- t.words_in + words;
            burst_in_raw t pad ~src_phys ~dst_word:dst ~words;
            dst + words)
          dst_word chunks
      in
      ())

let copy_out_scattered t pad ~src_word ~chunks =
  t.transfers <- t.transfers + 1;
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 chunks in
  observed t ~op:Vmht_obs.Event.Write ~words:total (fun () ->
      Vmht_sim.Engine.wait t.setup_cycles;
      let _ =
        List.fold_left
          (fun src (dst_phys, words) ->
            t.words_out <- t.words_out + words;
            burst_out_raw t pad ~src_word:src ~dst_phys ~words;
            src + words)
          src_word chunks
      in
      ())

let stats (t : t) : stats =
  { transfers = t.transfers; words_in = t.words_in; words_out = t.words_out }
