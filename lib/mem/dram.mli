(** DRAM timing model with per-bank open-row tracking.

    An access to the currently open row of its bank costs the CAS
    latency; any other access pays precharge + activate + CAS.  The
    model only produces latencies — data lives in {!Phys_mem} — so the
    bus can charge time and move words separately. *)

type config = {
  t_cas : int; (** column access, row already open *)
  t_rcd : int; (** activate (row open) *)
  t_rp : int; (** precharge (row close) *)
  row_bytes : int; (** row-buffer size; a power of two *)
  banks : int; (** power of two *)
}

val default_config : config
(** 14 / 14 / 14 fabric cycles, 2 KiB rows, 8 banks — DDR3-ish numbers
    expressed in 100 MHz fabric cycles. *)

type t

type stats = { accesses : int; row_hits : int; row_misses : int }

val create : ?config:config -> unit -> t

val access_latency : t -> addr:int -> int
(** Latency of a single-beat access at [addr]; updates open-row state. *)

val burst_latency : t -> addr:int -> words:int -> int
(** Latency of a [words]-long sequential burst starting at [addr]:
    first beat as {!access_latency}, subsequent beats 1 cycle each,
    paying a fresh row activation whenever the burst crosses a row
    boundary. *)

val set_observer : t -> Vmht_obs.Event.emitter -> unit
(** Install an observer that receives an instant
    {!Vmht_obs.Event.kind.Dram_row_hit} / [Dram_row_miss] event per
    latency computation.  Inner beats of a burst that stay within an
    open row are counted as hits in {!stats} but do not emit events. *)

val set_fault : t -> Vmht_fault.Injector.t -> unit
(** Attach a fault injector: each latency computation may suffer a row
    activation failure ([dram_row_failure]) — a latency spike, after
    which the bank's row is left closed. *)

val stats : t -> stats

val row_hit_rate : t -> float
