type config = {
  t_cas : int;
  t_rcd : int;
  t_rp : int;
  row_bytes : int;
  banks : int;
}

let default_config =
  { t_cas = 14; t_rcd = 14; t_rp = 14; row_bytes = 2048; banks = 8 }

module Fi = Vmht_fault.Injector
module Fp = Vmht_fault.Plan

type stats = { accesses : int; row_hits : int; row_misses : int }

type t = {
  config : config;
  open_rows : int array; (* per bank; -1 = closed *)
  mutable accesses : int;
  mutable row_hits : int;
  mutable row_misses : int;
  mutable observer : Vmht_obs.Event.emitter option;
  mutable fault : Fi.t option;
}


let create ?(config = default_config) () =
  assert (Vmht_util.Bits.is_pow2 config.row_bytes);
  assert (Vmht_util.Bits.is_pow2 config.banks);
  {
    config;
    open_rows = Array.make config.banks (-1);
    accesses = 0;
    row_hits = 0;
    row_misses = 0;
    observer = None;
    fault = None;
  }

let set_observer t f = t.observer <- Some f

let set_fault t inj = t.fault <- Some inj

let emit t kind = match t.observer with Some f -> f kind | None -> ()

let row_of t addr = addr / t.config.row_bytes

let bank_of t addr = row_of t addr land (t.config.banks - 1)

let access_latency t ~addr =
  t.accesses <- t.accesses + 1;
  let row = row_of t addr in
  let bank = bank_of t addr in
  let base =
    if t.open_rows.(bank) = row then begin
      t.row_hits <- t.row_hits + 1;
      emit t (Vmht_obs.Event.Dram_row_hit { bank });
      t.config.t_cas
    end
    else begin
      t.row_misses <- t.row_misses + 1;
      emit t (Vmht_obs.Event.Dram_row_miss { bank });
      let penalty =
        if t.open_rows.(bank) = -1 then t.config.t_rcd + t.config.t_cas
        else t.config.t_rp + t.config.t_rcd + t.config.t_cas
      in
      t.open_rows.(bank) <- row;
      penalty
    end
  in
  match t.fault with
  | Some inj when Fi.fires inj ~rate:(Fi.plan inj).Fp.dram_row_failure_rate ->
    (* The activation glitches: pay the spike and leave the row closed,
       so the next access to this bank re-activates. *)
    let cycles = (Fi.plan inj).Fp.dram_row_failure_cycles in
    t.open_rows.(bank) <- -1;
    Fi.injected inj ~fault:"dram_row_failure" ~cycles;
    base + cycles
  | _ -> base

let burst_latency t ~addr ~words =
  if words <= 0 then 0
  else begin
    let word = Phys_mem.word_bytes in
    let first = access_latency t ~addr in
    let rec beats i acc =
      if i >= words then acc
      else begin
        let a = addr + (i * word) in
        if row_of t a <> row_of t (a - word) then
          beats (i + 1) (acc + access_latency t ~addr:a)
        else begin
          t.accesses <- t.accesses + 1;
          t.row_hits <- t.row_hits + 1;
          beats (i + 1) (acc + 1)
        end
      end
    in
    beats 1 first
  end

let stats (t : t) : stats =
  { accesses = t.accesses; row_hits = t.row_hits; row_misses = t.row_misses }

let row_hit_rate t =
  if t.accesses = 0 then 0.
  else float_of_int t.row_hits /. float_of_int t.accesses
