(** DMA engine moving data between DRAM and a scratchpad in bursts.

    Transfers are performed in [burst_words]-sized bus transactions
    after a fixed programming/setup delay per transfer, matching how a
    copy-based accelerator interface stages its inputs and drains its
    outputs. *)

type t

type stats = { transfers : int; words_in : int; words_out : int }

val create : ?setup_cycles:int -> ?burst_words:int -> Bus.t -> t
(** Defaults: 120 setup cycles (driver + descriptor programming),
    64-word bursts. *)

val copy_in : t -> Scratchpad.t -> src_phys:int -> dst_word:int -> words:int -> unit
(** Timed DRAM -> scratchpad copy. *)

val copy_out : t -> Scratchpad.t -> src_word:int -> dst_phys:int -> words:int -> unit
(** Timed scratchpad -> DRAM copy. *)

val copy_in_scattered :
  t -> Scratchpad.t -> chunks:(int * int) list -> dst_word:int -> unit
(** Descriptor-chained copy of non-contiguous physical [(phys, words)]
    chunks (one page each, typically) into consecutive scratchpad
    words: one setup delay, then per-chunk bursts. *)

val copy_out_scattered :
  t -> Scratchpad.t -> src_word:int -> chunks:(int * int) list -> unit

val set_observer : t -> Vmht_obs.Event.emitter -> unit
(** Install an observer receiving one
    {!Vmht_obs.Event.kind.Dma_burst} event per [copy_*] call, spanning
    the whole transfer (setup + bursts); [op] is the direction seen
    from DRAM ([Read] stages in, [Write] drains out). *)

val set_fault : t -> Vmht_fault.Injector.t -> unit
(** Attach a fault injector: each staging (copy-in) burst may abort
    the whole transfer — after a detection delay the injector raises
    {!Vmht_fault.Injector.Abort}, and the owning thread must re-run
    its copy-in/compute/copy-out.  Drain bursts are never aborted, so
    a re-run always restages pristine DRAM state. *)

val stats : t -> stats
