(** Set-associative, write-back, write-allocate cache.

    Used both as the simulated CPU's L1 data cache and as the
    accelerator wrappers' stream buffer.  Dirty lines ride back to DRAM
    on eviction; {!flush} writes all dirty lines back (timed) and is
    what the runtime calls at thread boundaries to make results visible
    to other masters, followed by {!invalidate_all} so subsequently
    read data is fetched fresh (mirroring the cache-maintenance calls a
    real driver performs).

    The cache is indexed by the addresses it is given — the simulated
    CPU hands it virtual addresses and resolves the physical address
    itself — so [read]/[write] take both the (indexing) address and the
    physical address used for fills and write-backs. *)

type config = {
  size_bytes : int;
  line_bytes : int;
  ways : int;
  hit_latency : int;
}

val default_config : config
(** 16 KiB, 32-byte lines, 4 ways, 1-cycle hits. *)

type t

type stats = {
  read_hits : int;
  read_misses : int;
  write_hits : int;
  write_misses : int;
  writebacks : int;
  invalidations : int;
}

val create : ?config:config -> Bus.t -> t

val read : t -> addr:int -> phys:int -> int
(** Timed.  On a miss the containing line is fetched over the bus
    (evicting — and writing back, if dirty — the victim). *)

val write : t -> addr:int -> phys:int -> int -> unit
(** Timed write-allocate: the line is fetched on a miss, updated in
    place and marked dirty. *)

val flush : t -> unit
(** Timed: write every dirty line back over the bus. *)

val invalidate_all : t -> unit
(** Drop every line, writing dirty ones back first (timed, like
    {!flush}) — an invalidate must never lose stores.  Free when the
    cache is clean. *)

val set_observer : t -> Vmht_obs.Event.emitter -> unit
(** Install an observer receiving a typed
    {!Vmht_obs.Event.kind.Cache_hit} / [Cache_miss] event per access;
    miss events carry the measured fill latency (bus + DRAM) as their
    duration. *)

val dirty_lines : t -> int

val stats : t -> stats

val hit_rate : t -> float
