let word_bytes = 8

(* Backing store is chunked and demand-allocated: a flat array would
   cost a 64 MiB allocate-and-zero on every [create] — per-run setup
   that dwarfs a small simulation.  A chunk springs into existence
   (zeroed) on first write; unwritten chunks read as zero through a
   shared empty sentinel, so observable contents are identical to the
   flat array. *)
let chunk_shift = 13 (* 8192 words = 64 KiB per chunk *)

let chunk_words = 1 lsl chunk_shift

let chunk_mask = chunk_words - 1

let empty_chunk : int array = [||]

type t = { chunks : int array array; bytes : int }

exception Bad_address of int

let create ~bytes =
  if bytes <= 0 || bytes mod word_bytes <> 0 then
    invalid_arg "Phys_mem.create: size must be a positive multiple of 8";
  let words = bytes / word_bytes in
  let n_chunks = (words + chunk_words - 1) / chunk_words in
  { chunks = Array.make n_chunks empty_chunk; bytes }

let size_bytes t = t.bytes

let index t addr =
  if addr < 0 || addr >= t.bytes || addr mod word_bytes <> 0 then
    raise (Bad_address addr);
  addr / word_bytes

let read t addr =
  let i = index t addr in
  let c = Array.unsafe_get t.chunks (i lsr chunk_shift) in
  if c == empty_chunk then 0 else Array.unsafe_get c (i land chunk_mask)

let write t addr value =
  let i = index t addr in
  let ci = i lsr chunk_shift in
  let c = Array.unsafe_get t.chunks ci in
  let c =
    if c != empty_chunk then c
    else begin
      let fresh = Array.make chunk_words 0 in
      Array.unsafe_set t.chunks ci fresh;
      fresh
    end
  in
  Array.unsafe_set c (i land chunk_mask) value
