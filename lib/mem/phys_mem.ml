let word_bytes = 8

type t = { data : int array; bytes : int }

exception Bad_address of int

let create ~bytes =
  if bytes <= 0 || bytes mod word_bytes <> 0 then
    invalid_arg "Phys_mem.create: size must be a positive multiple of 8";
  { data = Array.make (bytes / word_bytes) 0; bytes }

let size_bytes t = t.bytes

let index t addr =
  if addr < 0 || addr >= t.bytes || addr mod word_bytes <> 0 then
    raise (Bad_address addr);
  addr / word_bytes

let read t addr = t.data.(index t addr)

let write t addr value = t.data.(index t addr) <- value
