(** Physical memory: a flat, word-addressable store.

    Addresses are byte addresses and must be word-aligned (the
    simulated datapath is 64-bit).  This module is purely functional
    state — all timing lives in {!Dram} and {!Bus}. *)

type t

exception Bad_address of int

val create : bytes:int -> t
(** [bytes] must be a positive multiple of the word size. *)

val size_bytes : t -> int

val read : t -> int -> int
(** Raises {!Bad_address} on unaligned or out-of-range addresses. *)

val write : t -> int -> int -> unit

val word_bytes : int
(** 8. *)
