type window = { base : int; words : int; local_word : int }

type t = {
  data : int array;
  latency : int;
  mutable windows : window list;
  mutable next_free : int;
}

exception Out_of_window of int

let create ~words ~access_latency =
  {
    data = Array.make words 0;
    latency = access_latency;
    windows = [];
    next_free = 0;
  }

let capacity_words t = Array.length t.data

let access_latency t = t.latency

let overlaps a_base a_words b_base b_words =
  let a_end = a_base + (a_words * Phys_mem.word_bytes) in
  let b_end = b_base + (b_words * Phys_mem.word_bytes) in
  a_base < b_end && b_base < a_end

let map_window t ~base ~words =
  if t.next_free + words > Array.length t.data then
    invalid_arg "Scratchpad.map_window: capacity exceeded";
  List.iter
    (fun w ->
      if overlaps base words w.base w.words then
        invalid_arg "Scratchpad.map_window: window overlap")
    t.windows;
  t.windows <- { base; words; local_word = t.next_free } :: t.windows;
  t.next_free <- t.next_free + words

let clear_windows t =
  t.windows <- [];
  t.next_free <- 0

let local_of_vaddr t vaddr =
  let rec go = function
    | [] -> raise (Out_of_window vaddr)
    | w :: rest ->
      let offset = vaddr - w.base in
      if offset >= 0 && offset < w.words * Phys_mem.word_bytes then
        w.local_word + (offset / Phys_mem.word_bytes)
      else go rest
  in
  go t.windows

let load t vaddr =
  let i = local_of_vaddr t vaddr in
  Vmht_sim.Engine.wait t.latency;
  t.data.(i)

let store t vaddr value =
  let i = local_of_vaddr t vaddr in
  Vmht_sim.Engine.wait t.latency;
  t.data.(i) <- value

let read_local t i = t.data.(i)

let write_local t i v = t.data.(i) <- v

let used_words t = t.next_free
