(** Accelerator-local scratchpad (BRAM) with a virtual-window mapping.

    In the copy-based (DMA) interface style the accelerator's memory
    accesses go to on-chip BRAM.  The scratchpad is presented as a set
    of *windows*: each window aliases a range of the thread's virtual
    address space onto a scratchpad region, so pointers embedded in the
    copied data keep working as long as they stay inside a window (the
    classic virtual-window technique copy-based interfaces rely on).
    Accesses outside every window raise {!Out_of_window} — modeling the
    restriction the paper's VM-enabled threads remove. *)

type t

exception Out_of_window of int

val create : words:int -> access_latency:int -> t

val capacity_words : t -> int

val access_latency : t -> int

val map_window : t -> base:int -> words:int -> unit
(** Bind the next free scratchpad region to virtual range
    [\[base, base + 8*words)].  Raises [Invalid_argument] if capacity is
    exceeded or the range overlaps an existing window. *)

val clear_windows : t -> unit

val load : t -> int -> int
(** Timed (process context): window-translated scratchpad read. *)

val store : t -> int -> int -> unit

val read_local : t -> int -> int
(** Untimed access by scratchpad word index (used by the DMA engine). *)

val write_local : t -> int -> int -> unit

val local_of_vaddr : t -> int -> int
(** Word index a virtual address maps to; raises {!Out_of_window}. *)

val used_words : t -> int
