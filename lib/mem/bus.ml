module Resource = Vmht_sim.Resource
module Event = Vmht_obs.Event
module Fi = Vmht_fault.Injector
module Fp = Vmht_fault.Plan

type stats = {
  reads : int;
  writes : int;
  words_moved : int;
  bus : Resource.stats;
}

type t = {
  arbitration_cycles : int;
  mem : Phys_mem.t;
  dram : Dram.t;
  resource : Resource.t;
  mutable reads : int;
  mutable writes : int;
  mutable words_moved : int;
  mutable observer : Event.emitter option;
  mutable fault : Fi.t option;
}

let create ?(arbitration_cycles = 2) mem dram =
  {
    arbitration_cycles;
    mem;
    dram;
    resource = Resource.create ~name:"bus";
    reads = 0;
    writes = 0;
    words_moved = 0;
    observer = None;
    fault = None;
  }

let phys t = t.mem

let set_observer t f = t.observer <- Some f

let set_fault t inj = t.fault <- Some inj

let emit t ~duration kind =
  match t.observer with Some f -> f ~duration kind | None -> ()

(* Stretch one transaction's latency when the injector fires: a slave
   error costs the error turnaround plus a full re-issue (fresh
   arbitration + DRAM access); a contention window just holds the bus
   longer.  The injection is recorded after the wait so the emitted
   event spans cycles the transaction actually paid. *)
let with_fault t ~addr latency =
  match t.fault with
  | None -> (latency, None)
  | Some inj ->
    let plan = Fi.plan inj in
    if Fi.fires inj ~rate:plan.Fp.bus_error_rate then begin
      let extra =
        plan.Fp.bus_error_cycles + t.arbitration_cycles
        + Dram.access_latency t.dram ~addr
      in
      (latency + extra, Some ("bus_error", extra))
    end
    else if Fi.fires inj ~rate:plan.Fp.bus_contention_rate then
      let extra = plan.Fp.bus_contention_cycles in
      (latency + extra, Some ("bus_contention", extra))
    else (latency, None)

let record_fault t = function
  | None -> ()
  | Some (fault, cycles) -> (
    match t.fault with
    | Some inj -> Fi.injected inj ~fault ~cycles
    | None -> ())

let read_word t addr =
  Resource.acquire t.resource;
  let latency, fault =
    with_fault t ~addr (t.arbitration_cycles + Dram.access_latency t.dram ~addr)
  in
  Vmht_sim.Engine.wait latency;
  let v = Phys_mem.read t.mem addr in
  Resource.release t.resource;
  t.reads <- t.reads + 1;
  t.words_moved <- t.words_moved + 1;
  record_fault t fault;
  emit t ~duration:latency (Event.Bus_txn { op = Event.Read; addr; words = 1 });
  v

let write_word t addr value =
  Resource.acquire t.resource;
  let latency, fault =
    with_fault t ~addr (t.arbitration_cycles + Dram.access_latency t.dram ~addr)
  in
  Vmht_sim.Engine.wait latency;
  Phys_mem.write t.mem addr value;
  Resource.release t.resource;
  t.writes <- t.writes + 1;
  t.words_moved <- t.words_moved + 1;
  record_fault t fault;
  emit t ~duration:latency (Event.Bus_txn { op = Event.Write; addr; words = 1 })

let read_burst t ~addr ~words =
  Resource.acquire t.resource;
  let latency, fault =
    with_fault t ~addr
      (t.arbitration_cycles + Dram.burst_latency t.dram ~addr ~words)
  in
  Vmht_sim.Engine.wait latency;
  let data =
    Array.init words (fun i ->
        Phys_mem.read t.mem (addr + (i * Phys_mem.word_bytes)))
  in
  Resource.release t.resource;
  t.reads <- t.reads + 1;
  t.words_moved <- t.words_moved + words;
  record_fault t fault;
  emit t ~duration:latency (Event.Bus_txn { op = Event.Read; addr; words });
  data

let write_burst t ~addr data =
  let words = Array.length data in
  Resource.acquire t.resource;
  let latency, fault =
    with_fault t ~addr
      (t.arbitration_cycles + Dram.burst_latency t.dram ~addr ~words)
  in
  Vmht_sim.Engine.wait latency;
  Array.iteri
    (fun i v -> Phys_mem.write t.mem (addr + (i * Phys_mem.word_bytes)) v)
    data;
  Resource.release t.resource;
  t.writes <- t.writes + 1;
  t.words_moved <- t.words_moved + words;
  record_fault t fault;
  emit t ~duration:latency (Event.Bus_txn { op = Event.Write; addr; words })

let stats (t : t) : stats =
  {
    reads = t.reads;
    writes = t.writes;
    words_moved = t.words_moved;
    bus = Resource.stats t.resource;
  }

let utilization t ~total_cycles =
  Resource.utilization t.resource ~total_cycles
