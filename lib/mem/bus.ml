module Resource = Vmht_sim.Resource
module Event = Vmht_obs.Event

type stats = {
  reads : int;
  writes : int;
  words_moved : int;
  bus : Resource.stats;
}

type t = {
  arbitration_cycles : int;
  mem : Phys_mem.t;
  dram : Dram.t;
  resource : Resource.t;
  mutable reads : int;
  mutable writes : int;
  mutable words_moved : int;
  mutable observer : Event.emitter option;
}

let create ?(arbitration_cycles = 2) mem dram =
  {
    arbitration_cycles;
    mem;
    dram;
    resource = Resource.create ~name:"bus";
    reads = 0;
    writes = 0;
    words_moved = 0;
    observer = None;
  }

let phys t = t.mem

let set_observer t f = t.observer <- Some f

let emit t ~duration kind =
  match t.observer with Some f -> f ~duration kind | None -> ()

let read_word t addr =
  Resource.acquire t.resource;
  let latency = t.arbitration_cycles + Dram.access_latency t.dram ~addr in
  Vmht_sim.Engine.wait latency;
  let v = Phys_mem.read t.mem addr in
  Resource.release t.resource;
  t.reads <- t.reads + 1;
  t.words_moved <- t.words_moved + 1;
  emit t ~duration:latency (Event.Bus_txn { op = Event.Read; addr; words = 1 });
  v

let write_word t addr value =
  Resource.acquire t.resource;
  let latency = t.arbitration_cycles + Dram.access_latency t.dram ~addr in
  Vmht_sim.Engine.wait latency;
  Phys_mem.write t.mem addr value;
  Resource.release t.resource;
  t.writes <- t.writes + 1;
  t.words_moved <- t.words_moved + 1;
  emit t ~duration:latency (Event.Bus_txn { op = Event.Write; addr; words = 1 })

let read_burst t ~addr ~words =
  Resource.acquire t.resource;
  let latency =
    t.arbitration_cycles + Dram.burst_latency t.dram ~addr ~words
  in
  Vmht_sim.Engine.wait latency;
  let data =
    Array.init words (fun i ->
        Phys_mem.read t.mem (addr + (i * Phys_mem.word_bytes)))
  in
  Resource.release t.resource;
  t.reads <- t.reads + 1;
  t.words_moved <- t.words_moved + words;
  emit t ~duration:latency (Event.Bus_txn { op = Event.Read; addr; words });
  data

let write_burst t ~addr data =
  let words = Array.length data in
  Resource.acquire t.resource;
  let latency =
    t.arbitration_cycles + Dram.burst_latency t.dram ~addr ~words
  in
  Vmht_sim.Engine.wait latency;
  Array.iteri
    (fun i v -> Phys_mem.write t.mem (addr + (i * Phys_mem.word_bytes)) v)
    data;
  Resource.release t.resource;
  t.writes <- t.writes + 1;
  t.words_moved <- t.words_moved + words;
  emit t ~duration:latency (Event.Bus_txn { op = Event.Write; addr; words })

let stats (t : t) : stats =
  {
    reads = t.reads;
    writes = t.writes;
    words_moved = t.words_moved;
    bus = Resource.stats t.resource;
  }

let utilization t ~total_cycles =
  Resource.utilization t.resource ~total_cycles
