module Resource = Vmht_sim.Resource

type stats = {
  reads : int;
  writes : int;
  words_moved : int;
  bus : Resource.stats;
}

type t = {
  arbitration_cycles : int;
  mem : Phys_mem.t;
  dram : Dram.t;
  resource : Resource.t;
  mutable reads : int;
  mutable writes : int;
  mutable words_moved : int;
  mutable tracer : (string -> unit) option;
}

let create ?(arbitration_cycles = 2) mem dram =
  {
    arbitration_cycles;
    mem;
    dram;
    resource = Resource.create ~name:"bus";
    reads = 0;
    writes = 0;
    words_moved = 0;
    tracer = None;
  }

let phys t = t.mem

let set_tracer t f = t.tracer <- Some f

let trace t fmt =
  Printf.ksprintf
    (fun s -> match t.tracer with Some f -> f s | None -> ())
    fmt

let read_word t addr =
  Resource.acquire t.resource;
  let latency = t.arbitration_cycles + Dram.access_latency t.dram ~addr in
  Vmht_sim.Engine.wait latency;
  let v = Phys_mem.read t.mem addr in
  Resource.release t.resource;
  t.reads <- t.reads + 1;
  t.words_moved <- t.words_moved + 1;
  trace t "rd  0x%06x (%d cycles)" addr latency;
  v

let write_word t addr value =
  Resource.acquire t.resource;
  let latency = t.arbitration_cycles + Dram.access_latency t.dram ~addr in
  Vmht_sim.Engine.wait latency;
  Phys_mem.write t.mem addr value;
  Resource.release t.resource;
  t.writes <- t.writes + 1;
  t.words_moved <- t.words_moved + 1;
  trace t "wr  0x%06x (%d cycles)" addr latency

let read_burst t ~addr ~words =
  Resource.acquire t.resource;
  let latency =
    t.arbitration_cycles + Dram.burst_latency t.dram ~addr ~words
  in
  Vmht_sim.Engine.wait latency;
  let data =
    Array.init words (fun i ->
        Phys_mem.read t.mem (addr + (i * Phys_mem.word_bytes)))
  in
  Resource.release t.resource;
  t.reads <- t.reads + 1;
  t.words_moved <- t.words_moved + words;
  trace t "rdB 0x%06x x%d (%d cycles)" addr words latency;
  data

let write_burst t ~addr data =
  let words = Array.length data in
  Resource.acquire t.resource;
  let latency =
    t.arbitration_cycles + Dram.burst_latency t.dram ~addr ~words
  in
  Vmht_sim.Engine.wait latency;
  Array.iteri
    (fun i v -> Phys_mem.write t.mem (addr + (i * Phys_mem.word_bytes)) v)
    data;
  Resource.release t.resource;
  t.writes <- t.writes + 1;
  t.words_moved <- t.words_moved + words;
  trace t "wrB 0x%06x x%d (%d cycles)" addr words latency

let stats (t : t) : stats =
  {
    reads = t.reads;
    writes = t.writes;
    words_moved = t.words_moved;
    bus = Resource.stats t.resource;
  }

let utilization t ~total_cycles =
  Resource.utilization t.resource ~total_cycles
