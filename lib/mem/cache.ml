type config = {
  size_bytes : int;
  line_bytes : int;
  ways : int;
  hit_latency : int;
}

let default_config =
  { size_bytes = 16384; line_bytes = 32; ways = 4; hit_latency = 1 }

type stats = {
  read_hits : int;
  read_misses : int;
  write_hits : int;
  write_misses : int;
  writebacks : int;
  invalidations : int;
}

type line = {
  mutable valid : bool;
  mutable dirty : bool;
  mutable tag : int;
  mutable phys_base : int; (* physical address of the line's first byte *)
  mutable last_use : int;
  mutable data : int array;
}

type t = {
  config : config;
  bus : Bus.t;
  sets : line array array;
  mutable clock : int;
  mutable read_hits : int;
  mutable read_misses : int;
  mutable write_hits : int;
  mutable write_misses : int;
  mutable writebacks : int;
  mutable invalidations : int;
  mutable observer : Vmht_obs.Event.emitter option;
}

let create ?(config = default_config) bus =
  let lines = config.size_bytes / config.line_bytes in
  let n_sets = max 1 (lines / config.ways) in
  assert (Vmht_util.Bits.is_pow2 config.line_bytes);
  let words_per_line = config.line_bytes / Phys_mem.word_bytes in
  {
    config;
    bus;
    sets =
      Array.init n_sets (fun _ ->
          Array.init config.ways (fun _ ->
              {
                valid = false;
                dirty = false;
                tag = -1;
                phys_base = 0;
                last_use = 0;
                data = Array.make words_per_line 0;
              }));
    clock = 0;
    read_hits = 0;
    read_misses = 0;
    write_hits = 0;
    write_misses = 0;
    writebacks = 0;
    invalidations = 0;
    observer = None;
  }

let set_observer t f = t.observer <- Some f

let set_and_tag t addr =
  let line_addr = addr / t.config.line_bytes in
  let n_sets = Array.length t.sets in
  (line_addr mod n_sets, line_addr / n_sets)

let word_in_line t addr = addr mod t.config.line_bytes / Phys_mem.word_bytes

let find_line t set tag =
  let lines = t.sets.(set) in
  let rec go i =
    if i >= Array.length lines then None
    else if lines.(i).valid && lines.(i).tag = tag then Some lines.(i)
    else go (i + 1)
  in
  go 0

let victim t set =
  let lines = t.sets.(set) in
  let best = ref lines.(0) in
  Array.iter
    (fun l ->
      if not l.valid then best := l
      else if !best.valid && l.last_use < !best.last_use then best := l)
    lines;
  !best

let write_back t line =
  if line.valid && line.dirty then begin
    t.writebacks <- t.writebacks + 1;
    Bus.write_burst t.bus ~addr:line.phys_base (Array.copy line.data);
    line.dirty <- false
  end

(* Bring the line containing [addr]/[phys] into the cache, evicting
   (and writing back) the victim.  Returns the filled line. *)
let fill t addr phys =
  let set, tag = set_and_tag t addr in
  let line_base_phys = Vmht_util.Bits.align_down phys t.config.line_bytes in
  let words = t.config.line_bytes / Phys_mem.word_bytes in
  let line = victim t set in
  write_back t line;
  let data = Bus.read_burst t.bus ~addr:line_base_phys ~words in
  line.valid <- true;
  line.dirty <- false;
  line.tag <- tag;
  line.phys_base <- line_base_phys;
  line.last_use <- t.clock;
  line.data <- data;
  line

let read t ~addr ~phys =
  t.clock <- t.clock + 1;
  let set, tag = set_and_tag t addr in
  match find_line t set tag with
  | Some line ->
    t.read_hits <- t.read_hits + 1;
    line.last_use <- t.clock;
    Vmht_sim.Engine.wait t.config.hit_latency;
    (match t.observer with
    | Some f ->
      f ~duration:t.config.hit_latency
        (Vmht_obs.Event.Cache_hit { op = Vmht_obs.Event.Read; addr })
    | None -> ());
    line.data.(word_in_line t addr)
  | None ->
    t.read_misses <- t.read_misses + 1;
    (match t.observer with
    | Some f ->
      let t0 = Vmht_sim.Engine.now_p () in
      let line = fill t addr phys in
      let duration = Vmht_sim.Engine.now_p () - t0 in
      f ~duration (Vmht_obs.Event.Cache_miss { op = Vmht_obs.Event.Read; addr });
      line.data.(word_in_line t addr)
    | None ->
      let line = fill t addr phys in
      line.data.(word_in_line t addr))

let write t ~addr ~phys value =
  t.clock <- t.clock + 1;
  let set, tag = set_and_tag t addr in
  let line =
    match find_line t set tag with
    | Some line ->
      t.write_hits <- t.write_hits + 1;
      Vmht_sim.Engine.wait t.config.hit_latency;
      (match t.observer with
      | Some f ->
        f ~duration:t.config.hit_latency
          (Vmht_obs.Event.Cache_hit { op = Vmht_obs.Event.Write; addr })
      | None -> ());
      line
    | None ->
      t.write_misses <- t.write_misses + 1;
      (match t.observer with
      | Some f ->
        let t0 = Vmht_sim.Engine.now_p () in
        let line = fill t addr phys in
        let duration = Vmht_sim.Engine.now_p () - t0 in
        f ~duration
          (Vmht_obs.Event.Cache_miss { op = Vmht_obs.Event.Write; addr });
        line
      | None -> fill t addr phys)
  in
  line.last_use <- t.clock;
  line.data.(word_in_line t addr) <- value;
  line.dirty <- true

let flush t =
  Array.iter (fun set -> Array.iter (write_back t) set) t.sets

(* Dirty lines are written back before the kill: silently discarding
   them would lose stores that never reached memory (the bug class a
   host invalidate after accelerator completion must not have). *)
let invalidate_all t =
  t.invalidations <- t.invalidations + 1;
  Array.iter
    (fun set ->
      Array.iter
        (fun l ->
          write_back t l;
          l.valid <- false)
        set)
    t.sets

let dirty_lines t =
  Array.fold_left
    (fun acc set ->
      acc
      + Array.fold_left
          (fun a l -> if l.valid && l.dirty then a + 1 else a)
          0 set)
    0 t.sets

let stats (t : t) : stats =
  {
    read_hits = t.read_hits;
    read_misses = t.read_misses;
    write_hits = t.write_hits;
    write_misses = t.write_misses;
    writebacks = t.writebacks;
    invalidations = t.invalidations;
  }

let hit_rate t =
  let total = t.read_hits + t.read_misses in
  if total = 0 then 0. else float_of_int t.read_hits /. float_of_int total
