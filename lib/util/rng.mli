(** Deterministic splittable pseudo-random number generator.

    All randomness in the simulator, the workload generators and the
    property tests flows through this module so that every experiment is
    exactly reproducible from a seed.  The generator is a 64-bit
    SplitMix64; [split] derives an independent stream, which lets each
    component of a simulated system own its own stream without
    cross-component ordering effects. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val next : t -> int
(** [next t] returns a uniformly distributed non-negative 62-bit int. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** [pick t a] is a uniformly chosen element of the non-empty array [a]. *)
