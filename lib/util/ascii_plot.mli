(** Terminal "figures": render one or more (x, y) series as an ASCII
    scatter/line chart, plus a data listing.  This is how the benchmark
    harness regenerates the paper's figures without graphics tooling. *)

type series = { label : string; points : (float * float) list }

val render :
  ?width:int ->
  ?height:int ->
  ?logx:bool ->
  ?logy:bool ->
  title:string ->
  xlabel:string ->
  ylabel:string ->
  series list ->
  string
(** Render the chart area with one glyph per series and axis ranges in
    the margins.  Series glyphs cycle through [*], [o], [+], [x], [#].
    [logx]/[logy] plot on a log10 scale (points <= 0 are dropped). *)

val waterfall :
  ?width:int -> title:string -> unit:string -> (string * float) list -> string
(** Cumulative horizontal-bar chart: each labeled segment's bar starts
    where the previous one ended, so a cycle breakdown reads as a
    left-to-right timeline.  Every row shows the segment's value and
    its share of the total.  [unit] names the quantity ("cycles"). *)

val print :
  ?width:int ->
  ?height:int ->
  ?logx:bool ->
  ?logy:bool ->
  title:string ->
  xlabel:string ->
  ylabel:string ->
  series list ->
  unit
