type row = Cells of string list | Separator

type t = {
  title : string;
  headers : string list;
  mutable rows : row list; (* reverse order *)
}

let create ~title ~headers = { title; headers; rows = [] }

let add_row t cells = t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let is_numeric s =
  s <> ""
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+'
                 || c = ',' || c = '%' || c = 'x' || c = 'e')
       s
  && String.exists (fun c -> c >= '0' && c <= '9') s

let pad width align s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with `Left -> s ^ fill | `Right -> fill ^ s

let render t =
  let ncols = List.length t.headers in
  let normalize cells =
    let n = List.length cells in
    if n >= ncols then cells
    else cells @ List.init (ncols - n) (fun _ -> "")
  in
  let rows = List.rev t.rows in
  let all_cell_rows =
    t.headers
    :: List.filter_map
         (function Cells c -> Some (normalize c) | Separator -> None)
         rows
  in
  let widths = Array.make ncols 0 in
  let note_widths cells =
    List.iteri
      (fun i c ->
        if i < ncols then widths.(i) <- max widths.(i) (String.length c))
      cells
  in
  List.iter note_widths all_cell_rows;
  let buf = Buffer.create 1024 in
  let rule () =
    Array.iter
      (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-'))
      widths;
    Buffer.add_string buf "+\n"
  in
  let line cells =
    let cells = normalize cells in
    List.iteri
      (fun i c ->
        if i < ncols then begin
          let align = if is_numeric c then `Right else `Left in
          Buffer.add_string buf ("| " ^ pad widths.(i) align c ^ " ")
        end)
      cells;
    Buffer.add_string buf "|\n"
  in
  if t.title <> "" then Buffer.add_string buf (t.title ^ "\n");
  rule ();
  line t.headers;
  rule ();
  List.iter (function Cells c -> line c | Separator -> rule ()) rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t ^ "\n")

let fmt_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + 4) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fmt_float ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f
