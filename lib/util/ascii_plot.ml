type series = { label : string; points : (float * float) list }

let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |]

let render ?(width = 64) ?(height = 18) ?(logx = false) ?(logy = false)
    ~title ~xlabel ~ylabel series =
  let tx v = if logx then log10 v else v in
  let ty v = if logy then log10 v else v in
  let keep (x, y) = (not (logx && x <= 0.)) && not (logy && y <= 0.) in
  let pts =
    List.concat_map (fun s -> List.filter keep s.points) series
    |> List.map (fun (x, y) -> (tx x, ty y))
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (title ^ "\n");
  (match pts with
   | [] -> Buffer.add_string buf "  (no data)\n"
   | (x0, y0) :: _ ->
     let fold f init = List.fold_left f init pts in
     let xmin = fold (fun a (x, _) -> min a x) x0 in
     let xmax = fold (fun a (x, _) -> max a x) x0 in
     let ymin = fold (fun a (_, y) -> min a y) y0 in
     let ymax = fold (fun a (_, y) -> max a y) y0 in
     let xspan = if xmax -. xmin = 0. then 1. else xmax -. xmin in
     let yspan = if ymax -. ymin = 0. then 1. else ymax -. ymin in
     let grid = Array.make_matrix height width ' ' in
     let plot_series idx s =
       let g = glyphs.(idx mod Array.length glyphs) in
       List.iter
         (fun (x, y) ->
           if keep (x, y) then begin
             let x = tx x and y = ty y in
             let cx =
               int_of_float ((x -. xmin) /. xspan *. float_of_int (width - 1))
             in
             let cy =
               height - 1
               - int_of_float ((y -. ymin) /. yspan *. float_of_int (height - 1))
             in
             if cx >= 0 && cx < width && cy >= 0 && cy < height then
               grid.(cy).(cx) <- g
           end)
         s.points
     in
     List.iteri plot_series series;
     let untx v = if logx then (10. ** v) else v in
     let unty v = if logy then (10. ** v) else v in
     Buffer.add_string buf
       (Printf.sprintf "  %s (top=%.4g, bottom=%.4g)%s\n" ylabel (unty ymax)
          (unty ymin)
          (if logy then " [log]" else ""));
     Array.iter
       (fun row ->
         Buffer.add_string buf "  |";
         Array.iter (Buffer.add_char buf) row;
         Buffer.add_char buf '\n')
       grid;
     Buffer.add_string buf ("  +" ^ String.make width '-' ^ "\n");
     Buffer.add_string buf
       (Printf.sprintf "   %s: %.4g .. %.4g%s\n" xlabel (untx xmin) (untx xmax)
          (if logx then " [log]" else "")));
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf "   %c = %s\n" glyphs.(i mod Array.length glyphs)
           s.label))
    series;
  (* Data listing so the figure's numbers are machine-readable too. *)
  List.iter
    (fun s ->
      Buffer.add_string buf (Printf.sprintf "   data[%s]:" s.label);
      List.iter
        (fun (x, y) -> Buffer.add_string buf (Printf.sprintf " (%g, %g)" x y))
        s.points;
      Buffer.add_char buf '\n')
    series;
  Buffer.contents buf

let waterfall ?(width = 48) ~title ~unit segments =
  let total = List.fold_left (fun acc (_, v) -> acc +. v) 0. segments in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%s (total %.0f %s)\n" title total unit);
  if total <= 0. then Buffer.add_string buf "  (no cycles attributed)\n"
  else begin
    let label_w =
      List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 segments
    in
    (* Cumulative offsets: each segment's bar starts where the previous
       one ended, so the chart reads as a timeline left to right. *)
    let cells v = v /. total *. float_of_int width in
    let _ =
      List.fold_left
        (fun offset (label, v) ->
          let start = int_of_float (Float.round (cells offset)) in
          let stop = int_of_float (Float.round (cells (offset +. v))) in
          let start = min start width and stop = min stop width in
          (* Non-zero segments always get at least one cell. *)
          let stop = if v > 0. && stop <= start then start + 1 else stop in
          let stop = min stop width in
          let bar =
            String.make start ' '
            ^ String.make (max 0 (stop - start)) '#'
            ^ String.make (max 0 (width - stop)) ' '
          in
          Buffer.add_string buf
            (Printf.sprintf "  %-*s |%s| %12.0f  %5.1f%%\n" label_w label bar
               v
               (100. *. v /. total));
          offset +. v)
        0. segments
    in
    ()
  end;
  Buffer.contents buf

let print ?width ?height ?logx ?logy ~title ~xlabel ~ylabel series =
  print_string
    (render ?width ?height ?logx ?logy ~title ~xlabel ~ylabel series ^ "\n")
