(** Small descriptive-statistics helpers used by the evaluation harness. *)

val mean : float list -> float
(** Arithmetic mean; 0. on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0. on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0. on lists shorter than 2. *)

val median : float list -> float
(** Median; 0. on the empty list. *)

val min_max : float list -> float * float
(** [(min, max)]; [(0., 0.)] on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] is the [p]-quantile ([0. <= p <= 1.], clamped) of
    [xs] with linear interpolation between order statistics; 0. on the
    empty list. *)

val quantile_bucket : q:float -> int array -> int
(** Index of the bucket containing the [q]-quantile of a histogram
    given per-bucket counts (the first populated bucket whose
    cumulative count reaches [q] of the total); -1 if all counts are
    zero.  Used by the metrics registry's log2 histograms. *)

val percent_delta : float -> float -> float
(** [percent_delta base v] is [(v - base) / base * 100.]. *)

val ratio : float -> float -> float
(** [ratio a b] is [a /. b], 0. if [b = 0.]. *)
