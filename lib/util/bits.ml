let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  assert (n > 0);
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let ceil_log2 n =
  assert (n > 0);
  let l = log2 n in
  if 1 lsl l = n then l else l + 1

let align_up v a =
  assert (is_pow2 a);
  (v + a - 1) land lnot (a - 1)

let align_down v a =
  assert (is_pow2 a);
  v land lnot (a - 1)

let extract v ~lo ~width = (v lsr lo) land ((1 lsl width) - 1)

let ceil_div a b = (a + b - 1) / b
