(** ASCII table rendering for the experiment harness.

    Columns are sized to their widest cell; numeric-looking cells are
    right-aligned, everything else is left-aligned. *)

type t

val create : title:string -> headers:string list -> t

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells. *)

val add_separator : t -> unit
(** Inserts a horizontal rule between the rows added before and after. *)

val render : t -> string
(** Render the whole table, title included, as a multi-line string. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val fmt_int : int -> string
(** Thousands-separated integer, e.g. [12_345] -> ["12,345"]. *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point float, default 2 decimals. *)
