(** Bit-manipulation helpers shared by the memory system and the MMU. *)

val is_pow2 : int -> bool
(** True for positive powers of two. *)

val log2 : int -> int
(** [log2 n] for positive [n] is the floor of log base 2. *)

val ceil_log2 : int -> int
(** Smallest [k] with [2^k >= n]; [n] must be positive. *)

val align_up : int -> int -> int
(** [align_up v a] rounds [v] up to a multiple of [a] (a power of two). *)

val align_down : int -> int -> int
(** [align_down v a] rounds [v] down to a multiple of [a] (a power of two). *)

val extract : int -> lo:int -> width:int -> int
(** [extract v ~lo ~width] is bits [lo .. lo+width-1] of [v]. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is [a / b] rounded up. *)
