let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.
  | xs ->
    let logs = List.map log xs in
    exp (mean logs)

let stddev = function
  | [] | [ _ ] -> 0.
  | xs ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) *. (x -. m)) xs) in
    sqrt var

let median = function
  | [] -> 0.
  | xs ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let min_max = function
  | [] -> (0., 0.)
  | x :: xs ->
    List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) xs

let percent_delta base v = if base = 0. then 0. else (v -. base) /. base *. 100.

let ratio a b = if b = 0. then 0. else a /. b
