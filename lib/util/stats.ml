let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.
  | xs ->
    let logs = List.map log xs in
    exp (mean logs)

let stddev = function
  | [] | [ _ ] -> 0.
  | xs ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) *. (x -. m)) xs) in
    sqrt var

let median = function
  | [] -> 0.
  | xs ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let min_max = function
  | [] -> (0., 0.)
  | x :: xs ->
    List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) xs

let percentile p = function
  | [] -> 0.
  | xs ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    let p = Float.max 0. (Float.min 1. p) in
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

let quantile_bucket ~q counts =
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then -1
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let target = q *. float_of_int total in
    let rec go i cum =
      if i >= Array.length counts then Array.length counts - 1
      else
        let cum = cum + counts.(i) in
        (* [cum > 0] keeps q = 0 off leading empty buckets. *)
        if cum > 0 && float_of_int cum >= target then i else go (i + 1) cum
    in
    go 0 0
  end

let percent_delta base v = if base = 0. then 0. else (v -. base) /. base *. 100.

let ratio a b = if b = 0. then 0. else a /. b
