type t = { mutable state : int }

(* SplitMix64-style generator on OCaml's native 63-bit int.  The
   increment and avalanche constants are the reference SplitMix64 ones
   truncated to fit a native-int literal; arithmetic is modulo 2^63,
   which preserves the mixing quality needed for simulation workloads. *)

let golden_gamma = 0x1E3779B97F4A7C15

let mix z =
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  z lxor (z lsr 31)

let create seed = { state = mix (seed * 0x2545F4914F6CDD1D + 1) }

let next_raw t =
  t.state <- t.state + golden_gamma;
  mix t.state

let next t = next_raw t land max_int

let split t =
  let s = next_raw t in
  { state = mix s }

let int t bound =
  assert (bound > 0);
  next t mod bound

let int_range t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let bool t = next t land 1 = 1

let float t bound = float_of_int (next t) /. float_of_int max_int *. bound

let shuffle t a =
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
