(* Sparse matrix-vector product over CSR: irregular gather reads with
   data-dependent loop bounds.  [size] is the row count; rows have
   [avg_nnz] entries on average. *)

let avg_nnz = 8

let source =
  {|
kernel spmv(rowptr: int*, colidx: int*, vals: int*, x: int*, y: int*, n: int) {
  var i: int;
  for (i = 0; i < n; i = i + 1) {
    var s: int = 0;
    var k: int;
    for (k = rowptr[i]; k < rowptr[i + 1]; k = k + 1) {
      s = s + vals[k] * x[colidx[k]];
    }
    y[i] = s;
  }
}
|}

let wb = Vmht_mem.Phys_mem.word_bytes

let setup aspace ~size ~seed =
  let n = size in
  let rng = Vmht_util.Rng.create seed in
  (* Build the CSR structure in OCaml first. *)
  let row_counts =
    Array.init n (fun _ -> Vmht_util.Rng.int_range rng 1 (2 * avg_nnz))
  in
  let rowptr = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    rowptr.(i + 1) <- rowptr.(i) + row_counts.(i)
  done;
  let nnz = rowptr.(n) in
  let colidx = Array.init nnz (fun _ -> Vmht_util.Rng.int rng n) in
  let vals = Array.init nnz (fun _ -> Vmht_util.Rng.int_range rng 1 50) in
  let x_vals = Array.init n (fun _ -> Vmht_util.Rng.int_range rng 0 50) in
  let rp = Workload.alloc_array aspace ~words:(n + 1) ~init:(fun i -> rowptr.(i)) in
  let ci = Workload.alloc_array aspace ~words:nnz ~init:(fun i -> colidx.(i)) in
  let vl = Workload.alloc_array aspace ~words:nnz ~init:(fun i -> vals.(i)) in
  let xv = Workload.alloc_array aspace ~words:n ~init:(fun i -> x_vals.(i)) in
  let yv = Workload.alloc_array aspace ~words:n ~init:(fun _ -> 0) in
  let expected i =
    let s = ref 0 in
    for k = rowptr.(i) to rowptr.(i + 1) - 1 do
      s := !s + (vals.(k) * x_vals.(colidx.(k)))
    done;
    !s
  in
  {
    Workload.args = [ rp; ci; vl; xv; yv; n ];
    buffers =
      [
        { Vmht.Launch.base = rp; words = n + 1; dir = Vmht.Launch.In };
        { Vmht.Launch.base = ci; words = nnz; dir = Vmht.Launch.In };
        { Vmht.Launch.base = vl; words = nnz; dir = Vmht.Launch.In };
        { Vmht.Launch.base = xv; words = n; dir = Vmht.Launch.In };
        { Vmht.Launch.base = yv; words = n; dir = Vmht.Launch.Out };
      ];
    expected_ret = None;
    check =
      (fun load ->
        let rec ok i =
          i >= n || (load (yv + (i * wb)) = expected i && ok (i + 1))
        in
        ok 0);
    data_words = n + 1 + (2 * nnz) + (2 * n);
  }

let workload =
  {
    Workload.name = "spmv";
    description = "CSR sparse matrix-vector product";
    source;
    pointer_based = false;
    pattern = "irregular-read";
    default_size = 1024;
    setup;
  }
