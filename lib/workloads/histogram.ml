(* 256-bin histogram: data-dependent scattered read-modify-writes. *)

let bins = 256

let source =
  {|
kernel histogram(a: int*, h: int*, n: int) {
  var i: int;
  for (i = 0; i < n; i = i + 1) {
    var v: int = a[i] & 255;
    h[v] = h[v] + 1;
  }
}
|}

let wb = Vmht_mem.Phys_mem.word_bytes

let setup aspace ~size ~seed =
  let rng = Vmht_util.Rng.create seed in
  let a_vals =
    Array.init size (fun _ -> Vmht_util.Rng.int_range rng 0 100_000)
  in
  let a = Workload.alloc_array aspace ~words:size ~init:(fun i -> a_vals.(i)) in
  let h = Workload.alloc_array aspace ~words:bins ~init:(fun _ -> 0) in
  let expected = Array.make bins 0 in
  Array.iter
    (fun v ->
      let b = v land (bins - 1) in
      expected.(b) <- expected.(b) + 1)
    a_vals;
  {
    Workload.args = [ a; h; size ];
    buffers =
      [
        { Vmht.Launch.base = a; words = size; dir = Vmht.Launch.In };
        { Vmht.Launch.base = h; words = bins; dir = Vmht.Launch.InOut };
      ];
    expected_ret = None;
    check =
      (fun load ->
        let rec ok i =
          i >= bins || (load (h + (i * wb)) = expected.(i) && ok (i + 1))
        in
        ok 0);
    data_words = size + bins;
  }

let workload =
  {
    Workload.name = "histogram";
    description = "256-bin histogram of an input stream";
    source;
    pointer_based = false;
    pattern = "irregular-write";
    default_size = 4096;
    setup;
  }
