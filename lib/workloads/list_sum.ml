(* Linked-list traversal: the paper's headline pointer-chasing case.

   The list lives in a fragmented heap: the arena holds [size] node
   slots (two words each), but only [size/32] of them belong to the
   traversed list — the rest model other live heap objects, as in any
   real pointer-linked working set.  A VM-enabled thread chases the
   virtual next-pointers and touches only the list's pages; the copy-
   based interface must stage the *entire* arena to chase any of it
   (embedded pointers make partial staging unsound), and fails outright
   once the arena outgrows the scratchpad. *)

let source =
  {|
kernel list_sum(head: int*) : int {
  var sum: int = 0;
  var p: int* = head;
  while (p != null) {
    sum = sum + p[0];
    p = (int*) p[1];
  }
  return sum;
}
|}

let wb = Vmht_mem.Phys_mem.word_bytes

let nodes_for_size size = max 4 (size / 32)

let setup aspace ~size ~seed =
  let slots = max 8 size in
  let n = nodes_for_size size in
  let rng = Vmht_util.Rng.create seed in
  let arena_words = 2 * slots in
  let arena =
    Workload.alloc_array aspace ~words:arena_words ~init:(fun i ->
        (* Background heap noise in the unused slots. *)
        i * 13)
  in
  (* Pick n distinct slots, scattered over the whole arena. *)
  let order = Array.init slots Fun.id in
  Vmht_util.Rng.shuffle rng order;
  let chosen = Array.sub order 0 n in
  let payloads = Array.init n (fun _ -> Vmht_util.Rng.int_range rng 0 1000) in
  let node_addr slot = arena + (2 * slot * wb) in
  Array.iteri
    (fun pos slot ->
      let next = if pos = n - 1 then 0 else node_addr chosen.(pos + 1) in
      Vmht_vm.Addr_space.store_word aspace (node_addr slot) payloads.(pos);
      Vmht_vm.Addr_space.store_word aspace (node_addr slot + wb) next)
    chosen;
  let head = node_addr chosen.(0) in
  let expected = Array.fold_left ( + ) 0 payloads in
  {
    Workload.args = [ head ];
    buffers =
      [ { Vmht.Launch.base = arena; words = arena_words; dir = Vmht.Launch.In } ];
    expected_ret = Some expected;
    check = (fun _ -> true);
    data_words = arena_words;
  }

let workload =
  {
    Workload.name = "list_sum";
    description =
      "sum of a sparse linked list scattered through a fragmented heap";
    source;
    pointer_based = true;
    pattern = "pointer-chase";
    default_size = 8192;
    setup;
  }
