(* Dot product: a streaming reduction with a scalar result, so the
   copy-based style pays the staging cost without any output DMA. *)

let source =
  {|
kernel dotprod(a: int*, b: int*, n: int) : int {
  var s: int = 0;
  var i: int;
  for (i = 0; i < n; i = i + 1) {
    s = s + a[i] * b[i];
  }
  return s;
}
|}

let setup aspace ~size ~seed =
  let rng = Vmht_util.Rng.create seed in
  let a_vals = Array.init size (fun _ -> Vmht_util.Rng.int_range rng 0 100) in
  let b_vals = Array.init size (fun _ -> Vmht_util.Rng.int_range rng 0 100) in
  let a = Workload.alloc_array aspace ~words:size ~init:(fun i -> a_vals.(i)) in
  let b = Workload.alloc_array aspace ~words:size ~init:(fun i -> b_vals.(i)) in
  let expected = ref 0 in
  for i = 0 to size - 1 do
    expected := !expected + (a_vals.(i) * b_vals.(i))
  done;
  {
    Workload.args = [ a; b; size ];
    buffers =
      [
        { Vmht.Launch.base = a; words = size; dir = Vmht.Launch.In };
        { Vmht.Launch.base = b; words = size; dir = Vmht.Launch.In };
      ];
    expected_ret = Some !expected;
    check = (fun _ -> true);
    data_words = 2 * size;
  }

let workload =
  {
    Workload.name = "dotprod";
    description = "dot-product reduction returning a scalar";
    source;
    pointer_based = false;
    pattern = "streaming";
    default_size = 4096;
    setup;
  }
