(* 3-point 1-D stencil: streaming with spatial reuse (each input word
   is read three times, which the VM interface turns into TLB hits). *)

let source =
  {|
kernel stencil3(a: int*, b: int*, nm1: int) {
  var i: int;
  for (i = 1; i < nm1; i = i + 1) {
    b[i] = (a[i - 1] + a[i] + a[i + 1]) / 3;
  }
}
|}

let wb = Vmht_mem.Phys_mem.word_bytes

let setup aspace ~size ~seed =
  let rng = Vmht_util.Rng.create seed in
  let a_vals = Array.init size (fun _ -> Vmht_util.Rng.int_range rng 0 999) in
  let a = Workload.alloc_array aspace ~words:size ~init:(fun i -> a_vals.(i)) in
  let b = Workload.alloc_array aspace ~words:size ~init:(fun _ -> 0) in
  {
    Workload.args = [ a; b; size - 1 ];
    buffers =
      [
        { Vmht.Launch.base = a; words = size; dir = Vmht.Launch.In };
        { Vmht.Launch.base = b; words = size; dir = Vmht.Launch.Out };
      ];
    expected_ret = None;
    check =
      (fun load ->
        let rec ok i =
          i >= size - 1
          || load (b + (i * wb))
             = (a_vals.(i - 1) + a_vals.(i) + a_vals.(i + 1)) / 3
             && ok (i + 1)
        in
        ok 1);
    data_words = 2 * size;
  }

let workload =
  {
    Workload.name = "stencil3";
    description = "3-point 1-D stencil smoothing";
    source;
    pointer_based = false;
    pattern = "streaming+reuse";
    default_size = 4096;
    setup;
  }
