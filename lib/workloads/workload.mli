(** The benchmark-kernel interface.

    A workload bundles an HTL kernel with everything needed to run it
    in all three execution styles: a setup routine that materializes
    its data in a given address space, the launch request (argument
    words + buffer list with DMA directions), the expected return
    value, and a result checker that re-derives the expected outputs
    from the inputs. *)

type instance = {
  args : int list;
  buffers : Vmht.Launch.buffer list;
  expected_ret : int option;
  check : (int -> int) -> bool;
      (** [check load_word] validates outputs after a run *)
  data_words : int; (** total words across buffers *)
}

type t = {
  name : string;
  description : string;
  source : string;
  pointer_based : bool;
  pattern : string; (** access-pattern class for Table 1 *)
  default_size : int;
  setup : Vmht_vm.Addr_space.t -> size:int -> seed:int -> instance;
}

val kernel : t -> Vmht_lang.Ast.kernel
(** Parse + typecheck the workload's kernel (cached per call site). *)

(** {2 Setup helpers} *)

val alloc_array :
  Vmht_vm.Addr_space.t -> words:int -> init:(int -> int) -> int
(** Allocate an eager buffer and initialize word [i] to [init i];
    returns the base virtual address. *)

val read_array : (int -> int) -> base:int -> words:int -> int list
(** Load a whole buffer through a word reader. *)
