let all =
  [
    Vecadd.workload;
    Saxpy.workload;
    Dotprod.workload;
    Stencil3.workload;
    Mmul.workload;
    Histogram.workload;
    Spmv.workload;
    Bfs.workload;
    List_sum.workload;
    Tree_search.workload;
  ]

let find name = List.find (fun w -> w.Workload.name = name) all

let names = List.map (fun w -> w.Workload.name) all
