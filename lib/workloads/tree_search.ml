(* Batch lookups in a binary search tree.  Nodes are three words
   [key; left-vaddr; right-vaddr]; a balanced tree over [size] keys is
   probed with [size/2] queries (half present, half absent).  Pointer-
   based, so the copy-based style stages the whole tree arena. *)

let source =
  {|
kernel tree_search(root: int*, queries: int*, nq: int) : int {
  var hits: int = 0;
  var i: int;
  for (i = 0; i < nq; i = i + 1) {
    var key: int = queries[i];
    var p: int* = root;
    var found: int = 0;
    while (p != null && found == 0) {
      var k: int = p[0];
      if (key == k) {
        found = 1;
      } else {
        if (key < k) {
          p = (int*) p[1];
        } else {
          p = (int*) p[2];
        }
      }
    }
    hits = hits + found;
  }
  return hits;
}
|}

let wb = Vmht_mem.Phys_mem.word_bytes

let setup aspace ~size ~seed =
  let n = max 1 size in
  let rng = Vmht_util.Rng.create seed in
  (* Distinct sorted keys: strictly increasing with random gaps. *)
  let keys = Array.make n 0 in
  let cur = ref 0 in
  for i = 0 to n - 1 do
    cur := !cur + Vmht_util.Rng.int_range rng 1 5;
    keys.(i) <- !cur
  done;
  let arena_words = 3 * n in
  let arena =
    Workload.alloc_array aspace ~words:arena_words ~init:(fun _ -> 0)
  in
  (* Scatter the node slots so tree edges jump across the arena. *)
  let slots = Array.init n Fun.id in
  Vmht_util.Rng.shuffle rng slots;
  let node_addr i = arena + (3 * slots.(i) * wb) in
  let store = Vmht_vm.Addr_space.store_word aspace in
  (* Build a balanced BST over keys[lo..hi]; returns the subtree root's
     node id (= key index) or none for an empty range. *)
  let rec build lo hi =
    if lo > hi then None
    else begin
      let mid = (lo + hi) / 2 in
      let addr = node_addr mid in
      let left = build lo (mid - 1) in
      let right = build (mid + 1) hi in
      store addr keys.(mid);
      store (addr + wb) (match left with Some a -> a | None -> 0);
      store (addr + (2 * wb)) (match right with Some a -> a | None -> 0);
      Some addr
    end
  in
  let root = match build 0 (n - 1) with Some a -> a | None -> 0 in
  (* Few queries over a big tree: the traversal touches a small
     fraction of the arena, which is where shared virtual memory beats
     staging the whole structure. *)
  let nq = max 8 (n / 512) in
  let queries =
    Array.init nq (fun i ->
        if i mod 2 = 0 then keys.(Vmht_util.Rng.int rng n) (* present *)
        else !cur + 10 + Vmht_util.Rng.int rng 1000 (* absent *))
  in
  let qbuf =
    Workload.alloc_array aspace ~words:nq ~init:(fun i -> queries.(i))
  in
  let expected =
    Array.fold_left
      (fun acc q ->
        if Array.exists (fun k -> k = q) keys then acc + 1 else acc)
      0 queries
  in
  {
    Workload.args = [ root; qbuf; nq ];
    buffers =
      [
        { Vmht.Launch.base = arena; words = arena_words; dir = Vmht.Launch.In };
        { Vmht.Launch.base = qbuf; words = nq; dir = Vmht.Launch.In };
      ];
    expected_ret = Some expected;
    check = (fun _ -> true);
    data_words = arena_words + nq;
  }

let workload =
  {
    Workload.name = "tree_search";
    description = "sparse lookups in a large scattered binary search tree";
    source;
    pointer_based = true;
    pattern = "pointer-chase";
    default_size = 8192;
    setup;
  }
