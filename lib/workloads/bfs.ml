(* Breadth-first search over a CSR graph: data-dependent control flow,
   a frontier queue living in shared memory, and scattered reads and
   writes — the irregular class the pthreads-style programming model is
   meant to make easy to accelerate.  The kernel returns the number of
   visited vertices and fills [dist] with hop counts. *)

let avg_degree = 4

let source =
  {|
kernel bfs(rowptr: int*, colidx: int*, dist: int*, queue: int*, root: int) : int {
  var head: int = 0;
  var tail: int = 0;
  queue[tail] = root;
  tail = tail + 1;
  dist[root] = 0;
  var visited: int = 0;
  while (head < tail) {
    var u: int = queue[head];
    head = head + 1;
    visited = visited + 1;
    var du: int = dist[u];
    var k: int;
    for (k = rowptr[u]; k < rowptr[u + 1]; k = k + 1) {
      var v: int = colidx[k];
      if (dist[v] < 0) {
        dist[v] = du + 1;
        queue[tail] = v;
        tail = tail + 1;
      }
    }
  }
  return visited;
}
|}

let wb = Vmht_mem.Phys_mem.word_bytes

(* Reference BFS in OCaml over the same CSR arrays. *)
let reference_bfs ~n ~rowptr ~colidx ~root =
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(root) <- 0;
  Queue.add root queue;
  let visited = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    incr visited;
    for k = rowptr.(u) to rowptr.(u + 1) - 1 do
      let v = colidx.(k) in
      if dist.(v) < 0 then begin
        dist.(v) <- dist.(u) + 1;
        Queue.add v queue
      end
    done
  done;
  (dist, !visited)

let setup aspace ~size ~seed =
  let n = max 2 size in
  let rng = Vmht_util.Rng.create seed in
  (* Random sparse digraph with a spanning back-edge so most of the
     graph is reachable from the root. *)
  let adjacency =
    Array.init n (fun u ->
        let extra =
          List.init (Vmht_util.Rng.int rng (2 * avg_degree)) (fun _ ->
              Vmht_util.Rng.int rng n)
        in
        (* Edge u -> u+1 keeps the graph largely connected. *)
        if u + 1 < n then (u + 1) :: extra else extra)
  in
  let rowptr = Array.make (n + 1) 0 in
  Array.iteri
    (fun u nbrs -> rowptr.(u + 1) <- rowptr.(u) + List.length nbrs)
    adjacency;
  let m = rowptr.(n) in
  let colidx = Array.make (max m 1) 0 in
  Array.iteri
    (fun u nbrs ->
      List.iteri (fun i v -> colidx.(rowptr.(u) + i) <- v) nbrs)
    adjacency;
  let root = 0 in
  let expected_dist, expected_visited =
    reference_bfs ~n ~rowptr ~colidx ~root
  in
  let rp = Workload.alloc_array aspace ~words:(n + 1) ~init:(fun i -> rowptr.(i)) in
  let ci =
    Workload.alloc_array aspace ~words:(max m 1) ~init:(fun i -> colidx.(i))
  in
  let di = Workload.alloc_array aspace ~words:n ~init:(fun _ -> -1) in
  let qu = Workload.alloc_array aspace ~words:n ~init:(fun _ -> 0) in
  {
    Workload.args = [ rp; ci; di; qu; root ];
    buffers =
      [
        { Vmht.Launch.base = rp; words = n + 1; dir = Vmht.Launch.In };
        { Vmht.Launch.base = ci; words = max m 1; dir = Vmht.Launch.In };
        { Vmht.Launch.base = di; words = n; dir = Vmht.Launch.InOut };
        { Vmht.Launch.base = qu; words = n; dir = Vmht.Launch.InOut };
      ];
    expected_ret = Some expected_visited;
    check =
      (fun load ->
        let rec ok i =
          i >= n || (load (di + (i * wb)) = expected_dist.(i) && ok (i + 1))
        in
        ok 0);
    data_words = n + 1 + max m 1 + (2 * n);
  }

let workload =
  {
    Workload.name = "bfs";
    description = "breadth-first search over a CSR graph with an in-memory frontier";
    source;
    pointer_based = false;
    pattern = "irregular-frontier";
    default_size = 1024;
    setup;
  }
