(* Element-wise vector addition: the canonical streaming kernel and the
   best case for the copy-based interface at large sizes. *)

let source =
  {|
kernel vecadd(a: int*, b: int*, c: int*, n: int) {
  var i: int;
  for (i = 0; i < n; i = i + 1) {
    c[i] = a[i] + b[i];
  }
}
|}

let wb = Vmht_mem.Phys_mem.word_bytes

let setup aspace ~size ~seed =
  let rng = Vmht_util.Rng.create seed in
  let a_vals = Array.init size (fun _ -> Vmht_util.Rng.int_range rng 0 1000) in
  let b_vals = Array.init size (fun _ -> Vmht_util.Rng.int_range rng 0 1000) in
  let a = Workload.alloc_array aspace ~words:size ~init:(fun i -> a_vals.(i)) in
  let b = Workload.alloc_array aspace ~words:size ~init:(fun i -> b_vals.(i)) in
  let c = Workload.alloc_array aspace ~words:size ~init:(fun _ -> 0) in
  {
    Workload.args = [ a; b; c; size ];
    buffers =
      [
        { Vmht.Launch.base = a; words = size; dir = Vmht.Launch.In };
        { Vmht.Launch.base = b; words = size; dir = Vmht.Launch.In };
        { Vmht.Launch.base = c; words = size; dir = Vmht.Launch.Out };
      ];
    expected_ret = None;
    check =
      (fun load ->
        let rec ok i =
          i >= size
          || (load (c + (i * wb)) = a_vals.(i) + b_vals.(i) && ok (i + 1))
        in
        ok 0);
    data_words = 3 * size;
  }

let workload =
  {
    Workload.name = "vecadd";
    description = "element-wise vector addition c[i] = a[i] + b[i]";
    source;
    pointer_based = false;
    pattern = "streaming";
    default_size = 4096;
    setup;
  }
