(* Dense matrix multiply: the compute-bound kernel.  [size] is the
   matrix dimension. *)

let source =
  {|
kernel mmul(a: int*, b: int*, c: int*, n: int) {
  var i: int;
  var j: int;
  var k: int;
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      var s: int = 0;
      for (k = 0; k < n; k = k + 1) {
        s = s + a[i * n + k] * b[k * n + j];
      }
      c[i * n + j] = s;
    }
  }
}
|}

let wb = Vmht_mem.Phys_mem.word_bytes

let setup aspace ~size ~seed =
  let n = size in
  let rng = Vmht_util.Rng.create seed in
  let a_vals =
    Array.init (n * n) (fun _ -> Vmht_util.Rng.int_range rng 0 20)
  in
  let b_vals =
    Array.init (n * n) (fun _ -> Vmht_util.Rng.int_range rng 0 20)
  in
  let a = Workload.alloc_array aspace ~words:(n * n) ~init:(fun i -> a_vals.(i)) in
  let b = Workload.alloc_array aspace ~words:(n * n) ~init:(fun i -> b_vals.(i)) in
  let c = Workload.alloc_array aspace ~words:(n * n) ~init:(fun _ -> 0) in
  let expected i j =
    let s = ref 0 in
    for k = 0 to n - 1 do
      s := !s + (a_vals.((i * n) + k) * b_vals.((k * n) + j))
    done;
    !s
  in
  {
    Workload.args = [ a; b; c; n ];
    buffers =
      [
        { Vmht.Launch.base = a; words = n * n; dir = Vmht.Launch.In };
        { Vmht.Launch.base = b; words = n * n; dir = Vmht.Launch.In };
        { Vmht.Launch.base = c; words = n * n; dir = Vmht.Launch.Out };
      ];
    expected_ret = None;
    check =
      (fun load ->
        let ok = ref true in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            if load (c + (((i * n) + j) * wb)) <> expected i j then ok := false
          done
        done;
        !ok);
    data_words = 3 * n * n;
  }

let workload =
  {
    Workload.name = "mmul";
    description = "dense n x n matrix multiply";
    source;
    pointer_based = false;
    pattern = "compute-bound";
    default_size = 20;
    setup;
  }
