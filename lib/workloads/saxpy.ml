(* y[i] = a*x[i] + y[i]: streaming with an in-place (InOut) buffer. *)

let source =
  {|
kernel saxpy(x: int*, y: int*, n: int, a: int) {
  var i: int;
  for (i = 0; i < n; i = i + 1) {
    y[i] = a * x[i] + y[i];
  }
}
|}

let wb = Vmht_mem.Phys_mem.word_bytes

let setup aspace ~size ~seed =
  let rng = Vmht_util.Rng.create seed in
  let scalar = Vmht_util.Rng.int_range rng 2 9 in
  let x_vals = Array.init size (fun _ -> Vmht_util.Rng.int_range rng 0 500) in
  let y_vals = Array.init size (fun _ -> Vmht_util.Rng.int_range rng 0 500) in
  let x = Workload.alloc_array aspace ~words:size ~init:(fun i -> x_vals.(i)) in
  let y = Workload.alloc_array aspace ~words:size ~init:(fun i -> y_vals.(i)) in
  {
    Workload.args = [ x; y; size; scalar ];
    buffers =
      [
        { Vmht.Launch.base = x; words = size; dir = Vmht.Launch.In };
        { Vmht.Launch.base = y; words = size; dir = Vmht.Launch.InOut };
      ];
    expected_ret = None;
    check =
      (fun load ->
        let rec ok i =
          i >= size
          || load (y + (i * wb)) = (scalar * x_vals.(i)) + y_vals.(i)
             && ok (i + 1)
        in
        ok 0);
    data_words = 2 * size;
  }

let workload =
  {
    Workload.name = "saxpy";
    description = "scaled vector update y[i] = a*x[i] + y[i]";
    source;
    pointer_based = false;
    pattern = "streaming";
    default_size = 4096;
    setup;
  }
