(** The benchmark suite. *)

val all : Workload.t list
(** The nine kernels, in the order the tables report them. *)

val find : string -> Workload.t
(** Raises [Not_found]. *)

val names : string list
