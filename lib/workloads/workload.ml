module Addr_space = Vmht_vm.Addr_space

type instance = {
  args : int list;
  buffers : Vmht.Launch.buffer list;
  expected_ret : int option;
  check : (int -> int) -> bool;
  data_words : int;
}

type t = {
  name : string;
  description : string;
  source : string;
  pointer_based : bool;
  pattern : string;
  default_size : int;
  setup : Addr_space.t -> size:int -> seed:int -> instance;
}

let kernel t =
  let k = Vmht_lang.Parser.parse_kernel t.source in
  Vmht_lang.Typecheck.check_kernel k;
  k

let word_bytes = Vmht_mem.Phys_mem.word_bytes

let alloc_array aspace ~words ~init =
  let base = Addr_space.alloc aspace ~bytes:(words * word_bytes) in
  for i = 0 to words - 1 do
    Addr_space.store_word aspace (base + (i * word_bytes)) (init i)
  done;
  base

let read_array load ~base ~words =
  List.init words (fun i -> load (base + (i * word_bytes)))
