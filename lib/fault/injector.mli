(** Per-component fault injector: draws {!Plan} decisions from an
    independent deterministic stream, counts what it did, and reports
    every injection as a typed {!Vmht_obs.Event}.

    Components consult their injector at each opportunity point
    ([fires]), charge the stall themselves (they own the simulation
    clock), then record it ([injected] / [retry]).  Unrecoverable
    faults go through [abort], which raises {!Abort} for the runtime's
    retry machinery to catch. *)

exception Abort of { component : string; fault : string }
(** An injected fault the component cannot absorb locally (a DMA
    transfer abort).  [Vmht.Launch] and [Vmht_rt.Hthreads] catch it
    and re-run the victim thread. *)

type stats = {
  injected : int;  (** faults fired (including aborts) *)
  stall_cycles : int;  (** extra cycles charged by injections *)
  retries : int;  (** bounded-retry rounds (transient walk failures) *)
  aborts : int;  (** thread-level aborts raised *)
}

val zero_stats : stats

val add_stats : stats -> stats -> stats

type t

val create : plan:Plan.t -> seed:int -> component:string -> t
(** The injector's stream is a {!Vmht_util.Rng.split} of a generator
    derived from [(seed, component)], so distinct components never
    share draws and creation order is irrelevant. *)

val plan : t -> Plan.t

val component : t -> string

val set_observer : t -> Vmht_obs.Event.emitter -> unit

val fires : t -> rate:float -> bool
(** One Bernoulli draw at [rate].  Never fires when the plan is
    disabled, the rate is zero, or the injection budget is spent —
    and in the first two cases draws nothing, so a disabled plan
    perturbs nothing. *)

val coin : t -> bool
(** Secondary decision draw (e.g. full shootdown vs single entry). *)

val draw : t -> int -> int
(** Uniform in [\[0, bound)] — e.g. picking the TLB slot to kill. *)

val injected : t -> fault:string -> cycles:int -> unit
(** Count one injection of class [fault] that cost [cycles], and emit
    a [Fault_inject] event spanning it. *)

val retry : t -> fault:string -> attempt:int -> cycles:int -> unit
(** Count one bounded-retry round and emit [Fault_retry]. *)

val abort : t -> fault:string -> 'a
(** Count the abort, emit [Fault_abort], raise {!Abort}. *)

val stats : t -> stats
