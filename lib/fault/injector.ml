module Rng = Vmht_util.Rng
module Event = Vmht_obs.Event

exception Abort of { component : string; fault : string }

type stats = {
  injected : int;
  stall_cycles : int;
  retries : int;
  aborts : int;
}

let zero_stats = { injected = 0; stall_cycles = 0; retries = 0; aborts = 0 }

let add_stats a b =
  {
    injected = a.injected + b.injected;
    stall_cycles = a.stall_cycles + b.stall_cycles;
    retries = a.retries + b.retries;
    aborts = a.aborts + b.aborts;
  }

type t = {
  plan : Plan.t;
  component : string;
  rng : Rng.t;
  mutable injected : int;
  mutable stall_cycles : int;
  mutable retries : int;
  mutable aborts : int;
  mutable observer : Event.emitter option;
}

(* Each component owns an independent stream derived from (seed,
   component name), so the schedule one component sees never depends on
   how many draws its neighbours made — and creation order (how many
   MMUs or DMA engines the run instantiated before this one) cannot
   shift anyone else's faults. *)
let stream ~seed ~component =
  let h = Hashtbl.hash component in
  Rng.split (Rng.create (seed lxor (h * 0x1000193)))

let create ~plan ~seed ~component =
  {
    plan;
    component;
    rng = stream ~seed ~component;
    injected = 0;
    stall_cycles = 0;
    retries = 0;
    aborts = 0;
    observer = None;
  }

let plan t = t.plan

let component t = t.component

let set_observer t f = t.observer <- Some f

let emit t ?duration kind =
  match t.observer with Some f -> f ?duration kind | None -> ()

let budget_left t = t.injected < t.plan.Plan.max_injections

let fires t ~rate =
  t.plan.Plan.enabled && rate > 0. && budget_left t
  && Rng.float t.rng 1.0 < rate

let coin t = Rng.bool t.rng

let draw t bound = Rng.int t.rng bound

let injected t ~fault ~cycles =
  t.injected <- t.injected + 1;
  t.stall_cycles <- t.stall_cycles + cycles;
  emit t ~duration:cycles (Event.Fault_inject { target = t.component; fault })

let retry t ~fault ~attempt ~cycles =
  t.retries <- t.retries + 1;
  t.stall_cycles <- t.stall_cycles + cycles;
  emit t ~duration:cycles
    (Event.Fault_retry { target = t.component; fault; attempt })

let abort t ~fault =
  t.injected <- t.injected + 1;
  t.aborts <- t.aborts + 1;
  emit t (Event.Fault_abort { target = t.component; fault });
  raise (Abort { component = t.component; fault })

let stats t =
  {
    injected = t.injected;
    stall_cycles = t.stall_cycles;
    retries = t.retries;
    aborts = t.aborts;
  }
