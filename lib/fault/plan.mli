(** A fault-injection plan: which perturbations the simulated SoC
    suffers, how often, and what each one costs.

    A plan is pure data inside {!Vmht.Config.t}; the decisions
    themselves are drawn by per-component {!Injector}s from independent
    splits of the deterministic {!Vmht_util.Rng}, so a (config, seed)
    pair replays the exact same fault schedule on every run and at any
    parallel-harness width.

    Rates are per-opportunity Bernoulli probabilities: per translation
    for TLB shootdowns, per page-table level read for walk stalls, per
    completed walk for transient walk failures, per bus transaction for
    bus errors and contention windows, per DRAM latency computation for
    row failures, and per staged DMA burst for transfer aborts. *)

type t = {
  enabled : bool;  (** master switch; [false] means zero overhead *)
  max_injections : int;
      (** per-injector budget: once spent, that component stops
          injecting.  Bounds every retry loop (a DMA-abort storm ends
          after at most this many re-runs), so recovery always
          terminates — even at rate 1.0. *)
  tlb_shootdown_rate : float;
      (** per translation: invalidate one TLB entry or the whole TLB *)
  walk_stall_rate : float;  (** per page-table level read *)
  walk_stall_cycles : int;
  walk_transient_rate : float;
      (** per completed walk: the walk fails transiently and the
          walker retries (bounded by [walk_retry_limit]) *)
  walk_retry_limit : int;
  walk_retry_cycles : int;
  bus_error_rate : float;
      (** per transaction: the slave errors, the master re-issues *)
  bus_error_cycles : int;  (** error-response turnaround *)
  bus_contention_rate : float;
      (** per transaction: an extra arbitration/contention window *)
  bus_contention_cycles : int;
  dram_row_failure_rate : float;
      (** per access: the activation fails; latency spike + the row
          must be re-opened by the next access *)
  dram_row_failure_cycles : int;
  dma_abort_rate : float;
      (** per staged burst: the transfer aborts; the owning thread
          must re-run its whole copy-in/compute/copy-out *)
  dma_abort_cycles : int;  (** abort-detection cost before the raise *)
}

val none : t
(** Disabled; all rates zero, default cycle costs and budgets. *)

val uniform : rate:float -> t
(** Every fault class at probability [rate] with the default cycle
    costs — the knob the [robust] experiment sweeps.  [rate <= 0.]
    returns {!none}. *)

val fingerprint : t -> string
(** Injective rendering of every field; spliced into
    {!Vmht.Config.fingerprint}. *)

val to_string : t -> string
(** Compact summary: ["off"], ["uniform 0.005"], or the per-class
    rates. *)
