type t = {
  enabled : bool;
  max_injections : int;
  tlb_shootdown_rate : float;
  walk_stall_rate : float;
  walk_stall_cycles : int;
  walk_transient_rate : float;
  walk_retry_limit : int;
  walk_retry_cycles : int;
  bus_error_rate : float;
  bus_error_cycles : int;
  bus_contention_rate : float;
  bus_contention_cycles : int;
  dram_row_failure_rate : float;
  dram_row_failure_cycles : int;
  dma_abort_rate : float;
  dma_abort_cycles : int;
}

let none =
  {
    enabled = false;
    max_injections = 256;
    tlb_shootdown_rate = 0.;
    walk_stall_rate = 0.;
    walk_stall_cycles = 30;
    walk_transient_rate = 0.;
    walk_retry_limit = 3;
    walk_retry_cycles = 200;
    bus_error_rate = 0.;
    bus_error_cycles = 40;
    bus_contention_rate = 0.;
    bus_contention_cycles = 24;
    dram_row_failure_rate = 0.;
    dram_row_failure_cycles = 60;
    dma_abort_rate = 0.;
    dma_abort_cycles = 80;
  }

let uniform ~rate =
  if rate <= 0. then none
  else
    {
      none with
      enabled = true;
      tlb_shootdown_rate = rate;
      walk_stall_rate = rate;
      walk_transient_rate = rate;
      bus_error_rate = rate;
      bus_contention_rate = rate;
      dram_row_failure_rate = rate;
      dma_abort_rate = rate;
    }

let fingerprint (t : t) =
  let b = Buffer.create 96 in
  let i v = Buffer.add_string b (string_of_int v); Buffer.add_char b ';' in
  let r v = Buffer.add_string b (Printf.sprintf "%h;" v) in
  Buffer.add_string b (if t.enabled then "on;" else "off;");
  i t.max_injections;
  r t.tlb_shootdown_rate;
  r t.walk_stall_rate;
  i t.walk_stall_cycles;
  r t.walk_transient_rate;
  i t.walk_retry_limit;
  i t.walk_retry_cycles;
  r t.bus_error_rate;
  i t.bus_error_cycles;
  r t.bus_contention_rate;
  i t.bus_contention_cycles;
  r t.dram_row_failure_rate;
  i t.dram_row_failure_cycles;
  r t.dma_abort_rate;
  i t.dma_abort_cycles;
  Buffer.contents b

let to_string (t : t) =
  if not t.enabled then "off"
  else begin
    let rates =
      [
        t.tlb_shootdown_rate; t.walk_stall_rate; t.walk_transient_rate;
        t.bus_error_rate; t.bus_contention_rate; t.dram_row_failure_rate;
        t.dma_abort_rate;
      ]
    in
    match rates with
    | r0 :: rest when List.for_all (fun r -> r = r0) rest ->
      Printf.sprintf "uniform %g" r0
    | _ ->
      Printf.sprintf
        "tlb=%g walk=%g/%g bus=%g/%g dram=%g dma=%g"
        t.tlb_shootdown_rate t.walk_stall_rate t.walk_transient_rate
        t.bus_error_rate t.bus_contention_rate t.dram_row_failure_rate
        t.dma_abort_rate
  end
