(** Minimal JSON representation, serializer and parser.

    The observability layer has to emit (and the test suite re-read)
    Chrome-trace and metrics documents without external dependencies,
    so this module implements the small JSON subset those need: the
    full value grammar, UTF-8 pass-through strings with standard
    escapes, and exact integers alongside floats. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!of_string} with a message and byte offset. *)

val to_string : t -> string
(** Compact single-line rendering. *)

val to_string_pretty : t -> string
(** Two-space-indented rendering, newline-terminated. *)

val of_string : string -> t
(** Parse a complete document (trailing garbage is an error). *)

(** {2 Accessors} (total: [None] on shape mismatch) *)

val member : string -> t -> t option

val index : int -> t -> t option

val to_int : t -> int option

val to_float : t -> float option
(** Also accepts [Int]. *)

val to_str : t -> string option

val to_list : t -> t list option
