(* Causal host-time spans over the build/evaluation pipeline.

   Spans are per-domain nested (a domain-local stack supplies the
   parent), stamped with wall-clock nanoseconds, and collected into
   one process-wide list under a mutex at span end.  Cross-domain
   causality (a pool task belongs to the map call that submitted it)
   is a separate [flow_from] edge, captured at submission time, since
   the submitting span lives on a different thread track.

   Global begin/end sequence numbers ([seq0]/[seq1]) give tests a
   clock-independent witness of well-formed nesting: a child's whole
   [seq0, seq1] interval sits strictly inside its parent's. *)

type t = {
  id : int;
  parent : int option; (* enclosing span on the same track *)
  flow_from : int option; (* cross-track causal edge *)
  tid : int;
  name : string;
  cat : string;
  t0_ns : int;
  t1_ns : int;
  seq0 : int;
  seq1 : int;
}

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let next_id = Atomic.make 1

let next_seq = Atomic.make 1

let m = Mutex.create ()

let collected : t list ref = ref []

type dls = { mutable tid : int option; mutable stack : int list }

let state : dls Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { tid = None; stack = [] })

let set_tid tid = (Domain.DLS.get state).tid <- Some tid

let current_tid () =
  match (Domain.DLS.get state).tid with
  | Some tid -> tid
  | None -> (Domain.self () :> int)

let current_span_id () =
  match (Domain.DLS.get state).stack with [] -> None | id :: _ -> Some id

let reset () =
  Mutex.lock m;
  collected := [];
  Mutex.unlock m

let enable flag =
  if flag && not (Atomic.get enabled_flag) then reset ();
  Atomic.set enabled_flag flag

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let with_span ?(cat = "flow") ?flow_from name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let d = Domain.DLS.get state in
    let id = Atomic.fetch_and_add next_id 1 in
    let parent = match d.stack with [] -> None | p :: _ -> Some p in
    let tid = current_tid () in
    let seq0 = Atomic.fetch_and_add next_seq 1 in
    let t0 = now_ns () in
    d.stack <- id :: d.stack;
    let finish () =
      (match d.stack with
      | s :: rest when s = id -> d.stack <- rest
      | _ -> ());
      let t1 = now_ns () in
      let seq1 = Atomic.fetch_and_add next_seq 1 in
      let span =
        { id; parent; flow_from; tid; name; cat; t0_ns = t0; t1_ns = t1; seq0; seq1 }
      in
      Mutex.lock m;
      collected := span :: !collected;
      Mutex.unlock m
    in
    Fun.protect ~finally:finish f
  end

let spans () =
  Mutex.lock m;
  let ss = !collected in
  Mutex.unlock m;
  List.sort (fun a b -> compare a.seq0 b.seq0) ss

(* {2 Chrome-trace export} *)

let ts_us ns = Json.Float (float_of_int ns /. 1e3)

let span_json ~pid s =
  let args =
    ("id", Json.Int s.id)
    ::
    (match s.parent with
    | Some p -> [ ("parent", Json.Int p) ]
    | None -> [])
  in
  Json.Obj
    [
      ("name", Json.String s.name);
      ("cat", Json.String s.cat);
      ("ph", Json.String "X");
      ("pid", Json.Int pid);
      ("tid", Json.Int s.tid);
      ("ts", ts_us s.t0_ns);
      ("dur", ts_us (max 0 (s.t1_ns - s.t0_ns)));
      ("args", Json.Obj args);
    ]

let flow_json ~pid ~by_id s =
  match s.flow_from with
  | None -> []
  | Some src_id -> (
    match Hashtbl.find_opt by_id src_id with
    | None -> []
    | Some (src : t) ->
      if src.tid = s.tid then []
      else
        let common name ph tid ts =
          Json.Obj
            [
              ("name", Json.String name);
              ("cat", Json.String "flow");
              ("ph", Json.String ph);
              ("id", Json.Int s.id);
              ("pid", Json.Int pid);
              ("tid", Json.Int tid);
              ("ts", ts_us ts);
            ]
        in
        [
          common s.name "s" src.tid (Stdlib.min src.t1_ns s.t0_ns);
          common s.name "f" s.tid s.t0_ns;
        ])

let to_chrome_json ?(process_name = "vmht") ?(pid = 0) (ss : t list) =
  let by_id = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace by_id s.id s) ss;
  let tids =
    List.sort_uniq compare (List.map (fun (s : t) -> s.tid) ss)
  in
  let metadata_event ~tid ~name ~value =
    Json.Obj
      [
        ("name", Json.String name);
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("name", Json.String value) ]);
      ]
  in
  let metadata =
    metadata_event ~tid:0 ~name:"process_name" ~value:process_name
    :: List.map
         (fun tid ->
           let value = if tid = 0 then "main" else Printf.sprintf "worker-%d" tid in
           metadata_event ~tid ~name:"thread_name" ~value)
         tids
  in
  let xs = List.map (span_json ~pid) ss in
  let flows = List.concat_map (flow_json ~pid ~by_id) ss in
  Json.Obj
    [
      ("traceEvents", Json.List (metadata @ xs @ flows));
      ("displayTimeUnit", Json.String "ms");
    ]

let write_chrome_file ?process_name ?pid path ss =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string_pretty (to_chrome_json ?process_name ?pid ss)))
