(** Chrome-trace (Perfetto / chrome://tracing) export of a typed event
    list.

    The emitted document is the standard JSON object format: a
    ["traceEvents"] array whose entries carry ["ph"]/["ts"]/["pid"]/
    ["tid"] fields.  The SoC is one process; every component instance
    ("bus", "mmu", "accel", ...) gets its own named thread track.
    Span events (duration > 0) become complete events (["ph"] = "X"),
    everything else a thread-scoped instant (["ph"] = "i").
    Timestamps are simulation cycles. *)

val to_json : ?process_name:string -> ?pid:int -> Event.t list -> Json.t

val groups_to_json : (int * string * Event.t list) list -> Json.t
(** Several SoCs in one document: each [(pid, process_name, events)]
    group becomes its own process with its own thread tracks, so
    concurrent simulations render side by side instead of collapsing
    onto one track. *)

val to_string : ?process_name:string -> ?pid:int -> Event.t list -> string
(** Pretty-printed {!to_json}. *)

val write_file :
  ?process_name:string -> ?pid:int -> string -> Event.t list -> unit
