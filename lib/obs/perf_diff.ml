(* Comparison of two bench manifests (vmht-bench-eval/1 or /2): the
   regression gate behind [vmht perf diff].

   Metrics are extracted per experiment (wall seconds, ns/run, and —
   in v2 manifests — the deterministic simulated-cycle percentiles)
   and per micro benchmark (ns/run), keyed by dotted names.  Only
   metrics present in both manifests are compared; everything else is
   reported as missing so a renamed experiment cannot silently drop
   out of the gate.  A metric regresses when it grows by at least
   [threshold] percent. *)

type row = {
  metric : string;
  old_v : float;
  new_v : float;
  delta_pct : float;
}

type report = {
  rows : row list; (* compared metrics, manifest order *)
  regressions : row list;
  missing : string list; (* metrics present on one side only *)
  unattributed : string list;
      (* experiments with no ns_per_run that are not marked
         "kind": "synthesis" — surfaced so a recording bug cannot
         silently drop an experiment out of the per-run gate *)
}

let get path j =
  List.fold_left (fun acc k -> Option.bind acc (Json.member k)) (Some j) path

let get_float path j = Option.bind (get path j) Json.to_float

(* (metric name, value) pairs in manifest order, plus the names of
   experiments whose ns_per_run is absent without the "synthesis" kind
   explaining why. *)
let extract manifest =
  let acc = ref [] in
  let unattributed = ref [] in
  let push name v = acc := (name, v) :: !acc in
  let named_rows section j =
    match Option.bind (Json.member section j) Json.to_list with
    | None -> []
    | Some rows ->
      List.filter_map
        (fun r ->
          match Option.bind (Json.member "name" r) Json.to_str with
          | Some name -> Some (name, r)
          | None -> None)
        rows
  in
  List.iter
    (fun (name, r) ->
      Option.iter (push (name ^ ".seconds")) (get_float [ "seconds" ] r);
      (match get_float [ "ns_per_run" ] r with
      | Some v -> push (name ^ ".ns_per_run") v
      | None ->
        let kind = Option.bind (Json.member "kind" r) Json.to_str in
        if kind <> Some "synthesis" then
          unattributed := name :: !unattributed);
      List.iter
        (fun q ->
          Option.iter
            (push (Printf.sprintf "%s.cycles.%s" name q))
            (get_float [ "cycles"; q ] r))
        [ "p50"; "p99"; "max" ])
    (named_rows "experiments" manifest);
  List.iter
    (fun (name, r) ->
      Option.iter
        (push ("micro." ^ name ^ ".ns_per_run"))
        (get_float [ "ns_per_run" ] r))
    (named_rows "micro" manifest);
  Option.iter (push "total_seconds") (get_float [ "total_seconds" ] manifest);
  (List.rev !acc, List.rev !unattributed)

let delta_pct old_v new_v =
  if old_v = 0. then if new_v = 0. then 0. else infinity
  else (new_v -. old_v) /. old_v *. 100.

let diff ?(threshold = 10.) ~old_manifest ~new_manifest () =
  let old_metrics, old_unattr = extract old_manifest in
  let new_metrics, new_unattr = extract new_manifest in
  let new_tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace new_tbl k v) new_metrics;
  let rows, missing_old =
    List.fold_left
      (fun (rows, missing) (k, old_v) ->
        match Hashtbl.find_opt new_tbl k with
        | Some new_v ->
          ( { metric = k; old_v; new_v; delta_pct = delta_pct old_v new_v }
            :: rows,
            missing )
        | None -> (rows, k :: missing))
      ([], []) old_metrics
  in
  let old_names = List.map fst old_metrics in
  let missing_new =
    List.filter_map
      (fun (k, _) -> if List.mem k old_names then None else Some k)
      new_metrics
  in
  let rows = List.rev rows in
  {
    rows;
    regressions = List.filter (fun r -> r.delta_pct >= threshold) rows;
    missing = List.rev missing_old @ missing_new;
    unattributed =
      old_unattr
      @ List.filter (fun n -> not (List.mem n old_unattr)) new_unattr;
  }

let render ~threshold r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-40s %14s %14s %9s\n" "metric" "old" "new" "delta");
  List.iter
    (fun row ->
      let flag = if row.delta_pct >= threshold then "  REGRESSED" else "" in
      Buffer.add_string buf
        (Printf.sprintf "%-40s %14.4g %14.4g %+8.1f%%%s\n" row.metric row.old_v
           row.new_v row.delta_pct flag))
    r.rows;
  List.iter
    (fun k -> Buffer.add_string buf (Printf.sprintf "%-40s (only in one manifest)\n" k))
    r.missing;
  List.iter
    (fun name ->
      Buffer.add_string buf
        (Printf.sprintf
           "%-40s (no per-run timing recorded and not marked \"synthesis\")\n"
           (name ^ ".ns_per_run")))
    r.unattributed;
  (match r.regressions with
  | [] ->
    Buffer.add_string buf
      (Printf.sprintf "ok: %d metric(s) within +%.1f%%\n" (List.length r.rows)
         threshold)
  | regs ->
    Buffer.add_string buf
      (Printf.sprintf "regression: %d metric(s) slower by >= %.1f%%\n"
         (List.length regs) threshold));
  Buffer.contents buf
