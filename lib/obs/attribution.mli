(** Per-phase cycle attribution for one launched thread.

    Every [Launch] run splits its total cycles into disjoint segments
    that sum exactly to the run's [total_cycles] (a property the test
    suite asserts for every workload in every interface style):

    - [translate]: address-translation pipeline time excluding walks —
      for DMA threads, the host's page pinning;
    - [walk]: hardware page-table walks (or software TLB refills);
    - [fault]: demand-page fault handling;
    - [bus_wait]: queueing for the shared bus behind other masters;
    - [dram]: memory-system service time below translation (bus
      arbitration + DRAM + stream-buffer hits);
    - [compute]: FSM stepping / CPU execution not overlapped with the
      above;
    - [dma_stage]: pin + copy-in staging of a copy-based thread;
    - [drain]: copy-out / write-back / cache maintenance at the end. *)

type t = {
  translate : int;
  walk : int;
  fault : int;
  bus_wait : int;
  dram : int;
  compute : int;
  dma_stage : int;
  drain : int;
}

val zero : t

val total : t -> int
(** Sum of every segment — equals the run's total cycles. *)

val to_list : t -> (string * int) list

val to_json : t -> Json.t

val waterfall : ?width:int -> t -> string
(** ASCII waterfall (cumulative horizontal bars) of the non-zero
    segments in timeline order. *)
