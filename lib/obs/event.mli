(** The typed structured event schema of the observability layer.

    Every simulated component reports what it did as one of these
    constructors instead of a rendered string, so exporters (the
    Chrome-trace writer, the CLI's trace dump, metrics feeds) can
    dispatch on the event without re-parsing text.  An event carries
    the component instance that produced it, its start cycle and, for
    span-like events (bus transactions, page-table walks, DMA bursts,
    faults), a duration in cycles. *)

type mem_op = Read | Write

type kind =
  | Tlb_hit of { vaddr : int; asid : int }
  | Tlb_miss of { vaddr : int; asid : int }
  | Tlb2_hit of { vaddr : int; asid : int }
      (** L1 miss answered by the SoC-shared second-level TLB; the
          duration is the L2 probe latency *)
  | Tlb2_miss of { vaddr : int; asid : int }
      (** both TLB levels missed; a page-table walk follows *)
  | Ptw_walk of { vaddr : int; levels : int }
      (** [levels] = page-table levels read during the walk *)
  | Page_fault of { vaddr : int; asid : int }
  | Bus_txn of { op : mem_op; addr : int; words : int }
  | Dram_row_hit of { bank : int }
  | Dram_row_miss of { bank : int }
  | Dma_burst of { op : mem_op; words : int }
      (** [Read] stages data in from DRAM, [Write] drains it out *)
  | Cache_hit of { op : mem_op; addr : int }
  | Cache_miss of { op : mem_op; addr : int }
  | Fsm_state of { block : string }  (** accelerator FSM block entry *)
  | Phase_begin of { phase : string }
  | Phase_end of { phase : string }
  | Thread_spawn of { thread : string }
  | Thread_join of { thread : string }
  | Fault_inject of { target : string; fault : string }
      (** an injected perturbation absorbed locally; the duration is
          the stall it cost *)
  | Fault_retry of { target : string; fault : string; attempt : int }
      (** one bounded-retry round recovering from a transient fault *)
  | Fault_abort of { target : string; fault : string }
      (** unrecoverable at component level; the owning thread re-runs *)
  | Fault_recover of { target : string; fault : string; attempt : int }
      (** thread-level recovery completed after [attempt] re-runs *)
  | Pass_run of { pass : string; rewrites : int; kernel : string }
      (** one optimizer pass applied during synthesis of [kernel];
          reported when the synthesized thread is launched *)
  | Note of string  (** escape hatch for ad-hoc annotations *)

type t = {
  at : int;  (** start cycle *)
  duration : int;  (** 0 for instantaneous events *)
  component : string;  (** producing component instance, e.g. "bus" *)
  kind : kind;
}

type emitter = ?duration:int -> kind -> unit
(** The observer hook components call: the installer (the SoC) stamps
    the cycle and routes the event to the trace ring and metrics. *)

val label : kind -> string
(** Stable snake_case tag of the constructor ("tlb_miss", "bus_txn",
    ...), used for filtering and as the Chrome-trace event name. *)

val args : kind -> (string * Json.t) list
(** The payload as JSON fields (the Chrome-trace ["args"] object). *)

val mem_op_name : mem_op -> string

val kind_to_string : kind -> string

val to_string : t -> string
(** One human-readable line: cycle, component, detail. *)
