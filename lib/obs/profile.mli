(** Process-wide simulator phase profile: where simulated cycles and
    host time go, by engine phase.

    The engine (lib/sim) attributes every advance of simulated time to
    the phase of the event that consumed it — {!Dispatch} for plain
    engine bookkeeping, {!Actor}/{!Memory}/{!Translate} for code run
    under [Engine.with_phase] — and flushes per-run deltas here.  The
    per-phase cycle counts partition each profiled engine's timeline
    exactly: their sum equals [engine_cycles].  Host nanoseconds are
    sampled every 64th dispatch and are approximate.

    Disabled by default; {!enable} before creating engines (the hook
    is bound at [Engine.create]). *)

type phase = Dispatch | Actor | Memory | Translate

val n_phases : int

val phase_index : phase -> int

val phase_name : phase -> string

val all_phases : phase list

type totals = {
  cycles : int array;  (** per phase, indexed by {!phase_index}; exact *)
  host_ns : float array;  (** per phase; sampled, approximate *)
  dispatches : int;
  engine_cycles : int;  (** summed final simulated time of profiled engines *)
  engines : int;  (** profiled engine-run flushes observed *)
  batch : Histogram.t;  (** same-timestamp dispatch batch sizes *)
}

val enable : bool -> unit
(** Enabling also resets the accumulator. *)

val enabled : unit -> bool

val reset : unit -> unit

val flush :
  cycles:int array ->
  host_ns:float array ->
  dispatches:int ->
  engine_cycles:int ->
  engines:int ->
  batch:Histogram.t ->
  unit
(** Add one engine's deltas (called by the engine, not by users). *)

val totals : unit -> totals
(** A consistent copy of the accumulator. *)

val cycle_sum : totals -> int
(** Sum of the per-phase cycles; equals [engine_cycles] by
    construction. *)

val to_json : totals -> Json.t

val render : totals -> string
(** Phase table plus the dispatch-batch summary. *)
