(** HDR-style log-bucketed integer histogram.

    Buckets 0..15 are unit-width (exact small values); above that,
    each power-of-two range is split into 16 sub-buckets, so every
    recorded value is represented with relative error at most 1/16
    while 944 fixed buckets cover all non-negative OCaml ints.
    Observation is O(1) (a bit-scan and an array increment); there is
    no allocation after {!create}.

    Histograms are not thread-safe; aggregation across domains goes
    through {!merge_into} under the caller's lock. *)

type t

val n_buckets : int

val create : unit -> t

val reset : t -> unit

val observe : t -> int -> unit
(** Record one sample (clamped below at 0). *)

val count : t -> int

val sum : t -> int

val min_value : t -> int
(** 0 when empty. *)

val max_value : t -> int

val merge_into : src:t -> dst:t -> unit
(** Add every sample of [src] into [dst] ([src] unchanged). *)

val copy : t -> t

val quantile : t -> float -> int
(** [quantile t q] is an inclusive upper bound on the q-quantile: the
    upper edge of the first bucket whose cumulative count reaches rank
    [q * count], clamped to the observed maximum. *)

val nonzero_buckets : t -> (int * int) list
(** [(inclusive upper bound, count)] for populated buckets, ascending. *)

(** {2 Bucket geometry} (exposed for tests and for the metrics layer) *)

val bucket_index : int -> int

val bucket_lower : int -> int

val bucket_upper : int -> int

(** {2 Summaries} *)

type summary = {
  count : int;
  sum : int;
  mean : float;
  min : int;
  max : int;
  p50 : int;
  p90 : int;
  p95 : int;
  p99 : int;
}

val summary : t -> summary

val summary_to_json : summary -> Json.t
(** Fixed field order — byte-stable across runs. *)

val summary_to_string : summary -> string
(** One compact line: [n= sum= min= p50<= p90<= p99<= max=]. *)
