(** Perf-regression gate: compare two bench manifests
    ([vmht-bench-eval/1] or [/2]).

    Extracts per-experiment wall seconds, ns/run and (v2) simulated
    cycle percentiles, plus micro-benchmark ns/run, and flags every
    metric that grew by at least the threshold percentage.  Metrics
    present in only one manifest are listed as [missing] rather than
    dropped, so renames can't silently weaken the gate. *)

type row = {
  metric : string;  (** e.g. ["fig1.seconds"], ["micro.vm/.../run.ns_per_run"] *)
  old_v : float;
  new_v : float;
  delta_pct : float;  (** positive = slower *)
}

type report = {
  rows : row list;  (** compared metrics, manifest order *)
  regressions : row list;  (** rows with [delta_pct >= threshold] *)
  missing : string list;
  unattributed : string list;
      (** experiments (from either manifest) with no [ns_per_run] and
          no ["kind": "synthesis"] marking to explain its absence —
          reported, never silently skipped *)
}

val diff :
  ?threshold:float -> old_manifest:Json.t -> new_manifest:Json.t -> unit -> report
(** [threshold] is a percentage; default 10. *)

val render : threshold:float -> report -> string
(** Aligned table plus a one-line verdict. *)
