(** Metrics registry: named counters, gauges and HDR-style latency
    histograms.

    Components (or the SoC on their behalf) register instruments under
    a ["component.metric"] naming convention; {!snapshot} produces one
    uniform, sorted view that the report renders as text or JSON.
    Counters hold exact integers, gauges hold floats (rates, ratios,
    high-water marks), and histograms are {!Histogram.t}: log-bucketed
    with 16 sub-buckets per power of two, so p50/p90/p95/p99 summaries
    carry at most 1/16 relative error across the full int range. *)

type t

type counter

type gauge

type histogram = Histogram.t

val create : unit -> t

val counter : t -> string -> counter
(** Get or create (registries are open: first use registers). *)

val gauge : t -> string -> gauge

val histogram : t -> string -> histogram

val incr : ?by:int -> counter -> unit

val set_counter : counter -> int -> unit
(** Absolute set — how component stats structs are synced in. *)

val counter_value : counter -> int

val set_gauge : gauge -> float -> unit

val gauge_value : gauge -> float

val observe : histogram -> int -> unit
(** Record one sample (clamped below at 0). *)

val bucket_index : int -> int
(** The histogram bucket a value lands in (see {!Histogram}). *)

val bucket_upper : int -> int
(** Inclusive upper bound of bucket [k]. *)

(** {2 Snapshots} *)

type histogram_snapshot = {
  count : int;
  sum : int;
  min : int;  (** 0 when empty *)
  max : int;
  p50 : int;  (** upper bound of the median's bucket, clamped to max *)
  p90 : int;
  p95 : int;
  p99 : int;
  buckets : (int * int) list;  (** (inclusive upper bound, count), populated buckets only *)
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;
  histograms : (string * histogram_snapshot) list;
}

val snapshot : t -> snapshot

val histogram_snapshot : histogram -> histogram_snapshot

val reset : t -> unit
(** Drop every registered instrument (for SoC reuse across runs). *)

val snapshot_to_json : snapshot -> Json.t

val snapshot_to_string : snapshot -> string
(** One line per instrument, aligned. *)
