(* One "process" per SoC; one "thread" track per component instance,
   numbered in order of first appearance so the Perfetto timeline is
   stable across runs of a deterministic simulation.  Component
   instances must already carry distinct names ("mmu", "mmu1", ...) —
   the SoC numbers them at creation — so concurrent instances never
   collapse onto one track. *)

let tids_of_events events =
  let table = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (e : Event.t) ->
      if not (Hashtbl.mem table e.Event.component) then begin
        Hashtbl.replace table e.Event.component (Hashtbl.length table + 1);
        order := e.Event.component :: !order
      end)
    events;
  (table, List.rev !order)

let metadata_event ~pid ~tid ~name ~value =
  Json.Obj
    [
      ("name", Json.String name);
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String value) ]);
    ]

let event_json ~pid ~tid (e : Event.t) =
  let common =
    [
      ("name", Json.String (Event.label e.Event.kind));
      ("cat", Json.String e.Event.component);
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("ts", Json.Int e.Event.at);
      ("args", Json.Obj (Event.args e.Event.kind));
    ]
  in
  if e.Event.duration > 0 then
    Json.Obj
      (common
      @ [ ("ph", Json.String "X"); ("dur", Json.Int e.Event.duration) ])
  else
    (* Instantaneous: thread-scoped instant event. *)
    Json.Obj (common @ [ ("ph", Json.String "i"); ("s", Json.String "t") ])

let group_events ~process_name ~pid events =
  let tids, order = tids_of_events events in
  let metadata =
    metadata_event ~pid ~tid:0 ~name:"process_name" ~value:process_name
    :: List.map
         (fun component ->
           metadata_event ~pid
             ~tid:(Hashtbl.find tids component)
             ~name:"thread_name" ~value:component)
         order
  in
  let trace_events =
    List.map
      (fun (e : Event.t) ->
        event_json ~pid ~tid:(Hashtbl.find tids e.Event.component) e)
      events
  in
  metadata @ trace_events

let wrap trace_events =
  Json.Obj
    [
      ("traceEvents", Json.List trace_events);
      (* Timestamps are fabric cycles, not microseconds; ns display
         keeps Perfetto from rescaling them confusingly. *)
      ("displayTimeUnit", Json.String "ns");
    ]

let to_json ?(process_name = "vmht-soc") ?(pid = 1) events =
  wrap (group_events ~process_name ~pid events)

let groups_to_json groups =
  wrap
    (List.concat_map
       (fun (pid, process_name, events) -> group_events ~process_name ~pid events)
       groups)

let to_string ?process_name ?pid events =
  Json.to_string_pretty (to_json ?process_name ?pid events)

let write_file ?process_name ?pid path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?process_name ?pid events))
