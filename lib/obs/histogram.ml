(* HDR-style log-bucketed histogram: 16 sub-buckets per power of two.

   Values 0..15 land in unit-width buckets 0..15.  A value v >= 16
   with [bits] significant bits is scaled down by [shift = bits - 5]
   so its top five bits select one of 16 sub-buckets within its
   power-of-two range:

     index = 16 + shift*16 + ((v lsr shift) - 16)

   Bucket widths double every 16 buckets, so the recorded value is
   within a factor of [1 + 1/16] of the truth everywhere — tight
   enough for latency percentiles — while 944 buckets cover every
   non-negative 63-bit OCaml int. *)

let sub_bits = 4

let sub_count = 1 lsl sub_bits (* 16 *)

(* max_int has 62 significant bits: shift = 57, top index
   16 + 57*16 + 15 = 943. *)
let n_buckets = 944

let significant_bits v =
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + 1) in
  go v 0

let bucket_index v =
  if v < sub_count then max 0 v
  else begin
    let shift = significant_bits v - (sub_bits + 1) in
    sub_count + (shift * sub_count) + ((v lsr shift) - sub_count)
  end

let bucket_lower k =
  if k < sub_count then max 0 k
  else begin
    let shift = (k / sub_count) - 1 in
    let sub = k mod sub_count in
    (sub_count + sub) lsl shift
  end

let bucket_upper k =
  if k < sub_count then max 0 k
  else begin
    let shift = (k / sub_count) - 1 in
    let sub = k mod sub_count in
    ((sub_count + sub + 1) lsl shift) - 1
  end

type t = {
  mutable n : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
  buckets : int array;
}

let create () =
  { n = 0; sum = 0; min_v = max_int; max_v = 0; buckets = Array.make n_buckets 0 }

let reset t =
  t.n <- 0;
  t.sum <- 0;
  t.min_v <- max_int;
  t.max_v <- 0;
  Array.fill t.buckets 0 n_buckets 0

let observe t v =
  let v = max 0 v in
  t.n <- t.n + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v;
  let k = bucket_index v in
  t.buckets.(k) <- t.buckets.(k) + 1

let count t = t.n

let sum t = t.sum

let min_value t = if t.n = 0 then 0 else t.min_v

let max_value t = t.max_v

let merge_into ~src ~dst =
  if src.n > 0 then begin
    dst.n <- dst.n + src.n;
    dst.sum <- dst.sum + src.sum;
    if src.min_v < dst.min_v then dst.min_v <- src.min_v;
    if src.max_v > dst.max_v then dst.max_v <- src.max_v;
    for k = 0 to n_buckets - 1 do
      dst.buckets.(k) <- dst.buckets.(k) + src.buckets.(k)
    done
  end

let copy t =
  {
    n = t.n;
    sum = t.sum;
    min_v = t.min_v;
    max_v = t.max_v;
    buckets = Array.copy t.buckets;
  }

(* The quantile is the upper bound of the first bucket whose cumulative
   count reaches rank [q * n] (see {!Vmht_util.Stats.quantile_bucket}),
   clamped to the observed maximum so q = 1 is exact. *)
let quantile t q =
  if t.n = 0 then 0
  else begin
    let k = Vmht_util.Stats.quantile_bucket ~q t.buckets in
    if k < 0 then 0 else Stdlib.min t.max_v (bucket_upper k)
  end

let nonzero_buckets t =
  let acc = ref [] in
  for k = n_buckets - 1 downto 0 do
    if t.buckets.(k) > 0 then acc := (bucket_upper k, t.buckets.(k)) :: !acc
  done;
  !acc

type summary = {
  count : int;
  sum : int;
  mean : float;
  min : int;
  max : int;
  p50 : int;
  p90 : int;
  p95 : int;
  p99 : int;
}

let summary t =
  {
    count = t.n;
    sum = t.sum;
    mean = (if t.n = 0 then 0. else float_of_int t.sum /. float_of_int t.n);
    min = min_value t;
    max = t.max_v;
    p50 = quantile t 0.5;
    p90 = quantile t 0.9;
    p95 = quantile t 0.95;
    p99 = quantile t 0.99;
  }

let summary_to_json (s : summary) =
  Json.Obj
    [
      ("count", Json.Int s.count);
      ("sum", Json.Int s.sum);
      ("mean", Json.Float s.mean);
      ("min", Json.Int s.min);
      ("max", Json.Int s.max);
      ("p50", Json.Int s.p50);
      ("p90", Json.Int s.p90);
      ("p95", Json.Int s.p95);
      ("p99", Json.Int s.p99);
    ]

let summary_to_string (s : summary) =
  Printf.sprintf "n=%d sum=%d min=%d p50<=%d p90<=%d p99<=%d max=%d" s.count
    s.sum s.min s.p50 s.p90 s.p99 s.max
