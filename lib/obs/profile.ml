(* Process-wide simulator phase profile.

   The engine does the cheap per-dispatch work locally (an array
   increment, a batch counter, an occasional clock sample) and flushes
   deltas here under one mutex at the end of each [run] — so the hot
   loop never takes a lock.  Cycle attribution is exact by
   construction: every dispatched event is charged the simulated time
   it advanced past the previous charge point, so the per-phase cycle
   counts partition each engine's timeline and their sum equals the
   summed engine totals.  Host time is sampled (every 64th dispatch),
   so it is approximate — useful for "where do the milliseconds go",
   not for regressions gating. *)

type phase = Dispatch | Actor | Memory | Translate

let n_phases = 4

let phase_index = function
  | Dispatch -> 0
  | Actor -> 1
  | Memory -> 2
  | Translate -> 3

let phase_name = function
  | Dispatch -> "dispatch"
  | Actor -> "actor"
  | Memory -> "memory"
  | Translate -> "translate"

let all_phases = [ Dispatch; Actor; Memory; Translate ]

type totals = {
  cycles : int array; (* per phase, indexed by [phase_index] *)
  host_ns : float array; (* per phase, sampled *)
  dispatches : int;
  engine_cycles : int; (* summed final [now] of every profiled engine *)
  engines : int;
  batch : Histogram.t; (* same-timestamp dispatch batch sizes *)
}

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let m = Mutex.create ()

let empty () =
  {
    cycles = Array.make n_phases 0;
    host_ns = Array.make n_phases 0.;
    dispatches = 0;
    engine_cycles = 0;
    engines = 0;
    batch = Histogram.create ();
  }

let acc = ref (empty ())

let reset () =
  Mutex.lock m;
  acc := empty ();
  Mutex.unlock m

let enable flag =
  if flag && not (Atomic.get enabled_flag) then reset ();
  Atomic.set enabled_flag flag

let flush ~cycles ~host_ns ~dispatches ~engine_cycles ~engines ~batch =
  Mutex.lock m;
  let a = !acc in
  for i = 0 to n_phases - 1 do
    a.cycles.(i) <- a.cycles.(i) + cycles.(i);
    a.host_ns.(i) <- a.host_ns.(i) +. host_ns.(i)
  done;
  Histogram.merge_into ~src:batch ~dst:a.batch;
  acc :=
    {
      a with
      dispatches = a.dispatches + dispatches;
      engine_cycles = a.engine_cycles + engine_cycles;
      engines = a.engines + engines;
    };
  Mutex.unlock m

let totals () =
  Mutex.lock m;
  let a = !acc in
  let copy =
    {
      cycles = Array.copy a.cycles;
      host_ns = Array.copy a.host_ns;
      dispatches = a.dispatches;
      engine_cycles = a.engine_cycles;
      engines = a.engines;
      batch = Histogram.copy a.batch;
    }
  in
  Mutex.unlock m;
  copy

let cycle_sum t = Array.fold_left ( + ) 0 t.cycles

let to_json (t : totals) =
  let phase_obj p =
    let i = phase_index p in
    ( phase_name p,
      Json.Obj
        [
          ("cycles", Json.Int t.cycles.(i));
          ("host_ms", Json.Float (t.host_ns.(i) /. 1e6));
        ] )
  in
  Json.Obj
    [
      ("schema", Json.String "vmht-profile/1");
      ("engines", Json.Int t.engines);
      ("dispatches", Json.Int t.dispatches);
      ("engine_cycles", Json.Int t.engine_cycles);
      ("cycle_sum", Json.Int (cycle_sum t));
      ("phases", Json.Obj (List.map phase_obj all_phases));
      ("dispatch_batch", Histogram.summary_to_json (Histogram.summary t.batch));
    ]

let render (t : totals) =
  let buf = Buffer.create 512 in
  let total_c = cycle_sum t in
  let total_h = Array.fold_left ( +. ) 0. t.host_ns in
  Buffer.add_string buf
    (Printf.sprintf "engines %d, dispatches %d, simulated cycles %d\n" t.engines
       t.dispatches t.engine_cycles);
  Buffer.add_string buf
    (Printf.sprintf "  %-10s %14s %6s %12s\n" "phase" "cycles" "%" "host ms");
  List.iter
    (fun p ->
      let i = phase_index p in
      let pct =
        if total_c = 0 then 0.
        else 100. *. float_of_int t.cycles.(i) /. float_of_int total_c
      in
      Buffer.add_string buf
        (Printf.sprintf "  %-10s %14d %5.1f%% %12.2f\n" (phase_name p)
           t.cycles.(i) pct
           (t.host_ns.(i) /. 1e6)))
    all_phases;
  Buffer.add_string buf
    (Printf.sprintf "  %-10s %14d %5.1f%% %12.2f\n" "total" total_c
       (if total_c = 0 then 0. else 100.)
       (total_h /. 1e6));
  let b = Histogram.summary t.batch in
  Buffer.add_string buf
    (Printf.sprintf "  dispatch batches: %s\n" (Histogram.summary_to_string b));
  Buffer.contents buf
