(** Causal spans over the host-side pipeline (parse, passes, schedule,
    emit, simulate) and the parallel evaluation harness.

    Disabled by default and free when disabled ({!with_span} is a
    single atomic read).  When enabled, each span records wall-clock
    nanoseconds, the enclosing span on the same domain as [parent],
    an optional cross-domain [flow_from] edge (the span that submitted
    this work to the pool), and global begin/end sequence numbers that
    witness well-formed nesting independently of the clock.

    Thread ids: the main domain reports tid 0; pool workers call
    {!set_tid} once with a stable small id so a [-j N] run renders as
    [N] named tracks in the Chrome-trace export, with flow arrows from
    the submitting span to each task. *)

type t = {
  id : int;
  parent : int option;  (** enclosing span, same tid *)
  flow_from : int option;  (** submitting span, usually another tid *)
  tid : int;
  name : string;
  cat : string;
  t0_ns : int;
  t1_ns : int;
  seq0 : int;  (** global begin order *)
  seq1 : int;  (** global end order *)
}

val enable : bool -> unit
(** Enabling also clears previously collected spans. *)

val enabled : unit -> bool

val with_span : ?cat:string -> ?flow_from:int -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span.  When disabled, calls it directly. *)

val current_span_id : unit -> int option
(** The innermost open span on this domain (for {!with_span}'s
    [flow_from] when handing work to another domain). *)

val set_tid : int -> unit
(** Fix this domain's thread id for all subsequent spans. *)

val current_tid : unit -> int

val spans : unit -> t list
(** Every completed span, sorted by begin order. *)

val reset : unit -> unit

val now_ns : unit -> int
(** Wall clock in integer nanoseconds. *)

val to_chrome_json : ?process_name:string -> ?pid:int -> t list -> Json.t
(** ["X"] complete events (µs timestamps) plus ["s"]/["f"] flow pairs
    for cross-track [flow_from] edges and thread-name metadata. *)

val write_chrome_file : ?process_name:string -> ?pid:int -> string -> t list -> unit
