type mem_op = Read | Write

type kind =
  | Tlb_hit of { vaddr : int; asid : int }
  | Tlb_miss of { vaddr : int; asid : int }
  | Tlb2_hit of { vaddr : int; asid : int }
  | Tlb2_miss of { vaddr : int; asid : int }
  | Ptw_walk of { vaddr : int; levels : int }
  | Page_fault of { vaddr : int; asid : int }
  | Bus_txn of { op : mem_op; addr : int; words : int }
  | Dram_row_hit of { bank : int }
  | Dram_row_miss of { bank : int }
  | Dma_burst of { op : mem_op; words : int }
  | Cache_hit of { op : mem_op; addr : int }
  | Cache_miss of { op : mem_op; addr : int }
  | Fsm_state of { block : string }
  | Phase_begin of { phase : string }
  | Phase_end of { phase : string }
  | Thread_spawn of { thread : string }
  | Thread_join of { thread : string }
  | Fault_inject of { target : string; fault : string }
  | Fault_retry of { target : string; fault : string; attempt : int }
  | Fault_abort of { target : string; fault : string }
  | Fault_recover of { target : string; fault : string; attempt : int }
  | Pass_run of { pass : string; rewrites : int; kernel : string }
  | Note of string

type t = { at : int; duration : int; component : string; kind : kind }

type emitter = ?duration:int -> kind -> unit

let mem_op_name = function Read -> "read" | Write -> "write"

let label = function
  | Tlb_hit _ -> "tlb_hit"
  | Tlb_miss _ -> "tlb_miss"
  | Tlb2_hit _ -> "tlb2_hit"
  | Tlb2_miss _ -> "tlb2_miss"
  | Ptw_walk _ -> "ptw_walk"
  | Page_fault _ -> "page_fault"
  | Bus_txn _ -> "bus_txn"
  | Dram_row_hit _ -> "dram_row_hit"
  | Dram_row_miss _ -> "dram_row_miss"
  | Dma_burst _ -> "dma_burst"
  | Cache_hit _ -> "cache_hit"
  | Cache_miss _ -> "cache_miss"
  | Fsm_state _ -> "fsm_state"
  | Phase_begin _ -> "phase_begin"
  | Phase_end _ -> "phase_end"
  | Thread_spawn _ -> "thread_spawn"
  | Thread_join _ -> "thread_join"
  | Fault_inject _ -> "fault_inject"
  | Fault_retry _ -> "fault_retry"
  | Fault_abort _ -> "fault_abort"
  | Fault_recover _ -> "fault_recover"
  | Pass_run _ -> "pass_run"
  | Note _ -> "note"

let args = function
  | Tlb_hit { vaddr; asid }
  | Tlb_miss { vaddr; asid }
  | Tlb2_hit { vaddr; asid }
  | Tlb2_miss { vaddr; asid } ->
    [ ("vaddr", Json.Int vaddr); ("asid", Json.Int asid) ]
  | Ptw_walk { vaddr; levels } ->
    [ ("vaddr", Json.Int vaddr); ("levels", Json.Int levels) ]
  | Page_fault { vaddr; asid } ->
    [ ("vaddr", Json.Int vaddr); ("asid", Json.Int asid) ]
  | Bus_txn { op; addr; words } ->
    [
      ("op", Json.String (mem_op_name op));
      ("addr", Json.Int addr);
      ("words", Json.Int words);
    ]
  | Dram_row_hit { bank } | Dram_row_miss { bank } ->
    [ ("bank", Json.Int bank) ]
  | Dma_burst { op; words } ->
    [ ("op", Json.String (mem_op_name op)); ("words", Json.Int words) ]
  | Cache_hit { op; addr } | Cache_miss { op; addr } ->
    [ ("op", Json.String (mem_op_name op)); ("addr", Json.Int addr) ]
  | Fsm_state { block } -> [ ("block", Json.String block) ]
  | Phase_begin { phase } | Phase_end { phase } ->
    [ ("phase", Json.String phase) ]
  | Thread_spawn { thread } | Thread_join { thread } ->
    [ ("thread", Json.String thread) ]
  | Fault_inject { target; fault } | Fault_abort { target; fault } ->
    [ ("target", Json.String target); ("fault", Json.String fault) ]
  | Fault_retry { target; fault; attempt }
  | Fault_recover { target; fault; attempt } ->
    [
      ("target", Json.String target);
      ("fault", Json.String fault);
      ("attempt", Json.Int attempt);
    ]
  | Pass_run { pass; rewrites; kernel } ->
    [
      ("pass", Json.String pass);
      ("rewrites", Json.Int rewrites);
      ("kernel", Json.String kernel);
    ]
  | Note s -> [ ("note", Json.String s) ]

let kind_to_string = function
  | Tlb_hit { vaddr; asid } ->
    Printf.sprintf "tlb_hit 0x%06x (asid %d)" vaddr asid
  | Tlb_miss { vaddr; asid } ->
    Printf.sprintf "tlb_miss 0x%06x (asid %d)" vaddr asid
  | Tlb2_hit { vaddr; asid } ->
    Printf.sprintf "tlb2_hit 0x%06x (asid %d)" vaddr asid
  | Tlb2_miss { vaddr; asid } ->
    Printf.sprintf "tlb2_miss 0x%06x (asid %d)" vaddr asid
  | Ptw_walk { vaddr; levels } ->
    Printf.sprintf "ptw_walk 0x%06x (%d levels)" vaddr levels
  | Page_fault { vaddr; asid } ->
    Printf.sprintf "page_fault 0x%06x (asid %d)" vaddr asid
  | Bus_txn { op; addr; words } ->
    Printf.sprintf "bus_%s 0x%06x x%d" (mem_op_name op) addr words
  | Dram_row_hit { bank } -> Printf.sprintf "dram_row_hit bank %d" bank
  | Dram_row_miss { bank } -> Printf.sprintf "dram_row_miss bank %d" bank
  | Dma_burst { op; words } ->
    Printf.sprintf "dma_%s x%d" (mem_op_name op) words
  | Cache_hit { op; addr } ->
    Printf.sprintf "cache_hit %s 0x%06x" (mem_op_name op) addr
  | Cache_miss { op; addr } ->
    Printf.sprintf "cache_miss %s 0x%06x" (mem_op_name op) addr
  | Fsm_state { block } -> Printf.sprintf "fsm_state %s" block
  | Phase_begin { phase } -> Printf.sprintf "phase_begin %s" phase
  | Phase_end { phase } -> Printf.sprintf "phase_end %s" phase
  | Thread_spawn { thread } -> Printf.sprintf "thread_spawn %s" thread
  | Thread_join { thread } -> Printf.sprintf "thread_join %s" thread
  | Fault_inject { target; fault } ->
    Printf.sprintf "fault_inject %s@%s" fault target
  | Fault_retry { target; fault; attempt } ->
    Printf.sprintf "fault_retry %s@%s (attempt %d)" fault target attempt
  | Fault_abort { target; fault } ->
    Printf.sprintf "fault_abort %s@%s" fault target
  | Fault_recover { target; fault; attempt } ->
    Printf.sprintf "fault_recover %s@%s (attempt %d)" fault target attempt
  | Pass_run { pass; rewrites; kernel } ->
    Printf.sprintf "pass_run %s on %s (%d rewrites)" pass kernel rewrites
  | Note s -> s

let to_string e =
  if e.duration > 0 then
    Printf.sprintf "[%8d] %-12s %s (+%d)" e.at e.component
      (kind_to_string e.kind) e.duration
  else
    Printf.sprintf "[%8d] %-12s %s" e.at e.component (kind_to_string e.kind)
