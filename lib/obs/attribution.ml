type t = {
  translate : int;
  walk : int;
  fault : int;
  bus_wait : int;
  dram : int;
  compute : int;
  dma_stage : int;
  drain : int;
}

let zero =
  {
    translate = 0;
    walk = 0;
    fault = 0;
    bus_wait = 0;
    dram = 0;
    compute = 0;
    dma_stage = 0;
    drain = 0;
  }

let to_list t =
  [
    ("translate", t.translate);
    ("walk", t.walk);
    ("fault", t.fault);
    ("bus_wait", t.bus_wait);
    ("dram", t.dram);
    ("compute", t.compute);
    ("dma_stage", t.dma_stage);
    ("drain", t.drain);
  ]

let total t = List.fold_left (fun acc (_, v) -> acc + v) 0 (to_list t)

let to_json t = Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (to_list t))

let waterfall ?width t =
  (* Timeline order: staging happens first, then the translated/compute
     interleaving, then the drain. *)
  let ordered =
    [
      ("dma_stage", t.dma_stage);
      ("translate", t.translate);
      ("walk", t.walk);
      ("fault", t.fault);
      ("bus_wait", t.bus_wait);
      ("dram", t.dram);
      ("compute", t.compute);
      ("drain", t.drain);
    ]
    |> List.filter (fun (_, v) -> v > 0)
    |> List.map (fun (k, v) -> (k, float_of_int v))
  in
  Vmht_util.Ascii_plot.waterfall ?width ~title:"cycle attribution"
    ~unit:"cycles" ordered
