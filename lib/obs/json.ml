type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------- printing ------------------------------- *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_literal f)
  | String s -> Buffer.add_string buf (escape_string s)
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (escape_string k);
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  write buf v;
  Buffer.contents buf

let rec write_pretty buf indent = function
  | (Null | Bool _ | Int _ | Float _ | String _) as v -> write buf v
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    let pad = String.make (indent + 2) ' ' in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        write_pretty buf (indent + 2) v)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make indent ' ');
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    let pad = String.make (indent + 2) ' ' in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        Buffer.add_string buf (escape_string k);
        Buffer.add_string buf ": ";
        write_pretty buf (indent + 2) v)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make indent ' ');
    Buffer.add_char buf '}'

let to_string_pretty v =
  let buf = Buffer.create 4096 in
  write_pretty buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ------------------------- parsing -------------------------------- *)

type parser_state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected '%s'" word)

(* Decode a \uXXXX escape (and a following low surrogate, if any) to
   UTF-8 bytes. *)
let parse_unicode_escape st buf =
  let hex4 () =
    if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
    let s = String.sub st.src st.pos 4 in
    st.pos <- st.pos + 4;
    match int_of_string_opt ("0x" ^ s) with
    | Some v -> v
    | None -> fail st "bad \\u escape"
  in
  let cp = hex4 () in
  let cp =
    if cp >= 0xD800 && cp <= 0xDBFF then begin
      (* High surrogate: require the paired low surrogate. *)
      if
        st.pos + 2 <= String.length st.src
        && String.sub st.src st.pos 2 = "\\u"
      then begin
        st.pos <- st.pos + 2;
        let lo = hex4 () in
        if lo < 0xDC00 || lo > 0xDFFF then fail st "unpaired surrogate";
        0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
      end
      else fail st "unpaired surrogate"
    end
    else cp
  in
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
       | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
       | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
       | Some '/' -> advance st; Buffer.add_char buf '/'; go ()
       | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
       | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
       | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
       | Some 'b' -> advance st; Buffer.add_char buf '\b'; go ()
       | Some 'f' -> advance st; Buffer.add_char buf '\012'; go ()
       | Some 'u' ->
         advance st;
         parse_unicode_escape st buf;
         go ()
       | _ -> fail st "bad escape")
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_number_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek st with
    | Some c when is_number_char c ->
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  let s = String.sub st.src start (st.pos - start) in
  match int_of_string_opt s with
  | Some n -> Int n
  | None -> (
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail st "bad number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let field () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        (k, v)
      in
      let rec fields acc =
        let f = field () in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields (f :: acc)
        | Some '}' ->
          advance st;
          List.rev (f :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character '%c'" c)

let of_string src =
  let st = { src; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length src then fail st "trailing garbage";
  v

(* ------------------------- accessors ------------------------------ *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let index i = function
  | List items -> List.nth_opt items i
  | _ -> None

let to_int = function Int n -> Some n | _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_str = function String s -> Some s | _ -> None

let to_list = function List items -> Some items | _ -> None
