type counter = { mutable count : int }

type gauge = { mutable value : float }

type histogram = Histogram.t

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let find_or_add table name make =
  match Hashtbl.find_opt table name with
  | Some v -> v
  | None ->
    let v = make () in
    Hashtbl.replace table name v;
    v

let counter t name = find_or_add t.counters name (fun () -> { count = 0 })

let gauge t name = find_or_add t.gauges name (fun () -> { value = 0. })

let histogram t name = find_or_add t.histograms name Histogram.create

let incr ?(by = 1) c = c.count <- c.count + by

let set_counter c v = c.count <- v

let counter_value c = c.count

let set_gauge g v = g.value <- v

let gauge_value g = g.value

let bucket_index = Histogram.bucket_index

let bucket_upper = Histogram.bucket_upper

let observe = Histogram.observe

type histogram_snapshot = {
  count : int;
  sum : int;
  min : int;
  max : int;
  p50 : int;
  p90 : int;
  p95 : int;
  p99 : int;
  buckets : (int * int) list;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_snapshot) list;
}

let histogram_snapshot h =
  let s = Histogram.summary h in
  {
    count = s.Histogram.count;
    sum = s.Histogram.sum;
    min = s.Histogram.min;
    max = s.Histogram.max;
    p50 = s.Histogram.p50;
    p90 = s.Histogram.p90;
    p95 = s.Histogram.p95;
    p99 = s.Histogram.p99;
    buckets = Histogram.nonzero_buckets h;
  }

let sorted_bindings table value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot (t : t) : snapshot =
  {
    counters = sorted_bindings t.counters (fun c -> c.count);
    gauges = sorted_bindings t.gauges (fun g -> g.value);
    histograms = sorted_bindings t.histograms histogram_snapshot;
  }

let reset (t : t) =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.histograms

let histogram_snapshot_to_json (h : histogram_snapshot) =
  Json.Obj
    [
      ("count", Json.Int h.count);
      ("sum", Json.Int h.sum);
      ("min", Json.Int h.min);
      ("max", Json.Int h.max);
      ("p50", Json.Int h.p50);
      ("p90", Json.Int h.p90);
      ("p95", Json.Int h.p95);
      ("p99", Json.Int h.p99);
      ( "buckets",
        Json.List
          (List.map
             (fun (le, c) -> Json.List [ Json.Int le; Json.Int c ])
             h.buckets) );
    ]

let snapshot_to_json (s : snapshot) =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.counters) );
      ( "gauges",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) s.gauges) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, h) -> (k, histogram_snapshot_to_json h))
             s.histograms) );
    ]

let snapshot_to_string (s : snapshot) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%-32s %d\n" k v))
    s.counters;
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%-32s %g\n" k v))
    s.gauges;
  List.iter
    (fun (k, h) ->
      Buffer.add_string buf
        (Printf.sprintf "%-32s n=%d sum=%d min=%d p50<=%d p90<=%d p99<=%d max=%d\n"
           k h.count h.sum h.min h.p50 h.p90 h.p99 h.max))
    s.histograms;
  Buffer.contents buf
