(* Up to [2^62 - 1] fits bucket 62, so 63 buckets cover every
   non-negative OCaml int on 64-bit. *)
let n_buckets = 63

type counter = { mutable count : int }

type gauge = { mutable value : float }

type histogram = {
  mutable n : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
  buckets : int array;
}

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let find_or_add table name make =
  match Hashtbl.find_opt table name with
  | Some v -> v
  | None ->
    let v = make () in
    Hashtbl.replace table name v;
    v

let counter t name = find_or_add t.counters name (fun () -> { count = 0 })

let gauge t name = find_or_add t.gauges name (fun () -> { value = 0. })

let histogram t name =
  find_or_add t.histograms name (fun () ->
      {
        n = 0;
        sum = 0;
        min_v = max_int;
        max_v = 0;
        buckets = Array.make n_buckets 0;
      })

let incr ?(by = 1) c = c.count <- c.count + by

let set_counter c v = c.count <- v

let counter_value c = c.count

let set_gauge g v = g.value <- v

let gauge_value g = g.value

(* Bucket 0 holds value 0; bucket [k >= 1] holds [2^(k-1) .. 2^k - 1]
   (i.e. the values needing exactly [k] bits). *)
let bucket_index v =
  if v <= 0 then 0
  else begin
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    min (n_buckets - 1) (bits v 0)
  end

let bucket_upper k = if k = 0 then 0 else (1 lsl k) - 1

let observe h v =
  let v = max 0 v in
  h.n <- h.n + 1;
  h.sum <- h.sum + v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v;
  let k = bucket_index v in
  h.buckets.(k) <- h.buckets.(k) + 1

type histogram_snapshot = {
  count : int;
  sum : int;
  min : int;
  max : int;
  p50 : int;
  p95 : int;
  buckets : (int * int) list;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_snapshot) list;
}

let quantile h q =
  if h.n = 0 then 0
  else
    let k = Vmht_util.Stats.quantile_bucket ~q h.buckets in
    if k < 0 then 0 else Stdlib.min h.max_v (bucket_upper k)

let histogram_snapshot h =
  {
    count = h.n;
    sum = h.sum;
    min = (if h.n = 0 then 0 else h.min_v);
    max = h.max_v;
    p50 = quantile h 0.5;
    p95 = quantile h 0.95;
    buckets =
      Array.to_list h.buckets
      |> List.mapi (fun k c -> (bucket_upper k, c))
      |> List.filter (fun (_, c) -> c > 0);
  }

let sorted_bindings table value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot (t : t) : snapshot =
  {
    counters = sorted_bindings t.counters (fun c -> c.count);
    gauges = sorted_bindings t.gauges (fun g -> g.value);
    histograms = sorted_bindings t.histograms histogram_snapshot;
  }

let reset (t : t) =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.histograms

let histogram_snapshot_to_json (h : histogram_snapshot) =
  Json.Obj
    [
      ("count", Json.Int h.count);
      ("sum", Json.Int h.sum);
      ("min", Json.Int h.min);
      ("max", Json.Int h.max);
      ("p50", Json.Int h.p50);
      ("p95", Json.Int h.p95);
      ( "buckets",
        Json.List
          (List.map
             (fun (le, c) -> Json.List [ Json.Int le; Json.Int c ])
             h.buckets) );
    ]

let snapshot_to_json (s : snapshot) =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.counters) );
      ( "gauges",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) s.gauges) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, h) -> (k, histogram_snapshot_to_json h))
             s.histograms) );
    ]

let snapshot_to_string (s : snapshot) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%-32s %d\n" k v))
    s.counters;
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%-32s %g\n" k v))
    s.gauges;
  List.iter
    (fun (k, h) ->
      Buffer.add_string buf
        (Printf.sprintf "%-32s n=%d sum=%d min=%d p50<=%d p95<=%d max=%d\n" k
           h.count h.sum h.min h.p50 h.p95 h.max))
    s.histograms;
  Buffer.contents buf
