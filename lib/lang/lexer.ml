let keywords =
  [
    ("kernel", Token.KW_KERNEL);
    ("var", Token.KW_VAR);
    ("if", Token.KW_IF);
    ("else", Token.KW_ELSE);
    ("while", Token.KW_WHILE);
    ("for", Token.KW_FOR);
    ("return", Token.KW_RETURN);
    ("int", Token.KW_INT);
    ("null", Token.KW_NULL);
  ]

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let loc st = { Loc.line = st.line; col = st.col }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
   | Some '\n' ->
     st.line <- st.line + 1;
     st.col <- 1
   | Some _ -> st.col <- st.col + 1
   | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'

let is_hex_digit c =
  is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let rec skip_space_and_comments st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_space_and_comments st
  | Some '/' when peek2 st = Some '/' ->
    let rec to_eol () =
      match peek st with
      | Some '\n' | None -> ()
      | Some _ ->
        advance st;
        to_eol ()
    in
    to_eol ();
    skip_space_and_comments st
  | Some '/' when peek2 st = Some '*' ->
    let start = loc st in
    advance st;
    advance st;
    let rec to_close () =
      match (peek st, peek2 st) with
      | Some '*', Some '/' ->
        advance st;
        advance st
      | None, _ -> Loc.error start "unterminated block comment"
      | Some _, _ ->
        advance st;
        to_close ()
    in
    to_close ();
    skip_space_and_comments st
  | Some _ | None -> ()

let lex_number st =
  let start = st.pos in
  let start_loc = loc st in
  if peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X') then begin
    advance st;
    advance st;
    let digits_start = st.pos in
    while (match peek st with Some c -> is_hex_digit c | None -> false) do
      advance st
    done;
    if st.pos = digits_start then Loc.error start_loc "malformed hex literal";
    let text = String.sub st.src start (st.pos - start) in
    match int_of_string_opt text with
    | Some n -> n
    | None -> Loc.error start_loc "hex literal out of range: %s" text
  end
  else begin
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
    let text = String.sub st.src start (st.pos - start) in
    match int_of_string_opt text with
    | Some n -> n
    | None -> Loc.error start_loc "integer literal out of range: %s" text
  end

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let next_token st : Token.t =
  skip_space_and_comments st;
  let tok_loc = loc st in
  let mk kind = { Token.kind; loc = tok_loc } in
  let two kind =
    advance st;
    advance st;
    mk kind
  in
  let one kind =
    advance st;
    mk kind
  in
  match peek st with
  | None -> mk Token.EOF
  | Some c when is_digit c -> mk (Token.INT (lex_number st))
  | Some c when is_ident_start c ->
    let id = lex_ident st in
    (match List.assoc_opt id keywords with
     | Some kw -> mk kw
     | None -> mk (Token.IDENT id))
  | Some '(' -> one Token.LPAREN
  | Some ')' -> one Token.RPAREN
  | Some '{' -> one Token.LBRACE
  | Some '}' -> one Token.RBRACE
  | Some '[' -> one Token.LBRACKET
  | Some ']' -> one Token.RBRACKET
  | Some ',' -> one Token.COMMA
  | Some ';' -> one Token.SEMI
  | Some ':' -> one Token.COLON
  | Some '*' -> one Token.STAR
  | Some '+' -> one Token.PLUS
  | Some '-' -> one Token.MINUS
  | Some '/' -> one Token.SLASH
  | Some '%' -> one Token.PERCENT
  | Some '^' -> one Token.CARET
  | Some '~' -> one Token.TILDE
  | Some '&' -> if peek2 st = Some '&' then two Token.ANDAND else one Token.AMP
  | Some '|' -> if peek2 st = Some '|' then two Token.OROR else one Token.PIPE
  | Some '!' -> if peek2 st = Some '=' then two Token.NEQ else one Token.BANG
  | Some '=' -> if peek2 st = Some '=' then two Token.EQEQ else one Token.ASSIGN
  | Some '<' ->
    if peek2 st = Some '<' then two Token.SHL
    else if peek2 st = Some '=' then two Token.LE
    else one Token.LT
  | Some '>' ->
    if peek2 st = Some '>' then two Token.SHR
    else if peek2 st = Some '=' then two Token.GE
    else one Token.GT
  | Some c -> Loc.error tok_loc "unexpected character %C" c

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let rec go acc =
    let tok = next_token st in
    match tok.Token.kind with
    | Token.EOF -> List.rev (tok :: acc)
    | _ -> go (tok :: acc)
  in
  go []
