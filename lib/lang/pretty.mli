(** Pretty-printer for HTL.  The output re-parses to a structurally
    identical AST (round-trip property checked in the test suite). *)

val expr_to_string : Ast.expr -> string

val stmt_to_string : ?indent:int -> Ast.stmt -> string

val kernel_to_string : Ast.kernel -> string

val program_to_string : Ast.program -> string
