type state = { toks : Token.t array; mutable pos : int }

let peek st = st.toks.(st.pos)

let peek_kind st = (peek st).Token.kind

let peek_kind2 st =
  if st.pos + 1 < Array.length st.toks then
    (st.toks.(st.pos + 1)).Token.kind
  else Token.EOF

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let here st = (peek st).Token.loc

let expect st kind =
  if peek_kind st = kind then advance st
  else
    Loc.error (here st) "expected '%s' but found '%s'"
      (Token.kind_to_string kind)
      (Token.kind_to_string (peek_kind st))

let expect_ident st =
  match peek_kind st with
  | Token.IDENT name ->
    advance st;
    name
  | k ->
    Loc.error (here st) "expected identifier but found '%s'"
      (Token.kind_to_string k)

(* type := "int" "*"* *)
let parse_typ st =
  expect st Token.KW_INT;
  let rec stars t =
    if peek_kind st = Token.STAR then begin
      advance st;
      stars (Ast.Tptr t)
    end
    else t
  in
  stars Ast.Tint

(* Binary operator precedence: higher binds tighter. *)
let binop_of_kind = function
  | Token.OROR -> Some (Ast.Lor, 1)
  | Token.ANDAND -> Some (Ast.Land, 2)
  | Token.PIPE -> Some (Ast.Or, 3)
  | Token.CARET -> Some (Ast.Xor, 4)
  | Token.AMP -> Some (Ast.And, 5)
  | Token.EQEQ -> Some (Ast.Eq, 6)
  | Token.NEQ -> Some (Ast.Ne, 6)
  | Token.LT -> Some (Ast.Lt, 7)
  | Token.LE -> Some (Ast.Le, 7)
  | Token.GT -> Some (Ast.Gt, 7)
  | Token.GE -> Some (Ast.Ge, 7)
  | Token.SHL -> Some (Ast.Shl, 8)
  | Token.SHR -> Some (Ast.Shr, 8)
  | Token.PLUS -> Some (Ast.Add, 9)
  | Token.MINUS -> Some (Ast.Sub, 9)
  | Token.STAR -> Some (Ast.Mul, 10)
  | Token.SLASH -> Some (Ast.Div, 10)
  | Token.PERCENT -> Some (Ast.Rem, 10)
  | Token.INT _ | Token.IDENT _ | Token.KW_KERNEL | Token.KW_VAR
  | Token.KW_IF | Token.KW_ELSE | Token.KW_WHILE | Token.KW_FOR
  | Token.KW_RETURN | Token.KW_INT | Token.KW_NULL | Token.LPAREN
  | Token.RPAREN | Token.LBRACE | Token.RBRACE | Token.LBRACKET
  | Token.RBRACKET | Token.COMMA | Token.SEMI | Token.COLON | Token.TILDE
  | Token.BANG | Token.ASSIGN | Token.EOF ->
    None

let rec parse_expr_prec st min_prec =
  let lhs = parse_unary st in
  let rec loop lhs =
    match binop_of_kind (peek_kind st) with
    | Some (op, prec) when prec >= min_prec ->
      advance st;
      (* All binary operators are left-associative. *)
      let rhs = parse_expr_prec st (prec + 1) in
      loop (Ast.Bin (op, lhs, rhs))
    | Some _ | None -> lhs
  in
  loop lhs

and parse_unary st =
  match peek_kind st with
  | Token.MINUS ->
    advance st;
    (* Fold a negated literal into the literal itself, so printed
       negative constants round-trip structurally. *)
    (match parse_unary st with
     | Ast.Int n -> Ast.Int (-n)
     | e -> Ast.Un (Ast.Neg, e))
  | Token.BANG ->
    advance st;
    Ast.Un (Ast.Not, parse_unary st)
  | Token.TILDE ->
    advance st;
    Ast.Un (Ast.Bnot, parse_unary st)
  | Token.STAR ->
    advance st;
    Ast.Load (parse_unary st, Ast.Int 0)
  | Token.LPAREN when peek_kind2 st = Token.KW_INT ->
    (* cast: "(" type ")" unary *)
    advance st;
    let t = parse_typ st in
    expect st Token.RPAREN;
    Ast.Cast (t, parse_unary st)
  | Token.INT _ | Token.IDENT _ | Token.KW_KERNEL | Token.KW_VAR
  | Token.KW_IF | Token.KW_ELSE | Token.KW_WHILE | Token.KW_FOR
  | Token.KW_RETURN | Token.KW_INT | Token.KW_NULL | Token.LPAREN
  | Token.RPAREN | Token.LBRACE | Token.RBRACE | Token.LBRACKET
  | Token.RBRACKET | Token.COMMA | Token.SEMI | Token.COLON | Token.PLUS
  | Token.SLASH | Token.PERCENT | Token.AMP | Token.PIPE | Token.CARET
  | Token.SHL | Token.SHR | Token.LT | Token.LE | Token.GT | Token.GE
  | Token.EQEQ | Token.NEQ | Token.ASSIGN | Token.ANDAND | Token.OROR
  | Token.EOF ->
    parse_postfix st

and parse_postfix st =
  let base = parse_primary st in
  let rec loop base =
    if peek_kind st = Token.LBRACKET then begin
      advance st;
      let index = parse_expr_prec st 1 in
      expect st Token.RBRACKET;
      loop (Ast.Load (base, index))
    end
    else base
  in
  loop base

and parse_primary st =
  match peek_kind st with
  | Token.INT n ->
    advance st;
    Ast.Int n
  | Token.KW_NULL ->
    advance st;
    Ast.null_expr
  | Token.IDENT name ->
    advance st;
    if peek_kind st = Token.LPAREN then begin
      advance st;
      let rec args acc =
        if peek_kind st = Token.RPAREN then List.rev acc
        else begin
          let e = parse_expr_prec st 1 in
          if peek_kind st = Token.COMMA then begin
            advance st;
            args (e :: acc)
          end
          else List.rev (e :: acc)
        end
      in
      let arguments = args [] in
      expect st Token.RPAREN;
      Ast.Call (name, arguments)
    end
    else Ast.Var name
  | Token.LPAREN ->
    advance st;
    let e = parse_expr_prec st 1 in
    expect st Token.RPAREN;
    e
  | k ->
    Loc.error (here st) "expected expression but found '%s'"
      (Token.kind_to_string k)

let parse_expression st = parse_expr_prec st 1

(* An assignment's left-hand side is parsed as an expression and then
   reinterpreted: a variable becomes [Assign], an index form becomes
   [Store].  Anything else is not assignable. *)
let assignment_of st lhs_loc lhs rhs =
  match lhs with
  | Ast.Var name -> Ast.Assign (name, rhs)
  | Ast.Load (base, index) -> Ast.Store (base, index, rhs)
  | Ast.Int _ | Ast.Bin _ | Ast.Un _ | Ast.Cast _ | Ast.Call _ ->
    ignore st;
    Loc.error lhs_loc "left-hand side of '=' is not assignable"

let parse_simple_assign st =
  let lhs_loc = here st in
  let lhs = parse_expression st in
  expect st Token.ASSIGN;
  let rhs = parse_expression st in
  assignment_of st lhs_loc lhs rhs

let rec parse_stmt st : Ast.stmt list =
  match peek_kind st with
  | Token.KW_VAR ->
    advance st;
    let name = expect_ident st in
    expect st Token.COLON;
    let t = parse_typ st in
    let init =
      if peek_kind st = Token.ASSIGN then begin
        advance st;
        Some (parse_expression st)
      end
      else None
    in
    expect st Token.SEMI;
    [ Ast.Decl (name, t, init) ]
  | Token.KW_IF ->
    advance st;
    expect st Token.LPAREN;
    let cond = parse_expression st in
    expect st Token.RPAREN;
    let then_branch = parse_block st in
    let else_branch =
      if peek_kind st = Token.KW_ELSE then begin
        advance st;
        if peek_kind st = Token.KW_IF then parse_stmt st else parse_block st
      end
      else []
    in
    [ Ast.If (cond, then_branch, else_branch) ]
  | Token.KW_WHILE ->
    advance st;
    expect st Token.LPAREN;
    let cond = parse_expression st in
    expect st Token.RPAREN;
    let body = parse_block st in
    [ Ast.While (cond, body) ]
  | Token.KW_FOR ->
    advance st;
    expect st Token.LPAREN;
    let init =
      if peek_kind st = Token.SEMI then [] else [ parse_simple_assign st ]
    in
    expect st Token.SEMI;
    let cond =
      if peek_kind st = Token.SEMI then Ast.Int 1 else parse_expression st
    in
    expect st Token.SEMI;
    let step =
      if peek_kind st = Token.RPAREN then [] else [ parse_simple_assign st ]
    in
    expect st Token.RPAREN;
    let body = parse_block st in
    init @ [ Ast.While (cond, body @ step) ]
  | Token.KW_RETURN ->
    advance st;
    let value =
      if peek_kind st = Token.SEMI then None else Some (parse_expression st)
    in
    expect st Token.SEMI;
    [ Ast.Return value ]
  | Token.INT _ | Token.IDENT _ | Token.KW_KERNEL | Token.KW_ELSE
  | Token.KW_INT | Token.KW_NULL | Token.LPAREN | Token.RPAREN
  | Token.LBRACE | Token.RBRACE | Token.LBRACKET | Token.RBRACKET
  | Token.COMMA | Token.SEMI | Token.COLON | Token.STAR | Token.PLUS
  | Token.MINUS | Token.SLASH | Token.PERCENT | Token.AMP | Token.PIPE
  | Token.CARET | Token.TILDE | Token.BANG | Token.SHL | Token.SHR
  | Token.LT | Token.LE | Token.GT | Token.GE | Token.EQEQ | Token.NEQ
  | Token.ASSIGN | Token.ANDAND | Token.OROR | Token.EOF ->
    let stmt = parse_simple_assign st in
    expect st Token.SEMI;
    [ stmt ]

and parse_block st : Ast.stmt list =
  expect st Token.LBRACE;
  let rec go acc =
    if peek_kind st = Token.RBRACE then begin
      advance st;
      List.rev acc
    end
    else begin
      let stmts = parse_stmt st in
      go (List.rev_append stmts acc)
    end
  in
  go []

let parse_kernel_decl st : Ast.kernel =
  expect st Token.KW_KERNEL;
  let kname = expect_ident st in
  expect st Token.LPAREN;
  let rec params acc =
    if peek_kind st = Token.RPAREN then List.rev acc
    else begin
      let pname = expect_ident st in
      expect st Token.COLON;
      let ptyp = parse_typ st in
      let acc = { Ast.pname; ptyp } :: acc in
      if peek_kind st = Token.COMMA then begin
        advance st;
        params acc
      end
      else List.rev acc
    end
  in
  let params = params [] in
  expect st Token.RPAREN;
  let ret =
    if peek_kind st = Token.COLON then begin
      advance st;
      Some (parse_typ st)
    end
    else None
  in
  let body = parse_block st in
  { Ast.kname; params; ret; body }

let make_state src = { toks = Array.of_list (Lexer.tokenize src); pos = 0 }

let parse_program src =
  let st = make_state src in
  let rec go acc =
    if peek_kind st = Token.EOF then List.rev acc
    else go (parse_kernel_decl st :: acc)
  in
  go []

let parse_kernel src =
  match parse_program src with
  | [ k ] -> k
  | ks ->
    Loc.error Loc.dummy "expected exactly one kernel, found %d"
      (List.length ks)

let parse_expr src =
  let st = make_state src in
  let e = parse_expression st in
  expect st Token.EOF;
  e
