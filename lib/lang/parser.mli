(** Recursive-descent parser for HTL.

    Syntactic sugar handled here rather than in the AST:
    - [for (init; cond; step) { body }] desugars to
      [init; while (cond) { body; step }];
    - unary [*e] desugars to [e\[0\]];
    - [null] desugars to [(int* ) 0];
    - a missing for-loop condition means [1] (always true). *)

val parse_program : string -> Ast.program
(** Parse a whole source file.  Raises {!Loc.Error} on syntax errors. *)

val parse_kernel : string -> Ast.kernel
(** Parse a source expected to contain exactly one kernel. *)

val parse_expr : string -> Ast.expr
(** Parse a standalone expression (used by tests and the CLI). *)
