(** Source positions and front-end error reporting. *)

type t = { line : int; col : int }

val dummy : t

val to_string : t -> string
(** ["line:col"]. *)

exception Error of t * string
(** Raised by the lexer, parser and typechecker. *)

val error : t -> ('a, unit, string, 'b) format4 -> 'a
(** [error loc fmt ...] raises {!Error} with a formatted message. *)
