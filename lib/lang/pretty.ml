(* Everything is printed fully parenthesized below the top level, which
   makes the round-trip property trivial to maintain as operators are
   added. *)

let rec expr_to_string = function
  | Ast.Int n -> string_of_int n
  | Ast.Var name -> name
  | Ast.Bin (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (Ast.binop_to_string op)
      (expr_to_string b)
  | Ast.Un (op, e) ->
    Printf.sprintf "(%s%s)" (Ast.unop_to_string op) (expr_to_string e)
  | Ast.Load (base, index) ->
    Printf.sprintf "%s[%s]" (atom_to_string base) (expr_to_string index)
  | Ast.Cast (t, e) ->
    Printf.sprintf "((%s) %s)" (Ast.typ_to_string t) (atom_to_string e)
  | Ast.Call (name, args) ->
    Printf.sprintf "%s(%s)" name
      (String.concat ", " (List.map expr_to_string args))

(* An expression in a postfix/cast position must be an atom; wrap
   non-atoms in parentheses. *)
and atom_to_string e =
  match e with
  | Ast.Int n when n < 0 ->
    (* A bare negative literal in postfix position would reparse as a
       negated postfix expression. *)
    "(" ^ expr_to_string e ^ ")"
  | Ast.Int _ | Ast.Var _ | Ast.Load _ | Ast.Call _ -> expr_to_string e
  | Ast.Bin _ | Ast.Un _ | Ast.Cast _ -> "(" ^ expr_to_string e ^ ")"

let pad indent = String.make indent ' '

let rec stmt_to_string ?(indent = 0) stmt =
  let p = pad indent in
  match stmt with
  | Ast.Decl (name, t, None) ->
    Printf.sprintf "%svar %s: %s;" p name (Ast.typ_to_string t)
  | Ast.Decl (name, t, Some e) ->
    Printf.sprintf "%svar %s: %s = %s;" p name (Ast.typ_to_string t)
      (expr_to_string e)
  | Ast.Assign (name, e) -> Printf.sprintf "%s%s = %s;" p name (expr_to_string e)
  | Ast.Store (base, index, value) ->
    Printf.sprintf "%s%s[%s] = %s;" p (atom_to_string base)
      (expr_to_string index) (expr_to_string value)
  | Ast.If (cond, then_b, []) ->
    Printf.sprintf "%sif (%s) {\n%s\n%s}" p (expr_to_string cond)
      (body_to_string ~indent:(indent + 2) then_b)
      p
  | Ast.If (cond, then_b, else_b) ->
    Printf.sprintf "%sif (%s) {\n%s\n%s} else {\n%s\n%s}" p
      (expr_to_string cond)
      (body_to_string ~indent:(indent + 2) then_b)
      p
      (body_to_string ~indent:(indent + 2) else_b)
      p
  | Ast.While (cond, body) ->
    Printf.sprintf "%swhile (%s) {\n%s\n%s}" p (expr_to_string cond)
      (body_to_string ~indent:(indent + 2) body)
      p
  | Ast.Return None -> Printf.sprintf "%sreturn;" p
  | Ast.Return (Some e) -> Printf.sprintf "%sreturn %s;" p (expr_to_string e)

and body_to_string ~indent stmts =
  String.concat "\n" (List.map (stmt_to_string ~indent) stmts)

let kernel_to_string (k : Ast.kernel) =
  let params =
    String.concat ", "
      (List.map
         (fun { Ast.pname; ptyp } ->
           Printf.sprintf "%s: %s" pname (Ast.typ_to_string ptyp))
         k.params)
  in
  let ret =
    match k.ret with
    | None -> ""
    | Some t -> Printf.sprintf " : %s" (Ast.typ_to_string t)
  in
  Printf.sprintf "kernel %s(%s)%s {\n%s\n}" k.kname params ret
    (body_to_string ~indent:2 k.body)

let program_to_string kernels =
  String.concat "\n\n" (List.map kernel_to_string kernels) ^ "\n"
