(** Kernel-call inlining — the only call implementation an HLS flow
    has, since the generated datapaths have no call stack.

    A call [x = f(a, b)] is replaced by fresh declarations binding
    [f]'s parameters to the argument expressions, a renamed copy of
    [f]'s body, and a final assignment of the returned expression to
    [x].  For that rewrite to be a simple splice, a *callee* must end
    in a single trailing [return e] with no other returns — checked
    here with a clear error.  Recursion is rejected by the
    typechecker.

    Callees may themselves call: inlining processes kernels in call-
    graph order, so every spliced body is already call-free. *)

exception Inline_error of string

val program : Ast.program -> Ast.program
(** Inline every call in every kernel; kernel order and names are
    preserved (callees remain available as standalone kernels).  The
    program must have passed {!Typecheck.check_program}. *)

val kernel : program:Ast.program -> Ast.kernel -> Ast.kernel
(** Inline the calls of one kernel against the (already inlined, or
    call-free) [program]. *)
