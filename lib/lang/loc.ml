type t = { line : int; col : int }

let dummy = { line = 0; col = 0 }

let to_string { line; col } = Printf.sprintf "%d:%d" line col

exception Error of t * string

let error loc fmt = Printf.ksprintf (fun msg -> raise (Error (loc, msg))) fmt
