(** Hand-written lexer for HTL sources. *)

val tokenize : string -> Token.t list
(** Lex a whole source string; the result always ends with an [EOF]
    token.  Raises {!Loc.Error} on malformed input.  Supports decimal
    and [0x] hexadecimal literals, [//] line comments and [/* */] block
    comments. *)
