(** Static checks for HTL kernels.

    The type system is intentionally small but strict: words and
    pointers do not mix without a cast, indexing needs a pointer base
    and an integer index, conditions are integers, comparisons need
    identically-typed operands, and every variable is declared exactly
    once per scope before use.  [return]s must agree with the kernel's
    declared result type, and a kernel with a result type must return
    on every path. *)

val check_kernel : Ast.kernel -> unit
(** Raises {!Loc.Error} describing the first violation found.  Calls
    are rejected here — kernels with calls must be checked as part of a
    program ({!check_program}) and inlined ({!Inline}) before any
    kernel-level processing. *)

val check_program : Ast.program -> unit
(** Checks each kernel with the whole program's kernels callable,
    rejects duplicate kernel names, calls to unknown or void kernels,
    argument-type mismatches, calls in expression (non-RHS) position,
    and (mutual) recursion. *)

val expr_type : (string * Ast.typ) list -> Ast.expr -> Ast.typ
(** Type of an expression in the given variable environment (exposed for
    the compiler's lowering phase and for tests). *)

val called_names : string list -> Ast.stmt list -> string list
(** Kernel names called anywhere in a statement list, prepended to the
    accumulator (exposed for the inliner). *)
