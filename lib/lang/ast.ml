(* Abstract syntax of HTL, the C-like input language of the synthesis
   flow.  One [kernel] is one thread function; a [program] is the set of
   thread functions the partitioner can map to hardware or software.

   All values are 64-bit words ([word_bytes] = 8).  Pointers are word
   values holding byte addresses; [e1\[e2\]] addresses the word at
   [e1 + e2 * word_bytes].  There is no pointer arithmetic: converting
   between pointer and integer views requires an explicit cast, and the
   logical operators [&&]/[||] are strict (kernels are expression-
   side-effect free, so short-circuiting is unobservable except through
   faults, which kernels must guard with [if]). *)

let word_bytes = 8

type typ = Tint | Tptr of typ

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Land
  | Lor

type unop = Neg | Not | Bnot

type expr =
  | Int of int
  | Var of string
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Load of expr * expr (* base[index] *)
  | Cast of typ * expr
  | Call of string * expr list
      (* kernel call; only valid as the whole right-hand side of an
         assignment or initializer, and always inlined before any
         further processing (see Inline) *)

type stmt =
  | Decl of string * typ * expr option
  | Assign of string * expr
  | Store of expr * expr * expr (* base[index] = value *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr option

type param = { pname : string; ptyp : typ }

type kernel = {
  kname : string;
  params : param list;
  ret : typ option;
  body : stmt list;
}

type program = kernel list

let null_expr = Cast (Tptr Tint, Int 0)

let rec typ_equal a b =
  match (a, b) with
  | Tint, Tint -> true
  | Tptr a, Tptr b -> typ_equal a b
  | (Tint | Tptr _), _ -> false

let rec typ_to_string = function
  | Tint -> "int"
  | Tptr t -> typ_to_string t ^ "*"

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | Land -> "&&"
  | Lor -> "||"

let unop_to_string = function Neg -> "-" | Not -> "!" | Bnot -> "~"

let find_kernel program name =
  List.find_opt (fun k -> k.kname = name) program

(* Structural size measures, used by reports and Table 5. *)

let rec expr_size = function
  | Int _ | Var _ -> 1
  | Un (_, e) | Cast (_, e) -> 1 + expr_size e
  | Bin (_, a, b) | Load (a, b) -> 1 + expr_size a + expr_size b
  | Call (_, args) ->
    List.fold_left (fun acc a -> acc + expr_size a) 1 args

let rec stmt_size = function
  | Decl (_, _, None) -> 1
  | Decl (_, _, Some e) -> 1 + expr_size e
  | Assign (_, e) -> 1 + expr_size e
  | Store (b, i, v) -> 1 + expr_size b + expr_size i + expr_size v
  | If (c, t, f) -> 1 + expr_size c + body_size t + body_size f
  | While (c, b) -> 1 + expr_size c + body_size b
  | Return None -> 1
  | Return (Some e) -> 1 + expr_size e

and body_size stmts = List.fold_left (fun acc s -> acc + stmt_size s) 0 stmts

let kernel_size k = body_size k.body
