let err fmt = Loc.error Loc.dummy fmt

(* The kernels callable from the body being checked ([] outside
   [check_program]).  Calls are only legal as the entire right-hand
   side of an assignment or initializer — [expr_type] therefore rejects
   them, and the statement checker handles that shape itself. *)

let rec expr_type env expr =
  match expr with
  | Ast.Int _ -> Ast.Tint
  | Ast.Var name -> (
    match List.assoc_opt name env with
    | Some t -> t
    | None -> err "use of undeclared variable '%s'" name)
  | Ast.Cast (t, e) ->
    ignore (expr_type env e);
    t
  | Ast.Un (op, e) -> (
    match expr_type env e with
    | Ast.Tint -> Ast.Tint
    | Ast.Tptr _ ->
      err "unary '%s' applied to a pointer" (Ast.unop_to_string op))
  | Ast.Load (base, index) -> (
    let bt = expr_type env base in
    let it = expr_type env index in
    match (bt, it) with
    | Ast.Tptr elem, Ast.Tint -> elem
    | Ast.Tint, _ -> err "indexing a non-pointer value"
    | Ast.Tptr _, Ast.Tptr _ -> err "index must be an integer")
  | Ast.Call (name, _) ->
    err "call to '%s' must be the whole right-hand side of an assignment"
      name
  | Ast.Bin (op, a, b) -> (
    let ta = expr_type env a in
    let tb = expr_type env b in
    match op with
    | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      if Ast.typ_equal ta tb then Ast.Tint
      else
        err "comparison '%s' between %s and %s" (Ast.binop_to_string op)
          (Ast.typ_to_string ta) (Ast.typ_to_string tb)
    | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Rem | Ast.And | Ast.Or
    | Ast.Xor | Ast.Shl | Ast.Shr | Ast.Land | Ast.Lor -> (
      match (ta, tb) with
      | Ast.Tint, Ast.Tint -> Ast.Tint
      | (Ast.Tptr _ | Ast.Tint), _ ->
        err "arithmetic '%s' between %s and %s (cast pointers explicitly)"
          (Ast.binop_to_string op) (Ast.typ_to_string ta)
          (Ast.typ_to_string tb)))

let check_int env e what =
  match expr_type env e with
  | Ast.Tint -> ()
  | Ast.Tptr _ -> err "%s must be an integer, found a pointer" what

(* Type of a right-hand side, allowing a top-level call when the
   callee table has it. *)
let rhs_type kernels env e =
  match e with
  | Ast.Call (name, args) -> (
    match List.find_opt (fun (k : Ast.kernel) -> k.Ast.kname = name) kernels with
    | None -> err "call to unknown kernel '%s'" name
    | Some callee ->
      if List.length args <> List.length callee.Ast.params then
        err "kernel '%s' expects %d argument(s), got %d" name
          (List.length callee.Ast.params)
          (List.length args);
      List.iter2
        (fun arg { Ast.pname; ptyp } ->
          let ta = expr_type env arg in
          if not (Ast.typ_equal ta ptyp) then
            err "argument '%s' of '%s' has type %s, expected %s" pname name
              (Ast.typ_to_string ta) (Ast.typ_to_string ptyp))
        args callee.Ast.params;
      (match callee.Ast.ret with
       | Some rt -> rt
       | None -> err "called kernel '%s' returns no value" name))
  | _ -> expr_type env e

(* Returns the environment extended with declarations made at this
   statement level, and whether the statement definitely returns. *)
let rec check_stmt ?(kernels = []) ret env stmt =
  match stmt with
  | Ast.Decl (name, t, init) ->
    if List.mem_assoc name env then err "variable '%s' redeclared" name;
    (match init with
     | None -> ()
     | Some e ->
       let te = rhs_type kernels env e in
       if not (Ast.typ_equal te t) then
         err "initializer of '%s' has type %s, expected %s" name
           (Ast.typ_to_string te) (Ast.typ_to_string t));
    ((name, t) :: env, false)
  | Ast.Assign (name, e) -> (
    match List.assoc_opt name env with
    | None -> err "assignment to undeclared variable '%s'" name
    | Some t ->
      let te = rhs_type kernels env e in
      if not (Ast.typ_equal te t) then
        err "assignment to '%s' has type %s, expected %s" name
          (Ast.typ_to_string te) (Ast.typ_to_string t);
      (env, false))
  | Ast.Store (base, index, value) -> (
    check_int env index "store index";
    match expr_type env base with
    | Ast.Tint -> err "store through a non-pointer value"
    | Ast.Tptr elem ->
      let tv = expr_type env value in
      if not (Ast.typ_equal tv elem) then
        err "stored value has type %s, expected %s" (Ast.typ_to_string tv)
          (Ast.typ_to_string elem);
      (env, false))
  | Ast.If (cond, then_b, else_b) ->
    check_int env cond "if condition";
    let rt = check_body ~kernels ret env then_b in
    let re = check_body ~kernels ret env else_b in
    (env, rt && re && else_b <> [])
  | Ast.While (cond, body) ->
    check_int env cond "while condition";
    ignore (check_body ~kernels ret env body);
    (env, false)
  | Ast.Return value -> (
    match (ret, value) with
    | None, None -> (env, true)
    | None, Some _ -> err "kernel has no result type but returns a value"
    | Some _, None -> err "kernel must return a value"
    | Some rt, Some e ->
      let te = expr_type env e in
      if not (Ast.typ_equal te rt) then
        err "returned value has type %s, expected %s" (Ast.typ_to_string te)
          (Ast.typ_to_string rt);
      (env, true))

and check_body ?(kernels = []) ret env stmts =
  let _, returns =
    List.fold_left
      (fun (env, returns) stmt ->
        let env, r = check_stmt ~kernels ret env stmt in
        (env, returns || r))
      (env, false) stmts
  in
  returns

let check_kernel_in ~kernels (k : Ast.kernel) =
  let rec dup_param = function
    | [] -> ()
    | { Ast.pname; _ } :: rest ->
      if List.exists (fun p -> p.Ast.pname = pname) rest then
        err "duplicate parameter '%s' in kernel '%s'" pname k.kname;
      dup_param rest
  in
  dup_param k.params;
  let env = List.map (fun { Ast.pname; ptyp } -> (pname, ptyp)) k.params in
  let returns = check_body ~kernels k.ret env k.body in
  match k.ret with
  | Some _ when not returns ->
    err "kernel '%s' does not return a value on every path" k.kname
  | Some _ | None -> ()

let check_kernel k = check_kernel_in ~kernels:[] k

(* Kernel names called anywhere in a body. *)
let rec called_names acc stmts =
  let rec expr acc = function
    | Ast.Call (f, args) -> List.fold_left expr (f :: acc) args
    | Ast.Bin (_, a, b) | Ast.Load (a, b) -> expr (expr acc a) b
    | Ast.Un (_, e) | Ast.Cast (_, e) -> expr acc e
    | Ast.Int _ | Ast.Var _ -> acc
  in
  List.fold_left
    (fun acc stmt ->
      match stmt with
      | Ast.Decl (_, _, Some e) | Ast.Assign (_, e) -> expr acc e
      | Ast.Decl (_, _, None) -> acc
      | Ast.Store (b, i, v) -> expr (expr (expr acc b) i) v
      | Ast.If (c, t, f) -> called_names (called_names (expr acc c) t) f
      | Ast.While (c, b) -> called_names (expr acc c) b
      | Ast.Return (Some e) -> expr acc e
      | Ast.Return None -> acc)
    acc stmts

let check_no_recursion kernels =
  (* DFS over the call graph; a back edge is (mutual) recursion, which
     an inlining flow cannot synthesize. *)
  let visiting = Hashtbl.create 8 in
  let finished = Hashtbl.create 8 in
  let rec visit (k : Ast.kernel) =
    if Hashtbl.mem visiting k.Ast.kname then
      err "recursive kernel call involving '%s'" k.Ast.kname;
    if not (Hashtbl.mem finished k.Ast.kname) then begin
      Hashtbl.replace visiting k.Ast.kname ();
      List.iter
        (fun callee_name ->
          match Ast.find_kernel kernels callee_name with
          | Some callee -> visit callee
          | None -> ())
        (called_names [] k.Ast.body);
      Hashtbl.remove visiting k.Ast.kname;
      Hashtbl.replace finished k.Ast.kname ()
    end
  in
  List.iter visit kernels

let check_program kernels =
  let rec dup = function
    | [] -> ()
    | (k : Ast.kernel) :: rest ->
      if List.exists (fun (k' : Ast.kernel) -> k'.kname = k.kname) rest then
        err "duplicate kernel name '%s'" k.kname;
      dup rest
  in
  dup kernels;
  check_no_recursion kernels;
  List.iter (check_kernel_in ~kernels) kernels
