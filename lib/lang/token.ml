(* Lexical tokens of HTL.  Each carries the location of its first
   character for error reporting. *)

type kind =
  | INT of int
  | IDENT of string
  | KW_KERNEL
  | KW_VAR
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOR
  | KW_RETURN
  | KW_INT
  | KW_NULL
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | COLON
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | AMP
  | PIPE
  | CARET
  | TILDE
  | BANG
  | SHL
  | SHR
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NEQ
  | ASSIGN
  | ANDAND
  | OROR
  | EOF

type t = { kind : kind; loc : Loc.t }

let kind_to_string = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | KW_KERNEL -> "kernel"
  | KW_VAR -> "var"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_FOR -> "for"
  | KW_RETURN -> "return"
  | KW_INT -> "int"
  | KW_NULL -> "null"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | SEMI -> ";"
  | COLON -> ":"
  | STAR -> "*"
  | PLUS -> "+"
  | MINUS -> "-"
  | SLASH -> "/"
  | PERCENT -> "%"
  | AMP -> "&"
  | PIPE -> "|"
  | CARET -> "^"
  | TILDE -> "~"
  | BANG -> "!"
  | SHL -> "<<"
  | SHR -> ">>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EQEQ -> "=="
  | NEQ -> "!="
  | ASSIGN -> "="
  | ANDAND -> "&&"
  | OROR -> "||"
  | EOF -> "<eof>"
