(** Reference interpreter for HTL kernels.

    This is the semantic oracle of the whole flow: the compiled IR, the
    simulated CPU and the synthesized accelerators must all agree with
    it.  It is parameterized over the memory so tests can run it against
    a plain array while the system runs it against a simulated address
    space. *)

type memory = {
  load : int -> int;        (** word at byte address *)
  store : int -> int -> unit; (** [store addr value] *)
}

exception Eval_error of string
(** Division/remainder by zero, or falling off the end of a
    value-returning kernel. *)

val array_memory : int array -> memory
(** Memory backed by an int array; byte address [8*i] maps to index
    [i].  Out-of-range accesses raise {!Eval_error}. *)

val run_kernel : memory -> Ast.kernel -> args:int list -> int option
(** Execute a kernel with the given argument words.  Returns the value
    of the executed [return], or [None] for void kernels.  Raises
    [Invalid_argument] if the argument count mismatches. *)

val eval_binop : Ast.binop -> int -> int -> int
(** Scalar semantics of each binary operator (shared with the IR
    interpreter and constant folding).  Comparisons and the strict
    logical operators yield 0/1.  Shifts mask their count to 0..63.
    Raises {!Eval_error} on division by zero. *)

val eval_unop : Ast.unop -> int -> int
