type memory = { load : int -> int; store : int -> int -> unit }

exception Eval_error of string

let array_memory data =
  let bound = Array.length data * Ast.word_bytes in
  let index addr =
    if addr < 0 || addr >= bound || addr mod Ast.word_bytes <> 0 then
      raise
        (Eval_error (Printf.sprintf "bad memory access at address %d" addr));
    addr / Ast.word_bytes
  in
  {
    load = (fun addr -> data.(index addr));
    store = (fun addr value -> data.(index addr) <- value);
  }

let bool_int b = if b then 1 else 0

let eval_binop op a b =
  match op with
  | Ast.Add -> a + b
  | Ast.Sub -> a - b
  | Ast.Mul -> a * b
  | Ast.Div ->
    if b = 0 then raise (Eval_error "division by zero");
    a / b
  | Ast.Rem ->
    if b = 0 then raise (Eval_error "remainder by zero");
    a mod b
  | Ast.And -> a land b
  | Ast.Or -> a lor b
  | Ast.Xor -> a lxor b
  | Ast.Shl -> a lsl (b land 63)
  | Ast.Shr -> a asr (b land 63)
  | Ast.Lt -> bool_int (a < b)
  | Ast.Le -> bool_int (a <= b)
  | Ast.Gt -> bool_int (a > b)
  | Ast.Ge -> bool_int (a >= b)
  | Ast.Eq -> bool_int (a = b)
  | Ast.Ne -> bool_int (a <> b)
  | Ast.Land -> bool_int (a <> 0 && b <> 0)
  | Ast.Lor -> bool_int (a <> 0 || b <> 0)

let eval_unop op a =
  match op with
  | Ast.Neg -> -a
  | Ast.Not -> bool_int (a = 0)
  | Ast.Bnot -> lnot a

(* The variable environment is a mutable name -> value table; HTL
   forbids shadowing, so a flat table matches the typechecker's scoping. *)

exception Returned of int option

let rec eval_expr mem env expr =
  match expr with
  | Ast.Int n -> n
  | Ast.Var name -> (
    match Hashtbl.find_opt env name with
    | Some v -> v
    | None -> raise (Eval_error ("unbound variable " ^ name)))
  | Ast.Bin (op, a, b) ->
    let va = eval_expr mem env a in
    let vb = eval_expr mem env b in
    eval_binop op va vb
  | Ast.Un (op, e) -> eval_unop op (eval_expr mem env e)
  | Ast.Load (base, index) ->
    let vb = eval_expr mem env base in
    let vi = eval_expr mem env index in
    mem.load (vb + (vi * Ast.word_bytes))
  | Ast.Cast (_, e) -> eval_expr mem env e
  | Ast.Call (name, _) ->
    raise (Eval_error ("call to '" ^ name ^ "' was not inlined"))

let rec exec_stmt mem env stmt =
  match stmt with
  | Ast.Decl (name, _, init) ->
    let v = match init with None -> 0 | Some e -> eval_expr mem env e in
    Hashtbl.replace env name v
  | Ast.Assign (name, e) -> Hashtbl.replace env name (eval_expr mem env e)
  | Ast.Store (base, index, value) ->
    let vb = eval_expr mem env base in
    let vi = eval_expr mem env index in
    let v = eval_expr mem env value in
    mem.store (vb + (vi * Ast.word_bytes)) v
  | Ast.If (cond, then_b, else_b) ->
    if eval_expr mem env cond <> 0 then exec_body mem env then_b
    else exec_body mem env else_b
  | Ast.While (cond, body) ->
    let rec loop () =
      if eval_expr mem env cond <> 0 then begin
        exec_body mem env body;
        loop ()
      end
    in
    loop ()
  | Ast.Return value ->
    raise (Returned (Option.map (eval_expr mem env) value))

and exec_body mem env stmts = List.iter (exec_stmt mem env) stmts

let run_kernel mem (k : Ast.kernel) ~args =
  if List.length args <> List.length k.params then
    invalid_arg
      (Printf.sprintf "kernel %s expects %d arguments, got %d" k.kname
         (List.length k.params) (List.length args));
  let env = Hashtbl.create 16 in
  List.iter2
    (fun { Ast.pname; _ } v -> Hashtbl.replace env pname v)
    k.params args;
  match exec_body mem env k.body with
  | () -> (
    match k.ret with
    | None -> None
    | Some _ ->
      raise (Eval_error ("kernel " ^ k.kname ^ " finished without return")))
  | exception Returned v -> v
