exception Inline_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Inline_error m)) fmt

(* Callee shape: straight body + exactly one trailing [return e]. *)
let split_callee (k : Ast.kernel) =
  let rec no_returns stmts =
    List.for_all
      (function
        | Ast.Return _ -> false
        | Ast.If (_, t, f) -> no_returns t && no_returns f
        | Ast.While (_, b) -> no_returns b
        | Ast.Decl _ | Ast.Assign _ | Ast.Store _ -> true)
      stmts
  in
  match List.rev k.Ast.body with
  | Ast.Return (Some e) :: rev_prefix when no_returns (List.rev rev_prefix) ->
    (List.rev rev_prefix, e)
  | _ ->
    fail
      "kernel '%s' cannot be inlined: callees need a single trailing \
       'return <expr>'"
      k.Ast.kname

(* Rename every binding of the callee (params and locals) with a fresh
   suffix; the callee is closed (typechecked against its params only),
   so renaming every identifier it binds is a complete alpha-
   conversion. *)
let rename_callee suffix (k : Ast.kernel) body result =
  let renames = Hashtbl.create 8 in
  List.iter
    (fun { Ast.pname; _ } ->
      Hashtbl.replace renames pname (pname ^ suffix))
    k.Ast.params;
  let rename y =
    match Hashtbl.find_opt renames y with Some y' -> y' | None -> y
  in
  let rec rn_expr = function
    | Ast.Int _ as e -> e
    | Ast.Var y -> Ast.Var (rename y)
    | Ast.Bin (op, a, b) -> Ast.Bin (op, rn_expr a, rn_expr b)
    | Ast.Un (op, e) -> Ast.Un (op, rn_expr e)
    | Ast.Load (b, i) -> Ast.Load (rn_expr b, rn_expr i)
    | Ast.Cast (t, e) -> Ast.Cast (t, rn_expr e)
    | Ast.Call (f, args) -> Ast.Call (f, List.map rn_expr args)
  in
  let rec rn_stmt = function
    | Ast.Decl (y, t, init) ->
      let init = Option.map rn_expr init in
      let y' = y ^ suffix in
      Hashtbl.replace renames y y';
      Ast.Decl (y', t, init)
    | Ast.Assign (y, e) -> Ast.Assign (rename y, rn_expr e)
    | Ast.Store (b, i, v) -> Ast.Store (rn_expr b, rn_expr i, rn_expr v)
    | Ast.If (c, t, f) -> Ast.If (rn_expr c, rn_body t, rn_body f)
    | Ast.While (c, b) -> Ast.While (rn_expr c, rn_body b)
    | Ast.Return v -> Ast.Return (Option.map rn_expr v)
  and rn_body stmts = List.map rn_stmt stmts in
  let body' = rn_body body in
  (* The result expression is renamed after the body so locals resolve
     to their renamed versions. *)
  (body', rn_expr result)

let rec has_calls stmts =
  let rec expr = function
    | Ast.Call _ -> true
    | Ast.Bin (_, a, b) | Ast.Load (a, b) -> expr a || expr b
    | Ast.Un (_, e) | Ast.Cast (_, e) -> expr e
    | Ast.Int _ | Ast.Var _ -> false
  in
  List.exists
    (function
      | Ast.Decl (_, _, Some e) | Ast.Assign (_, e) | Ast.Return (Some e) ->
        expr e
      | Ast.Decl (_, _, None) | Ast.Return None -> false
      | Ast.Store (b, i, v) -> expr b || expr i || expr v
      | Ast.If (c, t, f) -> expr c || has_calls t || has_calls f
      | Ast.While (c, b) -> expr c || has_calls b)
    stmts

let kernel ~program (k : Ast.kernel) =
  let counter = ref 0 in
  let expand target f args =
    let callee =
      match Ast.find_kernel program f with
      | Some c -> c
      | None -> fail "call to unknown kernel '%s'" f
    in
    incr counter;
    let suffix = Printf.sprintf "~c%d" !counter in
    let body, result = split_callee callee in
    let body, result = rename_callee suffix callee body result in
    let param_binds =
      List.map2
        (fun { Ast.pname; ptyp } arg ->
          Ast.Decl (pname ^ suffix, ptyp, Some arg))
        callee.Ast.params args
    in
    param_binds @ body @ [ Ast.Assign (target, result) ]
  in
  let rec walk stmts = List.concat_map walk_stmt stmts
  and walk_stmt stmt =
    match stmt with
    | Ast.Decl (x, t, Some (Ast.Call (f, args))) ->
      Ast.Decl (x, t, None) :: expand x f args
    | Ast.Assign (x, Ast.Call (f, args)) -> expand x f args
    | Ast.If (c, t, f) -> [ Ast.If (c, walk t, walk f) ]
    | Ast.While (c, b) -> [ Ast.While (c, walk b) ]
    | Ast.Decl _ | Ast.Assign _ | Ast.Store _ | Ast.Return _ -> [ stmt ]
  in
  { k with Ast.body = walk k.Ast.body }

(* Bottom-up over the (acyclic) call graph: each round inlines every
   kernel whose callees are already call-free; the deepest chain is at
   most the kernel count, which bounds the rounds. *)
let program kernels =
  let rec step current round =
    if List.for_all (fun k -> not (has_calls k.Ast.body)) current then
      current
    else if round > List.length kernels then
      fail "call graph failed to flatten (recursion should be rejected \
            by the typechecker)"
    else begin
      let callee_ready f =
        match Ast.find_kernel current f with
        | Some c -> not (has_calls c.Ast.body)
        | None -> fail "call to unknown kernel '%s'" f
      in
      let next =
        List.map
          (fun (k : Ast.kernel) ->
            if
              has_calls k.Ast.body
              && List.for_all callee_ready
                   (List.sort_uniq compare (Typecheck.called_names [] k.Ast.body))
            then kernel ~program:current k
            else k)
          current
      in
      step next (round + 1)
    end
  in
  step kernels 0
