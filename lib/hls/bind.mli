(** Functional-unit and register binding.

    The schedule fixes how many same-class operations execute in one
    cycle; binding assigns each operation a concrete unit (greedy,
    cycle-local) and sizes the register file from peak liveness.  Units
    are shared across basic blocks — the FSM is one datapath. *)

type t = {
  schedule : Schedule.t;
  fu_counts : (Optypes.op_class * int) list;
      (** units instantiated per class (classes with zero uses omitted) *)
  fu_of_instr : (Vmht_ir.Ir.label * int, int) Hashtbl.t;
      (** (block label, instruction index) -> unit index within class *)
  reg_count : int; (** datapath registers (peak simultaneous liveness) *)
  mem_banks : int;
      (** scratchpad banks the schedule was arbitrated against (from
          {!Schedule.mem_model}; 1 = flat memory, no arbiter) *)
  mem_channels : int;
      (** peak same-cycle memory accesses = request channels the
          datapath needs (0 for memory-free kernels) *)
}

val bind : Schedule.t -> t

val fu_count : t -> Optypes.op_class -> int

val total_fus : t -> int

val to_string : t -> string
