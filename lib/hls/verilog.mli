(** Verilog emission for synthesized hardware threads.

    Produces a synthesizable-style RTL module: one state register, a
    case-based controller, registered datapath writes, and a simple
    request/acknowledge memory interface (address/wdata/rdata/valid).
    The emitted text is for inspection and downstream tooling — the
    repository's "board" is the cycle simulator, so the RTL is not run,
    but its structure mirrors exactly what {!Accel.run} simulates. *)

val emit : Fsm.t -> string
(** RTL for the bare datapath + FSM (no memory-interface wrapper). *)

val emit_with_wrapper : Fsm.t -> wrapper_ports:string list -> string
(** Same, plus extra top-level ports contributed by the interface
    wrapper (e.g. the TLB/PTW control signals or DMA handshake). *)
