(** Verilog emission for synthesized hardware threads.

    Produces a synthesizable-style RTL module: one state register, a
    case-based controller, registered datapath writes, and a simple
    per-channel request/acknowledge memory interface
    (req/we/addr/wdata/rdata/ack).  The emitted text is executable: the
    RTL evaluator ([Vmht_rtl]) parses it back and runs the emitted
    bytes against the same memory/VM stack as {!Accel.run}, and the
    rtl1 experiment holds the two cycle- and result-identical.

    The contract the emitted FSM follows on every memory channel:
    issue-side assigns (req/we/addr/wdata) are written unconditionally
    at the state's entry edge and on every held edge (idempotent under
    stall), while *all* register commits — loaded data, pure-op
    results, the request deasserts and the state advance (or
    done/result on a returning state) — ride inside the conjunction of
    the state's acks, so a stalled state re-executes nothing.  The
    adapter side of the handshake is documented at
    [Vmht_rtl.Eval]. *)

val emit : Fsm.t -> string
(** RTL for the bare datapath + FSM (no memory-interface wrapper). *)

val emit_with_wrapper : Fsm.t -> wrapper_ports:string list -> string
(** Same, plus extra top-level ports contributed by the interface
    wrapper (e.g. the TLB/PTW control signals or DMA handshake). *)
