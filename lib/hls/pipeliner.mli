(** Loop pipelining by (simplified) iterative modulo scheduling — the
    flow's optional extension mode.

    For every innermost loop of the canonical two-block shape

    {v  header: <condition instrs>; br cond ? body : exit
        body:   <instrs>;           jmp header              v}

    the pipeliner computes an initiation interval [II] and a pipeline
    depth such that one iteration can be *initiated* every [II] cycles:

    - resource constraints: per modulo slot, class usage stays within
      the FU budget, and memory slots additionally pass the
      {!Schedule.Bank} arbitration of the configured
      {!Schedule.mem_model} (bank pressure raises the
      resource-constrained minimum II: a set of mutually conflicting
      accesses needs [ceil (size / ports_per_bank)] slots);
    - register recurrences: a value produced in one iteration and
      consumed in the next constrains [II] by the producer's latency
      plus the longest intra-iteration dependence path back to the
      producer (the recurrence-constrained minimum II, reported as
      [rec_mii]);
    - memory recurrences: stores conservatively recur against every
      load/store of the next iteration *unless* both addresses are
      provably streaming — [invariant_base + (induction << 3)] with
      distinct base registers — in which case iterations are assumed
      disjoint (the `restrict` discipline real HLS demands, documented
      in LANGUAGE.md).  Loop-carried load/store chains therefore bound
      the II through [rec_mii] like register recurrences do.

    Execution stays functionally sequential (so results are exact
    regardless of the plan); the accelerator charges [max(II, actual
    memory time)] per iteration plus a one-time fill of [depth - II],
    which is the standard throughput model of a modulo-scheduled
    loop. *)

type plan = {
  header : Vmht_ir.Ir.label;
  body : Vmht_ir.Ir.label;
  exit : Vmht_ir.Ir.label;
  ii : int;
  depth : int;
  unpipelined_cycles : int; (** header + body makespans, for reports *)
  rec_mii : int;
      (** recurrence-constrained minimum II (register and memory
          loop-carried chains) *)
  res_mii : int;
      (** resource-constrained minimum II, including bank pressure *)
}

val plan_loops :
  Vmht_ir.Ir.func -> resources:Schedule.resources -> plan list
(** Plans for every pipelinable loop where pipelining helps
    ([ii < unpipelined_cycles]). *)

val to_string : plan -> string
