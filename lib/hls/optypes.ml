module Ast = Vmht_lang.Ast
module Ir = Vmht_ir.Ir

type op_class = Alu | Cmp | Mul | Div | Shift | Mem | Move

let all_classes = [ Alu; Cmp; Mul; Div; Shift; Mem; Move ]

let class_name = function
  | Alu -> "alu"
  | Cmp -> "cmp"
  | Mul -> "mul"
  | Div -> "div"
  | Shift -> "shift"
  | Mem -> "mem"
  | Move -> "move"

let class_of_binop = function
  | Ast.Add | Ast.Sub | Ast.And | Ast.Or | Ast.Xor | Ast.Land | Ast.Lor -> Alu
  | Ast.Mul -> Mul
  | Ast.Div | Ast.Rem -> Div
  | Ast.Shl | Ast.Shr -> Shift
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne -> Cmp

let classify = function
  | Ir.Bin (op, _, _, _) -> class_of_binop op
  | Ir.Un _ -> Alu
  | Ir.Mov _ -> Move
  | Ir.Load _ | Ir.Store _ -> Mem

let latency = function
  | Alu | Cmp | Shift | Move -> 1
  | Mul -> 3
  | Div -> 16
  | Mem -> 1

type area = { lut : int; ff : int; dsp : int; bram : int }

let zero_area = { lut = 0; ff = 0; dsp = 0; bram = 0 }

let add_area a b =
  {
    lut = a.lut + b.lut;
    ff = a.ff + b.ff;
    dsp = a.dsp + b.dsp;
    bram = a.bram + b.bram;
  }

let scale_area k a =
  { lut = k * a.lut; ff = k * a.ff; dsp = k * a.dsp; bram = k * a.bram }

(* Per-FU area for a 64-bit datapath, in the range vendor reports give
   for such operators on 7-series-class fabric. *)
let fu_area = function
  | Alu -> { lut = 96; ff = 0; dsp = 0; bram = 0 }
  | Cmp -> { lut = 40; ff = 0; dsp = 0; bram = 0 }
  | Mul -> { lut = 180; ff = 96; dsp = 16; bram = 0 }
  | Div -> { lut = 1400; ff = 900; dsp = 0; bram = 0 }
  | Shift -> { lut = 190; ff = 0; dsp = 0; bram = 0 }
  | Mem -> { lut = 120; ff = 150; dsp = 0; bram = 0 }
  | Move -> zero_area

let register_area n = { lut = 20 * n; ff = 64 * n; dsp = 0; bram = 0 }

(* Banked-scratchpad arbitration: per-bank address decode, a request
   arbiter and the read-data return mux.  Only multi-bank memories pay
   it — one bank needs no arbiter, so banks=1 adds nothing. *)
let bank_area ~banks =
  if banks <= 1 then zero_area
  else { lut = 48 * banks; ff = 24 * banks; dsp = 0; bram = 0 }

let fsm_area ~states =
  let state_bits = max 1 (Vmht_util.Bits.ceil_log2 (max states 2)) in
  { lut = 60 + (9 * states); ff = state_bits + 16; dsp = 0; bram = 0 }

let area_to_string a =
  Printf.sprintf "LUT=%d FF=%d DSP=%d BRAM=%d" a.lut a.ff a.dsp a.bram
