module Ast = Vmht_lang.Ast
module Typecheck = Vmht_lang.Typecheck
module Ir = Vmht_ir.Ir
module Lower = Vmht_ir.Lower
module Pass_manager = Vmht_ir.Pass_manager
module Ast_unroll = Vmht_ir.Ast_unroll

type stats = {
  ir_instrs : int;
  blocks : int;
  states : int;
  reg_count : int;
  opt_report : Pass_manager.report;
  unrolled_loops : int;
  pipelined_loops : int;
}

type t = {
  name : string;
  func : Ir.func;
  schedule : Schedule.t;
  binding : Bind.t;
  area : Optypes.area;
  plans : Pipeliner.plan list;
  stats : stats;
}

let datapath_area (binding : Bind.t) ~states =
  let fu_area =
    List.fold_left
      (fun acc (cls, n) ->
        Optypes.add_area acc (Optypes.scale_area n (Optypes.fu_area cls)))
      Optypes.zero_area binding.Bind.fu_counts
  in
  Optypes.add_area
    (Optypes.bank_area ~banks:binding.Bind.mem_banks)
    (Optypes.add_area fu_area
       (Optypes.add_area
          (Optypes.register_area binding.Bind.reg_count)
          (Optypes.fsm_area ~states)))

let synthesize ?(resources = Schedule.default_resources) ?(unroll = 1)
    ?(pipeline = false) ?schedule:opt_schedule kernel =
  Typecheck.check_kernel kernel;
  let kernel', unrolled_loops = Ast_unroll.unroll_kernel ~factor:unroll kernel in
  let func = Lower.lower_kernel kernel' in
  let opt_report =
    Vmht_obs.Span.with_span ~cat:"flow" "passes" (fun () ->
        Pass_manager.optimize ?schedule:opt_schedule func)
  in
  let schedule = Schedule.schedule_func ~resources func in
  let binding = Bind.bind schedule in
  let states = Schedule.total_states schedule in
  let plans =
    if pipeline then Pipeliner.plan_loops func ~resources else []
  in
  (* Overlapped iterations keep more values in flight: account one
     extra register set per pipeline stage of each pipelined loop. *)
  let pipeline_regs =
    List.fold_left
      (fun acc (p : Pipeliner.plan) ->
        acc + (binding.Bind.reg_count * (p.Pipeliner.depth / max 1 p.Pipeliner.ii)))
      0 plans
  in
  let area =
    Optypes.add_area
      (datapath_area binding ~states)
      (Optypes.register_area pipeline_regs)
  in
  {
    name = kernel.Ast.kname;
    func;
    schedule;
    binding;
    area;
    plans;
    stats =
      {
        ir_instrs = Ir.instr_count func;
        blocks = Ir.block_count func;
        states;
        reg_count = binding.Bind.reg_count;
        opt_report;
        unrolled_loops;
        pipelined_loops = List.length plans;
      };
  }

(* Trace compilation of a block schedule.

   The interpreter's per-cycle scan asks every instruction "do you
   start this cycle?" — O(instrs * makespan) per block visit.  The
   compiled form buckets instruction indices by start cycle once and
   groups maximal runs of memory-free cycles into one [Pure] step, so a
   visit costs O(instrs + steps) and the executor can collapse a pure
   run's unit waits into a single wait.  Memory cycles stay unfused
   ([Mem] steps): every translation, bus transaction and fault-injector
   draw happens exactly where the interpreter would perform it — that
   is the de-optimization boundary of the compiled trace. *)
module Trace = struct
  type step =
    | Pure of int array array
        (* consecutive cycles without memory ops; instruction indices
           per cycle, in instruction order *)
    | Mem of int array (* one cycle containing at least one Load/Store *)

  type block = step array

  let compile_block (b : Schedule.block_schedule) : block =
    let makespan = b.Schedule.makespan in
    let buckets = Array.make (max makespan 1) [] in
    Array.iteri
      (fun i start ->
        if start >= 0 && start < makespan then buckets.(start) <- i :: buckets.(start))
      b.Schedule.starts;
    let per_cycle =
      Array.init makespan (fun c -> Array.of_list (List.rev buckets.(c)))
    in
    let is_mem i =
      match b.Schedule.instrs.(i) with
      | Ir.Load _ | Ir.Store _ -> true
      | Ir.Bin _ | Ir.Un _ | Ir.Mov _ -> false
    in
    let steps = ref [] in
    let pure_run = ref [] in
    let flush_pure () =
      if !pure_run <> [] then begin
        steps := Pure (Array.of_list (List.rev !pure_run)) :: !steps;
        pure_run := []
      end
    in
    Array.iter
      (fun ids ->
        if Array.exists is_mem ids then begin
          flush_pure ();
          steps := Mem ids :: !steps
        end
        else pure_run := ids :: !pure_run)
      per_cycle;
    flush_pure ();
    Array.of_list (List.rev !steps)
end

let stats_to_string s =
  Printf.sprintf
    "%d IR instrs in %d blocks, %d FSM states, %d registers, %d loop(s) \
     unrolled, %d pipelined; %s"
    s.ir_instrs s.blocks s.states s.reg_count s.unrolled_loops
    s.pipelined_loops
    (Pass_manager.report_to_string s.opt_report)
