module Ast = Vmht_lang.Ast
module Typecheck = Vmht_lang.Typecheck
module Ir = Vmht_ir.Ir
module Lower = Vmht_ir.Lower
module Pass_manager = Vmht_ir.Pass_manager
module Ast_unroll = Vmht_ir.Ast_unroll

type stats = {
  ir_instrs : int;
  blocks : int;
  states : int;
  reg_count : int;
  opt_report : Pass_manager.report;
  unrolled_loops : int;
  pipelined_loops : int;
}

type t = {
  name : string;
  func : Ir.func;
  schedule : Schedule.t;
  binding : Bind.t;
  area : Optypes.area;
  plans : Pipeliner.plan list;
  stats : stats;
}

let datapath_area (binding : Bind.t) ~states =
  let fu_area =
    List.fold_left
      (fun acc (cls, n) ->
        Optypes.add_area acc (Optypes.scale_area n (Optypes.fu_area cls)))
      Optypes.zero_area binding.Bind.fu_counts
  in
  Optypes.add_area fu_area
    (Optypes.add_area
       (Optypes.register_area binding.Bind.reg_count)
       (Optypes.fsm_area ~states))

let synthesize ?(resources = Schedule.default_resources) ?(unroll = 1)
    ?(pipeline = false) ?schedule:opt_schedule kernel =
  Typecheck.check_kernel kernel;
  let kernel', unrolled_loops = Ast_unroll.unroll_kernel ~factor:unroll kernel in
  let func = Lower.lower_kernel kernel' in
  let opt_report =
    Vmht_obs.Span.with_span ~cat:"flow" "passes" (fun () ->
        Pass_manager.optimize ?schedule:opt_schedule func)
  in
  let schedule = Schedule.schedule_func ~resources func in
  let binding = Bind.bind schedule in
  let states = Schedule.total_states schedule in
  let plans =
    if pipeline then Pipeliner.plan_loops func ~resources else []
  in
  (* Overlapped iterations keep more values in flight: account one
     extra register set per pipeline stage of each pipelined loop. *)
  let pipeline_regs =
    List.fold_left
      (fun acc (p : Pipeliner.plan) ->
        acc + (binding.Bind.reg_count * (p.Pipeliner.depth / max 1 p.Pipeliner.ii)))
      0 plans
  in
  let area =
    Optypes.add_area
      (datapath_area binding ~states)
      (Optypes.register_area pipeline_regs)
  in
  {
    name = kernel.Ast.kname;
    func;
    schedule;
    binding;
    area;
    plans;
    stats =
      {
        ir_instrs = Ir.instr_count func;
        blocks = Ir.block_count func;
        states;
        reg_count = binding.Bind.reg_count;
        opt_report;
        unrolled_loops;
        pipelined_loops = List.length plans;
      };
  }

let stats_to_string s =
  Printf.sprintf
    "%d IR instrs in %d blocks, %d FSM states, %d registers, %d loop(s) \
     unrolled, %d pipelined; %s"
    s.ir_instrs s.blocks s.states s.reg_count s.unrolled_loops
    s.pipelined_loops
    (Pass_manager.report_to_string s.opt_report)
