module Ir = Vmht_ir.Ir
module Ast = Vmht_lang.Ast

(* --- memory-access model ------------------------------------------- *)

(* The scratchpad/interface memory seen by the scheduler: [banks]
   word-interleaved banks ([bank = (addr >> interleave_shift) mod
   banks]), each with [ports_per_bank] same-cycle ports, under a global
   [miss_limit] cap on accesses in flight.  [flat_mem p] (one bank, p
   ports) is the pre-banking model and the degenerate case every
   default goes through. *)
type mem_model = {
  banks : int;
  ports_per_bank : int;
  interleave_shift : int;
  miss_limit : int;
}

let flat_mem ports =
  { banks = 1; ports_per_bank = ports; interleave_shift = 3; miss_limit = ports }

let banked_mem ?(ports_per_bank = 1) ?miss_limit banks =
  if banks < 1 then invalid_arg "Schedule.banked_mem: banks must be >= 1";
  let miss_limit =
    match miss_limit with Some m -> m | None -> banks * ports_per_bank
  in
  { banks; ports_per_bank; interleave_shift = 3; miss_limit }

let mem_total_ports m = min (m.banks * m.ports_per_bank) m.miss_limit

type resources = {
  alu : int;
  cmp : int;
  mul : int;
  div : int;
  shift : int;
  mem : mem_model;
}

let default_resources =
  { alu = 2; cmp = 2; mul = 1; div = 1; shift = 1; mem = flat_mem 1 }

(* Large but max_int-safe: resource math multiplies and ceil-divides
   limits, so a genuine [max_int] would overflow (the old
   [resource_limit Move -> max_int] fed [ceil_div]'s [limit + 1]
   straight past the integer range). *)
let unbounded = 1 lsl 20

let unlimited_resources =
  {
    alu = unbounded;
    cmp = unbounded;
    mul = unbounded;
    div = unbounded;
    shift = unbounded;
    mem =
      {
        banks = 1;
        ports_per_bank = unbounded;
        interleave_shift = 3;
        miss_limit = unbounded;
      };
  }

(* Total over every class: [Mem] answers with the model's global
   concurrency cap (the bank arbiter refines it per cycle), [Move] with
   the safe large bound instead of [max_int]. *)
let resource_limit r = function
  | Optypes.Alu -> r.alu
  | Optypes.Cmp -> r.cmp
  | Optypes.Mul -> r.mul
  | Optypes.Div -> r.div
  | Optypes.Shift -> r.shift
  | Optypes.Mem -> mem_total_ports r.mem
  | Optypes.Move -> unbounded

(* --- static bank analysis ------------------------------------------ *)

(* Symbolic affine addresses over a straight-line block.  Every
   register value is [sum (coeff_i * sym_i) + base] where the syms are
   opaque: live-in registers, load results and unanalyzable arithmetic
   each mint a fresh one.  Two memory accesses whose forms share the
   symbolic part and differ by a whole number of words provably land
   [delta_words mod banks] banks apart — the only disequality the
   scheduler may exploit.  Everything else (distinct bases, unknown
   addresses, sub-word offsets) stays "possibly same bank" and is
   conservatively serialized onto one bank's ports. *)
module Bank = struct
  type addr = { terms : (int * int) list; base : int }
  (* [terms] sorted by symbol id, zero coefficients dropped *)

  let const n = { terms = []; base = n }

  let rec merge_terms f a b =
    match (a, b) with
    | [], rest | rest, [] ->
      List.filter_map
        (fun (s, c) ->
          let c = f c 0 in
          if c = 0 then None else Some (s, c))
        rest
    | (sa, ca) :: ta, (sb, cb) :: tb ->
      if sa < sb then
        let c = f ca 0 in
        if c = 0 then merge_terms f ta b else (sa, c) :: merge_terms f ta b
      else if sb < sa then
        let c = f 0 cb in
        if c = 0 then merge_terms f a tb else (sb, c) :: merge_terms f a tb
      else
        let c = f ca cb in
        if c = 0 then merge_terms f ta tb else (sa, c) :: merge_terms f ta tb

  let add a b = { terms = merge_terms ( + ) a.terms b.terms; base = a.base + b.base }

  let sub a b = { terms = merge_terms ( - ) a.terms b.terms; base = a.base - b.base }

  let scale k a =
    if k = 0 then const 0
    else { terms = List.map (fun (s, c) -> (s, k * c)) a.terms; base = k * a.base }

  (* Kernel pointer arguments are independent buffers (each maps to its
     own staged region / VM mapping — the restrict-style contract every
     HLS flow imposes on top-level pointers), so two accesses rooted at
     different arguments never alias.  Only arguments whose register is
     never redefined anywhere in the function qualify: a reassigned
     pointer variable may point into another argument's buffer. *)
  let stable_args (f : Ir.func) =
    List.filter
      (fun r ->
        not
          (List.exists
             (fun (b : Ir.block) ->
               List.exists (fun i -> Ir.def_of i = Some r) b.Ir.instrs)
             f.Ir.blocks))
      f.Ir.arg_regs

  (* Forward symbolic evaluation in program order.  Program order is
     the right reading frame even though the scheduler reorders: WAR
     edges let an overwriter start no earlier than the same cycle as a
     reader, so the value an instruction reads is always the one the
     last preceding writer produced.  [roots] (the function's
     {!stable_args}) get the negative symbol ids the root analysis of
     {!provably_disjoint} looks for. *)
  let addr_forms ?(roots = []) (instrs : Ir.instr array) : addr option array =
    let next_sym = ref 0 in
    let fresh () =
      let s = !next_sym in
      incr next_sym;
      { terms = [ (s, 1) ]; base = 0 }
    in
    let root_sym : (Ir.reg, int) Hashtbl.t = Hashtbl.create 4 in
    List.iteri (fun k r -> Hashtbl.replace root_sym r (-(k + 1))) roots;
    let env : (Ir.reg, addr) Hashtbl.t = Hashtbl.create 16 in
    let read r =
      match Hashtbl.find_opt env r with
      | Some v -> v
      | None ->
        (* live-in register: one stable symbol per reg *)
        let v =
          match Hashtbl.find_opt root_sym r with
          | Some s -> { terms = [ (s, 1) ]; base = 0 }
          | None -> fresh ()
        in
        Hashtbl.replace env r v;
        v
    in
    let operand = function Ir.Imm n -> const n | Ir.Reg r -> read r in
    Array.map
      (fun instr ->
        let form =
          match instr with
          | Ir.Load (_, a) | Ir.Store (a, _) -> Some (operand a)
          | Ir.Bin _ | Ir.Un _ | Ir.Mov _ -> None
        in
        (match instr with
         | Ir.Mov (d, x) -> Hashtbl.replace env d (operand x)
         | Ir.Bin (Ast.Add, d, x, y) ->
           Hashtbl.replace env d (add (operand x) (operand y))
         | Ir.Bin (Ast.Sub, d, x, y) ->
           Hashtbl.replace env d (sub (operand x) (operand y))
         | Ir.Bin (Ast.Shl, d, x, Ir.Imm k) when k >= 0 && k < 32 ->
           Hashtbl.replace env d (scale (1 lsl k) (operand x))
         | Ir.Bin (Ast.Mul, d, x, Ir.Imm k)
         | Ir.Bin (Ast.Mul, d, Ir.Imm k, x) ->
           Hashtbl.replace env d (scale k (operand x))
         | Ir.Bin (_, d, _, _) | Ir.Un (_, d, _) | Ir.Load (d, _) ->
           Hashtbl.replace env d (fresh ())
         | Ir.Store _ -> ());
        form)
      instrs

  (* The root argument an address form points into: exactly one
     root-tagged (negative) symbol, with coefficient one.  [a + 8*i]
     is rooted at [a]; [a - c], [2*a] and forms over loaded pointers
     are not rooted at anything. *)
  let root x =
    match List.filter (fun (s, _) -> s < 0) x.terms with
    | [ (s, 1) ] -> Some s
    | _ -> None

  (* Two accesses that provably touch different addresses, whatever the
     symbols' runtime values: either the same symbolic part at a
     different constant offset, or roots in two different argument
     buffers.  Model-free — refines the memory-ordering dependences. *)
  let provably_disjoint a b =
    match (a, b) with
    | Some x, Some y ->
      (x.terms = y.terms && x.base <> y.base)
      || (match (root x, root y) with
         | Some ra, Some rb -> ra <> rb
         | (Some _ | None), _ -> false)
    | (Some _ | None), _ -> false

  (* Same symbolic part + word-aligned offset delta: the banks differ
     by exactly [(delta / word) mod banks], whatever the symbols'
     runtime values (floor((x + word*k) / word) = floor(x / word) + k). *)
  let provably_distinct m a b =
    match (a, b) with
    | Some x, Some y when x.terms = y.terms ->
      let word = 1 lsl m.interleave_shift in
      let d = x.base - y.base in
      d mod word = 0 && d / word mod m.banks <> 0
    | (Some _ | None), _ -> false

  (* Can this set of accesses issue in one cycle?  Each access must
     find a port on its bank: its conflict set (everything not provably
     on another bank, itself included) may not exceed the per-bank
     ports; the whole set stays within the global cap.  With one bank
     nothing is ever provably distinct and this collapses to the old
     [count <= mem_ports]. *)
  let cycle_ok m (accesses : addr option list) =
    List.length accesses <= mem_total_ports m
    && List.for_all
         (fun a ->
           let conflicts =
             List.fold_left
               (fun c b -> if provably_distinct m a b then c else c + 1)
               0 accesses
           in
           conflicts <= m.ports_per_bank)
         accesses
end

type block_schedule = {
  label : Ir.label;
  instrs : Ir.instr array;
  starts : int array;
  makespan : int;
}

type t = {
  func : Ir.func;
  blocks : block_schedule list;
  resources : resources;
}

let lat instr = Optypes.latency (Optypes.classify instr)

let is_mem instr =
  match instr with
  | Ir.Load _ | Ir.Store _ -> true
  | Ir.Bin _ | Ir.Un _ | Ir.Mov _ -> false

let is_store = function
  | Ir.Store _ -> true
  | Ir.Load _ | Ir.Bin _ | Ir.Un _ | Ir.Mov _ -> false

(* Dependence edges i -> j (i before j in program order) with minimum
   start-to-start delays.  [addrs] (the block's affine address forms)
   refines the memory ordering: store pairs and load/store pairs at
   provably different addresses commute.  Callers pass it only under a
   multi-bank model, so flat-memory schedules are bit-identical to the
   pre-banking scheduler. *)
let dependence_edges ?addrs instrs =
  let n = Array.length instrs in
  let edges = Array.make n [] in
  (* edges.(j) = list of (i, delay) constraints: start_j >= start_i + delay *)
  for j = 0 to n - 1 do
    let uses_j = Ir.uses_of instrs.(j) in
    let def_j = Ir.def_of instrs.(j) in
    for i = 0 to j - 1 do
      let def_i = Ir.def_of instrs.(i) in
      let uses_i = Ir.uses_of instrs.(i) in
      let delays = ref [] in
      (* RAW *)
      (match def_i with
       | Some d when List.mem d uses_j -> delays := lat instrs.(i) :: !delays
       | Some _ | None -> ());
      (* WAR: j writes a register i reads *)
      (match def_j with
       | Some d when List.mem d uses_i -> delays := 0 :: !delays
       | Some _ | None -> ());
      (* WAW: commits in program order *)
      (match (def_i, def_j) with
       | Some di, Some dj when di = dj ->
         delays := max 1 (lat instrs.(i) - lat instrs.(j) + 1) :: !delays
       | (Some _ | None), _ -> ());
      (* Memory ordering: loads commute, everything else serializes —
         unless the two accesses provably touch different addresses *)
      if is_mem instrs.(i) && is_mem instrs.(j)
         && (is_store instrs.(i) || is_store instrs.(j))
         && not
              (match addrs with
               | Some a -> Bank.provably_disjoint a.(i) a.(j)
               | None -> false)
      then delays := 1 :: !delays;
      match !delays with
      | [] -> ()
      | ds -> edges.(j) <- (i, List.fold_left max 0 ds) :: edges.(j)
    done
  done;
  edges

(* Longest path from each instruction to the end of the block —
   the list scheduler's priority function. *)
let priorities instrs edges =
  let n = Array.length instrs in
  let succ = Array.make n [] in
  Array.iteri
    (fun j preds ->
      List.iter (fun (i, delay) -> succ.(i) <- (j, delay) :: succ.(i)) preds)
    edges;
  let prio = Array.make n 0 in
  for i = n - 1 downto 0 do
    let tail =
      List.fold_left (fun acc (j, delay) -> max acc (prio.(j) + delay)) 0
        succ.(i)
    in
    prio.(i) <- tail + lat instrs.(i)
  done;
  prio

let schedule_block ~roots resources (b : Ir.block) =
  let instrs = Array.of_list b.instrs in
  let n = Array.length instrs in
  if n = 0 then
    { label = b.label; instrs; starts = [||]; makespan = 1 }
  else begin
    let banked = resources.mem.banks > 1 in
    let addrs = Bank.addr_forms ~roots instrs in
    let edges = dependence_edges ?addrs:(if banked then Some addrs else None) instrs in
    let prio = priorities instrs edges in
    let starts = Array.make n (-1) in
    let scheduled = ref 0 in
    let cycle = ref 0 in
    let usage : (Optypes.op_class, int) Hashtbl.t = Hashtbl.create 8 in
    while !scheduled < n do
      Hashtbl.reset usage;
      let mems_this_cycle = ref [] in
      (* Instructions ready at this cycle, highest priority first. *)
      let ready = ref [] in
      for j = 0 to n - 1 do
        if starts.(j) < 0 then begin
          let ok =
            List.for_all
              (fun (i, delay) -> starts.(i) >= 0 && starts.(i) + delay <= !cycle)
              edges.(j)
          in
          if ok then ready := j :: !ready
        end
      done;
      let ready =
        List.sort (fun a b -> compare (prio.(b), a) (prio.(a), b)) !ready
      in
      let try_admit j =
        let cls = Optypes.classify instrs.(j) in
        let used = Option.value ~default:0 (Hashtbl.find_opt usage cls) in
        let admit =
          used < resource_limit resources cls
          && (cls <> Optypes.Mem
             || Bank.cycle_ok resources.mem (addrs.(j) :: !mems_this_cycle))
        in
        if admit then begin
          starts.(j) <- !cycle;
          Hashtbl.replace usage cls (used + 1);
          if cls = Optypes.Mem then
            mems_this_cycle := addrs.(j) :: !mems_this_cycle;
          incr scheduled
        end;
        admit
      in
      if not banked then List.iter (fun j -> ignore (try_admit j)) ready
      else begin
        (* Bank affinity: a priority-order greedy pass would pair
           accesses of different arrays (mutual "maybe same bank"
           conflicts) and cap every cycle at one bank's ports.  Admit
           conflict-free additions — accesses provably on a different
           bank than everything already issued — first, then let the
           leftovers fill the remaining ports of contended banks.
           Within a cycle the inversion is harmless: co-issued is
           co-issued.  Non-memory ops share no resource class with
           memory, so their admission order is unchanged. *)
        let mem_j j = Optypes.classify instrs.(j) = Optypes.Mem in
        List.iter (fun j -> if not (mem_j j) then ignore (try_admit j)) ready;
        List.iter
          (fun j ->
            if
              mem_j j
              && (!mems_this_cycle = []
                 || List.for_all
                      (Bank.provably_distinct resources.mem addrs.(j))
                      !mems_this_cycle)
            then ignore (try_admit j))
          ready;
        List.iter
          (fun j -> if mem_j j && starts.(j) < 0 then ignore (try_admit j))
          ready
      end;
      incr cycle
    done;
    let makespan =
      Array.to_list instrs
      |> List.mapi (fun i instr -> starts.(i) + lat instr)
      |> List.fold_left max 1
    in
    { label = b.label; instrs; starts; makespan }
  end

let schedule_func ?(resources = default_resources) (f : Ir.func) =
  let roots = Bank.stable_args f in
  {
    func = f;
    blocks = List.map (schedule_block ~roots resources) f.blocks;
    resources;
  }

let total_states t =
  List.fold_left (fun acc b -> acc + b.makespan) 0 t.blocks

let max_concurrency t cls =
  List.fold_left
    (fun acc b ->
      let per_cycle = Hashtbl.create 16 in
      Array.iteri
        (fun i start ->
          if Optypes.classify b.instrs.(i) = cls then begin
            let cur =
              Option.value ~default:0 (Hashtbl.find_opt per_cycle start)
            in
            Hashtbl.replace per_cycle start (cur + 1)
          end)
        b.starts;
      Hashtbl.fold (fun _ v acc -> max acc v) per_cycle acc)
    0 t.blocks

let critical_path_of_block b = b.makespan

let validate t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let roots = Bank.stable_args t.func in
  List.iter
    (fun b ->
      let n = Array.length b.instrs in
      let addrs = Bank.addr_forms ~roots b.instrs in
      let edges =
        dependence_edges
          ?addrs:(if t.resources.mem.banks > 1 then Some addrs else None)
          b.instrs
      in
      for j = 0 to n - 1 do
        if b.starts.(j) < 0 then fail "L%d: instruction %d unscheduled" b.label j;
        List.iter
          (fun (i, delay) ->
            if b.starts.(j) < b.starts.(i) + delay then
              fail "L%d: dependence %d -> %d violated (%d < %d + %d)" b.label
                i j b.starts.(j) b.starts.(i) delay)
          edges.(j)
      done;
      (* Resource constraints per cycle *)
      let per_cycle : (int * Optypes.op_class, int) Hashtbl.t =
        Hashtbl.create 16
      in
      Array.iteri
        (fun i start ->
          let cls = Optypes.classify b.instrs.(i) in
          let key = (start, cls) in
          let cur = Option.value ~default:0 (Hashtbl.find_opt per_cycle key) in
          Hashtbl.replace per_cycle key (cur + 1))
        b.starts;
      Hashtbl.iter
        (fun (cycle, cls) count ->
          if count > resource_limit t.resources cls then
            fail "L%d cycle %d: %d %s ops exceed limit" b.label cycle count
              (Optypes.class_name cls))
        per_cycle;
      (* Bank arbitration per cycle: every co-issued memory set must be
         admissible under the memory model *)
      let mem_cycles : (int, Bank.addr option list) Hashtbl.t =
        Hashtbl.create 16
      in
      Array.iteri
        (fun i start ->
          if is_mem b.instrs.(i) then
            let cur =
              Option.value ~default:[] (Hashtbl.find_opt mem_cycles start)
            in
            Hashtbl.replace mem_cycles start (addrs.(i) :: cur))
        b.starts;
      Hashtbl.iter
        (fun cycle accesses ->
          if not (Bank.cycle_ok t.resources.mem accesses) then
            fail "L%d cycle %d: %d memory ops violate bank arbitration" b.label
              cycle (List.length accesses))
        mem_cycles;
      (* Makespan covers all commits *)
      Array.iteri
        (fun i start ->
          if start + lat b.instrs.(i) > b.makespan then
            fail "L%d: instruction %d commits after makespan" b.label i)
        b.starts)
    t.blocks

let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "schedule of %s: %d states\n" t.func.Ir.fname
       (total_states t));
  List.iter
    (fun b ->
      Buffer.add_string buf
        (Printf.sprintf "L%d (makespan %d):\n" b.label b.makespan);
      let order = Array.init (Array.length b.instrs) Fun.id in
      Array.sort (fun i j -> compare (b.starts.(i), i) (b.starts.(j), j)) order;
      Array.iter
        (fun i ->
          Buffer.add_string buf
            (Printf.sprintf "  [%2d] %s\n" b.starts.(i)
               (Ir.instr_to_string b.instrs.(i))))
        order)
    t.blocks;
  Buffer.contents buf
