module Ir = Vmht_ir.Ir

type resources = {
  alu : int;
  cmp : int;
  mul : int;
  div : int;
  shift : int;
  mem_ports : int;
}

let default_resources =
  { alu = 2; cmp = 2; mul = 1; div = 1; shift = 1; mem_ports = 1 }

let unlimited_resources =
  let big = 1 lsl 20 in
  { alu = big; cmp = big; mul = big; div = big; shift = big; mem_ports = big }

let resource_limit r = function
  | Optypes.Alu -> r.alu
  | Optypes.Cmp -> r.cmp
  | Optypes.Mul -> r.mul
  | Optypes.Div -> r.div
  | Optypes.Shift -> r.shift
  | Optypes.Mem -> r.mem_ports
  | Optypes.Move -> max_int

type block_schedule = {
  label : Ir.label;
  instrs : Ir.instr array;
  starts : int array;
  makespan : int;
}

type t = {
  func : Ir.func;
  blocks : block_schedule list;
  resources : resources;
}

let lat instr = Optypes.latency (Optypes.classify instr)

let is_mem instr =
  match instr with
  | Ir.Load _ | Ir.Store _ -> true
  | Ir.Bin _ | Ir.Un _ | Ir.Mov _ -> false

let is_store = function
  | Ir.Store _ -> true
  | Ir.Load _ | Ir.Bin _ | Ir.Un _ | Ir.Mov _ -> false

(* Dependence edges i -> j (i before j in program order) with minimum
   start-to-start delays. *)
let dependence_edges instrs =
  let n = Array.length instrs in
  let edges = Array.make n [] in
  (* edges.(j) = list of (i, delay) constraints: start_j >= start_i + delay *)
  for j = 0 to n - 1 do
    let uses_j = Ir.uses_of instrs.(j) in
    let def_j = Ir.def_of instrs.(j) in
    for i = 0 to j - 1 do
      let def_i = Ir.def_of instrs.(i) in
      let uses_i = Ir.uses_of instrs.(i) in
      let delays = ref [] in
      (* RAW *)
      (match def_i with
       | Some d when List.mem d uses_j -> delays := lat instrs.(i) :: !delays
       | Some _ | None -> ());
      (* WAR: j writes a register i reads *)
      (match def_j with
       | Some d when List.mem d uses_i -> delays := 0 :: !delays
       | Some _ | None -> ());
      (* WAW: commits in program order *)
      (match (def_i, def_j) with
       | Some di, Some dj when di = dj ->
         delays := max 1 (lat instrs.(i) - lat instrs.(j) + 1) :: !delays
       | (Some _ | None), _ -> ());
      (* Memory ordering: loads commute, everything else serializes *)
      if is_mem instrs.(i) && is_mem instrs.(j)
         && (is_store instrs.(i) || is_store instrs.(j))
      then delays := 1 :: !delays;
      match !delays with
      | [] -> ()
      | ds -> edges.(j) <- (i, List.fold_left max 0 ds) :: edges.(j)
    done
  done;
  edges

(* Longest path from each instruction to the end of the block —
   the list scheduler's priority function. *)
let priorities instrs edges =
  let n = Array.length instrs in
  let succ = Array.make n [] in
  Array.iteri
    (fun j preds ->
      List.iter (fun (i, delay) -> succ.(i) <- (j, delay) :: succ.(i)) preds)
    edges;
  let prio = Array.make n 0 in
  for i = n - 1 downto 0 do
    let tail =
      List.fold_left (fun acc (j, delay) -> max acc (prio.(j) + delay)) 0
        succ.(i)
    in
    prio.(i) <- tail + lat instrs.(i)
  done;
  prio

let schedule_block resources (b : Ir.block) =
  let instrs = Array.of_list b.instrs in
  let n = Array.length instrs in
  if n = 0 then
    { label = b.label; instrs; starts = [||]; makespan = 1 }
  else begin
    let edges = dependence_edges instrs in
    let prio = priorities instrs edges in
    let starts = Array.make n (-1) in
    let scheduled = ref 0 in
    let cycle = ref 0 in
    let usage : (Optypes.op_class, int) Hashtbl.t = Hashtbl.create 8 in
    while !scheduled < n do
      Hashtbl.reset usage;
      (* Instructions ready at this cycle, highest priority first. *)
      let ready = ref [] in
      for j = 0 to n - 1 do
        if starts.(j) < 0 then begin
          let ok =
            List.for_all
              (fun (i, delay) -> starts.(i) >= 0 && starts.(i) + delay <= !cycle)
              edges.(j)
          in
          if ok then ready := j :: !ready
        end
      done;
      let ready =
        List.sort (fun a b -> compare (prio.(b), a) (prio.(a), b)) !ready
      in
      List.iter
        (fun j ->
          let cls = Optypes.classify instrs.(j) in
          let used = Option.value ~default:0 (Hashtbl.find_opt usage cls) in
          if used < resource_limit resources cls then begin
            starts.(j) <- !cycle;
            Hashtbl.replace usage cls (used + 1);
            incr scheduled
          end)
        ready;
      incr cycle
    done;
    let makespan =
      Array.to_list instrs
      |> List.mapi (fun i instr -> starts.(i) + lat instr)
      |> List.fold_left max 1
    in
    { label = b.label; instrs; starts; makespan }
  end

let schedule_func ?(resources = default_resources) (f : Ir.func) =
  { func = f; blocks = List.map (schedule_block resources) f.blocks; resources }

let total_states t =
  List.fold_left (fun acc b -> acc + b.makespan) 0 t.blocks

let max_concurrency t cls =
  List.fold_left
    (fun acc b ->
      let per_cycle = Hashtbl.create 16 in
      Array.iteri
        (fun i start ->
          if Optypes.classify b.instrs.(i) = cls then begin
            let cur =
              Option.value ~default:0 (Hashtbl.find_opt per_cycle start)
            in
            Hashtbl.replace per_cycle start (cur + 1)
          end)
        b.starts;
      Hashtbl.fold (fun _ v acc -> max acc v) per_cycle acc)
    0 t.blocks

let critical_path_of_block b = b.makespan

let validate t =
  let fail fmt = Printf.ksprintf failwith fmt in
  List.iter
    (fun b ->
      let n = Array.length b.instrs in
      let edges = dependence_edges b.instrs in
      for j = 0 to n - 1 do
        if b.starts.(j) < 0 then fail "L%d: instruction %d unscheduled" b.label j;
        List.iter
          (fun (i, delay) ->
            if b.starts.(j) < b.starts.(i) + delay then
              fail "L%d: dependence %d -> %d violated (%d < %d + %d)" b.label
                i j b.starts.(j) b.starts.(i) delay)
          edges.(j)
      done;
      (* Resource constraints per cycle *)
      let per_cycle : (int * Optypes.op_class, int) Hashtbl.t =
        Hashtbl.create 16
      in
      Array.iteri
        (fun i start ->
          let cls = Optypes.classify b.instrs.(i) in
          let key = (start, cls) in
          let cur = Option.value ~default:0 (Hashtbl.find_opt per_cycle key) in
          Hashtbl.replace per_cycle key (cur + 1))
        b.starts;
      Hashtbl.iter
        (fun (cycle, cls) count ->
          if count > resource_limit t.resources cls then
            fail "L%d cycle %d: %d %s ops exceed limit" b.label cycle count
              (Optypes.class_name cls))
        per_cycle;
      (* Makespan covers all commits *)
      Array.iteri
        (fun i start ->
          if start + lat b.instrs.(i) > b.makespan then
            fail "L%d: instruction %d commits after makespan" b.label i)
        b.starts)
    t.blocks

let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "schedule of %s: %d states\n" t.func.Ir.fname
       (total_states t));
  List.iter
    (fun b ->
      Buffer.add_string buf
        (Printf.sprintf "L%d (makespan %d):\n" b.label b.makespan);
      let order = Array.init (Array.length b.instrs) Fun.id in
      Array.sort (fun i j -> compare (b.starts.(i), i) (b.starts.(j), j)) order;
      Array.iter
        (fun i ->
          Buffer.add_string buf
            (Printf.sprintf "  [%2d] %s\n" b.starts.(i)
               (Ir.instr_to_string b.instrs.(i))))
        order)
    t.blocks;
  Buffer.contents buf
