module Ir = Vmht_ir.Ir
module Ast = Vmht_lang.Ast

type plan = {
  header : Ir.label;
  body : Ir.label;
  exit : Ir.label;
  ii : int;
  depth : int;
  unpipelined_cycles : int;
  rec_mii : int;
  res_mii : int;
}

let lat instr = Optypes.latency (Optypes.classify instr)

let is_mem = function
  | Ir.Load _ | Ir.Store _ -> true
  | Ir.Bin _ | Ir.Un _ | Ir.Mov _ -> false

let is_store = function
  | Ir.Store _ -> true
  | Ir.Load _ | Ir.Bin _ | Ir.Un _ | Ir.Mov _ -> false

(* ------------------------------------------------------------------ *)
(* Loop shape detection                                                *)
(* ------------------------------------------------------------------ *)

(* The lowerer emits while loops as  header(cond) -> body -> header.
   A loop is pipelinable when the body is a single straight-line block
   jumping back to the header and nothing else enters the body. *)
let find_candidate_loops (f : Ir.func) =
  let preds = Ir.predecessors f in
  List.filter_map
    (fun (h : Ir.block) ->
      match h.Ir.term with
      | Ir.Br (_, body_l, exit_l) when body_l <> exit_l -> (
        match Ir.find_block f body_l with
        | b when b.Ir.term = Ir.Jmp h.Ir.label ->
          let body_preds =
            Option.value ~default:[] (Hashtbl.find_opt preds body_l)
          in
          if body_preds = [ h.Ir.label ] then Some (h, b, exit_l) else None
        | _ -> None
        | exception Not_found -> None)
      | Ir.Br _ | Ir.Jmp _ | Ir.Ret _ -> None)
    f.Ir.blocks

(* ------------------------------------------------------------------ *)
(* Streaming-address analysis                                          *)
(* ------------------------------------------------------------------ *)

(* The registers the loop redefines each iteration. *)
let defs_in instrs =
  let defs = Hashtbl.create 16 in
  Array.iter
    (fun i ->
      match Ir.def_of i with
      | Some d ->
        Hashtbl.replace defs d
          (1 + Option.value ~default:0 (Hashtbl.find_opt defs d))
      | None -> ())
    instrs;
  defs

(* The loop's induction registers: regs whose only in-loop definitions
   form the chain  r' = r + imm ; r = r'  (what lowering produces for
   [i = i + 1]), or directly  r = r + imm. *)
let induction_regs instrs defs =
  let inductions = Hashtbl.create 4 in
  Array.iter
    (fun instr ->
      match instr with
      | Ir.Bin (Ast.Add, d, Ir.Reg r, Ir.Imm _)
      | Ir.Bin (Ast.Add, d, Ir.Imm _, Ir.Reg r) -> (
        (* d = r + c; is r then Mov'd back from d (or d = r)? *)
        if d = r && Hashtbl.find_opt defs d = Some 1 then
          Hashtbl.replace inductions r ()
        else
          Array.iter
            (fun instr2 ->
              match instr2 with
              | Ir.Mov (r', Ir.Reg s)
                when r' = r && s = d
                     && Hashtbl.find_opt defs r = Some 1
                     && Hashtbl.find_opt defs d = Some 1 ->
                Hashtbl.replace inductions r ()
              | _ -> ())
            instrs)
      | _ -> ())
    instrs;
  inductions

(* An address register is "streaming" when it is computed inside the
   loop as  base + (ind << k)  with [base] loop-invariant: iterations
   then touch distinct words of distinct arrays (restrict assumption).
   Returns the base register for disjointness comparison. *)
let streaming_base instrs defs inductions addr_op =
  let invariant r = not (Hashtbl.mem defs r) in
  let shifted_induction = function
    | Ir.Reg r ->
      Array.exists
        (fun instr ->
          match instr with
          | Ir.Bin (Ast.Shl, d, Ir.Reg src, Ir.Imm _) ->
            d = r && Hashtbl.mem inductions src
          | _ -> false)
        instrs
    | Ir.Imm _ -> false
  in
  match addr_op with
  | Ir.Reg addr_reg ->
    Array.fold_left
      (fun acc instr ->
        match instr with
        | Ir.Bin (Ast.Add, d, Ir.Reg base, off)
          when d = addr_reg && invariant base && shifted_induction off ->
          Some base
        | Ir.Bin (Ast.Add, d, off, Ir.Reg base)
          when d = addr_reg && invariant base && shifted_induction off ->
          Some base
        | _ -> acc)
      None instrs
  | Ir.Imm _ -> None

let mem_addr_op = function
  | Ir.Load (_, addr) | Ir.Store (addr, _) -> Some addr
  | Ir.Bin _ | Ir.Un _ | Ir.Mov _ -> None

(* ------------------------------------------------------------------ *)
(* Inter-iteration (distance-1) dependence edges                       *)
(* ------------------------------------------------------------------ *)

(* (producer, consumer, delay): start(consumer) >= start(producer) +
   delay - II. *)
let inter_iteration_edges instrs defs inductions =
  let n = Array.length instrs in
  let edges = ref [] in
  (* Register recurrences: the LAST def of r feeds every use of r at or
     before it (those uses read the previous iteration's value). *)
  let last_def = Hashtbl.create 16 in
  Array.iteri
    (fun i instr ->
      match Ir.def_of instr with
      | Some d -> Hashtbl.replace last_def d i
      | None -> ())
    instrs;
  Array.iteri
    (fun u instr ->
      List.iter
        (fun r ->
          match Hashtbl.find_opt last_def r with
          | Some p when u <= p ->
            edges := (p, u, lat instrs.(p)) :: !edges
          | Some _ | None -> ())
        (Ir.uses_of instr))
    instrs;
  (* Memory recurrences, unless provably streaming-disjoint. *)
  let base_of i = mem_addr_op instrs.(i)
    |> Option.map (streaming_base instrs defs inductions)
    |> Option.join
  in
  for p = 0 to n - 1 do
    for u = 0 to n - 1 do
      if
        is_mem instrs.(p) && is_mem instrs.(u)
        && (is_store instrs.(p) || is_store instrs.(u))
      then begin
        let disjoint =
          match (base_of p, base_of u) with
          | Some bp, Some bu ->
            (* Streaming against distinct restrict bases never recurs;
               the same base recurs only if one is a store to the very
               same induction offset — which streaming rules out. *)
            bp <> bu || not (is_store instrs.(p) && is_store instrs.(u))
          | _ -> false
        in
        if not disjoint then edges := (p, u, 1) :: !edges
      end
    done
  done;
  !edges

(* ------------------------------------------------------------------ *)
(* Modulo scheduling                                                   *)
(* ------------------------------------------------------------------ *)

let resource_min_ii resources instrs =
  List.fold_left
    (fun acc cls ->
      let count =
        Array.fold_left
          (fun c i -> if Optypes.classify i = cls then c + 1 else c)
          0 instrs
      in
      if count = 0 then acc
      else
        max acc
          (Vmht_util.Bits.ceil_div count (Schedule.resource_limit resources cls)))
    1 Optypes.all_classes

(* Bank-pressure refinement of the memory resource bound: every access
   conflicting with access [i] (not provably on another bank, [i]
   itself included) competes for the same bank's ports, and such a
   conflict set is mutually conflicting — accesses sharing [i]'s
   symbolic form share its bank residue, and accesses with a different
   form conflict with everything.  So each set is a clique needing
   [ceil (|set| / ports_per_bank)] distinct modulo slots.  With one
   bank this is exactly the old [ceil (mem_count / ports)] bound. *)
let bank_min_ii (m : Schedule.mem_model) instrs addrs =
  let n = Array.length instrs in
  let mii = ref 1 in
  for i = 0 to n - 1 do
    if is_mem instrs.(i) then begin
      let conflicts = ref 0 in
      for j = 0 to n - 1 do
        if is_mem instrs.(j)
           && not (Schedule.Bank.provably_distinct m addrs.(i) addrs.(j))
        then incr conflicts
      done;
      mii := max !mii (Vmht_util.Bits.ceil_div !conflicts m.Schedule.ports_per_bank)
    end
  done;
  !mii

(* Recurrence-constrained minimum II: an inter-iteration edge
   (producer [p], consumer [u], delay) closes a cycle whose intra part
   is the longest dependence path [u ->* p]; any feasible schedule has
   [starts p >= starts u + path], and the inter constraint
   [starts u + ii >= starts p + delay] then forces
   [ii >= delay + path].  Loop-carried load/store chains enter through
   the memory inter edges, so memory recurrences bound the II even
   when ports are plentiful. *)
let recurrence_min_ii instrs intra inter =
  let n = Array.length instrs in
  let longest_path u p =
    (* intra edges only go forward in program order *)
    if u > p then None
    else begin
      let dist = Array.make n min_int in
      dist.(u) <- 0;
      for j = u + 1 to p do
        List.iter
          (fun (i, delay) ->
            if i >= u && dist.(i) > min_int then
              dist.(j) <- max dist.(j) (dist.(i) + delay))
          intra.(j)
      done;
      if dist.(p) > min_int then Some dist.(p) else None
    end
  in
  List.fold_left
    (fun acc (p, u, delay) ->
      match longest_path u p with
      | Some path -> max acc (delay + path)
      | None -> acc)
    1 inter

(* Greedy program-order schedule under intra-iteration dependences and
   the modulo resource table for a fixed II; [None] when the II's
   resource table cannot host the instructions.  Memory slots arbitrate
   through the bank model: an access fits a modulo slot only if the
   slot's whole access set stays admissible. *)
let try_schedule resources ~ii instrs intra_edges addrs =
  let n = Array.length instrs in
  let starts = Array.make n 0 in
  let reservation : (int * Optypes.op_class, int) Hashtbl.t =
    Hashtbl.create 32
  in
  let mem_slots : (int, Schedule.Bank.addr option list) Hashtbl.t =
    Hashtbl.create 8
  in
  let fits slot cls j =
    let slot = slot mod ii in
    Option.value ~default:0 (Hashtbl.find_opt reservation (slot, cls))
    < Schedule.resource_limit resources cls
    && (cls <> Optypes.Mem
       || Schedule.Bank.cycle_ok resources.Schedule.mem
            (addrs.(j)
            :: Option.value ~default:[] (Hashtbl.find_opt mem_slots slot)))
  in
  let reserve slot cls j =
    let slot = slot mod ii in
    let key = (slot, cls) in
    Hashtbl.replace reservation key
      (1 + Option.value ~default:0 (Hashtbl.find_opt reservation key));
    if cls = Optypes.Mem then
      Hashtbl.replace mem_slots slot
        (addrs.(j) :: Option.value ~default:[] (Hashtbl.find_opt mem_slots slot))
  in
  let ok = ref true in
  for j = 0 to n - 1 do
    if !ok then begin
      let earliest =
        List.fold_left
          (fun acc (i, delay) -> max acc (starts.(i) + delay))
          0 intra_edges.(j)
      in
      let cls = Optypes.classify instrs.(j) in
      (* A free modulo slot exists within any window of II slots. *)
      let rec find slot budget =
        if budget = 0 then None
        else if fits slot cls j then Some slot
        else find (slot + 1) (budget - 1)
      in
      match find earliest ii with
      | Some slot ->
        starts.(j) <- slot;
        reserve slot cls j
      | None -> ok := false
    end
  done;
  if !ok then Some starts else None

let plan_loop ~roots resources (h : Ir.block) (b : Ir.block) exit_l =
  let instrs = Array.of_list (h.Ir.instrs @ b.Ir.instrs) in
  if Array.length instrs = 0 then None
  else begin
    let addrs = Schedule.Bank.addr_forms ~roots instrs in
    let intra =
      Schedule.dependence_edges
        ?addrs:
          (if resources.Schedule.mem.Schedule.banks > 1 then Some addrs
           else None)
        instrs
    in
    let defs = defs_in instrs in
    let inductions = induction_regs instrs defs in
    let inter = inter_iteration_edges instrs defs inductions in
    (* What the plain FSM charges per iteration: the (resource-
       unconstrained) ASAP makespans of the two blocks. *)
    let makespan block_instrs =
      let arr = Array.of_list block_instrs in
      let e = Schedule.dependence_edges arr in
      let starts = Array.make (Array.length arr) 0 in
      Array.iteri
        (fun j _ ->
          starts.(j) <-
            List.fold_left (fun acc (i, d) -> max acc (starts.(i) + d)) 0 e.(j))
        arr;
      Array.to_list arr
      |> List.mapi (fun i instr -> starts.(i) + lat instr)
      |> List.fold_left max 1
    in
    let unpipelined_cycles = makespan h.Ir.instrs + makespan b.Ir.instrs in
    let res_mii =
      max
        (resource_min_ii resources instrs)
        (bank_min_ii resources.Schedule.mem instrs addrs)
    in
    let rec_mii = recurrence_min_ii instrs intra inter in
    let min_ii = max res_mii rec_mii in
    let max_ii = max min_ii unpipelined_cycles in
    let rec search ii =
      if ii > max_ii then None
      else
        match try_schedule resources ~ii instrs intra addrs with
        | None -> search (ii + 1)
        | Some starts ->
          let inter_ok =
            List.for_all
              (fun (p, u, delay) -> starts.(u) + ii >= starts.(p) + delay)
              inter
          in
          if inter_ok then Some (ii, starts) else search (ii + 1)
    in
    match search min_ii with
    | None -> None
    | Some (ii, starts) ->
      let depth =
        Array.to_list instrs
        |> List.mapi (fun i instr -> starts.(i) + lat instr)
        |> List.fold_left max ii
      in
      if ii < unpipelined_cycles then
        Some
          {
            header = h.Ir.label;
            body = b.Ir.label;
            exit = exit_l;
            ii;
            depth;
            unpipelined_cycles;
            rec_mii;
            res_mii;
          }
      else None
  end

let plan_loops (f : Ir.func) ~resources =
  let roots = Schedule.Bank.stable_args f in
  List.filter_map
    (fun (h, b, exit_l) -> plan_loop ~roots resources h b exit_l)
    (find_candidate_loops f)

let to_string p =
  Printf.sprintf "loop L%d/L%d: II=%d depth=%d (FSM iteration %d cycles)"
    p.header p.body p.ii p.depth p.unpipelined_cycles
