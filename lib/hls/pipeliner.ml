module Ir = Vmht_ir.Ir
module Ast = Vmht_lang.Ast

type plan = {
  header : Ir.label;
  body : Ir.label;
  exit : Ir.label;
  ii : int;
  depth : int;
  unpipelined_cycles : int;
}

let lat instr = Optypes.latency (Optypes.classify instr)

let is_mem = function
  | Ir.Load _ | Ir.Store _ -> true
  | Ir.Bin _ | Ir.Un _ | Ir.Mov _ -> false

let is_store = function
  | Ir.Store _ -> true
  | Ir.Load _ | Ir.Bin _ | Ir.Un _ | Ir.Mov _ -> false

(* ------------------------------------------------------------------ *)
(* Loop shape detection                                                *)
(* ------------------------------------------------------------------ *)

(* The lowerer emits while loops as  header(cond) -> body -> header.
   A loop is pipelinable when the body is a single straight-line block
   jumping back to the header and nothing else enters the body. *)
let find_candidate_loops (f : Ir.func) =
  let preds = Ir.predecessors f in
  List.filter_map
    (fun (h : Ir.block) ->
      match h.Ir.term with
      | Ir.Br (_, body_l, exit_l) when body_l <> exit_l -> (
        match Ir.find_block f body_l with
        | b when b.Ir.term = Ir.Jmp h.Ir.label ->
          let body_preds =
            Option.value ~default:[] (Hashtbl.find_opt preds body_l)
          in
          if body_preds = [ h.Ir.label ] then Some (h, b, exit_l) else None
        | _ -> None
        | exception Not_found -> None)
      | Ir.Br _ | Ir.Jmp _ | Ir.Ret _ -> None)
    f.Ir.blocks

(* ------------------------------------------------------------------ *)
(* Streaming-address analysis                                          *)
(* ------------------------------------------------------------------ *)

(* The registers the loop redefines each iteration. *)
let defs_in instrs =
  let defs = Hashtbl.create 16 in
  Array.iter
    (fun i ->
      match Ir.def_of i with
      | Some d ->
        Hashtbl.replace defs d
          (1 + Option.value ~default:0 (Hashtbl.find_opt defs d))
      | None -> ())
    instrs;
  defs

(* The loop's induction registers: regs whose only in-loop definitions
   form the chain  r' = r + imm ; r = r'  (what lowering produces for
   [i = i + 1]), or directly  r = r + imm. *)
let induction_regs instrs defs =
  let inductions = Hashtbl.create 4 in
  Array.iter
    (fun instr ->
      match instr with
      | Ir.Bin (Ast.Add, d, Ir.Reg r, Ir.Imm _)
      | Ir.Bin (Ast.Add, d, Ir.Imm _, Ir.Reg r) -> (
        (* d = r + c; is r then Mov'd back from d (or d = r)? *)
        if d = r && Hashtbl.find_opt defs d = Some 1 then
          Hashtbl.replace inductions r ()
        else
          Array.iter
            (fun instr2 ->
              match instr2 with
              | Ir.Mov (r', Ir.Reg s)
                when r' = r && s = d
                     && Hashtbl.find_opt defs r = Some 1
                     && Hashtbl.find_opt defs d = Some 1 ->
                Hashtbl.replace inductions r ()
              | _ -> ())
            instrs)
      | _ -> ())
    instrs;
  inductions

(* An address register is "streaming" when it is computed inside the
   loop as  base + (ind << k)  with [base] loop-invariant: iterations
   then touch distinct words of distinct arrays (restrict assumption).
   Returns the base register for disjointness comparison. *)
let streaming_base instrs defs inductions addr_op =
  let invariant r = not (Hashtbl.mem defs r) in
  let shifted_induction = function
    | Ir.Reg r ->
      Array.exists
        (fun instr ->
          match instr with
          | Ir.Bin (Ast.Shl, d, Ir.Reg src, Ir.Imm _) ->
            d = r && Hashtbl.mem inductions src
          | _ -> false)
        instrs
    | Ir.Imm _ -> false
  in
  match addr_op with
  | Ir.Reg addr_reg ->
    Array.fold_left
      (fun acc instr ->
        match instr with
        | Ir.Bin (Ast.Add, d, Ir.Reg base, off)
          when d = addr_reg && invariant base && shifted_induction off ->
          Some base
        | Ir.Bin (Ast.Add, d, off, Ir.Reg base)
          when d = addr_reg && invariant base && shifted_induction off ->
          Some base
        | _ -> acc)
      None instrs
  | Ir.Imm _ -> None

let mem_addr_op = function
  | Ir.Load (_, addr) | Ir.Store (addr, _) -> Some addr
  | Ir.Bin _ | Ir.Un _ | Ir.Mov _ -> None

(* ------------------------------------------------------------------ *)
(* Inter-iteration (distance-1) dependence edges                       *)
(* ------------------------------------------------------------------ *)

(* (producer, consumer, delay): start(consumer) >= start(producer) +
   delay - II. *)
let inter_iteration_edges instrs defs inductions =
  let n = Array.length instrs in
  let edges = ref [] in
  (* Register recurrences: the LAST def of r feeds every use of r at or
     before it (those uses read the previous iteration's value). *)
  let last_def = Hashtbl.create 16 in
  Array.iteri
    (fun i instr ->
      match Ir.def_of instr with
      | Some d -> Hashtbl.replace last_def d i
      | None -> ())
    instrs;
  Array.iteri
    (fun u instr ->
      List.iter
        (fun r ->
          match Hashtbl.find_opt last_def r with
          | Some p when u <= p ->
            edges := (p, u, lat instrs.(p)) :: !edges
          | Some _ | None -> ())
        (Ir.uses_of instr))
    instrs;
  (* Memory recurrences, unless provably streaming-disjoint. *)
  let base_of i = mem_addr_op instrs.(i)
    |> Option.map (streaming_base instrs defs inductions)
    |> Option.join
  in
  for p = 0 to n - 1 do
    for u = 0 to n - 1 do
      if
        is_mem instrs.(p) && is_mem instrs.(u)
        && (is_store instrs.(p) || is_store instrs.(u))
      then begin
        let disjoint =
          match (base_of p, base_of u) with
          | Some bp, Some bu ->
            (* Streaming against distinct restrict bases never recurs;
               the same base recurs only if one is a store to the very
               same induction offset — which streaming rules out. *)
            bp <> bu || not (is_store instrs.(p) && is_store instrs.(u))
          | _ -> false
        in
        if not disjoint then edges := (p, u, 1) :: !edges
      end
    done
  done;
  !edges

(* ------------------------------------------------------------------ *)
(* Modulo scheduling                                                   *)
(* ------------------------------------------------------------------ *)

let resource_min_ii resources instrs =
  List.fold_left
    (fun acc cls ->
      let count =
        Array.fold_left
          (fun c i -> if Optypes.classify i = cls then c + 1 else c)
          0 instrs
      in
      if count = 0 then acc
      else
        max acc
          (Vmht_util.Bits.ceil_div count (Schedule.resource_limit resources cls)))
    1 Optypes.all_classes

(* Greedy program-order schedule under intra-iteration dependences and
   the modulo resource table for a fixed II; [None] when the II's
   resource table cannot host the instructions. *)
let try_schedule resources ~ii instrs intra_edges =
  let n = Array.length instrs in
  let starts = Array.make n 0 in
  let reservation : (int * Optypes.op_class, int) Hashtbl.t =
    Hashtbl.create 32
  in
  let fits slot cls =
    Option.value ~default:0 (Hashtbl.find_opt reservation (slot mod ii, cls))
    < Schedule.resource_limit resources cls
  in
  let reserve slot cls =
    let key = (slot mod ii, cls) in
    Hashtbl.replace reservation key
      (1 + Option.value ~default:0 (Hashtbl.find_opt reservation key))
  in
  let ok = ref true in
  for j = 0 to n - 1 do
    if !ok then begin
      let earliest =
        List.fold_left
          (fun acc (i, delay) -> max acc (starts.(i) + delay))
          0 intra_edges.(j)
      in
      let cls = Optypes.classify instrs.(j) in
      (* A free modulo slot exists within any window of II slots. *)
      let rec find slot budget =
        if budget = 0 then None
        else if fits slot cls then Some slot
        else find (slot + 1) (budget - 1)
      in
      match find earliest ii with
      | Some slot ->
        starts.(j) <- slot;
        reserve slot cls
      | None -> ok := false
    end
  done;
  if !ok then Some starts else None

let plan_loop resources (h : Ir.block) (b : Ir.block) exit_l =
  let instrs = Array.of_list (h.Ir.instrs @ b.Ir.instrs) in
  if Array.length instrs = 0 then None
  else begin
    let intra = Schedule.dependence_edges instrs in
    let defs = defs_in instrs in
    let inductions = induction_regs instrs defs in
    let inter = inter_iteration_edges instrs defs inductions in
    (* What the plain FSM charges per iteration: the (resource-
       unconstrained) ASAP makespans of the two blocks. *)
    let makespan block_instrs =
      let arr = Array.of_list block_instrs in
      let e = Schedule.dependence_edges arr in
      let starts = Array.make (Array.length arr) 0 in
      Array.iteri
        (fun j _ ->
          starts.(j) <-
            List.fold_left (fun acc (i, d) -> max acc (starts.(i) + d)) 0 e.(j))
        arr;
      Array.to_list arr
      |> List.mapi (fun i instr -> starts.(i) + lat instr)
      |> List.fold_left max 1
    in
    let unpipelined_cycles = makespan h.Ir.instrs + makespan b.Ir.instrs in
    let min_ii = resource_min_ii resources instrs in
    let max_ii = max min_ii unpipelined_cycles in
    let rec search ii =
      if ii > max_ii then None
      else
        match try_schedule resources ~ii instrs intra with
        | None -> search (ii + 1)
        | Some starts ->
          let inter_ok =
            List.for_all
              (fun (p, u, delay) -> starts.(u) + ii >= starts.(p) + delay)
              inter
          in
          if inter_ok then Some (ii, starts) else search (ii + 1)
    in
    match search min_ii with
    | None -> None
    | Some (ii, starts) ->
      let depth =
        Array.to_list instrs
        |> List.mapi (fun i instr -> starts.(i) + lat instr)
        |> List.fold_left max ii
      in
      if ii < unpipelined_cycles then
        Some
          {
            header = h.Ir.label;
            body = b.Ir.label;
            exit = exit_l;
            ii;
            depth;
            unpipelined_cycles;
          }
      else None
  end

let plan_loops (f : Ir.func) ~resources =
  List.filter_map
    (fun (h, b, exit_l) -> plan_loop resources h b exit_l)
    (find_candidate_loops f)

let to_string p =
  Printf.sprintf "loop L%d/L%d: II=%d depth=%d (FSM iteration %d cycles)"
    p.header p.body p.ii p.depth p.unpipelined_cycles
