(** Cycle-level execution of a synthesized hardware thread.

    The accelerator runs as a simulation process: each FSM state costs
    one fabric cycle, and memory operations additionally stall the
    state until the memory interface answers.  Register semantics match
    the scheduler's model — operations read register values latched at
    their start cycle, writes commit afterwards — so the result always
    equals the IR interpreter's (a property the test suite checks).

    Memory operations scheduled in the same cycle are issued through
    the available ports: up to [ports] accesses go out concurrently
    (fork/join); further ones queue behind them. *)

type port = {
  load : int -> int; (** timed word load; called in process context *)
  store : int -> int -> unit; (** timed word store *)
}

type run_stats = {
  mutable fsm_cycles : int; (** cycles spent stepping states *)
  mutable loads : int;
  mutable stores : int;
  mutable block_visits : int;
}

val fresh_stats : unit -> run_stats

val chunks : int -> 'a list -> 'a list list
(** Split a list into consecutive chunks of at most [n] elements — the
    port-width discipline for same-cycle memory accesses ([ports]-wide
    issue groups, later groups queueing behind earlier ones).  Exposed
    so the RTL evaluator drives its channel lanes through the very same
    grouping and the two backends stay cycle-identical. *)

val run :
  ?observer:Vmht_obs.Event.emitter ->
  ?stats:run_stats ->
  ?ports:int ->
  ?fastpath:bool ->
  Fsm.t ->
  port:port ->
  args:int list ->
  int option
(** Execute the hardware thread to completion.  Must be called from a
    simulation process; simulated time advances as it runs.

    [observer] receives one {!Vmht_obs.Event.kind.Fsm_state} event per
    basic-block entry, spanning the block's execution; a
    software-pipelined loop region emits a single event covering all
    its iterations.

    [fastpath] (default [true]) executes blocks through their
    trace-compiled form ({!Fsm.Trace}): runs of memory-free FSM states
    advance the clock with one fused wait instead of one per state.
    Cycle counts, results, stats and emitted events are identical
    either way; any state touching memory always executes unfused, so
    faults and contention land exactly where the interpreter would put
    them. *)

val untimed_port : Vmht_lang.Ast_interp.memory -> port
(** Wrap an untimed memory as a port (for functional tests outside the
    simulator the accesses still cost the caller nothing). *)
