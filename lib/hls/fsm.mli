(** The synthesized hardware-thread image.

    Bundles everything HLS produced for one kernel: the optimized IR,
    its static schedule, the binding, the datapath area (bare, before
    any memory-interface wrapper) and synthesis statistics.  This is
    what the system-level flow wraps with a VM or DMA interface. *)

type stats = {
  ir_instrs : int;
  blocks : int;
  states : int;
  reg_count : int;
  opt_report : Vmht_ir.Pass_manager.report;
  unrolled_loops : int;
  pipelined_loops : int;
}

type t = {
  name : string;
  func : Vmht_ir.Ir.func;
  schedule : Schedule.t;
  binding : Bind.t;
  area : Optypes.area;
  plans : Pipeliner.plan list;
      (** modulo-scheduled loops ([] unless synthesized with
          [~pipeline:true]) *)
  stats : stats;
}

val synthesize :
  ?resources:Schedule.resources ->
  ?unroll:int ->
  ?pipeline:bool ->
  ?schedule:Vmht_ir.Pass_manager.schedule ->
  Vmht_lang.Ast.kernel ->
  t
(** The HLS flow: typecheck, (optionally) unroll, lower, optimize under
    [schedule] (default {!Vmht_ir.Pass_manager.o2}), schedule, bind,
    and estimate datapath area.  Raises {!Vmht_lang.Loc.Error} on
    ill-typed input. *)

val datapath_area : Bind.t -> states:int -> Optypes.area
(** FU area + register file + controller; no memory interface. *)

(** Trace-compiled form of a block schedule: instruction indices
    bucketed by start cycle, with maximal runs of memory-free cycles
    grouped so the executor visits a block in O(instrs + steps) and can
    collapse a pure run's unit waits into one wait.  Memory cycles are
    never grouped — every translation, bus transaction and
    fault-injector draw happens exactly where the interpreter would
    perform it (the compiled trace's de-optimization boundary). *)
module Trace : sig
  type step =
    | Pure of int array array
        (** consecutive memory-free cycles; instruction indices per
            cycle, in instruction order *)
    | Mem of int array  (** one cycle containing at least one Load/Store *)

  type block = step array

  val compile_block : Schedule.block_schedule -> block
end

val stats_to_string : stats -> string
