module Ir = Vmht_ir.Ir
module Liveness = Vmht_ir.Liveness

type t = {
  schedule : Schedule.t;
  fu_counts : (Optypes.op_class * int) list;
  fu_of_instr : (Ir.label * int, int) Hashtbl.t;
  reg_count : int;
  mem_banks : int;
  mem_channels : int;
}

let bind (sched : Schedule.t) =
  let fu_of_instr = Hashtbl.create 64 in
  (* Greedy cycle-local assignment: operations in the same cycle take
     unit 0, 1, ... of their class; across cycles units are reused. *)
  List.iter
    (fun (b : Schedule.block_schedule) ->
      let used_this_cycle : (int * Optypes.op_class, int) Hashtbl.t =
        Hashtbl.create 16
      in
      let order = Array.init (Array.length b.instrs) Fun.id in
      Array.sort
        (fun i j -> compare (b.starts.(i), i) (b.starts.(j), j))
        order;
      Array.iter
        (fun i ->
          let cls = Optypes.classify b.instrs.(i) in
          let key = (b.starts.(i), cls) in
          let unit_index =
            Option.value ~default:0 (Hashtbl.find_opt used_this_cycle key)
          in
          Hashtbl.replace used_this_cycle key (unit_index + 1);
          Hashtbl.replace fu_of_instr (b.label, i) unit_index)
        order)
    sched.blocks;
  let fu_counts =
    List.filter_map
      (fun cls ->
        match Schedule.max_concurrency sched cls with
        | 0 -> None
        | n when cls = Optypes.Move -> ignore n; None (* moves are wires *)
        | n -> Some (cls, n))
      Optypes.all_classes
  in
  let live = Liveness.compute sched.func in
  let reg_count =
    max
      (Liveness.max_live sched.func live)
      (List.length sched.func.Ir.arg_regs)
  in
  (* The banked scratchpad the schedule was arbitrated against: the
     bank count sizes the arbiter/decoder logic, the peak same-cycle
     memory concurrency sizes the datapath's request channels. *)
  let mem_banks = sched.Schedule.resources.Schedule.mem.Schedule.banks in
  let mem_channels = Schedule.max_concurrency sched Optypes.Mem in
  { schedule = sched; fu_counts; fu_of_instr; reg_count; mem_banks; mem_channels }

let fu_count t cls =
  Option.value ~default:0 (List.assoc_opt cls t.fu_counts)

let total_fus t = List.fold_left (fun acc (_, n) -> acc + n) 0 t.fu_counts

let to_string t =
  let fus =
    String.concat ", "
      (List.map
         (fun (cls, n) -> Printf.sprintf "%s=%d" (Optypes.class_name cls) n)
         t.fu_counts)
  in
  Printf.sprintf "bind: [%s], %d registers" fus t.reg_count
