module Ir = Vmht_ir.Ir
module Ast = Vmht_lang.Ast

let operand = function
  | Ir.Reg r -> Printf.sprintf "r%d" r
  | Ir.Imm n ->
    if n >= 0 then Printf.sprintf "64'd%d" n
    else Printf.sprintf "-64'sd%d" (-n)

let binop_expr op a b =
  let infix sym = Printf.sprintf "%s %s %s" a sym b in
  match op with
  | Ast.Add -> infix "+"
  | Ast.Sub -> infix "-"
  | Ast.Mul -> infix "*"
  | Ast.Div -> infix "/"
  | Ast.Rem -> infix "%"
  | Ast.And -> infix "&"
  | Ast.Or -> infix "|"
  | Ast.Xor -> infix "^"
  | Ast.Shl -> infix "<<"
  | Ast.Shr -> infix ">>>"
  | Ast.Lt -> Printf.sprintf "{63'b0, $signed(%s) < $signed(%s)}" a b
  | Ast.Le -> Printf.sprintf "{63'b0, $signed(%s) <= $signed(%s)}" a b
  | Ast.Gt -> Printf.sprintf "{63'b0, $signed(%s) > $signed(%s)}" a b
  | Ast.Ge -> Printf.sprintf "{63'b0, $signed(%s) >= $signed(%s)}" a b
  | Ast.Eq -> Printf.sprintf "{63'b0, %s == %s}" a b
  | Ast.Ne -> Printf.sprintf "{63'b0, %s != %s}" a b
  | Ast.Land -> Printf.sprintf "{63'b0, (%s != 0) && (%s != 0)}" a b
  | Ast.Lor -> Printf.sprintf "{63'b0, (%s != 0) || (%s != 0)}" a b

let unop_expr op a =
  match op with
  | Ast.Neg -> Printf.sprintf "-%s" a
  | Ast.Not -> Printf.sprintf "{63'b0, %s == 0}" a
  | Ast.Bnot -> Printf.sprintf "~%s" a

(* Memory request channels: one per bound memory unit, so a schedule
   that co-issues N accesses drives N independent channels (the single
   shared channel used to be silently overwritten by the second access
   of a cycle).  Channel 0 keeps the historical [mem_*] names so
   single-issue modules are unchanged. *)
let ch_prefix c = if c = 0 then "mem" else Printf.sprintf "mem%d" c

let mem_channel_count (hw : Fsm.t) = max 1 hw.Fsm.binding.Bind.mem_channels

(* Global state numbering: block label L, cycle c -> state id. *)
let state_table (hw : Fsm.t) =
  let table = Hashtbl.create 32 in
  let next = ref 0 in
  List.iter
    (fun (b : Schedule.block_schedule) ->
      for c = 0 to b.Schedule.makespan - 1 do
        Hashtbl.replace table (b.Schedule.label, c) !next;
        incr next
      done)
    hw.Fsm.schedule.Schedule.blocks;
  (table, !next)

let emit_body buf (hw : Fsm.t) =
  let f = hw.Fsm.func in
  let states, n_states = state_table hw in
  let state_of label cycle = Hashtbl.find states (label, cycle) in
  let bp fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let state_bits = max 1 (Vmht_util.Bits.ceil_log2 (max n_states 2)) in
  let fu_of = hw.Fsm.binding.Bind.fu_of_instr in
  bp "  // %d FSM states, %d virtual registers\n" n_states f.Ir.next_reg;
  bp "  localparam S_IDLE = %d'd%d;\n" state_bits n_states;
  bp "  localparam S_DONE = %d'd%d;\n" state_bits (n_states + 1);
  bp "  reg [%d:0] state;\n" (state_bits - 1);
  for r = 0 to f.Ir.next_reg - 1 do
    bp "  reg [63:0] r%d;\n" r
  done;
  bp "\n  always @(posedge clk) begin\n";
  bp "    if (rst) begin\n      state <= S_IDLE;\n      done <= 1'b0;\n";
  bp "    end else begin\n";
  bp "      case (state)\n";
  bp "        S_IDLE: if (start) begin\n";
  List.iteri (fun i r -> bp "          r%d <= arg%d;\n" r i) f.Ir.arg_regs;
  (match f.Ir.blocks with
   | [] -> ()
   | entry :: _ -> bp "          state <= %d'd%d;\n" state_bits
                     (state_of entry.Ir.label 0));
  bp "        end\n";
  List.iter
    (fun (b : Schedule.block_schedule) ->
      let ir_block = Ir.find_block f b.Schedule.label in
      for c = 0 to b.Schedule.makespan - 1 do
        let sid = state_of b.Schedule.label c in
        bp "        %d'd%d: begin // L%d cycle %d\n" state_bits sid
          b.Schedule.label c;
        let active_channels = ref [] in
        let channel i =
          let u =
            Option.value ~default:0
              (Hashtbl.find_opt fu_of (b.Schedule.label, i))
          in
          active_channels := u :: !active_channels;
          ch_prefix u
        in
        Array.iteri
          (fun i start ->
            if start = c then begin
              match b.Schedule.instrs.(i) with
              | Ir.Bin (op, d, x, y) ->
                bp "          r%d <= %s;\n" d
                  (binop_expr op (operand x) (operand y))
              | Ir.Un (op, d, x) ->
                bp "          r%d <= %s;\n" d (unop_expr op (operand x))
              | Ir.Mov (d, x) -> bp "          r%d <= %s;\n" d (operand x)
              | Ir.Load (d, addr) ->
                let ch = channel i in
                bp "          %s_req <= 1'b1; %s_we <= 1'b0;\n" ch ch;
                bp "          %s_addr <= %s;\n" ch (operand addr);
                bp "          if (%s_ack) r%d <= %s_rdata;\n" ch d ch
              | Ir.Store (addr, v) ->
                let ch = channel i in
                bp "          %s_req <= 1'b1; %s_we <= 1'b1;\n" ch ch;
                bp "          %s_addr <= %s; %s_wdata <= %s;\n" ch
                  (operand addr) ch (operand v)
            end)
          b.Schedule.starts;
        (* The state holds until every channel active this cycle acks. *)
        let ack_cond () =
          List.sort_uniq compare !active_channels
          |> List.map (fun u -> ch_prefix u ^ "_ack")
          |> String.concat " && "
        in
        let advance target =
          if !active_channels <> [] then
            bp "          if (%s) state <= %s;\n" (ack_cond ()) target
          else bp "          state <= %s;\n" target
        in
        if c < b.Schedule.makespan - 1 then
          advance (Printf.sprintf "%d'd%d" state_bits
                     (state_of b.Schedule.label (c + 1)))
        else begin
          match ir_block.Ir.term with
          | Ir.Jmp l ->
            advance (Printf.sprintf "%d'd%d" state_bits (state_of l 0))
          | Ir.Br (cond, l1, l2) ->
            if !active_channels <> [] then bp "          if (%s)\n" (ack_cond ());
            bp "          state <= (%s != 0) ? %d'd%d : %d'd%d;\n"
              (operand cond) state_bits (state_of l1 0) state_bits
              (state_of l2 0)
          | Ir.Ret v ->
            (match v with
             | Some op -> bp "          result <= %s;\n" (operand op)
             | None -> ());
            bp "          done <= 1'b1;\n";
            advance "S_DONE"
        end;
        bp "        end\n"
      done)
    hw.Fsm.schedule.Schedule.blocks;
  bp "        S_DONE: if (!start) begin state <= S_IDLE; done <= 1'b0; end\n";
  bp "        default: state <= S_IDLE;\n";
  bp "      endcase\n    end\n  end\n"

let module_ports (hw : Fsm.t) extra =
  let f = hw.Fsm.func in
  let args =
    List.mapi (fun i _ -> Printf.sprintf "input wire [63:0] arg%d" i)
      f.Ir.arg_regs
  in
  let mem_ports =
    List.concat_map
      (fun c ->
        let p = ch_prefix c in
        [
          Printf.sprintf "output reg %s_req" p;
          Printf.sprintf "output reg %s_we" p;
          Printf.sprintf "output reg [63:0] %s_addr" p;
          Printf.sprintf "output reg [63:0] %s_wdata" p;
          Printf.sprintf "input wire [63:0] %s_rdata" p;
          Printf.sprintf "input wire %s_ack" p;
        ])
      (List.init (mem_channel_count hw) Fun.id)
  in
  [
    "input wire clk";
    "input wire rst";
    "input wire start";
    "output reg done";
    "output reg [63:0] result";
  ]
  @ mem_ports @ args @ extra

let emit_with_wrapper (hw : Fsm.t) ~wrapper_ports =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "// Generated by vmht HLS — hardware thread '%s'\n"
       hw.Fsm.name);
  Buffer.add_string buf
    (Printf.sprintf "// %s\n" (Fsm.stats_to_string hw.Fsm.stats));
  (let m = hw.Fsm.schedule.Schedule.resources.Schedule.mem in
   if m.Schedule.banks > 1 then
     Buffer.add_string buf
       (Printf.sprintf
          "// memory: %d word-interleaved bank(s) x %d port(s), %d \
           channel(s)\n"
          m.Schedule.banks m.Schedule.ports_per_bank (mem_channel_count hw)));
  List.iter
    (fun plan ->
      Buffer.add_string buf
        (Printf.sprintf "// pipelined %s\n" (Pipeliner.to_string plan)))
    hw.Fsm.plans;
  Buffer.add_string buf (Printf.sprintf "module ht_%s (\n" hw.Fsm.name);
  Buffer.add_string buf
    ("  " ^ String.concat ",\n  " (module_ports hw wrapper_ports) ^ "\n);\n");
  emit_body buf hw;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let emit hw = emit_with_wrapper hw ~wrapper_ports:[]
