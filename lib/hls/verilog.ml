module Ir = Vmht_ir.Ir
module Ast = Vmht_lang.Ast

let operand = function
  | Ir.Reg r -> Printf.sprintf "r%d" r
  | Ir.Imm n ->
    (* Negative immediates are emitted as sized two's-complement hex
       literals: [-64'sd5] binds the minus *outside* the sized literal,
       which is self-determined inside concatenations and silently
       changes meaning there.  [Int64.of_int] sign-extends OCaml's
       63-bit int, so the printed pattern reads back to the same
       value. *)
    if n >= 0 then Printf.sprintf "64'd%d" n
    else Printf.sprintf "64'h%Lx" (Int64.of_int n)

let binop_expr op a b =
  let infix sym = Printf.sprintf "%s %s %s" a sym b in
  (* Div/Rem/Shr act on *signed* values in the reference semantics
     ({!Vmht_lang.Ast_interp.eval_binop}: OCaml [/], [mod], [asr]); the
     registers are unsigned 64-bit regs, so without the [$signed]
     casts Verilog computes the unsigned variants ([>>>] in particular
     is only an arithmetic shift when its left operand is signed). *)
  match op with
  | Ast.Add -> infix "+"
  | Ast.Sub -> infix "-"
  | Ast.Mul -> infix "*"
  | Ast.Div -> Printf.sprintf "$signed(%s) / $signed(%s)" a b
  | Ast.Rem -> Printf.sprintf "$signed(%s) %% $signed(%s)" a b
  | Ast.And -> infix "&"
  | Ast.Or -> infix "|"
  | Ast.Xor -> infix "^"
  | Ast.Shl -> infix "<<"
  | Ast.Shr -> Printf.sprintf "$signed(%s) >>> %s" a b
  | Ast.Lt -> Printf.sprintf "{63'b0, $signed(%s) < $signed(%s)}" a b
  | Ast.Le -> Printf.sprintf "{63'b0, $signed(%s) <= $signed(%s)}" a b
  | Ast.Gt -> Printf.sprintf "{63'b0, $signed(%s) > $signed(%s)}" a b
  | Ast.Ge -> Printf.sprintf "{63'b0, $signed(%s) >= $signed(%s)}" a b
  | Ast.Eq -> Printf.sprintf "{63'b0, %s == %s}" a b
  | Ast.Ne -> Printf.sprintf "{63'b0, %s != %s}" a b
  | Ast.Land -> Printf.sprintf "{63'b0, (%s != 0) && (%s != 0)}" a b
  | Ast.Lor -> Printf.sprintf "{63'b0, (%s != 0) || (%s != 0)}" a b

let unop_expr op a =
  match op with
  | Ast.Neg -> Printf.sprintf "-%s" a
  | Ast.Not -> Printf.sprintf "{63'b0, %s == 0}" a
  | Ast.Bnot -> Printf.sprintf "~%s" a

(* Memory request channels: one per bound memory unit, so a schedule
   that co-issues N accesses drives N independent channels (the single
   shared channel used to be silently overwritten by the second access
   of a cycle).  Channel 0 keeps the historical [mem_*] names so
   single-issue modules are unchanged. *)
let ch_prefix c = if c = 0 then "mem" else Printf.sprintf "mem%d" c

let mem_channel_count (hw : Fsm.t) = max 1 hw.Fsm.binding.Bind.mem_channels

(* Global state numbering: block label L, cycle c -> state id. *)
let state_table (hw : Fsm.t) =
  let table = Hashtbl.create 32 in
  let next = ref 0 in
  List.iter
    (fun (b : Schedule.block_schedule) ->
      for c = 0 to b.Schedule.makespan - 1 do
        Hashtbl.replace table (b.Schedule.label, c) !next;
        incr next
      done)
    hw.Fsm.schedule.Schedule.blocks;
  (table, !next)

let emit_body buf (hw : Fsm.t) =
  let f = hw.Fsm.func in
  let states, n_states = state_table hw in
  let state_of label cycle = Hashtbl.find states (label, cycle) in
  let bp fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (* The register also holds S_IDLE = n_states and S_DONE = n_states+1,
     so the width must cover n_states + 2 values — sizing it for the
     exec states alone truncated S_IDLE to 0 whenever n_states was a
     power of two, aliasing idle with the first exec state. *)
  let state_bits = max 1 (Vmht_util.Bits.ceil_log2 (n_states + 2)) in
  let fu_of = hw.Fsm.binding.Bind.fu_of_instr in
  let n_channels = mem_channel_count hw in
  bp "  // %d FSM states, %d virtual registers\n" n_states f.Ir.next_reg;
  bp "  localparam S_IDLE = %d'd%d;\n" state_bits n_states;
  bp "  localparam S_DONE = %d'd%d;\n" state_bits (n_states + 1);
  bp "  reg [%d:0] state;\n" (state_bits - 1);
  for r = 0 to f.Ir.next_reg - 1 do
    bp "  reg [63:0] r%d;\n" r
  done;
  bp "\n  always @(posedge clk) begin\n";
  bp "    if (rst) begin\n      state <= S_IDLE;\n      done <= 1'b0;\n";
  (* Every output reg gets a reset value: without these, [result] and
     the channel outputs power up X, and an X-valued [*_req] is
     indistinguishable from a request to any honest memory
     controller. *)
  bp "      result <= 64'd0;\n";
  for c = 0 to n_channels - 1 do
    let p = ch_prefix c in
    bp "      %s_req <= 1'b0;\n      %s_we <= 1'b0;\n" p p;
    bp "      %s_addr <= 64'd0;\n      %s_wdata <= 64'd0;\n" p p
  done;
  bp "    end else begin\n";
  bp "      case (state)\n";
  bp "        S_IDLE: begin\n";
  for c = 0 to n_channels - 1 do
    bp "          %s_req <= 1'b0;\n" (ch_prefix c)
  done;
  bp "          if (start) begin\n";
  List.iteri (fun i r -> bp "            r%d <= arg%d;\n" r i) f.Ir.arg_regs;
  (match f.Ir.blocks with
   | [] -> ()
   | entry :: _ -> bp "            state <= %d'd%d;\n" state_bits
                     (state_of entry.Ir.label 0));
  bp "          end\n";
  bp "        end\n";
  List.iter
    (fun (b : Schedule.block_schedule) ->
      let ir_block = Ir.find_block f b.Schedule.label in
      for c = 0 to b.Schedule.makespan - 1 do
        let sid = state_of b.Schedule.label c in
        bp "        %d'd%d: begin // L%d cycle %d\n" state_bits sid
          b.Schedule.label c;
        let active_channels = ref [] in
        let channel i =
          let u =
            Option.value ~default:0
              (Hashtbl.find_opt fu_of (b.Schedule.label, i))
          in
          active_channels := u :: !active_channels;
          ch_prefix u
        in
        (* Nonblocking commits of this state land *after* the edge that
           leaves it, but the terminator is emitted in this same state
           and must observe them (the model evaluates terminators after
           the final cycle's commits).  Any value committed at the
           final edge comes from a latency-1 op started in this very
           cycle — its operands read the same register snapshot this
           edge sees — so forwarding the defining expression (or the
           channel's rdata for a load) is exact. *)
        let fwd = Hashtbl.create 4 in
        let final = c = b.Schedule.makespan - 1 in
        (* Issue assignments (req/we/addr/wdata) are idempotent under a
           stall and stay ungated; every register commit — pure ops,
           load-data captures — must only fire on the advancing edge,
           or a state held for L cycles would re-commit [r <= r + 1]
           L times where the model commits it once. *)
        let committed = ref [] in
        let commit line = committed := line :: !committed in
        Array.iteri
          (fun i start ->
            if start = c then begin
              match b.Schedule.instrs.(i) with
              | Ir.Bin (op, d, x, y) ->
                let e = binop_expr op (operand x) (operand y) in
                if final then Hashtbl.replace fwd d e;
                commit (Printf.sprintf "r%d <= %s;" d e)
              | Ir.Un (op, d, x) ->
                let e = unop_expr op (operand x) in
                if final then Hashtbl.replace fwd d e;
                commit (Printf.sprintf "r%d <= %s;" d e)
              | Ir.Mov (d, x) ->
                let e = operand x in
                if final then Hashtbl.replace fwd d e;
                commit (Printf.sprintf "r%d <= %s;" d e)
              | Ir.Load (d, addr) ->
                let ch = channel i in
                if final then Hashtbl.replace fwd d (ch ^ "_rdata");
                bp "          %s_req <= 1'b1; %s_we <= 1'b0;\n" ch ch;
                bp "          %s_addr <= %s;\n" ch (operand addr);
                commit (Printf.sprintf "r%d <= %s_rdata;" d ch)
              | Ir.Store (addr, v) ->
                let ch = channel i in
                bp "          %s_req <= 1'b1; %s_we <= 1'b1;\n" ch ch;
                bp "          %s_addr <= %s; %s_wdata <= %s;\n" ch
                  (operand addr) ch (operand v)
            end)
          b.Schedule.starts;
        let t_operand op =
          match op with
          | Ir.Reg r -> (
            match Hashtbl.find_opt fwd r with
            | Some e -> "(" ^ e ^ ")"
            | None -> operand op)
          | Ir.Imm _ -> operand op
        in
        (* The state holds until every channel active this cycle acks:
           the acked edge applies the buffered commits, deasserts the
           requests (so a channel never keeps requesting into the next
           state) and advances.  Without channels every edge is an
           advancing edge and nothing needs the gate. *)
        let advance stmts =
          let chans = List.sort_uniq compare !active_channels in
          if chans <> [] then begin
            let acks =
              List.map (fun u -> ch_prefix u ^ "_ack") chans
              |> String.concat " && "
            in
            bp "          if (%s) begin\n" acks;
            List.iter (bp "            %s\n") (List.rev !committed);
            List.iter
              (fun u -> bp "            %s_req <= 1'b0;\n" (ch_prefix u))
              chans;
            List.iter (bp "            %s\n") stmts;
            bp "          end\n"
          end
          else begin
            List.iter (bp "          %s\n") (List.rev !committed);
            List.iter (bp "          %s\n") stmts
          end
        in
        let goto label cycle =
          Printf.sprintf "state <= %d'd%d;" state_bits (state_of label cycle)
        in
        if c < b.Schedule.makespan - 1 then
          advance [ goto b.Schedule.label (c + 1) ]
        else begin
          match ir_block.Ir.term with
          | Ir.Jmp l -> advance [ goto l 0 ]
          | Ir.Br (cond, l1, l2) ->
            advance
              [
                Printf.sprintf "state <= (%s != 0) ? %d'd%d : %d'd%d;"
                  (t_operand cond) state_bits (state_of l1 0) state_bits
                  (state_of l2 0);
              ]
          | Ir.Ret v ->
            (* result and done ride inside the acked advance: asserting
               done while the final access is still in flight would
               signal completion early. *)
            advance
              ((match v with
                | Some op ->
                  [ Printf.sprintf "result <= %s;" (t_operand op) ]
                | None -> [])
              @ [ "done <= 1'b1;"; "state <= S_DONE;" ])
        end;
        bp "        end\n"
      done)
    hw.Fsm.schedule.Schedule.blocks;
  bp "        S_DONE: begin\n";
  for c = 0 to n_channels - 1 do
    bp "          %s_req <= 1'b0;\n" (ch_prefix c)
  done;
  bp "          if (!start) begin\n";
  bp "            state <= S_IDLE;\n            done <= 1'b0;\n";
  bp "          end\n";
  bp "        end\n";
  bp "        default: state <= S_IDLE;\n";
  bp "      endcase\n    end\n  end\n"

let module_ports (hw : Fsm.t) extra =
  let f = hw.Fsm.func in
  let args =
    List.mapi (fun i _ -> Printf.sprintf "input wire [63:0] arg%d" i)
      f.Ir.arg_regs
  in
  let mem_ports =
    List.concat_map
      (fun c ->
        let p = ch_prefix c in
        [
          Printf.sprintf "output reg %s_req" p;
          Printf.sprintf "output reg %s_we" p;
          Printf.sprintf "output reg [63:0] %s_addr" p;
          Printf.sprintf "output reg [63:0] %s_wdata" p;
          Printf.sprintf "input wire [63:0] %s_rdata" p;
          Printf.sprintf "input wire %s_ack" p;
        ])
      (List.init (mem_channel_count hw) Fun.id)
  in
  [
    "input wire clk";
    "input wire rst";
    "input wire start";
    "output reg done";
    "output reg [63:0] result";
  ]
  @ mem_ports @ args @ extra

let emit_with_wrapper (hw : Fsm.t) ~wrapper_ports =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "// Generated by vmht HLS — hardware thread '%s'\n"
       hw.Fsm.name);
  Buffer.add_string buf
    (Printf.sprintf "// %s\n" (Fsm.stats_to_string hw.Fsm.stats));
  (let m = hw.Fsm.schedule.Schedule.resources.Schedule.mem in
   if m.Schedule.banks > 1 then
     Buffer.add_string buf
       (Printf.sprintf
          "// memory: %d word-interleaved bank(s) x %d port(s), %d \
           channel(s)\n"
          m.Schedule.banks m.Schedule.ports_per_bank (mem_channel_count hw)));
  List.iter
    (fun plan ->
      Buffer.add_string buf
        (Printf.sprintf "// pipelined %s\n" (Pipeliner.to_string plan)))
    hw.Fsm.plans;
  Buffer.add_string buf (Printf.sprintf "module ht_%s (\n" hw.Fsm.name);
  Buffer.add_string buf
    ("  " ^ String.concat ",\n  " (module_ports hw wrapper_ports) ^ "\n);\n");
  emit_body buf hw;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let emit hw = emit_with_wrapper hw ~wrapper_ports:[]
