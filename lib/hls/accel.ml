module Ir = Vmht_ir.Ir
module Engine = Vmht_sim.Engine
module Ast_interp = Vmht_lang.Ast_interp

type port = { load : int -> int; store : int -> int -> unit }

type run_stats = {
  mutable fsm_cycles : int;
  mutable loads : int;
  mutable stores : int;
  mutable block_visits : int;
}

let fresh_stats () =
  { fsm_cycles = 0; loads = 0; stores = 0; block_visits = 0 }

let untimed_port (mem : Ast_interp.memory) =
  { load = mem.Ast_interp.load; store = mem.Ast_interp.store }

(* Run every thunk as a child process and block until all complete. *)
let par_run fns = Engine.join_all ~name:"mem-lane" fns

let rec chunks n = function
  | [] -> []
  | l ->
    let rec take k acc = function
      | rest when k = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> take (k - 1) (x :: acc) rest
    in
    let chunk, rest = take n [] l in
    chunk :: chunks n rest

let run ?observer ?(stats = fresh_stats ()) ?(ports = 1) ?(fastpath = true)
    (hw : Fsm.t) ~port ~args =
  let f = hw.Fsm.func in
  if List.length args <> List.length f.Ir.arg_regs then
    invalid_arg
      (Printf.sprintf "Accel.run: %s expects %d args, got %d" f.Ir.fname
         (List.length f.Ir.arg_regs)
         (List.length args));
  let regs = Array.make (max f.Ir.next_reg 1) 0 in
  List.iter2 (fun r v -> regs.(r) <- v) f.Ir.arg_regs args;
  let value = function Ir.Reg r -> regs.(r) | Ir.Imm n -> n in
  let sched_blocks = Hashtbl.create 16 in
  List.iter
    (fun (b : Schedule.block_schedule) ->
      Hashtbl.replace sched_blocks b.Schedule.label b)
    hw.Fsm.schedule.Schedule.blocks;
  (* Blocks execute their trace-compiled form (instruction indices
     bucketed by start cycle, see {!Fsm.Trace}); compiled lazily, once
     per label per run. *)
  let compiled_blocks = Hashtbl.create 16 in
  let compiled_for label b =
    match Hashtbl.find_opt compiled_blocks label with
    | Some c -> c
    | None ->
      let c = Fsm.Trace.compile_block b in
      Hashtbl.add compiled_blocks label c;
      c
  in
  (* Execute one FSM state (= one schedule cycle of a block).  All
     operand reads happen against the register file as it was at state
     entry; commits are buffered and applied at state exit. *)
  let exec_cycle (b : Schedule.block_schedule) (ids : int array) =
    let commits = ref [] in
    let mem_ops = ref [] in
    Array.iter
      (fun i ->
        match b.Schedule.instrs.(i) with
        | Ir.Bin (op, d, x, y) ->
          let v = Ast_interp.eval_binop op (value x) (value y) in
          commits := (d, v) :: !commits
        | Ir.Un (op, d, x) ->
          commits := (d, Ast_interp.eval_unop op (value x)) :: !commits
        | Ir.Mov (d, x) -> commits := (d, value x) :: !commits
        | Ir.Load (d, addr) ->
          let a = value addr in
          stats.loads <- stats.loads + 1;
          mem_ops :=
            (fun () ->
              (* Complete the access before touching the commit list:
                 concurrent lanes must not capture a stale snapshot
                 of it across their suspension. *)
              let v = port.load a in
              commits := (d, v) :: !commits)
            :: !mem_ops
        | Ir.Store (addr, v) ->
          let a = value addr in
          let v = value v in
          stats.stores <- stats.stores + 1;
          mem_ops := (fun () -> port.store a v) :: !mem_ops)
      ids;
    let mem_ops = List.rev !mem_ops in
    if mem_ops = [] then Engine.wait 1
    else
      (* The state holds until every access of the cycle completes;
         accesses run [ports]-wide. *)
      List.iter par_run (chunks ports mem_ops);
    stats.fsm_cycles <- stats.fsm_cycles + 1;
    List.iter (fun (d, v) -> regs.(d) <- v) (List.rev !commits)
  in
  (* Fast path over a [Pure] step: no memory, so the unit waits of its
     cycles fuse into one wait at the end.  Register semantics are
     preserved exactly — each cycle still reads the file as of its own
     entry and commits at its own exit (buffered when a cycle holds
     several ops); only the wait placement moves, which nothing can
     observe because pure cycles touch no shared structure. *)
  let exec_pure_fused (b : Schedule.block_schedule) (cycles : int array array)
      =
    let n = Array.length cycles in
    for c = 0 to n - 1 do
      let ids = cycles.(c) in
      if Array.length ids = 1 then
        (match b.Schedule.instrs.(ids.(0)) with
        | Ir.Bin (op, d, x, y) ->
          regs.(d) <- Ast_interp.eval_binop op (value x) (value y)
        | Ir.Un (op, d, x) -> regs.(d) <- Ast_interp.eval_unop op (value x)
        | Ir.Mov (d, x) -> regs.(d) <- value x
        | Ir.Load _ | Ir.Store _ -> assert false)
      else begin
        let commits = ref [] in
        Array.iter
          (fun i ->
            match b.Schedule.instrs.(i) with
            | Ir.Bin (op, d, x, y) ->
              let v = Ast_interp.eval_binop op (value x) (value y) in
              commits := (d, v) :: !commits
            | Ir.Un (op, d, x) ->
              commits := (d, Ast_interp.eval_unop op (value x)) :: !commits
            | Ir.Mov (d, x) -> commits := (d, value x) :: !commits
            | Ir.Load _ | Ir.Store _ -> assert false)
          ids;
        List.iter (fun (d, v) -> regs.(d) <- v) (List.rev !commits)
      end
    done;
    stats.fsm_cycles <- stats.fsm_cycles + n;
    Engine.wait n
  in
  (* Sequential functional execution of one instruction, used by the
     software-pipelined loop path: results are exact (program order);
     only memory advances simulated time — compute time is charged at
     the initiation-interval granularity by the caller. *)
  let exec_seq instr =
    match instr with
    | Ir.Bin (op, d, x, y) ->
      regs.(d) <- Ast_interp.eval_binop op (value x) (value y)
    | Ir.Un (op, d, x) -> regs.(d) <- Ast_interp.eval_unop op (value x)
    | Ir.Mov (d, x) -> regs.(d) <- value x
    | Ir.Load (d, addr) ->
      stats.loads <- stats.loads + 1;
      regs.(d) <- port.load (value addr)
    | Ir.Store (addr, v) ->
      stats.stores <- stats.stores + 1;
      port.store (value addr) (value v)
  in
  (* Run a modulo-scheduled loop: one iteration initiates every II
     cycles once the pipeline is full; iterations whose memory exceeds
     the II stall the pipeline for the difference. *)
  let exec_pipelined (plan : Pipeliner.plan) =
    let header = Ir.find_block f plan.Pipeliner.header in
    let body = Ir.find_block f plan.Pipeliner.body in
    let cond =
      match header.Ir.term with
      | Ir.Br (c, _, _) -> c
      | Ir.Jmp _ | Ir.Ret _ -> assert false
    in
    Engine.wait (max 0 (plan.Pipeliner.depth - plan.Pipeliner.ii));
    let rec iterate () =
      let t0 = Engine.now_p () in
      stats.block_visits <- stats.block_visits + 1;
      List.iter exec_seq header.Ir.instrs;
      if value cond <> 0 then begin
        stats.block_visits <- stats.block_visits + 1;
        List.iter exec_seq body.Ir.instrs;
        let elapsed = Engine.now_p () - t0 in
        Engine.wait (max 0 (plan.Pipeliner.ii - elapsed));
        stats.fsm_cycles <- stats.fsm_cycles + max plan.Pipeliner.ii elapsed;
        iterate ()
      end
    in
    iterate ();
    plan.Pipeliner.exit
  in
  let plan_for label =
    List.find_opt
      (fun (p : Pipeliner.plan) -> p.Pipeliner.header = label)
      hw.Fsm.plans
  in
  (* One FSM-state event per block entry (a pipelined region counts as
     one state spanning all its iterations), with the measured span. *)
  let observe_block label body =
    match observer with
    | None -> body ()
    | Some (emit : Vmht_obs.Event.emitter) ->
      let t0 = Engine.now_p () in
      let r = body () in
      emit
        ~duration:(Engine.now_p () - t0)
        (Vmht_obs.Event.Fsm_state { block = Printf.sprintf "L%d" label });
      r
  in
  let rec exec_block label =
    match plan_for label with
    | Some plan ->
      exec_block (observe_block label (fun () -> exec_pipelined plan))
    | None ->
      stats.block_visits <- stats.block_visits + 1;
      let b = Hashtbl.find sched_blocks label in
      let steps = compiled_for label b in
      observe_block label (fun () ->
          Array.iter
            (fun (step : Fsm.Trace.step) ->
              match step with
              | Fsm.Trace.Mem ids -> exec_cycle b ids
              | Fsm.Trace.Pure cycles ->
                if fastpath then exec_pure_fused b cycles
                else Array.iter (exec_cycle b) cycles)
            steps);
      let ir_block = Ir.find_block f label in
      (match ir_block.Ir.term with
       | Ir.Jmp l -> exec_block l
       | Ir.Br (c, l1, l2) -> exec_block (if value c <> 0 then l1 else l2)
       | Ir.Ret v -> Option.map value v)
  in
  exec_block (Ir.entry f).Ir.label
