(** Resource-constrained list scheduling of basic blocks.

    Each block is compiled into a static schedule assigning every
    instruction a start cycle.  Dependence edges carry minimum delays
    that encode the datapath's register semantics (reads at cycle
    start, writes at [start + latency]):

    - RAW: consumer starts no earlier than [def_start + latency];
    - WAR: the overwriting instruction starts no earlier than the
      reader (same cycle is fine — the reader sees the old value);
    - WAW: commits must land in program order;
    - memory: loads commute, everything else stays in program order
      (no alias analysis).

    Memory accesses are additionally arbitrated against an explicit
    {!mem_model}: two accesses may share a cycle only when they fit the
    per-bank port budget, where "same bank" is decided by the
    conservative symbolic analysis of {!Bank} — accesses whose
    addresses cannot be proven to live on distinct banks are
    serialized.

    The block's makespan is [max (start + latency)] over its
    instructions; the terminator fires at the makespan. *)

type mem_model = {
  banks : int;  (** word-interleaved banks (>= 1) *)
  ports_per_bank : int;  (** same-cycle accesses one bank can serve *)
  interleave_shift : int;
      (** [bank = (addr >> interleave_shift) mod banks]; 3 = 64-bit
          word interleaving *)
  miss_limit : int;  (** global cap on accesses in flight per cycle *)
}

val flat_mem : int -> mem_model
(** One bank with [ports] ports — the pre-banking model.  A schedule
    under [flat_mem p] is bit-identical to the historical
    [mem_ports = p] scalar. *)

val banked_mem : ?ports_per_bank:int -> ?miss_limit:int -> int -> mem_model
(** [banked_mem banks] — word-interleaved banking; defaults: one port
    per bank, [miss_limit = banks * ports_per_bank].  Raises
    [Invalid_argument] when [banks < 1]. *)

val mem_total_ports : mem_model -> int
(** The model's whole-cycle concurrency cap:
    [min (banks * ports_per_bank) miss_limit].  Also what
    {!resource_limit} answers for [Mem]. *)

type resources = {
  alu : int;
  cmp : int;
  mul : int;
  div : int;
  shift : int;
  mem : mem_model;
}

val default_resources : resources
(** 2 ALUs, 2 comparators, 1 multiplier, 1 divider, 1 shifter, one
    single-ported memory bank. *)

val unlimited_resources : resources

val resource_limit : resources -> Optypes.op_class -> int
(** Per-cycle limit for a class — total over every class: [Mem] is the
    model's {!mem_total_ports} (refined per cycle by bank arbitration),
    [Move] a large max_int-safe bound (moves are wires). *)

(** Conservative static bank analysis: symbolic affine address forms
    over one straight-line block, and the per-cycle admissibility check
    the scheduler, the pipeliner and [validate] all share. *)
module Bank : sig
  type addr
  (** [sum (coeff * opaque symbol) + constant]; live-in registers, load
      results and unanalyzable arithmetic mint fresh symbols *)

  val stable_args : Vmht_ir.Ir.func -> Vmht_ir.Ir.reg list
  (** The function's pointer-capable roots: argument registers never
      redefined anywhere in the function.  Kernel arguments are
      independent buffers (the restrict-style contract every HLS flow
      imposes on top-level pointers), so accesses rooted at two
      different stable arguments never alias. *)

  val addr_forms :
    ?roots:Vmht_ir.Ir.reg list -> Vmht_ir.Ir.instr array -> addr option array
  (** The address form of each instruction ([Some] exactly for
      [Load]/[Store]), read in program order.  [roots] (the function's
      {!stable_args}, default none) tags those live-in registers as
      argument-buffer roots for {!provably_disjoint}. *)

  val provably_disjoint : addr option -> addr option -> bool
  (** True only when the two accesses provably touch different
      addresses — same symbolic part at different constant offsets, or
      rooted in two different argument buffers — whatever the memory
      model.  The alias refinement behind reordering access pairs. *)

  val provably_distinct : mem_model -> addr option -> addr option -> bool
  (** True only when the two accesses provably hit different banks:
      same symbolic part, word-aligned constant delta, delta in words
      not divisible by [banks].  Never true with one bank, and never
      true for statically-unknown addresses. *)

  val cycle_ok : mem_model -> addr option list -> bool
  (** May this access set issue in one cycle?  Each access's conflict
      set (itself plus everything not provably on another bank) must
      fit [ports_per_bank], and the set must fit {!mem_total_ports}. *)
end

type block_schedule = {
  label : Vmht_ir.Ir.label;
  instrs : Vmht_ir.Ir.instr array;
  starts : int array; (** start cycle of [instrs.(i)] *)
  makespan : int; (** cycles the block occupies (>= 1) *)
}

type t = {
  func : Vmht_ir.Ir.func;
  blocks : block_schedule list; (** one per CFG block, in CFG order *)
  resources : resources;
}

val schedule_func : ?resources:resources -> Vmht_ir.Ir.func -> t

val total_states : t -> int
(** Sum of block makespans — the number of FSM states. *)

val max_concurrency : t -> Optypes.op_class -> int
(** Peak number of same-class operations in any single cycle — the
    number of functional units binding must provide. *)

val critical_path_of_block : block_schedule -> int

val dependence_edges :
  ?addrs:Bank.addr option array ->
  Vmht_ir.Ir.instr array ->
  (int * int) list array
(** [edges.(j)] lists [(i, delay)] constraints [start_j >= start_i +
    delay] between instructions of one straight-line sequence (the
    scheduler's own dependence model, exposed for the loop pipeliner).
    With [addrs] (the sequence's {!Bank.addr_forms}), memory-ordering
    edges between provably-disjoint accesses are dropped; callers
    enable this only under a multi-bank model so flat-memory schedules
    stay bit-identical to the pre-banking scheduler. *)

val validate : t -> unit
(** Check every dependence, resource and bank-arbitration constraint of
    the schedule; raises [Failure] on violation.  Used by the property
    tests. *)

val to_string : t -> string
