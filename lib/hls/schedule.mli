(** Resource-constrained list scheduling of basic blocks.

    Each block is compiled into a static schedule assigning every
    instruction a start cycle.  Dependence edges carry minimum delays
    that encode the datapath's register semantics (reads at cycle
    start, writes at [start + latency]):

    - RAW: consumer starts no earlier than [def_start + latency];
    - WAR: the overwriting instruction starts no earlier than the
      reader (same cycle is fine — the reader sees the old value);
    - WAW: commits must land in program order;
    - memory: loads commute with loads, everything else stays in
      program order (no alias analysis).

    The block's makespan is [max (start + latency)] over its
    instructions; the terminator fires at the makespan. *)

type resources = {
  alu : int;
  cmp : int;
  mul : int;
  div : int;
  shift : int;
  mem_ports : int;
}

val default_resources : resources
(** 2 ALUs, 2 comparators, 1 multiplier, 1 divider, 1 shifter, 1 memory
    port. *)

val unlimited_resources : resources

val resource_limit : resources -> Optypes.op_class -> int
(** Limit for a class; [Move] is unconstrained (wires). *)

type block_schedule = {
  label : Vmht_ir.Ir.label;
  instrs : Vmht_ir.Ir.instr array;
  starts : int array; (** start cycle of [instrs.(i)] *)
  makespan : int; (** cycles the block occupies (>= 1) *)
}

type t = {
  func : Vmht_ir.Ir.func;
  blocks : block_schedule list; (** one per CFG block, in CFG order *)
  resources : resources;
}

val schedule_func : ?resources:resources -> Vmht_ir.Ir.func -> t

val total_states : t -> int
(** Sum of block makespans — the number of FSM states. *)

val max_concurrency : t -> Optypes.op_class -> int
(** Peak number of same-class operations in any single cycle — the
    number of functional units binding must provide. *)

val critical_path_of_block : block_schedule -> int

val dependence_edges :
  Vmht_ir.Ir.instr array -> (int * int) list array
(** [edges.(j)] lists [(i, delay)] constraints [start_j >= start_i +
    delay] between instructions of one straight-line sequence (the
    scheduler's own dependence model, exposed for the loop
    pipeliner). *)

val validate : t -> unit
(** Check every dependence and resource constraint of the schedule;
    raises [Failure] on violation.  Used by the property tests. *)

val to_string : t -> string
