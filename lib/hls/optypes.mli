(** Functional-unit classes, latencies and the calibrated area model.

    Latencies are in fabric clock cycles and are the *static* latencies
    the scheduler plans with; memory operations additionally stall the
    finite-state machine dynamically until the interface answers.  Area
    numbers are per bound functional unit for a 64-bit datapath,
    calibrated to be in the range FPGA synthesis reports for such
    operators (see DESIGN.md: the reported quantity is the *relative*
    overhead between wrapper styles, which this model preserves). *)

type op_class = Alu | Cmp | Mul | Div | Shift | Mem | Move

val all_classes : op_class list

val class_name : op_class -> string

val classify : Vmht_ir.Ir.instr -> op_class

val latency : op_class -> int
(** Static latency used for scheduling dependences.  [Mem] returns the
    nominal issue latency (the dynamic stall is added in simulation). *)

type area = { lut : int; ff : int; dsp : int; bram : int }
(** [bram] in 18Kb half-blocks, as vendor tools count them. *)

val zero_area : area

val add_area : area -> area -> area

val scale_area : int -> area -> area

val fu_area : op_class -> area
(** Area of one functional unit of the class. *)

val register_area : int -> area
(** Area of [n] 64-bit datapath registers (FFs plus input muxing). *)

val bank_area : banks:int -> area
(** Arbitration logic of a [banks]-way banked scratchpad (address
    decode, request arbiter, return mux); {!zero_area} for one bank. *)

val fsm_area : states:int -> area
(** Controller area as a function of the state count. *)

val area_to_string : area -> string
