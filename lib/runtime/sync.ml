module Engine = Vmht_sim.Engine

module Mutex = struct
  type t = { mutable held : bool; waiters : (unit -> unit) Queue.t }

  let create () = { held = false; waiters = Queue.create () }

  let lock t =
    if not t.held then t.held <- true
    else Engine.suspend (fun resume -> Queue.add resume t.waiters)
  (* Ownership transfers directly from unlock to the first waiter. *)

  let unlock t =
    if not t.held then invalid_arg "Mutex.unlock: not locked";
    match Queue.take_opt t.waiters with
    | Some resume -> resume ()
    | None -> t.held <- false

  let with_lock t f =
    lock t;
    Fun.protect ~finally:(fun () -> unlock t) f
end

module Condvar = struct
  type t = { waiters : (unit -> unit) Queue.t }

  let create () = { waiters = Queue.create () }

  let wait t mutex =
    (* Release and park atomically: both happen before any other
       process can run, because no wait-point separates them. *)
    let parked = ref None in
    Queue.add (fun () -> match !parked with
        | Some resume -> resume ()
        | None -> assert false)
      t.waiters;
    Mutex.unlock mutex;
    Engine.suspend (fun resume -> parked := Some resume);
    Mutex.lock mutex

  let signal t =
    match Queue.take_opt t.waiters with
    | Some wake -> wake ()
    | None -> ()

  let broadcast t =
    let rec go () =
      match Queue.take_opt t.waiters with
      | Some wake ->
        wake ();
        go ()
      | None -> ()
    in
    go ()
end

module Completion = struct
  type 'a t = {
    mutable value : 'a option;
    mutable waiters : (unit -> unit) list;
  }

  let create () = { value = None; waiters = [] }

  let complete t v =
    if t.value <> None then invalid_arg "Completion.complete: already done";
    t.value <- Some v;
    let waiters = List.rev t.waiters in
    t.waiters <- [];
    List.iter (fun wake -> wake ()) waiters

  let await t =
    match t.value with
    | Some v -> v
    | None ->
      Engine.suspend (fun resume -> t.waiters <- resume :: t.waiters);
      (match t.value with
       | Some v -> v
       | None -> assert false)

  let is_completed t = t.value <> None
end

module Barrier = struct
  type t = {
    parties : int;
    mutable arrived : int;
    mutable waiters : (unit -> unit) list;
  }

  let create ~parties =
    if parties <= 0 then invalid_arg "Barrier.create";
    { parties; arrived = 0; waiters = [] }

  let await t =
    t.arrived <- t.arrived + 1;
    if t.arrived >= t.parties then begin
      let waiters = List.rev t.waiters in
      t.waiters <- [];
      t.arrived <- 0;
      List.iter (fun wake -> wake ()) waiters
    end
    else
      Engine.suspend (fun resume -> t.waiters <- resume :: t.waiters)
end
