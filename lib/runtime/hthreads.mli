(** pthreads-style thread management over the simulation engine.

    A thread is any simulated activity with a joinable result — a
    software thread interpreting IR on the CPU, or a hardware thread
    (an accelerator FSM).  The system-level runtime in [Vmht.Launch]
    spawns both kinds through this interface, which is the paper's
    programming model: moving a thread between software and hardware
    changes how its body executes, not how it is created or joined. *)

type 'a t

val spawn :
  ?obs:Vmht_obs.Event.emitter -> name:string -> (unit -> 'a) -> 'a t
(** Start a thread at the current simulated time (process context).
    [obs], when given, receives a {!Vmht_obs.Event.kind.Thread_spawn}
    event now and a [Thread_join] event when {!join} returns. *)

val spawn_retry :
  ?obs:Vmht_obs.Event.emitter ->
  ?max_attempts:int ->
  name:string ->
  (unit -> 'a) ->
  'a t
(** Like {!spawn}, but when the body dies with an injected
    {!Vmht_fault.Injector.Abort} it is re-entered from the top, up to
    [max_attempts] (default 3) attempts in total; each restart is
    reported as a [Fault_retry] event on [obs].  The last attempt's
    exception propagates through {!join} as usual. *)

val spawn_root :
  ?obs:Vmht_obs.Event.emitter ->
  Vmht_sim.Engine.t ->
  name:string ->
  (unit -> 'a) ->
  'a t
(** Start a thread from outside process context (e.g. before
    [Engine.run]). *)

val join : 'a t -> 'a
(** Park until the thread finishes and return its result.  If the
    thread raised, the exception is re-raised here. *)

val try_join : 'a t -> 'a option
(** Non-blocking: [Some result] if finished. *)

val name : 'a t -> string
