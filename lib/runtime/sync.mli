(** Synchronization primitives for simulated threads.

    These mirror the pthreads primitives the hthreads programming model
    exposes; waiters park on the simulation engine and wake in FIFO
    order.  All operations must run in process context. *)

module Mutex : sig
  type t

  val create : unit -> t

  val lock : t -> unit

  val unlock : t -> unit
  (** Raises [Invalid_argument] if the mutex is not held. *)

  val with_lock : t -> (unit -> 'a) -> 'a
end

module Condvar : sig
  type t

  val create : unit -> t

  val wait : t -> Mutex.t -> unit
  (** Atomically releases the mutex and parks; re-acquires before
      returning. *)

  val signal : t -> unit
  (** Wake one waiter (no-op if none). *)

  val broadcast : t -> unit
end

module Completion : sig
  (** One-shot event carrying a value — the join mechanism. *)

  type 'a t

  val create : unit -> 'a t

  val complete : 'a t -> 'a -> unit
  (** Raises [Invalid_argument] if completed twice. *)

  val await : 'a t -> 'a
  (** Returns immediately if already completed. *)

  val is_completed : 'a t -> bool
end

module Barrier : sig
  type t

  val create : parties:int -> t

  val await : t -> unit
  (** Parks until [parties] processes have arrived, then releases all
      of them and resets for reuse. *)
end
