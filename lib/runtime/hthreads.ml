module Engine = Vmht_sim.Engine

type 'a outcome = Value of 'a | Raised of exn

type 'a t = {
  tname : string;
  completion : 'a outcome Sync.Completion.t;
  obs : Vmht_obs.Event.emitter option;
}

let body completion f () =
  let outcome = match f () with v -> Value v | exception e -> Raised e in
  Sync.Completion.complete completion outcome

let emit t kind = match t.obs with Some f -> f kind | None -> ()

let spawn ?obs ~name f =
  let completion = Sync.Completion.create () in
  let t = { tname = name; completion; obs } in
  emit t (Vmht_obs.Event.Thread_spawn { thread = name });
  Engine.fork ~name (body completion f);
  t

let spawn_root ?obs engine ~name f =
  let completion = Sync.Completion.create () in
  let t = { tname = name; completion; obs } in
  emit t (Vmht_obs.Event.Thread_spawn { thread = name });
  Engine.spawn engine ~name (body completion f);
  t

let join t =
  match Sync.Completion.await t.completion with
  | Value v ->
    emit t (Vmht_obs.Event.Thread_join { thread = t.tname });
    v
  | Raised e -> raise e

let try_join t =
  if Sync.Completion.is_completed t.completion then
    match Sync.Completion.await t.completion with
    | Value v -> Some v
    | Raised e -> raise e
  else None

let name t = t.tname
