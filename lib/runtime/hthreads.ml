module Engine = Vmht_sim.Engine

type 'a outcome = Value of 'a | Raised of exn

type 'a t = {
  tname : string;
  completion : 'a outcome Sync.Completion.t;
  obs : Vmht_obs.Event.emitter option;
}

let body completion f () =
  let outcome = match f () with v -> Value v | exception e -> Raised e in
  Sync.Completion.complete completion outcome

let emit t kind = match t.obs with Some f -> f kind | None -> ()

let spawn ?obs ~name f =
  let completion = Sync.Completion.create () in
  let t = { tname = name; completion; obs } in
  emit t (Vmht_obs.Event.Thread_spawn { thread = name });
  Engine.fork ~name (body completion f);
  t

(* Retry at thread granularity: the body is re-entered from the top on
   every injected abort, which models a runtime that restarts the whole
   hardware thread rather than resuming it mid-flight.  [max_attempts]
   is a backstop — with [Vmht.Launch] bodies the injection budget
   already bounds the abort storm below it. *)
let spawn_retry ?obs ?(max_attempts = 3) ~name f =
  let run () =
    let rec go attempt =
      match f () with
      | v -> v
      | exception Vmht_fault.Injector.Abort { component; fault }
        when attempt < max_attempts ->
        (match (obs : Vmht_obs.Event.emitter option) with
        | Some e ->
          e
            (Vmht_obs.Event.Fault_retry
               { target = component; fault; attempt })
        | None -> ());
        go (attempt + 1)
    in
    go 1
  in
  spawn ?obs ~name run

let spawn_root ?obs engine ~name f =
  let completion = Sync.Completion.create () in
  let t = { tname = name; completion; obs } in
  emit t (Vmht_obs.Event.Thread_spawn { thread = name });
  Engine.spawn engine ~name (body completion f);
  t

let join t =
  match Sync.Completion.await t.completion with
  | Value v ->
    emit t (Vmht_obs.Event.Thread_join { thread = t.tname });
    v
  | Raised e -> raise e

let try_join t =
  if Sync.Completion.is_completed t.completion then
    match Sync.Completion.await t.completion with
    | Value v -> Some v
    | Raised e -> raise e
  else None

let name t = t.tname
