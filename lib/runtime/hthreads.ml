module Engine = Vmht_sim.Engine

type 'a outcome = Value of 'a | Raised of exn

type 'a t = { tname : string; completion : 'a outcome Sync.Completion.t }

let body completion f () =
  let outcome = match f () with v -> Value v | exception e -> Raised e in
  Sync.Completion.complete completion outcome

let spawn ~name f =
  let completion = Sync.Completion.create () in
  Engine.fork ~name (body completion f);
  { tname = name; completion }

let spawn_root engine ~name f =
  let completion = Sync.Completion.create () in
  Engine.spawn engine ~name (body completion f);
  { tname = name; completion }

let join t =
  match Sync.Completion.await t.completion with
  | Value v -> v
  | Raised e -> raise e

let try_join t =
  if Sync.Completion.is_completed t.completion then
    match Sync.Completion.await t.completion with
    | Value v -> Some v
    | Raised e -> raise e
  else None

let name t = t.tname
