(** Cycle costs of the simulated in-order scalar CPU.

    The CPU shares the fabric clock with the accelerators (as on a
    Zynq-class SoC after normalizing clock ratios into per-instruction
    costs).  Loads/stores pay the issue cost here plus the timed cache
    access. *)

type t = {
  alu : int;
  cmp : int;
  mul : int;
  div : int;
  shift : int;
  mov : int;
  branch : int; (** per conditional branch (mispredict amortized) *)
  mem_issue : int; (** address-generation/issue cost of a load/store *)
  fault_penalty : int; (** demand-page fault handling on the CPU *)
}

val default : t

val instr_cycles : t -> Vmht_ir.Ir.instr -> int
(** Cost of one instruction, memory access time excluded. *)
