module Ir = Vmht_ir.Ir
module Ast = Vmht_lang.Ast

type t = {
  alu : int;
  cmp : int;
  mul : int;
  div : int;
  shift : int;
  mov : int;
  branch : int;
  mem_issue : int;
  fault_penalty : int;
}

let default =
  {
    alu = 1;
    cmp = 1;
    mul = 3;
    div = 20;
    shift = 1;
    mov = 1;
    branch = 2;
    mem_issue = 1;
    fault_penalty = 3000;
  }

let binop_cycles t = function
  | Ast.Add | Ast.Sub | Ast.And | Ast.Or | Ast.Xor | Ast.Land | Ast.Lor ->
    t.alu
  | Ast.Mul -> t.mul
  | Ast.Div | Ast.Rem -> t.div
  | Ast.Shl | Ast.Shr -> t.shift
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne -> t.cmp

let instr_cycles t = function
  | Ir.Bin (op, _, _, _) -> binop_cycles t op
  | Ir.Un _ -> t.alu
  | Ir.Mov _ -> t.mov
  | Ir.Load _ | Ir.Store _ -> t.mem_issue
