(** The simulated host CPU.

    Executes compiled IR (software threads run the same code the HLS
    flow consumes) with per-instruction cycle costs, loads and stores
    through a private L1 cache, untimed address translation (the CPU's
    own MMU is assumed warm; its demand-page faults still pay the
    handler penalty), and demand paging against the shared address
    space. *)

type stats = {
  instructions : int;
  branches : int;
  mem_accesses : int;
  faults : int;
}

type t

val create :
  ?cost:Cost_model.t ->
  ?cache_config:Vmht_mem.Cache.config ->
  Vmht_mem.Bus.t ->
  Vmht_vm.Addr_space.t ->
  t

val run_func : t -> Vmht_ir.Ir.func -> args:int list -> int option
(** Timed execution in process context.  Raises
    {!Vmht_vm.Addr_space.Segfault} on an unrepairable access. *)

val flush_cache : t -> unit
(** Timed: write all dirty L1 lines back (performed after a software
    thread finishes, so other masters observe its results). *)

val invalidate_cache : t -> unit
(** Timed cache maintenance: flush, then discard all lines (performed
    when joining a hardware thread so the CPU observes its writes). *)

val cache : t -> Vmht_mem.Cache.t

val stats : t -> stats
