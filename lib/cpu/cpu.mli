(** The simulated host CPU.

    Executes compiled IR (software threads run the same code the HLS
    flow consumes) with per-instruction cycle costs, loads and stores
    through a private L1 cache, untimed address translation (the CPU's
    own MMU is assumed warm; its demand-page faults still pay the
    handler penalty), and demand paging against the shared address
    space. *)

type stats = {
  instructions : int;
  branches : int;
  mem_accesses : int;
  faults : int;
  mem_cycles : int;
      (** cycles spent in loads/stores: translation, fault handling,
          cache and bus time (the CPU runs as one process, so spans
          never overlap and the sum is exact) *)
}

type t

val create :
  ?cost:Cost_model.t ->
  ?cache_config:Vmht_mem.Cache.config ->
  Vmht_mem.Bus.t ->
  Vmht_vm.Addr_space.t ->
  t

val run_func : t -> Vmht_ir.Ir.func -> args:int list -> int option
(** Timed execution in process context.  Raises
    {!Vmht_vm.Addr_space.Segfault} on an unrepairable access. *)

val flush_cache : t -> unit
(** Timed: write all dirty L1 lines back (performed after a software
    thread finishes, so other masters observe its results). *)

val invalidate_cache : t -> unit
(** Timed cache maintenance: flush, then discard all lines (performed
    when joining a hardware thread so the CPU observes its writes). *)

val cache : t -> Vmht_mem.Cache.t

val set_observer : t -> Vmht_obs.Event.emitter -> unit
(** Observer for the CPU's demand-page faults
    ({!Vmht_obs.Event.kind.Page_fault} with [asid = 0], duration = the
    handler penalty).  Cache events come from the L1 itself via
    {!Vmht_mem.Cache.set_observer} on {!cache}. *)

val fault_penalty : t -> int
(** The configured demand-page fault handler cost, in cycles. *)

val stats : t -> stats
