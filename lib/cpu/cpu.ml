module Engine = Vmht_sim.Engine
module Cache = Vmht_mem.Cache
module Addr_space = Vmht_vm.Addr_space
module Ir = Vmht_ir.Ir
module Ir_interp = Vmht_ir.Ir_interp
module Ast_interp = Vmht_lang.Ast_interp

type stats = {
  instructions : int;
  branches : int;
  mem_accesses : int;
  faults : int;
  mem_cycles : int;
}

type t = {
  cost : Cost_model.t;
  cache : Cache.t;
  aspace : Addr_space.t;
  mutable instructions : int;
  mutable branches : int;
  mutable mem_accesses : int;
  mutable faults : int;
  mutable mem_cycles : int;
  mutable observer : Vmht_obs.Event.emitter option;
}

let create ?(cost = Cost_model.default) ?cache_config bus aspace =
  {
    cost;
    cache = Cache.create ?config:cache_config bus;
    aspace;
    instructions = 0;
    branches = 0;
    mem_accesses = 0;
    faults = 0;
    mem_cycles = 0;
    observer = None;
  }

let set_observer t f = t.observer <- Some f

let fault_penalty t = t.cost.Cost_model.fault_penalty

(* Resolve a virtual address, paying the fault penalty when demand
   paging has to install the page. *)
let resolve t vaddr =
  match Addr_space.translate t.aspace vaddr with
  | Some paddr -> paddr
  | None ->
    t.faults <- t.faults + 1;
    Engine.wait t.cost.Cost_model.fault_penalty;
    (match t.observer with
    | Some f ->
      f ~duration:t.cost.Cost_model.fault_penalty
        (Vmht_obs.Event.Page_fault { vaddr; asid = 0 })
    | None -> ());
    if Addr_space.handle_fault t.aspace ~vaddr then
      match Addr_space.translate t.aspace vaddr with
      | Some paddr -> paddr
      | None -> raise (Addr_space.Segfault vaddr)
    else raise (Addr_space.Segfault vaddr)

let run_func t (f : Ir.func) ~args =
  (* The CPU is a single simulation process, so load/store spans never
     overlap and summing them attributes memory time exactly. *)
  let timed g =
    let t0 = Engine.now_p () in
    let v = g () in
    t.mem_cycles <- t.mem_cycles + (Engine.now_p () - t0);
    v
  in
  let memory =
    {
      Ast_interp.load =
        (fun vaddr ->
          t.mem_accesses <- t.mem_accesses + 1;
          timed (fun () ->
              let phys = resolve t vaddr in
              Cache.read t.cache ~addr:vaddr ~phys));
      Ast_interp.store =
        (fun vaddr value ->
          t.mem_accesses <- t.mem_accesses + 1;
          timed (fun () ->
              let phys = resolve t vaddr in
              Cache.write t.cache ~addr:vaddr ~phys value));
    }
  in
  let hooks =
    {
      Ir_interp.no_hooks with
      Ir_interp.on_instr =
        (fun instr ->
          t.instructions <- t.instructions + 1;
          Engine.wait (Cost_model.instr_cycles t.cost instr));
      Ir_interp.on_branch =
        (fun ~taken:_ ->
          t.branches <- t.branches + 1;
          Engine.wait t.cost.Cost_model.branch);
    }
  in
  Ir_interp.run ~hooks memory f ~args

let flush_cache t =
  (* Sweep cost plus the (timed) write-back of every dirty line. *)
  Engine.wait 64;
  Cache.flush t.cache

let invalidate_cache t =
  flush_cache t;
  Cache.invalidate_all t.cache

let cache t = t.cache

let stats (t : t) : stats =
  {
    instructions = t.instructions;
    branches = t.branches;
    mem_accesses = t.mem_accesses;
    faults = t.faults;
    mem_cycles = t.mem_cycles;
  }
