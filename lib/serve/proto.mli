(** Batch-server wire protocol: jobs, requests, replies, and the
    length-prefixed [Marshal] framing the server and its forked workers
    speak over pipes.

    Everything on the wire is plain data (ASTs, configs, strings, ints
    — no closures, no custom blocks), so [Marshal] round-trips it
    byte-exactly between processes built from the same binary.
    Outcomes deliberately carry no wall-clock fields: a reply must be
    byte-identical whichever worker (or how many) produced it, which is
    what makes the server's output reproducible at any shard width. *)

type mode = Sw | Vm | Dma

val mode_name : mode -> string

val mode_of_name : string -> mode option

type job =
  | Synthesize of {
      kernel : Vmht_lang.Ast.kernel;
      style : Vmht.Wrapper.style;
      config : Vmht.Config.t;
    }  (** synthesize one hardware thread; content-addressed *)
  | Execute of {
      workload : string;  (** registry name; resolved by the handler *)
      mode : mode;
      size : int;
      config : Vmht.Config.t;
    }  (** run one workload on a fresh simulated SoC *)

val synthesis_key : job -> string option
(** {!Vmht.Flow.cache_key} for [Synthesize] jobs — the dedup and
    store-hit-accounting identity.  [None] for [Execute] (its inner
    synthesis still benefits from the store, but the server cannot
    name the kernel without the workload registry). *)

type request = {
  rid : int;  (** caller-assigned; replies are ordered by it *)
  attempt : int;  (** 1 on first dispatch; bumped on worker-death retry *)
  deadline_ms : int option;
      (** budget from batch submission; expired requests fail without
          dispatch.  [None] (the default) never expires. *)
  job : job;
}

type outcome =
  | Synthesized of {
      kname : string;
      states : int;
      total_area : Vmht_hls.Optypes.area;
      verilog_bytes : int;
    }
  | Executed of { cycles : int; correct : bool; ret : int option }
  | Failed of string

type reply = { rid : int; outcome : outcome }

val outcome_to_string : outcome -> string
(** One deterministic line (no timing). *)

(** {2 Framing}

    [u64-le length][Marshal payload] on raw file descriptors — no
    channel buffering, so [Unix.select] on the descriptor is an exact
    "a message may be read" signal in the server's event loop. *)

val write_msg : Unix.file_descr -> 'a -> unit
(** Raises [Unix.Unix_error] (e.g. [EPIPE] once SIGPIPE is ignored)
    when the peer is gone — the server turns that into worker-death
    handling. *)

val read_msg : Unix.file_descr -> 'a option
(** Blocking read of one message; [None] on EOF, including EOF in the
    middle of a frame (a worker that died mid-write). *)
