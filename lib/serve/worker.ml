module Flow = Vmht.Flow

let synthesized_outcome (hw : Flow.hw_thread) =
  Proto.Synthesized
    {
      kname = hw.Flow.kernel.Vmht_lang.Ast.kname;
      states = hw.Flow.fsm.Vmht_hls.Fsm.stats.Vmht_hls.Fsm.states;
      total_area = hw.Flow.total_area;
      verilog_bytes = String.length hw.Flow.verilog;
    }

let default_handle (req : Proto.request) =
  match req.Proto.job with
  | Proto.Synthesize { kernel; style; config } -> (
    match Flow.run (Flow.Request.of_kernel ~config ~style kernel) with
    | Ok hw -> synthesized_outcome hw
    | Error e -> Proto.Failed (Flow.error_to_string e))
  | Proto.Execute { workload; _ } ->
    Proto.Failed
      (Printf.sprintf
         "no execute handler for workload %S (server started without one)"
         workload)

let loop ~handle ~in_fd ~out_fd =
  let running = ref true in
  while !running do
    match Proto.read_msg in_fd with
    | None -> running := false
    | Some (req : Proto.request) -> (
      let outcome =
        try handle req
        with e -> Proto.Failed (Printexc.to_string e)
      in
      match Proto.write_msg out_fd { Proto.rid = req.Proto.rid; outcome } with
      | () -> ()
      | exception Unix.Unix_error (Unix.EPIPE, _, _) ->
        (* Server is gone; nothing left to serve. *)
        running := false)
  done
