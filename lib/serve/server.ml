module Histogram = Vmht_obs.Histogram

type worker = {
  mutable pid : int;
  mutable to_w : Unix.file_descr;  (* requests out *)
  mutable from_w : Unix.file_descr;  (* replies in *)
  pending : Proto.request Queue.t;
  inflight : (Proto.request * float) Queue.t;  (* dispatch order *)
}

type t = {
  n_shards : int;
  max_attempts : int;
  window : int;
  store : Store.t option;
  handle : Proto.request -> Proto.outcome;
  workers : worker array;  (* empty when [n_shards = 0] *)
  seen : (string, unit) Hashtbl.t;  (* synthesis keys this server met *)
  mutable submitted : int;
  mutable completed : int;
  mutable failed : int;
  mutable expired : int;
  mutable retried : int;
  mutable deduped : int;
  mutable key_hits : int;
  mutable key_misses : int;
  latency_us : Histogram.t;
  latency_mutex : Mutex.t;  (* in-process path observes from pool domains *)
  mutable alive : bool;
}

type stats = {
  submitted : int;
  completed : int;
  failed : int;
  expired : int;
  retried : int;
  deduped : int;
  key_hits : int;
  key_misses : int;
  latency : Histogram.summary;
}

let now = Unix.gettimeofday

(* [fleet] is every worker record of the server: the child must close
   its copies of the *other* live workers' pipe ends, or the parent
   closing a request pipe would never read as EOF in its worker (a
   sibling forked later still holds the write end) and both shutdown
   and death detection would hang. *)
let spawn ~handle ~fleet (w : worker) =
  let req_r, req_w = Unix.pipe () in
  let rep_r, rep_w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    (* Child: serve until the parent closes the request pipe.  Exit
       with [_exit] so the parent's at_exit machinery (and its
       buffered channels, duplicated by fork) never runs here. *)
    Unix.close req_w;
    Unix.close rep_r;
    Array.iter
      (fun (other : worker) ->
        if other != w && other.pid >= 0 then begin
          (try Unix.close other.to_w with Unix.Unix_error _ -> ());
          try Unix.close other.from_w with Unix.Unix_error _ -> ()
        end)
      fleet;
    (try Worker.loop ~handle ~in_fd:req_r ~out_fd:rep_w with _ -> ());
    Unix._exit 0
  | pid ->
    Unix.close req_r;
    Unix.close rep_w;
    w.pid <- pid;
    w.to_w <- req_w;
    w.from_w <- rep_r

let create ?(shards = 0) ?(max_attempts = 3) ?(window = 8) ?store ~handle () =
  let shards = max 0 shards in
  if shards > 0 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let workers =
    Array.init shards (fun _ ->
        {
          pid = -1;
          to_w = Unix.stdin;
          from_w = Unix.stdin;
          pending = Queue.create ();
          inflight = Queue.create ();
        })
  in
  Array.iter (fun w -> spawn ~handle ~fleet:workers w) workers;
  {
    n_shards = shards;
    max_attempts = max 1 max_attempts;
    window = max 1 window;
    store;
    handle;
    workers;
    seen = Hashtbl.create 256;
    submitted = 0;
    completed = 0;
    failed = 0;
    expired = 0;
    retried = 0;
    deduped = 0;
    key_hits = 0;
    key_misses = 0;
    latency_us = Histogram.create ();
    latency_mutex = Mutex.create ();
    alive = true;
  }

let shards t = t.n_shards

let observe_latency t seconds =
  Mutex.lock t.latency_mutex;
  Histogram.observe t.latency_us (int_of_float (seconds *. 1e6));
  Mutex.unlock t.latency_mutex

(* Deterministic, process-independent hit accounting: a synthesis
   request is a hit iff its key is already on disk or was seen earlier
   by this server (same batch or a previous one) — exactly the
   requests the store or memo answers without synthesizing. *)
let account t (req : Proto.request) =
  match Proto.synthesis_key req.Proto.job with
  | None -> ()
  | Some key ->
    let hit =
      Hashtbl.mem t.seen key
      ||
      match t.store with
      | Some s -> Store.contains s ~key
      | None -> false
    in
    if hit then t.key_hits <- t.key_hits + 1
    else t.key_misses <- t.key_misses + 1;
    Hashtbl.replace t.seen key ()

let expired_outcome (req : Proto.request) =
  Proto.Failed
    (Printf.sprintf "deadline of %d ms exceeded before dispatch"
       (Option.value req.Proto.deadline_ms ~default:0))

let is_expired ~batch_t0 (req : Proto.request) =
  match req.Proto.deadline_ms with
  | None -> false
  | Some d -> (now () -. batch_t0) *. 1000. > float_of_int d

let count_outcome (t : t) = function
  | Proto.Failed _ -> t.failed <- t.failed + 1
  | Proto.Synthesized _ | Proto.Executed _ -> t.completed <- t.completed + 1

(* --- in-process substrate ------------------------------------------ *)

let run_inprocess t ~batch_t0 (reqs : Proto.request list) =
  let replies =
    Vmht_par.Parmap.map
      (fun (req : Proto.request) ->
        if is_expired ~batch_t0 req then
          { Proto.rid = req.Proto.rid; outcome = expired_outcome req }
        else begin
          let t0 = now () in
          let outcome =
            try t.handle req with e -> Proto.Failed (Printexc.to_string e)
          in
          observe_latency t (now () -. t0);
          { Proto.rid = req.Proto.rid; outcome }
        end)
      reqs
  in
  List.iter2
    (fun (req : Proto.request) (r : Proto.reply) ->
      if is_expired ~batch_t0 req && r.Proto.outcome = expired_outcome req then
        t.expired <- t.expired + 1;
      count_outcome t r.Proto.outcome)
    reqs replies;
  replies

(* --- sharded substrate --------------------------------------------- *)

let shard_of t (req : Proto.request) =
  let h =
    match Proto.synthesis_key req.Proto.job with
    | Some key -> Hashtbl.hash key
    | None -> Hashtbl.hash req.Proto.rid
  in
  h mod t.n_shards

(* Remove the in-flight record matching [rid] (workers reply in FIFO
   order, so it is almost always the head). *)
let take_inflight (w : worker) rid =
  let items = List.of_seq (Queue.to_seq w.inflight) in
  Queue.clear w.inflight;
  let found = ref None in
  List.iter
    (fun (((req : Proto.request), _) as item) ->
      if Option.is_none !found && req.Proto.rid = rid then found := Some item
      else Queue.add item w.inflight)
    items;
  !found

let run_sharded t ~batch_t0 (reqs : Proto.request list) =
  let expected = List.length reqs in
  let replies : (int, Proto.reply) Hashtbl.t = Hashtbl.create expected in
  let finished = ref 0 in
  (* In-batch dedup: duplicate-key synthesis requests ride on the first
     occurrence (the leader); each gets a clone of its reply. *)
  let followers : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let leader_of_key : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let leaders =
    List.filter
      (fun (req : Proto.request) ->
        match Proto.synthesis_key req.Proto.job with
        | None -> true
        | Some key -> (
          match Hashtbl.find_opt leader_of_key key with
          | None ->
            Hashtbl.add leader_of_key key req.Proto.rid;
            true
          | Some leader ->
            Hashtbl.replace followers leader
              (req.Proto.rid
              :: Option.value (Hashtbl.find_opt followers leader) ~default:[]);
            false))
      reqs
  in
  let emit rid outcome =
    if not (Hashtbl.mem replies rid) then begin
      Hashtbl.replace replies rid { Proto.rid; outcome };
      count_outcome t outcome;
      incr finished
    end
  in
  let emit_with_followers rid outcome =
    emit rid outcome;
    List.iter
      (fun f ->
        t.deduped <- t.deduped + 1;
        emit f outcome)
      (Option.value (Hashtbl.find_opt followers rid) ~default:[])
  in
  List.iter
    (fun (req : Proto.request) ->
      Queue.add req t.workers.(shard_of t req).pending)
    leaders;
  let handle_death (w : worker) =
    (try Unix.close w.to_w with Unix.Unix_error _ -> ());
    (try Unix.close w.from_w with Unix.Unix_error _ -> ());
    (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
    (* Retry what the dead worker held, oldest first, ahead of the
       backlog.  The worker processes its window in FIFO order, so the
       head of [inflight] is the request it died on: only that one is
       charged an attempt (and failed once it has had [max_attempts]);
       the rest were innocent bystanders and requeue unpenalized. *)
    let held = List.of_seq (Queue.to_seq w.inflight) in
    Queue.clear w.inflight;
    let backlog = List.of_seq (Queue.to_seq w.pending) in
    Queue.clear w.pending;
    List.iteri
      (fun i ((req : Proto.request), _) ->
        if i > 0 then Queue.add req w.pending
        else if req.Proto.attempt >= t.max_attempts then
          emit_with_followers req.Proto.rid
            (Proto.Failed
               (Printf.sprintf "worker died (%d attempts)" req.Proto.attempt))
        else begin
          t.retried <- t.retried + 1;
          Queue.add { req with Proto.attempt = req.Proto.attempt + 1 } w.pending
        end)
      held;
    List.iter (fun r -> Queue.add r w.pending) backlog;
    spawn ~handle:t.handle ~fleet:t.workers w
  in
  while !finished < expected do
    (* Fill every worker's window. *)
    Array.iter
      (fun (w : worker) ->
        let filling = ref true in
        while
          !filling
          && Queue.length w.inflight < t.window
          && not (Queue.is_empty w.pending)
        do
          let req = Queue.pop w.pending in
          if Hashtbl.mem replies req.Proto.rid then ()
          else if is_expired ~batch_t0 req then begin
            t.expired <- t.expired + 1;
            emit_with_followers req.Proto.rid (expired_outcome req)
          end
          else
            match Proto.write_msg w.to_w req with
            | () -> Queue.add (req, now ()) w.inflight
            | exception Unix.Unix_error _ ->
              (* Dead on arrival: park it in-flight so the death
                 handler routes it through the retry policy. *)
              Queue.add (req, now ()) w.inflight;
              filling := false;
              handle_death w
        done)
      t.workers;
    if !finished < expected then begin
      let waiting =
        Array.to_list t.workers
        |> List.filter (fun w -> not (Queue.is_empty w.inflight))
      in
      match waiting with
      | [] -> ()  (* everything emitted during fill (expired/failed) *)
      | _ -> (
        let fds = List.map (fun w -> w.from_w) waiting in
        match Unix.select fds [] [] 1.0 with
        | readable, _, _ ->
          List.iter
            (fun fd ->
              let w = List.find (fun w -> w.from_w == fd) waiting in
              match Proto.read_msg w.from_w with
              | Some (reply : Proto.reply) -> (
                match take_inflight w reply.Proto.rid with
                | Some (_, t0) ->
                  observe_latency t (now () -. t0);
                  emit_with_followers reply.Proto.rid reply.Proto.outcome
                | None ->
                  (* Reply to a request we no longer track (e.g. it
                     already failed through the retry path); drop. *)
                  ())
              | None -> handle_death w)
            readable
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    end
  done;
  List.map (fun (req : Proto.request) -> Hashtbl.find replies req.Proto.rid) reqs

(* ------------------------------------------------------------------ *)

let run_batch (t : t) (reqs : Proto.request list) =
  let reqs =
    List.sort
      (fun (a : Proto.request) b -> compare a.Proto.rid b.Proto.rid)
      reqs
  in
  let batch_t0 = now () in
  t.submitted <- t.submitted + List.length reqs;
  List.iter (account t) reqs;
  if t.n_shards = 0 then run_inprocess t ~batch_t0 reqs
  else run_sharded t ~batch_t0 reqs

let stats t =
  Mutex.lock t.latency_mutex;
  let latency = Histogram.summary t.latency_us in
  Mutex.unlock t.latency_mutex;
  {
    submitted = t.submitted;
    completed = t.completed;
    failed = t.failed;
    expired = t.expired;
    retried = t.retried;
    deduped = t.deduped;
    key_hits = t.key_hits;
    key_misses = t.key_misses;
    latency;
  }

let hit_rate (t : t) =
  let keyed = t.key_hits + t.key_misses in
  if keyed = 0 then 0. else float_of_int t.key_hits /. float_of_int keyed

let shutdown t =
  if t.alive then begin
    t.alive <- false;
    (* Close every request pipe before reaping: each close is that
       pipe's last write end, so every worker sees EOF and exits. *)
    Array.iter
      (fun (w : worker) ->
        try Unix.close w.to_w with Unix.Unix_error _ -> ())
      t.workers;
    Array.iter
      (fun (w : worker) ->
        (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
        try Unix.close w.from_w with Unix.Unix_error _ -> ())
      t.workers
  end
