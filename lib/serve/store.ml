module Flow = Vmht.Flow

let format_version = "vmht-store/1"

type t = {
  dir : string;
  hits : int Atomic.t;
  misses : int Atomic.t;
  saves : int Atomic.t;
  corrupt : int Atomic.t;
  version_skew : int Atomic.t;
}

type stats = {
  hits : int;
  misses : int;
  saves : int;
  corrupt : int;
  version_skew : int;
}

let default_dir () =
  match Sys.getenv_opt "VMHT_STORE_DIR" with
  | Some d when d <> "" -> d
  | _ -> (
    match Sys.getenv_opt "XDG_CACHE_HOME" with
    | Some c when c <> "" -> Filename.concat c (Filename.concat "vmht" "store")
    | _ -> (
      match Sys.getenv_opt "HOME" with
      | Some h when h <> "" ->
        Filename.concat h (Filename.concat ".cache" (Filename.concat "vmht" "store"))
      | _ -> "_vmht_store"))

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let unwritable path msg =
  Error (Flow.Store_error { path; fault = Flow.Store_unwritable msg })

let open_ ?dir () =
  let dir = match dir with Some d -> d | None -> default_dir () in
  match
    mkdir_p dir;
    (* Probe writability now so the CLI can fail with a clean exit code
       instead of erroring on the first save deep inside a batch. *)
    let probe =
      Filename.concat dir (Printf.sprintf ".probe.%d" (Unix.getpid ()))
    in
    let oc = open_out_bin probe in
    close_out oc;
    Sys.remove probe
  with
  | () ->
    Ok
      {
        dir;
        hits = Atomic.make 0;
        misses = Atomic.make 0;
        saves = Atomic.make 0;
        corrupt = Atomic.make 0;
        version_skew = Atomic.make 0;
      }
  | exception Sys_error msg -> unwritable dir msg
  | exception Unix.Unix_error (e, fn, arg) ->
    unwritable dir (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e))

let dir t = t.dir

let path t ~key = Filename.concat t.dir key

let contains t ~key = Sys.file_exists (path t ~key)

(* --- entry codec ---------------------------------------------------

   version line \n payload-digest line \n marshalled (kernel, hw).
   The digest is checked before [Marshal.from_string] ever runs, so a
   damaged payload cannot crash the unmarshaller. *)

let encode_entry kernel (hw : Flow.hw_thread) =
  let payload = Marshal.to_string (kernel, hw) [] in
  String.concat "\n"
    [ format_version; Digest.to_hex (Digest.string payload); payload ]

let decode_entry s =
  let corrupt msg = Error (Flow.Store_corrupt msg) in
  match String.index_opt s '\n' with
  | None -> corrupt "no version line"
  | Some nl1 -> (
    let version = String.sub s 0 nl1 in
    if version <> format_version then Error (Flow.Store_version_mismatch version)
    else
      match String.index_from_opt s (nl1 + 1) '\n' with
      | None -> corrupt "no digest line"
      | Some nl2 -> (
        let digest = String.sub s (nl1 + 1) (nl2 - nl1 - 1) in
        let payload = String.sub s (nl2 + 1) (String.length s - nl2 - 1) in
        if Digest.to_hex (Digest.string payload) <> digest then
          corrupt "payload checksum mismatch"
        else
          match
            (Marshal.from_string payload 0
              : Vmht_lang.Ast.kernel * Flow.hw_thread)
          with
          | entry -> Ok entry
          | exception _ -> corrupt "unmarshal failure"))

(* ------------------------------------------------------------------ *)

let read_file path =
  match open_in_bin path with
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | s -> Some s
        | exception End_of_file -> Some "" (* truncated to nothing *))
  | exception Sys_error _ -> None

let load t ~key kernel =
  let file = path t ~key in
  match read_file file with
  | None ->
    Atomic.incr t.misses;
    None
  | Some raw -> (
    let drop counter =
      Atomic.incr counter;
      (try Sys.remove file with Sys_error _ -> ());
      None
    in
    match decode_entry raw with
    | Error (Flow.Store_version_mismatch _) -> drop t.version_skew
    | Error _ -> drop t.corrupt
    | Ok (k, hw) ->
      if k = kernel then begin
        Atomic.incr t.hits;
        Some hw
      end
      else
        (* A key collision between different kernels: treat the entry
           as foreign and re-synthesize. *)
        drop t.misses)

let save t ~key kernel hw =
  let file = path t ~key in
  let tmp =
    Filename.concat t.dir (Printf.sprintf ".%s.tmp.%d" key (Unix.getpid ()))
  in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (encode_entry kernel hw));
    Unix.rename tmp file
  with
  | () ->
    Atomic.incr t.saves;
    Ok ()
  | exception Sys_error msg ->
    (try Sys.remove tmp with Sys_error _ -> ());
    unwritable file msg
  | exception Unix.Unix_error (e, fn, arg) ->
    (try Sys.remove tmp with Sys_error _ -> ());
    unwritable file
      (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e))

let backend t =
  {
    Flow.store_load = (fun ~key kernel -> load t ~key kernel);
    store_save = (fun ~key kernel hw -> save t ~key kernel hw);
  }

let install t = Flow.set_store (Some (backend t))

let stats (t : t) =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    saves = Atomic.get t.saves;
    corrupt = Atomic.get t.corrupt;
    version_skew = Atomic.get t.version_skew;
  }

let hit_rate t =
  let s = stats t in
  let probes = s.hits + s.misses + s.corrupt + s.version_skew in
  if probes = 0 then 0. else float_of_int s.hits /. float_of_int probes

let reset_stats (t : t) =
  Atomic.set t.hits 0;
  Atomic.set t.misses 0;
  Atomic.set t.saves 0;
  Atomic.set t.corrupt 0;
  Atomic.set t.version_skew 0
