(** Persistent content-addressed synthesis store.

    One synthesized {!Vmht.Flow.hw_thread} per file, under the key
    {!Vmht.Flow.cache_key} (full config fingerprint x wrapper style x
    structural kernel hash), so a result computed by any process on
    this machine is a disk read for every later one.  Entries are
    written atomically (temp file + [rename]) and carry a format
    version and a payload checksum; a mismatched, truncated or
    otherwise corrupt entry is silently dropped and counted — loads
    never raise, the worst case is a re-synthesis.

    The store plugs into the flow's single-flight memo through
    {!install}: on a memo miss the flow consults the store first and
    promotes a disk hit into memory, and every fresh synthesis is
    written through. *)

type t

val format_version : string
(** First line of every entry ([vmht-store/1]); bump on any layout
    change so old caches read as version-mismatch misses, not
    corruption. *)

val default_dir : unit -> string
(** [$VMHT_STORE_DIR], else [$XDG_CACHE_HOME/vmht/store], else
    [$HOME/.cache/vmht/store], else [_vmht_store] in the cwd. *)

val open_ : ?dir:string -> unit -> (t, Vmht.Flow.error) result
(** Create [dir] (and parents) if needed and probe writability.
    [Error (Store_error { fault = Store_unwritable _; _ })] if the
    directory cannot be created or written. *)

val dir : t -> string

val path : t -> key:string -> string
(** The entry file an eventual [save ~key] would write. *)

val contains : t -> key:string -> bool
(** Entry file exists (no decode — used for hit accounting and batch
    dedup, where a later corrupt load only costs a re-synthesis). *)

val load :
  t -> key:string -> Vmht_lang.Ast.kernel -> Vmht.Flow.hw_thread option
(** [None] on a missing, version-mismatched or corrupt entry (counted
    separately in {!stats}); never raises. *)

val save :
  t ->
  key:string ->
  Vmht_lang.Ast.kernel ->
  Vmht.Flow.hw_thread ->
  (unit, Vmht.Flow.error) result
(** Atomic write-through; concurrent savers of the same key race
    benignly (last rename wins, both wrote identical bytes). *)

val backend : t -> Vmht.Flow.store_backend

val install : t -> unit
(** [Vmht.Flow.set_store (Some (backend t))]. *)

(** {2 Entry codec} (exposed for the round-trip and corruption tests) *)

val encode_entry : Vmht_lang.Ast.kernel -> Vmht.Flow.hw_thread -> string

val decode_entry :
  string ->
  (Vmht_lang.Ast.kernel * Vmht.Flow.hw_thread, Vmht.Flow.store_fault) result
(** Total: every byte string decodes to [Ok] or a typed fault.  The
    payload checksum is verified {e before} unmarshalling, so a
    truncated or bit-flipped entry is a clean [Store_corrupt], not
    undefined behaviour inside [Marshal]. *)

(** {2 Counters} *)

type stats = {
  hits : int;
  misses : int;  (** absent entries and kernel-collision rejects *)
  saves : int;
  corrupt : int;  (** checksum / truncation / unmarshal failures *)
  version_skew : int;  (** entries from another {!format_version} *)
}

val stats : t -> stats

val hit_rate : t -> float
(** [hits / (hits + misses + corrupt + version_skew)]; [0.] when the
    store was never probed. *)

val reset_stats : t -> unit
