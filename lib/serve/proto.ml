type mode = Sw | Vm | Dma

let mode_name = function Sw -> "sw" | Vm -> "vm" | Dma -> "dma"

let mode_of_name = function
  | "sw" -> Some Sw
  | "vm" -> Some Vm
  | "dma" -> Some Dma
  | _ -> None

type job =
  | Synthesize of {
      kernel : Vmht_lang.Ast.kernel;
      style : Vmht.Wrapper.style;
      config : Vmht.Config.t;
    }
  | Execute of {
      workload : string;
      mode : mode;
      size : int;
      config : Vmht.Config.t;
    }

let synthesis_key = function
  | Synthesize { kernel; style; config } ->
    Some (Vmht.Flow.cache_key config style kernel)
  | Execute _ -> None

type request = {
  rid : int;
  attempt : int;
  deadline_ms : int option;
  job : job;
}

type outcome =
  | Synthesized of {
      kname : string;
      states : int;
      total_area : Vmht_hls.Optypes.area;
      verilog_bytes : int;
    }
  | Executed of { cycles : int; correct : bool; ret : int option }
  | Failed of string

type reply = { rid : int; outcome : outcome }

let outcome_to_string = function
  | Synthesized { kname; states; total_area = a; verilog_bytes } ->
    Printf.sprintf
      "synthesized %s: %d states, %d LUT %d FF %d DSP %d BRAM, %d bytes of \
       Verilog"
      kname states a.Vmht_hls.Optypes.lut a.ff a.dsp a.bram verilog_bytes
  | Executed { cycles; correct; ret } ->
    Printf.sprintf "executed: %d cycles, ret %s, %s" cycles
      (match ret with Some r -> string_of_int r | None -> "-")
      (if correct then "correct" else "MISMATCH")
  | Failed msg -> Printf.sprintf "failed: %s" msg

(* --- framing ------------------------------------------------------- *)

let write_all fd buf =
  let n = Bytes.length buf in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd buf !off (n - !off)
  done

(* [None] on EOF at any point — a half-frame from a dying worker is
   EOF, not an exception. *)
let really_read fd n =
  let buf = Bytes.create n in
  let off = ref 0 in
  let eof = ref false in
  while (not !eof) && !off < n do
    match Unix.read fd buf !off (n - !off) with
    | 0 -> eof := true
    | k -> off := !off + k
  done;
  if !eof then None else Some buf

let write_msg fd v =
  let payload = Marshal.to_bytes v [] in
  let hdr = Bytes.create 8 in
  Bytes.set_int64_le hdr 0 (Int64.of_int (Bytes.length payload));
  write_all fd hdr;
  write_all fd payload

let read_msg fd =
  match really_read fd 8 with
  | None -> None
  | Some hdr -> (
    let n = Int64.to_int (Bytes.get_int64_le hdr 0) in
    match really_read fd n with
    | None -> None
    | Some payload -> Some (Marshal.from_bytes payload 0))
