(** The worker side of the batch server: a forked child that reads
    framed {!Proto.request}s from a pipe, runs the handler, and writes
    framed {!Proto.reply}s back, forever, until EOF on its request
    pipe (the server closing it is the shutdown signal).

    The default handler covers [Synthesize] jobs through the flow (and
    whatever store the parent installed before forking — the child
    inherits it); servers whose requests include [Execute] jobs inject
    a handler built where the workload registry is visible (the eval
    layer), which keeps this library free of a dependency cycle. *)

val default_handle : Proto.request -> Proto.outcome
(** [Synthesize] via {!Vmht.Flow.run}; [Failed] for [Execute]. *)

val synthesized_outcome : Vmht.Flow.hw_thread -> Proto.outcome
(** The deterministic projection of a synthesis result (drops the
    wall-clock [synthesis_seconds] and the process-local rest). *)

val loop :
  handle:(Proto.request -> Proto.outcome) ->
  in_fd:Unix.file_descr ->
  out_fd:Unix.file_descr ->
  unit
(** Serve until EOF.  A handler exception becomes a [Failed] reply;
    the loop itself only exits on EOF or a dead reply pipe.  Runs in
    the forked child — callers follow it with [Unix._exit]. *)
