(** Sharded batch synthesis server.

    A server owns a request queue and a fixed fleet of shards.  With
    [shards = 0] (the default) batches execute in-process on the
    shared {!Vmht_par.Parmap} pool; with [shards > 0] the server forks
    that many worker processes up front and speaks the {!Proto}
    framing to them over pipes.  The two execution substrates are
    interchangeable by construction: outcomes carry no timing and
    replies are returned in request-id order, so the reply stream for
    a given batch is byte-identical at any shard count.

    Per batch the server
    - accounts store hits: a [Synthesize] request whose key is already
      on disk (or seen earlier by this server) is a hit — the
      deterministic, process-independent definition the load generator
      reports;
    - dedups: duplicate-key synthesis requests within a batch dispatch
      once, and every duplicate receives a copy of the leader's reply;
    - enforces deadlines: a request whose [deadline_ms] budget (from
      batch submission) is exhausted before dispatch fails without
      running;
    - survives worker death: in-flight requests of a dead worker are
      retried on a respawned one, [max_attempts] times, then fail.

    Forking and OCaml 5 domains do not mix, so a sharded server must
    be created before the process spawns any domain (in particular
    before the first wide {!Vmht_par.Parmap.map}); worker respawn then
    stays safe for the server's whole life.  [shards = 0] has no such
    constraint. *)

type t

type stats = {
  submitted : int;
  completed : int;  (** replies with a non-[Failed] outcome *)
  failed : int;
  expired : int;  (** failed by deadline, never dispatched *)
  retried : int;  (** re-dispatches after a worker death *)
  deduped : int;  (** replies cloned from an in-batch duplicate's leader *)
  key_hits : int;  (** synthesis requests answerable from the store *)
  key_misses : int;
  latency : Vmht_obs.Histogram.summary;
      (** per-request dispatch-to-reply wall time, microseconds *)
}

val create :
  ?shards:int ->
  ?max_attempts:int ->
  ?window:int ->
  ?store:Store.t ->
  handle:(Proto.request -> Proto.outcome) ->
  unit ->
  t
(** Defaults: [shards = 0], [max_attempts = 3], [window = 8]
    (in-flight requests per worker).  [store] is only consulted for
    hit accounting ({!Store.contains}); installing it into the flow
    ({!Store.install}) is the caller's business and must happen before
    [create] so forked workers inherit it. *)

val shards : t -> int

val run_batch : t -> Proto.request list -> Proto.reply list
(** Execute one batch; replies sorted by [rid] (which must be unique
    within the batch).  Blocks until every request has a reply. *)

val stats : t -> stats
(** Cumulative across batches. *)

val hit_rate : t -> float
(** [key_hits / (key_hits + key_misses)]; [0.] before any keyed
    request. *)

val shutdown : t -> unit
(** Close the request pipes (workers exit on EOF) and reap them.
    Idempotent; a [shards = 0] server has nothing to do. *)
