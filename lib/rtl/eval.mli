(** Clocked evaluator for parsed emitted modules.

    Executes an {!Ast.t} edge by edge against the same
    {!Vmht_hls.Accel.port} memory interface the model-level executor
    uses, so translation, banking, and fault draws are shared between
    backends and any divergence is the emitter's.

    Per-channel handshake contract (the adapter side of what the
    emitter writes): a request sampled high on an idle channel is
    accepted, its access is serviced through the port, and [ack] (plus
    [rdata] for loads) is presented and *held* until the FSM is seen
    with the request deasserted.  Same-cycle accesses are serviced as
    [ports]-wide lanes through {!Vmht_hls.Accel.chunks} and
    {!Vmht_sim.Engine.join_all} — the exact grouping and event order
    of the model's memory cycle — so cycle counts match, not just
    results.

    Edge accounting: the entry edge of a state costs one cycle (pure
    states advance simulated time by one; memory states advance it by
    the lane latency), the edge that consumes a held ack is free (it
    coalesces into the access latency), and the S_IDLE/S_DONE
    handshake edges are free, matching the model's zero dispatch cost.

    X discipline: registers power up X.  X flows silently through
    datapath arithmetic but is a hard {!Rtl_error} when it reaches the
    state register, a branch or ternary condition, [done], a sampled
    request line, or the address/strobe/data of an accepted request —
    which is what makes missing-reset emitter bugs observable. *)

exception Rtl_error of string

type outcome = {
  result : int option;  (** [result] output at [done]; [None] when X *)
  requests : int;  (** channel requests the adapter accepted *)
  edges : int;  (** clock edges evaluated *)
}

val run :
  ?stats:Vmht_hls.Accel.run_stats ->
  ?ports:int ->
  ?max_edges:int ->
  Ast.t ->
  port:Vmht_hls.Accel.port ->
  args:int list ->
  outcome
(** Run a parsed module to [done].  [stats] accumulates
    loads/stores/fsm_cycles with the model's meanings; [ports] is the
    same-cycle memory lane width (default 1); [max_edges] bounds the
    run (default 50M edges) so emitter bugs that deadlock or spin the
    FSM fail loudly instead of hanging.  Raises {!Rtl_error} on
    protocol or X violations, [Invalid_argument] on an argument-count
    mismatch, and lets port-side exceptions (faults, aborts) pass
    through unchanged. *)
