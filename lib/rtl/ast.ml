(* The structure of an emitted hardware-thread module, as parsed back
   from the Verilog text.  This is deliberately the *subset* the
   emitter produces — one clocked always block holding a reset clause
   and a state case — not general Verilog: the RTL evaluator's claim
   is "the emitted bytes execute", so the parser accepts exactly what
   the emitter writes and rejects everything else loudly. *)

type lit = { width : int; value : int; signed : bool }

type expr =
  | Lit of lit
  | Var of string
  | Signed of expr  (** [$signed(e)] *)
  | Concat of expr list  (** [{a, b, ...}] — evaluated as zero-extension *)
  | Unop of string * expr  (** ["-"], ["~"], ["!"] *)
  | Binop of string * expr * expr  (** operator spelled as in the source *)
  | Ternary of expr * expr * expr

type stmt =
  | Assign of string * expr  (** nonblocking [name <= expr;] *)
  | If of expr * stmt list  (** [if (cond) stmt | begin ... end] (no else) *)

type dir = Input | Output

type port = { dir : dir; is_reg : bool; width : int; pname : string }

type case_key = Knum of int | Kid of string | Kdefault

type t = {
  mname : string;
  ports : port list;
  params : (string * lit) list;  (** [localparam]s, e.g. S_IDLE/S_DONE *)
  regs : (string * int) list;  (** internal regs: (name, width) *)
  reset : stmt list;  (** body of [if (rst) begin ... end] *)
  arms : (case_key * stmt list) list;  (** [case (state)] arms in order *)
}
