exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------ lexer ------------------------------ *)

type token =
  | TId of string
  | TLit of Ast.lit
  | TInt of int
  | TSym of string
  | TEof

let is_id_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_id_char c = is_id_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let is_hex c =
  is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

(* Value digits of a sized literal, parsed through Int64 so a 16-digit
   hex two's-complement pattern (how the emitter writes negative
   immediates) wraps back into OCaml's int exactly. *)
let lit_value ~base ~width digits =
  if digits = "" then fail "empty literal value";
  String.iter
    (fun c ->
      match c with
      | 'x' | 'X' | 'z' | 'Z' | '?' -> fail "x/z literal digits unsupported"
      | '_' -> fail "underscores in literals unsupported"
      | _ -> ())
    digits;
  let v =
    try
      match base with
      | 'd' -> Int64.of_string digits
      | 'h' -> Int64.of_string ("0x" ^ digits)
      | 'b' -> Int64.of_string ("0b" ^ digits)
      | _ -> fail "unknown literal base '%c'" base
    with Failure _ -> fail "bad literal digits %S" digits
  in
  (* A sized literal must fit its width: [3'd8] silently truncates in
     Verilog, which is exactly how an undersized state register aliases
     S_IDLE with state 0 — reject it instead. *)
  if width < 64 then begin
    let limit = Int64.shift_left 1L width in
    if Int64.unsigned_compare v limit >= 0 then
      fail "literal %d'%c%s overflows its width" width base digits
  end;
  Int64.to_int v

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let pos = ref 0 in
  let peek_ahead k = if !pos + k < n then Some src.[!pos + k] else None in
  while !pos < n do
    let c = src.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '/' && peek_ahead 1 = Some '/' then begin
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        incr pos
      done;
      let num = String.sub src start (!pos - start) in
      if !pos < n && src.[!pos] = '\'' then begin
        incr pos;
        let signed =
          if !pos < n && (src.[!pos] = 's' || src.[!pos] = 'S') then begin
            incr pos;
            true
          end
          else false
        in
        if !pos >= n then fail "truncated literal";
        let base = Char.lowercase_ascii src.[!pos] in
        incr pos;
        let vstart = !pos in
        while
          !pos < n
          && (is_hex src.[!pos] || src.[!pos] = '_' || src.[!pos] = 'x'
             || src.[!pos] = 'z' || src.[!pos] = '?')
        do
          incr pos
        done;
        let digits = String.sub src vstart (!pos - vstart) in
        let width = int_of_string num in
        if width < 1 || width > 64 then
          fail "unsupported literal width %d" width;
        toks :=
          TLit { Ast.width; value = lit_value ~base ~width digits; signed }
          :: !toks
      end
      else toks := TInt (int_of_string num) :: !toks
    end
    else if is_id_start c then begin
      let start = !pos in
      while !pos < n && is_id_char src.[!pos] do
        incr pos
      done;
      toks := TId (String.sub src start (!pos - start)) :: !toks
    end
    else begin
      let sym2 () =
        if !pos + 1 < n then Some (String.sub src !pos 2) else None
      in
      let sym3 () =
        if !pos + 2 < n then Some (String.sub src !pos 3) else None
      in
      match sym3 () with
      | Some ">>>" ->
        toks := TSym ">>>" :: !toks;
        pos := !pos + 3
      | _ -> (
        match sym2 () with
        | Some (("<<" | ">>" | "<=" | ">=" | "==" | "!=" | "&&" | "||") as s)
          ->
          toks := TSym s :: !toks;
          pos := !pos + 2
        | _ ->
          (match c with
           | '(' | ')' | '{' | '}' | '[' | ']' | ':' | ';' | ',' | '?' | '<'
           | '>' | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^' | '~' | '!'
           | '=' | '@' | '.' ->
             toks := TSym (String.make 1 c) :: !toks
           | _ -> fail "unexpected character %C" c);
          incr pos)
    end
  done;
  Array.of_list (List.rev (TEof :: !toks))

(* ----------------------------- parser ------------------------------ *)

type stream = { toks : token array; mutable at : int }

let tok_to_string = function
  | TId s -> Printf.sprintf "identifier %S" s
  | TLit l -> Printf.sprintf "literal %d'd%d" l.Ast.width l.Ast.value
  | TInt n -> Printf.sprintf "integer %d" n
  | TSym s -> Printf.sprintf "%S" s
  | TEof -> "end of input"

let peek s = s.toks.(s.at)

let next s =
  let t = s.toks.(s.at) in
  if t <> TEof then s.at <- s.at + 1;
  t

let expect_sym s sym =
  match next s with
  | TSym x when x = sym -> ()
  | t -> fail "expected %S, found %s" sym (tok_to_string t)

let expect_kw s kw =
  match next s with
  | TId x when x = kw -> ()
  | t -> fail "expected %S, found %s" kw (tok_to_string t)

let expect_id s =
  match next s with
  | TId x -> x
  | t -> fail "expected an identifier, found %s" (tok_to_string t)

let eat_sym s sym =
  match peek s with
  | TSym x when x = sym ->
    s.at <- s.at + 1;
    true
  | _ -> false

(* [msb:lsb] — optional on port and reg declarations. *)
let parse_range_opt s =
  if eat_sym s "[" then begin
    let msb = match next s with TInt n -> n | t -> fail "bad range msb: %s" (tok_to_string t) in
    expect_sym s ":";
    let lsb = match next s with TInt n -> n | t -> fail "bad range lsb: %s" (tok_to_string t) in
    expect_sym s "]";
    msb - lsb + 1
  end
  else 1

(* -------------------------- expressions ---------------------------- *)

(* Binary operators by Verilog precedence, loosest first. *)
let binop_levels =
  [|
    [ "||" ];
    [ "&&" ];
    [ "|" ];
    [ "^" ];
    [ "&" ];
    [ "=="; "!=" ];
    [ "<"; "<="; ">"; ">=" ];
    [ "<<"; ">>"; ">>>" ];
    [ "+"; "-" ];
    [ "*"; "/"; "%" ];
  |]

let rec parse_expr s = parse_ternary s

and parse_ternary s =
  let c = parse_binary s 0 in
  if eat_sym s "?" then begin
    let t = parse_ternary s in
    expect_sym s ":";
    let f = parse_ternary s in
    Ast.Ternary (c, t, f)
  end
  else c

and parse_binary s level =
  if level >= Array.length binop_levels then parse_unary s
  else begin
    let ops = binop_levels.(level) in
    let lhs = ref (parse_binary s (level + 1)) in
    let continue = ref true in
    while !continue do
      match peek s with
      | TSym op when List.mem op ops ->
        s.at <- s.at + 1;
        let rhs = parse_binary s (level + 1) in
        lhs := Ast.Binop (op, !lhs, rhs)
      | _ -> continue := false
    done;
    !lhs
  end

and parse_unary s =
  match peek s with
  | TSym "-" ->
    s.at <- s.at + 1;
    (* [-64'sd5] is a unary minus applied to a *self-determined* sized
       literal — inside a concatenation (or any self-determined
       context) it no longer means the negative number.  The emitter
       writes negative immediates as two's-complement hex literals;
       anything else is a bug worth rejecting. *)
    (match peek s with
     | TLit _ -> fail "unary minus on a sized literal (emit a two's-complement literal instead)"
     | _ -> Ast.Unop ("-", parse_unary s))
  | TSym "~" ->
    s.at <- s.at + 1;
    Ast.Unop ("~", parse_unary s)
  | TSym "!" ->
    s.at <- s.at + 1;
    Ast.Unop ("!", parse_unary s)
  | _ -> parse_primary s

and parse_primary s =
  match next s with
  | TLit l -> Ast.Lit l
  (* Unsized decimal literals (the [!= 0] in emitted branch conditions)
     are signed 32-bit in Verilog. *)
  | TInt n -> Ast.Lit { Ast.width = 32; value = n; signed = true }
  | TId "$signed" ->
    expect_sym s "(";
    let e = parse_expr s in
    expect_sym s ")";
    Ast.Signed e
  | TId name -> Ast.Var name
  | TSym "(" ->
    let e = parse_expr s in
    expect_sym s ")";
    e
  | TSym "{" ->
    let rec parts acc =
      let e = parse_expr s in
      if eat_sym s "," then parts (e :: acc)
      else begin
        expect_sym s "}";
        List.rev (e :: acc)
      end
    in
    let ps = parts [] in
    if List.length ps < 2 then fail "concatenation needs two parts";
    Ast.Concat ps
  | t -> fail "expected an expression, found %s" (tok_to_string t)

(* -------------------------- statements ----------------------------- *)

let rec parse_stmt s =
  match next s with
  | TId "begin" ->
    let rec loop acc =
      match peek s with
      | TId "end" ->
        s.at <- s.at + 1;
        List.rev acc
      | _ -> loop (List.rev_append (parse_stmt s) acc)
    in
    loop []
  | TId "if" ->
    expect_sym s "(";
    let cond = parse_expr s in
    expect_sym s ")";
    let body = parse_stmt s in
    (match peek s with
     | TId "else" -> fail "else branches unsupported"
     | _ -> ());
    [ Ast.If (cond, body) ]
  | TId name ->
    expect_sym s "<=";
    let e = parse_expr s in
    expect_sym s ";";
    [ Ast.Assign (name, e) ]
  | t -> fail "expected a statement, found %s" (tok_to_string t)

let parse_case_key s =
  match next s with
  | TLit l -> Ast.Knum l.Ast.value
  | TId "default" -> Ast.Kdefault
  | TId name -> Ast.Kid name
  | t -> fail "expected a case label, found %s" (tok_to_string t)

(* ------------------------- module items ---------------------------- *)

let parse_ports s =
  expect_sym s "(";
  let rec loop acc =
    let dir =
      match next s with
      | TId "input" -> Ast.Input
      | TId "output" -> Ast.Output
      | t -> fail "expected input/output, found %s" (tok_to_string t)
    in
    let is_reg =
      match next s with
      | TId "wire" -> false
      | TId "reg" -> true
      | t -> fail "expected wire/reg, found %s" (tok_to_string t)
    in
    let width = parse_range_opt s in
    let pname = expect_id s in
    let acc = { Ast.dir; is_reg; width; pname } :: acc in
    if eat_sym s "," then loop acc
    else begin
      expect_sym s ")";
      expect_sym s ";";
      List.rev acc
    end
  in
  loop []

let parse_always s =
  expect_sym s "@";
  expect_sym s "(";
  expect_kw s "posedge";
  let _clk = expect_id s in
  expect_sym s ")";
  expect_kw s "begin";
  expect_kw s "if";
  expect_sym s "(";
  (match parse_expr s with
   | Ast.Var "rst" -> ()
   | _ -> fail "always block must reset on (rst)");
  expect_sym s ")";
  let reset = parse_stmt s in
  expect_kw s "else";
  expect_kw s "begin";
  expect_kw s "case";
  expect_sym s "(";
  (match parse_expr s with
   | Ast.Var "state" -> ()
   | _ -> fail "case must dispatch on (state)");
  expect_sym s ")";
  let rec arms acc =
    match peek s with
    | TId "endcase" ->
      s.at <- s.at + 1;
      List.rev acc
    | _ ->
      let key = parse_case_key s in
      expect_sym s ":";
      let body = parse_stmt s in
      arms ((key, body) :: acc)
  in
  let arms = arms [] in
  expect_kw s "end";
  expect_kw s "end";
  (reset, arms)

let parse_module src =
  let s = { toks = tokenize src; at = 0 } in
  expect_kw s "module";
  let mname = expect_id s in
  let ports = parse_ports s in
  let params = ref [] in
  let regs = ref [] in
  let body = ref None in
  let rec items () =
    match next s with
    | TId "endmodule" -> ()
    | TId "localparam" ->
      let name = expect_id s in
      expect_sym s "=";
      (match next s with
       | TLit l -> params := (name, l) :: !params
       | t -> fail "localparam needs a sized literal, found %s" (tok_to_string t));
      expect_sym s ";";
      items ()
    | TId "reg" ->
      let width = parse_range_opt s in
      let name = expect_id s in
      expect_sym s ";";
      regs := (name, width) :: !regs;
      items ()
    | TId "always" ->
      if !body <> None then fail "more than one always block";
      body := Some (parse_always s);
      items ()
    | t -> fail "unexpected %s in module body" (tok_to_string t)
  in
  items ();
  (match peek s with
   | TEof -> ()
   | t -> fail "trailing %s after endmodule" (tok_to_string t));
  let reset, arms =
    match !body with
    | Some b -> b
    | None -> fail "module has no always block"
  in
  {
    Ast.mname;
    ports;
    params = List.rev !params;
    regs = List.rev !regs;
    reset;
    arms;
  }

(* One emitted text parses to one structure; the flow memoizes
   [hw_thread]s process-wide, so the same verilog string is executed
   many times — cache the parse under the same kind of lock
   discipline. *)
let memo : (string, Ast.t) Hashtbl.t = Hashtbl.create 16

let memo_mutex = Mutex.create ()

let parse_memo src =
  Mutex.lock memo_mutex;
  let hit = Hashtbl.find_opt memo src in
  Mutex.unlock memo_mutex;
  match hit with
  | Some m -> m
  | None ->
    let m = parse_module src in
    Mutex.lock memo_mutex;
    if not (Hashtbl.mem memo src) then Hashtbl.add memo src m;
    Mutex.unlock memo_mutex;
    m
