module Engine = Vmht_sim.Engine
module Accel = Vmht_hls.Accel

exception Rtl_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Rtl_error s)) fmt

(* Four-state reduced to two: a wire/reg either holds a known word or
   X.  X flows silently through datapath arithmetic (as in hardware)
   and becomes a hard error the moment it reaches something that
   steers the machine — the state register, a branch condition, or a
   sampled request line.  That discipline is what makes the emitter's
   missing-reset bug observable on every kernel instead of "works in
   the simulator". *)
type value = X | V of int

type outcome = {
  result : int option;  (** [result] output at [done]; [None] when X *)
  requests : int;  (** channel requests the adapter accepted *)
  edges : int;  (** clock edges evaluated *)
}

(* ------------------------ expression eval -------------------------- *)

let bool_int b = if b then 1 else 0

let u64 = Int64.of_int

(* Operator semantics over the project's word model (OCaml 63-bit
   ints, shift counts masked to 6 bits): the signed variants are
   exactly {!Vmht_lang.Ast_interp.eval_binop}'s — including raising
   [Eval_error] on division by zero, so both backends fail the same
   way — and the unsigned variants are the Int64 logical ones.  The
   emitter casts Div/Rem/Shr operands with [$signed], which is how the
   reference (signed) semantics are selected here; an uncast [>>>] is
   a *logical* shift, which is the Shr bug this evaluator pins. *)
let apply_binop op ~signed a b =
  let module I = Vmht_lang.Ast_interp in
  match op with
  | "+" -> a + b
  | "-" -> a - b
  | "*" -> a * b
  | "/" ->
    if signed then I.eval_binop Vmht_lang.Ast.Div a b
    else begin
      if b = 0 then raise (I.Eval_error "division by zero");
      Int64.to_int (Int64.unsigned_div (u64 a) (u64 b))
    end
  | "%" ->
    if signed then I.eval_binop Vmht_lang.Ast.Rem a b
    else begin
      if b = 0 then raise (I.Eval_error "remainder by zero");
      Int64.to_int (Int64.unsigned_rem (u64 a) (u64 b))
    end
  | "&" -> a land b
  | "|" -> a lor b
  | "^" -> a lxor b
  | "<<" -> a lsl (b land 63)
  | ">>" -> Int64.to_int (Int64.shift_right_logical (u64 a) (b land 63))
  | ">>>" ->
    if signed then a asr (b land 63)
    else Int64.to_int (Int64.shift_right_logical (u64 a) (b land 63))
  | "<" ->
    bool_int
      (if signed then a < b else Int64.unsigned_compare (u64 a) (u64 b) < 0)
  | "<=" ->
    bool_int
      (if signed then a <= b else Int64.unsigned_compare (u64 a) (u64 b) <= 0)
  | ">" ->
    bool_int
      (if signed then a > b else Int64.unsigned_compare (u64 a) (u64 b) > 0)
  | ">=" ->
    bool_int
      (if signed then a >= b else Int64.unsigned_compare (u64 a) (u64 b) >= 0)
  | "==" -> bool_int (a = b)
  | "!=" -> bool_int (a <> b)
  | "&&" -> bool_int (a <> 0 && b <> 0)
  | "||" -> bool_int (a <> 0 || b <> 0)
  | _ -> fail "unknown binary operator %S" op

let binop_result_signed op signed =
  match op with
  | "<" | "<=" | ">" | ">=" | "==" | "!=" | "&&" | "||" -> false
  | _ -> signed

(* Evaluate to (value, signedness).  Verilog's rules for the subset:
   regs and plain literals are unsigned, ['sd] literals and [$signed]
   casts are signed, an operation is signed only when *both* operands
   are (shifts: only the left operand counts), comparisons yield
   unsigned bits. *)
let rec eval_expr lookup e =
  match e with
  | Ast.Lit l -> (V l.Ast.value, l.Ast.signed)
  | Ast.Var n -> (lookup n, false)
  | Ast.Signed e ->
    let v, _ = eval_expr lookup e in
    (v, true)
  | Ast.Concat parts -> (
    (* The emitter only writes zero-extensions: {63'b0, one-bit-e}. *)
    match parts with
    | [ Ast.Lit { Ast.value = 0; _ }; e ] ->
      let v, _ = eval_expr lookup e in
      (v, false)
    | _ -> fail "unsupported concatenation shape")
  | Ast.Unop (op, e) -> (
    let v, s = eval_expr lookup e in
    match v with
    | X -> (X, if op = "!" then false else s)
    | V a -> (
      match op with
      | "-" -> (V (-a), s)
      | "~" -> (V (lnot a), s)
      | "!" -> (V (bool_int (a = 0)), false)
      | _ -> fail "unknown unary operator %S" op))
  | Ast.Binop (op, l, r) -> (
    let vl, sl = eval_expr lookup l in
    let vr, sr = eval_expr lookup r in
    let signed =
      match op with "<<" | ">>" | ">>>" -> sl | _ -> sl && sr
    in
    let rs = binop_result_signed op signed in
    match (vl, vr) with
    | X, _ | _, X -> (X, rs)
    | V a, V b -> (V (apply_binop op ~signed a b), rs))
  | Ast.Ternary (c, t, f) -> (
    match fst (eval_expr lookup c) with
    | X -> fail "X in a ternary select (uninitialized control)"
    | V 0 -> eval_expr lookup f
    | V _ -> eval_expr lookup t)

(* --------------------------- channels ------------------------------ *)

type chan_state = Idle | Busy | Ready | Presented

type chan = {
  prefix : string;
  mutable cst : chan_state;
  mutable we : bool;
  mutable addr : int;
  mutable wdata : int;
  mutable rdval : int;
}

(* The emitter names channel 0 [mem] and channel [c > 0] [mem<c>];
   instruction order within a cycle equals channel-number order (the
   binder assigns units greedily in instruction order), so servicing
   channels by index reproduces the model's access order exactly. *)
let channel_index prefix =
  if prefix = "mem" then 0
  else
    match int_of_string_opt (String.sub prefix 3 (String.length prefix - 3)) with
    | Some n when String.length prefix > 3 && String.sub prefix 0 3 = "mem" ->
      n
    | _ -> fail "unrecognized channel prefix %S" prefix

let discover_channels (m : Ast.t) =
  let has name dir =
    List.exists
      (fun (p : Ast.port) -> p.Ast.pname = name && p.Ast.dir = dir)
      m.Ast.ports
  in
  List.filter_map
    (fun (p : Ast.port) ->
      match p.Ast.dir with
      | Ast.Output
        when String.length p.Ast.pname > 4
             && String.sub p.Ast.pname
                  (String.length p.Ast.pname - 4)
                  4
                = "_req" ->
        let prefix =
          String.sub p.Ast.pname 0 (String.length p.Ast.pname - 4)
        in
        if has (prefix ^ "_ack") Ast.Input then
          Some
            {
              prefix;
              cst = Idle;
              we = false;
              addr = 0;
              wdata = 0;
              rdval = 0;
            }
        else None
      | _ -> None)
    m.Ast.ports
  |> List.sort (fun a b ->
         compare (channel_index a.prefix) (channel_index b.prefix))

(* ----------------------------- run --------------------------------- *)

let run ?(stats = Accel.fresh_stats ()) ?(ports = 1)
    ?(max_edges = 50_000_000) (m : Ast.t) ~(port : Accel.port) ~args =
  let env : (string, value) Hashtbl.t = Hashtbl.create 64 in
  let set n v = Hashtbl.replace env n v in
  let param n = List.assoc_opt n m.Ast.params in
  let lookup n =
    match Hashtbl.find_opt env n with
    | Some v -> v
    | None -> (
      match param n with
      | Some l -> V l.Ast.value
      | None -> fail "unknown identifier %S" n)
  in
  (* Internal regs and output regs power up X; input wires are driven
     (0) by the harness except the read-data returns, which stay X
     until the adapter presents one. *)
  let writable = Hashtbl.create 32 in
  List.iter
    (fun (r, _) ->
      Hashtbl.replace writable r ();
      set r X)
    m.Ast.regs;
  List.iter
    (fun (p : Ast.port) ->
      match p.Ast.dir with
      | Ast.Output ->
        if p.Ast.is_reg then begin
          Hashtbl.replace writable p.Ast.pname ();
          set p.Ast.pname X
        end
      | Ast.Input ->
        let n = p.Ast.pname in
        if
          String.length n > 6
          && String.sub n (String.length n - 6) 6 = "_rdata"
        then set n X
        else set n (V 0))
    m.Ast.ports;
  let channels = discover_channels m in
  (* Bind the kernel arguments to the argN input ports. *)
  let n_args =
    List.length
      (List.filter
         (fun (p : Ast.port) ->
           p.Ast.dir = Ast.Input
           && String.length p.Ast.pname > 3
           && String.sub p.Ast.pname 0 3 = "arg"
           &&
           match
             int_of_string_opt
               (String.sub p.Ast.pname 3 (String.length p.Ast.pname - 3))
           with
           | Some _ -> true
           | None -> false)
         m.Ast.ports)
  in
  if n_args <> List.length args then
    invalid_arg
      (Printf.sprintf "Rtl.Eval.run: %s expects %d args, got %d" m.Ast.mname
         n_args (List.length args));
  List.iteri (fun i v -> set (Printf.sprintf "arg%d" i) (V v)) args;
  (* Statement execution: reads see the register file as of this edge;
     assignments buffer and apply in statement order (nonblocking with
     last-write-wins). *)
  let exec stmts =
    let commits = ref [] in
    let rec go stmts =
      List.iter
        (fun s ->
          match s with
          | Ast.Assign (n, e) ->
            if not (Hashtbl.mem writable n) then
              fail "assignment to non-register %S" n;
            commits := (n, fst (eval_expr lookup e)) :: !commits
          | Ast.If (c, body) -> (
            match fst (eval_expr lookup c) with
            | X -> fail "X in a branch condition (uninitialized control)"
            | V 0 -> ()
            | V _ -> go body))
        stmts
    in
    go stmts;
    List.rev !commits
  in
  let apply = List.iter (fun (n, v) -> set n v) in
  (* Case dispatch table; symbolic labels resolve through localparams. *)
  let arm_tbl = Hashtbl.create 32 in
  let default_arm = ref [] in
  List.iter
    (fun (k, body) ->
      match k with
      | Ast.Knum v -> Hashtbl.replace arm_tbl v body
      | Ast.Kid id -> (
        match param id with
        | Some l -> Hashtbl.replace arm_tbl l.Ast.value body
        | None -> fail "case label %S is not a localparam" id)
      | Ast.Kdefault -> default_arm := body)
    m.Ast.arms;
  let param_value n =
    match param n with
    | Some l -> l.Ast.value
    | None -> fail "module has no %S localparam" n
  in
  let s_idle = param_value "S_IDLE" in
  let s_done = param_value "S_DONE" in
  (* Reset edge, then hold start high until done. *)
  set "rst" (V 1);
  apply (exec m.Ast.reset);
  set "rst" (V 0);
  set "start" (V 1);
  let requests = ref 0 in
  let edges = ref 0 in
  let finished = ref false in
  let sample_req c = lookup (c.prefix ^ "_req") in
  let service c =
    if c.we then port.Accel.store c.addr c.wdata
    else c.rdval <- port.Accel.load c.addr
  in
  let present c =
    set (c.prefix ^ "_ack") (V 1);
    if not c.we then set (c.prefix ^ "_rdata") (V c.rdval);
    c.cst <- Presented
  in
  while not !finished do
    incr edges;
    if !edges > max_edges then
      fail "edge budget exceeded (%d edges) — runaway or deadlocked FSM"
        max_edges;
    let sval =
      match lookup "state" with
      | V v -> v
      | X -> fail "state register is X"
    in
    let arm =
      match Hashtbl.find_opt arm_tbl sval with
      | Some a -> a
      | None -> !default_arm
    in
    (* Edge accounting, matched against the model's: the edge that
       consumes an ack coalesces with the successor state's entry (a
       memory state costs exactly its access latency), the edge that
       issues requests is the state's entry edge (lanes below advance
       the clock), any other exec-state edge is one pure cycle, and
       the idle/done handshake edges are free — the model has no
       dispatch cost either. *)
    let consume = List.exists (fun c -> c.cst = Presented) channels in
    let commits = exec arm in
    if consume then apply commits
    else begin
      let next_req c =
        List.fold_left
          (fun acc (n, v) -> if n = c.prefix ^ "_req" then Some v else acc)
          None commits
        |> Option.value ~default:(sample_req c)
      in
      let will_issue =
        List.exists (fun c -> c.cst = Idle && next_req c = V 1) channels
      in
      if will_issue then begin
        apply commits;
        stats.Accel.fsm_cycles <- stats.Accel.fsm_cycles + 1
      end
      else if sval <> s_idle && sval <> s_done then begin
        Engine.wait 1;
        apply commits;
        stats.Accel.fsm_cycles <- stats.Accel.fsm_cycles + 1
      end
      else apply commits
    end;
    (match lookup "done" with
     | X -> fail "done is X"
     | V 0 -> ()
     | V _ -> finished := true);
    if not !finished then begin
      (* Ack-hold handshake: a presented ack is held until the FSM is
         seen with the request deasserted, then the channel is free
         for the next access. *)
      List.iter
        (fun c ->
          if c.cst = Presented && sample_req c = V 0 then begin
            set (c.prefix ^ "_ack") (V 0);
            c.cst <- Idle
          end)
        channels;
      (* Accept requests (in channel order = the model's instruction
         order) from idle channels whose req samples high. *)
      let accepted =
        List.filter
          (fun c ->
            c.cst = Idle
            &&
            match sample_req c with
            | X ->
              fail "%s_req is X — the output register has no reset"
                c.prefix
            | V 0 -> false
            | V _ ->
              c.we <-
                (match lookup (c.prefix ^ "_we") with
                 | X -> fail "%s_we is X at issue" c.prefix
                 | V 0 -> false
                 | V _ -> true);
              c.addr <-
                (match lookup (c.prefix ^ "_addr") with
                 | X -> fail "%s_addr is X at issue" c.prefix
                 | V a -> a);
              c.wdata <-
                (if c.we then
                   match lookup (c.prefix ^ "_wdata") with
                   | X -> fail "%s_wdata is X at issue" c.prefix
                   | V v -> v
                 else 0);
              incr requests;
              if c.we then stats.Accel.stores <- stats.Accel.stores + 1
              else stats.Accel.loads <- stats.Accel.loads + 1;
              true)
          channels
      in
      if accepted <> [] then begin
        let stalling =
          match lookup "state" with
          | V v -> v = sval
          | X -> fail "state register is X"
        in
        if stalling then begin
          (* The FSM holds this state for the accesses: run them as
             [ports]-wide lanes exactly like the model's memory cycle
             and present every ack at completion, so the next edge is
             the acked advance. *)
          let lanes = List.map (fun c () -> service c) accepted in
          List.iter
            (Engine.join_all ~name:"mem-lane")
            (Accel.chunks ports lanes);
          List.iter present accepted
        end
        else
          (* The FSM advanced while its request was still out — the
             emitted hold bug.  Service asynchronously so the run
             still makes progress and the divergence (spurious
             requests, wrong cycles) is observable. *)
          List.iter
            (fun c ->
              c.cst <- Busy;
              Engine.fork ~name:"mem-lane" (fun () ->
                  service c;
                  c.cst <- Ready))
            accepted
      end;
      List.iter (fun c -> if c.cst = Ready then present c) channels
    end
  done;
  let result =
    match lookup "result" with
    | V v -> Some v
    | X -> None
  in
  { result; requests = !requests; edges = !edges }
