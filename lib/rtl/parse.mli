(** Strict parser for the emitted-Verilog subset.

    Accepts exactly the module shape {!Vmht_hls.Verilog} emits — port
    list, [localparam]s, [reg] declarations, and one
    [always @(posedge clk)] block of the form
    [if (rst) begin ... end else begin case (state) ... endcase end] —
    and turns it back into the {!Ast.t} the evaluator executes, so the
    emitted bytes are what runs.

    Strictness is deliberate and is part of the bug surface this
    library exists to cover: sized literals that overflow their width
    (the undersized state register aliased S_IDLE with state 0), x/z
    digits, and unary minus on a sized literal (the old [-64'sd5]
    spelling of negative immediates, which is self-determined inside
    concatenations) are all hard {!Parse_error}s rather than the
    silent truncation Verilog would perform. *)

exception Parse_error of string

val parse_module : string -> Ast.t
(** Parse an emitted module.  Raises {!Parse_error} on anything
    outside the emitted subset. *)

val parse_memo : string -> Ast.t
(** {!parse_module} behind a process-wide memo keyed on the exact
    text — the synthesis flow memoizes [hw_thread]s, so the same
    emitted string is executed many times.  Thread-safe. *)
