type event = { at : int; component : string; detail : string }

type t = {
  capacity : int;
  mutable enabled : bool;
  queue : event Queue.t;
  mutable dropped : int;
}

let create ?(capacity = 65536) () =
  { capacity; enabled = false; queue = Queue.create (); dropped = 0 }

let enable t flag = t.enabled <- flag

let record t ~at ~component detail =
  if t.enabled then begin
    if Queue.length t.queue >= t.capacity then begin
      ignore (Queue.pop t.queue);
      t.dropped <- t.dropped + 1
    end;
    Queue.add { at; component; detail } t.queue
  end

let events t = List.of_seq (Queue.to_seq t.queue)

let count t = Queue.length t.queue

let dropped t = t.dropped

let to_string t =
  let buf = Buffer.create 1024 in
  Queue.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "[%8d] %-12s %s\n" e.at e.component e.detail))
    t.queue;
  Buffer.contents buf
