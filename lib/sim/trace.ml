type event = Vmht_obs.Event.t

type t = {
  capacity : int;
  mutable enabled : bool;
  queue : event Queue.t;
  mutable dropped : int;
}

let create ?(capacity = 65536) () =
  { capacity; enabled = false; queue = Queue.create (); dropped = 0 }

let enable t flag = t.enabled <- flag

let enabled t = t.enabled

let record t ~at ?(duration = 0) ~component kind =
  if t.enabled then begin
    if Queue.length t.queue >= t.capacity then begin
      ignore (Queue.pop t.queue);
      t.dropped <- t.dropped + 1
    end;
    Queue.add
      { Vmht_obs.Event.at; duration; component; kind }
      t.queue
  end

let events t = List.of_seq (Queue.to_seq t.queue)

let count t = Queue.length t.queue

let dropped t = t.dropped

let clear t =
  Queue.clear t.queue;
  t.dropped <- 0

let to_string t =
  let buf = Buffer.create 1024 in
  if t.dropped > 0 then
    Buffer.add_string buf
      (Printf.sprintf "... %d earlier events dropped ...\n" t.dropped);
  Queue.iter
    (fun e -> Buffer.add_string buf (Vmht_obs.Event.to_string e ^ "\n"))
    t.queue;
  Buffer.contents buf
