type stats = {
  transactions : int;
  busy_cycles : int;
  wait_cycles : int;
  max_queue : int;
}

type t = {
  rname : string;
  mutable busy : bool;
  waiters : (unit -> unit) Queue.t;
  mutable acquired_at : int;
  mutable transactions : int;
  mutable busy_cycles : int;
  mutable wait_cycles : int;
  mutable max_queue : int;
}

let create ~name =
  {
    rname = name;
    busy = false;
    waiters = Queue.create ();
    acquired_at = 0;
    transactions = 0;
    busy_cycles = 0;
    wait_cycles = 0;
    max_queue = 0;
  }

let name t = t.rname

let acquire t =
  if not t.busy then begin
    t.busy <- true;
    t.acquired_at <- Engine.now_p ()
  end
  else begin
    let enqueued_at = Engine.now_p () in
    Engine.suspend (fun resume ->
        Queue.add resume t.waiters;
        t.max_queue <- max t.max_queue (Queue.length t.waiters));
    (* Ownership was transferred to us by [release]; busy stays true. *)
    let woke_at = Engine.now_p () in
    t.wait_cycles <- t.wait_cycles + (woke_at - enqueued_at);
    t.acquired_at <- woke_at
  end

let release t =
  assert t.busy;
  t.transactions <- t.transactions + 1;
  t.busy_cycles <- t.busy_cycles + (Engine.now_p () - t.acquired_at);
  match Queue.take_opt t.waiters with
  | Some resume -> resume () (* hand over ownership without going idle *)
  | None -> t.busy <- false

let use t ~cycles =
  acquire t;
  Engine.wait cycles;
  release t

let stats t =
  {
    transactions = t.transactions;
    busy_cycles = t.busy_cycles;
    wait_cycles = t.wait_cycles;
    max_queue = t.max_queue;
  }

let utilization t ~total_cycles =
  if total_cycles = 0 then 0.
  else float_of_int t.busy_cycles /. float_of_int total_cycles
