(** Discrete-event simulation engine.

    Simulated components are ordinary OCaml functions run as lightweight
    processes on top of OCaml 5 effect handlers.  A process advances
    simulated time with {!wait}, blocks on external conditions with
    {!suspend} and starts children with {!fork}.  The engine executes
    events in (time, insertion-order) order, so runs are deterministic.

    The process-context operations ({!wait}, {!suspend}, {!fork},
    {!now_p}) may only be called from inside a process started by
    {!spawn} or {!fork}; calling them elsewhere raises
    [Not_in_process]. *)

type t

type time = int
(** Simulated time in clock cycles of the (single) fabric clock. *)

exception Not_in_process
(** Raised when a process-context operation is used outside [run]. *)

exception Stuck of string
(** Raised by {!run} when [check_quiescent] is set and processes remain
    suspended after the event queue drains (usually a lost wakeup). *)

val create : ?fastpath:bool -> unit -> t
(** [fastpath] (default [true]) enables the single-runnable wait fast
    path: when the event queue holds no event at or before the target
    time of a {!wait}, the clock is advanced directly and the process
    resumed in place instead of round-tripping the heap.  The schedule
    produced is observationally identical — cycle counts, event order
    and profile attribution do not change — only the heap traffic and
    dispatch count do. *)

val now : t -> time
(** Current simulated time (usable from any context). *)

val spawn : t -> name:string -> (unit -> unit) -> unit
(** Register a new process to start at the current time. *)

val schedule : t -> at:time -> (unit -> unit) -> unit
(** Low-level: run a plain callback at absolute time [at] (>= now). *)

val run : ?until:time -> ?check_quiescent:bool -> t -> unit
(** Execute events until the queue is empty or simulated time would
    exceed [until].  With [check_quiescent] (default false), raise
    {!Stuck} if suspended processes remain once the queue drains. *)

val suspended_count : t -> int
(** Number of processes currently blocked in {!suspend}. *)

val events_executed : t -> int
(** Total events the engine has dispatched (a work measure). *)

val fast_forwards : t -> int
(** Number of waits the single-runnable fast path absorbed without a
    heap round-trip (0 when the fast path is disabled). *)

(** {2 Profiling and batch observation} *)

type phase = Vmht_obs.Profile.phase

val with_phase : phase -> (unit -> 'a) -> 'a
(** Attribute simulated time consumed by [f] (its [wait]s and the
    waits of events it schedules) to the given phase.  Free unless the
    process-wide profile ({!Vmht_obs.Profile.enable}) was on when this
    engine was created; profile-enabled engines charge every timeline
    advance to the phase of the event that consumed it, so the
    per-phase sums partition the engine's total exactly.  Deltas are
    flushed to {!Vmht_obs.Profile} at the end of every {!run}. *)

val observe_batches : t -> (int -> unit) -> unit
(** Install a sink called with the size of every batch of events
    dispatched at the same timestamp (a measure of event-queue
    contention).  Independent of profiling; the SoC points this at its
    ["engine.dispatch_batch"] metrics histogram when observing. *)

(** {2 Process-context operations} *)

val wait : int -> unit
(** Advance this process's view of time by [n >= 0] cycles. *)

val now_p : unit -> time
(** Current simulated time, from inside a process. *)

val suspend : ((unit -> unit) -> unit) -> unit
(** [suspend register] parks the process and calls [register resume].
    Calling [resume] (exactly once, from any context) reschedules the
    process at the resumer's current time.  Resuming twice raises
    [Invalid_argument]. *)

val fork : name:string -> (unit -> unit) -> unit
(** Start a child process at the current time and continue immediately. *)

val join_all : ?name:string -> (unit -> unit) list -> unit
(** Run every thunk as a child process (forked in list order at the
    current time, [name] defaults to ["join"]) and block until all of
    them complete.  [[]] is a no-op and [[f]] runs [f] inline — no
    events are created unless real concurrency is needed.  The barrier
    the accelerator model's memory lanes and the RTL evaluator's
    channel adapter share, so both backends schedule identical event
    sequences for the same access set. *)
