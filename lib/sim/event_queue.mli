(** Binary min-heap of timestamped events.

    Events with equal timestamps pop in insertion order (a sequence
    number breaks ties), which keeps simulations deterministic. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> at:int -> 'a -> unit
(** Insert an event at absolute time [at]. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the earliest event, [None] if empty. *)

val peek_time : 'a t -> int option
(** Timestamp of the earliest event without removing it. *)

val length : 'a t -> int

val is_empty : 'a t -> bool
