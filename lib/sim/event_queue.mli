(** Binary min-heap of timestamped events.

    Events with equal timestamps pop in insertion order (a sequence
    number breaks ties), which keeps simulations deterministic. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> at:int -> 'a -> unit
(** Insert an event at absolute time [at]. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the earliest event, [None] if empty. *)

val peek_time : 'a t -> int option
(** Timestamp of the earliest event without removing it. *)

(** {2 Allocation-free variants}

    The engine's dispatch loop pops millions of events per run; these
    avoid the option/tuple boxing of {!pop} and {!peek_time}.  Both
    raise [Invalid_argument] on an empty queue — guard with
    {!is_empty}. *)

val min_time_exn : 'a t -> int
(** Timestamp of the earliest event. *)

val pop_payload_exn : 'a t -> 'a
(** Remove the earliest event and return just its payload (pair with
    {!min_time_exn} to learn its time first). *)

val length : 'a t -> int

val is_empty : 'a t -> bool
