(** Lightweight event trace, used by tests and by the CLI's [--trace]
    mode to inspect what a simulated system did and when. *)

type event = { at : int; component : string; detail : string }

type t

val create : ?capacity:int -> unit -> t
(** A bounded trace; once [capacity] events are recorded the oldest are
    dropped (default capacity 65536). *)

val enable : t -> bool -> unit
(** Recording is off until enabled; disabled traces cost one branch. *)

val record : t -> at:int -> component:string -> string -> unit

val events : t -> event list
(** Recorded events, oldest first. *)

val count : t -> int
(** Number of events currently retained. *)

val dropped : t -> int
(** Number of events discarded due to the capacity bound. *)

val to_string : t -> string
