(** Bounded ring buffer of typed observability events, used by tests
    and by the CLI's trace modes to inspect what a simulated system did
    and when.  The event schema lives in {!Vmht_obs.Event}; this module
    only owns retention. *)

type event = Vmht_obs.Event.t

type t

val create : ?capacity:int -> unit -> t
(** A bounded trace; once [capacity] events are recorded the oldest are
    dropped — and counted, see {!dropped} (default capacity 65536). *)

val enable : t -> bool -> unit
(** Recording is off until enabled; disabled traces cost one branch. *)

val enabled : t -> bool

val record :
  t -> at:int -> ?duration:int -> component:string -> Vmht_obs.Event.kind -> unit
(** [at] is the event's start cycle; [duration] (default 0) its span. *)

val events : t -> event list
(** Recorded events, oldest first.  When {!dropped} is non-zero the
    list holds only the newest [capacity] events — older ones are gone,
    not merely hidden. *)

val count : t -> int
(** Number of events currently retained. *)

val dropped : t -> int
(** Number of events discarded due to the capacity bound. *)

val clear : t -> unit
(** Forget every retained event and reset {!dropped}, so a SoC can be
    reused across runs without stale events.  Leaves the enabled flag
    unchanged. *)

val to_string : t -> string
(** One line per event; prefixed by a ["... N earlier events dropped
    ..."] header when the capacity bound discarded older events. *)
