(** A shared, serially-reusable resource (a bus, a DRAM channel, a DMA
    engine...).  Processes acquire it in FIFO order; utilization and
    queueing statistics are accumulated for the evaluation reports. *)

type t

type stats = {
  transactions : int;      (** completed acquire/release pairs *)
  busy_cycles : int;       (** cycles the resource was held *)
  wait_cycles : int;       (** total cycles processes spent queueing *)
  max_queue : int;         (** high-water mark of the wait queue *)
}

val create : name:string -> t

val name : t -> string

val acquire : t -> unit
(** Block (FIFO) until the resource is free, then hold it.
    Must be called from process context. *)

val release : t -> unit
(** Release; the longest-waiting process (if any) becomes the holder. *)

val use : t -> cycles:int -> unit
(** [acquire], hold for [cycles], [release]. *)

val stats : t -> stats

val utilization : t -> total_cycles:int -> float
(** Fraction of [total_cycles] the resource was busy. *)
