(* Binary min-heap on parallel arrays.

   Keys (time, tie-breaking sequence number) live in plain [int array]s
   so every comparison on the push/pop path is a monomorphic integer
   compare — no entry records are allocated per push and no polymorphic
   equality runs anywhere.  The payload array needs a value of type
   ['a] to exist before it can be allocated, so it stays empty until
   the first push, whose payload then doubles as the growth filler
   (slots beyond [size] are dead storage; [pop] overwrites the vacated
   root slot with the still-live last element, so no stale payload is
   ever returned). *)

type 'a t = {
  mutable ats : int array;
  mutable seqs : int array;
  mutable payloads : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

let create () =
  { ats = [||]; seqs = [||]; payloads = [||]; size = 0; next_seq = 0 }

(* precedes i j: does slot i's event fire before slot j's? *)
let precedes t i j =
  t.ats.(i) < t.ats.(j) || (t.ats.(i) = t.ats.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let a = t.ats.(i) in
  t.ats.(i) <- t.ats.(j);
  t.ats.(j) <- a;
  let s = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- s;
  let p = t.payloads.(i) in
  t.payloads.(i) <- t.payloads.(j);
  t.payloads.(j) <- p

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if precedes t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && precedes t l !smallest then smallest := l;
  if r < t.size && precedes t r !smallest then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t payload =
  let cap = max 16 (2 * Array.length t.payloads) in
  let ats = Array.make cap 0 in
  let seqs = Array.make cap 0 in
  let payloads = Array.make cap payload in
  Array.blit t.ats 0 ats 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.payloads 0 payloads 0 t.size;
  t.ats <- ats;
  t.seqs <- seqs;
  t.payloads <- payloads

let push t ~at payload =
  if t.size >= Array.length t.payloads then grow t payload;
  let i = t.size in
  t.ats.(i) <- at;
  t.seqs.(i) <- t.next_seq;
  t.payloads.(i) <- payload;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t i

let is_empty t = t.size = 0

let length t = t.size

let min_time_exn t =
  if t.size = 0 then invalid_arg "Event_queue.min_time_exn: empty queue";
  t.ats.(0)

let pop_payload_exn t =
  if t.size = 0 then invalid_arg "Event_queue.pop_payload_exn: empty queue";
  let payload = t.payloads.(0) in
  let last = t.size - 1 in
  t.size <- last;
  if last > 0 then begin
    t.ats.(0) <- t.ats.(last);
    t.seqs.(0) <- t.seqs.(last);
    t.payloads.(0) <- t.payloads.(last);
    sift_down t 0
  end;
  payload

let pop t =
  if t.size = 0 then None
  else begin
    let at = t.ats.(0) in
    let payload = pop_payload_exn t in
    Some (at, payload)
  end

let peek_time t = if t.size = 0 then None else Some t.ats.(0)
