type time = int

exception Not_in_process
exception Stuck of string

type t = {
  mutable now : time;
  queue : (unit -> unit) Event_queue.t;
  mutable suspended : int;
  mutable executed : int;
}

type _ Effect.t +=
  | Wait : t * int -> unit Effect.t
  | Suspend : t * ((unit -> unit) -> unit) -> unit Effect.t
  | Fork : t * string * (unit -> unit) -> unit Effect.t
  | Now_eff : t -> time Effect.t

(* The engine a running process belongs to.  Set for the dynamic extent
   of each event dispatch; within one domain processes run one at a
   time.  Domain-local so independent simulations may run concurrently
   on separate domains (the parallel evaluation harness does exactly
   that) without clobbering each other's context. *)
let current : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let create () =
  { now = 0; queue = Event_queue.create (); suspended = 0; executed = 0 }

let now t = t.now

let schedule t ~at action =
  assert (at >= t.now);
  Event_queue.push t.queue ~at action

let rec exec_process t fn =
  let open Effect.Deep in
  match_with fn ()
    {
      retc = (fun () -> ());
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Wait (_, n) ->
            Some
              (fun (k : (a, _) continuation) ->
                schedule t ~at:(t.now + n) (fun () -> continue k ()))
          | Suspend (_, register) ->
            Some
              (fun (k : (a, _) continuation) ->
                t.suspended <- t.suspended + 1;
                let resumed = ref false in
                let resume () =
                  if !resumed then
                    invalid_arg "Engine.suspend: process resumed twice";
                  resumed := true;
                  t.suspended <- t.suspended - 1;
                  schedule t ~at:t.now (fun () -> continue k ())
                in
                register resume)
          | Fork (_, name, f) ->
            Some
              (fun (k : (a, _) continuation) ->
                spawn t ~name f;
                continue k ())
          | Now_eff _ ->
            Some (fun (k : (a, _) continuation) -> continue k t.now)
          | _ -> None);
    }

and spawn t ~name:_ fn = schedule t ~at:t.now (fun () -> exec_process t fn)

let run ?until ?(check_quiescent = false) t =
  let horizon = match until with None -> max_int | Some u -> u in
  let rec loop () =
    if not (Event_queue.is_empty t.queue) then begin
      let at = Event_queue.min_time_exn t.queue in
      if at <= horizon then begin
        let action = Event_queue.pop_payload_exn t.queue in
        t.now <- at;
        t.executed <- t.executed + 1;
        let saved = Domain.DLS.get current in
        Domain.DLS.set current (Some t);
        Fun.protect ~finally:(fun () -> Domain.DLS.set current saved) action;
        loop ()
      end
    end
  in
  loop ();
  if check_quiescent && t.suspended > 0 then
    raise
      (Stuck
         (Printf.sprintf "%d process(es) still suspended at t=%d" t.suspended
            t.now))

let suspended_count t = t.suspended

let events_executed t = t.executed

let engine_of_context () =
  match Domain.DLS.get current with None -> raise Not_in_process | Some t -> t

let wait n =
  assert (n >= 0);
  let t = engine_of_context () in
  if n = 0 then () else Effect.perform (Wait (t, n))

let now_p () =
  let t = engine_of_context () in
  Effect.perform (Now_eff t)

let suspend register =
  let t = engine_of_context () in
  Effect.perform (Suspend (t, register))

let fork ~name fn =
  let t = engine_of_context () in
  Effect.perform (Fork (t, name, fn))
