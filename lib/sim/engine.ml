type time = int

exception Not_in_process
exception Stuck of string

(* Per-engine profiling state, allocated only when the process-wide
   profile (Vmht_obs.Profile) is enabled at [create] time.

   Cycle attribution is a partition of the engine's timeline: every
   scheduled action is wrapped to remember the phase that scheduled
   it, and when it is dispatched it charges the simulated time that
   passed since the previous charge point ([charged_upto]) to that
   phase.  Charge points advance monotonically through every
   dispatch, so the per-phase sums telescope to exactly the engine's
   final [now].  Host time is only sampled (every 64th dispatch) —
   cheap enough to leave on for whole evaluation runs. *)
type eprof = {
  mutable cur_phase : int; (* phase of the code currently executing *)
  mutable charged_upto : time;
  cycles : int array;
  host_ns : float array;
  mutable dispatches : int;
  mutable last_host : float;
  mutable flushed_now : time;
  mutable first_flush : bool;
  batch : Vmht_obs.Histogram.t;
}

type t = {
  mutable now : time;
  queue : (unit -> unit) Event_queue.t;
  mutable suspended : int;
  mutable executed : int;
  mutable fast_forwards : int;
  profile : eprof option;
  mutable batch_sink : (int -> unit) option;
  mutable batch_at : time; (* timestamp of the open dispatch batch *)
  mutable batch_len : int;
  fastpath : bool;
  mutable horizon : time; (* [run ?until] bound; fast-forward never crosses *)
  mutable ff_active : bool; (* a fast-forward trampoline is on the stack *)
  mutable ff_pending : (unit -> unit) option; (* deferred resume for it *)
}

type phase = Vmht_obs.Profile.phase

type _ Effect.t +=
  | Wait : t * int -> unit Effect.t
  | Suspend : t * ((unit -> unit) -> unit) -> unit Effect.t
  | Fork : t * string * (unit -> unit) -> unit Effect.t
  | Now_eff : t -> time Effect.t

(* The engine a running process belongs to.  Set for the dynamic extent
   of each event dispatch; within one domain processes run one at a
   time.  Domain-local so independent simulations may run concurrently
   on separate domains (the parallel evaluation harness does exactly
   that) without clobbering each other's context. *)
let current : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let fresh_eprof () =
  {
    cur_phase = Vmht_obs.Profile.phase_index Vmht_obs.Profile.Dispatch;
    charged_upto = 0;
    cycles = Array.make Vmht_obs.Profile.n_phases 0;
    host_ns = Array.make Vmht_obs.Profile.n_phases 0.;
    dispatches = 0;
    last_host = 0.;
    flushed_now = 0;
    first_flush = true;
    batch = Vmht_obs.Histogram.create ();
  }

let create ?(fastpath = true) () =
  {
    now = 0;
    queue = Event_queue.create ();
    suspended = 0;
    executed = 0;
    fast_forwards = 0;
    profile =
      (if Vmht_obs.Profile.enabled () then Some (fresh_eprof ()) else None);
    batch_sink = None;
    batch_at = -1;
    batch_len = 0;
    fastpath;
    horizon = max_int;
    ff_active = false;
    ff_pending = None;
  }

let now t = t.now

let observe_batches t sink = t.batch_sink <- Some sink

let schedule t ~at action =
  assert (at >= t.now);
  match t.profile with
  | None -> Event_queue.push t.queue ~at action
  | Some p ->
    (* Capture the scheduling phase; on dispatch, charge the timeline
       advance since the previous charge point to it. *)
    let ph = p.cur_phase in
    Event_queue.push t.queue ~at (fun () ->
        let dt = t.now - p.charged_upto in
        if dt > 0 then p.cycles.(ph) <- p.cycles.(ph) + dt;
        p.charged_upto <- t.now;
        p.cur_phase <- ph;
        action ())

let with_phase ph f =
  match Domain.DLS.get current with
  | Some { profile = Some p; _ } ->
    let saved = p.cur_phase in
    p.cur_phase <- Vmht_obs.Profile.phase_index ph;
    Fun.protect ~finally:(fun () -> p.cur_phase <- saved) f
  | _ -> f ()

let rec exec_process t fn =
  let open Effect.Deep in
  match_with fn ()
    {
      retc = (fun () -> ());
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Wait (_, n) ->
            Some
              (fun (k : (a, _) continuation) ->
                let target = t.now + n in
                (* Single-runnable fast path: when no queued event can
                   run at or before [target] (strict compare — an event
                   tied at [target] carries a smaller sequence number
                   and must dispatch first) and [target] does not cross
                   the run horizon, advancing the clock directly is
                   observationally identical to a heap round-trip.
                   Profile charging is replicated inline: the advance is
                   charged to the phase current at the perform point,
                   exactly what [schedule]'s wrapper would have done. *)
                if
                  t.fastpath && target <= t.horizon
                  && (Event_queue.is_empty t.queue
                     || Event_queue.min_time_exn t.queue > target)
                then begin
                  (match t.profile with
                  | Some p ->
                    let dt = target - p.charged_upto in
                    if dt > 0 then
                      p.cycles.(p.cur_phase) <- p.cycles.(p.cur_phase) + dt;
                    p.charged_upto <- target
                  | None -> ());
                  t.now <- target;
                  t.fast_forwards <- t.fast_forwards + 1;
                  (* Resuming here would nest one handler frame per
                     fast-forwarded wait and overflow the stack on long
                     chains, so only the outermost fast-forward drives
                     the resume; inner ones hand theirs to it. *)
                  if t.ff_active then
                    t.ff_pending <- Some (fun () -> continue k ())
                  else begin
                    t.ff_active <- true;
                    Fun.protect
                      ~finally:(fun () -> t.ff_active <- false)
                      (fun () ->
                        continue k ();
                        let rec drain () =
                          match t.ff_pending with
                          | Some f ->
                            t.ff_pending <- None;
                            f ();
                            drain ()
                          | None -> ()
                        in
                        drain ())
                  end
                end
                else schedule t ~at:target (fun () -> continue k ()))
          | Suspend (_, register) ->
            Some
              (fun (k : (a, _) continuation) ->
                t.suspended <- t.suspended + 1;
                let resumed = ref false in
                let resume () =
                  if !resumed then
                    invalid_arg "Engine.suspend: process resumed twice";
                  resumed := true;
                  t.suspended <- t.suspended - 1;
                  schedule t ~at:t.now (fun () -> continue k ())
                in
                register resume)
          | Fork (_, name, f) ->
            Some
              (fun (k : (a, _) continuation) ->
                spawn t ~name f;
                continue k ())
          | Now_eff _ ->
            Some (fun (k : (a, _) continuation) -> continue k t.now)
          | _ -> None);
    }

and spawn t ~name:_ fn = schedule t ~at:t.now (fun () -> exec_process t fn)

let tracking_batches t = t.batch_sink <> None || t.profile <> None

let flush_batch t =
  if t.batch_len > 0 then begin
    (match t.batch_sink with Some f -> f t.batch_len | None -> ());
    (match t.profile with
    | Some p -> Vmht_obs.Histogram.observe p.batch t.batch_len
    | None -> ());
    t.batch_len <- 0;
    t.batch_at <- -1
  end

let flush_profile t =
  match t.profile with
  | None -> ()
  | Some p ->
    flush_batch t;
    let h = Unix.gettimeofday () in
    if p.last_host > 0. then
      p.host_ns.(p.cur_phase) <-
        p.host_ns.(p.cur_phase) +. ((h -. p.last_host) *. 1e9);
    p.last_host <- h;
    Vmht_obs.Profile.flush ~cycles:p.cycles ~host_ns:p.host_ns
      ~dispatches:p.dispatches
      ~engine_cycles:(t.now - p.flushed_now)
      ~engines:(if p.first_flush then 1 else 0)
      ~batch:p.batch;
    Array.fill p.cycles 0 (Array.length p.cycles) 0;
    Array.fill p.host_ns 0 (Array.length p.host_ns) 0.;
    p.dispatches <- 0;
    p.flushed_now <- t.now;
    p.first_flush <- false;
    Vmht_obs.Histogram.reset p.batch

let run ?until ?(check_quiescent = false) t =
  let horizon = match until with None -> max_int | Some u -> u in
  t.horizon <- horizon;
  (match t.profile with
  | Some p -> p.last_host <- Unix.gettimeofday ()
  | None -> ());
  let rec loop () =
    if not (Event_queue.is_empty t.queue) then begin
      let at = Event_queue.min_time_exn t.queue in
      if at <= horizon then begin
        let action = Event_queue.pop_payload_exn t.queue in
        t.now <- at;
        t.executed <- t.executed + 1;
        if tracking_batches t then
          if at = t.batch_at then t.batch_len <- t.batch_len + 1
          else begin
            flush_batch t;
            t.batch_at <- at;
            t.batch_len <- 1
          end;
        let saved = Domain.DLS.get current in
        Domain.DLS.set current (Some t);
        Fun.protect ~finally:(fun () -> Domain.DLS.set current saved) action;
        (match t.profile with
        | Some p ->
          p.dispatches <- p.dispatches + 1;
          (* Sample the host clock every 64th dispatch, charging the
             elapsed slice to the phase of the action that just ran. *)
          if p.dispatches land 63 = 0 then begin
            let h = Unix.gettimeofday () in
            p.host_ns.(p.cur_phase) <-
              p.host_ns.(p.cur_phase) +. ((h -. p.last_host) *. 1e9);
            p.last_host <- h
          end
        | None -> ());
        loop ()
      end
    end
  in
  loop ();
  flush_batch t;
  flush_profile t;
  if check_quiescent && t.suspended > 0 then
    raise
      (Stuck
         (Printf.sprintf "%d process(es) still suspended at t=%d" t.suspended
            t.now))

let suspended_count t = t.suspended

let events_executed t = t.executed

let fast_forwards t = t.fast_forwards

let engine_of_context () =
  match Domain.DLS.get current with None -> raise Not_in_process | Some t -> t

let wait n =
  assert (n >= 0);
  let t = engine_of_context () in
  if n = 0 then () else Effect.perform (Wait (t, n))

let now_p () =
  let t = engine_of_context () in
  Effect.perform (Now_eff t)

let suspend register =
  let t = engine_of_context () in
  Effect.perform (Suspend (t, register))

let fork ~name fn =
  let t = engine_of_context () in
  Effect.perform (Fork (t, name, fn))

(* Fork every thunk as a child at the current time and park the caller
   until the last one finishes.  The children run in list order (the
   event queue is FIFO within a timestamp), so two callers passing the
   same thunks observe identical event interleavings — the property the
   accelerator model and the RTL evaluator rely on to stay
   cycle-identical. *)
let join_all ?(name = "join") = function
  | [] -> ()
  | [ f ] -> f ()
  | fns ->
    let remaining = ref (List.length fns) in
    let resumer = ref None in
    List.iter
      (fun f ->
        fork ~name (fun () ->
            f ();
            decr remaining;
            if !remaining = 0 then
              match !resumer with
              | Some resume -> resume ()
              | None -> ()))
      fns;
    if !remaining > 0 then suspend (fun r -> resumer := Some r)
