(** Memory-management unit attached to a hardware thread's memory port.

    Translation path:
    - TLB hit: 1 cycle, then the data access goes to the bus;
    - TLB miss, hardware walker enabled: a timed page-table walk
      refills the TLB;
    - TLB miss, software refill ([hw_walk = false]): the CPU services
      the miss — a fixed interrupt/handler penalty plus the walk;
    - page not present: a software page-fault penalty, then the demand-
      paging handler of the owning address space maps the page (or the
      access is a true fault and {!Mmu_fault} is raised).

    Each VM-enabled hardware thread gets its own MMU instance (its own
    TLB), all sharing the process page table — exactly the structure
    the wrapper hardware implements. *)

type config = {
  tlb : Tlb.config;
  hw_walk : bool; (** hardware walker vs software TLB refill *)
  tlb_hit_cycles : int; (** translation pipeline cost on a hit *)
  sw_refill_penalty : int; (** CPU handler cost for a SW TLB refill *)
  fault_penalty : int; (** CPU handler cost for a demand-page fault *)
  walk_cache_entries : int;
      (** walker's page-walk-cache slots; 0 disables (see {!Ptw.create}) *)
}

val default_config : config
(** 16-entry fully-associative LRU TLB, hardware walker, 1-cycle hits,
    600-cycle software refills, 3000-cycle page faults, no walk cache. *)

exception Mmu_fault of int
(** Access to an address the owning address space cannot repair. *)

type stats = {
  accesses : int;
  tlb_hits : int;
  tlb_misses : int;
  page_faults : int;
  walk_cycles : int; (** cycles spent walking/refilling/faulting *)
}

type t

val create :
  ?asid:int ->
  ?tlb2:Tlb2.t ->
  ?fastpath:bool ->
  config ->
  Vmht_mem.Bus.t ->
  Addr_space.t ->
  t
(** [asid] tags this thread's TLB entries (default 0); threads serving
    different address spaces must carry distinct ASIDs.  [tlb2] shares
    a second-level TLB with the other MMUs of the SoC: an L1 miss pays
    the L2 probe latency, a hit refills the L1 without walking, and a
    successful walk fills both levels.  [fastpath] (default [true])
    enables the L1 TLB's translation memo (see {!Tlb.create}). *)

val asid : t -> int

val translate : t -> vaddr:int -> int
(** Timed translation of a byte address to a physical address. *)

val load : t -> int -> int
(** Timed: translate + bus word read. *)

val store : t -> int -> int -> unit

val set_fault : t -> Vmht_fault.Injector.t -> unit
(** Attach a fault injector to this MMU and its walker.  Before each
    translation the injector may fire a TLB shootdown: a coin picks a
    full flush ([tlb_shootdown]) or a single random slot kill
    ([tlb_invalidate]); the walker additionally suffers per-level
    stalls and transient walk failures. *)

val set_observer : t -> Vmht_obs.Event.emitter -> unit
(** Observer for translation events: typed
    {!Vmht_obs.Event.kind.Tlb_hit} / [Tlb_miss] / [Ptw_walk] (duration
    = measured walk span, [levels] = page-table reads issued) /
    [Page_fault] (duration = the fault handler penalty) events. *)

val invalidate_tlb : t -> unit

val invalidate_page : t -> vaddr:int -> unit
(** Drop one translation (the per-page half of a TLB shootdown). *)

val invalidate_walk_cache : t -> unit

val invalidate_walk_cache_page : t -> vaddr:int -> unit
(** Drop the walker's memo for [vaddr]'s level-1 entry — required when
    the page (or its level-2 table) is unmapped, since freed table
    frames are reused. *)

val address_space : t -> Addr_space.t
(** The address space this MMU translates for. *)

val stats : t -> stats

val tlb_stats : t -> Tlb.stats
(** Counters of the MMU's private TLB (lookups, hits, evictions). *)

val tlb_memo_hits : t -> int
(** L1 lookups answered by the translation memo (see {!Tlb.memo_hits}). *)

val ptw_stats : t -> Ptw.stats
(** Counters of the MMU's walker (walks, level reads, failed walks). *)

val tlb_hit_rate : t -> float
