(** Hardware page-table walker.

    On a TLB miss the walker issues real bus reads for each page-table
    level (so walk latency includes DRAM and bus-contention effects),
    plus a fixed per-level state-machine overhead. *)

type t

type stats = { walks : int; level_reads : int; failed_walks : int }

val create :
  ?per_level_overhead:int -> Vmht_mem.Bus.t -> Page_table.t -> t
(** Default per-level overhead: 2 cycles. *)

val set_fault : t -> Vmht_fault.Injector.t -> unit
(** Attach a fault injector: per-level stalls ([walk_stall]) and
    transient walk failures with bounded retry ([walk_transient]). *)

val walk : t -> vaddr:int -> Page_table.entry option
(** Timed walk.  [None] means the translation is absent (page fault). *)

val stats : t -> stats
