(** Hardware page-table walker.

    On a TLB miss the walker issues real bus reads for each page-table
    level (so walk latency includes DRAM and bus-contention effects),
    plus a fixed per-level state-machine overhead. *)

type t

type stats = {
  walks : int;
  level_reads : int;
  failed_walks : int;
  walk_cache_hits : int;
  walk_cache_misses : int;
}

val create :
  ?per_level_overhead:int ->
  ?walk_cache_entries:int ->
  Vmht_mem.Bus.t ->
  Page_table.t ->
  t
(** Default per-level overhead: 2 cycles.  [walk_cache_entries] sizes a
    direct-mapped page-walk cache over level-1 entries; a hit skips the
    L1 bus read so a warm two-level walk issues one read instead of
    two.  Default 0 = disabled. *)

val set_fault : t -> Vmht_fault.Injector.t -> unit
(** Attach a fault injector: per-level stalls ([walk_stall]) and
    transient walk failures with bounded retry ([walk_transient]). *)

val walk : t -> vaddr:int -> Page_table.entry option
(** Timed walk.  [None] means the translation is absent (page fault). *)

val invalidate_walk_cache : t -> unit
(** Drop every memoized level-1 entry (full shootdown). *)

val invalidate_walk_cache_entry : t -> vaddr:int -> unit
(** Drop the memo covering [vaddr]'s level-1 entry, if present — part
    of an unmap shootdown, since the freed table frame may be reused. *)

val stats : t -> stats
