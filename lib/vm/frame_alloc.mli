(** Physical-frame allocator.

    Hands out page-sized frames from a region of physical memory, with
    a free list for returned frames.  Page-table pages and user pages
    share the pool, as they do in a real kernel. *)

type t

exception Out_of_frames

val create : base:int -> bytes:int -> page_bytes:int -> t
(** Manage [\[base, base + bytes)]; both must be multiples of
    [page_bytes]. *)

val alloc : t -> int
(** Physical address of a fresh (zeroed by the caller) frame.
    Raises {!Out_of_frames} when exhausted. *)

val free : t -> int -> unit
(** Return a frame to the pool.  Raises [Invalid_argument] if the
    address was not allocated by this allocator. *)

val allocated_count : t -> int

val capacity : t -> int
(** Total number of frames managed. *)
