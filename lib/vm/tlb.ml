type policy = Lru | Fifo

type config = { entries : int; assoc : int; policy : policy }

let default_config = { entries = 16; assoc = 0; policy = Lru }

type entry = { frame : int; writable : bool }

type stats = { lookups : int; hits : int; evictions : int }

type slot = {
  mutable valid : bool;
  mutable asid : int;
  mutable vpn : int;
  mutable data : entry;
  mutable stamp : int; (* recency for LRU, insertion order for FIFO *)
}

type t = {
  config : config;
  sets : slot array array;
  set_mask : int; (* n_sets - 1 when a power of two, else -1 (use mod) *)
  lru : bool; (* policy = Lru, hoisted out of the lookup path *)
  mutable clock : int;
  mutable lookups : int;
  mutable hits : int;
  mutable evictions : int;
  (* Translation memo: a direct-mapped vpn -> slot pointer cache in
     front of the associative scan.  A memo hit revalidates against the
     slot's own tags (valid/vpn/asid), so eviction, shootdown and unmap
     invalidate it implicitly — no hook can be missed — and it performs
     the identical lookup/clock/hit/stamp updates the scan would, so
     replacement behavior and stats are bit-for-bit unchanged. *)
  memo : slot array;
  memo_mask : int; (* -1 disables the memo *)
  mutable memo_hits : int;
}

let memo_size = 64

let invalid_slot =
  {
    valid = false;
    asid = 0;
    vpn = -1;
    data = { frame = 0; writable = false };
    stamp = 0;
  }

let create ?(memo = true) config =
  if config.entries <= 0 then invalid_arg "Tlb.create: no entries";
  if config.assoc < 0 then invalid_arg "Tlb.create: negative associativity";
  if config.assoc > 0 && config.entries mod config.assoc <> 0 then
    invalid_arg
      (Printf.sprintf
         "Tlb.create: %d entries do not divide into %d-way sets (capacity \
          would silently shrink to %d)"
         config.entries config.assoc
         (config.entries / config.assoc * config.assoc));
  let ways = if config.assoc = 0 then config.entries else config.assoc in
  let n_sets = config.entries / ways in
  {
    config;
    sets =
      Array.init n_sets (fun _ ->
          Array.init ways (fun _ ->
              {
                valid = false;
                asid = 0;
                vpn = -1;
                data = { frame = 0; writable = false };
                stamp = 0;
              }));
    set_mask = (if n_sets land (n_sets - 1) = 0 then n_sets - 1 else -1);
    lru = config.policy = Lru;
    clock = 0;
    lookups = 0;
    hits = 0;
    evictions = 0;
    memo = (if memo then Array.make memo_size invalid_slot else [||]);
    memo_mask = (if memo then memo_size - 1 else -1);
    memo_hits = 0;
  }

let set_of t vpn =
  if t.set_mask >= 0 then t.sets.(vpn land t.set_mask)
  else t.sets.(vpn mod Array.length t.sets)

(* Index of the matching valid slot in [slots], or -1. *)
let find_slot slots ~vpn ~asid =
  let n = Array.length slots in
  let rec go i =
    if i >= n then -1
    else
      let s = Array.unsafe_get slots i in
      if s.valid && s.vpn = vpn && s.asid = asid then i else go (i + 1)
  in
  go 0

(* Memo probe: the matching slot, or [invalid_slot] on a memo miss.
   At most one valid slot matches an (asid, vpn) pair ([insert] reuses
   a resident match), so a revalidated memo hit is the same slot the
   scan would find. *)
let memo_probe t ~vpn ~asid =
  if t.memo_mask < 0 then invalid_slot
  else
    let m = Array.unsafe_get t.memo (vpn land t.memo_mask) in
    if m.valid && m.vpn = vpn && m.asid = asid then m else invalid_slot

let memoize t s =
  if t.memo_mask >= 0 then Array.unsafe_set t.memo (s.vpn land t.memo_mask) s

let lookup ?(asid = 0) t ~vpn =
  t.lookups <- t.lookups + 1;
  t.clock <- t.clock + 1;
  let m = memo_probe t ~vpn ~asid in
  if m != invalid_slot then begin
    t.hits <- t.hits + 1;
    t.memo_hits <- t.memo_hits + 1;
    if t.lru then m.stamp <- t.clock;
    Some m.data
  end
  else
    let slots = set_of t vpn in
    let i = find_slot slots ~vpn ~asid in
    if i < 0 then None
    else begin
      t.hits <- t.hits + 1;
      let s = slots.(i) in
      if t.lru then s.stamp <- t.clock;
      memoize t s;
      Some s.data
    end

let lookup_frame ?(asid = 0) t ~vpn =
  t.lookups <- t.lookups + 1;
  t.clock <- t.clock + 1;
  let m = memo_probe t ~vpn ~asid in
  if m != invalid_slot then begin
    t.hits <- t.hits + 1;
    t.memo_hits <- t.memo_hits + 1;
    if t.lru then m.stamp <- t.clock;
    m.data.frame
  end
  else
    let slots = set_of t vpn in
    let i = find_slot slots ~vpn ~asid in
    if i < 0 then -1
    else begin
      t.hits <- t.hits + 1;
      let s = slots.(i) in
      if t.lru then s.stamp <- t.clock;
      memoize t s;
      s.data.frame
    end

let insert ?(asid = 0) t ~vpn entry =
  t.clock <- t.clock + 1;
  let slots = set_of t vpn in
  let n = Array.length slots in
  (* Reuse the slot if the page is already present; otherwise take an
     invalid slot, else evict the policy victim. *)
  let i = find_slot slots ~vpn ~asid in
  if i >= 0 then begin
    (* Refreshing a resident page only replaces the payload: under FIFO
       the slot keeps its original insertion stamp (a rewrite is not a
       re-arrival), under LRU the touch counts as a use. *)
    let slot = slots.(i) in
    slot.data <- entry;
    if t.lru then slot.stamp <- t.clock;
    memoize t slot
  end
  else begin
    let slot =
      let rec first_invalid i =
        if i >= n then -1
        else if not slots.(i).valid then i
        else first_invalid (i + 1)
      in
      let j = first_invalid 0 in
      if j >= 0 then slots.(j)
      else begin
        let victim = ref slots.(0) in
        for k = 1 to n - 1 do
          if slots.(k).stamp < !victim.stamp then victim := slots.(k)
        done;
        t.evictions <- t.evictions + 1;
        !victim
      end
    in
    slot.valid <- true;
    slot.asid <- asid;
    slot.vpn <- vpn;
    slot.data <- entry;
    slot.stamp <- t.clock;
    memoize t slot
  end

let invalidate ?(asid = 0) t ~vpn =
  Array.iter
    (fun s -> if s.valid && s.vpn = vpn && s.asid = asid then s.valid <- false)
    (set_of t vpn)

let invalidate_vpn t ~vpn =
  Array.iter
    (fun s -> if s.valid && s.vpn = vpn then s.valid <- false)
    (set_of t vpn)

let invalidate_asid t ~asid =
  Array.iter
    (fun set ->
      Array.iter (fun s -> if s.valid && s.asid = asid then s.valid <- false) set)
    t.sets

let invalidate_all t =
  Array.iter (fun set -> Array.iter (fun s -> s.valid <- false) set) t.sets

let invalidate_slot t ~n =
  let total =
    Array.length t.sets * Array.length t.sets.(0)
  in
  if total > 0 then begin
    let n = ((n mod total) + total) mod total in
    let ways = Array.length t.sets.(0) in
    t.sets.(n / ways).(n mod ways).valid <- false
  end

let slot_count t = Array.length t.sets * Array.length t.sets.(0)

let memo_hits t = t.memo_hits

let stats (t : t) : stats =
  { lookups = t.lookups; hits = t.hits; evictions = t.evictions }

let hit_rate t =
  if t.lookups = 0 then 0. else float_of_int t.hits /. float_of_int t.lookups

let occupancy t =
  Array.fold_left
    (fun acc set ->
      acc + Array.fold_left (fun a s -> if s.valid then a + 1 else a) 0 set)
    0 t.sets
