type policy = Lru | Fifo

type config = { entries : int; assoc : int; policy : policy }

let default_config = { entries = 16; assoc = 0; policy = Lru }

type entry = { frame : int; writable : bool }

type stats = { lookups : int; hits : int; evictions : int }

type slot = {
  mutable valid : bool;
  mutable asid : int;
  mutable vpn : int;
  mutable data : entry;
  mutable stamp : int; (* recency for LRU, insertion order for FIFO *)
}

type t = {
  config : config;
  sets : slot array array;
  mutable clock : int;
  mutable lookups : int;
  mutable hits : int;
  mutable evictions : int;
}

let create config =
  if config.entries <= 0 then invalid_arg "Tlb.create: no entries";
  let ways = if config.assoc = 0 then config.entries else config.assoc in
  let n_sets = max 1 (config.entries / ways) in
  {
    config;
    sets =
      Array.init n_sets (fun _ ->
          Array.init ways (fun _ ->
              {
                valid = false;
                asid = 0;
                vpn = -1;
                data = { frame = 0; writable = false };
                stamp = 0;
              }));
    clock = 0;
    lookups = 0;
    hits = 0;
    evictions = 0;
  }

let set_of t vpn = t.sets.(vpn mod Array.length t.sets)

let lookup ?(asid = 0) t ~vpn =
  t.lookups <- t.lookups + 1;
  t.clock <- t.clock + 1;
  let slots = set_of t vpn in
  let rec go i =
    if i >= Array.length slots then None
    else if slots.(i).valid && slots.(i).vpn = vpn && slots.(i).asid = asid
    then begin
      t.hits <- t.hits + 1;
      if t.config.policy = Lru then slots.(i).stamp <- t.clock;
      Some slots.(i).data
    end
    else go (i + 1)
  in
  go 0

let insert ?(asid = 0) t ~vpn entry =
  t.clock <- t.clock + 1;
  let slots = set_of t vpn in
  (* Reuse the slot if the page is already present; otherwise take an
     invalid slot, else evict the policy victim. *)
  let existing =
    Array.to_list slots
    |> List.find_opt (fun s -> s.valid && s.vpn = vpn && s.asid = asid)
  in
  let slot =
    match existing with
    | Some s -> s
    | None -> (
      match Array.to_list slots |> List.find_opt (fun s -> not s.valid) with
      | Some s -> s
      | None ->
        let victim =
          Array.fold_left
            (fun best s -> if s.stamp < best.stamp then s else best)
            slots.(0) slots
        in
        t.evictions <- t.evictions + 1;
        victim)
  in
  slot.valid <- true;
  slot.asid <- asid;
  slot.vpn <- vpn;
  slot.data <- entry;
  slot.stamp <- t.clock

let invalidate ?(asid = 0) t ~vpn =
  Array.iter
    (fun s -> if s.valid && s.vpn = vpn && s.asid = asid then s.valid <- false)
    (set_of t vpn)

let invalidate_asid t ~asid =
  Array.iter
    (fun set ->
      Array.iter (fun s -> if s.valid && s.asid = asid then s.valid <- false) set)
    t.sets

let invalidate_all t =
  Array.iter (fun set -> Array.iter (fun s -> s.valid <- false) set) t.sets

let stats (t : t) : stats =
  { lookups = t.lookups; hits = t.hits; evictions = t.evictions }

let hit_rate t =
  if t.lookups = 0 then 0. else float_of_int t.hits /. float_of_int t.lookups

let occupancy t =
  Array.fold_left
    (fun acc set ->
      acc + Array.fold_left (fun a s -> if s.valid then a + 1 else a) 0 set)
    0 t.sets
