(** Shared second-level TLB.

    A single instance per SoC sits between every MMU's private L1 TLB
    and the page-table walker: an L1 miss probes the L2 (the MMU charges
    [hit_cycles]) and only walks on an L2 miss, inserting the refilled
    translation into both levels on the way back.  Entries are
    ASID-tagged like the L1's, so threads of different address spaces
    share the capacity without sharing translations. *)

type config = {
  enabled : bool;  (** [false] = no L2; MMUs walk directly on L1 miss *)
  entries : int;
  assoc : int;  (** ways; 0 = fully associative *)
  policy : Tlb.policy;
  hit_cycles : int;  (** probe latency the MMU charges on every L2 access *)
}

val default_config : config
(** Disabled; when enabled: 128 entries, 4-way, LRU, 2-cycle probe. *)

type t

val create : ?memo:bool -> config -> t
(** Raises [Invalid_argument] on a non-divisible geometry (see
    {!Tlb.create}) or a negative [hit_cycles].  [memo] enables the
    underlying {!Tlb}'s translation memo (default on, see
    {!Tlb.create}). *)

val config : t -> config

val lookup : ?asid:int -> t -> vpn:int -> Tlb.entry option

val insert : ?asid:int -> t -> vpn:int -> Tlb.entry -> unit

val invalidate_vpn : t -> vpn:int -> unit
(** Shootdown for one page, conservatively across all ASIDs — the
    shared level cannot know which address spaces alias the frame. *)

val invalidate_asid : t -> asid:int -> unit

val invalidate_all : t -> unit

val stats : t -> Tlb.stats

val hit_rate : t -> float

val occupancy : t -> int
