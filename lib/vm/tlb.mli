(** Translation lookaside buffer model.

    Set-associative (or fully associative with [assoc = 0]) with LRU or
    FIFO replacement.  The TLB is pure bookkeeping — the MMU charges
    lookup latency and drives refills. *)

type policy = Lru | Fifo

type config = {
  entries : int; (** total entries; power of two *)
  assoc : int; (** ways; 0 = fully associative *)
  policy : policy;
}

val default_config : config
(** 16 entries, fully associative, LRU. *)

type entry = { frame : int; writable : bool }

type stats = { lookups : int; hits : int; evictions : int }

type t

val create : ?memo:bool -> config -> t
(** Raises [Invalid_argument] when [entries] is non-positive or does not
    divide evenly into [assoc]-way sets — a non-divisible geometry would
    otherwise silently round the capacity down.

    [memo] (default [true]) keeps a direct-mapped vpn -> slot pointer
    cache in front of the associative scan.  A memo hit revalidates
    against the slot's own tags, so shootdown, unmap and eviction
    invalidate it implicitly, and it performs the identical counter and
    recency updates — stats and replacement are bit-for-bit unchanged.
    The simulator's fast-path config turns it off for ablation. *)

val lookup : ?asid:int -> t -> vpn:int -> entry option
(** Updates recency and hit/miss counters.  Entries are tagged with an
    address-space id (default 0): a hit requires both the page number
    and the ASID to match, so one TLB can safely serve translations
    cached across context switches. *)

val lookup_frame : ?asid:int -> t -> vpn:int -> int
(** Allocation-free {!lookup} for the translate fast path: the hit's
    frame base, or [-1] on a miss (frames are always non-negative).
    Updates the same recency and hit/miss bookkeeping as {!lookup}. *)

val insert : ?asid:int -> t -> vpn:int -> entry -> unit
(** Insert after a refill, evicting per policy if the set is full. *)

val invalidate : ?asid:int -> t -> vpn:int -> unit

val invalidate_vpn : t -> vpn:int -> unit
(** Drop every entry for [vpn] regardless of ASID — the conservative
    shootdown a shared level uses when it cannot know which address
    spaces alias the page. *)

val invalidate_asid : t -> asid:int -> unit
(** Drop every entry of one address space (context teardown). *)

val invalidate_all : t -> unit

val invalidate_slot : t -> n:int -> unit
(** Drop the [n]-th physical slot (mod capacity), whatever it holds —
    the fault injector's single-entry invalidation.  A no-op when the
    slot is already empty. *)

val slot_count : t -> int
(** Number of physical slots actually built ([sets * ways]); the valid
    range for {!invalidate_slot}. *)

val memo_hits : t -> int
(** Lookups answered by the translation memo without an associative
    scan (a fast-path work measure; 0 when the memo is off). *)

val stats : t -> stats

val hit_rate : t -> float

val occupancy : t -> int
