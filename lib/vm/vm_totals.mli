(** Process-wide translation-hierarchy totals.

    Sums of shared-L2-TLB and page-walk-cache activity across every SoC
    run since the last {!reset}, accumulated atomically so the numbers
    are byte-identical at any domain-pool width.  [Soc.flush_vm_totals]
    feeds them; the bench manifest reports them. *)

type totals = {
  tlb2_lookups : int;
  tlb2_hits : int;
  tlb2_evictions : int;
  walk_cache_hits : int;
  walk_cache_misses : int;
}

val zero : totals

val sub : totals -> totals -> totals
(** Componentwise difference — used to turn cumulative SoC counters into
    flush deltas. *)

val add : totals -> unit
(** Add a delta to the process-wide sums. *)

val totals : unit -> totals

val reset : unit -> unit
