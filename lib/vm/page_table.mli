(** Two-level page table, resident in simulated physical memory.

    The table lives in {!Vmht_mem.Phys_mem} frames so that the hardware
    page-table walker's memory traffic is real: a walk reads one
    level-1 entry and one level-2 entry at the physical addresses
    {!walk_addrs} reports, over the same bus the data uses.

    Entry format (a 64-bit word):
    bit 0 = valid, bit 1 = writable; bits 12.. = frame base address
    (frame addresses are page-aligned so low bits are free for flags).
    A zero word is an invalid entry. *)

type t

type entry = { frame : int; writable : bool }

exception Already_mapped of int

val create :
  Vmht_mem.Phys_mem.t -> Frame_alloc.t -> page_shift:int -> va_bits:int -> t
(** [page_shift] = log2 of the page size (>= 6 so a level-2 table of
    512+ entries fits a page); [va_bits] bounds the virtual space. *)

val page_bytes : t -> int

val page_shift : t -> int

val root : t -> int
(** Physical address of the level-1 table (the "page-table base
    register" the MMU is programmed with). *)

val map : t -> vaddr:int -> frame:int -> writable:bool -> unit
(** Install a translation for the page containing [vaddr].  Allocates
    the level-2 table on demand.  Raises {!Already_mapped} if the page
    already has a valid entry. *)

val unmap : t -> vaddr:int -> unit
(** Clears the entry and returns the data frame to the allocator; once
    the page's level-2 table holds no more valid entries, the table
    frame is freed too and the level-1 entry cleared.  No-op if not
    mapped.  Callers owning TLBs or walk caches must shoot them down —
    freed frames are eligible for immediate reuse. *)

val lookup : t -> vaddr:int -> entry option
(** Untimed functional walk (what a TLB refill ultimately returns). *)

val walk_addrs : t -> vaddr:int -> int list
(** Physical addresses a hardware walker reads for [vaddr], in order.
    Always the L1 entry; the L2 entry only if L1 is valid. *)

val translate : t -> vaddr:int -> int option
(** Full virtual-to-physical translation of a byte address. *)

val mapped_pages : t -> int
