(* Process-wide translation-hierarchy totals.

   Each SoC flushes its L2-TLB and walk-cache counter deltas here when a
   run completes; the bench CLI reads the sums for its manifest.  Plain
   integer sums over atomics are order-independent, so the totals are
   identical at any domain-pool width. *)

type totals = {
  tlb2_lookups : int;
  tlb2_hits : int;
  tlb2_evictions : int;
  walk_cache_hits : int;
  walk_cache_misses : int;
}

let zero =
  {
    tlb2_lookups = 0;
    tlb2_hits = 0;
    tlb2_evictions = 0;
    walk_cache_hits = 0;
    walk_cache_misses = 0;
  }

let sub a b =
  {
    tlb2_lookups = a.tlb2_lookups - b.tlb2_lookups;
    tlb2_hits = a.tlb2_hits - b.tlb2_hits;
    tlb2_evictions = a.tlb2_evictions - b.tlb2_evictions;
    walk_cache_hits = a.walk_cache_hits - b.walk_cache_hits;
    walk_cache_misses = a.walk_cache_misses - b.walk_cache_misses;
  }

let lookups = Atomic.make 0
let hits = Atomic.make 0
let evictions = Atomic.make 0
let wc_hits = Atomic.make 0
let wc_misses = Atomic.make 0

let add d =
  if d <> zero then begin
    ignore (Atomic.fetch_and_add lookups d.tlb2_lookups);
    ignore (Atomic.fetch_and_add hits d.tlb2_hits);
    ignore (Atomic.fetch_and_add evictions d.tlb2_evictions);
    ignore (Atomic.fetch_and_add wc_hits d.walk_cache_hits);
    ignore (Atomic.fetch_and_add wc_misses d.walk_cache_misses)
  end

let totals () =
  {
    tlb2_lookups = Atomic.get lookups;
    tlb2_hits = Atomic.get hits;
    tlb2_evictions = Atomic.get evictions;
    walk_cache_hits = Atomic.get wc_hits;
    walk_cache_misses = Atomic.get wc_misses;
  }

let reset () =
  Atomic.set lookups 0;
  Atomic.set hits 0;
  Atomic.set evictions 0;
  Atomic.set wc_hits 0;
  Atomic.set wc_misses 0
