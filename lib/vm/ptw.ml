module Fi = Vmht_fault.Injector
module Fp = Vmht_fault.Plan

type stats = {
  walks : int;
  level_reads : int;
  failed_walks : int;
  walk_cache_hits : int;
  walk_cache_misses : int;
}

type t = {
  bus : Vmht_mem.Bus.t;
  pt : Page_table.t;
  per_level_overhead : int;
  (* Direct-mapped page-walk cache: memoizes which level-1 entries were
     recently seen valid, keyed (and tagged) by the L1 entry's physical
     address.  [-1] = empty slot; a zero-length array disables it. *)
  walk_cache : int array;
  mutable walks : int;
  mutable level_reads : int;
  mutable failed_walks : int;
  mutable walk_cache_hits : int;
  mutable walk_cache_misses : int;
  mutable fault : Fi.t option;
}

let create ?(per_level_overhead = 2) ?(walk_cache_entries = 0) bus pt =
  if walk_cache_entries < 0 then
    invalid_arg "Ptw.create: negative walk-cache size";
  {
    bus;
    pt;
    per_level_overhead;
    walk_cache = Array.make walk_cache_entries (-1);
    walks = 0;
    level_reads = 0;
    failed_walks = 0;
    walk_cache_hits = 0;
    walk_cache_misses = 0;
    fault = None;
  }

let wc_index t l1_addr =
  l1_addr / Vmht_mem.Phys_mem.word_bytes mod Array.length t.walk_cache

let set_fault t inj = t.fault <- Some inj

(* Issue the level reads over the bus for timing; the table decode
   itself is delegated to the functional page-table lookup, which
   reads the same physical words. *)
let read_levels t addrs =
  List.iter
    (fun addr ->
      Vmht_sim.Engine.wait t.per_level_overhead;
      (match t.fault with
      | Some inj when Fi.fires inj ~rate:(Fi.plan inj).Fp.walk_stall_rate ->
        let cycles = (Fi.plan inj).Fp.walk_stall_cycles in
        Vmht_sim.Engine.wait cycles;
        Fi.injected inj ~fault:"walk_stall" ~cycles
      | _ -> ());
      ignore (Vmht_mem.Bus.read_word t.bus addr);
      t.level_reads <- t.level_reads + 1)
    addrs

let walk t ~vaddr =
  t.walks <- t.walks + 1;
  (* A walk-cache hit on the level-1 entry skips its bus read: a warm
     two-level walk issues one read (the L2 entry) instead of two. *)
  let addrs =
    match Page_table.walk_addrs t.pt ~vaddr with
    | [ l1_addr; l2_addr ] when Array.length t.walk_cache > 0 ->
      let i = wc_index t l1_addr in
      if t.walk_cache.(i) = l1_addr then begin
        t.walk_cache_hits <- t.walk_cache_hits + 1;
        [ l2_addr ]
      end
      else begin
        t.walk_cache_misses <- t.walk_cache_misses + 1;
        t.walk_cache.(i) <- l1_addr;
        [ l1_addr; l2_addr ]
      end
    | (l1_addr :: _) as addrs when Array.length t.walk_cache > 0 ->
      (* Level-1 entry is invalid: a memo for it is stale — drop it. *)
      let i = wc_index t l1_addr in
      if t.walk_cache.(i) = l1_addr then t.walk_cache.(i) <- -1;
      addrs
    | addrs -> addrs
  in
  read_levels t addrs;
  (* A transient walk failure throws away the walk just issued: the
     walker stalls for the retry turnaround, re-reads every level, and
     tries again — at most [walk_retry_limit] rounds. *)
  (match t.fault with
  | Some inj ->
    let plan = Fi.plan inj in
    let rec transient attempt =
      if
        attempt <= plan.Fp.walk_retry_limit
        && Fi.fires inj ~rate:plan.Fp.walk_transient_rate
      then begin
        Vmht_sim.Engine.wait plan.Fp.walk_retry_cycles;
        Fi.retry inj ~fault:"walk_transient" ~attempt
          ~cycles:plan.Fp.walk_retry_cycles;
        read_levels t addrs;
        transient (attempt + 1)
      end
    in
    transient 1
  | None -> ());
  match Page_table.lookup t.pt ~vaddr with
  | Some entry -> Some entry
  | None ->
    t.failed_walks <- t.failed_walks + 1;
    None

let invalidate_walk_cache t =
  Array.fill t.walk_cache 0 (Array.length t.walk_cache) (-1)

let invalidate_walk_cache_entry t ~vaddr =
  if Array.length t.walk_cache > 0 then
    match Page_table.walk_addrs t.pt ~vaddr with
    | l1_addr :: _ ->
      let i = wc_index t l1_addr in
      if t.walk_cache.(i) = l1_addr then t.walk_cache.(i) <- -1
    | [] -> ()

let stats (t : t) : stats =
  {
    walks = t.walks;
    level_reads = t.level_reads;
    failed_walks = t.failed_walks;
    walk_cache_hits = t.walk_cache_hits;
    walk_cache_misses = t.walk_cache_misses;
  }
