module Fi = Vmht_fault.Injector
module Fp = Vmht_fault.Plan

type stats = { walks : int; level_reads : int; failed_walks : int }

type t = {
  bus : Vmht_mem.Bus.t;
  pt : Page_table.t;
  per_level_overhead : int;
  mutable walks : int;
  mutable level_reads : int;
  mutable failed_walks : int;
  mutable fault : Fi.t option;
}

let create ?(per_level_overhead = 2) bus pt =
  {
    bus;
    pt;
    per_level_overhead;
    walks = 0;
    level_reads = 0;
    failed_walks = 0;
    fault = None;
  }

let set_fault t inj = t.fault <- Some inj

(* Issue the level reads over the bus for timing; the table decode
   itself is delegated to the functional page-table lookup, which
   reads the same physical words. *)
let read_levels t addrs =
  List.iter
    (fun addr ->
      Vmht_sim.Engine.wait t.per_level_overhead;
      (match t.fault with
      | Some inj when Fi.fires inj ~rate:(Fi.plan inj).Fp.walk_stall_rate ->
        let cycles = (Fi.plan inj).Fp.walk_stall_cycles in
        Vmht_sim.Engine.wait cycles;
        Fi.injected inj ~fault:"walk_stall" ~cycles
      | _ -> ());
      ignore (Vmht_mem.Bus.read_word t.bus addr);
      t.level_reads <- t.level_reads + 1)
    addrs

let walk t ~vaddr =
  t.walks <- t.walks + 1;
  let addrs = Page_table.walk_addrs t.pt ~vaddr in
  read_levels t addrs;
  (* A transient walk failure throws away the walk just issued: the
     walker stalls for the retry turnaround, re-reads every level, and
     tries again — at most [walk_retry_limit] rounds. *)
  (match t.fault with
  | Some inj ->
    let plan = Fi.plan inj in
    let rec transient attempt =
      if
        attempt <= plan.Fp.walk_retry_limit
        && Fi.fires inj ~rate:plan.Fp.walk_transient_rate
      then begin
        Vmht_sim.Engine.wait plan.Fp.walk_retry_cycles;
        Fi.retry inj ~fault:"walk_transient" ~attempt
          ~cycles:plan.Fp.walk_retry_cycles;
        read_levels t addrs;
        transient (attempt + 1)
      end
    in
    transient 1
  | None -> ());
  match Page_table.lookup t.pt ~vaddr with
  | Some entry -> Some entry
  | None ->
    t.failed_walks <- t.failed_walks + 1;
    None

let stats (t : t) : stats =
  {
    walks = t.walks;
    level_reads = t.level_reads;
    failed_walks = t.failed_walks;
  }
