type stats = { walks : int; level_reads : int; failed_walks : int }

type t = {
  bus : Vmht_mem.Bus.t;
  pt : Page_table.t;
  per_level_overhead : int;
  mutable walks : int;
  mutable level_reads : int;
  mutable failed_walks : int;
}

let create ?(per_level_overhead = 2) bus pt =
  { bus; pt; per_level_overhead; walks = 0; level_reads = 0; failed_walks = 0 }

let walk t ~vaddr =
  t.walks <- t.walks + 1;
  (* Issue the level reads over the bus for timing; the table decode
     itself is delegated to the functional page-table lookup, which
     reads the same physical words. *)
  let addrs = Page_table.walk_addrs t.pt ~vaddr in
  List.iter
    (fun addr ->
      Vmht_sim.Engine.wait t.per_level_overhead;
      ignore (Vmht_mem.Bus.read_word t.bus addr);
      t.level_reads <- t.level_reads + 1)
    addrs;
  match Page_table.lookup t.pt ~vaddr with
  | Some entry -> Some entry
  | None ->
    t.failed_walks <- t.failed_walks + 1;
    None

let stats (t : t) : stats =
  {
    walks = t.walks;
    level_reads = t.level_reads;
    failed_walks = t.failed_walks;
  }
