(** A process's virtual address space.

    Owns a page table and a frame allocator and provides a heap
    allocator ([alloc]) plus untimed load/store for workload setup and
    result checking.  Regions can be allocated eagerly (pages mapped at
    allocation) or lazily (pages mapped on first touch by the demand-
    paging fault handler — the path the VM-enabled hardware thread
    exercises through the MMU).

    Virtual address 0 is never mapped, so kernels can use it as null. *)

type t

exception Segfault of int
(** Raised by untimed access to an unmapped, non-lazy address. *)

val create :
  Vmht_mem.Phys_mem.t ->
  Frame_alloc.t ->
  page_shift:int ->
  va_bits:int ->
  t

val page_table : t -> Page_table.t

val page_bytes : t -> int

val alloc : ?lazy_:bool -> t -> bytes:int -> int
(** Allocate a fresh page-aligned region and return its base virtual
    address.  Eager regions get frames immediately; lazy regions are
    registered but unmapped until faulted in. *)

val is_lazy_region : t -> int -> bool
(** Whether the address belongs to a lazy region (mapped or not). *)

val handle_fault : t -> vaddr:int -> bool
(** Demand-paging: if [vaddr] falls in a lazy region and is unmapped,
    map a zeroed frame and return [true]; otherwise [false] (a true
    segfault). *)

val translate : t -> int -> int option
(** Untimed translation (no faulting). *)

val load_word : t -> int -> int
(** Untimed access for setup/checking; faults lazy pages in silently. *)

val store_word : t -> int -> int -> unit

val mapped_pages : t -> int

val touched_lazy_pages : t -> int
(** Pages materialized through {!handle_fault} (or untimed access). *)
