module Engine = Vmht_sim.Engine
module Fi = Vmht_fault.Injector
module Fp = Vmht_fault.Plan

type config = {
  tlb : Tlb.config;
  hw_walk : bool;
  tlb_hit_cycles : int;
  sw_refill_penalty : int;
  fault_penalty : int;
  walk_cache_entries : int;
}

let default_config =
  {
    tlb = Tlb.default_config;
    hw_walk = true;
    (* TLB lookup overlaps the downstream access (virtually-indexed
       buffering), so a hit adds no dedicated cycle. *)
    tlb_hit_cycles = 0;
    sw_refill_penalty = 600;
    fault_penalty = 3000;
    walk_cache_entries = 0;
  }

exception Mmu_fault of int

type stats = {
  accesses : int;
  tlb_hits : int;
  tlb_misses : int;
  page_faults : int;
  walk_cycles : int;
}

type t = {
  config : config;
  asid : int;
  bus : Vmht_mem.Bus.t;
  aspace : Addr_space.t;
  tlb : Tlb.t;
  tlb2 : Tlb2.t option; (* SoC-shared second level, probed on L1 miss *)
  ptw : Ptw.t;
  page_shift : int; (* fixed at creation; cached off the page table *)
  page_mask : int;
  mutable accesses : int;
  mutable tlb_hits : int;
  mutable tlb_misses : int;
  mutable page_faults : int;
  mutable walk_cycles : int;
  mutable observer : Vmht_obs.Event.emitter option;
  mutable fault : Fi.t option;
}

let create ?(asid = 0) ?tlb2 ?(fastpath = true) config bus aspace =
  let page_shift = Page_table.page_shift (Addr_space.page_table aspace) in
  {
    config;
    asid;
    bus;
    aspace;
    tlb = Tlb.create ~memo:fastpath config.tlb;
    tlb2;
    ptw =
      Ptw.create ~walk_cache_entries:config.walk_cache_entries bus
        (Addr_space.page_table aspace);
    page_shift;
    page_mask = (1 lsl page_shift) - 1;
    accesses = 0;
    tlb_hits = 0;
    tlb_misses = 0;
    page_faults = 0;
    walk_cycles = 0;
    observer = None;
    fault = None;
  }

let asid t = t.asid

let set_fault t inj =
  t.fault <- Some inj;
  Ptw.set_fault t.ptw inj

let set_observer t f = t.observer <- Some f

let emit t ?duration kind =
  match t.observer with Some f -> f ?duration kind | None -> ()

let page_shift t = t.page_shift

(* Walk the page table (timed), servicing a demand-page fault if the
   address space can repair the miss.  Recursion terminates because a
   successful [handle_fault] installs the mapping. *)
let rec refill t ~vaddr =
  match probe_tlb2 t ~vaddr with
  | Some frame -> frame
  | None -> refill_walk t ~vaddr

(* On an L1 miss, probe the SoC-shared second-level TLB before paying
   for a walk; a hit refills the L1 directly.  The probe cost is
   charged either way — the L2 must answer before the walker starts. *)
and probe_tlb2 t ~vaddr =
  match t.tlb2 with
  | None -> None
  | Some l2 ->
    let hit_cycles = (Tlb2.config l2).Tlb2.hit_cycles in
    if hit_cycles > 0 then Engine.wait hit_cycles;
    let vpn = vaddr lsr t.page_shift in
    (match Tlb2.lookup ~asid:t.asid l2 ~vpn with
    | Some entry ->
      emit t ~duration:hit_cycles
        (Vmht_obs.Event.Tlb2_hit { vaddr; asid = t.asid });
      Tlb.insert ~asid:t.asid t.tlb ~vpn entry;
      Some entry.Tlb.frame
    | None ->
      emit t (Vmht_obs.Event.Tlb2_miss { vaddr; asid = t.asid });
      None)

and refill_walk t ~vaddr =
  let walk_start = Engine.now_p () in
  let reads_before = (Ptw.stats t.ptw).Ptw.level_reads in
  let entry =
    if t.config.hw_walk then Ptw.walk t.ptw ~vaddr
    else begin
      (* Software refill: trap to the CPU, which walks in software —
         charged as a fixed handler penalty plus the same table reads. *)
      Engine.wait t.config.sw_refill_penalty;
      Ptw.walk t.ptw ~vaddr
    end
  in
  emit t
    ~duration:(Engine.now_p () - walk_start)
    (Vmht_obs.Event.Ptw_walk
       { vaddr; levels = (Ptw.stats t.ptw).Ptw.level_reads - reads_before });
  match entry with
  | Some { Page_table.frame; writable } ->
    let vpn = vaddr lsr page_shift t in
    let data = { Tlb.frame; writable } in
    Tlb.insert ~asid:t.asid t.tlb ~vpn data;
    (match t.tlb2 with
    | Some l2 -> Tlb2.insert ~asid:t.asid l2 ~vpn data
    | None -> ());
    frame
  | None ->
    (* Page not present: software fault path (demand paging). *)
    t.page_faults <- t.page_faults + 1;
    Engine.wait t.config.fault_penalty;
    emit t ~duration:t.config.fault_penalty
      (Vmht_obs.Event.Page_fault { vaddr; asid = t.asid });
    if Addr_space.handle_fault t.aspace ~vaddr then refill t ~vaddr
    else raise (Mmu_fault vaddr)

(* The translate fast path: a TLB hit must not touch the event queue
   (no [Engine.wait 0] round-trip scheduling a continuation) and must
   not allocate (no option from the lookup, no event payload unless an
   observer is installed).  Nearly every simulated memory access of a
   VM-enabled thread comes through here. *)
(* TLB shootdowns arrive asynchronously (another core remapping a
   shared region); the injector models them as instantaneous entry
   kills whose cost shows up downstream as extra misses and walks. *)
let maybe_shootdown t inj =
  if Fi.fires inj ~rate:(Fi.plan inj).Fp.tlb_shootdown_rate then
    if Fi.coin inj then begin
      Tlb.invalidate_all t.tlb;
      Fi.injected inj ~fault:"tlb_shootdown" ~cycles:0
    end
    else begin
      (* Draw over the slots actually built, not the configured entry
         count — on set-associative geometries the two differ and a
         larger bound skews invalidation toward low slots. *)
      Tlb.invalidate_slot t.tlb ~n:(Fi.draw inj (Tlb.slot_count t.tlb));
      Fi.injected inj ~fault:"tlb_invalidate" ~cycles:0
    end

let translate t ~vaddr =
  t.accesses <- t.accesses + 1;
  (match t.fault with
  | Some inj -> maybe_shootdown t inj
  | None -> ());
  let hit_cycles = t.config.tlb_hit_cycles in
  if hit_cycles > 0 then Engine.wait hit_cycles;
  let vpn = vaddr lsr t.page_shift in
  let offset = vaddr land t.page_mask in
  let frame = Tlb.lookup_frame ~asid:t.asid t.tlb ~vpn in
  if frame >= 0 then begin
    t.tlb_hits <- t.tlb_hits + 1;
    (match t.observer with
     | None -> ()
     | Some f ->
       f ~duration:hit_cycles (Vmht_obs.Event.Tlb_hit { vaddr; asid = t.asid }));
    frame lor offset
  end
  else begin
    t.tlb_misses <- t.tlb_misses + 1;
    (match t.observer with
     | None -> ()
     | Some f -> f (Vmht_obs.Event.Tlb_miss { vaddr; asid = t.asid }));
    let before = Engine.now_p () in
    let frame = refill t ~vaddr in
    t.walk_cycles <- t.walk_cycles + (Engine.now_p () - before);
    frame lor offset
  end

let load t vaddr =
  let paddr = translate t ~vaddr in
  Vmht_mem.Bus.read_word t.bus paddr

let store t vaddr value =
  let paddr = translate t ~vaddr in
  Vmht_mem.Bus.write_word t.bus paddr value

let invalidate_tlb t = Tlb.invalidate_all t.tlb

let invalidate_page t ~vaddr =
  Tlb.invalidate ~asid:t.asid t.tlb ~vpn:(vaddr lsr page_shift t)

let invalidate_walk_cache t = Ptw.invalidate_walk_cache t.ptw

let invalidate_walk_cache_page t ~vaddr =
  Ptw.invalidate_walk_cache_entry t.ptw ~vaddr

let address_space t = t.aspace

let stats (t : t) : stats =
  {
    accesses = t.accesses;
    tlb_hits = t.tlb_hits;
    tlb_misses = t.tlb_misses;
    page_faults = t.page_faults;
    walk_cycles = t.walk_cycles;
  }

let tlb_stats t = Tlb.stats t.tlb

let tlb_memo_hits t = Tlb.memo_hits t.tlb

let ptw_stats t = Ptw.stats t.ptw

let tlb_hit_rate t =
  if t.accesses = 0 then 0.
  else float_of_int t.tlb_hits /. float_of_int t.accesses
