module Phys_mem = Vmht_mem.Phys_mem

type region = { base : int; bytes : int; lazy_ : bool }

type t = {
  mem : Phys_mem.t;
  frames : Frame_alloc.t;
  pt : Page_table.t;
  mutable regions : region list;
  mutable next_vaddr : int;
  mutable faulted_pages : int;
}

exception Segfault of int

let create mem frames ~page_shift ~va_bits =
  let pt = Page_table.create mem frames ~page_shift ~va_bits in
  {
    mem;
    frames;
    pt;
    regions = [];
    (* Skip page 0 so that address 0 stays null. *)
    next_vaddr = 1 lsl page_shift;
    faulted_pages = 0;
  }

let page_table t = t.pt

let page_bytes t = Page_table.page_bytes t.pt

let map_fresh_frame t vaddr =
  let frame = Frame_alloc.alloc t.frames in
  (* Zero the frame: allocators hand out recycled frames too. *)
  for i = 0 to (page_bytes t / Phys_mem.word_bytes) - 1 do
    Phys_mem.write t.mem (frame + (i * Phys_mem.word_bytes)) 0
  done;
  Page_table.map t.pt ~vaddr ~frame ~writable:true

let alloc ?(lazy_ = false) t ~bytes =
  if bytes <= 0 then invalid_arg "Addr_space.alloc: non-positive size";
  let page = page_bytes t in
  let base = t.next_vaddr in
  let len = Vmht_util.Bits.align_up bytes page in
  t.next_vaddr <- base + len;
  t.regions <- { base; bytes = len; lazy_ } :: t.regions;
  if not lazy_ then begin
    let rec map_pages va =
      if va < base + len then begin
        map_fresh_frame t va;
        map_pages (va + page)
      end
    in
    map_pages base
  end;
  base

let region_of t vaddr =
  List.find_opt
    (fun r -> vaddr >= r.base && vaddr < r.base + r.bytes)
    t.regions

let is_lazy_region t vaddr =
  match region_of t vaddr with Some r -> r.lazy_ | None -> false

let handle_fault t ~vaddr =
  match region_of t vaddr with
  | Some { lazy_ = true; _ }
    when Page_table.lookup t.pt ~vaddr = None ->
    map_fresh_frame t vaddr;
    t.faulted_pages <- t.faulted_pages + 1;
    true
  | Some _ | None -> false

let translate t vaddr = Page_table.translate t.pt ~vaddr

let resolve t vaddr =
  match translate t vaddr with
  | Some paddr -> paddr
  | None ->
    if handle_fault t ~vaddr then
      match translate t vaddr with
      | Some paddr -> paddr
      | None -> raise (Segfault vaddr)
    else raise (Segfault vaddr)

let load_word t vaddr = Phys_mem.read t.mem (resolve t vaddr)

let store_word t vaddr value = Phys_mem.write t.mem (resolve t vaddr) value

let mapped_pages t = Page_table.mapped_pages t.pt

let touched_lazy_pages t = t.faulted_pages
