module Phys_mem = Vmht_mem.Phys_mem

type t = {
  mem : Phys_mem.t;
  frames : Frame_alloc.t;
  page_shift : int;
  l1_bits : int;
  l2_bits : int;
  root : int;
  mutable mapped : int;
}

type entry = { frame : int; writable : bool }

exception Already_mapped of int

let valid_bit = 1

let writable_bit = 2


let create mem frames ~page_shift ~va_bits =
  if page_shift < 6 then invalid_arg "Page_table.create: page too small";
  let vpn_bits = va_bits - page_shift in
  if vpn_bits < 2 then invalid_arg "Page_table.create: va space too small";
  (* Split the VPN roughly in half; the level-2 table must fit in one
     page (2^l2_bits entries * 8 bytes <= page). *)
  let max_l2 = page_shift - 3 in
  let l2_bits = min max_l2 ((vpn_bits + 1) / 2) in
  let l1_bits = vpn_bits - l2_bits in
  if l1_bits + 3 > page_shift then
    invalid_arg "Page_table.create: level-1 table does not fit a page";
  let root = Frame_alloc.alloc frames in
  (* Fresh frames come zeroed from Phys_mem; entries are invalid. *)
  { mem; frames; page_shift; l1_bits; l2_bits; root; mapped = 0 }

let page_bytes t = 1 lsl t.page_shift

let page_shift t = t.page_shift

let root t = t.root

let vpn t vaddr = vaddr lsr t.page_shift

let l1_index t vaddr = vpn t vaddr lsr t.l2_bits

let l2_index t vaddr = vpn t vaddr land ((1 lsl t.l2_bits) - 1)

let l1_entry_addr t vaddr =
  let idx = l1_index t vaddr in
  if idx >= 1 lsl t.l1_bits then
    invalid_arg
      (Printf.sprintf "Page_table: virtual address 0x%x out of range" vaddr);
  t.root + (idx * Phys_mem.word_bytes)

(* Flags live in the low bits of an entry; frames are page-aligned, so
   the page-shift low bits are always free for them. *)
let decode t word =
  if word land valid_bit = 0 then None
  else
    Some
      {
        frame = (word lsr t.page_shift) lsl t.page_shift;
        writable = word land writable_bit <> 0;
      }

let encode t ~frame ~writable =
  assert (frame land ((1 lsl t.page_shift) - 1) = 0);
  frame lor valid_bit lor (if writable then writable_bit else 0)

let l2_table t vaddr =
  let l1_addr = l1_entry_addr t vaddr in
  match decode t (Phys_mem.read t.mem l1_addr) with
  | Some { frame; _ } -> Some frame
  | None -> None

let map t ~vaddr ~frame ~writable =
  let l1_addr = l1_entry_addr t vaddr in
  let table =
    match decode t (Phys_mem.read t.mem l1_addr) with
    | Some { frame = table; _ } -> table
    | None ->
      let table = Frame_alloc.alloc t.frames in
      (* Zero the new level-2 table. *)
      for i = 0 to (1 lsl t.l2_bits) - 1 do
        Phys_mem.write t.mem (table + (i * Phys_mem.word_bytes)) 0
      done;
      Phys_mem.write t.mem l1_addr (encode t ~frame:table ~writable:true);
      table
  in
  let entry_addr = table + (l2_index t vaddr * Phys_mem.word_bytes) in
  (match decode t (Phys_mem.read t.mem entry_addr) with
   | Some _ -> raise (Already_mapped vaddr)
   | None -> ());
  Phys_mem.write t.mem entry_addr (encode t ~frame ~writable);
  t.mapped <- t.mapped + 1

let unmap t ~vaddr =
  match l2_table t vaddr with
  | None -> ()
  | Some table ->
    let entry_addr = table + (l2_index t vaddr * Phys_mem.word_bytes) in
    (match decode t (Phys_mem.read t.mem entry_addr) with
     | Some { frame; _ } ->
       Phys_mem.write t.mem entry_addr 0;
       t.mapped <- t.mapped - 1;
       (* Return the data frame, and the level-2 table itself once its
          last entry is gone — otherwise map/unmap churn leaks physical
          memory until Out_of_frames. *)
       Frame_alloc.free t.frames frame;
       let entries = 1 lsl t.l2_bits in
       let rec empty i =
         i >= entries
         || Phys_mem.read t.mem (table + (i * Phys_mem.word_bytes)) = 0
            && empty (i + 1)
       in
       if empty 0 then begin
         Phys_mem.write t.mem (l1_entry_addr t vaddr) 0;
         Frame_alloc.free t.frames table
       end
     | None -> ())

let lookup t ~vaddr =
  match l2_table t vaddr with
  | None -> None
  | Some table ->
    decode t
      (Phys_mem.read t.mem (table + (l2_index t vaddr * Phys_mem.word_bytes)))

let walk_addrs t ~vaddr =
  let l1_addr = l1_entry_addr t vaddr in
  match l2_table t vaddr with
  | None -> [ l1_addr ]
  | Some table ->
    [ l1_addr; table + (l2_index t vaddr * Phys_mem.word_bytes) ]

let translate t ~vaddr =
  match lookup t ~vaddr with
  | None -> None
  | Some { frame; _ } -> Some (frame lor (vaddr land (page_bytes t - 1)))

let mapped_pages t = t.mapped
