type t = {
  base : int;
  bytes : int;
  page_bytes : int;
  mutable next : int;
  mutable free_list : int list;
  mutable allocated : int;
}

exception Out_of_frames

let create ~base ~bytes ~page_bytes =
  if base mod page_bytes <> 0 || bytes mod page_bytes <> 0 then
    invalid_arg "Frame_alloc.create: unaligned region";
  { base; bytes; page_bytes; next = base; free_list = []; allocated = 0 }

let alloc t =
  match t.free_list with
  | frame :: rest ->
    t.free_list <- rest;
    t.allocated <- t.allocated + 1;
    frame
  | [] ->
    if t.next + t.page_bytes > t.base + t.bytes then raise Out_of_frames;
    let frame = t.next in
    t.next <- t.next + t.page_bytes;
    t.allocated <- t.allocated + 1;
    frame

let free t frame =
  if
    frame < t.base || frame >= t.base + t.bytes
    || frame mod t.page_bytes <> 0
  then invalid_arg "Frame_alloc.free: bad frame";
  t.free_list <- frame :: t.free_list;
  t.allocated <- t.allocated - 1

let allocated_count t = t.allocated

let capacity t = t.bytes / t.page_bytes
