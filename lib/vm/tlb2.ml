(* Shared second-level TLB.

   One instance serves every MMU of a SoC: an L1 miss probes here before
   paying for a page-table walk, so translations warmed by one hardware
   thread are visible to all of them.  The structure itself is a plain
   [Tlb] — this module pins down the sharing semantics (entries tagged
   by ASID, shootdowns conservative across ASIDs) and carries the
   geometry + probe cost as configuration.  Timing is charged by the
   MMU, like the L1. *)

type config = {
  enabled : bool;
  entries : int;
  assoc : int;
  policy : Tlb.policy;
  hit_cycles : int;
}

let default_config =
  { enabled = false; entries = 128; assoc = 4; policy = Tlb.Lru; hit_cycles = 2 }

type t = { config : config; tlb : Tlb.t }

let create ?memo config =
  if config.hit_cycles < 0 then invalid_arg "Tlb2.create: negative hit cost";
  {
    config;
    tlb =
      Tlb.create ?memo
        {
          Tlb.entries = config.entries;
          assoc = config.assoc;
          policy = config.policy;
        };
  }

let config t = t.config
let lookup ?asid t ~vpn = Tlb.lookup ?asid t.tlb ~vpn
let insert ?asid t ~vpn entry = Tlb.insert ?asid t.tlb ~vpn entry

(* The shared level cannot assume the unmapping space is the only one
   holding the page, so shoot down the vpn under every ASID. *)
let invalidate_vpn t ~vpn = Tlb.invalidate_vpn t.tlb ~vpn
let invalidate_asid t ~asid = Tlb.invalidate_asid t.tlb ~asid
let invalidate_all t = Tlb.invalidate_all t.tlb
let stats t = Tlb.stats t.tlb
let hit_rate t = Tlb.hit_rate t.tlb
let occupancy t = Tlb.occupancy t.tlb
