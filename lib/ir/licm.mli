(** Loop-invariant code motion.

    Hoists pure, non-trapping instructions (everything except loads,
    stores, divisions and remainders) whose operands do not change
    inside a natural loop into a freshly created preheader.  In the
    non-SSA IR an instruction is hoistable only when

    - its destination is defined exactly once in the loop,
    - the destination is not live into the loop header (no first-
      iteration use of a pre-loop value), and
    - the destination is not live out of any loop exit (a zero-trip
      execution must not observe the hoisted write);

    operands must be constants, registers defined outside the loop, or
    results of instructions already hoisted from the same loop.

    The address arithmetic of row-major indexing ([i*n] inside a [k]
    loop) is the classic beneficiary: it saves a multiplier activation
    per iteration in the generated datapath. *)

val run : Ir.func -> int
(** Perform one LICM sweep over every natural loop; returns the number
    of hoisted instructions.  The function is modified in place and
    remains valid ([Ir.validate]). *)
