module Ast = Vmht_lang.Ast
module Ast_interp = Vmht_lang.Ast_interp

(* ------------------------------------------------------------------ *)
(* Constant folding                                                    *)
(* ------------------------------------------------------------------ *)

let fold_instr instr =
  match instr with
  | Ir.Bin (op, d, Ir.Imm a, Ir.Imm b) -> (
    match Ast_interp.eval_binop op a b with
    | v -> Some (Ir.Mov (d, Ir.Imm v))
    | exception Ast_interp.Eval_error _ -> None)
  | Ir.Un (op, d, Ir.Imm a) -> Some (Ir.Mov (d, Ir.Imm (Ast_interp.eval_unop op a)))
  (* Algebraic identities.  Only rewrites that are valid for all word
     values are applied. *)
  | Ir.Bin (Ast.Add, d, x, Ir.Imm 0) | Ir.Bin (Ast.Add, d, Ir.Imm 0, x) ->
    Some (Ir.Mov (d, x))
  | Ir.Bin (Ast.Sub, d, x, Ir.Imm 0) -> Some (Ir.Mov (d, x))
  | Ir.Bin (Ast.Mul, d, x, Ir.Imm 1) | Ir.Bin (Ast.Mul, d, Ir.Imm 1, x) ->
    Some (Ir.Mov (d, x))
  | Ir.Bin (Ast.Mul, d, _, Ir.Imm 0) | Ir.Bin (Ast.Mul, d, Ir.Imm 0, _) ->
    Some (Ir.Mov (d, Ir.Imm 0))
  | Ir.Bin (Ast.Mul, d, x, Ir.Imm n) when Vmht_util.Bits.is_pow2 n ->
    Some (Ir.Bin (Ast.Shl, d, x, Ir.Imm (Vmht_util.Bits.log2 n)))
  | Ir.Bin (Ast.Mul, d, Ir.Imm n, x) when Vmht_util.Bits.is_pow2 n ->
    Some (Ir.Bin (Ast.Shl, d, x, Ir.Imm (Vmht_util.Bits.log2 n)))
  | Ir.Bin (Ast.Div, d, x, Ir.Imm 1) -> Some (Ir.Mov (d, x))
  | Ir.Bin (Ast.And, d, _, Ir.Imm 0) | Ir.Bin (Ast.And, d, Ir.Imm 0, _) ->
    Some (Ir.Mov (d, Ir.Imm 0))
  | Ir.Bin (Ast.Or, d, x, Ir.Imm 0) | Ir.Bin (Ast.Or, d, Ir.Imm 0, x) ->
    Some (Ir.Mov (d, x))
  | Ir.Bin (Ast.Xor, d, x, Ir.Imm 0) | Ir.Bin (Ast.Xor, d, Ir.Imm 0, x) ->
    Some (Ir.Mov (d, x))
  | Ir.Bin ((Ast.Shl | Ast.Shr), d, x, Ir.Imm 0) -> Some (Ir.Mov (d, x))
  | Ir.Bin _ | Ir.Un _ | Ir.Mov _ | Ir.Load _ | Ir.Store _ -> None

let const_fold (f : Ir.func) =
  let changed = ref 0 in
  List.iter
    (fun (b : Ir.block) ->
      b.instrs <-
        List.map
          (fun i ->
            match fold_instr i with
            | Some i' when i' <> i ->
              incr changed;
              i'
            | Some _ | None -> i)
          b.instrs;
      match b.term with
      | Ir.Br (Ir.Imm c, l1, l2) ->
        incr changed;
        b.term <- Ir.Jmp (if c <> 0 then l1 else l2)
      | Ir.Br (_, l1, l2) when l1 = l2 ->
        incr changed;
        b.term <- Ir.Jmp l1
      | Ir.Br _ | Ir.Jmp _ | Ir.Ret _ -> ())
    f.blocks;
  !changed

(* ------------------------------------------------------------------ *)
(* Block-local copy/constant propagation                               *)
(* ------------------------------------------------------------------ *)

let copy_prop (f : Ir.func) =
  let changed = ref 0 in
  let subst map op =
    match op with
    | Ir.Reg r -> (
      match Hashtbl.find_opt map r with
      | Some replacement ->
        incr changed;
        replacement
      | None -> op)
    | Ir.Imm _ -> op
  in
  List.iter
    (fun (b : Ir.block) ->
      let map : (Ir.reg, Ir.operand) Hashtbl.t = Hashtbl.create 16 in
      (* Drop any mapping that mentions a redefined register. *)
      let invalidate d =
        Hashtbl.remove map d;
        let stale =
          Hashtbl.fold
            (fun r v acc -> if v = Ir.Reg d then r :: acc else acc)
            map []
        in
        List.iter (Hashtbl.remove map) stale
      in
      b.instrs <-
        List.map
          (fun instr ->
            let instr' =
              match instr with
              | Ir.Bin (op, d, a, c) -> Ir.Bin (op, d, subst map a, subst map c)
              | Ir.Un (op, d, a) -> Ir.Un (op, d, subst map a)
              | Ir.Mov (d, a) -> Ir.Mov (d, subst map a)
              | Ir.Load (d, a) -> Ir.Load (d, subst map a)
              | Ir.Store (a, v) -> Ir.Store (subst map a, subst map v)
            in
            (match Ir.def_of instr' with
             | Some d -> invalidate d
             | None -> ());
            (match instr' with
             | Ir.Mov (d, src) when src <> Ir.Reg d -> Hashtbl.replace map d src
             | Ir.Mov _ | Ir.Bin _ | Ir.Un _ | Ir.Load _ | Ir.Store _ -> ());
            instr')
          b.instrs;
      b.term <-
        (match b.term with
         | Ir.Br (c, l1, l2) -> Ir.Br (subst map c, l1, l2)
         | Ir.Ret (Some v) -> Ir.Ret (Some (subst map v))
         | (Ir.Ret None | Ir.Jmp _) as t -> t))
    f.blocks;
  !changed

(* ------------------------------------------------------------------ *)
(* Block-local common subexpression elimination                        *)
(* ------------------------------------------------------------------ *)

type cse_key =
  | Kbin of Ast.binop * Ir.operand * Ir.operand
  | Kun of Ast.unop * Ir.operand
  | Kload of Ir.operand

let commutative = function
  | Ast.Add | Ast.Mul | Ast.And | Ast.Or | Ast.Xor | Ast.Eq | Ast.Ne
  | Ast.Land | Ast.Lor ->
    true
  | Ast.Sub | Ast.Div | Ast.Rem | Ast.Shl | Ast.Shr | Ast.Lt | Ast.Le
  | Ast.Gt | Ast.Ge ->
    false

let canonical_key op a b =
  if commutative op && compare b a < 0 then Kbin (op, b, a) else Kbin (op, a, b)

let key_mentions r = function
  | Kbin (_, a, b) -> a = Ir.Reg r || b = Ir.Reg r
  | Kun (_, a) | Kload a -> a = Ir.Reg r

let cse (f : Ir.func) =
  let changed = ref 0 in
  List.iter
    (fun (b : Ir.block) ->
      let table : (cse_key, Ir.reg) Hashtbl.t = Hashtbl.create 16 in
      let invalidate_reg d =
        let stale =
          Hashtbl.fold
            (fun k v acc ->
              if v = d || key_mentions d k then k :: acc else acc)
            table []
        in
        List.iter (Hashtbl.remove table) stale
      in
      let invalidate_loads () =
        let stale =
          Hashtbl.fold
            (fun k _ acc ->
              match k with
              | Kload _ -> k :: acc
              | Kbin _ | Kun _ -> acc)
            table []
        in
        List.iter (Hashtbl.remove table) stale
      in
      b.instrs <-
        List.map
          (fun instr ->
            let key =
              match instr with
              | Ir.Bin (op, _, a, c) -> Some (canonical_key op a c)
              | Ir.Un (op, _, a) -> Some (Kun (op, a))
              | Ir.Load (_, a) -> Some (Kload a)
              | Ir.Mov _ | Ir.Store _ -> None
            in
            let instr' =
              match (key, Ir.def_of instr) with
              | Some k, Some d -> (
                match Hashtbl.find_opt table k with
                | Some prior ->
                  incr changed;
                  Ir.Mov (d, Ir.Reg prior)
                | None -> instr)
              | (Some _ | None), _ -> instr
            in
            (match Ir.def_of instr' with
             | Some d -> invalidate_reg d
             | None -> ());
            (match (instr', key) with
             | Ir.Mov _, _ -> ()
             | _, Some k -> (
               match Ir.def_of instr' with
               (* An instruction like [r = r + 1] must not be recorded:
                  its key refers to the pre-redefinition value of [r]. *)
               | Some d when not (key_mentions d k) ->
                 Hashtbl.replace table k d
               | Some _ | None -> ())
             | _, None -> ());
            (match instr' with
             | Ir.Store _ -> invalidate_loads ()
             | Ir.Bin _ | Ir.Un _ | Ir.Mov _ | Ir.Load _ -> ());
            instr')
          b.instrs)
    f.blocks;
  !changed

(* ------------------------------------------------------------------ *)
(* Dead code elimination                                               *)
(* ------------------------------------------------------------------ *)

let dce_once (f : Ir.func) =
  let info = Liveness.compute f in
  let removed = ref 0 in
  List.iter
    (fun (b : Ir.block) ->
      let after = Liveness.live_after_each info b in
      let keep = ref [] in
      List.iteri
        (fun i instr ->
          let dead =
            Ir.is_pure instr
            &&
            match Ir.def_of instr with
            | Some d -> not (Liveness.Regset.mem d after.(i))
            | None -> false
          in
          if dead then incr removed else keep := instr :: !keep)
        b.instrs;
      b.instrs <- List.rev !keep)
    f.blocks;
  !removed

let dce (f : Ir.func) =
  let total = ref 0 in
  let rec go () =
    let n = dce_once f in
    total := !total + n;
    if n > 0 then go ()
  in
  go ();
  !total

(* ------------------------------------------------------------------ *)
(* CFG simplification                                                  *)
(* ------------------------------------------------------------------ *)

let reachable (f : Ir.func) =
  let seen = Hashtbl.create 16 in
  let rec visit l =
    if not (Hashtbl.mem seen l) then begin
      Hashtbl.replace seen l ();
      List.iter visit (Ir.successors (Ir.find_block f l).term)
    end
  in
  visit (Ir.entry f).label;
  seen

let remove_unreachable (f : Ir.func) =
  let seen = reachable f in
  let before = List.length f.blocks in
  f.blocks <- List.filter (fun b -> Hashtbl.mem seen b.Ir.label) f.blocks;
  before - List.length f.blocks

(* Redirect edges through empty forwarding blocks (no instructions,
   unconditional jump). *)
let thread_jumps (f : Ir.func) =
  let forward = Hashtbl.create 8 in
  List.iter
    (fun (b : Ir.block) ->
      match (b.instrs, b.term) with
      | [], Ir.Jmp target when target <> b.label ->
        Hashtbl.replace forward b.label target
      | _, (Ir.Jmp _ | Ir.Br _ | Ir.Ret _) -> ())
    f.blocks;
  (* Resolve chains, guarding against forwarding cycles. *)
  let rec resolve seen l =
    match Hashtbl.find_opt forward l with
    | Some next when not (List.mem next seen) -> resolve (l :: seen) next
    | Some _ | None -> l
  in
  let changed = ref 0 in
  let redirect l =
    let l' = resolve [] l in
    if l' <> l then incr changed;
    l'
  in
  List.iter
    (fun (b : Ir.block) ->
      b.term <-
        (match b.term with
         | Ir.Jmp l -> Ir.Jmp (redirect l)
         | Ir.Br (c, l1, l2) -> Ir.Br (c, redirect l1, redirect l2)
         | Ir.Ret _ as t -> t))
    f.blocks;
  !changed

(* Merge [a -> b] when a ends in [Jmp b] and b's only predecessor is a. *)
let merge_chains (f : Ir.func) =
  let changed = ref 0 in
  let continue_merging = ref true in
  while !continue_merging do
    continue_merging := false;
    let preds = Ir.predecessors f in
    let entry_label = (Ir.entry f).Ir.label in
    let candidate =
      List.find_opt
        (fun (a : Ir.block) ->
          match a.term with
          | Ir.Jmp target ->
            target <> entry_label && target <> a.label
            && (match Hashtbl.find_opt preds target with
                | Some [ single ] -> single = a.label
                | Some _ | None -> false)
          | Ir.Br _ | Ir.Ret _ -> false)
        f.blocks
    in
    match candidate with
    | Some a ->
      let target =
        match a.term with Ir.Jmp t -> t | Ir.Br _ | Ir.Ret _ -> assert false
      in
      let b = Ir.find_block f target in
      a.instrs <- a.instrs @ b.instrs;
      a.term <- b.term;
      f.blocks <- List.filter (fun blk -> blk.Ir.label <> target) f.blocks;
      incr changed;
      continue_merging := true
    | None -> ()
  done;
  !changed

let simplify_cfg (f : Ir.func) =
  let c1 = thread_jumps f in
  let c2 = remove_unreachable f in
  let c3 = merge_chains f in
  c1 + c2 + c3


(* ------------------------------------------------------------------ *)
(* Store-to-load forwarding                                            *)
(* ------------------------------------------------------------------ *)

(* Block-local: remember, per address operand, the last value known to
   be in memory at that address (from a store, or from a prior load).
   A later load from the same operand becomes a [Mov].  Any store
   clobbers the whole table first — two syntactically different address
   operands may alias — and any redefinition drops entries that mention
   the redefined register on either side. *)
let store_forward (f : Ir.func) =
  let changed = ref 0 in
  List.iter
    (fun (b : Ir.block) ->
      let table : (Ir.operand, Ir.operand) Hashtbl.t = Hashtbl.create 16 in
      let invalidate d =
        let mentions = function
          | Ir.Reg r -> r = d
          | Ir.Imm _ -> false
        in
        let stale =
          Hashtbl.fold
            (fun a v acc -> if mentions a || mentions v then a :: acc else acc)
            table []
        in
        List.iter (Hashtbl.remove table) stale
      in
      b.instrs <-
        List.map
          (fun instr ->
            let instr' =
              match instr with
              | Ir.Load (d, a) -> (
                match Hashtbl.find_opt table a with
                | Some v when v <> Ir.Reg d ->
                  incr changed;
                  Ir.Mov (d, v)
                | Some _ | None -> instr)
              | Ir.Bin _ | Ir.Un _ | Ir.Mov _ | Ir.Store _ -> instr
            in
            (match Ir.def_of instr' with
             | Some d -> invalidate d
             | None -> ());
            (match instr' with
             | Ir.Store (a, v) ->
               Hashtbl.reset table;
               Hashtbl.replace table a v
             | Ir.Load (d, a) -> Hashtbl.replace table a (Ir.Reg d)
             | Ir.Bin _ | Ir.Un _ | Ir.Mov _ -> ());
            instr')
          b.instrs)
    f.blocks;
  !changed

(* ------------------------------------------------------------------ *)
(* Strength reduction / addressing-mode simplification                 *)
(* ------------------------------------------------------------------ *)

(* Collapse add/subtract-immediate chains so pointer-increment address
   arithmetic reads straight off the base pointer: with [s = base + k]
   known, [d = s + n] becomes [d = base + (k+n)].  Entries resolve to
   the chain root when recorded, so every rewrite jumps directly to the
   root and the pass converges in one application per chain. *)
let fold_offsets (f : Ir.func) =
  let changed = ref 0 in
  List.iter
    (fun (b : Ir.block) ->
      (* reg -> (base operand, constant offset) with reg = base + offset *)
      let table : (Ir.reg, Ir.operand * int) Hashtbl.t = Hashtbl.create 16 in
      let invalidate d =
        Hashtbl.remove table d;
        let stale =
          Hashtbl.fold
            (fun r (base, _) acc -> if base = Ir.Reg d then r :: acc else acc)
            table []
        in
        List.iter (Hashtbl.remove table) stale
      in
      b.instrs <-
        List.map
          (fun instr ->
            let base_offset = function
              | Ir.Reg s -> (
                match Hashtbl.find_opt table s with
                | Some entry -> Some entry
                | None -> Some (Ir.Reg s, 0))
              | Ir.Imm _ -> None
            in
            let instr' =
              match instr with
              | Ir.Bin (Vmht_lang.Ast.Add, d, Ir.Reg s, Ir.Imm n)
              | Ir.Bin (Vmht_lang.Ast.Add, d, Ir.Imm n, Ir.Reg s) -> (
                match Hashtbl.find_opt table s with
                | Some (base, k) ->
                  incr changed;
                  Ir.Bin (Vmht_lang.Ast.Add, d, base, Ir.Imm (k + n))
                | None -> instr)
              | Ir.Bin (Vmht_lang.Ast.Sub, d, Ir.Reg s, Ir.Imm n) -> (
                match Hashtbl.find_opt table s with
                | Some (base, k) ->
                  incr changed;
                  Ir.Bin (Vmht_lang.Ast.Sub, d, base, Ir.Imm (n - k))
                | None -> instr)
              | Ir.Bin _ | Ir.Un _ | Ir.Mov _ | Ir.Load _ | Ir.Store _ ->
                instr
            in
            (match Ir.def_of instr' with
             | Some d -> invalidate d
             | None -> ());
            (match instr' with
             | Ir.Bin (Vmht_lang.Ast.Add, d, a, Ir.Imm n)
             | Ir.Bin (Vmht_lang.Ast.Add, d, Ir.Imm n, a) -> (
               match base_offset a with
               (* [d = d + n] must not be recorded: the base refers to
                  the pre-redefinition value of [d]. *)
               | Some (base, k) when base <> Ir.Reg d ->
                 Hashtbl.replace table d (base, k + n)
               | Some _ | None -> ())
             | Ir.Bin (Vmht_lang.Ast.Sub, d, a, Ir.Imm n) -> (
               match base_offset a with
               | Some (base, k) when base <> Ir.Reg d ->
                 Hashtbl.replace table d (base, k - n)
               | Some _ | None -> ())
             | Ir.Bin _ | Ir.Un _ | Ir.Mov _ | Ir.Load _ | Ir.Store _ -> ());
            instr')
          b.instrs)
    f.blocks;
  !changed

(* Multiplications by [2^k +- 1] become a shift plus an add/sub; the
   power-of-two case is already handled by {!const_fold}. *)
let shift_add_constant n =
  if n < 3 then None
  else
    let k = Vmht_util.Bits.log2 n in
    if n = (1 lsl k) + 1 then Some (k, Ast.Add)
    else if k + 1 <= 62 && n = (1 lsl (k + 1)) - 1 then Some (k + 1, Ast.Sub)
    else None

let reduce_muls (f : Ir.func) =
  let changed = ref 0 in
  List.iter
    (fun (b : Ir.block) ->
      b.instrs <-
        List.concat_map
          (fun instr ->
            match instr with
            | Ir.Bin (Ast.Mul, d, x, Ir.Imm n)
            | Ir.Bin (Ast.Mul, d, Ir.Imm n, x) -> (
              match shift_add_constant n with
              | Some (k, op) ->
                incr changed;
                let t = Ir.fresh_reg f in
                [
                  Ir.Bin (Ast.Shl, t, x, Ir.Imm k);
                  Ir.Bin (op, d, Ir.Reg t, x);
                ]
              | None -> [ instr ])
            | Ir.Bin _ | Ir.Un _ | Ir.Mov _ | Ir.Load _ | Ir.Store _ ->
              [ instr ])
          b.instrs)
    f.blocks;
  !changed

let strength_reduce (f : Ir.func) = fold_offsets f + reduce_muls f

(* ------------------------------------------------------------------ *)
(* Copy coalescing                                                     *)
(* ------------------------------------------------------------------ *)

(* Rewrite [t = op ...; d = t] (adjacent, t dead afterwards) so the
   operation defines [d] directly.  Loop bodies lower every mutable
   variable through such a temporary ([s = s + x] becomes [t = s + x;
   s = t]), so each coalesced pair removes one datapath operation per
   iteration — on a latency-bound pointer chase, the only fat there
   is. *)
let with_def instr d =
  match instr with
  | Ir.Bin (op, _, a, c) -> Ir.Bin (op, d, a, c)
  | Ir.Un (op, _, a) -> Ir.Un (op, d, a)
  | Ir.Mov (_, a) -> Ir.Mov (d, a)
  | Ir.Load (_, a) -> Ir.Load (d, a)
  | Ir.Store _ -> invalid_arg "with_def: Store defines nothing"

let coalesce (f : Ir.func) =
  let changed = ref 0 in
  let info = Liveness.compute f in
  List.iter
    (fun (b : Ir.block) ->
      (* Cross-block liveness of [b] is unaffected by the rewrites (the
         pair defines [d] in [b] either way and [t] never escapes), so
         [live_out] stays valid while the block mutates. *)
      let live_out = Liveness.live_out info b.Ir.label in
      let used_after rest t =
        List.exists (fun i -> List.mem t (Ir.uses_of i)) rest
        || List.mem t (Ir.term_uses b.term)
        || Liveness.Regset.mem t live_out
      in
      let rec rewrite = function
        | instr :: Ir.Mov (d, Ir.Reg t) :: rest
          when Ir.def_of instr = Some t && t <> d && not (used_after rest t)
          ->
          incr changed;
          rewrite (with_def instr d :: rest)
        | instr :: rest -> instr :: rewrite rest
        | [] -> []
      in
      b.instrs <- rewrite b.instrs)
    f.blocks;
  !changed

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let licm = Licm.run

let registered = ref false

let register_builtins () =
  if not !registered then begin
    registered := true;
    List.iter Pass.register
      [
        {
          Pass.name = "const_fold";
          doc =
            "fold constant operations, algebraic identities, and \
             constant branches";
          kind = Pass.Scalar;
          run = const_fold;
        };
        {
          Pass.name = "copy_prop";
          doc = "propagate Mov sources into later uses (block-local)";
          kind = Pass.Scalar;
          run = copy_prop;
        };
        {
          Pass.name = "cse";
          doc =
            "share repeated pure computations and repeated loads \
             (block-local value numbering)";
          kind = Pass.Scalar;
          run = cse;
        };
        {
          Pass.name = "store_forward";
          doc =
            "forward stored values to later loads from the same \
             address, skipping the memory port";
          kind = Pass.Memory;
          run = store_forward;
        };
        {
          Pass.name = "strength_reduce";
          doc =
            "collapse add-immediate address chains; multiply by 2^k+-1 \
             via shift and add/sub";
          kind = Pass.Memory;
          run = strength_reduce;
        };
        {
          Pass.name = "licm";
          doc = "hoist loop-invariant computations into a preheader";
          kind = Pass.Loop;
          run = licm;
        };
        {
          Pass.name = "coalesce";
          doc =
            "fold [t = op; d = t] pairs so the operation writes its destination directly";
          kind = Pass.Cleanup;
          run = coalesce;
        };
        {
          Pass.name = "dce";
          doc = "delete pure instructions whose results are never used";
          kind = Pass.Cleanup;
          run = dce;
        };
        {
          Pass.name = "simplify_cfg";
          doc =
            "thread trivial jumps, drop unreachable blocks, merge \
             single-predecessor chains";
          kind = Pass.Cfg;
          run = simplify_cfg;
        };
      ]
  end
