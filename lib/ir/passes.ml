module Ast = Vmht_lang.Ast
module Ast_interp = Vmht_lang.Ast_interp

(* ------------------------------------------------------------------ *)
(* Constant folding                                                    *)
(* ------------------------------------------------------------------ *)

let fold_instr instr =
  match instr with
  | Ir.Bin (op, d, Ir.Imm a, Ir.Imm b) -> (
    match Ast_interp.eval_binop op a b with
    | v -> Some (Ir.Mov (d, Ir.Imm v))
    | exception Ast_interp.Eval_error _ -> None)
  | Ir.Un (op, d, Ir.Imm a) -> Some (Ir.Mov (d, Ir.Imm (Ast_interp.eval_unop op a)))
  (* Algebraic identities.  Only rewrites that are valid for all word
     values are applied. *)
  | Ir.Bin (Ast.Add, d, x, Ir.Imm 0) | Ir.Bin (Ast.Add, d, Ir.Imm 0, x) ->
    Some (Ir.Mov (d, x))
  | Ir.Bin (Ast.Sub, d, x, Ir.Imm 0) -> Some (Ir.Mov (d, x))
  | Ir.Bin (Ast.Mul, d, x, Ir.Imm 1) | Ir.Bin (Ast.Mul, d, Ir.Imm 1, x) ->
    Some (Ir.Mov (d, x))
  | Ir.Bin (Ast.Mul, d, _, Ir.Imm 0) | Ir.Bin (Ast.Mul, d, Ir.Imm 0, _) ->
    Some (Ir.Mov (d, Ir.Imm 0))
  | Ir.Bin (Ast.Mul, d, x, Ir.Imm n) when Vmht_util.Bits.is_pow2 n ->
    Some (Ir.Bin (Ast.Shl, d, x, Ir.Imm (Vmht_util.Bits.log2 n)))
  | Ir.Bin (Ast.Mul, d, Ir.Imm n, x) when Vmht_util.Bits.is_pow2 n ->
    Some (Ir.Bin (Ast.Shl, d, x, Ir.Imm (Vmht_util.Bits.log2 n)))
  | Ir.Bin (Ast.Div, d, x, Ir.Imm 1) -> Some (Ir.Mov (d, x))
  | Ir.Bin (Ast.And, d, _, Ir.Imm 0) | Ir.Bin (Ast.And, d, Ir.Imm 0, _) ->
    Some (Ir.Mov (d, Ir.Imm 0))
  | Ir.Bin (Ast.Or, d, x, Ir.Imm 0) | Ir.Bin (Ast.Or, d, Ir.Imm 0, x) ->
    Some (Ir.Mov (d, x))
  | Ir.Bin (Ast.Xor, d, x, Ir.Imm 0) | Ir.Bin (Ast.Xor, d, Ir.Imm 0, x) ->
    Some (Ir.Mov (d, x))
  | Ir.Bin ((Ast.Shl | Ast.Shr), d, x, Ir.Imm 0) -> Some (Ir.Mov (d, x))
  | Ir.Bin _ | Ir.Un _ | Ir.Mov _ | Ir.Load _ | Ir.Store _ -> None

let const_fold (f : Ir.func) =
  let changed = ref 0 in
  List.iter
    (fun (b : Ir.block) ->
      b.instrs <-
        List.map
          (fun i ->
            match fold_instr i with
            | Some i' when i' <> i ->
              incr changed;
              i'
            | Some _ | None -> i)
          b.instrs;
      match b.term with
      | Ir.Br (Ir.Imm c, l1, l2) ->
        incr changed;
        b.term <- Ir.Jmp (if c <> 0 then l1 else l2)
      | Ir.Br (_, l1, l2) when l1 = l2 ->
        incr changed;
        b.term <- Ir.Jmp l1
      | Ir.Br _ | Ir.Jmp _ | Ir.Ret _ -> ())
    f.blocks;
  !changed

(* ------------------------------------------------------------------ *)
(* Block-local copy/constant propagation                               *)
(* ------------------------------------------------------------------ *)

let copy_prop (f : Ir.func) =
  let changed = ref 0 in
  let subst map op =
    match op with
    | Ir.Reg r -> (
      match Hashtbl.find_opt map r with
      | Some replacement ->
        incr changed;
        replacement
      | None -> op)
    | Ir.Imm _ -> op
  in
  List.iter
    (fun (b : Ir.block) ->
      let map : (Ir.reg, Ir.operand) Hashtbl.t = Hashtbl.create 16 in
      (* Drop any mapping that mentions a redefined register. *)
      let invalidate d =
        Hashtbl.remove map d;
        let stale =
          Hashtbl.fold
            (fun r v acc -> if v = Ir.Reg d then r :: acc else acc)
            map []
        in
        List.iter (Hashtbl.remove map) stale
      in
      b.instrs <-
        List.map
          (fun instr ->
            let instr' =
              match instr with
              | Ir.Bin (op, d, a, c) -> Ir.Bin (op, d, subst map a, subst map c)
              | Ir.Un (op, d, a) -> Ir.Un (op, d, subst map a)
              | Ir.Mov (d, a) -> Ir.Mov (d, subst map a)
              | Ir.Load (d, a) -> Ir.Load (d, subst map a)
              | Ir.Store (a, v) -> Ir.Store (subst map a, subst map v)
            in
            (match Ir.def_of instr' with
             | Some d -> invalidate d
             | None -> ());
            (match instr' with
             | Ir.Mov (d, src) when src <> Ir.Reg d -> Hashtbl.replace map d src
             | Ir.Mov _ | Ir.Bin _ | Ir.Un _ | Ir.Load _ | Ir.Store _ -> ());
            instr')
          b.instrs;
      b.term <-
        (match b.term with
         | Ir.Br (c, l1, l2) -> Ir.Br (subst map c, l1, l2)
         | Ir.Ret (Some v) -> Ir.Ret (Some (subst map v))
         | (Ir.Ret None | Ir.Jmp _) as t -> t))
    f.blocks;
  !changed

(* ------------------------------------------------------------------ *)
(* Block-local common subexpression elimination                        *)
(* ------------------------------------------------------------------ *)

type cse_key =
  | Kbin of Ast.binop * Ir.operand * Ir.operand
  | Kun of Ast.unop * Ir.operand
  | Kload of Ir.operand

let commutative = function
  | Ast.Add | Ast.Mul | Ast.And | Ast.Or | Ast.Xor | Ast.Eq | Ast.Ne
  | Ast.Land | Ast.Lor ->
    true
  | Ast.Sub | Ast.Div | Ast.Rem | Ast.Shl | Ast.Shr | Ast.Lt | Ast.Le
  | Ast.Gt | Ast.Ge ->
    false

let canonical_key op a b =
  if commutative op && compare b a < 0 then Kbin (op, b, a) else Kbin (op, a, b)

let key_mentions r = function
  | Kbin (_, a, b) -> a = Ir.Reg r || b = Ir.Reg r
  | Kun (_, a) | Kload a -> a = Ir.Reg r

let cse (f : Ir.func) =
  let changed = ref 0 in
  List.iter
    (fun (b : Ir.block) ->
      let table : (cse_key, Ir.reg) Hashtbl.t = Hashtbl.create 16 in
      let invalidate_reg d =
        let stale =
          Hashtbl.fold
            (fun k v acc ->
              if v = d || key_mentions d k then k :: acc else acc)
            table []
        in
        List.iter (Hashtbl.remove table) stale
      in
      let invalidate_loads () =
        let stale =
          Hashtbl.fold
            (fun k _ acc ->
              match k with
              | Kload _ -> k :: acc
              | Kbin _ | Kun _ -> acc)
            table []
        in
        List.iter (Hashtbl.remove table) stale
      in
      b.instrs <-
        List.map
          (fun instr ->
            let key =
              match instr with
              | Ir.Bin (op, _, a, c) -> Some (canonical_key op a c)
              | Ir.Un (op, _, a) -> Some (Kun (op, a))
              | Ir.Load (_, a) -> Some (Kload a)
              | Ir.Mov _ | Ir.Store _ -> None
            in
            let instr' =
              match (key, Ir.def_of instr) with
              | Some k, Some d -> (
                match Hashtbl.find_opt table k with
                | Some prior ->
                  incr changed;
                  Ir.Mov (d, Ir.Reg prior)
                | None -> instr)
              | (Some _ | None), _ -> instr
            in
            (match Ir.def_of instr' with
             | Some d -> invalidate_reg d
             | None -> ());
            (match (instr', key) with
             | Ir.Mov _, _ -> ()
             | _, Some k -> (
               match Ir.def_of instr' with
               (* An instruction like [r = r + 1] must not be recorded:
                  its key refers to the pre-redefinition value of [r]. *)
               | Some d when not (key_mentions d k) ->
                 Hashtbl.replace table k d
               | Some _ | None -> ())
             | _, None -> ());
            (match instr' with
             | Ir.Store _ -> invalidate_loads ()
             | Ir.Bin _ | Ir.Un _ | Ir.Mov _ | Ir.Load _ -> ());
            instr')
          b.instrs)
    f.blocks;
  !changed

(* ------------------------------------------------------------------ *)
(* Dead code elimination                                               *)
(* ------------------------------------------------------------------ *)

let dce_once (f : Ir.func) =
  let info = Liveness.compute f in
  let removed = ref 0 in
  List.iter
    (fun (b : Ir.block) ->
      let after = Liveness.live_after_each info b in
      let keep = ref [] in
      List.iteri
        (fun i instr ->
          let dead =
            Ir.is_pure instr
            &&
            match Ir.def_of instr with
            | Some d -> not (Liveness.Regset.mem d after.(i))
            | None -> false
          in
          if dead then incr removed else keep := instr :: !keep)
        b.instrs;
      b.instrs <- List.rev !keep)
    f.blocks;
  !removed

let dce (f : Ir.func) =
  let total = ref 0 in
  let rec go () =
    let n = dce_once f in
    total := !total + n;
    if n > 0 then go ()
  in
  go ();
  !total

(* ------------------------------------------------------------------ *)
(* CFG simplification                                                  *)
(* ------------------------------------------------------------------ *)

let reachable (f : Ir.func) =
  let seen = Hashtbl.create 16 in
  let rec visit l =
    if not (Hashtbl.mem seen l) then begin
      Hashtbl.replace seen l ();
      List.iter visit (Ir.successors (Ir.find_block f l).term)
    end
  in
  visit (Ir.entry f).label;
  seen

let remove_unreachable (f : Ir.func) =
  let seen = reachable f in
  let before = List.length f.blocks in
  f.blocks <- List.filter (fun b -> Hashtbl.mem seen b.Ir.label) f.blocks;
  before - List.length f.blocks

(* Redirect edges through empty forwarding blocks (no instructions,
   unconditional jump). *)
let thread_jumps (f : Ir.func) =
  let forward = Hashtbl.create 8 in
  List.iter
    (fun (b : Ir.block) ->
      match (b.instrs, b.term) with
      | [], Ir.Jmp target when target <> b.label ->
        Hashtbl.replace forward b.label target
      | _, (Ir.Jmp _ | Ir.Br _ | Ir.Ret _) -> ())
    f.blocks;
  (* Resolve chains, guarding against forwarding cycles. *)
  let rec resolve seen l =
    match Hashtbl.find_opt forward l with
    | Some next when not (List.mem next seen) -> resolve (l :: seen) next
    | Some _ | None -> l
  in
  let changed = ref 0 in
  let redirect l =
    let l' = resolve [] l in
    if l' <> l then incr changed;
    l'
  in
  List.iter
    (fun (b : Ir.block) ->
      b.term <-
        (match b.term with
         | Ir.Jmp l -> Ir.Jmp (redirect l)
         | Ir.Br (c, l1, l2) -> Ir.Br (c, redirect l1, redirect l2)
         | Ir.Ret _ as t -> t))
    f.blocks;
  !changed

(* Merge [a -> b] when a ends in [Jmp b] and b's only predecessor is a. *)
let merge_chains (f : Ir.func) =
  let changed = ref 0 in
  let continue_merging = ref true in
  while !continue_merging do
    continue_merging := false;
    let preds = Ir.predecessors f in
    let entry_label = (Ir.entry f).Ir.label in
    let candidate =
      List.find_opt
        (fun (a : Ir.block) ->
          match a.term with
          | Ir.Jmp target ->
            target <> entry_label && target <> a.label
            && (match Hashtbl.find_opt preds target with
                | Some [ single ] -> single = a.label
                | Some _ | None -> false)
          | Ir.Br _ | Ir.Ret _ -> false)
        f.blocks
    in
    match candidate with
    | Some a ->
      let target =
        match a.term with Ir.Jmp t -> t | Ir.Br _ | Ir.Ret _ -> assert false
      in
      let b = Ir.find_block f target in
      a.instrs <- a.instrs @ b.instrs;
      a.term <- b.term;
      f.blocks <- List.filter (fun blk -> blk.Ir.label <> target) f.blocks;
      incr changed;
      continue_merging := true
    | None -> ()
  done;
  !changed

let simplify_cfg (f : Ir.func) =
  let c1 = thread_jumps f in
  let c2 = remove_unreachable f in
  let c3 = merge_chains f in
  c1 + c2 + c3

(* ------------------------------------------------------------------ *)
(* Pipeline                                                            *)
(* ------------------------------------------------------------------ *)

let licm = Licm.run

type pipeline_report = {
  iterations : int;
  folds : int;
  copies : int;
  cses : int;
  licms : int;
  dces : int;
  cfg_simplifications : int;
  instrs_before : int;
  instrs_after : int;
}

let optimize (f : Ir.func) =
  let instrs_before = Ir.instr_count f in
  let folds = ref 0 in
  let copies = ref 0 in
  let cses = ref 0 in
  let licms = ref 0 in
  let dces = ref 0 in
  let cfgs = ref 0 in
  let iterations = ref 0 in
  let max_iterations = 20 in
  let rec go () =
    incr iterations;
    let c1 = const_fold f in
    let c2 = copy_prop f in
    let c3 = cse f in
    let c6 = licm f in
    let c4 = dce f in
    let c5 = simplify_cfg f in
    Ir.validate f;
    folds := !folds + c1;
    copies := !copies + c2;
    cses := !cses + c3;
    licms := !licms + c6;
    dces := !dces + c4;
    cfgs := !cfgs + c5;
    if c1 + c2 + c3 + c4 + c5 + c6 > 0 && !iterations < max_iterations then go ()
  in
  go ();
  {
    iterations = !iterations;
    folds = !folds;
    copies = !copies;
    cses = !cses;
    licms = !licms;
    dces = !dces;
    cfg_simplifications = !cfgs;
    instrs_before;
    instrs_after = Ir.instr_count f;
  }

let report_to_string r =
  Printf.sprintf
    "opt: %d iter(s), fold=%d copy=%d cse=%d licm=%d dce=%d cfg=%d, instrs %d \
     -> %d"
    r.iterations r.folds r.copies r.cses r.licms r.dces r.cfg_simplifications
    r.instrs_before r.instrs_after
