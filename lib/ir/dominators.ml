module Labelset = Set.Make (Int)

type t = { doms : (Ir.label, Labelset.t) Hashtbl.t }

let compute (f : Ir.func) =
  let all =
    List.fold_left
      (fun acc b -> Labelset.add b.Ir.label acc)
      Labelset.empty f.blocks
  in
  let entry_label = (Ir.entry f).Ir.label in
  let doms = Hashtbl.create 16 in
  List.iter
    (fun (b : Ir.block) ->
      Hashtbl.replace doms b.label
        (if b.label = entry_label then Labelset.singleton entry_label
         else all))
    f.blocks;
  let preds = Ir.predecessors f in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Ir.block) ->
        if b.label <> entry_label then begin
          let pred_labels =
            Option.value ~default:[] (Hashtbl.find_opt preds b.label)
          in
          let meet =
            match pred_labels with
            | [] -> Labelset.singleton b.label (* unreachable *)
            | p :: rest ->
              List.fold_left
                (fun acc q -> Labelset.inter acc (Hashtbl.find doms q))
                (Hashtbl.find doms p) rest
          in
          let updated = Labelset.add b.label meet in
          if not (Labelset.equal updated (Hashtbl.find doms b.label)) then begin
            Hashtbl.replace doms b.label updated;
            changed := true
          end
        end)
      f.blocks
  done;
  { doms }

let dominates t a b =
  match Hashtbl.find_opt t.doms b with
  | Some set -> Labelset.mem a set
  | None -> false

let dominators_of t label =
  match Hashtbl.find_opt t.doms label with
  | Some set -> Labelset.elements set
  | None -> []

let back_edges (f : Ir.func) t =
  List.concat_map
    (fun (b : Ir.block) ->
      List.filter_map
        (fun succ ->
          if dominates t succ b.label then Some (b.label, succ) else None)
        (Ir.successors b.term))
    f.blocks

let natural_loop (f : Ir.func) ~header ~latch =
  let preds = Ir.predecessors f in
  let in_loop = Hashtbl.create 8 in
  Hashtbl.replace in_loop header ();
  let rec visit l =
    if not (Hashtbl.mem in_loop l) then begin
      Hashtbl.replace in_loop l ();
      List.iter visit (Option.value ~default:[] (Hashtbl.find_opt preds l))
    end
  in
  visit latch;
  Hashtbl.fold (fun l () acc -> l :: acc) in_loop []
