module Labelset = Set.Make (Int)

type t = { doms : (Ir.label, Labelset.t) Hashtbl.t }

let compute (f : Ir.func) =
  (* The dataflow runs over the reachable subgraph only: an edge from
     an unreachable block must not take part in a meet, or it would
     empty the dominator set of its (reachable) target.  Unreachable
     blocks get the singleton {b} — nothing dominates code no path
     executes, and no spurious back edge appears from them. *)
  let entry_label = (Ir.entry f).Ir.label in
  let reach = Hashtbl.create 16 in
  let rec visit l =
    if not (Hashtbl.mem reach l) then begin
      Hashtbl.replace reach l ();
      List.iter visit (Ir.successors (Ir.find_block f l).term)
    end
  in
  visit entry_label;
  let all =
    List.fold_left
      (fun acc (b : Ir.block) ->
        if Hashtbl.mem reach b.label then Labelset.add b.label acc else acc)
      Labelset.empty f.blocks
  in
  let doms = Hashtbl.create 16 in
  List.iter
    (fun (b : Ir.block) ->
      Hashtbl.replace doms b.label
        (if b.label = entry_label then Labelset.singleton entry_label
         else if not (Hashtbl.mem reach b.label) then
           Labelset.singleton b.label
         else all))
    f.blocks;
  let preds = Ir.predecessors f in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Ir.block) ->
        if b.label <> entry_label && Hashtbl.mem reach b.label then begin
          let pred_labels =
            List.filter (Hashtbl.mem reach)
              (Option.value ~default:[] (Hashtbl.find_opt preds b.label))
          in
          let meet =
            match pred_labels with
            | [] -> Labelset.empty (* cannot happen: b is reachable *)
            | p :: rest ->
              List.fold_left
                (fun acc q -> Labelset.inter acc (Hashtbl.find doms q))
                (Hashtbl.find doms p) rest
          in
          let updated = Labelset.add b.label meet in
          if not (Labelset.equal updated (Hashtbl.find doms b.label)) then begin
            Hashtbl.replace doms b.label updated;
            changed := true
          end
        end)
      f.blocks
  done;
  { doms }

let dominates t a b =
  match Hashtbl.find_opt t.doms b with
  | Some set -> Labelset.mem a set
  | None -> false

let dominators_of t label =
  match Hashtbl.find_opt t.doms label with
  | Some set -> Labelset.elements set
  | None -> []

let back_edges (f : Ir.func) t =
  List.concat_map
    (fun (b : Ir.block) ->
      List.filter_map
        (fun succ ->
          if dominates t succ b.label then Some (b.label, succ) else None)
        (Ir.successors b.term))
    f.blocks

let natural_loop (f : Ir.func) ~header ~latch =
  let preds = Ir.predecessors f in
  let in_loop = Hashtbl.create 8 in
  Hashtbl.replace in_loop header ();
  let rec visit l =
    if not (Hashtbl.mem in_loop l) then begin
      Hashtbl.replace in_loop l ();
      List.iter visit (Option.value ~default:[] (Hashtbl.find_opt preds l))
    end
  in
  visit latch;
  Hashtbl.fold (fun l () acc -> l :: acc) in_loop []
