type kind = Scalar | Memory | Loop | Cfg | Cleanup

type t = { name : string; doc : string; kind : kind; run : Ir.func -> int }

let kind_name = function
  | Scalar -> "scalar"
  | Memory -> "memory"
  | Loop -> "loop"
  | Cfg -> "cfg"
  | Cleanup -> "cleanup"

(* Registration order is the presentation order in listings, so keep a
   list rather than a table.  Registration happens at module-init time
   (single-domain), so no locking is needed. *)
let registry : t list ref = ref []

let register p =
  if List.exists (fun q -> q.name = p.name) !registry then
    invalid_arg (Printf.sprintf "Pass.register: duplicate pass %S" p.name);
  registry := !registry @ [ p ]

let all () = !registry

let find name = List.find_opt (fun p -> p.name = name) !registry

let names () = List.map (fun p -> p.name) !registry
