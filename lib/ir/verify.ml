exception Error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt

let reachable_labels (f : Ir.func) =
  let seen = Hashtbl.create 16 in
  let rec visit l =
    if not (Hashtbl.mem seen l) then begin
      Hashtbl.replace seen l ();
      List.iter visit (Ir.successors (Ir.find_block f l).term)
    end
  in
  visit (Ir.entry f).label;
  seen

let check_operand f ctx = function
  | Ir.Imm _ -> ()
  | Ir.Reg r ->
    if r < 0 || r >= f.Ir.next_reg then
      fail "%s: register r%d outside allocator range [0, %d)" ctx r
        f.Ir.next_reg

let check_instr f (b : Ir.block) instr =
  let ctx =
    Printf.sprintf "%s: block L%d: %s" f.Ir.fname b.label
      (Ir.instr_to_string instr)
  in
  (match Ir.def_of instr with
   | Some d ->
     if d < 0 || d >= f.Ir.next_reg then
       fail "%s: defined register r%d outside allocator range [0, %d)" ctx d
         f.Ir.next_reg
   | None -> ());
  match instr with
  | Ir.Bin (_, _, a, c) -> check_operand f ctx a; check_operand f ctx c
  | Ir.Un (_, _, a) | Ir.Mov (_, a) | Ir.Load (_, a) -> check_operand f ctx a
  | Ir.Store (a, v) -> check_operand f ctx a; check_operand f ctx v

let check_term f (b : Ir.block) =
  let ctx =
    Printf.sprintf "%s: block L%d: %s" f.Ir.fname b.label
      (Ir.term_to_string b.term)
  in
  List.iter
    (fun r ->
      if r < 0 || r >= f.Ir.next_reg then
        fail "%s: register r%d outside allocator range [0, %d)" ctx r
          f.Ir.next_reg)
    (Ir.term_uses b.term);
  List.iter
    (fun l ->
      if l < 0 || l >= f.Ir.next_label then
        fail "%s: target L%d outside allocator range [0, %d)" ctx l
          f.Ir.next_label;
      match Ir.find_block f l with
      | _ -> ()
      | exception Not_found -> fail "%s: target L%d has no block" ctx l)
    (Ir.successors b.term)

let run (f : Ir.func) =
  (* CFG shape: non-empty, unique labels, in-range counters. *)
  if f.Ir.blocks = [] then fail "%s: function has no blocks" f.Ir.fname;
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (b : Ir.block) ->
      if Hashtbl.mem seen b.Ir.label then
        fail "%s: duplicate block label L%d" f.Ir.fname b.Ir.label;
      Hashtbl.replace seen b.Ir.label ();
      if b.Ir.label < 0 || b.Ir.label >= f.Ir.next_label then
        fail "%s: block label L%d outside allocator range [0, %d)" f.Ir.fname
          b.Ir.label f.Ir.next_label)
    f.blocks;
  List.iter
    (fun (b : Ir.block) ->
      List.iter (check_instr f b) b.instrs;
      check_term f b)
    f.blocks;
  (* Def-before-use on every path: a register live into the entry block
     is one some execution can read before any instruction defines it,
     so only argument registers may appear there. *)
  let info = Liveness.compute f in
  let entry = Ir.entry f in
  let undefined =
    Liveness.Regset.diff
      (Liveness.live_in info entry.Ir.label)
      (Liveness.Regset.of_list f.Ir.arg_regs)
  in
  (match Liveness.Regset.choose_opt undefined with
   | Some r ->
     fail "%s: register r%d may be read before it is defined" f.Ir.fname r
   | None -> ());
  (* Every reachable block is dominated by the entry, and terminators on
     reachable blocks agree with the function's return arity.
     Unreachable blocks are exempt: they keep the [Ret None] placeholder
     terminator until [simplify_cfg] deletes them, which never happens
     under an empty (-O0) schedule. *)
  let reach = reachable_labels f in
  let doms = Dominators.compute f in
  List.iter
    (fun (b : Ir.block) ->
      if Hashtbl.mem reach b.Ir.label then begin
        if not (Dominators.dominates doms entry.Ir.label b.Ir.label) then
          fail "%s: entry does not dominate reachable block L%d" f.Ir.fname
            b.Ir.label;
        match (b.Ir.term, f.Ir.returns_value) with
        | Ir.Ret (Some _), false ->
          fail "%s: block L%d returns a value from a void function"
            f.Ir.fname b.Ir.label
        | Ir.Ret None, true ->
          fail "%s: block L%d returns no value from a value function"
            f.Ir.fname b.Ir.label
        | (Ir.Ret _ | Ir.Jmp _ | Ir.Br _), _ -> ()
      end)
    f.blocks

let check f = match run f with () -> Ok () | exception Error msg -> Error msg
