(* Make sure every builtin pass is in the registry before any schedule
   is built: linking any consumer of the pass manager is enough. *)
let () = Passes.register_builtins ()

type schedule = { sname : string; passes : Pass.t list }

let preset name pass_names =
  {
    sname = name;
    passes =
      List.map
        (fun n ->
          match Pass.find n with
          | Some p -> p
          | None -> invalid_arg ("Pass_manager: unregistered builtin " ^ n))
        pass_names;
  }

let o0 () = { sname = "O0"; passes = [] }

let o1 () = preset "O1" [ "const_fold"; "copy_prop"; "dce"; "simplify_cfg" ]

let o2 () =
  preset "O2"
    [
      "const_fold";
      "copy_prop";
      "cse";
      "store_forward";
      "strength_reduce";
      "licm";
      "dce";
      "coalesce";
      "simplify_cfg";
    ]

let of_opt_level n = if n <= 0 then o0 () else if n = 1 then o1 () else o2 ()

let of_names names =
  let rec resolve acc = function
    | [] -> Ok (List.rev acc)
    | n :: rest -> (
      match Pass.find n with
      | Some p -> resolve (p :: acc) rest
      | None ->
        Error
          (Printf.sprintf "unknown pass %S (known: %s)" n
             (String.concat ", " (Pass.names ()))))
  in
  match resolve [] names with
  | Ok passes -> Ok { sname = "custom:" ^ String.concat "," names; passes }
  | Error _ as e -> e

type pass_stat = { pass : string; runs : int; rewrites : int }

type report = {
  schedule_name : string;
  iterations : int;
  stats : pass_stat list;
  instrs_before : int;
  instrs_after : int;
  blocks_before : int;
  blocks_after : int;
}

(* Process-wide per-pass totals for the bench manifest.  Guarded by a
   mutex because synthesis runs on the domain pool; sums commute, so
   the result is independent of evaluation order. *)
let totals_mutex = Mutex.create ()

let totals_tbl : (string, int * int) Hashtbl.t = Hashtbl.create 16

let account stats =
  Mutex.protect totals_mutex (fun () ->
      List.iter
        (fun s ->
          let runs0, rw0 =
            Option.value (Hashtbl.find_opt totals_tbl s.pass) ~default:(0, 0)
          in
          Hashtbl.replace totals_tbl s.pass (runs0 + s.runs, rw0 + s.rewrites))
        stats)

let totals () =
  Mutex.protect totals_mutex (fun () ->
      Hashtbl.fold (fun p (runs, rw) acc -> (p, runs, rw) :: acc) totals_tbl [])
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  |> List.sort compare

let reset_totals () =
  Mutex.protect totals_mutex (fun () -> Hashtbl.reset totals_tbl)

let run ?(verify = true) ?(max_iterations = 20) sched (f : Ir.func) =
  let instrs_before = Ir.instr_count f in
  let blocks_before = Ir.block_count f in
  (if verify then
     match Verify.run f with
     | () -> ()
     | exception Verify.Error msg -> failwith ("input IR invalid: " ^ msg));
  let n = List.length sched.passes in
  let runs = Array.make n 0 in
  let rewrites = Array.make n 0 in
  let iterations = ref 0 in
  let rec go () =
    incr iterations;
    let round = ref 0 in
    List.iteri
      (fun i (p : Pass.t) ->
        let c = p.run f in
        (if verify then
           match Verify.run f with
           | () -> ()
           | exception Verify.Error msg ->
             failwith
               (Printf.sprintf "pass %s broke the IR invariants: %s" p.name
                  msg));
        runs.(i) <- runs.(i) + 1;
        rewrites.(i) <- rewrites.(i) + c;
        round := !round + c)
      sched.passes;
    if !round > 0 && !iterations < max_iterations then go ()
  in
  if n > 0 then go ();
  let stats =
    List.mapi
      (fun i (p : Pass.t) ->
        { pass = p.name; runs = runs.(i); rewrites = rewrites.(i) })
      sched.passes
  in
  account stats;
  {
    schedule_name = sched.sname;
    iterations = !iterations;
    stats;
    instrs_before;
    instrs_after = Ir.instr_count f;
    blocks_before;
    blocks_after = Ir.block_count f;
  }

let optimize ?schedule f =
  let sched = match schedule with Some s -> s | None -> o2 () in
  run sched f

let rewrites report name =
  match List.find_opt (fun s -> s.pass = name) report.stats with
  | Some s -> s.rewrites
  | None -> 0

let report_to_string r =
  let per_pass =
    match r.stats with
    | [] -> "no passes"
    | stats ->
      String.concat " "
        (List.map (fun s -> Printf.sprintf "%s=%d" s.pass s.rewrites) stats)
  in
  Printf.sprintf "opt[%s]: %d iter(s), %s, instrs %d -> %d" r.schedule_name
    r.iterations per_pass r.instrs_before r.instrs_after
