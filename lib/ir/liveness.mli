(** Backward liveness dataflow over the CFG. *)

module Regset : Set.S with type elt = Ir.reg

type t

val compute : Ir.func -> t

val live_in : t -> Ir.label -> Regset.t

val live_out : t -> Ir.label -> Regset.t

val live_after_each : t -> Ir.block -> Regset.t array
(** [live_after_each info b] gives, for every instruction position [i]
    in [b.instrs], the set of registers live immediately after that
    instruction (terminator uses included).  Used by dead-code
    elimination and by register binding. *)

val max_live : Ir.func -> t -> int
(** The maximum number of simultaneously live registers at any
    instruction boundary — an estimate of datapath register pressure. *)
