(** IR verifier.

    A stricter check than {!Ir.validate}, run between passes in checked
    builds: CFG well-formedness (unique labels, resolvable branch
    targets, entry block first), register/label counters consistent with
    the function's allocators, def-before-use on every path from the
    entry (via {!Liveness}), entry domination of every reachable block
    (via {!Dominators}), and return-arity agreement with
    [returns_value] on reachable blocks. *)

exception Error of string

val check : Ir.func -> (unit, string) result
(** Run all checks; [Error msg] describes the first violation. *)

val run : Ir.func -> unit
(** Like {!check} but raises {!Error} on violation — the form used by
    {!Pass_manager} between passes. *)
