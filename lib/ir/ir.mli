(** Three-address intermediate representation.

    A function is a control-flow graph of basic blocks over an infinite
    set of virtual registers.  Memory is addressed by byte; [Load]/
    [Store] take a fully computed address operand, so address arithmetic
    is visible to the optimizer and the scheduler. *)

type reg = int

type label = int

type operand = Reg of reg | Imm of int

type instr =
  | Bin of Vmht_lang.Ast.binop * reg * operand * operand
  | Un of Vmht_lang.Ast.unop * reg * operand
  | Mov of reg * operand
  | Load of reg * operand (* dst <- mem[addr] *)
  | Store of operand * operand (* mem[addr] <- value *)

type terminator =
  | Jmp of label
  | Br of operand * label * label (* non-zero -> first label *)
  | Ret of operand option

type block = {
  label : label;
  mutable instrs : instr list;
  mutable term : terminator;
}

type func = {
  fname : string;
  arg_regs : reg list;
  returns_value : bool;
  mutable blocks : block list; (* head is the entry block *)
  mutable next_reg : reg;
  mutable next_label : label;
}

val create_func : name:string -> arg_count:int -> returns_value:bool -> func
(** A function whose argument registers are [0 .. arg_count-1] and whose
    block list is initially empty. *)

val fresh_reg : func -> reg

val fresh_label : func -> label

val add_block : func -> label -> block
(** Create and append an (initially empty, [Ret None]-terminated) block. *)

val find_block : func -> label -> block
(** Raises [Not_found] for labels with no block. *)

val entry : func -> block
(** The entry block.  Raises [Invalid_argument] on an empty function. *)

val def_of : instr -> reg option
(** The register an instruction defines, if any. *)

val uses_of : instr -> reg list
(** Registers an instruction reads. *)

val term_uses : terminator -> reg list

val successors : terminator -> label list

val predecessors : func -> (label, label list) Hashtbl.t
(** Map from block label to the labels of its predecessors. *)

val instr_count : func -> int

val block_count : func -> int

val is_pure : instr -> bool
(** True for instructions with no memory side effect (everything except
    [Store]).  Pure instructions whose result is dead can be deleted. *)

val instr_to_string : instr -> string

val term_to_string : terminator -> string

val func_to_string : func -> string

val validate : func -> unit
(** Structural sanity: every referenced label has a block, the entry
    exists, and no instruction reads a register that no path defines.
    Raises [Failure] with a description on violation.  Used by tests and
    after every optimization pass. *)
