(** Pass scheduling: run an ordered list of registered passes to a
    bounded joint fixpoint, verifying the IR between passes.

    Schedules come from three places: the [-O0]/[-O1]/[-O2] presets
    ({!of_opt_level}), an explicit pass list ({!of_names}, backing the
    CLIs' [--passes a,b,c]), or directly from {!Pass.t} values.  The
    report records per-pass run and rewrite counts so callers (HLS
    statistics, the bench manifest, the opt-level ablation) can
    attribute the work.

    Linking this module registers every builtin pass
    ({!Passes.register_builtins}). *)

type schedule = {
  sname : string;  (** display name: ["O0"], ["O2"], ["custom:..."] *)
  passes : Pass.t list;  (** run in order, repeated to a fixpoint *)
}

val o0 : unit -> schedule
(** No optimization: the IR is synthesized as lowered. *)

val o1 : unit -> schedule
(** Fast cleanup: const_fold, copy_prop, dce, simplify_cfg. *)

val o2 : unit -> schedule
(** Everything, including the memory passes and licm. *)

val of_opt_level : int -> schedule
(** Clamped: [<= 0] is {!o0}, [1] is {!o1}, [>= 2] is {!o2}. *)

val of_names : string list -> (schedule, string) result
(** Resolve an explicit pass list against the registry; [Error msg]
    names the first unknown pass. *)

type pass_stat = {
  pass : string;
  runs : int;  (** fixpoint iterations this pass executed in *)
  rewrites : int;  (** total rewrites across those runs *)
}

type report = {
  schedule_name : string;
  iterations : int;
  stats : pass_stat list;  (** in schedule order *)
  instrs_before : int;
  instrs_after : int;
  blocks_before : int;
  blocks_after : int;
}

val run : ?verify:bool -> ?max_iterations:int -> schedule -> Ir.func -> report
(** Apply the schedule in order, repeating until one full round makes
    no rewrite (or [max_iterations], default 20, rounds have run).
    With [verify] (the default) the {!Verify} checker runs after every
    pass application and failures are re-raised as [Failure] naming the
    offending pass. *)

val optimize : ?schedule:schedule -> Ir.func -> report
(** [run] under the default ({!o2}) schedule. *)

val rewrites : report -> string -> int
(** Total rewrites a named pass performed, 0 if not in the schedule. *)

val report_to_string : report -> string

val totals : unit -> (string * int * int) list
(** Process-wide accumulated [(pass, runs, rewrites)] across every
    {!run} since startup (or {!reset_totals}), sorted by pass name.
    Sums are commutative, so the totals are deterministic under any
    parallel evaluation order.  Feeds the bench manifest's per-pass
    statistics. *)

val reset_totals : unit -> unit
