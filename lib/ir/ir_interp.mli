(** IR-level interpreter.

    Serves two roles: (1) semantic oracle for the optimization passes
    (its results must match the AST interpreter), and (2) execution
    core of the simulated CPU — the CPU drives it with hooks that
    charge cycle costs per instruction, and with a memory whose
    [load]/[store] perform timed bus transactions. *)

type hooks = {
  on_instr : Ir.instr -> unit;
      (** called before each executed instruction *)
  on_branch : taken:bool -> unit;
      (** called at each conditional branch *)
  on_block : Ir.label -> unit;  (** called on entry to each block *)
}

val no_hooks : hooks

exception Runaway of int
(** Raised when execution exceeds the step bound. *)

val run :
  ?hooks:hooks ->
  ?max_steps:int ->
  Vmht_lang.Ast_interp.memory ->
  Ir.func ->
  args:int list ->
  int option
(** Execute a function.  [max_steps] (default 100 million) bounds the
    number of executed instructions to catch non-terminating programs
    in tests.  Raises [Invalid_argument] on argument-count mismatch. *)

val dynamic_counts : Vmht_lang.Ast_interp.memory -> Ir.func -> args:int list ->
  int * int * int
(** [(instructions, loads, stores)] executed by a run — used by the
    workload-characterization table. *)
