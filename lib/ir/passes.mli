(** The optimization passes of the HLS flow.

    Every pass preserves observable semantics (the property test suite
    checks each one against the IR interpreter on random programs) and
    returns how many rewrites it performed, so the pipeline can iterate
    to a fixpoint and report per-pass statistics. *)

val const_fold : Ir.func -> int
(** Fold constant operations and algebraic identities:
    [c1 op c2], [x+0], [x-0], [x*1], [x*0], [x*2^k -> x<<k], [x/1],
    [x&0], [x|0], [x^0], shifts by 0, [br const -> jmp].  Operations
    that would trap at runtime (division by zero) are left in place. *)

val copy_prop : Ir.func -> int
(** Block-local forward propagation of [Mov] sources (registers and
    immediates) into later uses. *)

val cse : Ir.func -> int
(** Block-local value numbering over pure operations; identical loads
    from the same address are shared until a store intervenes. *)

val licm : Ir.func -> int
(** Loop-invariant code motion (see {!Licm}); returns hoisted count. *)

val dce : Ir.func -> int
(** Global liveness-based dead-code elimination of pure instructions
    (iterated internally to a fixpoint). *)

val simplify_cfg : Ir.func -> int
(** Delete unreachable blocks, thread trivial jumps, and merge blocks
    joined by an unconditional edge with a unique predecessor. *)

type pipeline_report = {
  iterations : int;
  folds : int;
  copies : int;
  cses : int;
  licms : int;
  dces : int;
  cfg_simplifications : int;
  instrs_before : int;
  instrs_after : int;
}

val optimize : Ir.func -> pipeline_report
(** Run all passes to a joint fixpoint (bounded), validating the IR
    after each iteration. *)

val report_to_string : pipeline_report -> string
