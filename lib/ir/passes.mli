(** The optimization passes of the HLS flow.

    Every pass preserves observable semantics (the property test suite
    checks each one against the IR interpreter on random programs) and
    returns how many rewrites it performed, so {!Pass_manager} can
    iterate a schedule to a fixpoint and report per-pass statistics.

    The functions below are also exposed directly for tests; production
    callers go through the {!Pass} registry ({!register_builtins}) and
    {!Pass_manager}. *)

val const_fold : Ir.func -> int
(** Fold constant operations and algebraic identities:
    [c1 op c2], [x+0], [x-0], [x*1], [x*0], [x*2^k -> x<<k], [x/1],
    [x&0], [x|0], [x^0], shifts by 0, [br const -> jmp].  Operations
    that would trap at runtime (division by zero) are left in place. *)

val copy_prop : Ir.func -> int
(** Block-local forward propagation of [Mov] sources (registers and
    immediates) into later uses. *)

val cse : Ir.func -> int
(** Block-local value numbering over pure operations; identical loads
    from the same address are shared until a store intervenes. *)

val store_forward : Ir.func -> int
(** Block-local store-to-load forwarding: a [Load] from an address a
    preceding [Store] wrote (with no intervening store and no
    redefinition of the registers involved) becomes a [Mov] of the
    stored value, removing a round trip through the memory port — under
    virtual memory, potentially a TLB miss and a page walk. *)

val strength_reduce : Ir.func -> int
(** Strength reduction and addressing-mode simplification for
    pointer-chase address arithmetic: collapse chains of
    add/subtract-immediate address computations ([(p+8)+8 -> p+16]) so
    each access needs one addition from the base pointer, and rewrite
    multiplications by [2^k +- 1] into a shift and an add/sub. *)

val coalesce : Ir.func -> int
(** Fold adjacent [t = op ...; d = t] pairs (with [t] dead afterwards)
    into a single operation defining [d] — undoes the per-assignment
    temporaries lowering introduces in loop bodies. *)

val licm : Ir.func -> int
(** Loop-invariant code motion (see {!Licm}); returns hoisted count. *)

val dce : Ir.func -> int
(** Global liveness-based dead-code elimination of pure instructions
    (iterated internally to a fixpoint).  [Load]s are pure here: the
    memories have no read side effects, so a load whose result is dead
    is deleted. *)

val simplify_cfg : Ir.func -> int
(** Delete unreachable blocks, thread trivial jumps, and merge blocks
    joined by an unconditional edge with a unique predecessor. *)

val register_builtins : unit -> unit
(** Register every pass above in the {!Pass} registry.  Idempotent;
    invoked from {!Pass_manager}'s module initializer so linking any
    pass-manager consumer populates the registry. *)
