(** Dominator analysis over the CFG (iterative dataflow). *)

type t

val compute : Ir.func -> t

val dominates : t -> Ir.label -> Ir.label -> bool
(** [dominates t a b]: every path from the entry to [b] passes through
    [a].  Reflexive. *)

val dominators_of : t -> Ir.label -> Ir.label list
(** All dominators of a block, including itself. *)

val back_edges : Ir.func -> t -> (Ir.label * Ir.label) list
(** Edges [(u, h)] with [u -> h] in the CFG and [h] dominating [u] —
    one per natural loop latch. *)

val natural_loop : Ir.func -> header:Ir.label -> latch:Ir.label -> Ir.label list
(** Blocks of the natural loop of a back edge: the header plus every
    block that reaches the latch without passing through the header. *)
