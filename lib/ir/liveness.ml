module Regset = Set.Make (Int)

type t = {
  live_in_map : (Ir.label, Regset.t) Hashtbl.t;
  live_out_map : (Ir.label, Regset.t) Hashtbl.t;
}

let block_use_def (b : Ir.block) =
  (* [use] = registers read before any write in the block. *)
  let use, def =
    List.fold_left
      (fun (use, def) instr ->
        let use =
          List.fold_left
            (fun use r -> if Regset.mem r def then use else Regset.add r use)
            use (Ir.uses_of instr)
        in
        let def =
          match Ir.def_of instr with
          | Some d -> Regset.add d def
          | None -> def
        in
        (use, def))
      (Regset.empty, Regset.empty)
      b.instrs
  in
  let use =
    List.fold_left
      (fun use r -> if Regset.mem r def then use else Regset.add r use)
      use (Ir.term_uses b.term)
  in
  (use, def)

let compute (f : Ir.func) =
  let live_in_map = Hashtbl.create 16 in
  let live_out_map = Hashtbl.create 16 in
  let use_def = Hashtbl.create 16 in
  List.iter
    (fun b ->
      Hashtbl.replace live_in_map b.Ir.label Regset.empty;
      Hashtbl.replace live_out_map b.Ir.label Regset.empty;
      Hashtbl.replace use_def b.Ir.label (block_use_def b))
    f.blocks;
  let changed = ref true in
  while !changed do
    changed := false;
    (* Iterate in reverse block order: converges fast for reducible
       CFGs produced by the lowerer. *)
    List.iter
      (fun (b : Ir.block) ->
        let out =
          List.fold_left
            (fun acc succ ->
              Regset.union acc (Hashtbl.find live_in_map succ))
            Regset.empty
            (Ir.successors b.term)
        in
        let use, def = Hashtbl.find use_def b.label in
        let inn = Regset.union use (Regset.diff out def) in
        if not (Regset.equal out (Hashtbl.find live_out_map b.label)) then begin
          Hashtbl.replace live_out_map b.label out;
          changed := true
        end;
        if not (Regset.equal inn (Hashtbl.find live_in_map b.label)) then begin
          Hashtbl.replace live_in_map b.label inn;
          changed := true
        end)
      (List.rev f.blocks)
  done;
  { live_in_map; live_out_map }

let live_in t label = Hashtbl.find t.live_in_map label

let live_out t label = Hashtbl.find t.live_out_map label

let live_after_each t (b : Ir.block) =
  let n = List.length b.instrs in
  let result = Array.make (max n 1) Regset.empty in
  let live = ref (live_out t b.label) in
  (* Terminator reads happen "after" the last instruction. *)
  List.iter (fun r -> live := Regset.add r !live) (Ir.term_uses b.term);
  let instrs = Array.of_list b.instrs in
  for i = n - 1 downto 0 do
    result.(i) <- !live;
    (match Ir.def_of instrs.(i) with
     | Some d -> live := Regset.remove d !live
     | None -> ());
    List.iter (fun r -> live := Regset.add r !live) (Ir.uses_of instrs.(i))
  done;
  result

let max_live (f : Ir.func) t =
  List.fold_left
    (fun acc b ->
      let after = live_after_each t b in
      Array.fold_left (fun acc s -> max acc (Regset.cardinal s)) acc after)
    0 f.blocks
