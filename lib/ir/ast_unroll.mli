(** Source-level loop unrolling.

    The HLS scheduler extracts parallelism only within a basic block, so
    unrolling replicates counted-loop bodies into one block.  A loop is
    unrolled when it has the canonical shape the parser produces for
    [for (i = e0; i < bound; i = i + 1) { straight-line body }]:

    - condition [i < bound] with [bound] an integer literal or a
      variable the body never assigns;
    - body = straight-line statements (no control flow) followed by the
      increment [i = i + 1], none of which assign [i];

    and is rewritten into a main loop advancing by the factor (bodies
    substituted with [i], [i+1], ...) plus the original loop as an
    epilogue for leftover iterations.  Declared locals are renamed per
    copy.  Loops that do not match are left untouched; the semantics of
    the kernel is preserved exactly (checked by property tests). *)

val unroll_kernel : factor:int -> Vmht_lang.Ast.kernel -> Vmht_lang.Ast.kernel * int
(** [unroll_kernel ~factor k] returns the rewritten kernel and the
    number of loops that were unrolled.  [factor <= 1] is the identity. *)
