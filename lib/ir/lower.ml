module Ast = Vmht_lang.Ast

type ctx = {
  func : Ir.func;
  env : (string, Ir.reg) Hashtbl.t;
  mutable current : Ir.block;
  mutable acc : Ir.instr list; (* current block's instructions, reversed *)
}

let seal ctx =
  ctx.current.instrs <- List.rev ctx.acc;
  ctx.acc <- []

let start_block ctx label =
  seal ctx;
  let b = Ir.add_block ctx.func label in
  ctx.current <- b

let emit ctx instr = ctx.acc <- instr :: ctx.acc

let terminate ctx term = ctx.current.term <- term

let word_shift = 3 (* log2 of Ast.word_bytes *)

let rec lower_expr ctx expr : Ir.operand =
  match expr with
  | Ast.Int n -> Ir.Imm n
  | Ast.Var x -> Ir.Reg (Hashtbl.find ctx.env x)
  | Ast.Cast (_, e) -> lower_expr ctx e
  | Ast.Un (op, e) ->
    let v = lower_expr ctx e in
    let d = Ir.fresh_reg ctx.func in
    emit ctx (Ir.Un (op, d, v));
    Ir.Reg d
  | Ast.Bin ((Ast.Land | Ast.Lor) as op, a, b) ->
    (* Strict logical operators: normalize both sides to 0/1 and
       combine bitwise. *)
    let va = lower_expr ctx a in
    let vb = lower_expr ctx b in
    let na = Ir.fresh_reg ctx.func in
    let nb = Ir.fresh_reg ctx.func in
    emit ctx (Ir.Bin (Ast.Ne, na, va, Ir.Imm 0));
    emit ctx (Ir.Bin (Ast.Ne, nb, vb, Ir.Imm 0));
    let d = Ir.fresh_reg ctx.func in
    let bitop = match op with Ast.Land -> Ast.And | _ -> Ast.Or in
    emit ctx (Ir.Bin (bitop, d, Ir.Reg na, Ir.Reg nb));
    Ir.Reg d
  | Ast.Bin (op, a, b) ->
    let va = lower_expr ctx a in
    let vb = lower_expr ctx b in
    let d = Ir.fresh_reg ctx.func in
    emit ctx (Ir.Bin (op, d, va, vb));
    Ir.Reg d
  | Ast.Load (base, index) ->
    let addr = lower_address ctx base index in
    let d = Ir.fresh_reg ctx.func in
    emit ctx (Ir.Load (d, addr));
    Ir.Reg d
  | Ast.Call (name, _) ->
    invalid_arg ("Lower: call to '" ^ name ^ "' was not inlined")

and lower_address ctx base index : Ir.operand =
  let vb = lower_expr ctx base in
  match lower_expr ctx index with
  | Ir.Imm 0 -> vb
  | Ir.Imm n -> (
    match vb with
    | Ir.Imm b -> Ir.Imm (b + (n * Ast.word_bytes))
    | Ir.Reg _ ->
      let d = Ir.fresh_reg ctx.func in
      emit ctx (Ir.Bin (Ast.Add, d, vb, Ir.Imm (n * Ast.word_bytes)));
      Ir.Reg d)
  | vi ->
    let off = Ir.fresh_reg ctx.func in
    emit ctx (Ir.Bin (Ast.Shl, off, vi, Ir.Imm word_shift));
    let d = Ir.fresh_reg ctx.func in
    emit ctx (Ir.Bin (Ast.Add, d, vb, Ir.Reg off));
    Ir.Reg d

let rec lower_stmt ctx stmt =
  match stmt with
  | Ast.Decl (x, _, init) ->
    let v =
      match init with None -> Ir.Imm 0 | Some e -> lower_expr ctx e
    in
    let r = Ir.fresh_reg ctx.func in
    Hashtbl.replace ctx.env x r;
    emit ctx (Ir.Mov (r, v))
  | Ast.Assign (x, e) ->
    let v = lower_expr ctx e in
    emit ctx (Ir.Mov (Hashtbl.find ctx.env x, v))
  | Ast.Store (base, index, value) ->
    let addr = lower_address ctx base index in
    let v = lower_expr ctx value in
    emit ctx (Ir.Store (addr, v))
  | Ast.If (cond, then_b, else_b) ->
    let c = lower_expr ctx cond in
    let l_then = Ir.fresh_label ctx.func in
    let l_join = Ir.fresh_label ctx.func in
    let l_else =
      if else_b = [] then l_join else Ir.fresh_label ctx.func
    in
    terminate ctx (Ir.Br (c, l_then, l_else));
    start_block ctx l_then;
    lower_body ctx then_b;
    terminate ctx (Ir.Jmp l_join);
    if else_b <> [] then begin
      start_block ctx l_else;
      lower_body ctx else_b;
      terminate ctx (Ir.Jmp l_join)
    end;
    start_block ctx l_join
  | Ast.While (cond, body) ->
    let l_header = Ir.fresh_label ctx.func in
    let l_body = Ir.fresh_label ctx.func in
    let l_exit = Ir.fresh_label ctx.func in
    terminate ctx (Ir.Jmp l_header);
    start_block ctx l_header;
    let c = lower_expr ctx cond in
    terminate ctx (Ir.Br (c, l_body, l_exit));
    start_block ctx l_body;
    lower_body ctx body;
    terminate ctx (Ir.Jmp l_header);
    start_block ctx l_exit
  | Ast.Return value ->
    let v = Option.map (fun e -> lower_expr ctx e) value in
    terminate ctx (Ir.Ret v);
    (* Anything after an explicit return is unreachable; give it a
       fresh block that CFG simplification deletes. *)
    start_block ctx (Ir.fresh_label ctx.func)

and lower_body ctx stmts = List.iter (lower_stmt ctx) stmts

let lower_kernel (k : Ast.kernel) =
  let func =
    Ir.create_func ~name:k.kname
      ~arg_count:(List.length k.params)
      ~returns_value:(k.ret <> None)
  in
  let env = Hashtbl.create 16 in
  List.iteri
    (fun i { Ast.pname; _ } -> Hashtbl.replace env pname i)
    k.params;
  let entry_label = Ir.fresh_label func in
  let entry = Ir.add_block func entry_label in
  let ctx = { func; env; current = entry; acc = [] } in
  lower_body ctx k.body;
  (* A fall-through end of a void kernel keeps the default [Ret None]. *)
  seal ctx;
  Ir.validate func;
  func
