(** Lowering from the HTL AST to the three-address IR.

    The kernel must already have passed the typechecker.  Index
    expressions become explicit shift-and-add address arithmetic so
    later passes can fold and share it; the strict logical operators
    [&&]/[||] become compare-and-mask sequences (no control flow). *)

val lower_kernel : Vmht_lang.Ast.kernel -> Ir.func
(** Arguments occupy registers [0 .. n-1] in declaration order. *)
