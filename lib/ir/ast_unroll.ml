module Ast = Vmht_lang.Ast

(* Variables assigned (or declared) anywhere in a statement list. *)
let rec assigned_vars acc = function
  | [] -> acc
  | stmt :: rest ->
    let acc =
      match stmt with
      | Ast.Decl (x, _, _) | Ast.Assign (x, _) -> x :: acc
      | Ast.Store _ | Ast.Return _ -> acc
      | Ast.If (_, t, f) -> assigned_vars (assigned_vars acc t) f
      | Ast.While (_, b) -> assigned_vars acc b
    in
    assigned_vars acc rest

let is_straight_line stmts =
  List.for_all
    (function
      | Ast.Decl _ | Ast.Assign _ | Ast.Store _ -> true
      | Ast.If _ | Ast.While _ | Ast.Return _ -> false)
    stmts

(* Substitute variable [x] with expression [repl] in an expression. *)
let rec subst_expr x repl expr =
  match expr with
  | Ast.Var y when y = x -> repl
  | Ast.Int _ | Ast.Var _ -> expr
  | Ast.Bin (op, a, b) -> Ast.Bin (op, subst_expr x repl a, subst_expr x repl b)
  | Ast.Un (op, e) -> Ast.Un (op, subst_expr x repl e)
  | Ast.Load (b, i) -> Ast.Load (subst_expr x repl b, subst_expr x repl i)
  | Ast.Cast (t, e) -> Ast.Cast (t, subst_expr x repl e)
  | Ast.Call (f, args) -> Ast.Call (f, List.map (subst_expr x repl) args)

let subst_stmt x repl = function
  | Ast.Decl (y, t, init) -> Ast.Decl (y, t, Option.map (subst_expr x repl) init)
  | Ast.Assign (y, e) -> Ast.Assign (y, subst_expr x repl e)
  | Ast.Store (b, i, v) ->
    Ast.Store (subst_expr x repl b, subst_expr x repl i, subst_expr x repl v)
  | Ast.If (_, _, _) | Ast.While (_, _) | Ast.Return _ ->
    invalid_arg "subst_stmt: not straight-line"

(* Rename locals declared inside one unrolled copy so the copies do not
   collide.  The '~' in the suffix cannot appear in parsed identifiers. *)
let rename_copy k stmts =
  let renames = Hashtbl.create 4 in
  let rename y =
    match Hashtbl.find_opt renames y with Some y' -> y' | None -> y
  in
  let rec rn_expr = function
    | Ast.Int _ as e -> e
    | Ast.Var y -> Ast.Var (rename y)
    | Ast.Bin (op, a, b) -> Ast.Bin (op, rn_expr a, rn_expr b)
    | Ast.Un (op, e) -> Ast.Un (op, rn_expr e)
    | Ast.Load (b, i) -> Ast.Load (rn_expr b, rn_expr i)
    | Ast.Cast (t, e) -> Ast.Cast (t, rn_expr e)
    | Ast.Call (f, args) -> Ast.Call (f, List.map rn_expr args)
  in
  List.map
    (fun stmt ->
      match stmt with
      | Ast.Decl (y, t, init) ->
        let init = Option.map rn_expr init in
        let y' = Printf.sprintf "%s~u%d" y k in
        Hashtbl.replace renames y y';
        Ast.Decl (y', t, init)
      | Ast.Assign (y, e) -> Ast.Assign (rename y, rn_expr e)
      | Ast.Store (b, i, v) -> Ast.Store (rn_expr b, rn_expr i, rn_expr v)
      | Ast.If (_, _, _) | Ast.While (_, _) | Ast.Return _ ->
        invalid_arg "rename_copy: not straight-line")
    stmts

(* Split [body] into the straight-line part and a final [i = i + 1]. *)
let split_inductive body =
  match List.rev body with
  | Ast.Assign (i, Ast.Bin (Ast.Add, Ast.Var i', Ast.Int 1)) :: rev_straight
    when i = i' ->
    Some (i, List.rev rev_straight)
  | _ -> None

let loop_matches i bound straight =
  let writes = assigned_vars [] straight in
  let bound_ok =
    match bound with
    | Ast.Int _ -> true
    | Ast.Var b -> b <> i && not (List.mem b writes)
    | Ast.Bin _ | Ast.Un _ | Ast.Load _ | Ast.Cast _ | Ast.Call _ -> false
  in
  bound_ok && is_straight_line straight && not (List.mem i writes)

let unroll_loop factor cond body =
  match cond with
  | Ast.Bin (Ast.Lt, Ast.Var i, bound) -> (
    match split_inductive body with
    | Some (iv, straight) when iv = i && loop_matches i bound straight ->
      let copy k =
        let substituted =
          if k = 0 then straight
          else
            List.map
              (subst_stmt i (Ast.Bin (Ast.Add, Ast.Var i, Ast.Int k)))
              straight
        in
        rename_copy k substituted
      in
      let copies = List.concat (List.init factor copy) in
      let main_cond =
        Ast.Bin (Ast.Le, Ast.Bin (Ast.Add, Ast.Var i, Ast.Int factor), bound)
      in
      let main =
        Ast.While
          ( main_cond,
            copies @ [ Ast.Assign (i, Ast.Bin (Ast.Add, Ast.Var i, Ast.Int factor)) ]
          )
      in
      let epilogue = Ast.While (cond, body) in
      Some [ main; epilogue ]
    | Some _ | None -> None)
  | Ast.Int _ | Ast.Var _ | Ast.Bin _ | Ast.Un _ | Ast.Load _ | Ast.Cast _
  | Ast.Call _ ->
    None

let unroll_kernel ~factor (k : Ast.kernel) =
  if factor <= 1 then (k, 0)
  else begin
    let count = ref 0 in
    let rec walk_body stmts = List.concat_map walk_stmt stmts
    and walk_stmt stmt =
      match stmt with
      | Ast.While (cond, body) -> (
        match unroll_loop factor cond body with
        | Some replacement ->
          incr count;
          replacement
        | None -> [ Ast.While (cond, walk_body body) ])
      | Ast.If (c, t, f) -> [ Ast.If (c, walk_body t, walk_body f) ]
      | Ast.Decl _ | Ast.Assign _ | Ast.Store _ | Ast.Return _ -> [ stmt ]
    in
    let body = walk_body k.body in
    ({ k with body }, !count)
  end
