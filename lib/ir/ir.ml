type reg = int

type label = int

type operand = Reg of reg | Imm of int

type instr =
  | Bin of Vmht_lang.Ast.binop * reg * operand * operand
  | Un of Vmht_lang.Ast.unop * reg * operand
  | Mov of reg * operand
  | Load of reg * operand
  | Store of operand * operand

type terminator =
  | Jmp of label
  | Br of operand * label * label
  | Ret of operand option

type block = {
  label : label;
  mutable instrs : instr list;
  mutable term : terminator;
}

type func = {
  fname : string;
  arg_regs : reg list;
  returns_value : bool;
  mutable blocks : block list;
  mutable next_reg : reg;
  mutable next_label : label;
}

let create_func ~name ~arg_count ~returns_value =
  {
    fname = name;
    arg_regs = List.init arg_count (fun i -> i);
    returns_value;
    blocks = [];
    next_reg = arg_count;
    next_label = 0;
  }

let fresh_reg f =
  let r = f.next_reg in
  f.next_reg <- r + 1;
  r

let fresh_label f =
  let l = f.next_label in
  f.next_label <- l + 1;
  l

let add_block f label =
  let b = { label; instrs = []; term = Ret None } in
  f.blocks <- f.blocks @ [ b ];
  b

let find_block f label = List.find (fun b -> b.label = label) f.blocks

let entry f =
  match f.blocks with
  | [] -> invalid_arg "Ir.entry: empty function"
  | b :: _ -> b

let def_of = function
  | Bin (_, d, _, _) | Un (_, d, _) | Mov (d, _) | Load (d, _) -> Some d
  | Store _ -> None

let operand_reg = function Reg r -> Some r | Imm _ -> None

let uses_of instr =
  let ops =
    match instr with
    | Bin (_, _, a, b) -> [ a; b ]
    | Un (_, _, a) | Mov (_, a) | Load (_, a) -> [ a ]
    | Store (addr, value) -> [ addr; value ]
  in
  List.filter_map operand_reg ops

let term_uses = function
  | Jmp _ -> []
  | Br (c, _, _) -> Option.to_list (operand_reg c)
  | Ret v -> (
    match v with
    | None -> []
    | Some op -> Option.to_list (operand_reg op))

let successors = function
  | Jmp l -> [ l ]
  | Br (_, l1, l2) -> if l1 = l2 then [ l1 ] else [ l1; l2 ]
  | Ret _ -> []

let predecessors f =
  let preds = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace preds b.label []) f.blocks;
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          let cur = try Hashtbl.find preds s with Not_found -> [] in
          Hashtbl.replace preds s (b.label :: cur))
        (successors b.term))
    f.blocks;
  preds

let instr_count f =
  List.fold_left (fun acc b -> acc + List.length b.instrs) 0 f.blocks

let block_count f = List.length f.blocks

let is_pure = function
  | Bin _ | Un _ | Mov _ | Load _ -> true
  | Store _ -> false

let operand_to_string = function
  | Reg r -> Printf.sprintf "r%d" r
  | Imm n -> string_of_int n

let instr_to_string = function
  | Bin (op, d, a, b) ->
    Printf.sprintf "r%d = %s %s %s" d (operand_to_string a)
      (Vmht_lang.Ast.binop_to_string op)
      (operand_to_string b)
  | Un (op, d, a) ->
    Printf.sprintf "r%d = %s%s" d
      (Vmht_lang.Ast.unop_to_string op)
      (operand_to_string a)
  | Mov (d, a) -> Printf.sprintf "r%d = %s" d (operand_to_string a)
  | Load (d, addr) -> Printf.sprintf "r%d = mem[%s]" d (operand_to_string addr)
  | Store (addr, v) ->
    Printf.sprintf "mem[%s] = %s" (operand_to_string addr)
      (operand_to_string v)

let term_to_string = function
  | Jmp l -> Printf.sprintf "jmp L%d" l
  | Br (c, l1, l2) ->
    Printf.sprintf "br %s ? L%d : L%d" (operand_to_string c) l1 l2
  | Ret None -> "ret"
  | Ret (Some v) -> Printf.sprintf "ret %s" (operand_to_string v)

let func_to_string f =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "func %s(%s)%s\n" f.fname
       (String.concat ", " (List.map (Printf.sprintf "r%d") f.arg_regs))
       (if f.returns_value then " : value" else ""));
  List.iter
    (fun b ->
      Buffer.add_string buf (Printf.sprintf "L%d:\n" b.label);
      List.iter
        (fun i -> Buffer.add_string buf ("  " ^ instr_to_string i ^ "\n"))
        b.instrs;
      Buffer.add_string buf ("  " ^ term_to_string b.term ^ "\n"))
    f.blocks;
  Buffer.contents buf

let validate f =
  let fail fmt = Printf.ksprintf failwith fmt in
  if f.blocks = [] then fail "function %s has no blocks" f.fname;
  let labels = Hashtbl.create 16 in
  List.iter
    (fun b ->
      if Hashtbl.mem labels b.label then
        fail "duplicate block label L%d" b.label;
      Hashtbl.replace labels b.label ())
    f.blocks;
  let defined = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace defined r ()) f.arg_regs;
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match def_of i with
          | Some d -> Hashtbl.replace defined d ()
          | None -> ())
        b.instrs)
    f.blocks;
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          List.iter
            (fun r ->
              if not (Hashtbl.mem defined r) then
                fail "instruction '%s' reads undefined register r%d"
                  (instr_to_string i) r)
            (uses_of i))
        b.instrs;
      List.iter
        (fun r ->
          if not (Hashtbl.mem defined r) then
            fail "terminator '%s' reads undefined register r%d"
              (term_to_string b.term) r)
        (term_uses b.term);
      List.iter
        (fun l ->
          if not (Hashtbl.mem labels l) then
            fail "terminator '%s' targets missing block L%d"
              (term_to_string b.term) l)
        (successors b.term))
    f.blocks
