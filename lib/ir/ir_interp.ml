module Ast_interp = Vmht_lang.Ast_interp

type hooks = {
  on_instr : Ir.instr -> unit;
  on_branch : taken:bool -> unit;
  on_block : Ir.label -> unit;
}

let no_hooks =
  {
    on_instr = (fun _ -> ());
    on_branch = (fun ~taken:_ -> ());
    on_block = (fun _ -> ());
  }

exception Runaway of int

let run ?(hooks = no_hooks) ?(max_steps = 100_000_000)
    (mem : Ast_interp.memory) (f : Ir.func) ~args =
  if List.length args <> List.length f.arg_regs then
    invalid_arg
      (Printf.sprintf "Ir_interp.run: %s expects %d arguments, got %d"
         f.fname
         (List.length f.arg_regs)
         (List.length args));
  let regs = Array.make (max f.next_reg 1) 0 in
  List.iter2 (fun r v -> regs.(r) <- v) f.arg_regs args;
  let value = function Ir.Reg r -> regs.(r) | Ir.Imm n -> n in
  let blocks = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace blocks b.Ir.label b) f.blocks;
  let steps = ref 0 in
  let step instr =
    incr steps;
    if !steps > max_steps then raise (Runaway !steps);
    hooks.on_instr instr;
    match instr with
    | Ir.Bin (op, d, a, b) ->
      regs.(d) <- Ast_interp.eval_binop op (value a) (value b)
    | Ir.Un (op, d, a) -> regs.(d) <- Ast_interp.eval_unop op (value a)
    | Ir.Mov (d, a) -> regs.(d) <- value a
    | Ir.Load (d, addr) -> regs.(d) <- mem.Ast_interp.load (value addr)
    | Ir.Store (addr, v) -> mem.Ast_interp.store (value addr) (value v)
  in
  let rec exec_block label =
    (* Block entries count toward the step bound too, so that loops of
       empty blocks cannot run away. *)
    incr steps;
    if !steps > max_steps then raise (Runaway !steps);
    hooks.on_block label;
    let b = Hashtbl.find blocks label in
    List.iter step b.Ir.instrs;
    match b.Ir.term with
    | Ir.Jmp l -> exec_block l
    | Ir.Br (c, l1, l2) ->
      let taken = value c <> 0 in
      hooks.on_branch ~taken;
      exec_block (if taken then l1 else l2)
    | Ir.Ret v -> Option.map value v
  in
  exec_block (Ir.entry f).Ir.label

let dynamic_counts mem f ~args =
  let instrs = ref 0 in
  let loads = ref 0 in
  let stores = ref 0 in
  let hooks =
    {
      no_hooks with
      on_instr =
        (fun i ->
          incr instrs;
          match i with
          | Ir.Load _ -> incr loads
          | Ir.Store _ -> incr stores
          | Ir.Bin _ | Ir.Un _ | Ir.Mov _ -> ());
    }
  in
  ignore (run ~hooks mem f ~args);
  (!instrs, !loads, !stores)
