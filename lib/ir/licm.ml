module Ast = Vmht_lang.Ast

let hoistable_op = function
  | Ir.Bin ((Ast.Div | Ast.Rem), _, _, _) -> false (* may trap *)
  | Ir.Bin _ | Ir.Un _ | Ir.Mov _ -> true
  | Ir.Load _ | Ir.Store _ -> false (* memory state / faults *)

let operands_of = function
  | Ir.Bin (_, _, a, b) -> [ a; b ]
  | Ir.Un (_, _, a) | Ir.Mov (_, a) | Ir.Load (_, a) -> [ a ]
  | Ir.Store (a, v) -> [ a; v ]

(* Create (or reuse) a preheader for [header]: a block that all
   non-loop predecessors enter instead of the header.  Returns it. *)
let make_preheader (f : Ir.func) ~header ~loop_labels =
  let in_loop l = List.mem l loop_labels in
  let pre_label = Ir.fresh_label f in
  let pre = { Ir.label = pre_label; instrs = []; term = Ir.Jmp header } in
  (* Redirect entering edges. *)
  List.iter
    (fun (b : Ir.block) ->
      if not (in_loop b.label) && b.label <> pre_label then
        b.term <-
          (match b.term with
           | Ir.Jmp l when l = header -> Ir.Jmp pre_label
           | Ir.Br (c, l1, l2) ->
             let r l = if l = header then pre_label else l in
             Ir.Br (c, r l1, r l2)
           | (Ir.Jmp _ | Ir.Ret _) as t -> t))
    f.blocks;
  (* Keep the entry block first: if the header was the entry, the
     preheader becomes the new entry. *)
  if (Ir.entry f).Ir.label = header then f.blocks <- pre :: f.blocks
  else begin
    (* Insert just before the header for readable dumps. *)
    let rec insert = function
      | [] -> [ pre ]
      | b :: rest when b.Ir.label = header -> pre :: b :: rest
      | b :: rest -> b :: insert rest
    in
    f.blocks <- insert f.blocks
  end;
  pre

let process_loop (f : Ir.func) ~header ~loop_labels =
  let in_loop l = List.mem l loop_labels in
  let loop_blocks =
    List.filter (fun (b : Ir.block) -> in_loop b.label) f.blocks
  in
  (* Definition counts inside the loop. *)
  let def_count : (Ir.reg, int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun i ->
          match Ir.def_of i with
          | Some d ->
            Hashtbl.replace def_count d
              (1 + Option.value ~default:0 (Hashtbl.find_opt def_count d))
          | None -> ())
        b.Ir.instrs)
    loop_blocks;
  let defined_in_loop r = Hashtbl.mem def_count r in
  (* Liveness constraints. *)
  let live = Liveness.compute f in
  let header_live_in = Liveness.live_in live header in
  let exit_targets =
    List.concat_map
      (fun (b : Ir.block) ->
        List.filter (fun s -> not (in_loop s)) (Ir.successors b.Ir.term))
      loop_blocks
    |> List.sort_uniq compare
  in
  let live_at_exits =
    List.fold_left
      (fun acc l -> Liveness.Regset.union acc (Liveness.live_in live l))
      Liveness.Regset.empty exit_targets
  in
  (* Fixpoint: grow the set of invariant definitions. *)
  let invariant : (Ir.reg, unit) Hashtbl.t = Hashtbl.create 8 in
  let operand_invariant = function
    | Ir.Imm _ -> true
    | Ir.Reg r -> (not (defined_in_loop r)) || Hashtbl.mem invariant r
  in
  let marked : (Ir.label * int, unit) Hashtbl.t = Hashtbl.create 8 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Ir.block) ->
        List.iteri
          (fun idx instr ->
            if not (Hashtbl.mem marked (b.Ir.label, idx)) then
              match Ir.def_of instr with
              | Some d
                when hoistable_op instr
                     && Hashtbl.find_opt def_count d = Some 1
                     && (not (Liveness.Regset.mem d header_live_in))
                     && (not (Liveness.Regset.mem d live_at_exits))
                     && List.for_all operand_invariant (operands_of instr) ->
                Hashtbl.replace marked (b.Ir.label, idx) ();
                Hashtbl.replace invariant d ();
                changed := true
              | Some _ | None -> ())
          b.Ir.instrs)
      loop_blocks
  done;
  if Hashtbl.length marked = 0 then 0
  else begin
    let pre = make_preheader f ~header ~loop_labels in
    (* Emit hoisted instructions in dependency order: repeatedly take
       marked instructions whose invariant operands are already
       emitted. *)
    let emitted : (Ir.reg, unit) Hashtbl.t = Hashtbl.create 8 in
    let pending = ref [] in
    List.iter
      (fun (b : Ir.block) ->
        List.iteri
          (fun idx instr ->
            if Hashtbl.mem marked (b.Ir.label, idx) then
              pending := (instr, Ir.def_of instr) :: !pending)
          b.Ir.instrs;
        (* Drop the hoisted instructions from the body. *)
        b.Ir.instrs <-
          List.filteri
            (fun idx _ -> not (Hashtbl.mem marked (b.Ir.label, idx)))
            b.Ir.instrs)
      (List.filter (fun (b : Ir.block) -> in_loop b.Ir.label) f.blocks);
    let pending = ref (List.rev !pending) in
    let hoisted = ref [] in
    let ready (instr, _) =
      List.for_all
        (fun r ->
          (not (Hashtbl.mem invariant r)) || Hashtbl.mem emitted r)
        (Ir.uses_of instr)
    in
    while !pending <> [] do
      let now, later = List.partition ready !pending in
      assert (now <> []);
      List.iter
        (fun (instr, def) ->
          hoisted := instr :: !hoisted;
          match def with
          | Some d -> Hashtbl.replace emitted d ()
          | None -> ())
        now;
      pending := later
    done;
    pre.Ir.instrs <- List.rev !hoisted;
    List.length pre.Ir.instrs
  end

let run (f : Ir.func) =
  let doms = Dominators.compute f in
  let edges = Dominators.back_edges f doms in
  (* Merge latches per header so each loop is processed once. *)
  let headers = List.sort_uniq compare (List.map snd edges) in
  let total = ref 0 in
  List.iter
    (fun header ->
      (* Recompute per loop: earlier hoists change the CFG. *)
      let doms = Dominators.compute f in
      let latches =
        List.filter_map
          (fun (u, h) -> if h = header then Some u else None)
          (Dominators.back_edges f doms)
      in
      if latches <> [] then begin
        let loop_labels =
          List.concat_map
            (fun latch -> Dominators.natural_loop f ~header ~latch)
            latches
          |> List.sort_uniq compare
        in
        total := !total + process_loop f ~header ~loop_labels
      end)
    headers;
  if !total > 0 then Ir.validate f;
  !total
