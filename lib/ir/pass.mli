(** First-class optimization passes.

    A pass is a named, documented rewrite over an {!Ir.func} that
    preserves observable semantics and reports how many rewrites it
    performed (so a driver can iterate a schedule to a fixpoint and
    attribute statistics per pass).  Passes register themselves in a
    process-wide registry, mirroring {!Vmht_eval.Experiment}: listings,
    CLI selection ([--passes a,b,c]) and documentation are all derived
    from the registry, so adding a pass is one [register] call. *)

type kind =
  | Scalar  (** straight-line rewrites of individual instructions *)
  | Memory  (** load/store-aware rewrites *)
  | Loop  (** loop-structure-aware rewrites *)
  | Cfg  (** control-flow-graph restructuring *)
  | Cleanup  (** dead-code removal *)

type t = {
  name : string;  (** unique registry key, e.g. ["const_fold"] *)
  doc : string;  (** one-line description for listings *)
  kind : kind;
  run : Ir.func -> int;  (** apply once; returns the rewrite count *)
}

val kind_name : kind -> string

val register : t -> unit
(** Add a pass to the registry.  Raises [Invalid_argument] if a pass
    with the same name is already registered. *)

val all : unit -> t list
(** Every registered pass, in registration order. *)

val find : string -> t option

val names : unit -> string list
(** Registered pass names, in registration order. *)
