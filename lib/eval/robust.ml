(* Robustness experiment — fault injection and recovery cost across
   execution styles.

   Sweeps a uniform fault rate over four kernels in all three styles
   and reports the recovery overhead: extra cycles the faulty run pays
   over the fault-free run at the same seed.  The structural claim the
   table demonstrates is the paper's: VM-enabled threads recover
   *locally* (a shootdown re-walks, a transient walk retries in place,
   a bus error stretches one transaction), while the copy-based style
   must re-run its whole copy-in/compute/copy-out whenever a staged
   DMA burst aborts — so on the pointer kernels the VM style's
   recovery overhead is strictly smaller.

   Fully deterministic: the fault schedule is a pure function of
   (config, seed), so the rendered table is byte-identical at any
   parallel-harness width. *)

module Table = Vmht_util.Table
module Workload = Vmht_workloads.Workload
module Plan = Vmht_fault.Plan
module Injector = Vmht_fault.Injector

let kernels = [ "vecadd"; "list_sum"; "tree_search"; "bfs" ]

let styles = [ Common.Sw; Common.Dma; Common.Vm ]

(* Low enough that recovery dominates re-execution only mildly, high
   enough that every style actually sees faults (at 1e-3 the copy-based
   style's handful of bursts rarely draws one, which would make the
   comparison vacuous). *)
let default_rates = [ 0.005; 0.02 ]

(* A config arriving with faults already enabled (the CLI's
   [--fault-rate]) *is* the sweep; otherwise sweep the defaults. *)
let plans (base : Vmht.Config.t) =
  if base.Vmht.Config.fault.Plan.enabled then [ base.Vmht.Config.fault ]
  else List.map (fun rate -> Plan.uniform ~rate) default_rates

type cell = {
  clean : int;
  faulty : int;
  correct : bool;
  stats : Injector.stats;
}

let overhead_pct c =
  100. *. float_of_int (c.faulty - c.clean) /. float_of_int (max 1 c.clean)

let measure base plan (w : Workload.t) style =
  let size = w.Workload.default_size in
  let seed = base.Vmht.Config.seed in
  let clean =
    Common.run ~config:(Vmht.Config.with_fault base Plan.none) ~seed style w
      ~size
  in
  let faulty =
    Common.run ~config:(Vmht.Config.with_fault base plan) ~seed style w ~size
  in
  assert clean.Common.correct;
  {
    clean = Common.cycles clean;
    faulty = Common.cycles faulty;
    correct = faulty.Common.correct;
    stats = Vmht.Soc.fault_stats faulty.Common.soc;
  }

let run base =
  let workloads = List.map Vmht_workloads.Registry.find kernels in
  let measurements =
    Common.par_map
      (fun plan ->
        ( plan,
          Common.par_map
            (fun w ->
              (w, Common.par_map (fun style -> (style, measure base plan w style)) styles))
            workloads ))
      (plans base)
  in
  let table =
    Table.create
      ~title:
        "Robustness: recovery overhead under injected faults — cycles \
         (fault-free vs faulty), extra %, and what was injected"
      ~headers:
        [
          "rate"; "kernel"; "style"; "clean"; "faulty"; "overhead"; "inj";
          "retries"; "aborts"; "ok";
        ]
  in
  List.iteri
    (fun i (plan, per_kernel) ->
      if i > 0 then Table.add_separator table;
      List.iter
        (fun ((w : Workload.t), per_style) ->
          List.iter
            (fun (style, c) ->
              Table.add_row table
                [
                  Plan.to_string plan;
                  w.Workload.name;
                  Common.mode_name style;
                  Table.fmt_int c.clean;
                  Table.fmt_int c.faulty;
                  Printf.sprintf "+%.1f%%" (overhead_pct c);
                  string_of_int c.stats.Injector.injected;
                  string_of_int c.stats.Injector.retries;
                  string_of_int c.stats.Injector.aborts;
                  (if c.correct then "yes" else "NO");
                ])
            per_style)
        per_kernel)
    measurements;
  (* The headline comparison: on the pointer kernels, local VM recovery
     vs whole-thread copy-based re-runs. *)
  let summary =
    List.concat_map
      (fun (plan, per_kernel) ->
        List.filter_map
          (fun ((w : Workload.t), per_style) ->
            if not (List.mem w.Workload.name [ "list_sum"; "tree_search"; "bfs" ])
            then None
            else
              let find style = List.assoc style per_style in
              let vm = find Common.Vm and dma = find Common.Dma in
              Some
                (Printf.sprintf
                   "  %-12s @ %-14s vm +%.1f%% vs dma +%.1f%% — %s" w.Workload.name
                   (Plan.to_string plan) (overhead_pct vm) (overhead_pct dma)
                   (if overhead_pct vm < overhead_pct dma then
                      "VM recovery cheaper"
                    else "copy-based cheaper")))
          per_kernel)
      measurements
  in
  Table.render table ^ "\nPointer kernels, recovery overhead:\n"
  ^ String.concat "\n" summary ^ "\n"
