open Vmht
module Workload = Vmht_workloads.Workload
module Addr_space = Vmht_vm.Addr_space

type mode = Sw | Vm | Dma

let mode_name = function Sw -> "sw" | Vm -> "vm" | Dma -> "dma"

type outcome = {
  result : Launch.result;
  correct : bool;
  soc : Soc.t;
  instance : Workload.instance;
  hw : Flow.hw_thread option;
}

(* Result-mismatch log: [run] appends here whenever a workload's output
   disagrees with the reference, so batch drivers (bench) can report
   failure at exit without threading outcomes through every table.

   Under the parallel harness the global list is mutex-guarded, and
   [par_map] gives each task a domain-local sink whose contents are
   merged back in submission order — so the log reads identically
   whatever the parallel schedule (and exactly as the old sequential
   code wrote it when jobs = 1). *)
let mismatch_mutex = Mutex.create ()

let mismatches : string list ref = ref [] (* newest first; guarded *)

(* The active sink of the calling domain: [Some r] inside a [par_map]
   task, [None] (= the shared global) otherwise. *)
let mismatch_sink : string list ref option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let record_mismatch m =
  match Domain.DLS.get mismatch_sink with
  | Some local -> local := m :: !local
  | None ->
    Mutex.lock mismatch_mutex;
    mismatches := m :: !mismatches;
    Mutex.unlock mismatch_mutex

(* Append an oldest-first batch [ms] to the calling context's sink. *)
let merge_mismatches ms =
  if ms <> [] then
    match Domain.DLS.get mismatch_sink with
    | Some local -> local := List.rev_append ms !local
    | None ->
      Mutex.lock mismatch_mutex;
      mismatches := List.rev_append ms !mismatches;
      Mutex.unlock mismatch_mutex

let reset_mismatches () =
  Mutex.lock mismatch_mutex;
  mismatches := [];
  Mutex.unlock mismatch_mutex

let mismatch_log () =
  Mutex.lock mismatch_mutex;
  let l = !mismatches in
  Mutex.unlock mismatch_mutex;
  List.rev l

let par_map f xs =
  Vmht_par.Parmap.map
    (fun x ->
      let local = ref [] in
      let saved = Domain.DLS.get mismatch_sink in
      Domain.DLS.set mismatch_sink (Some local);
      let r =
        Fun.protect
          ~finally:(fun () -> Domain.DLS.set mismatch_sink saved)
          (fun () -> f x)
      in
      (r, List.rev !local))
    xs
  |> List.map (fun (r, ms) ->
         merge_mismatches ms;
         r)

(* --- per-run performance recording --------------------------------- *)

(* Every [run] records its simulated cycle count and host wall time
   into process-wide histograms (and, when a batch driver installed
   one with [with_run_stats], into a scoped recorder too — that is how
   the bench harness gets per-experiment distributions).  Recording is
   two histogram observes under one mutex per run — noise-free for the
   experiments' printed output, which never reads these. *)

module Histogram = Vmht_obs.Histogram

type run_stats = {
  run_cycles : Histogram.t;
  run_host_ns : Histogram.t;
}

let fresh_run_stats () =
  { run_cycles = Histogram.create (); run_host_ns = Histogram.create () }

let perf_mutex = Mutex.create ()

let global_stats = fresh_run_stats () (* guarded by [perf_mutex] *)

let scoped_stats : run_stats option ref = ref None (* guarded *)

let record_run ~cycles ~host_ns =
  Mutex.lock perf_mutex;
  Histogram.observe global_stats.run_cycles cycles;
  Histogram.observe global_stats.run_host_ns host_ns;
  (match !scoped_stats with
  | Some r ->
    Histogram.observe r.run_cycles cycles;
    Histogram.observe r.run_host_ns host_ns
  | None -> ());
  Mutex.unlock perf_mutex

let with_run_stats f =
  let r = fresh_run_stats () in
  Mutex.lock perf_mutex;
  let saved = !scoped_stats in
  scoped_stats := Some r;
  Mutex.unlock perf_mutex;
  let restore () =
    Mutex.lock perf_mutex;
    scoped_stats := saved;
    Mutex.unlock perf_mutex
  in
  let v = Fun.protect ~finally:restore f in
  (v, r)

let global_run_stats () =
  Mutex.lock perf_mutex;
  let r =
    {
      run_cycles = Histogram.copy global_stats.run_cycles;
      run_host_ns = Histogram.copy global_stats.run_host_ns;
    }
  in
  Mutex.unlock perf_mutex;
  r

let reset_run_stats () =
  Mutex.lock perf_mutex;
  Histogram.reset global_stats.run_cycles;
  Histogram.reset global_stats.run_host_ns;
  Mutex.unlock perf_mutex

let run ?(config = Config.default) ?(seed = 42) ?trace_events ?(observe = false)
    mode (w : Workload.t) ~size =
  Vmht_obs.Span.with_span ~cat:"eval"
    (Printf.sprintf "run:%s/%s" w.Workload.name (mode_name mode))
    (fun () ->
  let host_t0 = Unix.gettimeofday () in
  let soc = Soc.create config in
  if observe || Option.is_some trace_events then Soc.enable_tracing soc;
  let instance = w.Workload.setup (Soc.aspace soc) ~size ~seed in
  let request =
    { Launch.args = instance.Workload.args; buffers = instance.Workload.buffers }
  in
  let hw = ref None in
  let result =
    Launch.run_to_completion soc (fun () ->
        match mode with
        | Sw ->
          let func = Flow.compile_sw config (Workload.kernel w) in
          Launch.run_sw soc func request
        | Vm ->
          let t =
            Flow.run_exn
              (Flow.Request.of_kernel ~config ~style:Wrapper.Vm_iface
                 (Workload.kernel w))
          in
          hw := Some t;
          Launch.run_hw soc t request
        | Dma ->
          let t =
            Flow.run_exn
              (Flow.Request.of_kernel ~config ~style:Wrapper.Dma_iface
                 (Workload.kernel w))
          in
          hw := Some t;
          Launch.run_hw soc t request)
  in
  let load = Addr_space.load_word (Soc.aspace soc) in
  let correct =
    result.Launch.ret = instance.Workload.expected_ret
    && instance.Workload.check load
  in
  if not correct then
    record_mismatch
      (Printf.sprintf "%s/%s/size %d" w.Workload.name (mode_name mode) size);
  record_run ~cycles:result.Launch.total_cycles
    ~host_ns:(int_of_float ((Unix.gettimeofday () -. host_t0) *. 1e9));
  { result; correct; soc; instance; hw = !hw })

let cycles o = o.result.Launch.total_cycles

let speedup ~baseline o = float_of_int (cycles baseline) /. float_of_int (cycles o)

let synthesize ?(config = Config.default) ?cache style (w : Workload.t) =
  Flow.run_exn (Flow.Request.of_kernel ~config ~style ?cache (Workload.kernel w))

let source_lines (w : Workload.t) =
  String.split_on_char '\n' w.Workload.source
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length
