open Vmht
module Workload = Vmht_workloads.Workload
module Addr_space = Vmht_vm.Addr_space

type mode = Sw | Vm | Dma

let mode_name = function Sw -> "sw" | Vm -> "vm" | Dma -> "dma"

type outcome = {
  result : Launch.result;
  correct : bool;
  soc : Soc.t;
  instance : Workload.instance;
  hw : Flow.hw_thread option;
}

(* Result-mismatch log: [run] appends here whenever a workload's output
   disagrees with the reference, so batch drivers (bench) can report
   failure at exit without threading outcomes through every table. *)
let mismatches : string list ref = ref []

let reset_mismatches () = mismatches := []

let mismatch_log () = List.rev !mismatches

let run ?(config = Config.default) ?(seed = 42) ?trace_events ?(observe = false)
    mode (w : Workload.t) ~size =
  let soc = Soc.create config in
  if observe || Option.is_some trace_events then Soc.enable_tracing soc;
  let instance = w.Workload.setup (Soc.aspace soc) ~size ~seed in
  let request =
    { Launch.args = instance.Workload.args; buffers = instance.Workload.buffers }
  in
  let hw = ref None in
  let result =
    Launch.run_to_completion soc (fun () ->
        match mode with
        | Sw ->
          let func = Flow.compile_sw config (Workload.kernel w) in
          Launch.run_sw soc func request
        | Vm ->
          let t = Flow.synthesize config Wrapper.Vm_iface (Workload.kernel w) in
          hw := Some t;
          Launch.run_hw soc t request
        | Dma ->
          let t = Flow.synthesize config Wrapper.Dma_iface (Workload.kernel w) in
          hw := Some t;
          Launch.run_hw soc t request)
  in
  let load = Addr_space.load_word (Soc.aspace soc) in
  let correct =
    result.Launch.ret = instance.Workload.expected_ret
    && instance.Workload.check load
  in
  if not correct then
    mismatches :=
      Printf.sprintf "%s/%s/size %d" w.Workload.name (mode_name mode) size
      :: !mismatches;
  { result; correct; soc; instance; hw = !hw }

let cycles o = o.result.Launch.total_cycles

let speedup ~baseline o = float_of_int (cycles baseline) /. float_of_int (cycles o)

let synthesize ?(config = Config.default) style (w : Workload.t) =
  Flow.synthesize config style (Workload.kernel w)

let source_lines (w : Workload.t) =
  String.split_on_char '\n' w.Workload.source
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length
