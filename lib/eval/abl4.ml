(* Ablation 4 — loop pipelining (the extension mode): plain FSM
   execution vs modulo-scheduled loops, with the achieved initiation
   interval.  Latency-bound pointer chases gain nothing (their
   recurrence *is* the memory latency); everything with independent
   iterations gains up to [iteration / II]. *)

module Table = Vmht_util.Table
module Workload = Vmht_workloads.Workload
module Fsm = Vmht_hls.Fsm
module Pipeliner = Vmht_hls.Pipeliner

let subjects =
  [ "vecadd"; "saxpy"; "dotprod"; "mmul"; "histogram"; "list_sum" ]

let run base =
  let table =
    Table.create
      ~title:
        "Ablation 4: loop pipelining — VM-thread cycles, FSM vs \
         modulo-scheduled (achieved II vs FSM iteration length)"
      ~headers:[ "kernel"; "FSM"; "pipelined"; "gain"; "II"; "iter cycles" ]
  in
  Common.par_map
    (fun name ->
      let w = Vmht_workloads.Registry.find name in
      let size = w.Workload.default_size in
      let off = Common.run ~config:base Common.Vm w ~size in
      let config = Vmht.Config.with_pipelining base true in
      let on = Common.run ~config Common.Vm w ~size in
      assert (off.Common.correct && on.Common.correct);
      let ii, iter =
        match on.Common.hw with
        | Some hw -> (
          match hw.Vmht.Flow.fsm.Fsm.plans with
          | p :: _ -> (p.Pipeliner.ii, p.Pipeliner.unpipelined_cycles)
          | [] -> (0, 0))
        | None -> (0, 0)
      in
      [
        name;
        Table.fmt_int (Common.cycles off);
        Table.fmt_int (Common.cycles on);
        Table.fmt_float
          (float_of_int (Common.cycles off) /. float_of_int (Common.cycles on))
        ^ "x";
        string_of_int ii;
        string_of_int iter;
      ])
    subjects
  |> List.iter (Table.add_row table);
  Table.render table
