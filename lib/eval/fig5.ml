(* Figure 5 — tool (synthesis) time and generated FSM size vs unroll
   factor: the flow's scalability in the paper's "design productivity"
   discussion. *)

module Plot = Vmht_util.Ascii_plot
module Table = Vmht_util.Table
module Workload = Vmht_workloads.Workload
module Fsm = Vmht_hls.Fsm

let unroll_factors = [ 1; 2; 4; 8; 16 ]

(* With the synthesis memo cache, repeated trials would only time table
   lookups; the one honest number is the wall time of the single real
   synthesis the cache performed — which is also what keeps this figure
   byte-identical between -j 1 and -j 4 runs in one process. *)
let measure base (w : Workload.t) unroll =
  let config = Vmht.Config.with_unroll base unroll in
  let hw = Common.synthesize ~config Vmht.Wrapper.Vm_iface w in
  (hw.Vmht.Flow.synthesis_seconds *. 1000., hw.Vmht.Flow.fsm.Fsm.stats.Fsm.states)

let run base =
  let workloads =
    List.map Vmht_workloads.Registry.find [ "vecadd"; "mmul"; "spmv" ]
  in
  let measurements =
    Common.par_map
      (fun w ->
        (w, Common.par_map (fun u -> (u, measure base w u)) unroll_factors))
      workloads
  in
  let plot =
    Plot.render ~logx:true
      ~title:"Figure 5: synthesis time vs unroll factor"
      ~xlabel:"unroll factor" ~ylabel:"ms"
      (List.map
         (fun ((w : Workload.t), points) ->
           {
             Plot.label = w.Workload.name;
             points =
               List.map (fun (u, (ms, _)) -> (float_of_int u, ms)) points;
           })
         measurements)
  in
  let table =
    Table.create ~title:"Figure 5 (data): FSM states vs unroll factor"
      ~headers:("kernel" :: List.map string_of_int unroll_factors)
  in
  List.iter
    (fun ((w : Workload.t), points) ->
      Table.add_row table
        (w.Workload.name
        :: List.map (fun (_, (_, states)) -> string_of_int states) points))
    measurements;
  plot ^ "\n" ^ Table.render table
