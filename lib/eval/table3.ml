(* Table 3 — end-to-end performance at the default sizes: software
   thread vs copy-based accelerator vs VM-enabled hardware thread. *)

module Table = Vmht_util.Table
module Stats = Vmht_util.Stats
module Workload = Vmht_workloads.Workload

let run base =
  let table =
    Table.create
      ~title:
        "Table 3: end-to-end cycles and speedup over software (default sizes)"
      ~headers:
        [
          "kernel"; "size"; "SW cycles"; "DMA cycles"; "VM cycles";
          "DMA speedup"; "VM speedup"; "VM/DMA"; "ok";
        ]
  in
  let measured =
    Common.par_map
      (fun (w : Workload.t) ->
        let size = w.Workload.default_size in
        let sw = Common.run ~config:base Common.Sw w ~size in
        let dma = Common.run ~config:base Common.Dma w ~size in
        let vm = Common.run ~config:base Common.Vm w ~size in
        let s_dma = Common.speedup ~baseline:sw dma in
        let s_vm = Common.speedup ~baseline:sw vm in
        let row =
          [
            w.Workload.name;
            string_of_int size;
            Table.fmt_int (Common.cycles sw);
            Table.fmt_int (Common.cycles dma);
            Table.fmt_int (Common.cycles vm);
            Table.fmt_float s_dma ^ "x";
            Table.fmt_float s_vm ^ "x";
            Table.fmt_float
              (float_of_int (Common.cycles dma)
              /. float_of_int (Common.cycles vm))
            ^ "x";
            (if sw.Common.correct && dma.Common.correct && vm.Common.correct
             then "yes"
             else "NO");
          ]
        in
        (row, s_dma, s_vm))
      Vmht_workloads.Registry.all
  in
  List.iter (fun (row, _, _) -> Table.add_row table row) measured;
  let dma_speedups = List.map (fun (_, s, _) -> s) measured in
  let vm_speedups = List.map (fun (_, _, s) -> s) measured in
  Table.add_separator table;
  Table.add_row table
    [
      "geomean"; ""; ""; ""; "";
      Table.fmt_float (Stats.geomean dma_speedups) ^ "x";
      Table.fmt_float (Stats.geomean vm_speedups) ^ "x";
    ];
  Table.render table
