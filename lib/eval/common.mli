(** Shared machinery for the experiment runners: execute a workload on
    a fresh SoC in a given style and collect everything the tables and
    figures report. *)

type mode = Sw | Vm | Dma

val mode_name : mode -> string

type outcome = {
  result : Vmht.Launch.result;
  correct : bool; (** outputs checked against the reference *)
  soc : Vmht.Soc.t;
  instance : Vmht_workloads.Workload.instance;
  hw : Vmht.Flow.hw_thread option; (** absent for software runs *)
}

val run :
  ?config:Vmht.Config.t ->
  ?seed:int ->
  ?trace_events:int ->
  ?observe:bool ->
  mode ->
  Vmht_workloads.Workload.t ->
  size:int ->
  outcome
(** Build a fresh SoC, set the workload up, synthesize (hardware
    styles), execute, and verify the outputs.  [trace_events] enables
    the SoC trace before running (the value is advisory — the trace's
    own capacity bounds retention); [observe] (default false) does the
    same without implying the CLI's textual dump — both turn typed
    event observation on via {!Vmht.Soc.enable_tracing}. *)

val mismatch_log : unit -> string list
(** Workload/mode/size identifiers of every incorrect run since the
    last {!reset_mismatches}, oldest first. *)

val reset_mismatches : unit -> unit

val cycles : outcome -> int

val speedup : baseline:outcome -> outcome -> float
(** [baseline.cycles / outcome.cycles]. *)

val synthesize :
  ?config:Vmht.Config.t ->
  Vmht.Wrapper.style ->
  Vmht_workloads.Workload.t ->
  Vmht.Flow.hw_thread
(** Synthesis only (no execution) — for the area and synthesis-time
    experiments. *)

val source_lines : Vmht_workloads.Workload.t -> int
(** Non-empty source lines of the workload's kernel. *)
