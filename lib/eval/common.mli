(** Shared machinery for the experiment runners: execute a workload on
    a fresh SoC in a given style and collect everything the tables and
    figures report. *)

type mode = Sw | Vm | Dma

val mode_name : mode -> string

type outcome = {
  result : Vmht.Launch.result;
  correct : bool; (** outputs checked against the reference *)
  soc : Vmht.Soc.t;
  instance : Vmht_workloads.Workload.instance;
  hw : Vmht.Flow.hw_thread option; (** absent for software runs *)
}

val run :
  ?config:Vmht.Config.t ->
  ?seed:int ->
  ?trace_events:int ->
  ?observe:bool ->
  mode ->
  Vmht_workloads.Workload.t ->
  size:int ->
  outcome
(** Build a fresh SoC, set the workload up, synthesize (hardware
    styles), execute, and verify the outputs.  [trace_events] enables
    the SoC trace before running (the value is advisory — the trace's
    own capacity bounds retention); [observe] (default false) does the
    same without implying the CLI's textual dump — both turn typed
    event observation on via {!Vmht.Soc.enable_tracing}. *)

(** {2 Per-run performance recording} *)

type run_stats = {
  run_cycles : Vmht_obs.Histogram.t;  (** simulated cycles per run *)
  run_host_ns : Vmht_obs.Histogram.t;  (** host wall time per run, ns *)
}

val record_run : cycles:int -> host_ns:int -> unit
(** Add one run to the per-run histograms (global and any scoped
    recorder).  {!run} does this itself; experiments that drive
    {!Vmht.Launch} directly (multi-thread scaling, for instance) call
    it so the bench manifest still sees their runs. *)

val with_run_stats : (unit -> 'a) -> 'a * run_stats
(** Run the thunk with a scoped recorder installed: every {!run} that
    completes inside it (on any domain — the harness records under one
    mutex) is added to the returned histograms as well as the global
    ones.  The bench harness wraps each experiment in this to get
    per-experiment distributions. *)

val global_run_stats : unit -> run_stats
(** A consistent copy of the process-wide per-run histograms. *)

val reset_run_stats : unit -> unit

val mismatch_log : unit -> string list
(** Workload/mode/size identifiers of every incorrect run since the
    last {!reset_mismatches}, oldest first.  Safe (and deterministic:
    merged in submission order by {!par_map}) under parallel runs. *)

val reset_mismatches : unit -> unit

val par_map : ('a -> 'b) -> 'a list -> 'b list
(** {!Vmht_par.Parmap.map} with mismatch capture: each task records
    into a private sink, and the sinks are merged into the caller's
    log in submission order, so the mismatch log (like the returned
    list) is independent of the parallel schedule.  Experiments use
    this for every sweep; with jobs = 1 it is exactly [List.map]. *)

val cycles : outcome -> int

val speedup : baseline:outcome -> outcome -> float
(** [baseline.cycles / outcome.cycles]. *)

val synthesize :
  ?config:Vmht.Config.t ->
  ?cache:bool ->
  Vmht.Wrapper.style ->
  Vmht_workloads.Workload.t ->
  Vmht.Flow.hw_thread
(** Synthesis only (no execution) — for the area and synthesis-time
    experiments.  [cache] becomes the request's cache flag for
    {!Vmht.Flow.run} (default: cached); pass [~cache:false] when
    *timing* synthesis. *)

val source_lines : Vmht_workloads.Workload.t -> int
(** Non-empty source lines of the workload's kernel. *)
