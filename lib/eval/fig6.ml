(* Figure 6 — multi-hardware-thread scaling on the shared bus.

   Two contrasting kernels, N concurrent VM-enabled threads each:
   - mmul (compute-bound, high stream-buffer reuse) scales until its
     aggregate demand meets the bus;
   - vecadd (bandwidth-bound streaming) saturates the bus with a single
     thread (≈ 0.86 utilization), so extra threads only queue.

   The data listing reports the measured bus utilization at every
   point, which is the whole explanation. *)

module Plot = Vmht_util.Ascii_plot
module Table = Vmht_util.Table
module Workload = Vmht_workloads.Workload
module Hthreads = Vmht_rt.Hthreads
open Vmht

let thread_counts = [ 1; 2; 3; 4; 6; 8 ]

type point = { span : int; utilization : float }

let measure config (w : Workload.t) ~size n =
  let host_t0 = Unix.gettimeofday () in
  let soc = Soc.create config in
  let instances =
    List.init n (fun i -> w.Workload.setup (Soc.aspace soc) ~size ~seed:(i + 1))
  in
  let hw =
    Flow.run_exn
      (Flow.Request.of_kernel ~config ~style:Wrapper.Vm_iface
         (Workload.kernel w))
  in
  let span =
    Launch.run_to_completion soc (fun () ->
        let t0 = Vmht_sim.Engine.now_p () in
        let threads =
          List.mapi
            (fun i (inst : Workload.instance) ->
              Hthreads.spawn ~name:(Printf.sprintf "ht%d" i) (fun () ->
                  Launch.run_hw soc hw
                    { Launch.args = inst.Workload.args; buffers = [] }))
            instances
        in
        List.iter (fun t -> ignore (Hthreads.join t)) threads;
        Vmht_sim.Engine.now_p () - t0)
  in
  let load = Vmht_vm.Addr_space.load_word (Soc.aspace soc) in
  List.iter
    (fun (inst : Workload.instance) -> assert (inst.Workload.check load))
    instances;
  (* One N-thread point = one run as far as the bench manifest is
     concerned; [Common.run] never sees these launches. *)
  Common.record_run ~cycles:span
    ~host_ns:(int_of_float ((Unix.gettimeofday () -. host_t0) *. 1e9));
  { span; utilization = Vmht_mem.Bus.utilization (Soc.bus soc) ~total_cycles:span }

let run base =
  let subjects =
    [ (Vmht_workloads.Registry.find "mmul", 16); (Vmht_workloads.Registry.find "vecadd", 2048) ]
  in
  let measurements =
    Common.par_map
      (fun (w, size) ->
        ( w,
          size,
          Common.par_map (fun n -> (n, measure base w ~size n)) thread_counts
        ))
      subjects
  in
  (* Aggregate speedup over the single-thread run of the same kernel:
     N threads finishing in the single-thread span = speedup N. *)
  let speedup_series (w : Workload.t) points =
    let single = match points with (1, p) :: _ -> p.span | _ -> 1 in
    {
      Plot.label = w.Workload.name;
      points =
        List.map
          (fun (n, p) ->
            ( float_of_int n,
              float_of_int (n * single) /. float_of_int p.span ))
          points;
    }
  in
  let ideal =
    {
      Plot.label = "ideal";
      points = List.map (fun n -> (float_of_int n, float_of_int n)) thread_counts;
    }
  in
  let plot =
    Plot.render
      ~title:
        "Figure 6: aggregate speedup vs concurrent VM hardware threads \
         (compute-bound mmul scales; bandwidth-bound vecadd saturates the \
         bus immediately)"
      ~xlabel:"threads" ~ylabel:"aggregate speedup"
      (List.map (fun (w, _, points) -> speedup_series w points) measurements
      @ [ ideal ])
  in
  let table =
    Table.create ~title:"Figure 6 (data): span and bus utilization"
      ~headers:[ "kernel"; "threads"; "span cycles"; "bus utilization" ]
  in
  List.iter
    (fun ((w : Workload.t), _, points) ->
      List.iter
        (fun (n, p) ->
          Table.add_row table
            [
              w.Workload.name;
              string_of_int n;
              Table.fmt_int p.span;
              Table.fmt_float ~decimals:3 p.utilization;
            ])
        points;
      Table.add_separator table)
    measurements;
  plot ^ "\n" ^ Table.render table
