(** The synthesis-as-a-service load generator.

    Draws a seeded request mix — synthesis and execution jobs over six
    kernels crossed with a config sweep (unroll, optimization level,
    TLB size, wrapper style) — and drives it through a
    {!Vmht_serve.Server}, reporting throughput, latency quantiles and
    the store hit rate into a machine-readable manifest.

    The printed report is built only from the request list and the
    reply outcomes, both of which are deterministic, so stdout is
    byte-identical between a cold and a warm store, at any shard
    count, and on the in-process substrate — the timing-bearing
    numbers live exclusively in the manifest. *)

val subjects : string list
(** The six kernels the mix draws from. *)

val handle : Vmht_serve.Proto.request -> Vmht_serve.Proto.outcome
(** The full job handler: [Synthesize] through the flow (and the
    installed store), [Execute] through {!Common.run} on a fresh
    simulated SoC. *)

val mix :
  config:Vmht.Config.t ->
  requests:int ->
  seed:int ->
  Vmht_serve.Proto.request list
(** Deterministic in [(config, requests, seed)]; rids are [0..n-1]. *)

type report = {
  output : string;  (** deterministic, for stdout *)
  manifest : Vmht_obs.Json.t;  (** schema [vmht-loadgen/1]; carries timing *)
  failures : int;  (** replies with a [Failed] or incorrect outcome *)
  hit_rate : float;  (** store hit rate over this batch's synthesis keys *)
  perf_line : string;
      (** one timing-bearing summary line, for stderr — never stdout *)
}

val run :
  ?store:Vmht_serve.Store.t ->
  server:Vmht_serve.Server.t ->
  seed:int ->
  Vmht_serve.Proto.request list ->
  report
(** Run one batch and build the report.  [store] only feeds the
    manifest's store-counter section. *)
