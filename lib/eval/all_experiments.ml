(* Thin compatibility shim over {!Experiment}: name-keyed dispatch for
   callers that predate the registry (tests, mostly). *)

let names = Experiment.names

let run ?config name =
  match Experiment.find name with
  | Some e -> Experiment.run ?config e
  | None -> raise Not_found

(* Experiments fan out across the domain pool (and, inside each, their
   sweep points fan out again — [Common.par_map] nests safely).  The
   rendered sections come back in registry order and mismatches merge
   in submission order, so the output is byte-identical to a
   sequential run. *)
let run_all ?(config = Vmht.Config.default) () =
  String.concat "\n"
    (Common.par_map
       (fun (e : Experiment.t) ->
         Printf.sprintf "===== %s =====\n%s" e.Experiment.name
           (Experiment.run ~config e))
       Experiment.all)
