let experiments =
  [
    ("table1", Table1.run);
    ("table2", Table2.run);
    ("table3", Table3.run);
    ("table4", Table4.run);
    ("table5", Table5.run);
    ("table6", Table6.run);
    ("fig1", Fig1.run);
    ("fig2", Fig2.run);
    ("fig3", Fig3.run);
    ("fig4", Fig4.run);
    ("fig5", Fig5.run);
    ("fig6", Fig6.run);
    ("abl1", Abl1.run);
    ("abl2", Abl2.run);
    ("abl3", Abl3.run);
    ("abl4", Abl4.run);
  ]

let names = List.map fst experiments

let run name = (List.assoc name experiments) ()

(* Experiments fan out across the domain pool (and, inside each, their
   sweep points fan out again — [Common.par_map] nests safely).  The
   rendered sections come back in registry order and mismatches merge
   in submission order, so the output is byte-identical to a
   sequential run. *)
let run_all () =
  String.concat "\n"
    (Common.par_map
       (fun (name, f) -> Printf.sprintf "===== %s =====\n%s" name (f ()))
       experiments)
