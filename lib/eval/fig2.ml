(* Figure 2 — sensitivity to TLB size: runtime and hit rate vs entry
   count.  Runtime saturates once the TLB covers the working set of
   pages; the pointer chase needs far more entries than streaming. *)

module Plot = Vmht_util.Ascii_plot
module Table = Vmht_util.Table
module Workload = Vmht_workloads.Workload
module Mmu = Vmht_vm.Mmu

let entry_counts = [ 2; 4; 8; 16; 32; 64; 128 ]

let measure base (w : Workload.t) entries =
  let config = Vmht.Config.with_tlb_entries base entries in
  let o = Common.run ~config Common.Vm w ~size:w.Workload.default_size in
  assert o.Common.correct;
  let hit_rate = Option.value ~default:0. o.Common.result.Vmht.Launch.tlb_hit_rate in
  (Common.cycles o, hit_rate)

let run base =
  let workloads =
    List.map Vmht_workloads.Registry.find [ "vecadd"; "spmv"; "list_sum" ]
  in
  let measurements =
    Common.par_map
      (fun w ->
        (w, Common.par_map (fun e -> (e, measure base w e)) entry_counts))
      workloads
  in
  let series =
    List.map
      (fun ((w : Workload.t), points) ->
        (* Normalize to the largest-TLB runtime so kernels share a scale. *)
        let best =
          List.fold_left (fun acc (_, (c, _)) -> min acc c) max_int points
        in
        {
          Plot.label = w.Workload.name;
          points =
            List.map
              (fun (e, (c, _)) ->
                (float_of_int e, float_of_int c /. float_of_int best))
              points;
        })
      measurements
  in
  let plot =
    Plot.render ~logx:true
      ~title:
        "Figure 2: VM-thread runtime vs TLB entries (normalized to the \
         saturated runtime)"
      ~xlabel:"TLB entries" ~ylabel:"relative runtime" series
  in
  let table =
    Table.create ~title:"Figure 2 (data): TLB hit rates"
      ~headers:
        ("kernel" :: List.map string_of_int entry_counts)
  in
  List.iter
    (fun ((w : Workload.t), points) ->
      Table.add_row table
        (w.Workload.name
        :: List.map
             (fun (_, (_, hr)) -> Table.fmt_float ~decimals:3 hr)
             points))
    measurements;
  plot ^ "\n" ^ Table.render table
