(* Ablation 3 — datapath parallelism: loop unrolling x memory ports on
   the copy-based style, whose scratchpad is genuinely multi-ported
   BRAM (the VM wrapper's TLB+buffer port is single-issue, so extra
   ports buy it nothing — itself a finding this table documents by
   contrast).  Unrolling without ports starves on the single port;
   ports without unrolling find no parallel accesses; together they
   compound.  Reported: the accelerator's *compute* phase (staging and
   draining are identical across the sweep); the LUT column prices the
   parallelism. *)

module Table = Vmht_util.Table
module Workload = Vmht_workloads.Workload
module Schedule = Vmht_hls.Schedule
module Optypes = Vmht_hls.Optypes

let unroll_factors = [ 1; 2; 4; 8 ]

let port_counts = [ 1; 2; 4 ]

let config_with base ~unroll ~ports =
  {
    base with
    Vmht.Config.unroll;
    accel_mem_ports = ports;
    resources =
      { base.Vmht.Config.resources with Schedule.mem = Schedule.flat_mem ports };
  }

let run base =
  let w = Vmht_workloads.Registry.find "vecadd" in
  let table =
    Table.create
      ~title:
        "Ablation 3: vecadd (copy-based) compute cycles vs unroll factor \
         and scratchpad ports — datapath LUTs in the last column"
      ~headers:
        ("unroll"
        :: List.map (fun p -> Printf.sprintf "%d port(s)" p) port_counts
        @ [ "LUT" ])
  in
  Common.par_map
    (fun unroll ->
      let cells =
        Common.par_map
          (fun ports ->
            let config = config_with base ~unroll ~ports in
            let o = Common.run ~config Common.Dma w ~size:w.Workload.default_size in
            assert o.Common.correct;
            Table.fmt_int
              o.Common.result.Vmht.Launch.phases.Vmht.Launch.compute_cycles)
          port_counts
      in
      let area =
        (Common.synthesize
           ~config:(config_with base ~unroll ~ports:2)
           Vmht.Wrapper.Dma_iface w)
          .Vmht.Flow.datapath_area
      in
      (string_of_int unroll :: cells) @ [ string_of_int area.Optypes.lut ])
    unroll_factors
  |> List.iter (Table.add_row table);
  Table.render table
