(* Ablation 2 — TLB organization: replacement policy and associativity
   at a fixed 16-entry budget.  Full associativity pays off for the
   scattered pointer chase (conflict misses dominate in the 1-way
   organization); LRU beats FIFO most where re-reference is common. *)

module Table = Vmht_util.Table
module Workload = Vmht_workloads.Workload
module Tlb = Vmht_vm.Tlb
module Mmu = Vmht_vm.Mmu

let organizations =
  [
    ("full/LRU", { Tlb.entries = 16; assoc = 0; policy = Tlb.Lru });
    ("full/FIFO", { Tlb.entries = 16; assoc = 0; policy = Tlb.Fifo });
    ("4-way/LRU", { Tlb.entries = 16; assoc = 4; policy = Tlb.Lru });
    ("4-way/FIFO", { Tlb.entries = 16; assoc = 4; policy = Tlb.Fifo });
    ("1-way", { Tlb.entries = 16; assoc = 1; policy = Tlb.Lru });
  ]

let measure base tlb (w : Workload.t) =
  let config =
    { base with Vmht.Config.mmu = { base.Vmht.Config.mmu with Mmu.tlb } }
  in
  let o = Common.run ~config Common.Vm w ~size:w.Workload.default_size in
  assert o.Common.correct;
  let hit_rate =
    Option.value ~default:0. o.Common.result.Vmht.Launch.tlb_hit_rate
  in
  (Common.cycles o, hit_rate)

let run base =
  let workloads =
    List.map Vmht_workloads.Registry.find [ "spmv"; "list_sum"; "tree_search" ]
  in
  let table =
    Table.create
      ~title:
        "Ablation 2: TLB organization at 16 entries — cycles (hit rate)"
      ~headers:("organization" :: List.map (fun w -> w.Workload.name) workloads)
  in
  Common.par_map
    (fun (name, tlb) ->
      let cells =
        Common.par_map
          (fun w ->
            let cycles, hr = measure base tlb w in
            Printf.sprintf "%s (%.3f)" (Table.fmt_int cycles) hr)
          workloads
      in
      name :: cells)
    organizations
  |> List.iter (Table.add_row table);
  Table.render table
