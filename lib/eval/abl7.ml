(* Ablation 7 — the simulator fast path: single-runnable wait batching
   in the engine, trace-compiled accelerator blocks with fused waits
   over memory-free cycles, and the direct-mapped translation memo in
   front of the TLB scan.  The fast path is a host-time optimization
   only: every subject must produce the same final cycle count and
   correct outputs with it on and off — including under fault
   injection, where every injector draw happens in an unfused memory
   cycle and so lands exactly where the plain interpreter puts it.
   The rows also report how much work the fast path absorbed
   (fast-forwarded waits, memo hits), which is why this table is an
   ablation and not just a test. *)

module Table = Vmht_util.Table
module Workload = Vmht_workloads.Workload
module Engine = Vmht_sim.Engine
module Mmu = Vmht_vm.Mmu

(* kernel, execution style, fault rate.  The faulty row is the de-opt
   witness: injected translation faults must not shift cycles. *)
let subjects =
  [
    ("vecadd", Common.Vm, 0.0);
    ("spmv", Common.Vm, 0.0);
    ("list_sum", Common.Sw, 0.0);
    ("bfs", Common.Dma, 0.0);
    ("tree_search", Common.Vm, 0.005);
  ]

let measure base ~fastpath ~rate mode (w : Workload.t) =
  let config = Vmht.Config.with_fastpath base fastpath in
  let config =
    if rate > 0.0 then
      Vmht.Config.with_fault config (Vmht_fault.Plan.uniform ~rate)
    else config
  in
  let o = Common.run ~config mode w ~size:w.Workload.default_size in
  assert o.Common.correct;
  let soc = o.Common.soc in
  let memo_hits =
    List.fold_left (fun acc m -> acc + Mmu.tlb_memo_hits m) 0 (Vmht.Soc.mmus soc)
  in
  (Common.cycles o, Engine.fast_forwards (Vmht.Soc.engine soc), memo_hits)

let run base =
  let table =
    Table.create
      ~title:
        "Ablation 7: simulator fast path on vs off — identical cycles"
      ~headers:
        [
          "kernel";
          "mode";
          "fault rate";
          "cycles (on)";
          "cycles (off)";
          "fast-forwards";
          "TLB memo hits";
        ]
  in
  Common.par_map
    (fun (name, mode, rate) ->
      let w = Vmht_workloads.Registry.find name in
      let on_cycles, ffs, memo =
        measure base ~fastpath:true ~rate mode w
      in
      let off_cycles, off_ffs, off_memo =
        measure base ~fastpath:false ~rate mode w
      in
      (* The claim this ablation exists to check: the fast path is
         invisible in simulated time, and it is genuinely off when
         disabled. *)
      assert (on_cycles = off_cycles);
      assert (off_ffs = 0 && off_memo = 0);
      [
        name;
        Common.mode_name mode;
        Printf.sprintf "%.3f" rate;
        Table.fmt_int on_cycles;
        Table.fmt_int off_cycles;
        Table.fmt_int ffs;
        Table.fmt_int memo;
      ])
    subjects
  |> List.iter (Table.add_row table);
  Table.render table
