(* Ablation 1 — the VM wrapper's stream buffer: sweep its size from
   effectively-off (one line) to 16 KiB and watch runtime and the
   buffer's share of the wrapper area.  Justifies the 4 KiB default:
   the knee sits there for the streaming kernels, while the pointer
   chase barely cares (its locality is in the TLB, not in lines). *)

module Table = Vmht_util.Table
module Workload = Vmht_workloads.Workload
module Cache = Vmht_mem.Cache

let sizes_bytes = [ 32; 512; 1024; 4096; 16384 ]

let label_of bytes = if bytes = 32 then "off (1 line)" else Printf.sprintf "%dB" bytes

let config_with_buffer base bytes =
  let ways = if bytes <= 32 then 1 else 4 in
  {
    base with
    Vmht.Config.accel_stream_buffer =
      { Cache.size_bytes = bytes; line_bytes = 32; ways; hit_latency = 1 };
  }

let run base =
  let workloads =
    List.map Vmht_workloads.Registry.find [ "vecadd"; "stencil3"; "list_sum" ]
  in
  let table =
    Table.create
      ~title:
        "Ablation 1: VM-thread cycles vs wrapper stream-buffer size \
         (default sizes)"
      ~headers:("buffer" :: List.map (fun w -> w.Workload.name) workloads)
  in
  Common.par_map
    (fun bytes ->
      let config = config_with_buffer base bytes in
      let cells =
        Common.par_map
          (fun w ->
            let o = Common.run ~config Common.Vm w ~size:w.Workload.default_size in
            assert o.Common.correct;
            Table.fmt_int (Common.cycles o))
          workloads
      in
      label_of bytes :: cells)
    sizes_bytes
  |> List.iter (Table.add_row table);
  Table.render table
