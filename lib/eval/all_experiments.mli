(** Registry of every table and figure the benchmark harness can
    regenerate. *)

val names : string list
(** In report order: table1..table5, fig1..fig6. *)

val run : string -> string
(** Run one experiment by name and return its rendered output.
    Raises [Not_found] for unknown names. *)

val run_all : unit -> string
(** Every experiment, concatenated — the full evaluation section. *)
