(** Name-keyed dispatch over the {!Experiment} registry — kept as the
    stable entry point for tests and older callers. *)

val names : string list
(** In report order: table1..table6, fig1..fig6, abl1..abl5, robust. *)

val run : ?config:Vmht.Config.t -> string -> string
(** Run one experiment by name against [config] (default
    {!Vmht.Config.default}) and return its rendered output.
    Raises [Not_found] for unknown names. *)

val run_all : ?config:Vmht.Config.t -> unit -> string
(** Every experiment, concatenated — the full evaluation section. *)
