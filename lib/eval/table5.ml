(* Table 5 — programming effort: source lines touched to move a thread
   from software to each hardware interface style.

   With the VM interface a thread function is retargeted by flipping
   the partition flag (1 line in the thread table).  The copy-based
   style additionally needs explicit staging code: a window/descriptor
   registration per buffer plus a copy-in and/or copy-out call per
   directional buffer — the lines this table counts. *)

module Table = Vmht_util.Table
module Workload = Vmht_workloads.Workload

let dma_effort_lines (instance : Workload.instance) =
  let buffers = instance.Workload.buffers in
  let windows = List.length buffers in
  let stages =
    List.fold_left
      (fun acc (b : Vmht.Launch.buffer) ->
        match b.Vmht.Launch.dir with
        | Vmht.Launch.In | Vmht.Launch.Out -> acc + 1
        | Vmht.Launch.InOut -> acc + 2)
      0 buffers
  in
  1 + windows + stages

let run base =
  let table =
    Table.create
      ~title:
        "Table 5: programming effort to move a thread to hardware \
         (source lines touched)"
      ~headers:
        [ "kernel"; "kernel LoC"; "buffers"; "VM lines"; "DMA lines" ]
  in
  Common.par_map
    (fun (w : Workload.t) ->
      let soc = Vmht.Soc.create base in
      let instance =
        w.Workload.setup (Vmht.Soc.aspace soc) ~size:64 ~seed:1
      in
      [
        w.Workload.name;
        string_of_int (Common.source_lines w);
        string_of_int (List.length instance.Workload.buffers);
        "1";
        string_of_int (dma_effort_lines instance);
      ])
    Vmht_workloads.Registry.all
  |> List.iter (Table.add_row table);
  Table.render table
