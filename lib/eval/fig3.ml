(* Figure 3 — sensitivity to page size.  Larger pages mean fewer TLB
   misses for a fixed working set (each entry covers more data) at the
   cost of heavier demand-fault granularity; the pointer chase benefits
   most. *)

module Plot = Vmht_util.Ascii_plot
module Workload = Vmht_workloads.Workload

let page_shifts = [ 10; 11; 12; 13; 14; 15; 16 ]

let series_for base (w : Workload.t) =
  let points =
    Common.par_map
      (fun shift ->
        let config = Vmht.Config.with_page_shift base shift in
        let o = Common.run ~config Common.Vm w ~size:w.Workload.default_size in
        assert o.Common.correct;
        (float_of_int (1 lsl shift), float_of_int (Common.cycles o)))
      page_shifts
  in
  { Plot.label = w.Workload.name; points }

let run base =
  Plot.render ~logx:true
    ~title:"Figure 3: VM-thread runtime vs page size (bytes)"
    ~xlabel:"page bytes" ~ylabel:"cycles"
    (Common.par_map
       (fun name -> series_for base (Vmht_workloads.Registry.find name))
       [ "list_sum"; "mmul"; "spmv" ])
