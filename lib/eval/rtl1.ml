(* rtl1 — closing the RTL loop.

   Every kernel x schedule preset of the dse1 grid (unroll x banks x
   opt x TLB) runs twice: once on the model-level FSM executor and
   once on the RTL evaluator, which parses the *emitted Verilog text*
   back and executes the emitted bytes against the same memory/VM
   stack (identical translation, banking, and fault draws).  The
   contract this sweep enforces is total: same outputs, same return
   value, same final cycle count, and the same load/store/FSM-cycle
   accounting at every point — any divergence is an emitter bug and
   fails the experiment loudly.  A DMA section covers the scratchpad
   port path at the default knobs.  Points fan out over the domain
   pool ([Common.par_map]), so the manifest is byte-identical at any
   -j width. *)

module Table = Vmht_util.Table
module Workload = Vmht_workloads.Workload

type point = {
  kernel : string;
  mode : Common.mode;
  unroll : int;
  banks : int;
  opt : int;
  tlb : int;
}

let grid =
  let a = Dse.default_axes in
  let vm =
    List.concat_map
      (fun kernel ->
        List.concat_map
          (fun unroll ->
            List.concat_map
              (fun banks ->
                List.concat_map
                  (fun opt ->
                    List.map
                      (fun tlb ->
                        { kernel; mode = Common.Vm; unroll; banks; opt; tlb })
                      a.Dse.tlbs)
                  a.Dse.opts)
              a.Dse.banks)
          a.Dse.unrolls)
      Dse.default_kernels
  in
  let dma =
    List.map
      (fun kernel ->
        { kernel; mode = Common.Dma; unroll = 1; banks = 1; opt = 2; tlb = 8 })
      Dse.default_kernels
  in
  vm @ dma

(* What one backend reports for one point: everything the differential
   compares. *)
type obs = {
  cycles : int;
  ret : int option;
  correct : bool;
  loads : int;
  stores : int;
  fsm_cycles : int;
}

let measure base backend p ~size =
  let config =
    Vmht.Config.with_backend
      (Vmht.Config.with_tlb_entries
         (Vmht.Config.with_opt_level
            (Vmht.Config.with_banks
               (Vmht.Config.with_unroll base p.unroll)
               p.banks)
            p.opt)
         p.tlb)
      backend
  in
  let w = Vmht_workloads.Registry.find p.kernel in
  let o = Common.run ~config p.mode w ~size in
  let r = o.Common.result in
  let loads, stores, fsm_cycles =
    match r.Vmht.Launch.accel_stats with
    | Some s -> (s.Vmht_hls.Accel.loads, s.Vmht_hls.Accel.stores, s.Vmht_hls.Accel.fsm_cycles)
    | None -> (0, 0, 0)
  in
  {
    cycles = Common.cycles o;
    ret = r.Vmht.Launch.ret;
    correct = o.Common.correct;
    loads;
    stores;
    fsm_cycles;
  }

let agrees m r =
  m.correct && r.correct && m.cycles = r.cycles && m.ret = r.ret
  && m.loads = r.loads && m.stores = r.stores
  && m.fsm_cycles = r.fsm_cycles

let point_label p =
  Printf.sprintf "%s/%s u%d b%d -O%d tlb%d" p.kernel
    (Common.mode_name p.mode) p.unroll p.banks p.opt p.tlb

let run base =
  let size = Dse.default_size in
  let rows =
    Common.par_map
      (fun p ->
        let m = measure base Vmht.Config.Model p ~size in
        let r = measure base Vmht.Config.Rtl p ~size in
        (p, m, r))
      grid
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "rtl1: emitted-Verilog evaluator vs model executor, size %d \
            (%d points)"
           size (List.length rows))
      ~headers:
        [
          "point";
          "cycles (model)";
          "cycles (rtl)";
          "ret";
          "loads";
          "stores";
          "fsm cycles";
          "verdict";
        ]
  in
  List.iter
    (fun (p, m, r) ->
      Table.add_row table
        [
          point_label p;
          Table.fmt_int m.cycles;
          Table.fmt_int r.cycles;
          (match m.ret with Some v -> string_of_int v | None -> "-");
          Table.fmt_int r.loads;
          Table.fmt_int r.stores;
          Table.fmt_int r.fsm_cycles;
          (if agrees m r then "match" else "DIVERGED");
        ])
    rows;
  let rendered = Table.render table in
  let diverged =
    List.filter_map
      (fun (p, m, r) -> if agrees m r then None else Some (point_label p))
      rows
  in
  if diverged <> [] then
    (* A divergence is an emitter (or evaluator) bug, never data: fail
       the experiment so CI cannot ship it. *)
    failwith
      (Printf.sprintf "rtl1: %d/%d points diverged:\n  %s\n\n%s"
         (List.length diverged) (List.length rows)
         (String.concat "\n  " diverged)
         rendered);
  rendered
