(* Table 4 — synthesis statistics: what the optimizer and the scheduler
   did to each kernel. *)

module Table = Vmht_util.Table
module Workload = Vmht_workloads.Workload
module Fsm = Vmht_hls.Fsm
module Bind = Vmht_hls.Bind
module Pm = Vmht_ir.Pass_manager

let run base =
  let table =
    Table.create
      ~title:"Table 4: synthesis flow statistics per kernel"
      ~headers:
        [
          "kernel"; "IR in"; "IR out"; "folds"; "cse"; "st fwd"; "str red";
          "licm"; "dce"; "states"; "FUs"; "regs"; "synth ms";
        ]
  in
  Common.par_map
    (fun (w : Workload.t) ->
      let hw = Common.synthesize ~config:base Vmht.Wrapper.Vm_iface w in
      let stats = hw.Vmht.Flow.fsm.Fsm.stats in
      let report = stats.Fsm.opt_report in
      let rw pass = string_of_int (Pm.rewrites report pass) in
      [
        w.Workload.name;
        string_of_int report.Pm.instrs_before;
        string_of_int report.Pm.instrs_after;
        rw "const_fold";
        rw "cse";
        rw "store_forward";
        rw "strength_reduce";
        rw "licm";
        rw "dce";
        string_of_int stats.Fsm.states;
        string_of_int (Bind.total_fus hw.Vmht.Flow.fsm.Fsm.binding);
        string_of_int stats.Fsm.reg_count;
        Table.fmt_float (hw.Vmht.Flow.synthesis_seconds *. 1000.);
      ])
    Vmht_workloads.Registry.all
  |> List.iter (Table.add_row table);
  Table.render table
