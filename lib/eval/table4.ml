(* Table 4 — synthesis statistics: what the optimizer and the scheduler
   did to each kernel. *)

module Table = Vmht_util.Table
module Workload = Vmht_workloads.Workload
module Fsm = Vmht_hls.Fsm
module Bind = Vmht_hls.Bind
module Passes = Vmht_ir.Passes

let run base =
  let table =
    Table.create
      ~title:"Table 4: synthesis flow statistics per kernel"
      ~headers:
        [
          "kernel"; "IR in"; "IR out"; "folds"; "cse"; "licm"; "dce"; "states";
          "FUs"; "regs"; "synth ms";
        ]
  in
  Common.par_map
    (fun (w : Workload.t) ->
      let hw = Common.synthesize ~config:base Vmht.Wrapper.Vm_iface w in
      let stats = hw.Vmht.Flow.fsm.Fsm.stats in
      let report = stats.Fsm.opt_report in
      [
        w.Workload.name;
        string_of_int report.Passes.instrs_before;
        string_of_int report.Passes.instrs_after;
        string_of_int report.Passes.folds;
        string_of_int report.Passes.cses;
        string_of_int report.Passes.licms;
        string_of_int report.Passes.dces;
        string_of_int stats.Fsm.states;
        string_of_int (Bind.total_fus hw.Vmht.Flow.fsm.Fsm.binding);
        string_of_int stats.Fsm.reg_count;
        Table.fmt_float (hw.Vmht.Flow.synthesis_seconds *. 1000.);
      ])
    Vmht_workloads.Registry.all
  |> List.iter (Table.add_row table);
  Table.render table
