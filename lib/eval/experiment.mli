(** First-class experiment registry — the one place that knows every
    table, figure, ablation and sweep the harness can regenerate.

    Both CLIs dispatch by {!find} and derive their listings and help
    text from {!all}; adding an experiment means adding one record
    here and nowhere else. *)

type kind = Table | Figure | Ablation | Sweep

val kind_name : kind -> string

type t = {
  name : string;  (** lookup key, e.g. ["table3"] or ["robust"] *)
  doc : string;  (** one-line summary for listings and [--help] *)
  kind : kind;
  run : Vmht.Config.t -> string;
      (** render the experiment against a base configuration; every
          sweep derives its points from it, so CLI overrides (seed,
          fault plan, ...) reach every run *)
}

val all : t list
(** In report order: table1..table6, fig1..fig6, abl1..abl5, robust. *)

val names : string list

val find : string -> t option

val by_kind : kind -> t list

val run : ?config:Vmht.Config.t -> t -> string
(** [run e] is [e.run config] (default {!Vmht.Config.default}). *)
