module Proto = Vmht_serve.Proto
module Server = Vmht_serve.Server
module Store = Vmht_serve.Store
module Json = Vmht_obs.Json
module Table = Vmht_util.Table
module Workload = Vmht_workloads.Workload
open Vmht

let subjects = [ "vecadd"; "mmul"; "spmv"; "list_sum"; "tree_search"; "bfs" ]

(* Execution sizes small enough that a single [Execute] job is cheap
   next to a synthesis, scaled per kernel (mmul's size is a matrix
   dimension, the others are element counts). *)
let exec_size = function
  | "mmul" -> 8
  | "bfs" -> 64
  | "spmv" -> 128
  | _ -> 256

let handle (req : Proto.request) =
  match req.Proto.job with
  | Proto.Synthesize _ -> Vmht_serve.Worker.default_handle req
  | Proto.Execute { workload; mode; size; config } -> (
    match Vmht_workloads.Registry.find workload with
    | exception Not_found ->
      Proto.Failed (Printf.sprintf "unknown workload %S" workload)
    | w ->
      let mode =
        match mode with
        | Proto.Sw -> Common.Sw
        | Proto.Vm -> Common.Vm
        | Proto.Dma -> Common.Dma
      in
      let o = Common.run ~config mode w ~size in
      Proto.Executed
        {
          cycles = Common.cycles o;
          correct = o.Common.correct;
          ret = o.Common.result.Launch.ret;
        })

let mix ~config ~requests ~seed =
  let rng = Random.State.make [| 0x10adc3; seed |] in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  List.init requests (fun rid ->
      let wname = pick subjects in
      let config = Config.with_unroll config (pick [ 1; 2; 4 ]) in
      let config = Config.with_opt_level config (pick [ 0; 2 ]) in
      let config = Config.with_tlb_entries config (pick [ 16; 64 ]) in
      let job =
        (* Three synthesis submissions per execution: the service's
           workload is dominated by synthesis, which is also the part
           the store can answer. *)
        if Random.State.int rng 4 < 3 then
          Proto.Synthesize
            {
              kernel = Workload.kernel (Vmht_workloads.Registry.find wname);
              style = pick [ Wrapper.Vm_iface; Wrapper.Dma_iface ];
              config;
            }
        else
          Proto.Execute
            {
              workload = wname;
              mode = pick [ Proto.Sw; Proto.Vm; Proto.Dma ];
              size = exec_size wname;
              config;
            }
      in
      { Proto.rid; attempt = 1; deadline_ms = None; job })

type report = {
  output : string;
  manifest : Json.t;
  failures : int;
  hit_rate : float;
  perf_line : string;
}

let kernel_of_job = function
  | Proto.Synthesize { kernel; _ } -> kernel.Vmht_lang.Ast.kname
  | Proto.Execute { workload; _ } -> workload

(* Per-kernel aggregation of requests and their (deterministic)
   outcomes; nothing here may read a clock. *)
let render (reqs : Proto.request list) (replies : Proto.reply list) =
  let rows =
    List.map
      (fun name ->
        let keys = Hashtbl.create 8 in
        let synth = ref 0
        and runs = ref 0
        and failed = ref 0
        and verilog = ref 0
        and cycles = ref 0 in
        List.iter2
          (fun (req : Proto.request) (reply : Proto.reply) ->
            if kernel_of_job req.Proto.job = name then begin
              (match Proto.synthesis_key req.Proto.job with
              | Some k ->
                incr synth;
                Hashtbl.replace keys k ()
              | None -> incr runs);
              match reply.Proto.outcome with
              | Proto.Synthesized { verilog_bytes; _ } ->
                verilog := !verilog + verilog_bytes
              | Proto.Executed { cycles = c; correct; _ } ->
                cycles := !cycles + c;
                if not correct then incr failed
              | Proto.Failed _ -> incr failed
            end)
          reqs replies;
        ( name,
          !synth,
          Hashtbl.length keys,
          !verilog,
          !runs,
          !cycles,
          !failed ))
      subjects
  in
  let table =
    Table.create ~title:"Loadgen: request mix and (deterministic) outcomes"
      ~headers:
        [
          "kernel";
          "synth reqs";
          "distinct cfgs";
          "verilog bytes";
          "run reqs";
          "run cycles";
          "failed";
        ]
  in
  List.iter
    (fun (name, synth, distinct, verilog, runs, cycles, failed) ->
      Table.add_row table
        [
          name;
          string_of_int synth;
          string_of_int distinct;
          Table.fmt_int verilog;
          string_of_int runs;
          Table.fmt_int cycles;
          string_of_int failed;
        ])
    rows;
  let total f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let totals =
    Printf.sprintf
      "total: %d requests = %d synthesis (%d distinct configs) + %d runs, %d \
       failed\n"
      (List.length reqs)
      (total (fun (_, s, _, _, _, _, _) -> s))
      (total (fun (_, _, d, _, _, _, _) -> d))
      (total (fun (_, _, _, _, r, _, _) -> r))
      (total (fun (_, _, _, _, _, _, f) -> f))
  in
  Table.render table ^ totals

let run ?store ~(server : Server.t) ~seed (reqs : Proto.request list) =
  let t0 = Unix.gettimeofday () in
  let replies = Server.run_batch server reqs in
  let elapsed = Unix.gettimeofday () -. t0 in
  let failures =
    List.fold_left
      (fun acc (r : Proto.reply) ->
        match r.Proto.outcome with
        | Proto.Failed _ -> acc + 1
        | Proto.Executed { correct = false; _ } -> acc + 1
        | _ -> acc)
      0 replies
  in
  let stats = Server.stats server in
  let hit_rate = Server.hit_rate server in
  let throughput =
    if elapsed > 0. then float_of_int (List.length reqs) /. elapsed else 0.
  in
  let manifest =
    Json.Obj
      ([
         ("schema", Json.String "vmht-loadgen/1");
         ("requests", Json.Int (List.length reqs));
         ("seed", Json.Int seed);
         ("shards", Json.Int (Server.shards server));
         ("jobs", Json.Int (Vmht_par.Parmap.jobs ()));
         ("elapsed_s", Json.Float elapsed);
         ("throughput_rps", Json.Float throughput);
         ("latency_us", Vmht_obs.Histogram.summary_to_json stats.Server.latency);
         ( "server",
           Json.Obj
             [
               ("submitted", Json.Int stats.Server.submitted);
               ("completed", Json.Int stats.Server.completed);
               ("failed", Json.Int stats.Server.failed);
               ("expired", Json.Int stats.Server.expired);
               ("retried", Json.Int stats.Server.retried);
               ("deduped", Json.Int stats.Server.deduped);
               ("key_hits", Json.Int stats.Server.key_hits);
               ("key_misses", Json.Int stats.Server.key_misses);
               ("hit_rate", Json.Float hit_rate);
             ] );
         ("failures", Json.Int failures);
       ]
      @
      match store with
      | None -> []
      | Some s ->
        let ss = Store.stats s in
        [
          ( "store",
            Json.Obj
              [
                ("dir", Json.String (Store.dir s));
                ("hits", Json.Int ss.Store.hits);
                ("misses", Json.Int ss.Store.misses);
                ("saves", Json.Int ss.Store.saves);
                ("corrupt", Json.Int ss.Store.corrupt);
                ("version_skew", Json.Int ss.Store.version_skew);
              ] );
        ])
  in
  let perf_line =
    Printf.sprintf
      "loadgen: %d requests in %.2fs (%.0f req/s), latency p50 %d us p99 %d \
       us, store hit rate %.2f\n"
      (List.length reqs) elapsed throughput stats.Server.latency.Vmht_obs.Histogram.p50
      stats.Server.latency.Vmht_obs.Histogram.p99 hit_rate
  in
  { output = render reqs replies; manifest; failures; hit_rate; perf_line }
