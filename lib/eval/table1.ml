(* Table 1 — benchmark characteristics: static code metrics from the
   compiler plus dynamic instruction/memory profiles from a software
   run at the default size. *)

module Table = Vmht_util.Table
module Workload = Vmht_workloads.Workload
module Fsm = Vmht_hls.Fsm
module Cpu = Vmht_cpu.Cpu

let run base =
  let table =
    Table.create
      ~title:
        "Table 1: benchmark characteristics (dynamic profile at default size)"
      ~headers:
        [
          "kernel"; "pattern"; "ptr"; "LoC"; "IR ops"; "blocks"; "states";
          "dyn instrs"; "loads"; "stores"; "data words";
        ]
  in
  Common.par_map
    (fun (w : Workload.t) ->
      let hw = Common.synthesize ~config:base Vmht.Wrapper.Vm_iface w in
      let stats = hw.Vmht.Flow.fsm.Fsm.stats in
      let outcome =
        Common.run ~config:base Common.Sw w ~size:w.Workload.default_size
      in
      let cpu_stats = Cpu.stats (Vmht.Soc.cpu outcome.Common.soc) in
      let accel_loads, accel_stores =
        (* Count loads/stores from the software profile: the CPU's
           memory accesses split by re-running is overkill; report the
           combined count and the split from the accel run instead. *)
        let o =
          Common.run ~config:base Common.Vm w ~size:w.Workload.default_size
        in
        match o.Common.result.Vmht.Launch.accel_stats with
        | Some s -> (s.Vmht_hls.Accel.loads, s.Vmht_hls.Accel.stores)
        | None -> (0, 0)
      in
      [
        w.Workload.name;
        w.Workload.pattern;
        (if w.Workload.pointer_based then "yes" else "no");
        string_of_int (Common.source_lines w);
        string_of_int stats.Fsm.ir_instrs;
        string_of_int stats.Fsm.blocks;
        string_of_int stats.Fsm.states;
        Table.fmt_int cpu_stats.Cpu.instructions;
        Table.fmt_int accel_loads;
        Table.fmt_int accel_stores;
        Table.fmt_int outcome.Common.instance.Workload.data_words;
      ])
    Vmht_workloads.Registry.all
  |> List.iter (Table.add_row table);
  Table.render table
