type kind = Table | Figure | Ablation | Sweep

let kind_name = function
  | Table -> "table"
  | Figure -> "figure"
  | Ablation -> "ablation"
  | Sweep -> "sweep"

type t = {
  name : string;
  doc : string;
  kind : kind;
  run : Vmht.Config.t -> string;
}

(* Report order; every consumer (CLIs, run_all, help text) derives its
   listing from this one place. *)
let all =
  [
    {
      name = "table1";
      doc = "kernel suite: cycles and speedups, sw vs dma vs vm";
      kind = Table;
      run = Table1.run;
    };
    {
      name = "table2";
      doc = "capacity cliff: copy-based fails where VM threads keep going";
      kind = Table;
      run = Table2.run;
    };
    {
      name = "table3";
      doc = "cycle attribution: where the time goes in each style";
      kind = Table;
      run = Table3.run;
    };
    {
      name = "table4";
      doc = "synthesized wrapper area: dma vs vm interface logic";
      kind = Table;
      run = Table4.run;
    };
    {
      name = "table5";
      doc = "design productivity: source lines vs handled VM machinery";
      kind = Table;
      run = Table5.run;
    };
    {
      name = "table6";
      doc = "sharing & protection: two processes, one accelerator";
      kind = Table;
      run = Table6.run;
    };
    {
      name = "fig1";
      doc = "speedup vs data size: the copy-based capacity cliff";
      kind = Figure;
      run = Fig1.run;
    };
    {
      name = "fig2";
      doc = "runtime and hit rate vs TLB entries";
      kind = Figure;
      run = Fig2.run;
    };
    {
      name = "fig3";
      doc = "runtime vs page size";
      kind = Figure;
      run = Fig3.run;
    };
    {
      name = "fig4";
      doc = "miss handling: hardware walker vs software refill";
      kind = Figure;
      run = Fig4.run;
    };
    {
      name = "fig5";
      doc = "synthesis time and FSM size vs unroll factor";
      kind = Figure;
      run = Fig5.run;
    };
    {
      name = "fig6";
      doc = "multi-thread scaling on the shared bus";
      kind = Figure;
      run = Fig6.run;
    };
    {
      name = "abl1";
      doc = "wrapper stream-buffer size sweep";
      kind = Ablation;
      run = Abl1.run;
    };
    {
      name = "abl2";
      doc = "TLB organization: associativity and replacement";
      kind = Ablation;
      run = Abl2.run;
    };
    {
      name = "abl3";
      doc = "datapath parallelism: unroll x memory ports";
      kind = Ablation;
      run = Abl3.run;
    };
    {
      name = "abl4";
      doc = "loop pipelining on vs off, achieved II";
      kind = Ablation;
      run = Abl4.run;
    };
    {
      name = "abl5";
      doc = "optimization level: -O0/-O1/-O2 pass schedules";
      kind = Ablation;
      run = Abl5.run;
    };
    {
      name = "abl6";
      doc = "translation hierarchy: shared L2 TLB and page-walk cache";
      kind = Ablation;
      run = Abl6.run;
    };
    {
      name = "abl7";
      doc = "simulator fast path on vs off: identical cycles, faster host";
      kind = Ablation;
      run = Abl7.run;
    };
    {
      name = "robust";
      doc = "fault injection: recovery overhead, vm vs copy-based";
      kind = Sweep;
      run = Robust.run;
    };
    {
      name = "rtl1";
      doc = "RTL loop closed: emitted Verilog vs model executor, cycle-exact";
      kind = Sweep;
      run = Rtl1.run;
    };
    {
      name = "dse1";
      doc = "design-space exploration: unroll x banks x opt x TLB Pareto front";
      kind = Sweep;
      run = Dse.run;
    };
  ]

let names = List.map (fun e -> e.name) all

let find name = List.find_opt (fun e -> e.name = name) all

let by_kind kind = List.filter (fun e -> e.kind = kind) all

let run ?(config = Vmht.Config.default) e = e.run config
