(* Table 2 — resource utilization: bare datapath vs +VM wrapper vs +DMA
   wrapper.  The scratchpad is fixed at 16K words (128 KiB) for the DMA
   column; the VM wrapper uses the default 16-entry TLB + HW walker. *)

module Table = Vmht_util.Table
module Workload = Vmht_workloads.Workload
module Optypes = Vmht_hls.Optypes

let area_cells (a : Optypes.area) =
  [ string_of_int a.Optypes.lut; string_of_int a.Optypes.ff;
    string_of_int a.Optypes.dsp; string_of_int a.Optypes.bram ]

let pct base v = Printf.sprintf "+%.0f%%" (Vmht_util.Stats.percent_delta base v)

let run base =
  let config = { base with Vmht.Config.scratchpad_words = 16384 } in
  let table =
    Table.create
      ~title:
        "Table 2: resource utilization (LUT/FF/DSP/BRAM) — bare datapath, \
         +VM wrapper (16-entry TLB, HW walker), +DMA wrapper (128 KiB \
         scratchpad)"
      ~headers:
        [
          "kernel"; "LUT"; "FF"; "DSP"; "BRAM"; "VM LUT"; "VM FF"; "VM ovh";
          "DMA LUT"; "DMA FF"; "DMA BRAM"; "DMA ovh";
        ]
  in
  Common.par_map
    (fun (w : Workload.t) ->
      let vm = Common.synthesize ~config Vmht.Wrapper.Vm_iface w in
      let dma = Common.synthesize ~config Vmht.Wrapper.Dma_iface w in
      let bare = vm.Vmht.Flow.datapath_area in
      let vm_total = vm.Vmht.Flow.total_area in
      let dma_total = dma.Vmht.Flow.total_area in
      [ w.Workload.name ]
      @ area_cells bare
      @ [
          string_of_int vm_total.Optypes.lut;
          string_of_int vm_total.Optypes.ff;
          pct
            (float_of_int (bare.Optypes.lut + bare.Optypes.ff))
            (float_of_int (vm_total.Optypes.lut + vm_total.Optypes.ff));
          string_of_int dma_total.Optypes.lut;
          string_of_int dma_total.Optypes.ff;
          string_of_int dma_total.Optypes.bram;
          pct
            (float_of_int (bare.Optypes.lut + bare.Optypes.ff))
            (float_of_int (dma_total.Optypes.lut + dma_total.Optypes.ff));
        ])
    Vmht_workloads.Registry.all
  |> List.iter (Table.add_row table);
  Table.render table
