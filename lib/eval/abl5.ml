(* Ablation 5 — optimization level: VM-thread cycles under the -O0,
   -O1 and -O2 pass schedules, with the optimizer's instruction counts.
   The pointer-based kernels are where the memory passes (store
   forwarding, address-chain strength reduction) live, so -O2 must
   strictly beat -O0 on every one of them; the schedule is part of the
   config fingerprint, so the three variants never share a synthesis
   cache slot. *)

module Table = Vmht_util.Table
module Workload = Vmht_workloads.Workload
module Fsm = Vmht_hls.Fsm
module Pm = Vmht_ir.Pass_manager

let subjects = [ "vecadd"; "mmul"; "spmv"; "list_sum"; "tree_search"; "bfs" ]

let run base =
  let table =
    Table.create
      ~title:
        "Ablation 5: optimization level — VM-thread cycles and IR size \
         under the -O0/-O1/-O2 pass schedules"
      ~headers:
        [ "kernel"; "O0"; "O1"; "O2"; "O2 gain"; "IR O0"; "IR O2" ]
  in
  Common.par_map
    (fun name ->
      let w = Vmht_workloads.Registry.find name in
      let size = w.Workload.default_size in
      let at level =
        Common.run
          ~config:(Vmht.Config.with_opt_level base level)
          Common.Vm w ~size
      in
      let o0 = at 0 and o1 = at 1 and o2 = at 2 in
      assert (o0.Common.correct && o1.Common.correct && o2.Common.correct);
      let instrs outcome =
        match outcome.Common.hw with
        | Some hw ->
          hw.Vmht.Flow.fsm.Fsm.stats.Fsm.opt_report.Pm.instrs_after
        | None -> 0
      in
      [
        name;
        Table.fmt_int (Common.cycles o0);
        Table.fmt_int (Common.cycles o1);
        Table.fmt_int (Common.cycles o2);
        Table.fmt_float
          (float_of_int (Common.cycles o0) /. float_of_int (Common.cycles o2))
        ^ "x";
        string_of_int (instrs o0);
        string_of_int (instrs o2);
      ])
    subjects
  |> List.iter (Table.add_row table);
  Table.render table
