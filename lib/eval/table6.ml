(* Table 6 — thread density: how many hardware-thread instances of each
   kernel one device can host, per interface style.  The copy-based
   style is BRAM-bound by its per-thread scratchpad (128 KiB here); the
   VM style's wrapper is small and LUT/FF-bound, so a mid-size device
   hosts several times more VM-enabled threads — the paper's
   system-level scalability argument. *)

module Table = Vmht_util.Table
module Workload = Vmht_workloads.Workload

let run base =
  let config = { base with Vmht.Config.scratchpad_words = 16384 } in
  let table =
    Table.create
      ~title:
        "Table 6: hardware-thread instances per device (DMA style with a \
         128 KiB per-thread scratchpad)"
      ~headers:
        [
          "kernel"; "7020 VM"; "7020 DMA"; "7045 VM"; "7045 DMA";
          "VM/DMA (7020)";
        ]
  in
  Common.par_map
    (fun (w : Workload.t) ->
      let vm = Common.synthesize ~config Vmht.Wrapper.Vm_iface w in
      let dma = Common.synthesize ~config Vmht.Wrapper.Dma_iface w in
      let n_7020_vm = Vmht.Sysgen.max_instances ~device:Vmht.Sysgen.zynq_7020 vm in
      let n_7020_dma = Vmht.Sysgen.max_instances ~device:Vmht.Sysgen.zynq_7020 dma in
      let n_7045_vm = Vmht.Sysgen.max_instances ~device:Vmht.Sysgen.zynq_7045 vm in
      let n_7045_dma = Vmht.Sysgen.max_instances ~device:Vmht.Sysgen.zynq_7045 dma in
      [
        w.Workload.name;
        string_of_int n_7020_vm;
        string_of_int n_7020_dma;
        string_of_int n_7045_vm;
        string_of_int n_7045_dma;
        Table.fmt_float ~decimals:1
          (float_of_int n_7020_vm /. float_of_int (max 1 n_7020_dma))
        ^ "x";
      ])
    Vmht_workloads.Registry.all
  |> List.iter (Table.add_row table);
  Table.render table
