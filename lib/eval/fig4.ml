(* Figure 4 — translation-miss handling: hardware page-table walker vs
   software TLB refills.  Small TLBs make the miss path dominant; the
   hardware walker's advantage grows with the miss rate. *)

module Plot = Vmht_util.Ascii_plot
module Workload = Vmht_workloads.Workload
module Mmu = Vmht_vm.Mmu

let entry_counts = [ 2; 4; 8; 16; 32 ]

let series_for base (w : Workload.t) ~hw_walk =
  let points =
    Common.par_map
      (fun entries ->
        let sized = Vmht.Config.with_tlb_entries base entries in
        let config =
          {
            sized with
            Vmht.Config.mmu = { sized.Vmht.Config.mmu with Mmu.hw_walk };
          }
        in
        let o = Common.run ~config Common.Vm w ~size:w.Workload.default_size in
        assert o.Common.correct;
        (float_of_int entries, float_of_int (Common.cycles o)))
      entry_counts
  in
  {
    Plot.label =
      Printf.sprintf "%s (%s)" w.Workload.name
        (if hw_walk then "hw walker" else "sw refill");
    points;
  }

let run base =
  let spmv = Vmht_workloads.Registry.find "spmv" in
  let list_sum = Vmht_workloads.Registry.find "list_sum" in
  Plot.render ~logx:true ~logy:true
    ~title:
      "Figure 4: miss-handling style — hardware walker vs software TLB \
       refill, runtime vs TLB size"
    ~xlabel:"TLB entries" ~ylabel:"cycles"
    (Common.par_map
       (fun (w, hw_walk) -> series_for base w ~hw_walk)
       [
         (spmv, true);
         (spmv, false);
         (list_sum, true);
         (list_sum, false);
       ])
