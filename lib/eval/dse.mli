(** Design-space exploration (the [dse1] experiment and [vmht dse]):
    sweep unroll x banks x opt-level x TLB geometry per kernel, one
    synthesis + simulated run per point over the domain pool, and
    report each kernel's Pareto front over (cycles, LUT). *)

type axes = {
  unrolls : int list;
  banks : int list;
  opts : int list;
  tlbs : int list;
}

val default_axes : axes
(** unroll 1/2/4 x banks 1/2/4 x -O0/-O2 x TLB 8/32. *)

val default_kernels : string list

val default_size : int

type point = {
  kernel : string;
  unroll : int;
  banks : int;
  opt : int;
  tlb : int;
  cycles : int; (** total simulated cycles of the run *)
  lut : int; (** total area (datapath + wrapper) *)
  ff : int;
  pareto : bool; (** on the kernel's (cycles, LUT) front *)
}

val explore :
  ?size:int -> ?axes:axes -> ?kernels:string list -> Vmht.Config.t -> point list
(** Every grid point, kernel-major in grid order, [pareto] marked per
    kernel.  Deterministic at any domain-pool width. *)

val render : ?size:int -> point list -> string
(** One table per kernel: the front sorted by (cycles, LUT, knobs). *)

val manifest : ?size:int -> point list -> Vmht_obs.Json.t
(** The [vmht-dse/1] manifest: every point with its front flag. *)

val run : Vmht.Config.t -> string
(** The registered [dse1] experiment: explore + render the defaults. *)
