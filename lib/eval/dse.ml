(* Design-space exploration — the dse1 sweep.

   One synthesis + simulation per point of the cross product
   unroll x scratchpad banks x optimization level x TLB entries, per
   kernel, fanned out over the domain pool ([Common.par_map], so the
   output is byte-identical at any -j width and every point reuses the
   synthesis cache across repeat invocations).  Each kernel gets a
   Pareto front over (total cycles, total LUT): banks and unroll buy
   cycles with datapath area, the TLB geometry buys cycles with wrapper
   area, and -O0 exists to be dominated — a non-trivial front needs
   both knobs that pay in area and knobs that never pay off. *)

module Table = Vmht_util.Table
module Workload = Vmht_workloads.Workload
module Json = Vmht_obs.Json
module Optypes = Vmht_hls.Optypes

type axes = {
  unrolls : int list;
  banks : int list;
  opts : int list;
  tlbs : int list;
}

let default_axes =
  { unrolls = [ 1; 2; 4 ]; banks = [ 1; 2; 4 ]; opts = [ 0; 2 ]; tlbs = [ 8; 32 ] }

let default_kernels = [ "vecadd"; "saxpy"; "dotprod"; "stencil3" ]

let default_size = 256

type point = {
  kernel : string;
  unroll : int;
  banks : int;
  opt : int;
  tlb : int;
  cycles : int;
  lut : int;
  ff : int;
  pareto : bool;
}

let config_of base ~unroll ~banks ~opt ~tlb =
  Vmht.Config.with_tlb_entries
    (Vmht.Config.with_opt_level
       (Vmht.Config.with_banks (Vmht.Config.with_unroll base unroll) banks)
       opt)
    tlb

(* Minimize both cycles and LUT; a point is on the front iff no other
   point of the same kernel is at least as good on both axes and
   strictly better on one. *)
let dominates a b =
  a.cycles <= b.cycles && a.lut <= b.lut
  && (a.cycles < b.cycles || a.lut < b.lut)

let mark_pareto points =
  List.map
    (fun p -> { p with pareto = not (List.exists (fun q -> dominates q p) points) })
    points

let explore ?(size = default_size) ?(axes = default_axes)
    ?(kernels = default_kernels) base =
  let grid =
    List.concat_map
      (fun kernel ->
        List.concat_map
          (fun unroll ->
            List.concat_map
              (fun banks ->
                List.concat_map
                  (fun opt ->
                    List.map
                      (fun tlb -> (kernel, unroll, banks, opt, tlb))
                      axes.tlbs)
                  axes.opts)
              axes.banks)
          axes.unrolls)
      kernels
  in
  let points =
    Common.par_map
      (fun (kernel, unroll, banks, opt, tlb) ->
        let w = Vmht_workloads.Registry.find kernel in
        let config = config_of base ~unroll ~banks ~opt ~tlb in
        let o = Common.run ~config Common.Vm w ~size in
        assert o.Common.correct;
        let area =
          match o.Common.hw with
          | Some hw -> hw.Vmht.Flow.total_area
          | None -> Optypes.zero_area
        in
        {
          kernel;
          unroll;
          banks;
          opt;
          tlb;
          cycles = o.Common.result.Vmht.Launch.total_cycles;
          lut = area.Optypes.lut;
          ff = area.Optypes.ff;
          pareto = false;
        })
      grid
  in
  List.concat_map
    (fun kernel ->
      mark_pareto (List.filter (fun p -> p.kernel = kernel) points))
    kernels

let by_quality a b =
  compare
    (a.cycles, a.lut, a.unroll, a.banks, a.opt, a.tlb)
    (b.cycles, b.lut, b.unroll, b.banks, b.opt, b.tlb)

let render ?(size = default_size) points =
  let kernels =
    List.fold_left
      (fun acc p -> if List.mem p.kernel acc then acc else p.kernel :: acc)
      [] points
    |> List.rev
  in
  String.concat "\n"
    (List.map
       (fun kernel ->
         let all = List.filter (fun p -> p.kernel = kernel) points in
         let front = List.sort by_quality (List.filter (fun p -> p.pareto) all) in
         let table =
           Table.create
             ~title:
               (Printf.sprintf
                  "DSE: %s (vm, size %d) — Pareto front over cycles vs LUT \
                   (%d of %d points; %d dominated)"
                  kernel size (List.length front) (List.length all)
                  (List.length all - List.length front))
             ~headers:[ "unroll"; "banks"; "opt"; "tlb"; "cycles"; "LUT"; "FF" ]
         in
         List.iter
           (fun p ->
             Table.add_row table
               [
                 string_of_int p.unroll;
                 string_of_int p.banks;
                 Printf.sprintf "-O%d" p.opt;
                 string_of_int p.tlb;
                 Table.fmt_int p.cycles;
                 Table.fmt_int p.lut;
                 Table.fmt_int p.ff;
               ])
           front;
         Table.render table)
       kernels)

let manifest ?(size = default_size) points =
  Json.Obj
    [
      ("schema", Json.String "vmht-dse/1");
      ("mode", Json.String "vm");
      ("size", Json.Int size);
      ( "points",
        Json.List
          (List.map
             (fun p ->
               Json.Obj
                 [
                   ("kernel", Json.String p.kernel);
                   ("unroll", Json.Int p.unroll);
                   ("banks", Json.Int p.banks);
                   ("opt", Json.Int p.opt);
                   ("tlb", Json.Int p.tlb);
                   ("cycles", Json.Int p.cycles);
                   ("lut", Json.Int p.lut);
                   ("ff", Json.Int p.ff);
                   ("pareto", Json.Bool p.pareto);
                 ])
             points) );
    ]

let run base = render (explore base)
