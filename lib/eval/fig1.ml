(* Figure 1 — speedup vs data size for a streaming kernel (vecadd) and
   a pointer-chasing kernel (list_sum), copy-based vs VM-enabled.  The
   expected shape: DMA catches up (or wins) on dense streaming as
   bursts amortize its staging; VM wins pointer chasing at every size
   and everything at small sizes where fixed staging costs dominate. *)

module Plot = Vmht_util.Ascii_plot
module Workload = Vmht_workloads.Workload

let sizes = [ 256; 512; 1024; 2048; 4096; 8192; 16384; 32768; 65536 ]

(* Copy-based runs stop at the scratchpad capacity cliff; those sizes
   simply have no DMA point — which is itself part of the result. *)
let series_for base (w : Workload.t) mode =
  let points =
    Common.par_map
      (fun size ->
        match Common.run ~config:base mode w ~size with
        | hw ->
          assert hw.Common.correct;
          let sw = Common.run ~config:base Common.Sw w ~size in
          Some (float_of_int size, Common.speedup ~baseline:sw hw)
        | exception Vmht.Launch.Window_overflow _ -> None)
      sizes
    |> List.filter_map Fun.id
  in
  {
    Plot.label =
      Printf.sprintf "%s (%s)" w.Workload.name (Common.mode_name mode);
    points;
  }

let run base =
  let vecadd = Vmht_workloads.Registry.find "vecadd" in
  let list_sum = Vmht_workloads.Registry.find "list_sum" in
  Plot.render ~logx:true
    ~title:
      "Figure 1: speedup over software vs data size (elements) — \
       copy-based (dma) vs VM-enabled (vm); dma series end at the \
       scratchpad capacity cliff"
    ~xlabel:"elements" ~ylabel:"speedup"
    (Common.par_map
       (fun (w, mode) -> series_for base w mode)
       [
         (vecadd, Common.Dma);
         (vecadd, Common.Vm);
         (list_sum, Common.Dma);
         (list_sum, Common.Vm);
       ])
