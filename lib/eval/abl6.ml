(* Ablation 6 — translation hierarchy: the per-thread L1 TLB alone,
   plus the SoC-shared second-level TLB, plus the walker's page-walk
   cache.  The pointer-chasing subjects are the ones whose sparse
   reference streams blow the 16-entry L1; the L2 catches the reuse the
   L1 is too small to hold, and the walk cache halves the bus reads of
   the walks that remain.  Walk cycles must strictly shrink at each
   added level on every subject. *)

module Table = Vmht_util.Table
module Workload = Vmht_workloads.Workload
module Tlb = Vmht_vm.Tlb
module Tlb2 = Vmht_vm.Tlb2
module Mmu = Vmht_vm.Mmu

let l2_geometry =
  {
    Tlb2.enabled = true;
    entries = 128;
    assoc = 4;
    policy = Tlb.Lru;
    hit_cycles = 2;
  }

let variants =
  [
    ( "L1 only",
      fun base ->
        Vmht.Config.with_walk_cache
          (Vmht.Config.with_tlb2 base { l2_geometry with Tlb2.enabled = false })
          0 );
    ("+L2", fun base -> Vmht.Config.with_walk_cache
          (Vmht.Config.with_tlb2 base l2_geometry) 0);
    ( "+L2+PWC",
      fun base ->
        Vmht.Config.with_walk_cache (Vmht.Config.with_tlb2 base l2_geometry) 8
    );
  ]

let measure config (w : Workload.t) =
  let o = Common.run ~config Common.Vm w ~size:w.Workload.default_size in
  assert o.Common.correct;
  let m = Option.get o.Common.result.Vmht.Launch.mmu_stats in
  (Common.cycles o, m.Mmu.walk_cycles)

let run base =
  let workloads =
    List.map Vmht_workloads.Registry.find
      [ "spmv"; "bfs"; "list_sum"; "tree_search" ]
  in
  let table =
    Table.create
      ~title:
        "Ablation 6: two-level TLB hierarchy — cycles (walk cycles)"
      ~headers:
        ("kernel"
        :: List.map fst variants
        @ [ "walk reduction" ])
  in
  Common.par_map
    (fun w ->
      let results =
        Common.par_map (fun (_, cfg) -> measure (cfg base) w) variants
      in
      let _, l1_walk = List.hd results in
      let _, full_walk = List.nth results (List.length results - 1) in
      (* The full hierarchy must strictly beat the bare L1 on walk
         cycles — the claim this ablation exists to check. *)
      assert (full_walk < l1_walk);
      w.Workload.name
      :: List.map
           (fun (cycles, walk) ->
             Printf.sprintf "%s (%s)" (Table.fmt_int cycles)
               (Table.fmt_int walk))
           results
      @ [
          Printf.sprintf "%.2fx"
            (float_of_int l1_walk /. float_of_int (max 1 full_walk));
        ])
    workloads
  |> List.iter (Table.add_row table);
  Table.render table
