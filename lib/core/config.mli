(** All knobs of the system-level synthesis flow and the simulated SoC,
    with the defaults every experiment starts from.  Each experiment in
    the evaluation varies exactly the fields its figure sweeps. *)

type backend =
  | Model  (** the model-level FSM executor ({!Vmht_hls.Accel}) *)
  | Rtl
      (** the RTL evaluator: parse the emitted Verilog text back and
          execute the emitted bytes, on the same memory/VM stack *)

type t = {
  (* --- memory system --- *)
  phys_bytes : int; (** physical memory size *)
  page_shift : int; (** log2 page size (default 12 = 4 KiB) *)
  va_bits : int; (** virtual address width *)
  dram : Vmht_mem.Dram.config;
  bus_arbitration_cycles : int;
  cache : Vmht_mem.Cache.config; (** CPU L1 *)
  (* --- HLS --- *)
  resources : Vmht_hls.Schedule.resources;
  unroll : int;
  pipeline_loops : bool;
      (** modulo-schedule eligible inner loops (extension mode) *)
  accel_mem_ports : int; (** concurrent outstanding accesses per thread *)
  (* --- VM interface wrapper --- *)
  mmu : Vmht_vm.Mmu.config;
  tlb2 : Vmht_vm.Tlb2.config;
      (** SoC-shared second-level TLB, probed by every MMU on an L1
          miss; disabled by default *)
  accel_stream_buffer : Vmht_mem.Cache.config;
      (** small line buffer between the wrapper and the bus, so
          streaming accesses become bursts *)
  (* --- DMA interface wrapper --- *)
  scratchpad_words : int;
  dma_setup_cycles : int;
  dma_burst_words : int;
  pin_cycles_per_page : int;
      (** CPU cost to pin + translate one page when staging a DMA *)
  wrapper_windows : int;
      (** address-window comparators in the DMA wrapper (ignored by the
          VM style); part of the config so the synthesis cache key has
          a single source of truth *)
  (* --- optimizer --- *)
  opt_level : int;
      (** [-O0]/[-O1]/[-O2] preset selecting the pass schedule
          (clamped; default 2) *)
  passes : string list option;
      (** explicit pass schedule overriding [opt_level] when [Some] *)
  (* --- misc --- *)
  cache_maintenance_cycles : int;
      (** CPU cache invalidate after a hardware thread completes *)
  fault : Vmht_fault.Plan.t;
      (** fault-injection plan; {!Vmht_fault.Plan.none} by default *)
  seed : int;
  fastpath : bool;
      (** trace-compiled simulator fast path (wait batching, compiled
          accelerator traces, memoized translation); observationally
          identical, on by default, [--no-fastpath] disables *)
  backend : backend;
      (** which executor runs hardware threads; {!Model} by default,
          [--backend rtl] selects the RTL evaluator *)
}

val default : t

val with_tlb_entries : t -> int -> t
(** Convenience for the TLB sweep: same config, different TLB size. *)

val with_tlb2 : t -> Vmht_vm.Tlb2.config -> t

val with_walk_cache : t -> int -> t
(** Size every MMU's page-walk cache (0 disables). *)

val with_page_shift : t -> int -> t

val with_unroll : t -> int -> t

val with_pipelining : t -> bool -> t

val with_banks : t -> int -> t
(** Re-bank the scratchpad: [n] word-interleaved banks, keeping the
    current ports-per-bank; the outstanding-miss limit scales to
    [n * ports_per_bank].  [with_banks t 1] equals the default flat
    memory and fingerprints identically. *)

val accel_width : t -> int
(** Simulator-side memory interface width of an accelerator: the max of
    [accel_mem_ports] and the scheduler's total memory port count, so a
    banked schedule's co-issued accesses are not re-serialized by the
    simulation harness. *)

val with_fault : t -> Vmht_fault.Plan.t -> t

val with_seed : t -> int -> t
(** Seed for workload data and the fault schedule. *)

val with_opt_level : t -> int -> t

val with_windows : t -> int -> t
(** Size the DMA wrapper's address-window comparator bank (default 3). *)

val with_passes : t -> string list option -> t

val with_fastpath : t -> bool -> t
(** Toggle the simulator fast path (the --no-fastpath escape hatch). *)

val with_backend : t -> backend -> t
(** Select the hardware-thread executor (default {!Model}). *)

val schedule : t -> Vmht_ir.Pass_manager.schedule
(** The pass schedule this config selects: the explicit [passes] list
    if set, else the [opt_level] preset.  Raises [Invalid_argument] on
    unknown pass names. *)

val fingerprint : t -> string
(** A compact, injective rendering of every field, used (with the
    kernel and wrapper style) to key the synthesis cache.  Two configs
    fingerprint equally iff they are structurally equal. *)

val to_string : t -> string
