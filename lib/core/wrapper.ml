module Optypes = Vmht_hls.Optypes
module Mmu = Vmht_vm.Mmu
module Tlb = Vmht_vm.Tlb

type style = Vm_iface | Dma_iface

let style_name = function Vm_iface -> "vm" | Dma_iface -> "dma"

(* TLB area: fully-associative tags are CAM cells (expensive in LUTs),
   set-associative tags are RAM lookups plus way comparators.  Each
   entry stores a ~40-bit tag + ~40-bit frame + flags (~80 FFs). *)
let tlb_area (cfg : Tlb.config) =
  let entry_ff = 84 in
  let per_entry_lut = if cfg.Tlb.assoc = 0 then 34 else 14 in
  {
    Optypes.lut = 120 + (per_entry_lut * cfg.Tlb.entries);
    ff = 60 + (entry_ff * cfg.Tlb.entries);
    dsp = 0;
    bram = (if cfg.Tlb.entries >= 64 then 1 else 0);
  }

let walker_area = { Optypes.lut = 240; ff = 190; dsp = 0; bram = 0 }

let bus_adapter_area = { Optypes.lut = 160; ff = 140; dsp = 0; bram = 0 }

(* The wrapper's stream buffer: a 4 KiB write-back cache (tags in FFs,
   data in two BRAM halves). *)
let stream_buffer_area = { Optypes.lut = 340; ff = 420; dsp = 0; bram = 2 }

let vm_area (cfg : Mmu.config) =
  let base =
    Optypes.add_area (tlb_area cfg.Mmu.tlb)
      (Optypes.add_area bus_adapter_area stream_buffer_area)
  in
  if cfg.Mmu.hw_walk then Optypes.add_area base walker_area else base

(* A BRAM half-block holds 18 Kb = 2304 bytes. *)
let bram_halves_for_bytes bytes = Vmht_util.Bits.ceil_div bytes 2304

let dma_engine_area = { Optypes.lut = 420; ff = 460; dsp = 0; bram = 0 }

let window_comparator_area = { Optypes.lut = 64; ff = 14; dsp = 0; bram = 0 }

let dma_area ~scratchpad_words ~windows =
  let bram = bram_halves_for_bytes (scratchpad_words * 8) in
  Optypes.add_area dma_engine_area
    (Optypes.add_area
       (Optypes.scale_area (max 1 windows) window_comparator_area)
       { Optypes.lut = 90; ff = 30; dsp = 0; bram })

let area (config : Config.t) style =
  match style with
  | Vm_iface -> vm_area config.Config.mmu
  | Dma_iface ->
    dma_area ~scratchpad_words:config.Config.scratchpad_words
      ~windows:config.Config.wrapper_windows

let ports = function
  | Vm_iface ->
    [
      "output wire [63:0] ptw_addr";
      "input wire [63:0] ptw_rdata";
      "output wire tlb_flush_ack";
      "input wire tlb_flush_req";
    ]
  | Dma_iface ->
    [
      "input wire dma_start";
      "output wire dma_done";
      "input wire [63:0] dma_desc_addr";
    ]
