module Engine = Vmht_sim.Engine
module Phys_mem = Vmht_mem.Phys_mem
module Dram = Vmht_mem.Dram
module Bus = Vmht_mem.Bus
module Scratchpad = Vmht_mem.Scratchpad
module Dma = Vmht_mem.Dma
module Frame_alloc = Vmht_vm.Frame_alloc
module Addr_space = Vmht_vm.Addr_space
module Mmu = Vmht_vm.Mmu
module Tlb = Vmht_vm.Tlb
module Tlb2 = Vmht_vm.Tlb2
module Ptw = Vmht_vm.Ptw
module Cpu = Vmht_cpu.Cpu
module Accel = Vmht_hls.Accel
module Cache = Vmht_mem.Cache
module Event = Vmht_obs.Event
module Metrics = Vmht_obs.Metrics
module Fi = Vmht_fault.Injector

type port_meter = {
  mutable translate_cycles : int;
  mutable mem_cycles : int;
}

(* Process-wide SoC numbering, so each SoC has a distinct Chrome-trace
   pid even when several simulations run concurrently on the pool. *)
let next_soc_id = Atomic.make 1

(* Component instances get distinct names ("mmu", "mmu1", "mmu2", ...)
   so the trace export keeps one thread track per instance.  The first
   instance keeps the bare class name: single-instance SoCs — the
   common case — read exactly as before. *)
let instance_name base idx = if idx = 0 then base else base ^ string_of_int idx

type t = {
  id : int;
  config : Config.t;
  engine : Engine.t;
  phys : Phys_mem.t;
  dram : Dram.t;
  bus : Bus.t;
  frames : Frame_alloc.t;
  aspace : Addr_space.t;
  cpu : Cpu.t;
  tlb2 : Tlb2.t option; (* one shared second-level TLB for all MMUs *)
  mutable vm_flushed : Vmht_vm.Vm_totals.totals;
  mutable mmu_list : Mmu.t list;
  mutable next_asid : int;
  trace : Vmht_sim.Trace.t;
  metrics : Metrics.t;
  mutable observing : bool;
  mutable dmas : Dma.t list;
  mutable stream_buffers : Cache.t list;
  mutable injectors : Fi.t list;
}

let create (config : Config.t) =
  let engine = Engine.create ~fastpath:config.Config.fastpath () in
  let phys = Phys_mem.create ~bytes:config.Config.phys_bytes in
  let dram = Dram.create ~config:config.Config.dram () in
  let bus =
    Bus.create ~arbitration_cycles:config.Config.bus_arbitration_cycles phys
      dram
  in
  let frames =
    Frame_alloc.create ~base:0 ~bytes:config.Config.phys_bytes
      ~page_bytes:(1 lsl config.Config.page_shift)
  in
  (* Two page-table levels of at most page-sized tables cover
     3*page_shift - 6 bits of virtual space; clamp so small-page
     configurations (the Figure 3 sweep) stay representable. *)
  let va_bits =
    min config.Config.va_bits ((3 * config.Config.page_shift) - 6)
  in
  let aspace =
    Addr_space.create phys frames ~page_shift:config.Config.page_shift
      ~va_bits
  in
  let cpu = Cpu.create ~cache_config:config.Config.cache bus aspace in
  let t =
    {
      id = Atomic.fetch_and_add next_soc_id 1;
      config;
      engine;
      phys;
      dram;
      bus;
      frames;
      aspace;
      cpu;
      tlb2 =
        (if config.Config.tlb2.Tlb2.enabled then
           Some (Tlb2.create ~memo:config.Config.fastpath config.Config.tlb2)
         else None);
      vm_flushed = Vmht_vm.Vm_totals.zero;
      mmu_list = [];
      next_asid = 1;
      trace = Vmht_sim.Trace.create ();
      metrics = Metrics.create ();
      observing = false;
      dmas = [];
      stream_buffers = [];
      injectors = [];
    }
  in
  (if config.Config.fault.Vmht_fault.Plan.enabled then begin
     let make component =
       let inj =
         Fi.create ~plan:config.Config.fault ~seed:config.Config.seed
           ~component
       in
       t.injectors <- inj :: t.injectors;
       inj
     in
     Bus.set_fault bus (make "bus");
     Dram.set_fault dram (make "dram")
   end);
  t

let id t = t.id

let config t = t.config

let engine t = t.engine

let aspace t = t.aspace

let bus t = t.bus

let cpu t = t.cpu

let now t = Engine.now t.engine

let run t main =
  Engine.spawn t.engine ~name:"main" main;
  Engine.run t.engine

let trace t = t.trace

let metrics t = t.metrics

let observing t = t.observing

(* Duration histograms fed live as span events stream by — these need
   per-event samples, so they cannot be synced from component counters
   after the fact like everything in [sync_metrics]. *)
let feed_metrics t ~duration kind =
  let observe name v = Metrics.observe (Metrics.histogram t.metrics name) v in
  match kind with
  | Event.Bus_txn { words; _ } ->
    observe "bus.txn_cycles" duration;
    observe "bus.txn_words" words
  | Event.Ptw_walk _ -> observe "mmu.walk_cycles" duration
  | Event.Page_fault _ -> observe "mmu.fault_cycles" duration
  | Event.Dma_burst { words; _ } ->
    observe "dma.burst_cycles" duration;
    observe "dma.burst_words" words
  | Event.Fault_inject _ -> observe "fault.inject_cycles" duration
  | Event.Fault_retry _ -> observe "fault.retry_cycles" duration
  | _ -> ()

(* Events arrive when their span completes; stamping [at] back by the
   duration makes [at] the start cycle, which is what a timeline
   renderer wants. *)
let emitter t ~component : Event.emitter =
 fun ?(duration = 0) kind ->
  let at = Engine.now t.engine - duration in
  Vmht_sim.Trace.record t.trace ~at ~duration ~component kind;
  feed_metrics t ~duration kind

let emit t ~component ?duration kind = emitter t ~component ?duration kind

(* One injector stream per component class, memoized by name: every
   MMU shares "mmu", every DMA engine shares "dma".  Sharing is what
   makes the injection budget global across a thread's re-runs — a
   fresh engine created for attempt N+1 keeps drawing from (and
   spending) the same stream, so an abort storm exhausts the budget
   and recovery always terminates. *)
let make_injector t ~component =
  match List.find_opt (fun inj -> Fi.component inj = component) t.injectors with
  | Some inj -> inj
  | None ->
    let inj =
      Fi.create ~plan:t.config.Config.fault ~seed:t.config.Config.seed
        ~component
    in
    t.injectors <- inj :: t.injectors;
    if t.observing then Fi.set_observer inj (emitter t ~component);
    inj

(* Instance lists are built by prepending, so the instance index of
   position [i] in a list of [n] is [n - 1 - i]. *)
let iter_instances base xs f =
  let n = List.length xs in
  List.iteri (fun i x -> f (instance_name base (n - 1 - i)) x) xs

let install_observers t =
  Bus.set_observer t.bus (emitter t ~component:"bus");
  Dram.set_observer t.dram (emitter t ~component:"dram");
  Cpu.set_observer t.cpu (emitter t ~component:"cpu");
  Cache.set_observer (Cpu.cache t.cpu) (emitter t ~component:"cache");
  iter_instances "mmu" t.mmu_list (fun name mmu ->
      Mmu.set_observer mmu (emitter t ~component:name));
  iter_instances "dma" t.dmas (fun name dma ->
      Dma.set_observer dma (emitter t ~component:name));
  iter_instances "stream_buffer" t.stream_buffers (fun name buf ->
      Cache.set_observer buf (emitter t ~component:name));
  List.iter
    (fun inj -> Fi.set_observer inj (emitter t ~component:(Fi.component inj)))
    t.injectors

let enable_tracing t =
  Vmht_sim.Trace.enable t.trace true;
  t.observing <- true;
  (* Event-queue contention: sizes of same-timestamp dispatch batches. *)
  let batch_hist = Metrics.histogram t.metrics "engine.dispatch_batch" in
  Engine.observe_batches t.engine (Metrics.observe batch_hist);
  install_observers t

let make_mmu ?aspace t =
  let space, asid = Option.value ~default:(t.aspace, 0) aspace in
  let mmu =
    Mmu.create ~asid ?tlb2:t.tlb2 ~fastpath:t.config.Config.fastpath
      t.config.Config.mmu t.bus space
  in
  let name = instance_name "mmu" (List.length t.mmu_list) in
  t.mmu_list <- mmu :: t.mmu_list;
  (* Late-created MMUs join an already-enabled trace. *)
  if t.observing then Mmu.set_observer mmu (emitter t ~component:name);
  if t.config.Config.fault.Vmht_fault.Plan.enabled then
    Mmu.set_fault mmu (make_injector t ~component:"mmu");
  mmu

let create_process t =
  let va_bits =
    min t.config.Config.va_bits ((3 * t.config.Config.page_shift) - 6)
  in
  let space =
    Addr_space.create t.phys t.frames ~page_shift:t.config.Config.page_shift
      ~va_bits
  in
  let asid = t.next_asid in
  t.next_asid <- asid + 1;
  (space, asid)

(* A shootdown must reach every structure that may hold the dying
   translation: each MMU's L1, the shared L2 (conservatively across
   ASIDs — the shared level cannot know who aliases the page), and the
   walk caches of the MMUs translating this space, whose memoized
   level-1 entry dies with the (possibly freed) level-2 table.  Walk
   caches are probed before the unmap clears the table, while
   [walk_addrs] still names the live level-1 entry. *)
let unmap_page t space ~vaddr =
  List.iter
    (fun mmu ->
      if Mmu.address_space mmu == space then
        Mmu.invalidate_walk_cache_page mmu ~vaddr)
    t.mmu_list;
  Vmht_vm.Page_table.unmap (Addr_space.page_table space) ~vaddr;
  let vpn = vaddr lsr t.config.Config.page_shift in
  (match t.tlb2 with
  | Some l2 -> Tlb2.invalidate_vpn l2 ~vpn
  | None -> ());
  List.iter (fun mmu -> Mmu.invalidate_page mmu ~vaddr) t.mmu_list

(* The VM wrapper's data path: translate through the thread's private
   TLB/walker, then go through its small stream buffer so consecutive
   words ride one bus burst.  The returned [flush] drains the buffer's
   dirty lines (timed); the launcher calls it when the thread
   completes, before handing results back to the host. *)
let vm_port_metered t mmu =
  let buffer =
    Cache.create ~config:t.config.Config.accel_stream_buffer t.bus
  in
  let buf_name = instance_name "stream_buffer" (List.length t.stream_buffers) in
  t.stream_buffers <- buffer :: t.stream_buffers;
  if t.observing then
    Cache.set_observer buffer (emitter t ~component:buf_name);
  (* The buffer (like the TLB in front of it) is a single-issue
     structure: concurrent accesses from a multi-ported datapath
     serialize at its request port.  The scratchpad of the copy-based
     wrapper, being true dual-ported BRAM, has no such arbiter. *)
  let arbiter = Vmht_sim.Resource.create ~name:"vm-port" in
  let exclusively f =
    Vmht_sim.Resource.acquire arbiter;
    Fun.protect ~finally:(fun () -> Vmht_sim.Resource.release arbiter) f
  in
  (* Spans are measured inside the arbiter's critical section, so they
     never overlap even with a multi-ported datapath: the two meters
     plus compute partition the thread's wall clock exactly. *)
  let meter = { translate_cycles = 0; mem_cycles = 0 } in
  let port =
    {
      Accel.load =
        (fun vaddr ->
          exclusively (fun () ->
              let t0 = Engine.now_p () in
              let phys =
                Engine.with_phase Vmht_obs.Profile.Translate (fun () ->
                    Mmu.translate mmu ~vaddr)
              in
              let t1 = Engine.now_p () in
              meter.translate_cycles <- meter.translate_cycles + (t1 - t0);
              let v =
                Engine.with_phase Vmht_obs.Profile.Memory (fun () ->
                    Cache.read buffer ~addr:vaddr ~phys)
              in
              meter.mem_cycles <- meter.mem_cycles + (Engine.now_p () - t1);
              v));
      Accel.store =
        (fun vaddr value ->
          exclusively (fun () ->
              let t0 = Engine.now_p () in
              let phys =
                Engine.with_phase Vmht_obs.Profile.Translate (fun () ->
                    Mmu.translate mmu ~vaddr)
              in
              let t1 = Engine.now_p () in
              meter.translate_cycles <- meter.translate_cycles + (t1 - t0);
              Engine.with_phase Vmht_obs.Profile.Memory (fun () ->
                  Cache.write buffer ~addr:vaddr ~phys value);
              meter.mem_cycles <- meter.mem_cycles + (Engine.now_p () - t1)));
    }
  in
  (port, (fun () -> Cache.flush buffer), meter)

let vm_port t mmu =
  let port, flush, _meter = vm_port_metered t mmu in
  (port, flush)

let make_scratchpad ?words t =
  let words =
    match words with
    | Some w -> w
    | None -> t.config.Config.scratchpad_words
  in
  let pad = Scratchpad.create ~words ~access_latency:1 in
  let dma =
    Dma.create ~setup_cycles:t.config.Config.dma_setup_cycles
      ~burst_words:t.config.Config.dma_burst_words t.bus
  in
  let dma_name = instance_name "dma" (List.length t.dmas) in
  t.dmas <- dma :: t.dmas;
  if t.observing then Dma.set_observer dma (emitter t ~component:dma_name);
  if t.config.Config.fault.Vmht_fault.Plan.enabled then
    Dma.set_fault dma (make_injector t ~component:"dma");
  (pad, dma)

let scratchpad_port pad =
  { Accel.load = Scratchpad.load pad; Accel.store = Scratchpad.store pad }

let mmus t = t.mmu_list

let tlb2 t = t.tlb2

(* Push this SoC's translation-hierarchy counters into the process-wide
   totals as a delta since the previous flush, so the launcher can call
   this after every completed run without double counting. *)
let flush_vm_totals t =
  let module V = Vmht_vm.Vm_totals in
  let s =
    match t.tlb2 with
    | Some l2 -> Tlb2.stats l2
    | None -> { Tlb.lookups = 0; hits = 0; evictions = 0 }
  in
  let sum f = List.fold_left (fun acc m -> acc + f (Mmu.ptw_stats m)) 0 t.mmu_list in
  let cur =
    {
      V.tlb2_lookups = s.Tlb.lookups;
      tlb2_hits = s.Tlb.hits;
      tlb2_evictions = s.Tlb.evictions;
      walk_cache_hits = sum (fun p -> p.Ptw.walk_cache_hits);
      walk_cache_misses = sum (fun p -> p.Ptw.walk_cache_misses);
    }
  in
  V.add (V.sub cur t.vm_flushed);
  t.vm_flushed <- cur

let fault_stats t =
  List.fold_left
    (fun acc inj -> Fi.add_stats acc (Fi.stats inj))
    Fi.zero_stats t.injectors

let bus_stats t = Bus.stats t.bus

let dram_row_hit_rate t = Dram.row_hit_rate t.dram

(* Pull-model half of the metrics story: component counters are copied
   into the registry under "component.metric" names whenever a caller
   wants a coherent snapshot.  (Histograms are push-fed by the
   observers, see [feed_metrics].) *)
let sync_metrics t =
  let c name v = Metrics.set_counter (Metrics.counter t.metrics name) v in
  let g name v = Metrics.set_gauge (Metrics.gauge t.metrics name) v in
  let sum f l = List.fold_left (fun acc x -> acc + f x) 0 l in
  c "mmu.accesses" (sum (fun m -> (Mmu.stats m).Mmu.accesses) t.mmu_list);
  c "mmu.tlb_hits" (sum (fun m -> (Mmu.stats m).Mmu.tlb_hits) t.mmu_list);
  c "mmu.tlb_misses" (sum (fun m -> (Mmu.stats m).Mmu.tlb_misses) t.mmu_list);
  c "mmu.page_faults"
    (sum (fun m -> (Mmu.stats m).Mmu.page_faults) t.mmu_list);
  c "mmu.walk_cycles"
    (sum (fun m -> (Mmu.stats m).Mmu.walk_cycles) t.mmu_list);
  c "tlb.lookups" (sum (fun m -> (Mmu.tlb_stats m).Tlb.lookups) t.mmu_list);
  c "tlb.hits" (sum (fun m -> (Mmu.tlb_stats m).Tlb.hits) t.mmu_list);
  c "tlb.evictions"
    (sum (fun m -> (Mmu.tlb_stats m).Tlb.evictions) t.mmu_list);
  c "tlb.memo_hits" (sum Mmu.tlb_memo_hits t.mmu_list);
  c "engine.fast_forwards" (Engine.fast_forwards t.engine);
  c "ptw.walks" (sum (fun m -> (Mmu.ptw_stats m).Ptw.walks) t.mmu_list);
  c "ptw.level_reads"
    (sum (fun m -> (Mmu.ptw_stats m).Ptw.level_reads) t.mmu_list);
  c "ptw.failed_walks"
    (sum (fun m -> (Mmu.ptw_stats m).Ptw.failed_walks) t.mmu_list);
  (let s =
     match t.tlb2 with
     | Some l2 -> Tlb2.stats l2
     | None -> { Tlb.lookups = 0; hits = 0; evictions = 0 }
   in
   c "tlb2.lookups" s.Tlb.lookups;
   c "tlb2.hits" s.Tlb.hits;
   c "tlb2.misses" (s.Tlb.lookups - s.Tlb.hits);
   c "tlb2.evictions" s.Tlb.evictions);
  c "walk_cache.hits"
    (sum (fun m -> (Mmu.ptw_stats m).Ptw.walk_cache_hits) t.mmu_list);
  c "walk_cache.misses"
    (sum (fun m -> (Mmu.ptw_stats m).Ptw.walk_cache_misses) t.mmu_list);
  let b = Bus.stats t.bus in
  c "bus.reads" b.Bus.reads;
  c "bus.writes" b.Bus.writes;
  c "bus.words_moved" b.Bus.words_moved;
  c "bus.transactions" b.Bus.bus.Vmht_sim.Resource.transactions;
  c "bus.busy_cycles" b.Bus.bus.Vmht_sim.Resource.busy_cycles;
  c "bus.wait_cycles" b.Bus.bus.Vmht_sim.Resource.wait_cycles;
  g "bus.max_queue" (float_of_int b.Bus.bus.Vmht_sim.Resource.max_queue);
  let d = Dram.stats t.dram in
  c "dram.accesses" d.Dram.accesses;
  c "dram.row_hits" d.Dram.row_hits;
  c "dram.row_misses" d.Dram.row_misses;
  g "dram.row_hit_rate" (Dram.row_hit_rate t.dram);
  let l1 = Cache.stats (Cpu.cache t.cpu) in
  c "cache.read_hits" l1.Cache.read_hits;
  c "cache.read_misses" l1.Cache.read_misses;
  c "cache.write_hits" l1.Cache.write_hits;
  c "cache.write_misses" l1.Cache.write_misses;
  c "cache.writebacks" l1.Cache.writebacks;
  c "cache.invalidations" l1.Cache.invalidations;
  let buf_sum f = sum (fun b -> f (Cache.stats b)) t.stream_buffers in
  c "stream_buffer.read_hits" (buf_sum (fun s -> s.Cache.read_hits));
  c "stream_buffer.read_misses" (buf_sum (fun s -> s.Cache.read_misses));
  c "stream_buffer.write_hits" (buf_sum (fun s -> s.Cache.write_hits));
  c "stream_buffer.write_misses" (buf_sum (fun s -> s.Cache.write_misses));
  c "stream_buffer.writebacks" (buf_sum (fun s -> s.Cache.writebacks));
  c "dma.transfers" (sum (fun d -> (Dma.stats d).Dma.transfers) t.dmas);
  c "dma.words_in" (sum (fun d -> (Dma.stats d).Dma.words_in) t.dmas);
  c "dma.words_out" (sum (fun d -> (Dma.stats d).Dma.words_out) t.dmas);
  let cs = Cpu.stats t.cpu in
  c "cpu.instructions" cs.Cpu.instructions;
  c "cpu.branches" cs.Cpu.branches;
  c "cpu.mem_accesses" cs.Cpu.mem_accesses;
  c "cpu.faults" cs.Cpu.faults;
  c "cpu.mem_cycles" cs.Cpu.mem_cycles;
  (if t.injectors <> [] then begin
     let fs = fault_stats t in
     c "fault.injected" fs.Fi.injected;
     c "fault.stall_cycles" fs.Fi.stall_cycles;
     c "fault.retries" fs.Fi.retries;
     c "fault.aborts" fs.Fi.aborts
   end);
  c "mem.mapped_pages" (Addr_space.mapped_pages t.aspace)
