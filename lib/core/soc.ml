module Engine = Vmht_sim.Engine
module Phys_mem = Vmht_mem.Phys_mem
module Dram = Vmht_mem.Dram
module Bus = Vmht_mem.Bus
module Scratchpad = Vmht_mem.Scratchpad
module Dma = Vmht_mem.Dma
module Frame_alloc = Vmht_vm.Frame_alloc
module Addr_space = Vmht_vm.Addr_space
module Mmu = Vmht_vm.Mmu
module Cpu = Vmht_cpu.Cpu
module Accel = Vmht_hls.Accel

type t = {
  config : Config.t;
  engine : Engine.t;
  phys : Phys_mem.t;
  dram : Dram.t;
  bus : Bus.t;
  frames : Frame_alloc.t;
  aspace : Addr_space.t;
  cpu : Cpu.t;
  mutable mmu_list : Mmu.t list;
  mutable next_asid : int;
  trace : Vmht_sim.Trace.t;
}

let create (config : Config.t) =
  let engine = Engine.create () in
  let phys = Phys_mem.create ~bytes:config.Config.phys_bytes in
  let dram = Dram.create ~config:config.Config.dram () in
  let bus =
    Bus.create ~arbitration_cycles:config.Config.bus_arbitration_cycles phys
      dram
  in
  let frames =
    Frame_alloc.create ~base:0 ~bytes:config.Config.phys_bytes
      ~page_bytes:(1 lsl config.Config.page_shift)
  in
  (* Two page-table levels of at most page-sized tables cover
     3*page_shift - 6 bits of virtual space; clamp so small-page
     configurations (the Figure 3 sweep) stay representable. *)
  let va_bits =
    min config.Config.va_bits ((3 * config.Config.page_shift) - 6)
  in
  let aspace =
    Addr_space.create phys frames ~page_shift:config.Config.page_shift
      ~va_bits
  in
  let cpu = Cpu.create ~cache_config:config.Config.cache bus aspace in
  {
    config;
    engine;
    phys;
    dram;
    bus;
    frames;
    aspace;
    cpu;
    mmu_list = [];
    next_asid = 1;
    trace = Vmht_sim.Trace.create ();
  }

let config t = t.config

let engine t = t.engine

let aspace t = t.aspace

let bus t = t.bus

let cpu t = t.cpu

let now t = Engine.now t.engine

let run t main =
  Engine.spawn t.engine ~name:"main" main;
  Engine.run t.engine

let trace t = t.trace

let record t ~component detail =
  Vmht_sim.Trace.record t.trace ~at:(Engine.now t.engine) ~component detail

let enable_tracing t =
  Vmht_sim.Trace.enable t.trace true;
  Bus.set_tracer t.bus (record t ~component:"bus");
  List.iter
    (fun mmu -> Mmu.set_tracer mmu (record t ~component:"mmu"))
    t.mmu_list

let make_mmu ?aspace t =
  let space, asid = Option.value ~default:(t.aspace, 0) aspace in
  let mmu = Mmu.create ~asid t.config.Config.mmu t.bus space in
  t.mmu_list <- mmu :: t.mmu_list;
  (* Late-created MMUs join an already-enabled trace. *)
  Mmu.set_tracer mmu (record t ~component:"mmu");
  mmu

let create_process t =
  let va_bits =
    min t.config.Config.va_bits ((3 * t.config.Config.page_shift) - 6)
  in
  let space =
    Addr_space.create t.phys t.frames ~page_shift:t.config.Config.page_shift
      ~va_bits
  in
  let asid = t.next_asid in
  t.next_asid <- asid + 1;
  (space, asid)

let unmap_page t space ~vaddr =
  Vmht_vm.Page_table.unmap (Addr_space.page_table space) ~vaddr;
  List.iter (fun mmu -> Mmu.invalidate_page mmu ~vaddr) t.mmu_list

(* The VM wrapper's data path: translate through the thread's private
   TLB/walker, then go through its small stream buffer so consecutive
   words ride one bus burst.  The returned [flush] drains the buffer's
   dirty lines (timed); the launcher calls it when the thread
   completes, before handing results back to the host. *)
let vm_port t mmu =
  let buffer =
    Vmht_mem.Cache.create ~config:t.config.Config.accel_stream_buffer t.bus
  in
  (* The buffer (like the TLB in front of it) is a single-issue
     structure: concurrent accesses from a multi-ported datapath
     serialize at its request port.  The scratchpad of the copy-based
     wrapper, being true dual-ported BRAM, has no such arbiter. *)
  let arbiter = Vmht_sim.Resource.create ~name:"vm-port" in
  let exclusively f =
    Vmht_sim.Resource.acquire arbiter;
    Fun.protect ~finally:(fun () -> Vmht_sim.Resource.release arbiter) f
  in
  let port =
    {
      Accel.load =
        (fun vaddr ->
          exclusively (fun () ->
              let phys = Mmu.translate mmu ~vaddr in
              Vmht_mem.Cache.read buffer ~addr:vaddr ~phys));
      Accel.store =
        (fun vaddr value ->
          exclusively (fun () ->
              let phys = Mmu.translate mmu ~vaddr in
              Vmht_mem.Cache.write buffer ~addr:vaddr ~phys value));
    }
  in
  (port, fun () -> Vmht_mem.Cache.flush buffer)

let make_scratchpad ?words t =
  let words =
    match words with
    | Some w -> w
    | None -> t.config.Config.scratchpad_words
  in
  let pad = Scratchpad.create ~words ~access_latency:1 in
  let dma =
    Dma.create ~setup_cycles:t.config.Config.dma_setup_cycles
      ~burst_words:t.config.Config.dma_burst_words t.bus
  in
  (pad, dma)

let scratchpad_port pad =
  { Accel.load = Scratchpad.load pad; Accel.store = Scratchpad.store pad }

let mmus t = t.mmu_list

let bus_stats t = Bus.stats t.bus

let dram_row_hit_rate t = Dram.row_hit_rate t.dram
